/**
 * @file
 * Figure 9 reproduction: time to rebuild the GPU index shards from
 * updated query access data, broken down into profiling, partitioning
 * algorithm, shard splitting and loading — for every dataset at the
 * SLO targets the paper annotates above its bars.
 *
 * The paper's claim: all stages complete in under a minute, with
 * profiling dominating, so updates can run in the background.
 */

#include <iostream>

#include "bench_util.h"
#include "common/timer.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout, "Figure 9: index rebuild time breakdown");

    struct Cell
    {
        wl::DatasetSpec spec;
        std::vector<double> slos;
        llm::LlmConfig llm;
    };
    const std::vector<Cell> cells = {
        {wl::wikiAllSpec(), {0.100, 0.150}, llm::llama3_8b()},
        {wl::orcas1kSpec(), {0.150, 0.200}, llm::qwen3_32b()},
        {wl::orcas2kSpec(), {0.200, 0.300}, llm::llama3_70b()},
    };

    TextTable t({"dataset", "SLO (ms)", "profiling (s)",
                 "algorithm (s)", "splitting (s)", "loading (s)",
                 "total (s)"});

    bench::PeakCache peaks;
    for (const auto &cell : cells) {
        core::DatasetContext ctx(cell.spec);
        auto cfg = bench::makeServingConfig(
            cell.spec, cell.llm, core::RetrieverKind::VectorLite, 1.0);
        const double peak = peaks.peak(cfg);

        for (const double slo : cell.slos) {
            wl::QueryGenerator gen(ctx.dataset(), 17);
            gen.drift(0.4);

            core::PartitionInputs in;
            in.sloSearchSeconds = slo;
            in.peakLlmThroughput = peak;
            // KV baseline across the node with no index resident.
            gpu::GpuDevice dev(0, bench::nodeGpuFor(cell.llm));
            dev.reserveWeights(
                cell.llm.weightBytes() /
                static_cast<bytes_t>(cell.llm.tensorParallel));
            in.kvBaselineBytes =
                8.0 * static_cast<double>(dev.kvCacheBytes());

            WallTimer wall;
            const auto outcome =
                core::runUpdateCycle(ctx, gen, in, 8);
            const double wall_s = wall.elapsed();

            t.addRow({cell.spec.name,
                      TextTable::num(slo * 1e3, 0),
                      TextTable::num(outcome.timings.profilingSeconds,
                                     2),
                      TextTable::num(outcome.timings.algorithmSeconds,
                                     2),
                      TextTable::num(outcome.timings.splittingSeconds,
                                     2),
                      TextTable::num(outcome.timings.loadingSeconds,
                                     2),
                      TextTable::num(outcome.timings.total(), 2)});
            (void)wall_s;
        }
    }
    t.print(std::cout);
    std::cout << "\npaper: all stages from profiling to loading "
                 "complete in under a minute; per-shard generation and "
                 "loading take less than ten seconds.\n";
    return 0;
}

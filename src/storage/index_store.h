/**
 * @file
 * Versioned on-disk artifact for a complete trained fast-scan index.
 *
 * One artifact file carries everything needed to serve searches —
 * trained PQ codebooks, coarse-quantizer centroids, and every packed
 * inverted list — so an engine cold-starts from disk without
 * re-training or re-encoding and returns bit-identical results to the
 * index it was saved from. The packed-lists section starts at a
 * page-aligned file offset with page-aligned per-cluster segments, so
 * the same file doubles as the backing store of the memory-mapped cold
 * tier (storage::MmapColdTier).
 *
 * On-disk layout (little-endian, 96-byte header):
 *
 *     u32 magic "VLRA"
 *     u32 formatVersion
 *     u64 dim, m, nbits, nlist, total, pageSize
 *     u64 pqOffset, cqOffset, listsOffset, listsBytes, fileBytes
 *     [pqOffset]    PQ section     (vecsearch io "VPQ1")
 *     [cqOffset]    CQ section     (vecsearch io "VCQ1")
 *     ...zero pad to pageSize...
 *     [listsOffset] packed-lists section (vecsearch io "VLL1"),
 *                   page-aligned; see io.h for its internal layout
 *
 * All load paths throw vs::IoError — never abort — on bad magic,
 * unsupported version, truncation, or cross-section inconsistencies.
 */

#ifndef VLR_STORAGE_INDEX_STORE_H
#define VLR_STORAGE_INDEX_STORE_H

#include <cstdint>
#include <string>

#include "vecsearch/ivf_pq_fastscan.h"

namespace vlr::storage
{

/** Parsed artifact header (everything but the sections themselves). */
struct ArtifactInfo
{
    std::uint32_t formatVersion = 0;
    std::size_t dim = 0;
    std::size_t m = 0;
    std::size_t nbits = 0;
    std::size_t nlist = 0;
    /** Vectors stored across all inverted lists. */
    std::size_t total = 0;
    /** Alignment of the lists section and its cluster segments. */
    std::size_t pageSize = 0;
    /** Absolute file offset of the PQ section. */
    std::uint64_t pqOffset = 0;
    /** Absolute file offset of the CQ section. */
    std::uint64_t cqOffset = 0;
    /** Absolute file offset of the packed-lists section. */
    std::uint64_t listsOffset = 0;
    /** Bytes of the packed-lists section. */
    std::uint64_t listsBytes = 0;
    /** Total artifact size; must equal the file's actual size. */
    std::uint64_t fileBytes = 0;
};

/**
 * Save/load of complete index artifacts. Stateless; all members are
 * static. Concurrent load()/inspect() of one file are safe; save()
 * must not race other accessors on the same path (callers who need
 * atomic replacement write to a temp file and rename, as
 * MmapColdTier::mergeDeltas does).
 */
class IndexStore
{
  public:
    /** Bump when the header or section layout changes. */
    static constexpr std::uint32_t kFormatVersion = 1;

    /**
     * Write @p index as one artifact file at @p path (overwriting).
     * Requires a FlatCoarseQuantizer (the only serializable CQ) and a
     * trained PQ. Deterministic: saving an identical index yields a
     * byte-identical file. @throws vs::IoError on unsupported input or
     * write failure.
     */
    static ArtifactInfo save(const std::string &path,
                             const vs::IvfPqFastScanIndex &index,
                             std::size_t page_size = 4096);

    /**
     * Rebuild a complete index from an artifact. Searches on the result
     * are bit-identical to the index save() was given. @throws
     * vs::IoError on bad magic, version, truncation, or inconsistent
     * sections.
     */
    static vs::IvfPqFastScanIndex load(const std::string &path);

    /**
     * Read and validate only the 96-byte header — cheap artifact
     * introspection (used by tooling and MmapColdTier).
     * @throws vs::IoError as load() does.
     */
    static ArtifactInfo inspect(const std::string &path);
};

} // namespace vlr::storage

#endif // VLR_STORAGE_INDEX_STORE_H

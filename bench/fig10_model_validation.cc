/**
 * @file
 * Figure 10 reproduction: accuracy of VectorLiteRAG's performance
 * model.
 *
 * Left: measured vs model-estimated hybrid search latency across batch
 * sizes for each dataset ("measured" = the batch-search timing
 * simulation over routed test batches, which includes dispatcher
 * effects the analytical model deliberately ignores — the paper notes
 * the same offset).
 * Right: measured vs estimated minimum (tail) hit rate within a batch.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

namespace
{

struct Measured
{
    double latency = 0.0;
    double tailHitRate = 0.0;
};

/** Average measured batch latency / min-hit-rate over test batches. */
Measured
measureBatches(const core::DatasetContext &ctx, double rho,
               std::size_t batch, int num_batches)
{
    const auto assignment =
        core::IndexSplitter::split(ctx.profile(), rho, 8);
    core::Router router(assignment, true);

    core::BatchSearchSimulator::Options opts;
    opts.dispatcher = true;
    opts.bytesPerVector = ctx.bytesPerVector();
    core::BatchSearchSimulator sim(
        ctx.cpuModel(), gpu::GpuSearchModel(gpu::h100Spec()), opts);

    Measured m;
    std::size_t next = 0;
    for (int b = 0; b < num_batches; ++b) {
        std::vector<const wl::QueryPlan *> batch_plans;
        for (std::size_t i = 0; i < batch; ++i) {
            batch_plans.push_back(
                &ctx.testPlans().plan(next % ctx.testPlans().size()));
            ++next;
        }
        const auto routed = router.route(batch_plans);
        const auto out = sim.simulate(routed);
        m.latency += out.batchSeconds;
        m.tailHitRate += out.minHitRate;
    }
    m.latency /= num_batches;
    m.tailHitRate /= num_batches;
    return m;
}

} // namespace

int
main()
{
    printBanner(std::cout, "Figure 10: performance model validation");

    const double rho = 0.20; // fixed coverage for the validation sweep
    const std::vector<std::size_t> batches = {1, 4, 7, 10, 13};

    for (const auto &spec : {wl::wikiAllSpec(), wl::orcas1kSpec(),
                             wl::orcas2kSpec()}) {
        core::DatasetContext ctx(spec);
        std::cout << "\ndataset: " << spec.name << " (coverage "
                  << TextTable::pct(rho) << ")\n";
        TextTable t({"batch", "measured lat (ms)", "model lat (ms)",
                     "measured tail hit", "model tail hit"});
        for (const std::size_t b : batches) {
            const auto m = measureBatches(ctx, rho, b, 40);
            const double eta = ctx.estimator().etaMin(rho, b);
            const double est =
                ctx.perfModel().hybridLatency(static_cast<double>(b),
                                              eta);
            t.addRow({std::to_string(b),
                      TextTable::num(m.latency * 1e3, 1),
                      TextTable::num(est * 1e3, 1),
                      TextTable::num(m.tailHitRate, 3),
                      TextTable::num(eta, 3)});
        }
        t.print(std::cout);
    }

    std::cout << "\npaper: estimated latency tracks measured latency "
                 "with a modest offset (the dispatcher's early-query "
                 "handling); the Beta-based tail hit rate declines "
                 "with batch size and matches the measurement.\n";
    return 0;
}

/**
 * @file
 * Figure 13 reproduction: VectorLiteRAG vs HedraRAG.
 *
 * The paper replicates HedraRAG's setting — sqrt(N) clusters and a
 * heavier retrieval configuration — then compares TTFT and end-to-end
 * latency across arrival rates, with vLiteRAG configured at
 * SLO_search = 400 ms. HedraRAG places 73% of clusters on GPUs (ours
 * computes its own balance point); vLiteRAG picks ~31.5%.
 *
 * Expected shape: HedraRAG has lower TTFT at low rates (more cache),
 * but its operable range narrows as rates grow; vLiteRAG holds latency
 * near the target across a wider range with lower E2E latency.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout, "Figure 13: comparison with HedraRAG");

    // Heavier retrieval: ORCAS-2K with 3x the probe budget, matching
    // the paper's nprobe 6144-for-0.94-NDCG configuration. LUT work is
    // proportional to the probed clusters, so the CPU cost constants
    // scale with the probe multiplier; the resulting CPU-only retrieval
    // throughput drops below the LLM's capacity, which is precisely the
    // regime HedraRAG's throughput balancing was designed for.
    constexpr double probe_scale = 3.0;
    auto spec = wl::orcas2kSpec();
    spec.nprobe = static_cast<std::size_t>(spec.nprobe * probe_scale);
    spec.paperNprobe =
        static_cast<std::size_t>(spec.paperNprobe * probe_scale);
    spec.cpuParams.lutFixedSeconds *= probe_scale;
    spec.cpuParams.lutPerQuerySeconds *= probe_scale;
    spec.name = "orcas-2k-heavy";
    core::DatasetContext ctx(spec);

    const auto model = llm::qwen3_32b();
    bench::PeakCache peaks;
    auto base = bench::makeServingConfig(
        spec, model, core::RetrieverKind::VectorLite, 1.0);
    const double peak = peaks.peak(base);
    const auto rates = bench::sweepRates(peak, 6, 1.15);

    std::cout << "dataset: " << spec.name << ", model " << model.name
              << ", SLO_search 400 ms, capacity "
              << TextTable::num(peak, 1) << " req/s\n\n";

    TextTable t({"system", "rate (r/s)", "rho", "mean TTFT (ms)",
                 "P90 TTFT (ms)", "mean E2E (s)"});
    for (const auto kind : {core::RetrieverKind::HedraRag,
                            core::RetrieverKind::VectorLite}) {
        for (const double rate : rates) {
            auto cfg = bench::makeServingConfig(spec, model, kind, rate);
            cfg.peakThroughputHint = peak;
            cfg.sloSearchOverride = 0.400;
            const auto res = core::runServing(cfg, ctx);
            t.addRow({res.system, TextTable::num(rate, 1),
                      TextTable::pct(res.rho),
                      TextTable::num(res.meanTtft * 1e3, 0),
                      TextTable::num(res.p90Ttft * 1e3, 0),
                      TextTable::num(res.meanE2e, 2)});
        }
    }
    t.print(std::cout);

    std::cout << "\npaper: HedraRAG exhibits lower TTFT at low request "
                 "rates, but latency increases sharply once the system "
                 "exceeds its throughput limit; vLiteRAG maintains "
                 "latency near the target across a wider range.\n";
    return 0;
}

/**
 * @file
 * PQ4 fast-scan kernels (Andre et al., VLDB 2016): 4-bit PQ codes are
 * packed into register-friendly blocks of 32 vectors and the ADC lookup
 * table is quantized to uint8 so 32 table lookups run as one AVX2
 * byte-shuffle. This is the "IVF-FS" configuration the paper adopts for
 * its CPU tier (Section II-B, Fig. 3).
 *
 * Layout: for each block of 32 codes and each sub-quantizer m, 16 bytes
 * are stored; byte j holds the 4-bit code of vector j in its low nibble
 * and of vector j+16 in its high nibble.
 */

#ifndef VLR_VECSEARCH_FASTSCAN_H
#define VLR_VECSEARCH_FASTSCAN_H

#include <cstdint>
#include <span>
#include <vector>

namespace vlr::vs
{

/** Number of codes per packed block. */
inline constexpr std::size_t kFastScanBlock = 32;

/** uint8-quantized ADC lookup table with the affine mapping back. */
struct QuantizedLut
{
    /** m * 16 quantized entries. */
    std::vector<std::uint8_t> table;
    /** Reconstruction: distance ~= bias + step * accumulated_score. */
    float bias = 0.f;
    float step = 1.f;
};

/** Bytes of one packed block for m sub-quantizers. */
std::size_t packedBlockBytes(std::size_t m);

/**
 * Pack n 4-bit codes (one byte per sub-quantizer, values < 16) into the
 * blocked layout. Output is padded to a whole number of blocks; padding
 * lanes carry code 0 and must be masked by the caller via ids.
 */
std::vector<std::uint8_t> packPq4Codes(std::size_t m,
                                       std::span<const std::uint8_t> codes,
                                       std::size_t n);

/**
 * Append n_new codes to an already-packed list of n_old codes in place:
 * the tail block's free lanes are filled and whole new blocks are
 * grown, without unpacking the existing codes. @p packed must hold
 * exactly the blocks of n_old codes (padding lanes zero, as
 * packPq4Codes leaves them) and afterwards is byte-for-byte identical
 * to packPq4Codes over the concatenated code sequence — the O(n_new)
 * ingestion primitive behind addPreassigned and the storage layer's
 * delta lists.
 */
void appendPq4Codes(std::size_t m, std::vector<std::uint8_t> &packed,
                    std::size_t n_old,
                    std::span<const std::uint8_t> codes,
                    std::size_t n_new);

/**
 * Quantize a float LUT (m rows of 16) to uint8 with a shared step so
 * accumulated uint16 scores map back to distances affinely.
 */
QuantizedLut quantizeLut(std::size_t m, std::span<const float> lut);

/**
 * Scan packed blocks, producing one uint16 score per code lane.
 * @param out must hold nblocks * 32 entries.
 */
void scanPq4Blocks(std::size_t m, const std::uint8_t *packed,
                   std::size_t nblocks, const QuantizedLut &lut,
                   std::uint16_t *out);

/** Scalar reference producing bit-identical scores to the SIMD path. */
void scanPq4BlocksScalar(std::size_t m, const std::uint8_t *packed,
                         std::size_t nblocks, const QuantizedLut &lut,
                         std::uint16_t *out);

/** True when the AVX2 kernel is compiled in. */
bool fastScanHasSimd();

} // namespace vlr::vs

#endif // VLR_VECSEARCH_FASTSCAN_H

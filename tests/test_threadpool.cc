/**
 * @file
 * Tests for the thread pool used by index training and batched search.
 */

#include <atomic>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/threadpool.h"

namespace vlr
{
namespace
{

TEST(ThreadPool, ZeroThreadsRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 0u);
    std::vector<int> hits(10, 0);
    pool.parallelFor(10, [&](std::size_t i) { hits[i]++; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EachIndexVisitedExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyRangeIsNoOp)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, SumReductionViaAtomics)
{
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    pool.parallelFor(1000, [&](std::size_t i) {
        sum += static_cast<long>(i);
    });
    EXPECT_EQ(sum.load(), 1000L * 999L / 2L);
}

TEST(ThreadPool, ChunksPartitionRange)
{
    ThreadPool pool(4);
    const std::size_t n = 1003;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelChunks(n, [&](std::size_t lo, std::size_t hi) {
        EXPECT_LE(lo, hi);
        for (std::size_t i = lo; i < hi; ++i)
            hits[i]++;
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ChunksWithFewerItemsThanThreads)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelChunks(3, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            hits[i]++;
    });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 20; ++round)
        pool.parallelFor(50, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 20 * 50);
}

TEST(ThreadPool, SingleThreadPoolIsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 0u);
    std::atomic<int> count{0};
    pool.parallelFor(5, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, DynamicForVisitsEachIndexOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelForDynamic(n, 7, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, DynamicForInlineWhenNoWorkers)
{
    ThreadPool pool(0);
    std::vector<int> hits(100, 0);
    pool.parallelForDynamic(100, 16, [&](std::size_t i) { hits[i]++; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, DynamicForBalancesSkewedWork)
{
    // Index 0 is ~1000x heavier than the rest; dynamic scheduling with
    // grain 1 must still visit everything exactly once.
    ThreadPool pool(4);
    const std::size_t n = 64;
    std::vector<std::atomic<int>> hits(n);
    std::atomic<long> sink{0};
    pool.parallelForDynamic(n, 1, [&](std::size_t i) {
        const long spins = i == 0 ? 200000 : 200;
        long acc = 0;
        for (long s = 0; s < spins; ++s)
            acc += s;
        sink += acc;
        hits[i]++;
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, DynamicForZeroGrainIsClampedToOne)
{
    ThreadPool pool(2);
    std::vector<std::atomic<int>> hits(17);
    pool.parallelForDynamic(17, 0, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < 17; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SubmitDetachedRunsTask)
{
    std::promise<int> done;
    auto fut = done.get_future();
    {
        ThreadPool pool(2);
        pool.submitDetached([&] { done.set_value(41 + 1); });
        EXPECT_EQ(fut.get(), 42);
    }
}

TEST(ThreadPool, SubmitDetachedInlineWhenNoWorkers)
{
    ThreadPool pool(0);
    int x = 0;
    pool.submitDetached([&] { x = 7; });
    EXPECT_EQ(x, 7);
}

TEST(ThreadPool, HardwareConcurrencyIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

TEST(ThreadPool, OptionsZeroThreadsSizesToHardware)
{
    ThreadPool pool(ThreadPoolOptions{});
    const std::size_t hw = ThreadPool::hardwareConcurrency();
    // numThreads == 0 resolves to the hardware; a pool of <= 1 worker
    // runs inline and reports zero threads.
    EXPECT_EQ(pool.numThreads(), hw <= 1 ? 0u : hw);
}

TEST(ThreadPool, OptionsExplicitCountOverridesHardware)
{
    ThreadPool pool(ThreadPoolOptions{.numThreads = 3});
    EXPECT_EQ(pool.numThreads(), 3u);
    std::atomic<int> count{0};
    pool.parallelFor(100, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, PinnedPoolStillRunsWork)
{
    // Pinning is best effort (Linux only, may fail under restricted
    // affinity masks); correctness of the work must not depend on it.
    ThreadPool pool(
        ThreadPoolOptions{.numThreads = 2, .pinThreads = true});
    std::atomic<int> count{0};
    pool.parallelFor(64, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 64);
#if !defined(__linux__)
    EXPECT_FALSE(pool.pinned());
#endif
}

TEST(ThreadPool, InlinePoolNeverReportsPinned)
{
    ThreadPool pool(
        ThreadPoolOptions{.numThreads = 1, .pinThreads = true});
    EXPECT_EQ(pool.numThreads(), 0u);
    EXPECT_FALSE(pool.pinned());
}

TEST(ThreadPool, ConcurrentLoopsFromMultipleCallers)
{
    // Two external threads drive independent loops through one shared
    // pool; per-call completion tracking must keep them isolated.
    ThreadPool pool(4);
    std::atomic<long> sum_a{0}, sum_b{0};
    std::thread ta([&] {
        for (int round = 0; round < 10; ++round)
            pool.parallelForDynamic(500, 8, [&](std::size_t i) {
                sum_a += static_cast<long>(i);
            });
    });
    std::thread tb([&] {
        for (int round = 0; round < 10; ++round)
            pool.parallelFor(500, [&](std::size_t i) {
                sum_b += static_cast<long>(i);
            });
    });
    ta.join();
    tb.join();
    EXPECT_EQ(sum_a.load(), 10L * 500L * 499L / 2L);
    EXPECT_EQ(sum_b.load(), 10L * 500L * 499L / 2L);
}

} // namespace
} // namespace vlr

#include "llmsim/cluster.h"

#include <algorithm>
#include <limits>
#include <algorithm>

#include "common/log.h"

namespace vlr::llm
{

LlmCluster::LlmCluster(sim::Simulator &sim,
                       std::vector<gpu::GpuDevice *> gpus, LlmConfig config,
                       LlmEngineParams params)
{
    const auto tp = static_cast<std::size_t>(config.tensorParallel);
    if (gpus.size() < tp) {
        logWarn("LlmCluster: ", gpus.size(), " GPUs cannot host ",
                config.name, " (TP", tp, "); zero instances");
        return;
    }
    for (std::size_t base = 0; base + tp <= gpus.size(); base += tp) {
        std::vector<gpu::GpuDevice *> group(gpus.begin() + base,
                                            gpus.begin() + base + tp);
        engines_.push_back(std::make_unique<LlmEngine>(
            sim, std::move(group), config, params));
    }
}

void
LlmCluster::dispatch(LlmRequestPtr req)
{
    if (engines_.empty())
        fatal("LlmCluster::dispatch: no LLM instances available");
    // Join the shortest prefill queue; round-robin across ties so bursts
    // spread over instances instead of piling onto one.
    LlmEngine *best = nullptr;
    std::size_t best_load = std::numeric_limits<std::size_t>::max();
    const std::size_t n = engines_.size();
    for (std::size_t i = 0; i < n; ++i) {
        auto &e = engines_[(rr_ + i) % n];
        const std::size_t load = e->pendingPrefillCount();
        if (load < best_load) {
            best_load = load;
            best = e.get();
        }
    }
    rr_ = (rr_ + 1) % n;
    best->enqueue(std::move(req));
}

std::uint64_t
LlmCluster::completedCount() const
{
    std::uint64_t total = 0;
    for (const auto &e : engines_)
        total += e->completedCount();
    return total;
}

void
LlmCluster::setOnFirstToken(std::function<void(const LlmRequestPtr &)> fn)
{
    for (auto &e : engines_)
        e->onFirstToken = fn;
}

void
LlmCluster::setOnFinish(std::function<void(const LlmRequestPtr &)> fn)
{
    for (auto &e : engines_)
        e->onFinish = fn;
}

void
LlmCluster::refreshKvCapacity()
{
    for (auto &e : engines_)
        e->refreshKvCapacity();
}

double
measurePeakThroughput(const LlmConfig &config, const gpu::GpuSpec &gpu_spec,
                      int num_gpus, std::size_t prompt_tokens,
                      std::size_t output_tokens, std::size_t num_requests)
{
    sim::Simulator sim;
    std::vector<std::unique_ptr<gpu::GpuDevice>> devices;
    std::vector<gpu::GpuDevice *> device_ptrs;
    for (int g = 0; g < num_gpus; ++g) {
        devices.push_back(std::make_unique<gpu::GpuDevice>(g, gpu_spec));
        device_ptrs.push_back(devices.back().get());
    }
    LlmEngineParams params;
    params.maxPrefillTokens = prompt_tokens; // match serving behaviour
    LlmCluster cluster(sim, device_ptrs, config, params);
    if (cluster.numInstances() == 0)
        return 0.0;

    // Enough requests to saturate KV capacity for several waves so the
    // steady-state batch (not the ramp) dominates the measurement.
    num_requests =
        std::max(num_requests, cluster.numInstances() * 384);

    // Closed-loop flood: all requests available at t = 0.
    for (std::size_t i = 0; i < num_requests; ++i) {
        auto req = std::make_shared<LlmRequest>();
        req->id = i;
        req->arrivalTime = 0.0;
        req->promptTokens = prompt_tokens;
        req->outputTokens = output_tokens;
        cluster.dispatch(std::move(req));
    }
    sim.run();

    // With a flood the ramp is a small fraction of the run, so the
    // overall completion rate approximates the steady-state rate.
    const double total_time = sim.now();
    if (total_time <= 0.0)
        return 0.0;
    return static_cast<double>(cluster.completedCount()) / total_time;
}

} // namespace vlr::llm

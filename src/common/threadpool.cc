#include "common/threadpool.h"

#include <algorithm>
#include <memory>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace vlr
{

namespace
{

/** Best-effort pin of @p t to @p core; returns success. */
bool
pinThreadToCore(std::thread &t, std::size_t core)
{
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(core % CPU_SETSIZE, &set);
    return pthread_setaffinity_np(t.native_handle(), sizeof(set),
                                  &set) == 0;
#else
    (void)t;
    (void)core;
    return false;
#endif
}

} // namespace

std::size_t
ThreadPool::hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads <= 1)
        return;
    threads_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::ThreadPool(ThreadPoolOptions options)
    : ThreadPool(options.numThreads == 0 ? hardwareConcurrency()
                                         : options.numThreads)
{
    if (!options.pinThreads || threads_.empty())
        return;
    // Round-robin workers across cores. Every pin must take for the
    // pool to report pinned() — a half-pinned pool would skew any
    // scaling measurement built on it.
    const std::size_t cores = hardwareConcurrency();
    bool all = true;
    for (std::size_t i = 0; i < threads_.size(); ++i)
        all = pinThreadToCore(threads_[i], i % cores) && all;
    pinned_ = all;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    cvTask_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            cvTask_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        tasks_.push(std::move(task));
    }
    cvTask_.notify_one();
}

void
ThreadPool::submitDetached(std::function<void()> task)
{
    if (threads_.empty()) {
        task();
        return;
    }
    submit(std::move(task));
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    parallelChunks(n, [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            fn(i);
    });
}

void
ThreadPool::parallelChunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (n == 0)
        return;
    const std::size_t workers = threads_.empty() ? 1 : threads_.size();
    if (workers == 1) {
        fn(0, n);
        return;
    }
    const std::size_t chunk = (n + workers - 1) / workers;
    // The caller runs the first chunk itself while the pool works on the
    // rest; its Sync latch only counts this call's tasks, so concurrent
    // loops on the same pool don't wait on each other.
    const auto sync = std::make_shared<Sync>();
    {
        std::lock_guard<std::mutex> lk(sync->m);
        for (std::size_t b = chunk; b < n; b += chunk)
            ++sync->remaining;
    }
    for (std::size_t b = chunk; b < n; b += chunk) {
        const std::size_t e = std::min(n, b + chunk);
        submit([sync, &fn, b, e] {
            fn(b, e);
            sync->finishOne();
        });
    }
    fn(0, std::min(n, chunk));
    sync->wait();
}

void
ThreadPool::parallelForDynamic(std::size_t n, std::size_t grain,
                               const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    grain = std::max<std::size_t>(grain, 1);
    if (threads_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    struct DynState
    {
        std::atomic<std::size_t> next{0};
        Sync sync;
    };
    const auto state = std::make_shared<DynState>();
    const auto work = [state, &fn, n, grain] {
        for (;;) {
            const std::size_t b = state->next.fetch_add(grain);
            if (b >= n)
                return;
            const std::size_t e = std::min(n, b + grain);
            for (std::size_t i = b; i < e; ++i)
                fn(i);
        }
    };

    const std::size_t chunks = (n + grain - 1) / grain;
    const std::size_t helpers = std::min(threads_.size(), chunks);
    {
        std::lock_guard<std::mutex> lk(state->sync.m);
        state->sync.remaining = helpers;
    }
    for (std::size_t h = 0; h < helpers; ++h)
        submit([state, work] {
            work();
            state->sync.finishOne();
        });
    work();
    state->sync.wait();
}

} // namespace vlr

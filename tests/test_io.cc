/**
 * @file
 * Round-trip tests for binary serialization of trained artifacts.
 */

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vecsearch/io.h"

namespace vlr::vs
{
namespace
{

std::vector<float>
gaussianData(std::size_t n, std::size_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(n * d);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    return v;
}

TEST(Io, PqRoundTripPreservesCodebooks)
{
    const auto data = gaussianData(800, 16, 1);
    ProductQuantizer pq(16, 4, 4);
    pq.train(data, 800);

    std::stringstream buf;
    savePq(buf, pq);
    const auto loaded = loadPq(buf);

    EXPECT_TRUE(loaded.isTrained());
    EXPECT_EQ(loaded.dim(), pq.dim());
    EXPECT_EQ(loaded.numSub(), pq.numSub());
    EXPECT_EQ(loaded.nbits(), pq.nbits());
    for (std::size_t s = 0; s < pq.numSub(); ++s) {
        const auto a = pq.codebook(s);
        const auto b = loaded.codebook(s);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_FLOAT_EQ(a[i], b[i]);
    }
}

TEST(Io, PqRoundTripPreservesEncodings)
{
    const auto data = gaussianData(600, 8, 2);
    ProductQuantizer pq(8, 2, 8);
    pq.train(data, 600);
    std::stringstream buf;
    savePq(buf, pq);
    const auto loaded = loadPq(buf);

    const auto codes_a = pq.encodeBatch(data, 600);
    const auto codes_b = loaded.encodeBatch(data, 600);
    ASSERT_EQ(codes_a.size(), codes_b.size());
    for (std::size_t i = 0; i < codes_a.size(); ++i)
        EXPECT_EQ(codes_a[i], codes_b[i]) << "code " << i;
}

TEST(Io, SaveUntrainedPqIsFatal)
{
    ProductQuantizer pq(8, 2, 4);
    std::stringstream buf;
    EXPECT_THROW(savePq(buf, pq), std::runtime_error);
}

TEST(Io, LoadPqRejectsBadMagic)
{
    std::stringstream buf;
    buf << "not a pq file at all, definitely";
    EXPECT_THROW(loadPq(buf), std::runtime_error);
}

TEST(Io, LoadPqRejectsTruncatedStream)
{
    const auto data = gaussianData(300, 8, 3);
    ProductQuantizer pq(8, 2, 4);
    pq.train(data, 300);
    std::stringstream buf;
    savePq(buf, pq);
    const std::string full = buf.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(loadPq(cut), std::runtime_error);
}

TEST(Io, FlatIndexRoundTripPreservesSearch)
{
    const auto data = gaussianData(500, 12, 4);
    FlatIndex index(12);
    index.add(data, 500);

    std::stringstream buf;
    saveFlatIndex(buf, index);
    const auto loaded = loadFlatIndex(buf);

    EXPECT_EQ(loaded.size(), index.size());
    EXPECT_EQ(loaded.dim(), index.dim());
    EXPECT_EQ(loaded.metric(), index.metric());
    const auto q = gaussianData(1, 12, 5);
    const auto a = index.search(q.data(), 10);
    const auto b = loaded.search(q.data(), 10);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(Io, FlatIndexInnerProductMetricSurvives)
{
    FlatIndex index(4, Metric::InnerProduct);
    const auto data = gaussianData(20, 4, 6);
    index.add(data, 20);
    std::stringstream buf;
    saveFlatIndex(buf, index);
    const auto loaded = loadFlatIndex(buf);
    EXPECT_EQ(loaded.metric(), Metric::InnerProduct);
}

TEST(Io, EmptyFlatIndexRoundTrips)
{
    FlatIndex index(8);
    std::stringstream buf;
    saveFlatIndex(buf, index);
    const auto loaded = loadFlatIndex(buf);
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_EQ(loaded.dim(), 8u);
}

TEST(Io, CoarseQuantizerRoundTripPreservesProbes)
{
    const std::size_t nlist = 64, dim = 8;
    auto centroids = gaussianData(nlist, dim, 7);
    FlatCoarseQuantizer cq(centroids, nlist, dim);

    std::stringstream buf;
    saveCoarseQuantizer(buf, cq);
    const auto loaded = loadCoarseQuantizer(buf);

    EXPECT_EQ(loaded->nlist(), nlist);
    EXPECT_EQ(loaded->dim(), dim);
    const auto q = gaussianData(1, dim, 8);
    const auto a = cq.probe(q.data(), 16);
    const auto b = loaded->probe(q.data(), 16);
    ASSERT_EQ(a.clusters.size(), b.clusters.size());
    for (std::size_t i = 0; i < a.clusters.size(); ++i) {
        EXPECT_EQ(a.clusters[i], b.clusters[i]);
        EXPECT_FLOAT_EQ(a.dists[i], b.dists[i]);
    }
}

TEST(Io, LoadedCqRebuildsIdenticalIvfIndex)
{
    // The deployment path: persist the trained CQ, reload it, rebuild
    // the inverted lists from raw vectors, and get identical routing.
    const std::size_t nlist = 32, dim = 8, n = 1000;
    auto centroids = gaussianData(nlist, dim, 9);
    auto cq_a = std::make_shared<FlatCoarseQuantizer>(centroids, nlist,
                                                      dim);
    std::stringstream buf;
    saveCoarseQuantizer(buf, *cq_a);
    auto cq_b = loadCoarseQuantizer(buf);

    const auto data = gaussianData(n, dim, 10);
    IvfFlatIndex a(cq_a), b(cq_b);
    a.add(data, n);
    b.add(data, n);
    for (cluster_id_t c = 0; c < static_cast<cluster_id_t>(nlist); ++c)
        EXPECT_EQ(a.listSize(c), b.listSize(c)) << "cluster " << c;
}

TEST(Io, FromCodebooksValidatesSize)
{
    EXPECT_THROW(
        ProductQuantizer::fromCodebooks(16, 4, 4, std::vector<float>(7)),
        std::runtime_error);
}

TEST(Io, ErrorsAreRecoverableIoErrors)
{
    // Loaders must throw the catchable IoError subtype (callers keep
    // serving the old index on a failed reload), never fatal().
    std::stringstream bad("not an artifact at all");
    try {
        loadPq(bad);
        FAIL() << "bad magic not rejected";
    } catch (const IoError &e) {
        EXPECT_NE(std::string(e.what()).find("vecsearch io:"),
                  std::string::npos);
    }
}

/** Small trained fast-scan index for packed-lists round trips. */
IvfPqFastScanIndex
tinyFastScan(std::size_t n, std::uint64_t seed)
{
    const std::size_t d = 8, nlist = 4;
    const auto data = gaussianData(n, d, seed);
    const auto centroids = gaussianData(nlist, d, seed + 1);
    auto cq = std::make_shared<FlatCoarseQuantizer>(centroids, nlist, d);
    IvfPqFastScanIndex index(cq, d / 4);
    index.train(data, n);
    index.add(data, n);
    return index;
}

TEST(Io, PackedListsRoundTripIsExact)
{
    const auto index = tinyFastScan(500, 20);
    std::stringstream buf;
    const auto layout = savePackedLists(buf, index);
    EXPECT_EQ(layout.total, index.size());
    EXPECT_EQ(buf.str().size(), layout.sectionBytes);

    const auto lists = loadPackedLists(buf, index.pq().numSub());
    ASSERT_EQ(lists.ids.size(), index.nlist());
    for (std::size_t c = 0; c < index.nlist(); ++c) {
        const auto ids = index.listIds(static_cast<cluster_id_t>(c));
        const auto packed =
            index.listPacked(static_cast<cluster_id_t>(c));
        ASSERT_EQ(lists.ids[c].size(), ids.size()) << "cluster " << c;
        EXPECT_TRUE(std::equal(ids.begin(), ids.end(),
                               lists.ids[c].begin()));
        ASSERT_EQ(lists.packed[c].size(), packed.size());
        EXPECT_TRUE(std::equal(packed.begin(), packed.end(),
                               lists.packed[c].begin()));
    }

    // The zero-copy buffer parser agrees with the stream reader.
    const std::string bytes = buf.str();
    const auto parsed = parsePackedLists(
        reinterpret_cast<const std::uint8_t *>(bytes.data()),
        bytes.size(), index.pq().numSub());
    EXPECT_EQ(parsed.sectionBytes, layout.sectionBytes);
    for (std::size_t c = 0; c < index.nlist(); ++c) {
        EXPECT_EQ(parsed.segments[c].offset, layout.segments[c].offset);
        EXPECT_EQ(parsed.segments[c].count, layout.segments[c].count);
    }
}

TEST(Io, PackedListsRejectsBadMagicAndTruncation)
{
    const auto index = tinyFastScan(300, 21);
    std::stringstream buf;
    savePackedLists(buf, index);
    std::string bytes = buf.str();

    std::string corrupt = bytes;
    corrupt[0] = 'X';
    std::stringstream bad(corrupt);
    EXPECT_THROW(loadPackedLists(bad, index.pq().numSub()), IoError);

    // Truncation mid-segment is an explicit IoError, not garbage lists.
    std::stringstream cut(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(loadPackedLists(cut, index.pq().numSub()), IoError);
    EXPECT_THROW(
        parsePackedLists(
            reinterpret_cast<const std::uint8_t *>(bytes.data()),
            bytes.size() / 2, index.pq().numSub()),
        IoError);

    // Wrong sub-quantizer count is caught before any allocation.
    std::stringstream wrong(bytes);
    EXPECT_THROW(loadPackedLists(wrong, index.pq().numSub() + 1),
                 IoError);
}

} // namespace
} // namespace vlr::vs

/**
 * @file
 * Memory-mapped cold-tier backend over an IndexStore artifact.
 *
 * The paper's tiered design keeps hot clusters in fast replicas and
 * serves the long tail from slower storage. MmapColdTier is that slow
 * path taken beyond RAM: it mmap()s an artifact file and scans each
 * probed cluster's packed segment directly out of the mapping, so the
 * kernel's page cache — not the process heap — decides how much of the
 * cold tier is resident. Per-cluster segments are page-aligned, letting
 * the tier madvise() the access pattern and report per-cluster
 * residency from mincore().
 *
 * Parity: the mapped bytes are exactly the bytes savePackedLists wrote
 * from the source index, and the scan kernel tolerates any alignment,
 * so distances are bit-identical to the in-memory index the artifact
 * was saved from — MmapColdTier honours the HotShardBackend parity
 * contract and can also stand in as a (slow) shard backend in tests.
 *
 * Streaming ingestion: append() encodes new vectors into per-cluster
 * append-only delta lists held in RAM and visible to scans immediately;
 * mergeDeltas() folds them into a rewritten artifact (temp file +
 * atomic rename) and remaps, typically from the online updater's
 * repartition hook. Scans never block on a merge except for two brief
 * pointer swaps.
 */

#ifndef VLR_STORAGE_MMAP_COLD_TIER_H
#define VLR_STORAGE_MMAP_COLD_TIER_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/shard_backend.h"
#include "storage/index_store.h"
#include "vecsearch/io.h"

namespace vlr::storage
{

/** Construction options for MmapColdTier. */
struct MmapColdTierOptions
{
    /** Page-cache advice applied to the mapped lists section. */
    enum class Advice
    {
        kNormal,     ///< kernel default readahead
        kRandom,     ///< POSIX_MADV_RANDOM — probe-driven access (default)
        kSequential, ///< POSIX_MADV_SEQUENTIAL
        kWillNeed    ///< POSIX_MADV_WILLNEED — eager readahead
    };

    Advice advice = Advice::kRandom;
    /** Pre-fault the whole mapping at open (MAP_POPULATE). */
    bool prefault = false;
};

/**
 * Cold-tier search backend serving packed inverted lists from a
 * memory-mapped IndexStore artifact, with in-RAM delta lists for
 * streaming ingestion.
 *
 * Thread safety: searchClusters(), append(), mergeDeltas() and every
 * stats accessor may be called concurrently from any threads. Scans
 * take a shared lock for their whole duration; append() and the two
 * state swaps inside mergeDeltas() take the exclusive side briefly.
 * Merges are serialized among themselves. The artifact file must not
 * be modified externally while the tier is open.
 */
class MmapColdTier : public core::HotShardBackend
{
  public:
    /**
     * Map the artifact at @p path. @throws vs::IoError if the file is
     * missing, malformed, truncated, or cannot be mapped.
     */
    explicit MmapColdTier(const std::string &path,
                          const MmapColdTierOptions &opts = {});
    ~MmapColdTier() override;

    MmapColdTier(const MmapColdTier &) = delete;
    MmapColdTier &operator=(const MmapColdTier &) = delete;

    std::vector<vs::SearchHit> searchClusters(
        const float *query, std::size_t k,
        std::span<const cluster_id_t> clusters,
        vs::SearchScratch *scratch) const override;

    /** Bytes served: mapped list segments + in-RAM delta lists. */
    std::size_t bytes() const override;
    std::size_t numClusters() const override;
    /** Base vectors in the mapping + unmerged delta vectors. */
    std::size_t numVectors() const override;
    std::string name() const override { return "mmap-cold"; }

    /**
     * RAM-resident bytes right now: mincore() over the mapped list
     * segments plus all delta bytes (deltas always live in RAM).
     */
    std::size_t residentBytes() const override;
    /** Clusters whose mapped segment is fully resident (plus deltas). */
    std::size_t residentClusters() const override;

    /**
     * Encode and ingest @p n vectors into the per-cluster delta lists.
     * Cluster assignment and ids match what IvfPqFastScanIndex::add on
     * the equivalent in-memory index would produce (ids continue the
     * artifact's numbering), and the vectors are visible to scans as
     * soon as the call returns.
     */
    void append(std::span<const float> vecs, std::size_t n);

    /**
     * Fold all delta lists into the artifact: rewrite it via a temp
     * file + atomic rename, then remap. No-op when no deltas are
     * pending. @throws vs::IoError if the rewrite fails — pending
     * deltas are retained and retried by the next merge.
     */
    void mergeDeltas();

    /** Header of the currently-mapped artifact. */
    ArtifactInfo artifact() const;
    /** Vectors ingested but not yet merged. */
    std::size_t deltaVectors() const;
    /** Path of the backing artifact file. */
    const std::string &path() const { return path_; }

  private:
    struct Mapping;

    /** Per-cluster in-RAM delta list. */
    struct ClusterDelta
    {
        std::vector<idx_t> ids;
        /** Fast-scan blocks (scanned alongside the mapped segment). */
        std::vector<std::uint8_t> packed;
        /** Plain codes, m bytes per vector (merge replay). */
        std::vector<std::uint8_t> rawCodes;
    };

    /** One generation of delta lists. */
    struct DeltaSet
    {
        std::vector<ClusterDelta> clusters;
        std::size_t count = 0;
        std::size_t bytes = 0;
    };

    /** Delegation target: adopts a mapping opened by openMapping(). */
    MmapColdTier(std::string path, const MmapColdTierOptions &opts,
                 std::unique_ptr<Mapping> map);

    static std::unique_ptr<Mapping> openMapping(
        const std::string &path, const MmapColdTierOptions &opts);
    static void appendDeltas(DeltaSet &into, DeltaSet &&from,
                             std::size_t m);

    const std::string path_;
    const MmapColdTierOptions opts_;

    /** Trained parameters, loaded once (merges never change them). */
    vs::ProductQuantizer pq_;
    std::shared_ptr<const vs::FlatCoarseQuantizer> cq_;

    /** Guards map_, active_, sealed_ and nextId_. */
    mutable std::shared_mutex stateMutex_;
    std::unique_ptr<Mapping> map_;
    /** Deltas accepting new appends. */
    std::unique_ptr<DeltaSet> active_;
    /** Deltas frozen by an in-flight (or failed) merge. */
    std::unique_ptr<DeltaSet> sealed_;
    idx_t nextId_ = 0;

    /** Serializes mergeDeltas() calls. */
    std::mutex mergeMutex_;
};

} // namespace vlr::storage

#endif // VLR_STORAGE_MMAP_COLD_TIER_H

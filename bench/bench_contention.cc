/**
 * @file
 * Reader-scaling contention bench: does search throughput scale with
 * reader threads now that the read path takes no locks?
 *
 * Sweeps concurrent reader threads from 1 to the hardware concurrency,
 * each thread running serial searches with private scratch. Two
 * systems per point:
 *
 *  - flat: the bare IvfPqFastScanIndex (no epoch machinery, no stat
 *    shards) — the scaling ceiling of the underlying scan kernels;
 *  - tiered: TieredIndex under *churn* — a control thread continuously
 *    repartitions (snapshot swap + epoch retirement of the displaced
 *    generation) and drains access counts while the readers run, the
 *    adversarial schedule for the lock-free read path.
 *
 * The gate: tiered search throughput at N readers must be at least
 * 0.7 * N * single-reader tiered throughput for every swept N. A
 * mutex-pinned snapshot or CAS-looped stat counter serializes readers
 * and fails this immediately at small N; the epoch-guarded read path
 * with per-thread stat shards passes. Exit code 1 on gate failure, so
 * CI catches read-path contention regressions.
 *
 * Writes BENCH_contention.json next to the binary for trend archiving.
 *
 * Run: ./bench_contention [num_queries_per_reader] [--smoke]
 */

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "core/access_profile.h"
#include "core/tiered_index.h"
#include "workload/dataset.h"

namespace
{

/**
 * Run @p readers threads, each calling @p searchOne(reader, i) for i
 * in [0, queries_per_reader), and return aggregate queries/second.
 * All readers spin on a start flag so the measured window covers
 * concurrent execution only.
 */
template <typename SearchOne>
double
runReaders(std::size_t readers, std::size_t queries_per_reader,
           const SearchOne &searchOne)
{
    std::atomic<bool> start{false};
    std::vector<std::thread> threads;
    threads.reserve(readers);
    for (std::size_t r = 0; r < readers; ++r)
        threads.emplace_back([&, r] {
            while (!start.load(std::memory_order_acquire)) {
            }
            for (std::size_t i = 0; i < queries_per_reader; ++i)
                searchOne(r, i);
        });
    vlr::WallTimer wall;
    start.store(true, std::memory_order_release);
    for (auto &t : threads)
        t.join();
    const double secs = wall.elapsed();
    return static_cast<double>(readers * queries_per_reader) / secs;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vlr;

    const auto args = bench::parseBenchArgs(argc, argv,
                                            /*default_queries=*/2000,
                                            /*smoke_queries=*/300);
    if (!args.ok) {
        std::cerr << "bench_contention: " << args.error << "\n"
                  << "usage: bench_contention "
                     "[num_queries_per_reader >= 1] [--smoke]\n";
        return 1;
    }
    const std::size_t queries_per_reader = args.numQueries;
    const std::size_t hw = ThreadPool::hardwareConcurrency();

    std::cout << "Reader-scaling contention bench"
              << (args.smoke ? " (smoke mode)" : "") << "\n"
              << "===============================\n\n";

    // --- corpus + index ----------------------------------------------
    wl::DatasetSpec spec = wl::tinySpec();
    spec.numVectors = args.smoke ? 8000 : 20000;
    spec.dim = 64;
    spec.numClusters = args.smoke ? 64 : 128;
    spec.nprobe = 8;
    wl::SyntheticDataset dataset(spec);
    dataset.buildVectors();
    const auto cq = dataset.makeCoarseQuantizer();
    vs::IvfPqFastScanIndex index(cq, spec.dim / 4);
    index.train(dataset.vectors(), spec.numVectors);
    index.addPreassigned(dataset.vectors(), spec.numVectors,
                         dataset.assignments());
    std::cout << "index: " << index.size() << " vectors, nlist "
              << index.nlist() << ", hardware threads " << hw << "\n\n";

    // --- access profile for the tiered build -------------------------
    wl::QueryGenerator gen(dataset, 123);
    const std::size_t n_cal = args.smoke ? 300 : 1000;
    const auto cal_queries = gen.generate(n_cal);
    std::vector<double> work(spec.numClusters);
    for (std::size_t c = 0; c < spec.numClusters; ++c)
        work[c] = static_cast<double>(dataset.clusterSizes()[c]) *
                  spec.scaleFactor();
    const auto plans = wl::PlanSet::build(*cq, cal_queries, n_cal,
                                          spec.nprobe, work);
    const auto profile = core::AccessProfile::fromPlans(plans, dataset);

    const double rho = 0.25;
    core::TieredIndex tiered(index, profile, rho);

    // Private query stream per reader so threads never share buffers.
    const std::size_t max_readers = hw;
    const auto queries =
        gen.generate(max_readers * queries_per_reader);
    const std::size_t k = 10;
    const auto query_at = [&](std::size_t reader, std::size_t i) {
        return queries.data() +
               (reader * queries_per_reader + i) * spec.dim;
    };

    // Reader counts: 1, 2, 4, ... and always the full machine.
    std::vector<std::size_t> reader_counts;
    for (std::size_t n = 1; n < hw; n *= 2)
        reader_counts.push_back(n);
    reader_counts.push_back(hw);

    struct Row
    {
        std::size_t readers = 0;
        double flatQps = 0.0;
        double tieredQps = 0.0;
        double scaling = 0.0;   // tieredQps / (N * tieredQps@1)
        std::size_t churns = 0; // repartitions completed in the window
        bool pass = false;
    };
    std::vector<Row> rows;
    const double min_scaling = 0.7;
    double tiered_qps_1 = 0.0;
    bool gate_ok = true;

    TextTable t({"readers", "flat QPS", "tiered QPS", "scaling",
                 "churns", "gate"});
    const auto hot_a = profile.hotClusters(rho);
    const auto hot_b = profile.hotClusters(rho / 2.0);

    for (const std::size_t n : reader_counts) {
        // Flat baseline: per-thread scratch, no shared mutable state.
        std::vector<vs::SearchScratch> flat_scratch(n);
        const double flat_qps =
            runReaders(n, queries_per_reader, [&](std::size_t r,
                                                  std::size_t i) {
                index.search(query_at(r, i), k, spec.nprobe, nullptr,
                             &flat_scratch[r]);
            });

        // Tiered under churn: repartition + drain continuously while
        // the readers run.
        std::atomic<bool> stop_churn{false};
        std::atomic<std::size_t> churns{0};
        std::thread churn([&] {
            bool flip = false;
            while (!stop_churn.load(std::memory_order_acquire)) {
                tiered.repartition(flip ? hot_b : hot_a);
                flip = !flip;
                tiered.drainAccessCounts();
                churns.fetch_add(1, std::memory_order_relaxed);
            }
        });
        std::vector<vs::SearchScratch> tiered_scratch(n);
        const double tiered_qps =
            runReaders(n, queries_per_reader, [&](std::size_t r,
                                                  std::size_t i) {
                tiered.search(query_at(r, i), k, spec.nprobe,
                              &tiered_scratch[r]);
            });
        stop_churn.store(true, std::memory_order_release);
        churn.join();

        if (n == reader_counts.front())
            tiered_qps_1 = tiered_qps;
        const double scaling =
            tiered_qps / (static_cast<double>(n) * tiered_qps_1);
        const bool pass = scaling >= min_scaling;
        gate_ok = gate_ok && pass;
        rows.push_back({n, flat_qps, tiered_qps, scaling,
                        churns.load(), pass});
        t.addRow({std::to_string(n), TextTable::num(flat_qps, 0),
                  TextTable::num(tiered_qps, 0),
                  TextTable::num(scaling, 2),
                  std::to_string(churns.load()),
                  pass ? "ok" : "FAIL"});
    }
    t.print(std::cout);

    std::cout << "\n'scaling' is tiered QPS at N readers / (N x tiered "
                 "QPS at 1 reader),\nmeasured while a control thread "
                 "continuously repartitions (snapshot\nswap + epoch "
                 "retirement) and drains access counts; 'churns' counts "
                 "the\nrepartition+drain cycles completed inside the "
                 "measurement window. The\ngate requires scaling >= "
              << TextTable::num(min_scaling, 2)
              << " at every swept reader count.\n";

    // --- perf snapshot for CI trend archiving ------------------------
    {
        std::ofstream os("BENCH_contention.json");
        bench::JsonWriter w(os);
        w.beginObject();
        w.kv("bench", "contention");
        w.kv("smoke", args.smoke);
        w.kv("queriesPerReader", queries_per_reader);
        w.kv("hardwareThreads", hw);
        w.kv("numVectors", spec.numVectors);
        w.kv("rho", rho);
        w.kv("minScaling", min_scaling);
        w.kv("gatePassed", gate_ok);
        w.key("sweep");
        w.beginArray();
        for (const Row &r : rows) {
            w.beginObject();
            w.kv("readers", r.readers);
            w.kv("flatQps", r.flatQps);
            w.kv("tieredQps", r.tieredQps);
            w.kv("scaling", r.scaling);
            w.kv("churns", r.churns);
            w.kv("pass", r.pass);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
    }
    std::cout << "\nwrote BENCH_contention.json\n";

    if (!gate_ok) {
        std::cerr << "bench_contention: scaling gate FAILED (tiered "
                     "read path is serializing readers)\n";
        return 1;
    }
    return 0;
}

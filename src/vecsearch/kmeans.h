/**
 * @file
 * Lloyd's k-means with k-means++ seeding, used to train IVF coarse
 * quantizers and product-quantizer codebooks.
 */

#ifndef VLR_VECSEARCH_KMEANS_H
#define VLR_VECSEARCH_KMEANS_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace vlr
{
class ThreadPool;
}

namespace vlr::vs
{

struct KMeansParams
{
    std::size_t k = 16;
    int maxIters = 15;
    std::uint64_t seed = 1234;
    /** Stop when relative objective improvement falls below this. */
    double tol = 1e-4;
    /**
     * Train on at most this many points per centroid (subsampled);
     * 0 means use all points. Matches Faiss's practice of capping
     * training-set size for speed.
     */
    std::size_t maxPointsPerCentroid = 256;
};

struct KMeansResult
{
    /** k * d row-major centroids. */
    std::vector<float> centroids;
    /** Final mean squared distance to the assigned centroid. */
    double objective = 0.0;
    int iterations = 0;
};

/**
 * Train k-means on n d-dimensional vectors.
 *
 * Empty clusters are repaired by splitting the largest cluster, so the
 * result always has exactly k non-degenerate centroids when n >= k.
 *
 * @param data n*d row-major floats.
 * @param pool optional pool for parallel assignment (nullptr = serial).
 */
KMeansResult kmeansTrain(std::span<const float> data, std::size_t n,
                         std::size_t d, const KMeansParams &params,
                         ThreadPool *pool = nullptr);

/**
 * Assign each vector to its nearest centroid (L2).
 * @return n cluster indexes in [0, k).
 */
std::vector<std::int32_t> kmeansAssign(std::span<const float> data,
                                       std::size_t n, std::size_t d,
                                       std::span<const float> centroids,
                                       std::size_t k,
                                       ThreadPool *pool = nullptr);

} // namespace vlr::vs

#endif // VLR_VECSEARCH_KMEANS_H

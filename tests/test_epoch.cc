/**
 * @file
 * Tests for epoch-based reclamation (core/epoch.h): per-thread slot
 * registry, guard nesting, deferred reclamation ordering, and a
 * publish/retire stress proving a snapshot is never freed while a
 * reader holds it.
 */

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/epoch.h"

namespace vlr::core
{
namespace
{

// --- PerThread -------------------------------------------------------

TEST(PerThread, LocalIsStablePerThreadAndDistinctAcrossThreads)
{
    PerThread<int> slots;
    int *mine = &slots.local();
    EXPECT_EQ(mine, &slots.local());
    *mine = 41;

    int *theirs = nullptr;
    std::thread t([&] {
        theirs = &slots.local();
        *theirs = 42;
    });
    t.join();

    EXPECT_NE(mine, theirs);
    EXPECT_EQ(slots.size(), 2u);
    int sum = 0;
    slots.forEach([&sum](const int &v) { sum += v; });
    EXPECT_EQ(sum, 41 + 42);
}

TEST(PerThread, FactoryInitializesEverySlot)
{
    PerThread<int> slots([] { return std::make_unique<int>(7); });
    EXPECT_EQ(slots.local(), 7);
    std::thread t([&] { EXPECT_EQ(slots.local(), 7); });
    t.join();
    EXPECT_EQ(slots.size(), 2u);
}

TEST(PerThread, InstanceIdsAreNeverReusedAcrossDestruction)
{
    // A destroyed instance leaves a stale entry in the thread-local
    // cache; a new instance must get its own slot, not the stale one.
    auto first = std::make_unique<PerThread<int>>();
    first->local() = 1;
    first.reset();
    PerThread<int> second;
    second.local() = 2;
    EXPECT_EQ(second.size(), 1u);
    second.forEach([](const int &v) { EXPECT_EQ(v, 2); });
}

// --- EpochManager ----------------------------------------------------

struct Canary
{
    explicit Canary(std::atomic<int> &frees) : frees_(frees) {}
    ~Canary()
    {
        magic = 0xdead;
        frees_.fetch_add(1, std::memory_order_relaxed);
    }
    std::uint32_t magic = 0xfeed;
    std::atomic<int> &frees_;
};

TEST(EpochManager, RetireWithoutReadersFreesImmediately)
{
    std::atomic<int> frees{0};
    EpochManager mgr;
    mgr.retire(new Canary(frees));
    EXPECT_EQ(frees.load(), 1);
    EXPECT_EQ(mgr.limboSize(), 0u);
}

TEST(EpochManager, ActiveGuardDefersReclamation)
{
    std::atomic<int> frees{0};
    EpochManager mgr;
    Canary *c = new Canary(frees);
    {
        EpochGuard g(mgr);
        // Retire on another thread: the reader here pinned the epoch
        // before the retirement, so the object must stay alive.
        std::thread writer([&] { mgr.retire(c); });
        writer.join();
        EXPECT_EQ(frees.load(), 0);
        EXPECT_EQ(mgr.limboSize(), 1u);
        EXPECT_EQ(c->magic, 0xfeedu);
    }
    EXPECT_EQ(mgr.tryReclaim(), 1u);
    EXPECT_EQ(frees.load(), 1);
    EXPECT_EQ(mgr.limboSize(), 0u);
}

TEST(EpochManager, NestedGuardsHoldUntilOutermostExit)
{
    std::atomic<int> frees{0};
    EpochManager mgr;
    Canary *c = new Canary(frees);
    {
        EpochGuard outer(mgr);
        {
            EpochGuard inner(mgr);
            std::thread writer([&] { mgr.retire(c); });
            writer.join();
        }
        // The inner guard exited, but the outer pin still protects the
        // epoch announced at the outermost enter.
        mgr.tryReclaim();
        EXPECT_EQ(frees.load(), 0);
        EXPECT_EQ(c->magic, 0xfeedu);
    }
    EXPECT_EQ(mgr.tryReclaim(), 1u);
    EXPECT_EQ(frees.load(), 1);
}

TEST(EpochManager, LateReaderDoesNotPinEarlierRetirement)
{
    // An object retired at epoch R is freed even while a reader is
    // active, provided that reader entered after the retirement.
    std::atomic<int> frees{0};
    EpochManager mgr;
    std::thread writer([&] { mgr.retire(new Canary(frees)); });
    writer.join();
    EpochGuard late(mgr);
    EXPECT_EQ(mgr.limboSize(), 0u);
    EXPECT_EQ(frees.load(), 1);
}

TEST(EpochManager, ReclamationRespectsRetirementOrder)
{
    // Retire A and B under one pin: both wait; releasing the pin frees
    // both in one reclaim pass.
    std::atomic<int> frees{0};
    EpochManager mgr;
    Canary *a = new Canary(frees);
    Canary *b = new Canary(frees);
    {
        EpochGuard g(mgr);
        std::thread writer([&] {
            mgr.retire(a);
            mgr.retire(b);
        });
        writer.join();
        EXPECT_EQ(mgr.limboSize(), 2u);
        EXPECT_EQ(frees.load(), 0);
    }
    EXPECT_EQ(mgr.tryReclaim(), 2u);
    EXPECT_EQ(frees.load(), 2);
}

TEST(EpochManager, DestructorDrainsLimbo)
{
    std::atomic<int> frees{0};
    {
        EpochManager mgr;
        // Park objects in limbo (retire under a pin, then release the
        // pin without a manual reclaim) so destruction finds them.
        EpochGuard *g = new EpochGuard(mgr);
        std::thread writer([&] {
            mgr.retire(new Canary(frees));
            mgr.retire(new Canary(frees));
        });
        writer.join();
        EXPECT_EQ(mgr.limboSize(), 2u);
        delete g; // no tryReclaim() afterwards
        EXPECT_EQ(frees.load(), 0);
    }
    EXPECT_EQ(frees.load(), 2);
}

TEST(EpochManager, SnapshotNeverFreedWhileReaderHoldsIt)
{
    // Publish/retire churn against hammering readers: each reader pins
    // an epoch, loads the current snapshot, and checks its magic many
    // times inside the guard. The deleter poisons the magic, so any
    // premature reclamation shows up as a torn read. Run with
    // ASan/UBSan or TSan for the full effect.
    std::atomic<int> frees{0};
    std::atomic<bool> stop{false};
    EpochManager mgr;
    std::atomic<Canary *> current{new Canary(frees)};

    constexpr int kReaders = 4;
    std::atomic<long> reads{0};
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int t = 0; t < kReaders; ++t)
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_acquire)) {
                EpochGuard g(mgr);
                const Canary *c =
                    current.load(std::memory_order_acquire);
                for (int i = 0; i < 64; ++i)
                    ASSERT_EQ(c->magic, 0xfeedu);
                reads.fetch_add(1, std::memory_order_relaxed);
            }
        });

    constexpr int kSwaps = 2000;
    std::thread writer([&] {
        for (int i = 0; i < kSwaps; ++i) {
            Canary *next = new Canary(frees);
            Canary *old =
                current.exchange(next, std::memory_order_acq_rel);
            mgr.retire(old);
        }
    });
    writer.join();
    stop.store(true, std::memory_order_release);
    for (auto &r : readers)
        r.join();

    mgr.tryReclaim();
    EXPECT_EQ(mgr.limboSize(), 0u);
    EXPECT_EQ(frees.load(), kSwaps);
    EXPECT_GT(reads.load(), 0);
    delete current.load();
}

} // namespace
} // namespace vlr::core

/**
 * @file
 * Tests for the flat (exact) index and the HNSW graph index, including
 * the HNSW-backed coarse quantizer.
 */

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/threadpool.h"
#include "vecsearch/flat_index.h"
#include "vecsearch/hnsw.h"
#include "vecsearch/metric.h"

namespace vlr::vs
{
namespace
{

std::vector<float>
gaussianData(Rng &rng, std::size_t n, std::size_t d)
{
    std::vector<float> data(n * d);
    for (auto &x : data)
        x = static_cast<float>(rng.gaussian());
    return data;
}

TEST(FlatIndex, FindsExactNearest)
{
    Rng rng(1);
    const std::size_t n = 500, d = 12;
    const auto data = gaussianData(rng, n, d);
    FlatIndex index(d);
    index.add(data, n);
    EXPECT_EQ(index.size(), n);

    const auto q = gaussianData(rng, 1, d);
    const auto hits = index.search(q.data(), 5);
    ASSERT_EQ(hits.size(), 5u);

    // Manual exhaustive check.
    std::vector<SearchHit> manual(n);
    for (std::size_t i = 0; i < n; ++i)
        manual[i] = {static_cast<idx_t>(i),
                     l2Sqr(q.data(), data.data() + i * d, d)};
    std::sort(manual.begin(), manual.end(),
              [](const auto &a, const auto &b) {
                  return a.dist != b.dist ? a.dist < b.dist
                                          : a.id < b.id;
              });
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(hits[i].id, manual[i].id) << "rank " << i;
}

TEST(FlatIndex, SelfQueryReturnsSelfFirst)
{
    Rng rng(2);
    const auto data = gaussianData(rng, 100, 8);
    FlatIndex index(8);
    index.add(data, 100);
    const auto hits = index.search(data.data() + 37 * 8, 1);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].id, 37);
    EXPECT_FLOAT_EQ(hits[0].dist, 0.f);
}

TEST(FlatIndex, BatchMatchesSingle)
{
    Rng rng(3);
    const auto data = gaussianData(rng, 300, 8);
    FlatIndex index(8);
    index.add(data, 300);
    const auto queries = gaussianData(rng, 10, 8);
    const auto batch = index.searchBatch(queries, 10, 3);
    ASSERT_EQ(batch.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
        const auto single = index.search(queries.data() + i * 8, 3);
        ASSERT_EQ(batch[i].size(), single.size());
        for (std::size_t j = 0; j < single.size(); ++j)
            EXPECT_EQ(batch[i][j], single[j]);
    }
}

TEST(FlatIndex, BatchParallelMatchesSerial)
{
    Rng rng(4);
    const auto data = gaussianData(rng, 400, 8);
    FlatIndex index(8);
    index.add(data, 400);
    const auto queries = gaussianData(rng, 16, 8);
    ThreadPool pool(4);
    const auto serial = index.searchBatch(queries, 16, 4);
    const auto parallel = index.searchBatch(queries, 16, 4, &pool);
    for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_EQ(serial[i][j], parallel[i][j]);
}

TEST(FlatIndex, IncrementalAddAssignsSequentialIds)
{
    Rng rng(5);
    const auto a = gaussianData(rng, 10, 4);
    const auto b = gaussianData(rng, 10, 4);
    FlatIndex index(4);
    index.add(a, 10);
    index.add(b, 10);
    EXPECT_EQ(index.size(), 20u);
    // Vector 15 must be b[5].
    const float *v = index.vectorData(15);
    for (std::size_t j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(v[j], b[5 * 4 + j]);
}

TEST(FlatIndex, InnerProductMetricOrdersDescending)
{
    FlatIndex index(2, Metric::InnerProduct);
    const float data[] = {1.f, 0.f, 10.f, 0.f, 5.f, 0.f};
    index.add(std::span<const float>(data, 6), 3);
    const float q[] = {1.f, 0.f};
    const auto hits = index.search(q, 3);
    // Larger dot product first.
    EXPECT_EQ(hits[0].id, 1);
    EXPECT_EQ(hits[1].id, 2);
    EXPECT_EQ(hits[2].id, 0);
}

// --- HNSW --------------------------------------------------------------

TEST(Hnsw, HighRecallOnGaussianData)
{
    Rng rng(6);
    const std::size_t n = 2000, d = 16;
    const auto data = gaussianData(rng, n, d);
    FlatIndex flat(d);
    flat.add(data, n);
    HnswParams params;
    params.M = 16;
    params.efConstruction = 80;
    params.efSearch = 64;
    Hnsw hnsw(d, params);
    hnsw.addBatch(data, n);
    EXPECT_EQ(hnsw.size(), n);

    const std::size_t nq = 50, k = 10;
    const auto queries = gaussianData(rng, nq, d);
    std::size_t found = 0;
    for (std::size_t i = 0; i < nq; ++i) {
        const auto exact = flat.search(queries.data() + i * d, k);
        const auto approx = hnsw.search(queries.data() + i * d, k);
        std::set<idx_t> truth;
        for (const auto &h : exact)
            truth.insert(h.id);
        for (const auto &h : approx)
            found += truth.count(h.id);
    }
    const double recall = static_cast<double>(found) / (nq * k);
    EXPECT_GT(recall, 0.9);
}

TEST(Hnsw, SelfQueryFindsSelf)
{
    Rng rng(7);
    const auto data = gaussianData(rng, 500, 8);
    Hnsw hnsw(8);
    hnsw.addBatch(data, 500);
    const auto hits = hnsw.search(data.data() + 123 * 8, 1);
    ASSERT_GE(hits.size(), 1u);
    EXPECT_EQ(hits[0].id, 123);
}

TEST(Hnsw, GraphMemoryGrowsWithM)
{
    Rng rng(8);
    const auto data = gaussianData(rng, 500, 8);
    HnswParams small, big;
    small.M = 8;
    big.M = 32;
    Hnsw a(8, small), b(8, big);
    a.addBatch(data, 500);
    b.addBatch(data, 500);
    EXPECT_GT(b.graphMemoryBytes(), a.graphMemoryBytes());
    EXPECT_EQ(a.vectorMemoryBytes(), b.vectorMemoryBytes());
}

TEST(Hnsw, MultipleLevelsEmergeAtScale)
{
    Rng rng(9);
    const auto data = gaussianData(rng, 2000, 4);
    Hnsw hnsw(4);
    hnsw.addBatch(data, 2000);
    EXPECT_GT(hnsw.maxLevel(), 0);
}

TEST(Hnsw, SearchOnEmptyIndexReturnsNothing)
{
    Hnsw hnsw(4);
    const float q[] = {0.f, 0.f, 0.f, 0.f};
    EXPECT_TRUE(hnsw.search(q, 5).empty());
}

// --- HnswCoarseQuantizer ------------------------------------------------

TEST(HnswCq, ProbesAreSortedByDistance)
{
    Rng rng(10);
    const std::size_t nlist = 128, d = 8;
    auto centroids = gaussianData(rng, nlist, d);
    HnswCoarseQuantizer cq(centroids, nlist, d);
    EXPECT_EQ(cq.nlist(), nlist);
    EXPECT_EQ(cq.dim(), d);

    const auto q = gaussianData(rng, 1, d);
    const auto probes = cq.probe(q.data(), 8);
    ASSERT_EQ(probes.clusters.size(), 8u);
    for (std::size_t i = 1; i < probes.dists.size(); ++i)
        EXPECT_GE(probes.dists[i], probes.dists[i - 1]);
}

TEST(HnswCq, AgreesWithFlatCqOnTopProbe)
{
    Rng rng(11);
    const std::size_t nlist = 256, d = 8;
    auto centroids = gaussianData(rng, nlist, d);
    FlatCoarseQuantizer flat(centroids, nlist, d);
    HnswParams params;
    params.efSearch = 128;
    HnswCoarseQuantizer hnsw(centroids, nlist, d, params);

    int agree = 0;
    const int nq = 50;
    const auto queries = gaussianData(rng, nq, d);
    for (int i = 0; i < nq; ++i) {
        const auto a = flat.probe(queries.data() + i * d, 1);
        const auto b = hnsw.probe(queries.data() + i * d, 1);
        agree += a.clusters[0] == b.clusters[0];
    }
    EXPECT_GE(agree, 45); // >= 90% top-1 agreement
}

TEST(HnswCq, CentroidAccessorRoundTrips)
{
    Rng rng(12);
    const std::size_t nlist = 32, d = 4;
    auto centroids = gaussianData(rng, nlist, d);
    HnswCoarseQuantizer cq(centroids, nlist, d);
    for (cluster_id_t c = 0; c < 32; ++c)
        for (std::size_t j = 0; j < d; ++j)
            EXPECT_FLOAT_EQ(cq.centroid(c)[j], centroids[c * d + j]);
}

} // namespace
} // namespace vlr::vs

/**
 * @file
 * Plain-text table / CSV writer used by the benchmark harnesses to print
 * the rows and series the paper's tables and figures report.
 */

#ifndef VLR_COMMON_TABLE_H
#define VLR_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace vlr
{

/** Column-aligned text table with an optional CSV dump. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: formats doubles with the given precision. */
    static std::string num(double v, int precision = 3);
    static std::string pct(double v, int precision = 1);

    /** Render aligned text to the stream. */
    void print(std::ostream &os) const;

    /** Render comma-separated values to the stream. */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner for bench output. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace vlr

#endif // VLR_COMMON_TABLE_H

#include "llmsim/engine.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace vlr::llm
{

LlmEngine::LlmEngine(sim::Simulator &sim,
                     std::vector<gpu::GpuDevice *> gpus, LlmConfig config,
                     LlmEngineParams params)
    : sim_(sim), gpus_(std::move(gpus)), config_(std::move(config)),
      params_(params),
      perf_(config_,
            gpus_.empty() ? gpu::GpuSpec{} : gpus_.front()->spec(),
            static_cast<int>(gpus_.empty() ? 1 : gpus_.size())),
      kv_(1, 1) // placeholder, replaced below
{
    if (gpus_.empty())
        fatal("LlmEngine: needs at least one GPU");
    const bytes_t per_gpu =
        config_.weightBytes() / static_cast<bytes_t>(gpus_.size());
    for (auto *g : gpus_)
        g->reserveWeights(per_gpu);
    refreshKvCapacity();
}

bytes_t
LlmEngine::instanceKvBytes() const
{
    bytes_t total = 0;
    for (const auto *g : gpus_)
        total += g->kvCacheBytes();
    return total;
}

void
LlmEngine::refreshKvCapacity()
{
    kv_ = PagedKvCache(instanceKvBytes(), config_.kvBytesPerToken());
}

void
LlmEngine::enqueue(LlmRequestPtr req)
{
    assert(req);
    req->enqueueTime = sim_.now();
    waiting_.push_back(std::move(req));
    maybeStartStep();
}

void
LlmEngine::maybeStartStep()
{
    if (stepping_)
        return;
    if (waiting_.empty() && prefillPending_.empty() && running_.empty())
        return;
    stepping_ = true;
    runStep();
}

double
LlmEngine::contentionFactor(double start, double duration) const
{
    double occ = 0.0;
    for (const auto *g : gpus_) {
        occ = std::max(occ,
                       g->retrievalOccupancyOver(start, start + duration));
    }
    return 1.0 + params_.contentionAlpha * occ;
}

void
LlmEngine::runStep()
{
    // Admission: reserve worst-case KV for prompt + output.
    while (!waiting_.empty() &&
           running_.size() + prefillPending_.size() < params_.maxNumSeqs) {
        const auto &req = waiting_.front();
        const std::size_t blocks =
            kv_.blocksForTokens(req->promptTokens + req->outputTokens);
        if (!kv_.tryReserve(blocks))
            break;
        prefillPending_.push_back(req);
        waiting_.pop_front();
    }

    const sim_time_t start = sim_.now();

    if (!prefillPending_.empty()) {
        // Prefill step: take pending prompts up to the token budget.
        std::vector<LlmRequestPtr> batch;
        std::size_t tokens = 0;
        while (!prefillPending_.empty() &&
               (batch.empty() ||
                tokens + prefillPending_.front()->promptTokens <=
                    params_.maxPrefillTokens)) {
            auto req = prefillPending_.front();
            prefillPending_.pop_front();
            tokens += req->promptTokens;
            req->prefillStartTime = start;
            batch.push_back(std::move(req));
        }
        const double base = perf_.prefillSeconds(tokens);
        const double dur = base * contentionFactor(start, base);
        sim_.schedule(dur, [this, batch = std::move(batch), dur]() {
            for (const auto &req : batch) {
                req->firstTokenTime = sim_.now();
                req->prefillSeconds = dur;
                req->generated = 1;
                running_.push_back(req);
                if (onFirstToken)
                    onFirstToken(req);
            }
            stepping_ = false;
            maybeStartStep();
        });
        return;
    }

    if (!running_.empty()) {
        // Decode step: one token for every running sequence.
        double ctx_tokens = 0.0;
        for (const auto &req : running_) {
            ctx_tokens += static_cast<double>(req->promptTokens +
                                              req->generated);
        }
        const double base = perf_.decodeSeconds(running_.size(), ctx_tokens);
        const double dur = base * contentionFactor(start, base);
        sim_.schedule(dur, [this]() {
            std::vector<LlmRequestPtr> finished;
            for (auto &req : running_) {
                ++req->generated;
                if (req->generated >= req->outputTokens) {
                    req->finishTime = sim_.now();
                    finished.push_back(req);
                }
            }
            if (!finished.empty()) {
                running_.erase(
                    std::remove_if(running_.begin(), running_.end(),
                                   [](const LlmRequestPtr &r) {
                                       return r->done();
                                   }),
                    running_.end());
                for (const auto &req : finished) {
                    kv_.release(kv_.blocksForTokens(req->promptTokens +
                                                    req->outputTokens));
                    ++completed_;
                    if (onFinish)
                        onFinish(req);
                }
            }
            stepping_ = false;
            maybeStartStep();
        });
        return;
    }

    // Nothing admissible (e.g. KV full with zero running is impossible,
    // but waiting requests may not fit yet) — go idle; the next enqueue
    // or completion will retry.
    stepping_ = false;
}

} // namespace vlr::llm

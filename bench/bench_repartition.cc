/**
 * @file
 * Repartition-under-load bench (paper Fig. 9 + the Figs. 11/16
 * SLO-attainment story run live). A Zipf query stream drifts mid-run
 * while the tiered engine keeps serving deadlined requests; three
 * configurations face the same streams:
 *
 *  - static    keeps the calibration-time hot set and batch cap;
 *  - adaptive  attaches the OnlineUpdater, so hit-rate drift triggers
 *              background multi-shard rebuilds + snapshot swaps;
 *  - autopilot runs the full closed loop (SloAutopilot): per-batch
 *              perf-model refits, live access profiling, partitioner
 *              re-picks of rho / shard count / batch cap, plus
 *              graceful nprobe degradation under backlog pressure.
 *
 * Every request carries a queueing deadline, so the per-disposition
 * stats expose the SLO story directly: the autopilot should show an
 * expired+rejected rate no worse than the static baseline under
 * drift. Results land in BENCH_repartition.json (per-phase percentiles
 * and dispositions for all three configs) and BENCH_autopilot.json
 * (decision trace: chosen rho / shards / batch cap over time).
 *
 * Run: ./bench_repartition [num_queries] [--smoke]
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "core/online_update.h"
#include "core/slo_autopilot.h"
#include "core/tiered_index.h"
#include "workload/dataset.h"

namespace
{

using namespace vlr;

/** Latency digest + routing + disposition deltas of one phase. */
struct PhaseResult
{
    std::string name;
    LatencySummary search;
    double hotProbeFraction = 0.0;
    /** Mean work-weighted hit rate over the phase's queries. */
    double meanHitRate = 0.0;
    std::size_t served = 0;
    std::size_t expired = 0;
    std::size_t rejected = 0;
    std::size_t degraded = 0;

    double
    missRate() const
    {
        const std::size_t resolved = served + expired + rejected;
        return resolved == 0
                   ? 0.0
                   : static_cast<double>(expired + rejected) /
                         static_cast<double>(resolved);
    }
};

/**
 * Burst-submit one phase of deadlined requests and drain. The burst
 * (rather than paced arrivals) guarantees a standing backlog, so the
 * deadline sweep, the EDF ordering and — when enabled — nprobe
 * degradation all face real queue pressure.
 */
PhaseResult
servePhase(const char *name, core::RetrievalEngine &engine,
           const core::TieredIndex &tiered,
           std::span<const float> queries, std::size_t n,
           std::size_t dim, double deadline_s)
{
    const auto before_t = tiered.stats();
    const auto before_e = engine.stats();

    std::vector<core::SearchRequest> requests(n);
    for (std::size_t i = 0; i < n; ++i) {
        requests[i].query =
            std::span<const float>(queries.data() + i * dim, dim);
        requests[i].deadlineSeconds = deadline_s;
        requests[i].tag = i;
    }
    auto futures = engine.submitMany(requests);
    engine.drain();

    SampleSet samples;
    for (auto &f : futures) {
        const auto r = f.get();
        if (r.served())
            samples.add(r.searchSeconds);
    }
    const auto after_t = tiered.stats();
    const auto after_e = engine.stats();

    PhaseResult r;
    r.name = name;
    r.search = summarizeLatency(samples);
    const auto probes = after_t.totalProbes - before_t.totalProbes;
    r.hotProbeFraction =
        probes == 0 ? 0.0
                    : static_cast<double>(after_t.hotProbes -
                                          before_t.hotProbes) /
                          static_cast<double>(probes);
    const auto queries_served = after_t.queries - before_t.queries;
    if (queries_served > 0)
        r.meanHitRate = std::max(
            0.0, (after_t.meanHitRate *
                      static_cast<double>(after_t.queries) -
                  before_t.meanHitRate *
                      static_cast<double>(before_t.queries)) /
                     static_cast<double>(queries_served));
    r.served = after_e.served - before_e.served;
    r.expired = after_e.expired - before_e.expired;
    r.rejected = after_e.rejected - before_e.rejected;
    r.degraded = after_e.degradedServed - before_e.degradedServed;
    return r;
}

/** Aggregate (expired + rejected) / resolved over a config's phases. */
double
configMissRate(const std::vector<PhaseResult> &phases)
{
    std::size_t missed = 0, resolved = 0;
    for (const PhaseResult &p : phases) {
        missed += p.expired + p.rejected;
        resolved += p.served + p.expired + p.rejected;
    }
    return resolved == 0 ? 0.0
                         : static_cast<double>(missed) /
                               static_cast<double>(resolved);
}

void
writePhaseJson(bench::JsonWriter &w, const PhaseResult &p)
{
    w.beginObject();
    w.kv("name", p.name);
    w.kv("p50SearchSeconds", p.search.p50);
    w.kv("p99SearchSeconds", p.search.p99);
    w.kv("meanHitRate", p.meanHitRate);
    w.kv("hotProbeFraction", p.hotProbeFraction);
    w.kv("served", p.served);
    w.kv("expired", p.expired);
    w.kv("rejected", p.rejected);
    w.kv("degradedServed", p.degraded);
    w.kv("missRate", p.missRate());
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vlr;

    const auto args = bench::parseBenchArgs(argc, argv,
                                            /*default_queries=*/4000,
                                            /*smoke_queries=*/600,
                                            /*min_queries=*/2);
    if (!args.ok) {
        std::cerr << "bench_repartition: " << args.error << "\n"
                  << "usage: bench_repartition [num_queries >= 2] "
                     "[--smoke]\n";
        return 1;
    }
    const std::size_t n_phase = args.numQueries / 2;
    // Tight enough that a standing burst backlog expires its tail on
    // the static config at this scale; the adaptive and autopilot
    // configs must earn their keep against the same deadline.
    const double deadline_s = args.smoke ? 0.010 : 0.025;

    std::cout << "Repartition-under-load bench"
              << (args.smoke ? " (smoke mode)" : "") << "\n"
              << "============================\n\n";

    // --- corpus + index ------------------------------------------------
    wl::DatasetSpec spec = wl::tinySpec();
    spec.numVectors = args.smoke ? 8000 : 40000;
    spec.dim = 64;
    spec.numClusters = args.smoke ? 64 : 256;
    spec.nprobe = 16;
    wl::SyntheticDataset dataset(spec);
    dataset.buildVectors();
    const auto cq = dataset.makeCoarseQuantizer();
    vs::IvfPqFastScanIndex index(cq, spec.dim / 4);
    index.train(dataset.vectors(), spec.numVectors);
    index.addPreassigned(dataset.vectors(), spec.numVectors,
                         dataset.assignments());

    const double rho = 0.25;
    const std::size_t num_shards = 2;
    std::cout << "index: " << index.size() << " vectors, nlist "
              << index.nlist() << "; hot tier rho=" << rho << " across "
              << num_shards << " shards; deadline "
              << deadline_s * 1e3 << " ms; drift after " << n_phase
              << " queries\n\n";

    TextTable t({"config", "phase", "p50 srch (ms)", "p99 srch (ms)",
                 "mean hit", "hot probes", "expired", "degraded",
                 "rebuilds"});

    const std::vector<std::string> modes = {"static", "adaptive",
                                            "autopilot"};
    std::vector<std::vector<PhaseResult>> all_phases(modes.size());
    core::EngineStatsSnapshot autopilot_stats;

    for (std::size_t m = 0; m < modes.size(); ++m) {
        const std::string &mode = modes[m];
        const bool adaptive = mode == "adaptive";
        const bool autopilot = mode == "autopilot";

        // Identical streams per config: same calibration + drift seeds.
        wl::QueryGenerator gen(dataset, 123);
        const std::size_t n_cal = args.smoke ? 400 : 1500;
        const auto cal = gen.generate(n_cal);
        std::vector<double> work(spec.numClusters);
        for (std::size_t c = 0; c < spec.numClusters; ++c)
            work[c] = static_cast<double>(dataset.clusterSizes()[c]) *
                      spec.scaleFactor();
        const auto plans =
            wl::PlanSet::build(*cq, cal, n_cal, spec.nprobe, work);
        const auto profile =
            core::AccessProfile::fromPlans(plans, dataset);
        const core::HitRateEstimator estimator(profile, plans);

        core::TieredOptions topts;
        topts.numShards = num_shards;
        // Headroom for the autopilot's shard-count actuation.
        topts.maxShards = autopilot ? 4 : num_shards;
        core::TieredIndex tiered(index, profile, rho, topts);

        core::OnlineUpdater::Options uopts;
        uopts.rho = rho;
        // At this reduced scale a popularity reshuffle moves the mean
        // hit rate by a few points, not the paper's tens: trigger on a
        // 3-point divergence from the estimator's per-query-mean
        // prediction (the same semantics the engine records).
        uopts.drift.hitRateDivergence = 0.03;
        // The engine records one observation per *batch*; keep the
        // window small enough to fill (and re-trigger) within a phase.
        uopts.drift.windowRequests = args.smoke ? 16 : 32;
        // Gate the rebuild on hit-rate divergence alone: at this
        // reduced scale searches always meet the paper-scale SLO, so
        // an attainment threshold above 1 keeps the second drift
        // condition permanently satisfied.
        uopts.drift.attainmentThreshold = 1.01;
        std::unique_ptr<core::OnlineUpdater> updater;
        if (adaptive || autopilot)
            updater = std::make_unique<core::OnlineUpdater>(
                tiered, uopts, estimator.meanHitRate(rho));

        core::EngineBuilder builder(tiered);
        builder.defaultK(10)
            .defaultNprobe(spec.nprobe)
            .searchThreads(4)
            .batching({.maxBatch = 32, .timeoutSeconds = 1e-3});
        if (adaptive)
            builder.updater(updater.get());
        if (autopilot) {
            core::DegradationPolicy degrade;
            degrade.enable = true;
            degrade.nprobeFloor = 4;
            degrade.queuePressure = 1.5;
            core::AutopilotPolicy pilot;
            pilot.enable = true;
            // Manual control cycles (stepped between phases) keep the
            // bench deterministic; a real deployment sets an interval.
            pilot.controlIntervalSeconds = 0.0;
            pilot.minBatchObservations = 2;
            pilot.maxBatchCap = 64;
            pilot.maxShards = 4;
            // At this reduced scale every search meets the 150 ms SLO
            // even fully cold, so the unconstrained model picks rho=0;
            // the floor keeps a live hot tier so drift shows up as a
            // hot-set flip (and a repartition) rather than a no-op.
            pilot.minRho = 0.2;
            builder.degradation(degrade)
                .autopilot(pilot)
                .updater(updater.get());
        }
        const auto engine = builder.build();

        auto run_cycle = [&] {
            if (!autopilot)
                return;
            engine->autopilot()->runControlCycle();
            updater->waitForRebuild();
        };

        std::vector<PhaseResult> phases;
        const auto pre_queries = gen.generate(n_phase);
        phases.push_back(servePhase("pre-drift", *engine, tiered,
                                    pre_queries, n_phase, spec.dim,
                                    deadline_s));
        run_cycle();

        // Shift popularity for most clusters: the calibrated hot set
        // goes stale.
        gen.drift(0.9);
        const auto post_queries = gen.generate(n_phase);
        phases.push_back(servePhase("post-drift", *engine, tiered,
                                    post_queries, n_phase, spec.dim,
                                    deadline_s));
        if (updater)
            updater->waitForRebuild();
        run_cycle();

        // Same drifted stream once more: adaptive and autopilot now
        // serve it from the rebuilt placement.
        const auto rec_queries = gen.generate(n_phase);
        phases.push_back(servePhase("recovered", *engine, tiered,
                                    rec_queries, n_phase, spec.dim,
                                    deadline_s));
        if (updater)
            updater->waitForRebuild();
        run_cycle();

        for (const PhaseResult &p : phases)
            t.addRow({mode, p.name,
                      TextTable::num(p.search.p50 * 1e3, 2),
                      TextTable::num(p.search.p99 * 1e3, 2),
                      TextTable::pct(p.meanHitRate),
                      TextTable::pct(p.hotProbeFraction),
                      std::to_string(p.expired),
                      std::to_string(p.degraded),
                      updater ? std::to_string(
                                    updater->rebuildsCompleted())
                              : "-"});

        if (autopilot)
            autopilot_stats = engine->stats();
        all_phases[m] = std::move(phases);
    }
    t.print(std::cout);

    const double static_miss = configMissRate(all_phases[0]);
    const double adaptive_miss = configMissRate(all_phases[1]);
    const double autopilot_miss = configMissRate(all_phases[2]);
    std::cout << "\nexpired+rejected rate: static "
              << TextTable::pct(static_miss) << ", adaptive "
              << TextTable::pct(adaptive_miss) << ", autopilot "
              << TextTable::pct(autopilot_miss) << " -> autopilot "
              << (autopilot_miss <= static_miss ? "PASS (<= static)"
                                                : "FAIL (> static)")
              << "\n";

    // --- JSON snapshots ------------------------------------------------
    {
        std::ofstream os("BENCH_repartition.json");
        bench::JsonWriter w(os);
        w.beginObject();
        w.kv("bench", "repartition");
        w.kv("smoke", args.smoke);
        w.kv("queriesPerPhase", n_phase);
        w.kv("deadlineSeconds", deadline_s);
        w.key("configs");
        w.beginArray();
        for (std::size_t m = 0; m < modes.size(); ++m) {
            w.beginObject();
            w.kv("name", modes[m]);
            w.kv("missRate", configMissRate(all_phases[m]));
            w.key("phases");
            w.beginArray();
            for (const PhaseResult &p : all_phases[m])
                writePhaseJson(w, p);
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
    }
    {
        std::ofstream os("BENCH_autopilot.json");
        bench::JsonWriter w(os);
        w.beginObject();
        w.kv("bench", "autopilot");
        w.kv("smoke", args.smoke);
        w.key("missRates");
        w.beginObject();
        w.kv("static", static_miss);
        w.kv("adaptive", adaptive_miss);
        w.kv("autopilot", autopilot_miss);
        w.endObject();
        w.kv("autopilotNoWorseThanStatic",
             autopilot_miss <= static_miss);
        w.kv("controlCycles", autopilot_stats.autopilotCycles);
        w.kv("repartitions", autopilot_stats.autopilotRepartitions);
        w.kv("degradedServed", autopilot_stats.degradedServed);
        w.kv("degradedBatches", autopilot_stats.degradedBatches);
        w.kv("finalBatchCap", autopilot_stats.currentBatchCap);
        w.key("decisions");
        w.beginArray();
        for (const auto &d : autopilot_stats.autopilotTrace) {
            w.beginObject();
            w.kv("atSeconds", d.atSeconds);
            w.kv("arrivalRate", d.arrivalRate);
            w.kv("missRate", d.missRate);
            w.kv("modelRho", d.modelRho);
            w.kv("rho", d.rho);
            w.kv("hotShards", d.hotShards);
            w.kv("batchCap", d.batchCap);
            w.kv("repartitioned", d.repartitioned);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
    }
    std::cout << "\nwrote BENCH_repartition.json and "
                 "BENCH_autopilot.json\n";

    std::cout
        << "\n'hot probes' is the fraction of probes served by the hot "
           "shards in each\nphase. After drift the static config keeps "
           "the stale placement and its\nbacklogged tail expires; the "
           "adaptive config's OnlineUpdater rebuilds in\nthe background "
           "on hit-rate divergence; the autopilot additionally refits\n"
           "the perf model from live batches, re-picks rho / shards / "
           "batch cap with\nthe partitioner and degrades nprobe under "
           "pressure instead of letting\nrequests expire. In-flight "
           "batches keep searching the old snapshot until\nthe atomic "
           "swap (paper Fig. 9's background-update claim).\n";
    return autopilot_miss <= static_miss ? 0 : 1;
}

#include "vecsearch/topk.h"

#include <algorithm>
#include <cassert>

namespace vlr::vs
{

namespace
{

bool
heapLess(const SearchHit &a, const SearchHit &b)
{
    // Max-heap on distance; ties broken by id so ordering is total.
    if (a.dist != b.dist)
        return a.dist < b.dist;
    return a.id < b.id;
}

bool
sortedLess(const SearchHit &a, const SearchHit &b)
{
    if (a.dist != b.dist)
        return a.dist < b.dist;
    return a.id < b.id;
}

} // namespace

TopK::TopK(std::size_t k)
    : k_(k)
{
    assert(k > 0);
    heap_.reserve(k);
}

void
TopK::push(idx_t id, float dist)
{
    if (heap_.size() < k_) {
        heap_.push_back({id, dist});
        std::push_heap(heap_.begin(), heap_.end(), heapLess);
        return;
    }
    const SearchHit cand{id, dist};
    if (!heapLess(cand, heap_.front()))
        return;
    std::pop_heap(heap_.begin(), heap_.end(), heapLess);
    heap_.back() = cand;
    std::push_heap(heap_.begin(), heap_.end(), heapLess);
}

float
TopK::worst() const
{
    if (heap_.size() < k_)
        return std::numeric_limits<float>::max();
    return heap_.front().dist;
}

std::vector<SearchHit>
TopK::sortedHits() const
{
    std::vector<SearchHit> out = heap_;
    std::sort(out.begin(), out.end(), sortedLess);
    return out;
}

std::vector<SearchHit>
mergeHitLists(std::span<const std::vector<SearchHit>> lists, std::size_t k)
{
    TopK topk(k);
    for (const auto &list : lists) {
        for (const auto &h : list)
            topk.push(h.id, h.dist);
    }
    return topk.sortedHits();
}

} // namespace vlr::vs

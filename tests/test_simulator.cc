/**
 * @file
 * Tests for the discrete-event simulator and the serial resource that
 * models the FCFS CPU search stage.
 */

#include <vector>

#include <gtest/gtest.h>

#include "simcore/simulator.h"

namespace vlr::sim
{
namespace
{

TEST(Simulator, StartsAtTimeZero)
{
    Simulator s;
    EXPECT_DOUBLE_EQ(s.now(), 0.0);
    EXPECT_EQ(s.pendingEvents(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder)
{
    Simulator s;
    std::vector<int> order;
    s.schedule(3.0, [&] { order.push_back(3); });
    s.schedule(1.0, [&] { order.push_back(1); });
    s.schedule(2.0, [&] { order.push_back(2); });
    s.run();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
}

TEST(Simulator, TiesBreakInScheduleOrder)
{
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        s.schedule(1.0, [&order, i] { order.push_back(i); });
    s.run();
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvancesToEventTime)
{
    Simulator s;
    double seen = -1.0;
    s.schedule(2.5, [&] { seen = s.now(); });
    s.run();
    EXPECT_DOUBLE_EQ(seen, 2.5);
    EXPECT_DOUBLE_EQ(s.now(), 2.5);
}

TEST(Simulator, NestedScheduling)
{
    Simulator s;
    std::vector<double> times;
    s.schedule(1.0, [&] {
        times.push_back(s.now());
        s.schedule(1.0, [&] { times.push_back(s.now()); });
    });
    s.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, ScheduleAtAbsoluteTime)
{
    Simulator s;
    double seen = -1.0;
    s.schedule(1.0, [&] {
        s.scheduleAt(5.0, [&] { seen = s.now(); });
    });
    s.run();
    EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Simulator, CancelPreventsFiring)
{
    Simulator s;
    bool fired = false;
    const auto id = s.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(s.cancel(id));
    s.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReturnsFalse)
{
    Simulator s;
    const auto id = s.schedule(1.0, [] {});
    s.run();
    EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, DoubleCancelReturnsFalse)
{
    Simulator s;
    const auto id = s.schedule(1.0, [] {});
    EXPECT_TRUE(s.cancel(id));
    EXPECT_FALSE(s.cancel(id));
    s.run();
}

TEST(Simulator, RunUntilHorizonStops)
{
    Simulator s;
    int count = 0;
    s.schedule(1.0, [&] { ++count; });
    s.schedule(10.0, [&] { ++count; });
    s.run(5.0);
    EXPECT_EQ(count, 1);
    // The later event remains pending.
    EXPECT_GE(s.pendingEvents(), 1u);
}

TEST(Simulator, StepExecutesOneEvent)
{
    Simulator s;
    int count = 0;
    s.schedule(1.0, [&] { ++count; });
    s.schedule(2.0, [&] { ++count; });
    EXPECT_TRUE(s.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(s.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(s.step());
}

TEST(Simulator, FiredEventsCounter)
{
    Simulator s;
    for (int i = 0; i < 7; ++i)
        s.schedule(0.1 * i, [] {});
    s.run();
    EXPECT_EQ(s.firedEvents(), 7u);
}

TEST(Simulator, ZeroDelayFiresImmediately)
{
    Simulator s;
    bool fired = false;
    s.schedule(0.0, [&] { fired = true; });
    s.run();
    EXPECT_TRUE(fired);
    EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

// --- SerialResource ---------------------------------------------------

TEST(SerialResource, ProcessesJobsFcfs)
{
    Simulator s;
    SerialResource r(s);
    std::vector<std::pair<int, double>> done;
    r.submit([] { return 2.0; }, [&] { done.push_back({1, s.now()}); });
    r.submit([] { return 1.0; }, [&] { done.push_back({2, s.now()}); });
    s.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].first, 1);
    EXPECT_DOUBLE_EQ(done[0].second, 2.0);
    EXPECT_EQ(done[1].first, 2);
    EXPECT_DOUBLE_EQ(done[1].second, 3.0);
}

TEST(SerialResource, BusyFlagWhileProcessing)
{
    Simulator s;
    SerialResource r(s);
    r.submit([] { return 5.0; }, [] {});
    EXPECT_TRUE(r.busy());
    s.run();
    EXPECT_FALSE(r.busy());
}

TEST(SerialResource, QueueLengthCountsWaitingJobs)
{
    Simulator s;
    SerialResource r(s);
    r.submit([] { return 1.0; }, [] {});
    r.submit([] { return 1.0; }, [] {});
    r.submit([] { return 1.0; }, [] {});
    // First job started; two remain queued.
    EXPECT_EQ(r.queueLength(), 2u);
    s.run();
    EXPECT_EQ(r.queueLength(), 0u);
}

TEST(SerialResource, BusyTimeAccumulates)
{
    Simulator s;
    SerialResource r(s);
    r.submit([] { return 2.0; }, [] {});
    r.submit([] { return 3.0; }, [] {});
    s.run();
    EXPECT_DOUBLE_EQ(r.busyTime(), 5.0);
}

TEST(SerialResource, DurationEvaluatedAtStartTime)
{
    // The duration callback must run when the job starts (allowing
    // batch-dependent costs), not when it is submitted.
    Simulator s;
    SerialResource r(s);
    double first_started_at = -1.0;
    double second_started_at = -1.0;
    r.submit(
        [&] {
            first_started_at = s.now();
            return 2.0;
        },
        [] {});
    r.submit(
        [&] {
            second_started_at = s.now();
            return 1.0;
        },
        [] {});
    s.run();
    EXPECT_DOUBLE_EQ(first_started_at, 0.0);
    EXPECT_DOUBLE_EQ(second_started_at, 2.0);
}

TEST(SerialResource, SubmitFromCompletionCallback)
{
    Simulator s;
    SerialResource r(s);
    std::vector<double> completions;
    r.submit([] { return 1.0; }, [&] {
        completions.push_back(s.now());
        r.submit([] { return 1.0; },
                 [&] { completions.push_back(s.now()); });
    });
    s.run();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_DOUBLE_EQ(completions[0], 1.0);
    EXPECT_DOUBLE_EQ(completions[1], 2.0);
}

} // namespace
} // namespace vlr::sim

/**
 * @file
 * Piecewise-linear models of latency versus batch size.
 *
 * The paper observes (Fig. 8 left) that CPU search latency is piecewise
 * linear in batch size, with steps where execution transitions from
 * single-threaded to multi-threaded. Profiling produces (batch, latency)
 * samples; this model interpolates between them and extrapolates linearly
 * beyond the sampled range using the last segment's slope.
 */

#ifndef VLR_COMMON_PIECEWISE_LINEAR_H
#define VLR_COMMON_PIECEWISE_LINEAR_H

#include <span>
#include <vector>

namespace vlr
{

/** A single (x, y) knot of a piecewise-linear function. */
struct PlKnot
{
    double x;
    double y;
};

/**
 * Monotone-x piecewise-linear function built from profiled samples.
 * Duplicate x values are averaged.
 */
class PiecewiseLinearModel
{
  public:
    PiecewiseLinearModel() = default;

    /** Build from unsorted samples. @pre at least one sample. */
    static PiecewiseLinearModel fit(std::span<const PlKnot> samples);

    /** Evaluate with interpolation inside, linear extrapolation outside. */
    double eval(double x) const;

    /**
     * Invert y -> smallest x with eval(x) >= y. Requires the model to be
     * non-decreasing (checked at fit time for inversion use); returns the
     * extrapolated solution beyond the last knot and clamps to the first
     * knot's x for targets at or below the profiled range (callers pass
     * latencies, for which sub-range extrapolation is meaningless).
     */
    double invert(double y) const;

    bool empty() const { return knots_.empty(); }
    const std::vector<PlKnot> &knots() const { return knots_; }
    bool isNonDecreasing() const;

  private:
    std::vector<PlKnot> knots_;
};

} // namespace vlr

#endif // VLR_COMMON_PIECEWISE_LINEAR_H

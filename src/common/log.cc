#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace vlr
{

namespace
{

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_log_mutex;

const char *
levelName(LogLevel l)
{
    switch (l) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      default: return "?";
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level);
}

LogLevel
logLevel()
{
    return g_level.load();
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_level.load()))
        return;
    std::lock_guard<std::mutex> lk(g_log_mutex);
    std::fprintf(stderr, "[vlr:%s] %s\n", levelName(level), msg.c_str());
}

void
fatal(const std::string &msg)
{
    logMessage(LogLevel::Error, "fatal: " + msg);
    throw std::runtime_error(msg);
}

void
panic(const std::string &msg)
{
    logMessage(LogLevel::Error, "panic: " + msg);
    std::abort();
}

} // namespace vlr

/**
 * @file
 * Minimal fixed-size thread pool with a blocking parallelFor.
 *
 * Used by the vector-search substrate for index training and batched
 * search. Falls back to inline execution when constructed with zero or
 * one worker, which keeps single-core CI environments deterministic.
 */

#ifndef VLR_COMMON_THREADPOOL_H
#define VLR_COMMON_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vlr
{

class ThreadPool
{
  public:
    /** @param num_threads 0 or 1 means run tasks inline. */
    explicit ThreadPool(std::size_t num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t numThreads() const { return threads_.size(); }

    /**
     * Run fn(i) for i in [0, n) split into contiguous chunks across the
     * pool; blocks until every index is processed.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Run fn(chunk_begin, chunk_end) over [0, n) in roughly equal chunks,
     * one per worker; blocks until done.
     */
    void parallelChunks(
        std::size_t n,
        const std::function<void(std::size_t, std::size_t)> &fn);

  private:
    void workerLoop();
    void submit(std::function<void()> task);
    void waitAll();

    std::vector<std::thread> threads_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cvTask_;
    std::condition_variable cvDone_;
    std::size_t inflight_ = 0;
    bool stop_ = false;
};

} // namespace vlr

#endif // VLR_COMMON_THREADPOOL_H

/**
 * @file
 * Figure 11 reproduction — the paper's headline result.
 *
 * For all nine combinations of vector databases (Wiki-All, ORCAS 1K,
 * ORCAS 2K) and LLMs (Llama3-8B on 8x L40S; Qwen3-32B and Llama3-70B
 * on 8x H100), sweep the arrival rate and report TTFT SLO attainment
 * and mean end-to-end latency for CPU-Only, DED-GPU, ALL-GPU and
 * VectorLiteRAG.
 *
 * Expected shape: vLiteRAG sustains the combined SLO (Table I) over
 * the widest rate range — close to the bare-LLM capacity (the vertical
 * dashed line in the paper) — while CPU-Only violates early, DED-GPU
 * loses LLM instances, and ALL-GPU collapses under KV displacement.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout,
                "Figure 11: SLO attainment and end-to-end latency");

    const std::vector<wl::DatasetSpec> datasets = {
        wl::wikiAllSpec(), wl::orcas1kSpec(), wl::orcas2kSpec()};
    const std::vector<llm::LlmConfig> models = {
        llm::llama3_8b(), llm::qwen3_32b(), llm::llama3_70b()};

    bench::PeakCache peaks;

    for (const auto &spec : datasets) {
        core::DatasetContext ctx(spec);
        for (const auto &model : models) {
            auto base = bench::makeServingConfig(
                spec, model, core::RetrieverKind::CpuOnly, 1.0);
            const double peak = peaks.peak(base);
            const auto rates = bench::sweepRates(peak, 6, 1.2);

            std::cout << "\n=== " << spec.name << " + " << model.name
                      << "  (bare LLM capacity "
                      << TextTable::num(peak, 1) << " req/s, SLO "
                      << TextTable::num(
                             (core::sloLlmSecondsFor(model) +
                              spec.sloSearchSeconds) *
                                 1e3,
                             0)
                      << " ms) ===\n";

            TextTable t({"system", "rate (r/s)", "SLO attain",
                         "P90 TTFT (ms)", "mean E2E (s)", "rho"});
            for (const auto kind : bench::kMainBaselines) {
                for (const double rate : rates) {
                    auto cfg = bench::makeServingConfig(spec, model,
                                                        kind, rate);
                    cfg.peakThroughputHint = peak;
                    const auto res = core::runServing(cfg, ctx);
                    t.addRow({res.system, TextTable::num(rate, 1),
                              TextTable::pct(res.attainment),
                              TextTable::num(res.p90Ttft * 1e3, 0),
                              TextTable::num(res.meanE2e, 2),
                              TextTable::pct(res.rho)});
                }
            }
            t.print(std::cout);
        }
    }

    std::cout << "\npaper: vLiteRAG achieves higher SLO attainment "
                 "across all regimes, extending the compliant range "
                 "nearly to the standalone LLM throughput limit "
                 "(up to 1.5x the baselines' attainable rate).\n";
    return 0;
}

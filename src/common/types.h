/**
 * @file
 * Fundamental type aliases shared across all VectorLiteRAG subsystems.
 */

#ifndef VLR_COMMON_TYPES_H
#define VLR_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace vlr
{

/** Index of a vector inside a dataset or inverted list. */
using idx_t = std::int64_t;

/** Identifier of an IVF cluster (inverted list). */
using cluster_id_t = std::int32_t;

/** Identifier of a GPU shard; kCpuShard means "not GPU resident". */
using shard_id_t = std::int32_t;

/** Sentinel shard id for clusters that live on the CPU tier. */
inline constexpr shard_id_t kCpuShard = -1;

/** Sentinel for "no vector". */
inline constexpr idx_t kInvalidIdx = -1;

/** Simulated time, in seconds. */
using sim_time_t = double;

/** Bytes of memory, used by the device models. */
using bytes_t = std::uint64_t;

inline constexpr bytes_t operator""_KiB(unsigned long long v)
{
    return static_cast<bytes_t>(v) << 10;
}

inline constexpr bytes_t operator""_MiB(unsigned long long v)
{
    return static_cast<bytes_t>(v) << 20;
}

inline constexpr bytes_t operator""_GiB(unsigned long long v)
{
    return static_cast<bytes_t>(v) << 30;
}

} // namespace vlr

#endif // VLR_COMMON_TYPES_H

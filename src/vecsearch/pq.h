/**
 * @file
 * Product quantization (Jegou et al., TPAMI 2011): vectors are split into
 * M sub-vectors, each encoded as the id of its nearest codeword from a
 * per-subspace codebook of size 2^nbits. Asymmetric distance computation
 * (ADC) precomputes a query-to-codeword lookup table (LUT) so scanning a
 * code costs M table lookups — the stage the paper identifies as the
 * retrieval bottleneck (Fig. 3 right).
 */

#ifndef VLR_VECSEARCH_PQ_H
#define VLR_VECSEARCH_PQ_H

#include <cstdint>
#include <span>
#include <vector>

#include "vecsearch/kmeans.h"

namespace vlr::vs
{

/**
 * Product quantizer with M sub-quantizers of 2^nbits codewords each.
 * Codes are stored one byte per sub-quantizer (values < 2^nbits);
 * the fast-scan path repacks 4-bit codes into its own blocked layout.
 */
class ProductQuantizer
{
  public:
    /**
     * @param dim full vector dimensionality; must be divisible by m.
     * @param m number of sub-quantizers.
     * @param nbits bits per code, 4 or 8.
     */
    ProductQuantizer(std::size_t dim, std::size_t m, std::size_t nbits);

    /** Train all codebooks on n vectors. */
    void train(std::span<const float> data, std::size_t n,
               const KMeansParams &base_params = {});

    /**
     * Construct a trained quantizer from previously learned codebooks
     * (deserialization path). @pre codebooks.size() == m * 2^nbits *
     * (dim / m).
     */
    static ProductQuantizer fromCodebooks(std::size_t dim, std::size_t m,
                                          std::size_t nbits,
                                          std::vector<float> codebooks);

    bool isTrained() const { return trained_; }

    /** Encode one vector into m code bytes. */
    void encode(const float *vec, std::uint8_t *code) const;

    /** Encode n vectors into n*m code bytes. */
    std::vector<std::uint8_t> encodeBatch(std::span<const float> data,
                                          std::size_t n) const;

    /** Reconstruct (decode) a vector from its code. */
    void decode(const std::uint8_t *code, float *vec) const;

    /**
     * Build the ADC lookup table for a query: lut[sub*ksub + j] is the
     * squared L2 distance between query sub-vector `sub` and codeword j.
     */
    void computeLut(const float *query, float *lut) const;

    /** ADC distance of one code given a precomputed LUT. */
    float adcDistance(const float *lut, const std::uint8_t *code) const;

    /** Mean squared reconstruction error over n vectors. */
    double reconstructionError(std::span<const float> data,
                               std::size_t n) const;

    std::size_t dim() const { return dim_; }
    std::size_t numSub() const { return m_; }
    std::size_t nbits() const { return nbits_; }
    std::size_t ksub() const { return ksub_; }
    std::size_t dsub() const { return dsub_; }
    /** Bytes per stored (unpacked) code. */
    std::size_t codeSize() const { return m_; }
    std::size_t lutSize() const { return m_ * ksub_; }

    /** Codebook of sub-quantizer `sub`: ksub * dsub floats. */
    std::span<const float> codebook(std::size_t sub) const;

  private:
    std::size_t dim_;
    std::size_t m_;
    std::size_t nbits_;
    std::size_t ksub_;
    std::size_t dsub_;
    bool trained_ = false;
    /** m * ksub * dsub floats. */
    std::vector<float> codebooks_;
};

} // namespace vlr::vs

#endif // VLR_VECSEARCH_PQ_H

/**
 * @file
 * Tests for the multi-tenant replayable workload harness and the
 * tenant service contract: deterministic trace generation (same
 * script + seed is the identical trace, per tenant streams
 * independent of each other), tenant churn via active windows, binary
 * save/load round-trips, script and TenantClass/TenantPolicy
 * validation (with actionable messages), deterministic per-tenant
 * served counts across engine runs, weighted-admission isolation
 * under a sustained one-tenant flood and under correlated bursts
 * (demonstrably failing with isolation off), the weighted-fair
 * batching work-share bound under weight skew (a regression for the
 * finish-time-tie lock-out), and the per-tenant-counts-sum-to-globals
 * invariant under concurrent submit/drain (exercised under the CI
 * sanitizer configs).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "core/shard_backend.h"
#include "workload/tenant.h"

namespace vlr::wl
{
namespace
{

/** Small stats-only dataset: enough for trace generation. */
struct WorkloadHarnessFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        spec_ = tinySpec();
        spec_.numVectors = 3000;
        spec_.dim = 16;
        spec_.numClusters = 24;
        spec_.nprobe = 8;
        dataset_ = std::make_unique<SyntheticDataset>(spec_);
        dataset_->buildStats();
    }

    /** Two-tenant script exercising diurnal, burst and flip paths. */
    WorkloadScript
    makeScript() const
    {
        WorkloadScript script;
        script.horizonSeconds = 0.5;
        TenantSpec a;
        a.name = "a";
        a.tenant = core::TenantId{1};
        a.arrivalRate = 400.0;
        a.zipfTheta = 1.2;
        a.k = 5;
        a.nprobe = 4;
        a.deadlineSeconds = 0.02;
        a.priority = 2;
        script.tenants.push_back(a);
        TenantSpec b;
        b.name = "b";
        b.tenant = core::TenantId{2};
        b.arrivalRate = 300.0;
        b.diurnalAmplitude = 0.5;
        b.diurnalPeriodSeconds = 0.5;
        b.burstFactor = 4.0;
        b.burstStartSeconds = 0.2;
        b.burstEndSeconds = 0.3;
        b.zipfTheta = 0.8;
        b.hotspotFlipSeconds = {0.25};
        b.k = 10;
        script.tenants.push_back(b);
        return script;
    }

    DatasetSpec spec_;
    std::unique_ptr<SyntheticDataset> dataset_;
};

TEST_F(WorkloadHarnessFixture, GenerateIsDeterministic)
{
    const auto script = makeScript();
    const auto t1 = WorkloadTrace::generate(script, *dataset_, 7);
    const auto t2 = WorkloadTrace::generate(script, *dataset_, 7);
    EXPECT_TRUE(t1 == t2);
    EXPECT_GT(t1.size(), 0u);
    EXPECT_EQ(t1.dim(), spec_.dim);
    EXPECT_GT(t1.countForTenant(core::TenantId{1}), 0u);
    EXPECT_GT(t1.countForTenant(core::TenantId{2}), 0u);
    EXPECT_EQ(t1.countForTenant(core::TenantId{1}) +
                  t1.countForTenant(core::TenantId{2}),
              t1.size());

    // A different seed must not reproduce the trace.
    const auto t3 = WorkloadTrace::generate(script, *dataset_, 8);
    EXPECT_FALSE(t1 == t3);

    // Time-ordered within the horizon, SLO class stamped per tenant.
    double prev = 0.0;
    for (std::size_t i = 0; i < t1.size(); ++i) {
        const ScriptedRequest &r = t1.requests()[i];
        EXPECT_GE(r.atSeconds, prev);
        EXPECT_LT(r.atSeconds, script.horizonSeconds);
        prev = r.atSeconds;
        const TenantSpec &spec =
            script.tenants[r.tenant == core::TenantId{1} ? 0 : 1];
        EXPECT_EQ(r.k, spec.k);
        EXPECT_EQ(r.nprobe, spec.nprobe);
        EXPECT_EQ(r.deadlineSeconds, spec.deadlineSeconds);
        EXPECT_EQ(r.priority, spec.priority);
        EXPECT_EQ(r.query.size(), spec_.dim);
    }
}

TEST_F(WorkloadHarnessFixture, TenantStreamsAreIndependent)
{
    // Adding a tenant to the script must not perturb an existing
    // tenant's requests (each tenant draws from its own id-keyed
    // stream).
    auto script = makeScript();
    WorkloadScript solo;
    solo.horizonSeconds = script.horizonSeconds;
    solo.tenants = {script.tenants[0]};
    const auto both = WorkloadTrace::generate(script, *dataset_, 7);
    const auto alone = WorkloadTrace::generate(solo, *dataset_, 7);

    std::vector<ScriptedRequest> of_a;
    for (const ScriptedRequest &r : both.requests())
        if (r.tenant == core::TenantId{1})
            of_a.push_back(r);
    ASSERT_EQ(of_a.size(), alone.size());
    for (std::size_t i = 0; i < of_a.size(); ++i)
        EXPECT_TRUE(of_a[i] == alone.requests()[i]);
}

TEST_F(WorkloadHarnessFixture, SaveLoadRoundTripsExactly)
{
    const auto trace =
        WorkloadTrace::generate(makeScript(), *dataset_, 42);
    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    trace.save(ss);
    const auto reloaded = WorkloadTrace::load(ss);
    EXPECT_TRUE(trace == reloaded);

    // request(i) exposes the reloaded entries unchanged; the tenant
    // identity rides the typed field, leaving tag free for callers.
    const core::SearchRequest req = reloaded.request(0);
    EXPECT_EQ(req.tenant, reloaded.requests()[0].tenant);
    EXPECT_EQ(req.tag, 0u);
    EXPECT_EQ(req.k, reloaded.requests()[0].k);
    EXPECT_EQ(req.query.size(), reloaded.dim());

    // Malformed streams are rejected, not misread.
    std::stringstream garbage("definitely not a trace");
    EXPECT_THROW(WorkloadTrace::load(garbage), std::runtime_error);
    std::string bytes = ss.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes, std::ios::in | std::ios::binary);
    EXPECT_THROW(WorkloadTrace::load(truncated), std::runtime_error);
}

TEST_F(WorkloadHarnessFixture, ScriptValidationRejectsBadSpecs)
{
    auto script = makeScript();
    script.tenants[1].tenant = script.tenants[0].tenant;
    EXPECT_THROW(WorkloadTrace::generate(script, *dataset_, 1),
                 std::invalid_argument);

    script = makeScript();
    script.horizonSeconds = 0.0;
    EXPECT_THROW(script.validate(), std::invalid_argument);

    script = makeScript();
    script.tenants[0].arrivalRate = 0.0;
    EXPECT_THROW(script.validate(), std::invalid_argument);

    script = makeScript();
    script.tenants[1].hotspotFlipSeconds = {0.3, 0.1};
    EXPECT_THROW(script.validate(), std::invalid_argument);

    script = makeScript();
    script.tenants[1].burstFactor = 0.5;
    EXPECT_THROW(script.validate(), std::invalid_argument);

    script = makeScript();
    script.tenants[0].diurnalAmplitude = 1.5;
    EXPECT_THROW(script.validate(), std::invalid_argument);
}

TEST_F(WorkloadHarnessFixture, ActiveWindowScopesTenantChurn)
{
    // Tenant churn: a tenant with an active window joins and leaves
    // mid-trace — every one of its arrivals lands inside the window,
    // while the always-on tenant spans the horizon.
    auto script = makeScript();
    script.tenants[1].activeStartSeconds = 0.2;
    script.tenants[1].activeEndSeconds = 0.4;
    const auto trace = WorkloadTrace::generate(script, *dataset_, 13);
    std::size_t churned = 0;
    double a_first = 1e9, a_last = -1.0;
    for (const ScriptedRequest &r : trace.requests()) {
        if (r.tenant == core::TenantId{2}) {
            ++churned;
            EXPECT_GE(r.atSeconds, 0.2);
            EXPECT_LT(r.atSeconds, 0.4);
        } else {
            a_first = std::min(a_first, r.atSeconds);
            a_last = std::max(a_last, r.atSeconds);
        }
    }
    EXPECT_GT(churned, 0u);
    EXPECT_EQ(churned, trace.countForTenant(core::TenantId{2}));
    EXPECT_LT(a_first, 0.2);
    EXPECT_GE(a_last, 0.4);

    // An end of 0 means active to the horizon (join-only churn).
    script.tenants[1].activeEndSeconds = 0.0;
    const auto joined = WorkloadTrace::generate(script, *dataset_, 13);
    for (const ScriptedRequest &r : joined.requests())
        if (r.tenant == core::TenantId{2})
            EXPECT_GE(r.atSeconds, 0.2);
    EXPECT_GT(joined.countForTenant(core::TenantId{2}), churned);

    // Bad windows are rejected up front.
    script.tenants[1].activeStartSeconds = -0.1;
    EXPECT_THROW(script.validate(), std::invalid_argument);
    script.tenants[1].activeStartSeconds = 0.3;
    script.tenants[1].activeEndSeconds = 0.3;
    EXPECT_THROW(script.validate(), std::invalid_argument);
}

// --- Engine-side tests -----------------------------------------------

/** Per-tenant slice of a snapshot, or nullptr if absent. */
const core::TenantStatsSnapshot *
tenantSlice(const core::EngineStatsSnapshot &s, core::TenantId id)
{
    for (const auto &t : s.tenants)
        if (t.tenant == id)
            return &t;
    return nullptr;
}

/** Adds a trained fast-scan index over the generated corpus. */
struct TenantEngineFixture : public WorkloadHarnessFixture
{
    void
    SetUp() override
    {
        WorkloadHarnessFixture::SetUp();
        dataset_->buildVectors();
        cq_ = dataset_->makeCoarseQuantizer();
        index_ = std::make_unique<vs::IvfPqFastScanIndex>(cq_,
                                                          spec_.dim / 4);
        index_->train(dataset_->vectors(), spec_.numVectors);
        index_->addPreassigned(dataset_->vectors(), spec_.numVectors,
                               dataset_->assignments());
        QueryGenerator gen(*dataset_, 5);
        queries_ = gen.generate(nq_);
    }

    std::span<const float>
    query(std::size_t i) const
    {
        return {queries_.data() + (i % nq_) * spec_.dim, spec_.dim};
    }

    /** Skewed access profile over the index's clusters. */
    core::AccessProfile
    makeProfile() const
    {
        const std::size_t nlist = spec_.numClusters;
        std::vector<double> counts(nlist), work(nlist), bytes(nlist);
        for (std::size_t c = 0; c < nlist; ++c) {
            const auto id = static_cast<cluster_id_t>(c);
            counts[c] = static_cast<double>(nlist - c);
            work[c] = static_cast<double>(index_->listSize(id));
            bytes[c] = static_cast<double>(index_->listBytes(id));
        }
        return core::AccessProfile(std::move(counts), std::move(work),
                                   std::move(bytes));
    }

    /** Scanned-work deltas over a steady window of a two-tenant duel. */
    struct ShareOutcome
    {
        std::size_t heavyWork = 0;
        std::size_t lightWork = 0;
        std::size_t lightServed = 0;
    };

    /**
     * Tenant 1 ("heavy") and tenant 2 ("light") flood a throttled
     * one-shard engine from closed-loop submitters so both stay
     * continuously backlogged; the heavy tenant also submits at a
     * higher dispatch priority. Returns per-tenant servedWork deltas
     * over a window that starts only after a warmup, so ramp-up noise
     * never enters the ratio.
     */
    ShareOutcome
    measureWorkShares(const core::TenantPolicy &tenants)
    {
        const auto profile = makeProfile();
        const auto engine =
            core::EngineBuilder(*index_)
                .tieredFromProfile(profile, 1.0)
                .hotShards(1)
                .shardBackend(core::throttledShardFactory(1e-3))
                .defaultK(5)
                .defaultNprobe(8)
                .searchThreads(1)
                .batching({.maxBatch = 4, .timeoutSeconds = 5e-4})
                .admissionQueueBound(16)
                .tenantIsolation(tenants)
                .build();

        std::atomic<bool> stop{false};
        const auto flood =
            [&](core::TenantId tenant, int priority,
                std::vector<std::future<core::SearchResponse>> &fs) {
                std::size_t i = 0;
                while (!stop.load()) {
                    // Bursts of four keep the tenant backlogged even
                    // when sanitizer overhead stretches the loop.
                    for (int b = 0; b < 4; ++b) {
                        core::SearchRequest r;
                        r.query = query(i++);
                        r.tenant = tenant;
                        r.priority = priority;
                        fs.push_back(engine->submit(r));
                    }
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(200));
                }
            };
        std::vector<std::future<core::SearchResponse>> f1, f2;
        std::thread heavy([&] { flood(core::TenantId{1}, 1, f1); });
        std::thread light([&] { flood(core::TenantId{2}, 0, f2); });

        const auto wait_served = [&](std::size_t target) {
            const auto deadline = std::chrono::steady_clock::now() +
                                  std::chrono::seconds(20);
            auto s = engine->stats();
            while (s.served < target &&
                   std::chrono::steady_clock::now() < deadline) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                s = engine->stats();
            }
            return s;
        };
        const auto warm = wait_served(300);
        const auto done = wait_served(1500);
        stop.store(true);
        heavy.join();
        light.join();
        engine->drain();
        EXPECT_GE(done.served, 1500u) << "engine never reached the "
                                         "measurement window";

        ShareOutcome out;
        const auto *h0 = tenantSlice(warm, core::TenantId{1});
        const auto *l0 = tenantSlice(warm, core::TenantId{2});
        const auto *h1 = tenantSlice(done, core::TenantId{1});
        const auto *l1 = tenantSlice(done, core::TenantId{2});
        if (h1 != nullptr)
            out.heavyWork =
                h1->servedWork - (h0 != nullptr ? h0->servedWork : 0);
        if (l1 != nullptr) {
            out.lightWork =
                l1->servedWork - (l0 != nullptr ? l0->servedWork : 0);
            out.lightServed =
                l1->served - (l0 != nullptr ? l0->served : 0);
        }
        for (auto &f : f1)
            f.get();
        for (auto &f : f2)
            f.get();
        return out;
    }

    const std::size_t nq_ = 64;
    std::vector<float> queries_;
    std::shared_ptr<vs::FlatCoarseQuantizer> cq_;
    std::unique_ptr<vs::IvfPqFastScanIndex> index_;
};

TEST_F(TenantEngineFixture, ReplayServedCountsAreDeterministic)
{
    // Replaying the identical trace on two fresh engines (deadlines
    // off, queue ample) serves every request and yields identical
    // per-tenant served counts both times.
    auto script = makeScript();
    for (TenantSpec &t : script.tenants)
        t.deadlineSeconds = 0.0;
    const auto trace = WorkloadTrace::generate(script, *dataset_, 11);
    ASSERT_GT(trace.size(), 0u);

    core::TenantPolicy tenants;
    tenants.enable = true;
    const auto run = [&] {
        const auto engine = core::EngineBuilder(*index_)
                                .defaultK(10)
                                .defaultNprobe(spec_.nprobe)
                                .searchThreads(2)
                                .batching({.maxBatch = 16,
                                           .timeoutSeconds = 5e-4})
                                .admissionQueueBound(4096)
                                .tenantIsolation(tenants)
                                .build();
        std::vector<std::future<core::SearchResponse>> futures;
        for (std::size_t i = 0; i < trace.size(); ++i)
            futures.push_back(engine->submit(trace.request(i)));
        engine->drain();
        for (auto &f : futures)
            EXPECT_EQ(f.get().disposition, core::Disposition::kServed);
        return engine->stats();
    };

    const auto s1 = run();
    const auto s2 = run();
    ASSERT_EQ(s1.tenants.size(), 2u);
    ASSERT_EQ(s2.tenants.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        const auto &t1 = s1.tenants[i];
        const auto &t2 = s2.tenants[i];
        EXPECT_EQ(t1.tenant, t2.tenant);
        EXPECT_EQ(t1.served, t2.served);
        EXPECT_EQ(t1.served, trace.countForTenant(t1.tenant));
        EXPECT_EQ(t1.expired, 0u);
        EXPECT_EQ(t1.rejected, 0u);
    }
}

TEST_F(TenantEngineFixture, WeightedAdmissionPreventsStarvation)
{
    // Tenant 1 floods a slow (throttled-backend) engine far beyond
    // its drain rate; tenant 2 submits a modest paced stream. With
    // weighted admission the flood saturates only its own queue share
    // and tenant 2 is admitted; without it the flood holds the whole
    // bounded queue and tenant 2 is starved at admission — priority
    // cannot help a request that is never admitted.
    const auto profile = makeProfile();
    constexpr std::size_t kQueue = 16;
    constexpr std::size_t kVictim = 30;

    const auto victim_miss_rate = [&](bool isolated) {
        core::TenantPolicy tenants;
        tenants.enable = true;
        tenants.defaults.share = isolated ? 0.5 : 1.0;
        const auto engine =
            core::EngineBuilder(*index_)
                .tieredFromProfile(profile, 1.0)
                .hotShards(1)
                .shardBackend(core::throttledShardFactory(2e-3))
                .defaultK(5)
                .defaultNprobe(4)
                .searchThreads(1)
                .batching({.maxBatch = 4, .timeoutSeconds = 5e-4})
                .admissionQueueBound(kQueue)
                .tenantIsolation(tenants)
                .build();

        std::atomic<bool> stop{false};
        std::vector<std::future<core::SearchResponse>> flood;
        std::thread flooder([&] {
            std::size_t i = 0;
            while (!stop.load()) {
                core::SearchRequest r;
                r.query = query(i++);
                r.tenant = core::TenantId{1};
                flood.push_back(engine->submit(r));
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            }
        });

        // Let the flood reach its admission bound before the victim
        // starts (8 queued when isolated, the full queue when not).
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(5);
        while (engine->pendingForTenant(core::TenantId{1}) <
                   kQueue / 2 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));

        std::vector<std::future<core::SearchResponse>> victim;
        for (std::size_t i = 0; i < kVictim; ++i) {
            core::SearchRequest r;
            r.query = query(i);
            r.tenant = core::TenantId{2};
            r.priority = 2;
            victim.push_back(engine->submit(r));
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        stop.store(true);
        flooder.join();
        engine->drain();

        std::size_t rejected = 0;
        for (auto &f : victim)
            if (f.get().disposition == core::Disposition::kRejected)
                ++rejected;
        for (auto &f : flood)
            f.get();
        return static_cast<double>(rejected) /
               static_cast<double>(kVictim);
    };

    EXPECT_LE(victim_miss_rate(true), 0.1);
    EXPECT_GE(victim_miss_rate(false), 0.4);
}

TEST_F(TenantEngineFixture, TenantCountsSumToGlobalsUnderConcurrency)
{
    // Four tenants hammer a small-queue engine from their own threads
    // (mixed deadlines force all three dispositions) while the main
    // thread snapshots stats mid-flight: in EVERY snapshot the
    // per-tenant disposition counts must sum exactly to the global
    // totals, and at the end each tenant's resolutions must sum to
    // its submissions.
    constexpr std::size_t kTenants = 4;
    constexpr std::size_t kPerTenant = 300;

    core::TenantPolicy tenants;
    tenants.enable = true;
    tenants.defaults.share = 0.6;
    const auto engine = core::EngineBuilder(*index_)
                            .defaultK(5)
                            .defaultNprobe(4)
                            .searchThreads(2)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 2e-4})
                            .admissionQueueBound(8)
                            .tenantIsolation(tenants)
                            .build();

    const auto check_sums = [](const core::EngineStatsSnapshot &s) {
        std::size_t submitted = 0, served = 0, expired = 0,
                    rejected = 0, degraded = 0, work = 0;
        for (const auto &t : s.tenants) {
            submitted += t.submitted;
            served += t.served;
            expired += t.expired;
            rejected += t.rejected;
            degraded += t.degradedServed;
            work += t.servedWork;
        }
        EXPECT_EQ(submitted, s.submitted);
        EXPECT_EQ(served, s.served);
        EXPECT_EQ(expired, s.expired);
        EXPECT_EQ(rejected, s.rejected);
        EXPECT_EQ(degraded, s.degradedServed);
        EXPECT_EQ(work, s.servedWork);
    };

    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kTenants; ++t)
        workers.emplace_back([&, t] {
            std::vector<std::future<core::SearchResponse>> futures;
            for (std::size_t i = 0; i < kPerTenant; ++i) {
                core::SearchRequest r;
                r.query = query(i);
                r.tenant = core::TenantId{t + 1};
                // Every third request gets a deadline tight enough to
                // expire in a backed-up queue.
                if (i % 3 == 0)
                    r.deadlineSeconds = 1e-4;
                futures.push_back(engine->submit(r));
            }
            for (auto &f : futures)
                f.get();
        });

    for (std::size_t i = 0; i < 50; ++i) {
        check_sums(engine->stats());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (std::thread &w : workers)
        w.join();
    engine->drain();

    const auto s = engine->stats();
    check_sums(s);
    EXPECT_EQ(s.submitted, kTenants * kPerTenant);
    ASSERT_EQ(s.tenants.size(), kTenants);
    for (const auto &t : s.tenants) {
        EXPECT_EQ(t.submitted, kPerTenant);
        EXPECT_EQ(t.served + t.expired + t.rejected, t.submitted);
    }
}

TEST_F(TenantEngineFixture, FairServiceBoundsWorkShareUnderWeightSkew)
{
    // Regression for the weight-skew lock-out: with equal-cost
    // requests and 2:1 weights every virtual-finish increment is
    // commensurate, so granting batch slots by finish time ties every
    // round and a deterministic tie-break hands each grant to the
    // same tenant — the light tenant (larger id, lower weight) would
    // starve. Start-time fair queueing must hold its long-run
    // scanned-work share near the 1/3 entitlement even though the
    // heavy tenant floods at a higher dispatch priority; with fair
    // service off the same duel collapses to the priority order.
    core::TenantPolicy tenants;
    tenants.enable = true;
    tenants.defaults.share = 0.5;
    tenants.classes = {
        {.id = core::TenantId{1}, .share = 0.5, .weight = 2.0},
        {.id = core::TenantId{2}, .share = 0.5, .weight = 1.0}};

    tenants.fairService = true;
    const auto fair = measureWorkShares(tenants);
    ASSERT_GT(fair.heavyWork + fair.lightWork, 0u);
    const double fair_light =
        static_cast<double>(fair.lightWork) /
        static_cast<double>(fair.heavyWork + fair.lightWork);
    EXPECT_GT(fair_light, 0.23);
    EXPECT_LT(fair_light, 0.43);

    tenants.fairService = false;
    const auto skewed = measureWorkShares(tenants);
    ASSERT_GT(skewed.heavyWork + skewed.lightWork, 0u);
    const double skewed_light =
        static_cast<double>(skewed.lightWork) /
        static_cast<double>(skewed.heavyWork + skewed.lightWork);
    EXPECT_LT(skewed_light, 0.2);
}

TEST_F(TenantEngineFixture, WeightFloorPreventsStarvationUnderSkew)
{
    // A near-zero-weight best-effort tenant still makes progress
    // while backlogged: weightFloor lower-bounds its effective WFQ
    // weight, so it keeps landing batch slots — but its work share
    // stays far below the heavy tenant's.
    core::TenantPolicy tenants;
    tenants.enable = true;
    tenants.fairService = true;
    tenants.defaults.share = 0.5;
    tenants.weightFloor = 0.05;
    tenants.classes = {
        {.id = core::TenantId{1}, .share = 0.5, .weight = 1.0},
        {.id = core::TenantId{2}, .share = 0.5, .weight = 0.001}};
    const auto out = measureWorkShares(tenants);
    ASSERT_GT(out.heavyWork + out.lightWork, 0u);
    EXPECT_GE(out.lightServed, 10u);
    const double light_share =
        static_cast<double>(out.lightWork) /
        static_cast<double>(out.heavyWork + out.lightWork);
    EXPECT_LT(light_share, 0.25);
}

TEST_F(TenantEngineFixture, CorrelatedBurstsClipWithoutHarmingPremium)
{
    // Two best-effort tenants burst in the SAME window (correlated
    // overload) while a premium tenant keeps a modest paced stream.
    // With admission shares and fair service the correlated burst is
    // clipped inside the bursty tenants' own queue shares; the
    // premium tenant rides through with nothing rejected or expired.
    WorkloadScript script;
    script.horizonSeconds = 0.5;
    TenantSpec prem;
    prem.name = "premium";
    prem.tenant = core::TenantId{1};
    prem.arrivalRate = 150.0;
    prem.priority = 1;
    prem.k = 5;
    prem.nprobe = 8;
    script.tenants.push_back(prem);
    for (std::uint64_t id : {2u, 3u}) {
        TenantSpec b;
        b.name = id == 2 ? "burst-a" : "burst-b";
        b.tenant = core::TenantId{id};
        b.arrivalRate = 80.0;
        b.burstFactor = 25.0;
        b.burstStartSeconds = 0.2;
        b.burstEndSeconds = 0.35;
        b.k = 5;
        b.nprobe = 8;
        script.tenants.push_back(b);
    }
    const auto trace = WorkloadTrace::generate(script, *dataset_, 23);

    // Correlation sanity: the bulk of each bursty tenant's arrivals
    // lands inside the shared window.
    for (std::uint64_t id : {2u, 3u}) {
        std::size_t total = 0, windowed = 0;
        for (const ScriptedRequest &r : trace.requests())
            if (r.tenant == core::TenantId{id}) {
                ++total;
                if (r.atSeconds >= 0.2 && r.atSeconds < 0.35)
                    ++windowed;
            }
        ASSERT_GT(total, 0u);
        EXPECT_GE(static_cast<double>(windowed), 0.5 * total);
    }

    core::TenantPolicy tenants;
    tenants.enable = true;
    tenants.fairService = true;
    tenants.defaults.share = 0.25;
    tenants.classes = {{.id = core::TenantId{1},
                        .name = "premium",
                        .share = 0.5,
                        .weight = 4.0,
                        .degradable = false}};
    const auto engine =
        core::EngineBuilder(*index_)
            .tieredFromProfile(makeProfile(), 1.0)
            .hotShards(1)
            .shardBackend(core::throttledShardFactory(2e-3))
            .defaultK(5)
            .defaultNprobe(8)
            .searchThreads(1)
            .batching({.maxBatch = 4, .timeoutSeconds = 5e-4})
            .admissionQueueBound(16)
            .tenantIsolation(tenants)
            .build();

    std::vector<std::future<core::SearchResponse>> futures;
    futures.reserve(trace.size());
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            trace.requests()[i].atSeconds)));
        futures.push_back(engine->submit(trace.request(i)));
    }
    engine->drain();
    for (auto &f : futures)
        f.get();

    const auto s = engine->stats();
    const auto *p = tenantSlice(s, core::TenantId{1});
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->rejected, 0u);
    EXPECT_EQ(p->expired, 0u);
    EXPECT_EQ(p->served, p->submitted);
    for (std::uint64_t id : {2u, 3u}) {
        const auto *b = tenantSlice(s, core::TenantId{id});
        ASSERT_NE(b, nullptr);
        EXPECT_GT(b->rejected, 0u)
            << "correlated burst of tenant " << id
            << " was not clipped";
    }
}

TEST_F(TenantEngineFixture, TenantPolicyValidation)
{
    // Every rejection must name the offending field so a misconfigured
    // TenantClass is actionable, not just "invalid config".
    const auto build_error =
        [&](const core::TenantPolicy &p) -> std::string {
        try {
            core::EngineBuilder(*index_)
                .admissionQueueBound(16)
                .tenantIsolation(p)
                .build();
        } catch (const std::invalid_argument &e) {
            return e.what();
        }
        return {};
    };
    const auto expect_rejects = [&](const core::TenantPolicy &p,
                                    std::string_view needle) {
        const std::string msg = build_error(p);
        EXPECT_NE(msg.find(needle), std::string::npos)
            << "expected rejection mentioning '" << needle
            << "', got: " << (msg.empty() ? "<no throw>" : msg);
    };

    core::TenantPolicy tenants;
    tenants.enable = true;

    // Weighted admission requires a bounded queue.
    EXPECT_THROW(core::EngineBuilder(*index_)
                     .tenantIsolation(tenants)
                     .build(),
                 std::invalid_argument);

    auto p = tenants;
    p.defaults.share = 0.0;
    expect_rejects(p, "share must be in (0, 1]");

    p = tenants;
    p.classes = {{.id = core::TenantId{1}, .share = 1.5}};
    expect_rejects(p, "share must be in (0, 1]");

    p = tenants;
    p.classes = {
        {.id = core::TenantId{1}, .minShare = 0.6, .maxShare = 0.4}};
    expect_rejects(p, "minShare <= maxShare");

    p = tenants;
    p.classes = {{.id = core::TenantId{1}, .share = 0.2,
                  .minShare = 0.4, .maxShare = 0.8}};
    expect_rejects(p, "[minShare, maxShare]");

    p = tenants;
    p.classes = {{.id = core::TenantId{1}, .weight = 0.0}};
    expect_rejects(p, "weight must be > 0");

    p = tenants;
    p.classes = {{.id = core::TenantId{1},
                  .slo = {.missRateTarget = 1.5}}};
    expect_rejects(p, "missRateTarget");

    p = tenants;
    p.classes = {{.id = core::TenantId{1}, .weight = 2.0},
                 {.id = core::TenantId{1}, .weight = 1.0}};
    expect_rejects(p, "duplicate TenantClass");

    p = tenants;
    p.weightFloor = 0.0;
    expect_rejects(p, "weightFloor");

    // Adaptive shares run inside the autopilot control cycle.
    p = tenants;
    p.adaptiveShares = true;
    expect_rejects(p, "adaptiveShares");

    // A valid classed policy builds; disabled policies need no
    // bounded queue.
    p = tenants;
    p.fairService = true;
    p.classes = {
        {.id = core::TenantId{1}, .share = 0.5, .weight = 2.0},
        {.id = core::TenantId{2}, .share = 0.5, .weight = 1.0}};
    EXPECT_NO_THROW(core::EngineBuilder(*index_)
                        .admissionQueueBound(16)
                        .tenantIsolation(p)
                        .build());
    p.enable = false;
    EXPECT_NO_THROW(
        core::EngineBuilder(*index_).tenantIsolation(p).build());
}

TEST_F(TenantEngineFixture, TenantClassBuilderReplacesById)
{
    // tenantClass() enables the policy and replaces an earlier class
    // with the same id (last registration wins), so call sites can
    // layer a preset and then override one tenant.
    const auto engine =
        core::EngineBuilder(*index_)
            .defaultK(5)
            .defaultNprobe(4)
            .admissionQueueBound(16)
            .tenantClass({.id = core::TenantId{7},
                          .name = "first",
                          .weight = 2.0})
            .tenantClass({.id = core::TenantId{7},
                          .name = "second",
                          .weight = 5.0})
            .tenantClass({.id = core::TenantId{8}, .weight = 0.5})
            .build();
    const auto &table = engine->tenantTable();
    EXPECT_TRUE(table.enabled());
    ASSERT_EQ(table.classes().size(), 2u);
    EXPECT_EQ(table.resolve(core::TenantId{7}).name, "second");
    EXPECT_EQ(table.weight(core::TenantId{7}), 5.0);
    // Unregistered tenants resolve to the defaults class.
    EXPECT_EQ(table.resolve(core::TenantId{9}).weight, 1.0);
}

} // namespace
} // namespace vlr::wl

/**
 * @file
 * Tiered hot/cold index runtime — the live-engine counterpart of the
 * analytic partitioning pipeline (paper Sections IV-A/IV-B).
 *
 * A TieredIndex splits a trained IvfPqFastScanIndex by cluster: the hot
 * tier is a fast-path replica of the most-accessed clusters (extracted
 * with subsetClusters(), standing in for the GPU-resident shards; a
 * later PR swaps its backend for a real device), while cold probes scan
 * the source index in place — the CPU keeps the full index, exactly as
 * the paper's host-side master copy does. Each query's probe list is
 * routed through the pruned Router over a single-shard ShardAssignment,
 * so hot-covered queries skip the cold tier entirely and the router's
 * work-weighted hit rates come from the same code path the simulator
 * uses. Live searches bump per-cluster atomic access counters; the
 * OnlineUpdater drains them to drive skew-tracking repartitions
 * (cluster promote/demote) that swap in a new tier snapshot without
 * stalling in-flight batches.
 */

#ifndef VLR_CORE_TIERED_INDEX_H
#define VLR_CORE_TIERED_INDEX_H

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/threadpool.h"
#include "core/access_profile.h"
#include "core/router.h"
#include "core/splitter.h"
#include "vecsearch/ivf_pq_fastscan.h"

namespace vlr::core
{

/** Routing outcome of one live query through the tiers. */
struct TieredQueryStats
{
    /** Probes resident on the hot tier. */
    std::size_t hotProbes = 0;
    /** Probes served by the cold (source) tier. */
    std::size_t coldProbes = 0;
    /** Work-weighted hot hit rate (router semantics). */
    double hitRate = 0.0;
    /** True when the cold tier was skipped entirely. */
    bool hotOnly = false;
};

/** Aggregate routing outcome of one batch. */
struct TieredBatchStats
{
    std::size_t queries = 0;
    std::size_t hotOnlyQueries = 0;
    std::size_t coldOnlyQueries = 0;
    std::size_t splitQueries = 0;
    double meanHitRate = 0.0;
    double minHitRate = 1.0;
};

/** Cumulative tier statistics since construction. */
struct TieredStatsSnapshot
{
    std::size_t queries = 0;
    std::size_t hotOnlyQueries = 0;
    std::size_t coldOnlyQueries = 0;
    std::size_t splitQueries = 0;
    /** Mean work-weighted hit rate over all served queries. */
    double meanHitRate = 0.0;
    /** Fraction of all probes that landed on the hot tier. */
    double hotProbeFraction = 0.0;
    /** Completed repartitions (snapshot swaps). */
    std::size_t repartitions = 0;
    /** Current coverage: hot clusters / nlist. */
    double rho = 0.0;
    std::size_t numHot = 0;
    /** Resident bytes of the current hot-tier replica. */
    std::size_t hotBytes = 0;
};

/**
 * Partition-aware retrieval path over a trained IvfPqFastScanIndex.
 *
 * Search results are exactly the single-tier results for any hot set:
 * both tiers share the source's coarse quantizer and PQ, distances are
 * bit-identical, and top-k selection is a total order on (dist, id), so
 * merging per-tier top-k lists reproduces the serial scan.
 *
 * Thread-safety: search methods are const and may run from any number
 * of threads; repartition() may run concurrently with searches (each
 * search pins the tier snapshot it started with via shared_ptr). The
 * source index must outlive the TieredIndex and must not be mutated
 * while tiered searches run.
 */
class TieredIndex
{
  public:
    /**
     * @param source trained and populated single-tier index.
     * @param hot_clusters clusters replicated on the hot tier (any
     *        subset of [0, nlist), e.g. AccessProfile::hotClusters).
     */
    TieredIndex(const vs::IvfPqFastScanIndex &source,
                std::vector<cluster_id_t> hot_clusters);

    /** Convenience: hot set = profile's top-rho clusters. */
    TieredIndex(const vs::IvfPqFastScanIndex &source,
                const AccessProfile &profile, double rho);

    /**
     * Serial tiered search: probe the shared coarse quantizer, route
     * probes through the pruned router, scan the hot replica and (only
     * if needed) the cold source, merge. Records per-cluster access
     * counts.
     */
    std::vector<vs::SearchHit> search(const float *query, std::size_t k,
                                      std::size_t nprobe,
                                      vs::SearchScratch *scratch = nullptr,
                                      TieredQueryStats *qs = nullptr) const;

    /**
     * Batched tiered search across a thread pool; one snapshot serves
     * the whole batch. Results are bit-identical to per-query search().
     */
    std::vector<std::vector<vs::SearchHit>> searchBatchParallel(
        std::span<const float> queries, std::size_t nq, std::size_t k,
        std::size_t nprobe, ThreadPool &pool,
        TieredBatchStats *bs = nullptr) const;

    /**
     * Rebuild the hot tier around a new hot set and atomically swap it
     * in. The (expensive) replica build runs before the swap, outside
     * any lock; searches started on the old snapshot finish on it.
     */
    void repartition(std::vector<cluster_id_t> hot_clusters);

    /**
     * Return and reset the live per-cluster access counts (probes per
     * cluster since the last drain) — the profiling input of an online
     * repartition cycle.
     */
    std::vector<double> drainAccessCounts();

    /**
     * Build an AccessProfile from live access counts and the source
     * index's real per-cluster sizes/bytes, ready for hotClusters()
     * selection or the latency-bounded partitioner.
     */
    AccessProfile profileFromCounts(std::vector<double> counts) const;

    TieredStatsSnapshot stats() const;

    /** Current hot-tier membership bitmap (copy; nlist entries). */
    std::vector<bool> hotBitmap() const;

    double rho() const;
    std::size_t numHotClusters() const;
    std::size_t dim() const { return source_.dim(); }
    std::size_t nlist() const { return source_.nlist(); }
    const vs::IvfPqFastScanIndex &source() const { return source_; }

  private:
    /** One immutable hot/cold placement generation. */
    struct Tiers
    {
        ShardAssignment assignment;
        Router router;
        /** Hot-cluster replica (global ids, absent lists empty). */
        vs::IvfPqFastScanIndex hot;
        std::size_t numHot = 0;
        double rho = 0.0;
        std::size_t hotBytes = 0;

        Tiers(const vs::IvfPqFastScanIndex &source,
              std::vector<cluster_id_t> hot_clusters);
    };

    std::shared_ptr<const Tiers> snapshot() const;

    std::vector<vs::SearchHit> searchRouted(
        const Tiers &tiers, const float *query, std::size_t k,
        std::span<const cluster_id_t> clusters, vs::SearchScratch *scratch,
        TieredQueryStats *qs) const;

    const vs::IvfPqFastScanIndex &source_;

    mutable std::mutex snapshotMutex_;
    std::shared_ptr<const Tiers> tiers_;

    /** Live per-cluster probe counters (relaxed; profiling input). */
    std::unique_ptr<std::atomic<std::uint64_t>[]> accessCounts_;

    mutable std::atomic<std::uint64_t> queries_{0};
    mutable std::atomic<std::uint64_t> hotOnly_{0};
    mutable std::atomic<std::uint64_t> coldOnly_{0};
    mutable std::atomic<std::uint64_t> split_{0};
    mutable std::atomic<std::uint64_t> hotProbes_{0};
    mutable std::atomic<std::uint64_t> totalProbes_{0};
    /** Sum of per-query hit rates (CAS loop; see atomicAddDouble). */
    mutable std::atomic<double> hitRateSum_{0.0};
    std::atomic<std::uint64_t> repartitions_{0};
};

} // namespace vlr::core

#endif // VLR_CORE_TIERED_INDEX_H

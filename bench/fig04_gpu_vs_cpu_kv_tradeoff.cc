/**
 * @file
 * Figure 4 reproduction.
 *
 * Left: CPU IVF fast-scan vs GPU IVF search time at paper scale (the
 * calibrated cost models for a 64-core Xeon 8462Y+ and an H100) — the
 * GPU wins by roughly an order of magnitude.
 * Right: LLM throughput (Qwen3-30B MoE on two H100s) as a function of
 * the KV-cache space left after a vector index displaces part of it —
 * throughput collapses as KV space shrinks.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout,
                "Figure 4 (left): CPU fast scan vs GPU IVF search");

    const auto spec = wl::wikiAllSpec();
    gpu::CpuSearchModel cpu(gpu::xeon8462Spec(), spec.cpuParams);
    gpu::GpuSearchModel gpu_model(gpu::h100Spec());

    TextTable left({"engine", "batch", "search time (ms)"});
    const std::size_t batch = 8;
    const double t_cpu = cpu.searchSeconds(batch, 0.0);
    // GPU scan: full nprobe worth of kernel blocks; bytes = the probed
    // share of the index per query (nprobe / nlist of the footprint).
    const double probe_frac =
        static_cast<double>(spec.nprobe) /
        static_cast<double>(spec.numClusters);
    const double bytes_per_query =
        probe_frac * static_cast<double>(spec.paperIndexBytes);
    const double pairs =
        static_cast<double>(batch * spec.paperNprobe);
    const double t_gpu = gpu_model.shardSeconds(
        static_cast<std::size_t>(pairs), batch * bytes_per_query);
    left.addRow({"CPU IVF fast scan (Xeon 8462Y+)",
                 std::to_string(batch), TextTable::num(t_cpu * 1e3, 1)});
    left.addRow({"GPU IVF search (H100)", std::to_string(batch),
                 TextTable::num(t_gpu * 1e3, 1)});
    left.print(std::cout);
    std::cout << "speedup: " << TextTable::num(t_cpu / t_gpu, 1)
              << "x (paper: GPU outperforms fast scan by nearly an "
                 "order of magnitude)\n\n";

    printBanner(std::cout,
                "Figure 4 (right): KV-cache space vs LLM throughput");
    std::cout << "model: Qwen3-30B-A3B MoE on 2x H100 (TP2), 1024/256 "
                 "tokens\n\n";

    const auto cfg = llm::qwen3_30b_moe();
    const auto gpu_spec = gpu::h100Spec();

    // Baseline KV space with no index resident.
    gpu::GpuDevice probe_dev(0, gpu_spec);
    probe_dev.reserveWeights(cfg.weightBytes() /
                             static_cast<bytes_t>(cfg.tensorParallel));
    const double kv0 = static_cast<double>(probe_dev.kvCacheBytes());

    TextTable right({"relative KV space", "KV GB/GPU",
                     "throughput (req/s)", "normalized"});
    double thr_full = -1.0;
    // The interesting regime is KV-starved: with worst-case block
    // reservation the engine never thrashes, so throughput holds until
    // admissible concurrency drops below the bandwidth-saturation
    // batch, then collapses (the paper's steep left-hand slope).
    const double weights_per_gpu =
        static_cast<double>(cfg.weightBytes()) / cfg.tensorParallel;
    for (const double frac :
         {1.0, 0.6, 0.4, 0.3, 0.2, 0.12, 0.08, 0.05, 0.03, 0.02}) {
        // Model the index displacing (1-frac) of the baseline KV space
        // by shrinking the device memory so the engine's post-reserve
        // KV allocation equals exactly frac * kv0.
        gpu::GpuSpec shrunk = gpu_spec;
        shrunk.memBytes = static_cast<bytes_t>(
            (frac * kv0 + weights_per_gpu) /
            (1.0 - gpu_spec.memReserveFraction));
        const double thr = llm::measurePeakThroughput(
            cfg, shrunk, cfg.tensorParallel, 1024, 256, 192);
        if (thr_full < 0.0)
            thr_full = thr;
        right.addRow({TextTable::num(frac, 2),
                      TextTable::num(frac * kv0 / 1e9, 1),
                      TextTable::num(thr, 2),
                      TextTable::num(thr / thr_full, 3)});
    }
    right.print(std::cout);
    std::cout << "\npaper: reducing KV cache space leads to a "
                 "significant drop in throughput.\n";
    return 0;
}

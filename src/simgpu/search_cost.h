/**
 * @file
 * Analytical cost models for vector search on the CPU tier and on GPU
 * shards. These are the PERFMODEL inputs of the paper's Algorithm 1:
 * the CPU side is piecewise linear in batch size with separate coarse-
 * quantization (CQ) and LUT terms (paper Eq. 1); the GPU side charges a
 * launch overhead, a per-(query,cluster)-pair block-scheduling cost and
 * a bandwidth term for the bytes scanned.
 */

#ifndef VLR_SIMGPU_SEARCH_COST_H
#define VLR_SIMGPU_SEARCH_COST_H

#include <cstddef>

#include "simgpu/gpu_spec.h"

namespace vlr::gpu
{

/**
 * Calibrated constants describing CPU search latency for one dataset at
 * paper scale. Latency of a full-miss batch of size b:
 *
 *   T_CQ(b)  = cqFixedSeconds  + cqPerQuerySeconds  * b
 *   T_LUT(b) = lutFixedSeconds + lutPerQuerySeconds * b
 *
 * The fixed terms model the per-query critical path that batching does
 * not parallelize away; the slopes model the marginal work a query adds
 * when cores are shared. Workload presets provide values that reproduce
 * the magnitudes in the paper's Fig. 8 (left).
 */
struct CpuSearchParams
{
    double cqFixedSeconds = 0.010;
    double cqPerQuerySeconds = 0.0008;
    double lutFixedSeconds = 0.060;
    double lutPerQuerySeconds = 0.004;
};

/**
 * CPU-tier latency model. Work fractions are expressed relative to a
 * full-probe scan: a query whose CPU-resident probes amount to `w` of
 * its total probe work (w = 1 - hit rate) contributes w of the per-query
 * LUT terms.
 */
class CpuSearchModel
{
  public:
    CpuSearchModel(CpuSpec cpu, CpuSearchParams params);

    /** Coarse quantization time for a batch of b queries. */
    double cqSeconds(std::size_t b) const;

    /** LUT build + scan time for a full-miss batch of b queries. */
    double lutSeconds(std::size_t b) const;

    /**
     * LUT time for a batch with per-query CPU work fractions.
     * The batch completes when its largest-work query does:
     *   t = lutFixed * max_w + lutPerQuery * sum_w.
     * With all w = 1 this reduces to lutSeconds(b).
     */
    double lutSecondsPartial(double max_work_fraction,
                             double total_work_fraction) const;

    /** Full search latency (Eq. 1 with hit rate 1 - w). */
    double searchSeconds(std::size_t b, double min_hit_rate) const;

    /** Critical-path LUT component of one query with work fraction w. */
    double lutFixedComponent(double w) const;

    /** Marginal (shared-core) LUT component for total work fraction w. */
    double lutMarginalComponent(double total_w) const;

    const CpuSpec &cpu() const { return cpu_; }
    const CpuSearchParams &params() const { return params_; }

  private:
    CpuSpec cpu_;
    CpuSearchParams params_;
    /** Core-count scaling relative to the 64-core reference host. */
    double coreScale_;
};

/**
 * GPU shard scan cost model.
 *
 * shardSeconds = kernelLaunch
 *              + pairs * blockSchedule
 *              + bytesScanned / (bw * searchBwEfficiency)
 *
 * `pairs` counts launched (query, cluster) blocks. The VectorLiteRAG
 * router only launches resident pairs; the IndexIVFShards-style baseline
 * launches nprobe pairs per query per shard regardless of residency,
 * paying the scheduling term for skipped work (paper Section IV-B1).
 */
class GpuSearchModel
{
  public:
    explicit GpuSearchModel(GpuSpec spec);

    double shardSeconds(std::size_t pairs, double bytes_scanned) const;

    /**
     * Compute occupancy this kernel burst imposes on the GPU, used for
     * contention with LLM inference. Scales with the number of
     * concurrently resident blocks, saturating at 1.
     */
    double occupancy(std::size_t pairs) const;

    const GpuSpec &spec() const { return spec_; }

  private:
    GpuSpec spec_;
};

} // namespace vlr::gpu

#endif // VLR_SIMGPU_SEARCH_COST_H

/**
 * @file
 * Tests for the closed-loop control surface: EDF ordering inside a
 * priority class, graceful nprobe degradation under queue pressure
 * (never below the floor, parity when idle or disabled, and scoped to
 * degradable tenant classes), the SloAutopilot re-picking the hot set
 * after a hotspot flip through the OnlineUpdater snapshot swap, the
 * tenant-aware control cycle (adaptive admission shares tracking
 * measured demand inside each class's clamp, per-tenant SLO breaches
 * escalating coverage and the weighted miss objective), and
 * EngineBuilder validation of the degradation / autopilot policy
 * knobs.
 */

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/access_profile.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "core/online_update.h"
#include "core/shard_backend.h"
#include "core/slo_autopilot.h"
#include "core/tiered_index.h"
#include "vecsearch/ivf_pq_fastscan.h"
#include "vecsearch/kmeans.h"

namespace vlr::core
{
namespace
{

/** Fixed-seed clustered corpus + a trained fast-scan index. */
struct AutopilotFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(77);
        centers_.resize(ncenters_ * d_);
        for (auto &x : centers_)
            x = static_cast<float>(rng.uniform(-1.0, 1.0));
        data_.resize(n_ * d_);
        for (std::size_t i = 0; i < n_; ++i) {
            const std::size_t c = rng.uniformU64(ncenters_);
            for (std::size_t j = 0; j < d_; ++j)
                data_[i * d_ + j] =
                    centers_[c * d_ + j] +
                    static_cast<float>(rng.gaussian(0.0, 0.15));
        }
        vs::KMeansParams p;
        p.k = nlist_;
        const auto km = vs::kmeansTrain(data_, n_, d_, p);
        cq_ = std::make_shared<vs::FlatCoarseQuantizer>(km.centroids,
                                                        nlist_, d_);
        index_ = std::make_unique<vs::IvfPqFastScanIndex>(cq_, m_);
        index_->train(data_, n_);
        index_->add(data_, n_);

        queries_.resize(nq_ * d_);
        for (std::size_t i = 0; i < nq_; ++i) {
            const std::size_t c = rng.uniformU64(ncenters_);
            for (std::size_t j = 0; j < d_; ++j)
                queries_[i * d_ + j] =
                    centers_[c * d_ + j] +
                    static_cast<float>(rng.gaussian(0.0, 0.2));
        }
    }

    /** Skewed synthetic access profile over the index's clusters. */
    AccessProfile
    makeProfile() const
    {
        std::vector<double> counts(nlist_), work(nlist_), bytes(nlist_);
        for (std::size_t c = 0; c < nlist_; ++c) {
            const auto id = static_cast<cluster_id_t>(c);
            counts[c] = static_cast<double>(nlist_ - c);
            work[c] = static_cast<double>(index_->listSize(id));
            bytes[c] = static_cast<double>(index_->listBytes(id));
        }
        return AccessProfile(std::move(counts), std::move(work),
                             std::move(bytes));
    }

    /**
     * Row-major queries drawn tightly around the fixture centers in
     * [center_lo, center_hi): a controllable hotspot population.
     */
    std::vector<float>
    hotspotQueries(std::size_t n, std::size_t center_lo,
                   std::size_t center_hi, std::uint64_t seed) const
    {
        Rng rng(seed);
        std::vector<float> q(n * d_);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c =
                center_lo +
                rng.uniformU64(center_hi - center_lo);
            for (std::size_t j = 0; j < d_; ++j)
                q[i * d_ + j] =
                    centers_[c * d_ + j] +
                    static_cast<float>(rng.gaussian(0.0, 0.05));
        }
        return q;
    }

    std::span<const float>
    query(std::size_t i) const
    {
        return {queries_.data() + i * d_, d_};
    }

    const std::size_t n_ = 3000;
    const std::size_t d_ = 16;
    const std::size_t m_ = 8;
    const std::size_t ncenters_ = 24;
    const std::size_t nlist_ = 32;
    const std::size_t nq_ = 48;
    std::vector<float> centers_;
    std::vector<float> data_;
    std::vector<float> queries_;
    std::shared_ptr<vs::FlatCoarseQuantizer> cq_;
    std::unique_ptr<vs::IvfPqFastScanIndex> index_;
};

// --- EDF dispatch -----------------------------------------------------

TEST_F(AutopilotFixture, EdfOrdersEqualPriorityByDeadline)
{
    // A throttled hot tier keeps the dispatcher busy in executeBatch
    // while the deadlined requests queue; with one-query batches the
    // completion order then mirrors batch-formation order, which
    // within a priority class must be earliest-deadline-first with
    // deadline-free requests last.
    const auto profile = makeProfile();
    TieredIndex tiered(*index_, profile, 1.0,
                       TieredOptions{1, throttledShardFactory(50e-3)});
    const auto engine = EngineBuilder(tiered)
                            .searchThreads(2)
                            .batching({.maxBatch = 1,
                                       .timeoutSeconds = 0.0})
                            .build();

    std::mutex order_mutex;
    std::vector<std::uint64_t> completion_order;
    const auto record = [&](SearchResponse r) {
        std::lock_guard<std::mutex> lk(order_mutex);
        completion_order.push_back(r.tag);
    };

    SearchRequest warm;
    warm.query = query(0);
    warm.tag = 0;
    engine->submitAsync(warm, record);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

    // Same priority throughout; deadlines generous enough never to
    // expire, submitted deliberately out of deadline order, with one
    // deadline-free request that must trail every deadlined one. Tags
    // encode the expected completion rank.
    const struct
    {
        double deadline;
        std::uint64_t tag;
    } submissions[] = {
        {5.0, 3}, {0.0, 5}, {2.0, 1}, {9.0, 4}, {3.0, 2},
    };
    std::size_t qi = 1;
    for (const auto &sub : submissions) {
        SearchRequest request;
        request.query = query(qi++);
        request.tag = sub.tag;
        if (sub.deadline > 0.0)
            request.deadlineSeconds = sub.deadline;
        engine->submitAsync(request, record);
    }
    engine->drain();

    ASSERT_EQ(completion_order.size(), 6u);
    for (std::size_t i = 0; i < completion_order.size(); ++i)
        EXPECT_EQ(completion_order[i], i)
            << "completion position " << i;
}

// --- Graceful degradation ---------------------------------------------

TEST_F(AutopilotFixture, DegradationEngagesUnderPressureNeverBelowFloor)
{
    // Burst a deep backlog through one-batch-at-a-time throttled
    // execution: pressure = (backlog + nq) / cap stays far above the
    // 1.0 threshold, so served requests must be degraded — but never
    // below nprobeFloor, and a request already below the floor is
    // served exactly as requested.
    const auto profile = makeProfile();
    TieredIndex tiered(*index_, profile, 1.0,
                       TieredOptions{1, throttledShardFactory(2e-3)});
    DegradationPolicy degrade;
    degrade.enable = true;
    degrade.nprobeFloor = 4;
    degrade.queuePressure = 1.0;
    const auto engine = EngineBuilder(tiered)
                            .searchThreads(2)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 1e-3})
                            .degradation(degrade)
                            .build();

    std::vector<SearchRequest> requests(nq_);
    for (std::size_t i = 0; i < nq_; ++i) {
        requests[i].query = query(i);
        // Every sixth request already sits below the floor.
        requests[i].nprobe = i % 6 == 0 ? 2 : 16;
        requests[i].tag = i;
    }
    auto futures = engine->submitMany(requests);
    engine->drain();

    std::size_t degraded = 0;
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto r = futures[i].get();
        ASSERT_EQ(r.disposition, Disposition::kServed);
        EXPECT_LE(r.nprobe, requests[i].nprobe) << "request " << i;
        EXPECT_GE(r.nprobe,
                  std::min<std::size_t>(requests[i].nprobe,
                                        degrade.nprobeFloor))
            << "request " << i;
        if (requests[i].nprobe == 2) {
            // Below-floor requests are never touched.
            EXPECT_EQ(r.nprobe, 2u) << "request " << i;
            EXPECT_FALSE(r.degraded) << "request " << i;
        }
        EXPECT_EQ(r.degraded, r.nprobe < requests[i].nprobe)
            << "request " << i;
        if (r.degraded)
            ++degraded;
    }
    EXPECT_GT(degraded, 0u);

    const auto s = engine->stats();
    EXPECT_EQ(s.degradedServed, degraded);
    EXPECT_GT(s.degradedBatches, 0u);
}

TEST_F(AutopilotFixture, DegradationOffMatchesSerialBitForBit)
{
    // With the policy disabled (the default) the burst path must stay
    // bit-identical to per-request serial tiered search: degradation
    // is strictly opt-in.
    const auto profile = makeProfile();
    TieredIndex tiered(*index_, profile, 0.25, TieredOptions{2, {}});
    const auto engine = EngineBuilder(tiered)
                            .searchThreads(4)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 1e-3})
                            .build();

    std::vector<SearchRequest> requests(nq_);
    for (std::size_t i = 0; i < nq_; ++i) {
        requests[i].query = query(i);
        requests[i].nprobe = 16;
    }
    auto futures = engine->submitMany(requests);
    engine->drain();

    for (std::size_t i = 0; i < nq_; ++i) {
        const auto r = futures[i].get();
        ASSERT_EQ(r.disposition, Disposition::kServed);
        EXPECT_FALSE(r.degraded);
        EXPECT_EQ(r.nprobe, 16u);
        const auto serial =
            tiered.search(queries_.data() + i * d_, r.k, 16);
        ASSERT_EQ(r.hits.size(), serial.size()) << "query " << i;
        for (std::size_t j = 0; j < serial.size(); ++j) {
            EXPECT_EQ(r.hits[j].id, serial[j].id)
                << "query " << i << " rank " << j;
            EXPECT_EQ(r.hits[j].dist, serial[j].dist)
                << "query " << i << " rank " << j;
        }
    }
    EXPECT_EQ(engine->stats().degradedServed, 0u);
}

// --- Autopilot control loop -------------------------------------------

TEST_F(AutopilotFixture, AutopilotRepicksHotSetAfterHotspotFlip)
{
    // Serve a population hammering one center range, run a manual
    // control cycle, then flip the hotspot to a disjoint range: the
    // next cycle must detect the stale hot set (overlap check) and
    // repartition through the updater's snapshot swap.
    const auto profile = makeProfile();
    TieredIndex tiered(*index_, profile, 0.25, TieredOptions{1, {}});
    OnlineUpdater::Options uopts;
    uopts.rho = 0.25;
    OnlineUpdater updater(tiered, uopts,
                          profile.meanWorkHitRate(0.25));

    AutopilotPolicy pilot;
    pilot.enable = true;
    pilot.controlIntervalSeconds = 0.0; // manual cycles only
    pilot.minBatchObservations = 2;
    pilot.queryReservoir = 32;
    // Drop inter-cycle count history so the flip is immediate, and
    // pin a coverage floor so the model's tiny-scale rho=0 pick keeps
    // a live hot set whose membership can flip.
    pilot.countDecay = 0.0;
    pilot.minRho = 0.25;
    pilot.maxBatchCap = 16;

    const auto engine = EngineBuilder(tiered)
                            .searchThreads(2)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 1e-3})
                            .autopilot(pilot)
                            .updater(&updater)
                            .build();
    ASSERT_NE(engine->autopilot(), nullptr);

    const auto serve = [&](const std::vector<float> &q) {
        std::vector<SearchRequest> requests(q.size() / d_);
        for (std::size_t i = 0; i < requests.size(); ++i)
            requests[i].query =
                std::span<const float>(q.data() + i * d_, d_);
        auto futures = engine->submitMany(requests);
        engine->drain();
        for (auto &f : futures)
            ASSERT_EQ(f.get().disposition, Disposition::kServed);
    };

    serve(hotspotQueries(64, 0, 8, 101));
    engine->autopilot()->runControlCycle();
    updater.waitForRebuild();
    const auto hot_a = tiered.hotBitmap();

    serve(hotspotQueries(64, 16, 24, 202));
    const bool repartitioned = engine->autopilot()->runControlCycle();
    EXPECT_TRUE(repartitioned)
        << "hotspot flip must trigger a repartition";
    updater.waitForRebuild();
    const auto hot_b = tiered.hotBitmap();
    EXPECT_NE(hot_a, hot_b) << "hot-set membership must move";

    const auto s = engine->stats();
    EXPECT_EQ(s.autopilotCycles, 2u);
    EXPECT_GE(s.autopilotRepartitions, 1u);
    ASSERT_EQ(s.autopilotTrace.size(), 2u);
    EXPECT_TRUE(s.autopilotTrace.back().repartitioned);
    for (const auto &d : s.autopilotTrace) {
        EXPECT_GE(d.rho, pilot.minRho - 1e-9);
        EXPECT_LE(d.rho, pilot.maxRho + 1e-9);
        EXPECT_GE(d.batchCap, 1u);
        EXPECT_LE(d.batchCap, pilot.maxBatchCap);
        EXPECT_GT(d.arrivalRate, 0.0);
    }
    EXPECT_GE(engine->batchCap(), 1u);
    EXPECT_LE(engine->batchCap(), pilot.maxBatchCap);
    EXPECT_EQ(engine->autopilot()->cyclesRun(), 2u);
}

TEST_F(AutopilotFixture, AutopilotCycleWithoutTrafficIsANoOp)
{
    // Below minBatchObservations the cycle must neither repartition
    // nor record a decision — but still count as a cycle.
    const auto profile = makeProfile();
    TieredIndex tiered(*index_, profile, 0.25, TieredOptions{1, {}});
    OnlineUpdater::Options uopts;
    uopts.rho = 0.25;
    OnlineUpdater updater(tiered, uopts,
                          profile.meanWorkHitRate(0.25));
    AutopilotPolicy pilot;
    pilot.enable = true;
    pilot.controlIntervalSeconds = 0.0;
    const auto engine = EngineBuilder(tiered)
                            .autopilot(pilot)
                            .updater(&updater)
                            .build();

    EXPECT_FALSE(engine->autopilot()->runControlCycle());
    const auto s = engine->stats();
    EXPECT_EQ(s.autopilotCycles, 1u);
    EXPECT_EQ(s.autopilotRepartitions, 0u);
    EXPECT_TRUE(s.autopilotTrace.empty());
}

// --- Tenant-aware control ---------------------------------------------

/** Per-tenant slice of a decision, or nullptr if absent. */
const TenantDecision *
decisionFor(const AutopilotDecision &d, TenantId id)
{
    for (const auto &t : d.tenants)
        if (t.tenant == id)
            return &t;
    return nullptr;
}

TEST_F(AutopilotFixture, AdaptiveSharesTrackDemandInsideClamp)
{
    // Demand split 3:1 between two tenants configured at share 0.5
    // each. One control cycle must move each live share halfway (the
    // default shareSmoothing of 0.5) from 0.5 toward its measured
    // demand fraction — except where the class clamp caps the move —
    // and record the actuation in the decision trace.
    const auto profile = makeProfile();
    TenantPolicy tenants;
    tenants.enable = true;
    tenants.adaptiveShares = true;
    tenants.classes = {{.id = TenantId{1},
                        .share = 0.5,
                        .minShare = 0.1,
                        .maxShare = 0.9},
                       {.id = TenantId{2},
                        .share = 0.5,
                        .minShare = 0.45,
                        .maxShare = 0.9}};
    AutopilotPolicy pilot;
    pilot.enable = true;
    pilot.controlIntervalSeconds = 0.0; // manual cycles only
    pilot.minBatchObservations = 2;
    pilot.queryReservoir = 32;
    pilot.minRho = 0.25;
    const auto engine = EngineBuilder(*index_)
                            .tieredFromProfile(profile, 0.25)
                            .searchThreads(2)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 1e-3})
                            .admissionQueueBound(4096)
                            .tenantIsolation(tenants)
                            .autopilot(pilot)
                            .build();

    std::vector<SearchRequest> requests(128);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        requests[i].query = query(i % nq_);
        // 96 submissions for tenant 1, 32 for tenant 2.
        requests[i].tenant = TenantId{i % 4 == 3 ? 2u : 1u};
    }
    auto futures = engine->submitMany(requests);
    engine->drain();
    for (auto &f : futures)
        ASSERT_EQ(f.get().disposition, Disposition::kServed);

    engine->autopilot()->runControlCycle();
    const auto s = engine->stats();
    ASSERT_EQ(s.autopilotTrace.size(), 1u);
    const auto &d = s.autopilotTrace.back();
    const auto *t1 = decisionFor(d, TenantId{1});
    const auto *t2 = decisionFor(d, TenantId{2});
    ASSERT_NE(t1, nullptr);
    ASSERT_NE(t2, nullptr);
    EXPECT_GT(t1->arrivalRate, 0.0);
    EXPECT_GT(t1->arrivalRate, t2->arrivalRate);

    // Demand fractions are exactly 0.75 / 0.25 (same window), so the
    // smoothed targets are 0.625 and 0.375 — the latter stopped at
    // its class's minShare clamp.
    EXPECT_NEAR(t1->share, 0.625, 1e-9);
    EXPECT_NEAR(t2->share, 0.45, 1e-9);
    EXPECT_TRUE(t1->shareChanged);
    EXPECT_TRUE(t2->shareChanged);
    EXPECT_FALSE(t1->sloBreached);
    EXPECT_FALSE(t2->sloBreached);
    EXPECT_EQ(d.weightedMissRate, 0.0);

    // The engine actuated the shares, not just the trace: the next
    // stats snapshot reports the live values.
    for (const auto &ts : s.tenants) {
        if (ts.tenant == TenantId{1})
            EXPECT_NEAR(ts.share, 0.625, 1e-9);
        if (ts.tenant == TenantId{2})
            EXPECT_NEAR(ts.share, 0.45, 1e-9);
    }
}

TEST_F(AutopilotFixture, PerTenantSloBreachEscalatesCoverage)
{
    // Tenant 1 stays healthy while tenant 2's tight deadlines expire
    // in a throttled backlog. The cycle must record the breach on
    // tenant 2 alone, fold it into the weighted miss objective, and
    // escalate coverage by at least rhoStep — a single tenant's
    // breach cannot be averaged away by the healthy majority.
    const auto profile = makeProfile();
    TenantPolicy tenants;
    tenants.enable = true;
    tenants.classes = {
        {.id = TenantId{1}, .slo = {.missRateTarget = 0.5}},
        {.id = TenantId{2}, .slo = {.missRateTarget = 0.0}}};
    AutopilotPolicy pilot;
    pilot.enable = true;
    pilot.controlIntervalSeconds = 0.0;
    pilot.minBatchObservations = 2;
    pilot.queryReservoir = 32;
    pilot.minRho = 0.25;
    pilot.maxRho = 0.5;
    const auto engine =
        EngineBuilder(*index_)
            .tieredFromProfile(profile, 0.25)
            .hotShards(1)
            .shardBackend(throttledShardFactory(2e-3))
            .searchThreads(2)
            .batching({.maxBatch = 8, .timeoutSeconds = 1e-3})
            .admissionQueueBound(4096)
            .tenantIsolation(tenants)
            .autopilot(pilot)
            .build();

    // Tenant 1 first (no deadline, all served); tenant 2 lands behind
    // a multi-batch throttled backlog with deadlines that cannot
    // survive it.
    std::vector<SearchRequest> requests(96);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        requests[i].query = query(i % nq_);
        if (i < 64) {
            requests[i].tenant = TenantId{1};
        } else {
            requests[i].tenant = TenantId{2};
            requests[i].deadlineSeconds = 1e-4;
        }
    }
    auto futures = engine->submitMany(requests);
    engine->drain();
    for (auto &f : futures)
        f.get();

    engine->autopilot()->runControlCycle();
    const auto s = engine->stats();
    ASSERT_EQ(s.autopilotTrace.size(), 1u);
    const auto &d = s.autopilotTrace.back();
    const auto *t1 = decisionFor(d, TenantId{1});
    const auto *t2 = decisionFor(d, TenantId{2});
    ASSERT_NE(t1, nullptr);
    ASSERT_NE(t2, nullptr);
    EXPECT_EQ(t1->missRate, 0.0);
    EXPECT_FALSE(t1->sloBreached);
    EXPECT_GT(t2->missRate, 0.0);
    EXPECT_TRUE(t2->sloBreached);
    // Equal weights: the objective averages the two miss rates.
    EXPECT_GT(d.weightedMissRate, 0.0);
    EXPECT_LT(d.weightedMissRate, t2->missRate);
    // Coverage escalated off the 0.25 floor by at least one step.
    EXPECT_GE(d.rho, 0.25 + pilot.rhoStep - 1e-9);
}

TEST_F(AutopilotFixture, DegradationSkipsNonDegradableTenants)
{
    // Same overload as the degradation test above, but the premium
    // tenant's class opts out: every premium request must be served
    // at its requested depth while the best-effort tenant absorbs the
    // nprobe shaving.
    const auto profile = makeProfile();
    TieredIndex tiered(*index_, profile, 1.0,
                       TieredOptions{1, throttledShardFactory(2e-3)});
    DegradationPolicy degrade;
    degrade.enable = true;
    degrade.nprobeFloor = 4;
    degrade.queuePressure = 1.0;
    TenantPolicy tenants;
    tenants.enable = true;
    tenants.classes = {
        {.id = TenantId{1}, .name = "premium", .degradable = false},
        {.id = TenantId{2}, .name = "best-effort"}};
    const auto engine = EngineBuilder(tiered)
                            .searchThreads(2)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 1e-3})
                            .admissionQueueBound(4096)
                            .tenantIsolation(tenants)
                            .degradation(degrade)
                            .build();

    std::vector<SearchRequest> requests(96);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        requests[i].query = query(i % nq_);
        requests[i].tenant = TenantId{i % 2 == 0 ? 1u : 2u};
        requests[i].nprobe = 16;
    }
    auto futures = engine->submitMany(requests);
    engine->drain();

    std::size_t best_effort_degraded = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const auto r = futures[i].get();
        ASSERT_EQ(r.disposition, Disposition::kServed);
        if (i % 2 == 0) {
            EXPECT_EQ(r.nprobe, 16u) << "premium request " << i;
            EXPECT_FALSE(r.degraded) << "premium request " << i;
        } else if (r.degraded) {
            ++best_effort_degraded;
        }
    }
    EXPECT_GT(best_effort_degraded, 0u);

    const auto s = engine->stats();
    EXPECT_EQ(s.degradedServed, best_effort_degraded);
    for (const auto &ts : s.tenants) {
        if (ts.tenant == TenantId{1})
            EXPECT_EQ(ts.degradedServed, 0u);
        if (ts.tenant == TenantId{2})
            EXPECT_EQ(ts.degradedServed, best_effort_degraded);
    }
}

// --- Builder validation of the control policies -----------------------

TEST_F(AutopilotFixture, BuilderValidatesControlPolicies)
{
    const auto profile = makeProfile();
    TieredIndex tiered(*index_, profile, 0.25);

    // Autopilot needs tiered serving...
    AutopilotPolicy pilot;
    pilot.enable = true;
    EXPECT_THROW(EngineBuilder(*index_).autopilot(pilot).build(),
                 std::invalid_argument);
    // ...and over a caller-owned tier, an updater as actuation path.
    EXPECT_THROW(EngineBuilder(tiered).autopilot(pilot).build(),
                 std::invalid_argument);

    // Degradation knobs.
    DegradationPolicy degrade;
    degrade.enable = true;
    degrade.nprobeFloor = 0;
    EXPECT_THROW(EngineBuilder(*index_).degradation(degrade).build(),
                 std::invalid_argument);
    degrade.nprobeFloor = 4;
    degrade.queuePressure = 0.5;
    EXPECT_THROW(EngineBuilder(*index_).degradation(degrade).build(),
                 std::invalid_argument);

    // Autopilot knobs (policy validation fires before composition).
    const auto bad = [&](auto &&mutate) {
        AutopilotPolicy p;
        p.enable = true;
        mutate(p);
        EXPECT_THROW(EngineBuilder(*index_)
                         .tieredFromProfile(profile, 0.25)
                         .autopilot(p)
                         .build(),
                     std::invalid_argument);
    };
    bad([](AutopilotPolicy &p) { p.controlIntervalSeconds = -1.0; });
    bad([](AutopilotPolicy &p) { p.queryReservoir = 8; });
    bad([](AutopilotPolicy &p) { p.countDecay = 1.5; });
    bad([](AutopilotPolicy &p) {
        p.minRho = 0.8;
        p.maxRho = 0.2;
    });
    bad([](AutopilotPolicy &p) { p.maxBatchCap = 0; });
    bad([](AutopilotPolicy &p) { p.maxShards = 0; });

    // A disabled policy is not validated (all-zero knobs are fine).
    AutopilotPolicy off;
    off.enable = false;
    off.queryReservoir = 0;
    EXPECT_NO_THROW(EngineBuilder(*index_).autopilot(off).build());
}

TEST_F(AutopilotFixture, BuilderComposesEngineOwnedControlPlane)
{
    // tieredFromProfile + autopilot: the engine owns tier, updater and
    // autopilot, and tears them down in order. Manual cycles work and
    // the engine serves normally throughout.
    const auto profile = makeProfile();
    AutopilotPolicy pilot;
    pilot.enable = true;
    pilot.controlIntervalSeconds = 0.0;
    pilot.minBatchObservations = 2;
    pilot.queryReservoir = 32;
    pilot.minRho = 0.25;
    const auto engine = EngineBuilder(*index_)
                            .tieredFromProfile(profile, 0.25)
                            .searchThreads(2)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 1e-3})
                            .autopilot(pilot)
                            .build();
    ASSERT_NE(engine->tiered(), nullptr);
    ASSERT_NE(engine->autopilot(), nullptr);

    std::vector<SearchRequest> requests(nq_);
    for (std::size_t i = 0; i < nq_; ++i)
        requests[i].query = query(i);
    auto futures = engine->submitMany(requests);
    engine->drain();
    for (auto &f : futures)
        EXPECT_EQ(f.get().disposition, Disposition::kServed);

    engine->autopilot()->runControlCycle();
    EXPECT_EQ(engine->stats().autopilotCycles, 1u);
}

} // namespace
} // namespace vlr::core

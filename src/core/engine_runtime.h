/**
 * @file
 * Executable concurrent retrieval engine — the online counterpart of
 * the event-driven serving simulator.
 *
 * Typed SearchRequests enter a bounded admission queue via submit(),
 * submitMany() or the callback-based submitAsync(); a dispatcher
 * thread forms dynamic batches under the shared BatchPolicy (dispatch
 * when the batch cap fills or the oldest admitted query times out,
 * paper Section IV-B2) and executes each batch as a *real* IVF-PQ
 * fast-scan search fanned out across a ThreadPool with per-query
 * top-k results.
 *
 * The dispatcher is deadline- and priority-aware: a request whose
 * deadline elapses while queued resolves Disposition::kExpiredInQueue
 * without ever entering a search batch, submissions that overflow the
 * bounded queue resolve Disposition::kRejected at admission — with
 * the TenantPolicy enabled a tenant also rejects once it holds its
 * share of the queue, so one tenant's burst cannot starve another
 * (per-tenant dispositions, scanned work and latency digests land in
 * EngineStatsSnapshot::tenants, keyed by SearchRequest::tenant) — and
 * each batch groups compatible requests — identical k, with
 * per-request nprobe passed straight through to the batch search —
 * ordered earliest-deadline-first within a priority class
 * (deadline-free requests follow in admission order). With
 * TenantPolicy::fairService the cross-tenant order is weighted fair
 * queueing instead: batch slots are granted by per-tenant virtual
 * finish times (cost = effective nprobe / weight), bounding each
 * backlogged tenant's long-run share of scanned work by its weight,
 * while EDF still orders requests within a tenant's grant. Under
 * overload the dispatcher
 * can degrade gracefully: when the backlog exceeds the configured
 * pressure it serves batches at a proportionally reduced nprobe
 * (never below the DegradationPolicy floor) instead of letting queued
 * requests expire. Per-request queue/search/total latencies are
 * recorded as per-disposition LatencySummary digests — the same type
 * the simulator reports — so measured percentiles can be compared
 * directly against the analytic perf-model predictions.
 *
 * The engine serves either a flat single-tier index or a TieredIndex
 * (hot/cold partition-aware path). In tiered mode each batch's routed
 * hit rates are recorded and, when an OnlineUpdater is attached, fed
 * to the drift monitor together with whether the batch met the search
 * SLO — closing the paper's online-update loop on the live path.
 *
 * Engines are constructed through EngineBuilder (engine_builder.h),
 * which validates the EngineConfig and composes flat, caller-owned
 * tiered and engine-owned profile-built tiered serving in one fluent
 * chain.
 */

#ifndef VLR_CORE_ENGINE_RUNTIME_H
#define VLR_CORE_ENGINE_RUNTIME_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/threadpool.h"
#include "core/batch_policy.h"
#include "core/serving_api.h"
#include "core/tiered_index.h"
#include "vecsearch/ivf_pq_fastscan.h"

namespace vlr::core
{

/**
 * Aggregate engine statistics since construction. Every submitted
 * request is accounted under exactly one disposition once resolved:
 * submitted == served + expired + rejected + still-pending. Latency
 * digests are computed over a bounded uniform reservoir (capacity
 * 65536 per distribution), so a long-running engine's memory stays
 * constant; percentiles become approximate once more requests than
 * that have been resolved. Counters are exact.
 */
struct EngineStatsSnapshot
{
    /** Requests admitted (including ones later expired/rejected). */
    std::size_t submitted = 0;
    /** Requests that rode a search batch (Disposition::kServed). */
    std::size_t served = 0;
    /** Requests whose deadline elapsed while queued. */
    std::size_t expired = 0;
    /** Requests bounced by the bounded admission queue. */
    std::size_t rejected = 0;
    /** Resolved requests: served + expired + rejected. */
    std::size_t completed = 0;
    std::size_t batches = 0;
    double meanBatchSize = 0.0;
    /** Served requests: admission to batch start. */
    LatencySummary queueLatency;
    /** Served requests: batch start to batch completion. */
    LatencySummary searchLatency;
    /** Served requests: admission to completion. */
    LatencySummary totalLatency;
    /** Expired requests: admission to expiry resolution. */
    LatencySummary expiredLatency;
    /** Served requests searched at a degraded (reduced) nprobe. */
    std::size_t degradedServed = 0;
    /** Batches dispatched with at least one degraded request. */
    std::size_t degradedBatches = 0;
    /** Dispatcher batch cap in effect (the autopilot may move it). */
    std::size_t currentBatchCap = 0;
    /** Autopilot control cycles completed. */
    std::size_t autopilotCycles = 0;
    /** Autopilot decisions that launched a repartition. */
    std::size_t autopilotRepartitions = 0;
    /** Recent autopilot decisions, oldest first (bounded history). */
    std::vector<AutopilotDecision> autopilotTrace;
    /** Scanned work served: sum of effective nprobe over served
     *  requests (the quantity weighted fair batching partitions). */
    std::size_t servedWork = 0;
    /**
     * Per-tenant slices keyed by SearchRequest::tenant, ascending;
     * populated only while TenantPolicy is enabled. Within every
     * snapshot the per-tenant counts sum exactly to the global
     * submitted/served/expired/rejected/degradedServed/servedWork
     * totals.
     */
    std::vector<TenantStatsSnapshot> tenants;
};

class OnlineUpdater;
class EngineBuilder;
class SloAutopilot;

/**
 * Online serving front-end over an IvfPqFastScanIndex or a
 * TieredIndex. Construct through EngineBuilder; the index must
 * outlive the engine. submit()/submitMany()/submitAsync() are
 * thread-safe and may be called from any number of client threads.
 * Destruction drains pending requests.
 */
class RetrievalEngine
{
  public:
    ~RetrievalEngine();

    RetrievalEngine(const RetrievalEngine &) = delete;
    RetrievalEngine &operator=(const RetrievalEngine &) = delete;

    /**
     * Attach a drift-monitoring updater fed after every tiered batch.
     * Call before submitting queries; the updater must outlive the
     * engine. No-op wiring for flat-index engines.
     */
    void attachUpdater(OnlineUpdater *updater) { updater_ = updater; }

    /**
     * Attach the closed-loop SLO autopilot, fed after every tiered
     * batch. While attached the engine stops feeding the drift
     * monitor directly — the autopilot becomes the sole repartition
     * driver, so drift-triggered and autopilot-driven rebuilds cannot
     * fight. Call before submitting queries; the autopilot must
     * outlive the engine unless it is engine-owned (EngineBuilder
     * autopilot path).
     */
    void attachAutopilot(SloAutopilot *autopilot)
    {
        autopilot_ = autopilot;
    }

    /** Tiered index served by this engine, or nullptr in flat mode. */
    const TieredIndex *tiered() const { return tiered_; }

    /** Attached autopilot, or nullptr (manual-interval configurations
     *  step it via SloAutopilot::runControlCycle()). */
    SloAutopilot *autopilot() const { return autopilot_; }

    /**
     * Admit one typed request (the query span is copied). The future
     * resolves when the request is served, expires in the queue, or —
     * immediately — when the bounded queue rejects it; check
     * SearchResponse::disposition. @throws std::runtime_error after
     * shutdown(), std::invalid_argument on a query span shorter than
     * dim().
     */
    std::future<SearchResponse> submit(SearchRequest request);

    /**
     * Admit a span of requests in order. The returned futures match
     * the request order index-for-index regardless of how the
     * dispatcher groups or prioritizes them.
     */
    std::vector<std::future<SearchResponse>>
    submitMany(std::span<const SearchRequest> requests);

    /**
     * Callback-based admission: @p done runs exactly once with the
     * response. Served and expired requests invoke it on the
     * dispatcher thread (keep it cheap; re-submitting from inside the
     * callback is allowed while the engine is accepting), rejected
     * requests invoke it inline on the submitting thread before
     * submitAsync returns. A callback that throws — including a
     * re-submit racing shutdown() — is caught and logged; it never
     * takes the engine down.
     */
    void submitAsync(SearchRequest request,
                     std::function<void(SearchResponse)> done);

    /** Block until every admitted request has resolved. */
    void drain();

    /**
     * Drain, then stop the dispatcher. Idempotent; subsequent submits
     * throw.
     */
    void shutdown();

    bool accepting() const;
    std::size_t pendingQueries() const;
    /** Queued requests for @p tenant (0 unless the tenant policy is
     *  enabled). */
    std::size_t pendingForTenant(TenantId tenant) const;
    EngineStatsSnapshot stats() const;
    const EngineConfig &config() const { return config_; }

    /** Tenant registry resolved from config().tenants. */
    const TenantTable &tenantTable() const { return tenantTable_; }

    /**
     * Live admission share for @p tenant — the configured
     * TenantClass::share unless the adaptive share controller has
     * moved it.
     */
    double tenantShare(TenantId tenant) const;
    /**
     * Re-point @p tenant's live admission share (the autopilot's
     * adaptive-share actuation). Clamped to the tenant's
     * [minShare, maxShare]; takes effect at the next admission.
     */
    void setTenantShare(TenantId tenant, double share);

    /**
     * Dispatcher batch cap currently in effect. Starts at
     * batching.maxBatch; moved by setBatchCap() — the autopilot's
     * batch-cap actuation — without stalling in-flight batches.
     */
    std::size_t batchCap() const
    {
        return batchCap_.load(std::memory_order_relaxed);
    }
    /** Re-point the dispatcher batch cap (clamped to >= 1). */
    void setBatchCap(std::size_t cap);

  private:
    friend class EngineBuilder;
    friend class SloAutopilot;

    using Clock = std::chrono::steady_clock;

    /**
     * @param index flat-mode index (tiered->source() when tiered).
     * @param owned engine-owned TieredIndex (profile-built), or null.
     * @param tiered tiered-mode index (owned.get() or caller-owned),
     *        or null for the flat path.
     * @param config validated configuration.
     */
    RetrievalEngine(const vs::IvfPqFastScanIndex &index,
                    std::unique_ptr<TieredIndex> owned,
                    const TieredIndex *tiered, EngineConfig config);

    struct Pending
    {
        std::vector<float> query;
        std::size_t k = 0;
        std::size_t nprobe = 0;
        int priority = 0;
        TenantId tenant;
        std::uint64_t tag = 0;
        /** Admission order; tie-break within equal priority. */
        std::uint64_t seq = 0;
        Clock::time_point admitted;
        bool hasDeadline = false;
        Clock::time_point deadline;
        std::promise<SearchResponse> promise;
        /** Callback mode (submitAsync): set instead of the promise. */
        std::function<void(SearchResponse)> callback;
    };

    /** Fixed-size uniform reservoir of latency samples. */
    struct Reservoir
    {
        static constexpr std::size_t kCapacity = 65536;
        /** Per-tenant digests use a smaller reservoir. */
        static constexpr std::size_t kTenantCapacity = 8192;
        std::size_t cap = kCapacity;
        std::vector<double> samples;
        std::size_t seen = 0;

        void
        add(double x, Rng &rng)
        {
            ++seen;
            if (samples.size() < cap) {
                samples.push_back(x);
                return;
            }
            const std::uint64_t j = rng.uniformU64(seen);
            if (j < cap)
                samples[j] = x;
        }
    };

    /** Per-tenant accounting bucket (guarded by statsMutex_). */
    struct TenantCounters
    {
        std::size_t submitted = 0;
        std::size_t served = 0;
        std::size_t expired = 0;
        std::size_t rejected = 0;
        std::size_t degradedServed = 0;
        /** Sum of effective nprobe over served requests. */
        std::size_t servedWork = 0;
        Reservoir queueSamples{Reservoir::kTenantCapacity};
        Reservoir totalSamples{Reservoir::kTenantCapacity};
    };

    /** Build a Pending from a request (validates the span length). */
    Pending makePending(const SearchRequest &request) const;
    /**
     * Queued-slot bound for one tenant under the TenantPolicy: its
     * live share of batching.maxQueue, at least 1. Caller holds
     * statsMutex_ (live shares are guarded by it).
     */
    std::size_t tenantQueueBound(TenantId tenant) const;
    /** Live share for @p tenant; caller holds statsMutex_. */
    double liveShareLocked(TenantId tenant) const;
    /** Queue one Pending or resolve it kRejected; returns future. */
    void admit(Pending p);
    /** Fulfil promise or invoke callback. */
    static void resolve(Pending &p, SearchResponse &&r);

    /**
     * Remove every queued request whose deadline has elapsed at
     * @p now. Caller holds mutex_; resolution happens outside it.
     */
    std::vector<Pending> takeExpiredLocked(Clock::time_point now);
    /** Resolve a swept batch of expired requests (no lock held). */
    void resolveExpired(std::vector<Pending> expired);

    /**
     * Indices (into queue_) of the next batch, capped at the current
     * batch cap. Caller holds mutex_.
     *
     * Default order: requests sharing the lead's k, in EDF order —
     * priority desc, then deadlined requests by earliest deadline,
     * then deadline-free requests in admission order.
     *
     * With TenantPolicy::fairService the cross-tenant order is
     * weighted fair queueing: slots go to the tenant with the
     * smallest would-be virtual finish time (start = max(engine
     * virtual time, tenant's last finish); finish = start + effective
     * nprobe / effective weight; ties to the smaller tenant id), and
     * the EDF order above applies within each tenant's grant. The
     * selection is speculative — it simulates virtual time on local
     * copies; chargeGroupLocked() commits the charges when the batch
     * actually dispatches, so a group that is formed but then skipped
     * (cap not met, not forced) charges nothing.
     */
    std::vector<std::size_t> formGroupLocked() const;
    /**
     * Commit the WFQ virtual-time charges for a group that is about
     * to dispatch, replaying grants in group order (deterministically
     * identical to the simulation in formGroupLocked). No-op unless
     * fair service is on. Caller holds mutex_.
     */
    void chargeGroupLocked(const std::vector<std::size_t> &group);

    void dispatcherLoop();
    /** @param backlog requests still queued when the batch left. */
    void executeBatch(std::vector<Pending> batch, std::size_t backlog);

    /** Autopilot bookkeeping (called by the friend SloAutopilot). */
    void noteAutopilotCycle();
    void recordAutopilotDecision(AutopilotDecision decision);

    /**
     * Index restored from an on-disk artifact by
     * EngineBuilder::fromArtifact, or null when the caller owns the
     * index. Declared first so it outlives every member referencing
     * index_ (members are destroyed in reverse declaration order).
     */
    std::shared_ptr<const vs::IvfPqFastScanIndex> ownedIndex_;
    /** Flat-mode index (tiered_->source() when tiered). */
    const vs::IvfPqFastScanIndex &index_;
    /** Tiered index built by EngineBuilder::tieredFromProfile. */
    std::unique_ptr<TieredIndex> ownedTiered_;
    /** Tiered-mode index; nullptr when serving the flat path. */
    const TieredIndex *tiered_ = nullptr;
    OnlineUpdater *updater_ = nullptr;
    SloAutopilot *autopilot_ = nullptr;
    EngineConfig config_;
    /** Validated registry over config_.tenants (immutable). */
    TenantTable tenantTable_;
    ThreadPool pool_;
    /** Live dispatcher batch cap (autopilot actuation target). */
    std::atomic<std::size_t> batchCap_{1};
    /** Construction time; AutopilotDecision::atSeconds origin. */
    Clock::time_point started_;

    mutable std::mutex mutex_;
    std::condition_variable cvDispatch_;
    std::condition_variable cvIdle_;
    std::deque<Pending> queue_;
    /** Queued requests per tenant; maintained only when
     *  config_.tenants.enable (guarded by mutex_). */
    std::map<TenantId, std::size_t> queuedPerTenant_;
    /** Adaptive-share overrides (guarded by statsMutex_ so stats()
     *  and the autopilot's share actuation never take mutex_); absent
     *  tenants use their TenantClass::share. */
    std::map<TenantId, double> liveShare_;
    /**
     * Weighted-fair-queueing state (guarded by mutex_): the engine
     * virtual time — the start tag of the last granted slot — and
     * each tenant's last virtual finish time. A tenant whose finish
     * lags the virtual time (it went idle) restarts at the virtual
     * time, so idle periods are not banked as credit.
     */
    double virtualTime_ = 0.0;
    std::map<TenantId, double> virtualFinish_;
    std::uint64_t nextSeq_ = 0;
    bool accepting_ = true;
    bool stop_ = false;
    bool flushing_ = false;
    bool batchInFlight_ = false;

    mutable std::mutex statsMutex_;
    Rng statsRng_{0x5eed11fe};
    Reservoir queueSamples_;
    Reservoir searchSamples_;
    Reservoir totalSamples_;
    Reservoir expiredSamples_;
    RunningStats batchSizes_;
    std::size_t submitted_ = 0;
    std::size_t served_ = 0;
    std::size_t expired_ = 0;
    std::size_t rejected_ = 0;
    std::size_t batches_ = 0;
    std::size_t degradedServed_ = 0;
    std::size_t degradedBatches_ = 0;
    /** Sum of effective nprobe over served requests. */
    std::size_t servedWork_ = 0;
    std::size_t autopilotCycles_ = 0;
    std::size_t autopilotRepartitions_ = 0;
    static constexpr std::size_t kTraceCapacity = 256;
    std::deque<AutopilotDecision> decisionTrace_;
    /** Per-tenant accounting; populated only when
     *  config_.tenants.enable (guarded by statsMutex_). */
    std::map<TenantId, TenantCounters> tenantStats_;

    std::thread dispatcher_;

    /**
     * Engine-owned control plane for the EngineBuilder autopilot path
     * (declared last so it is destroyed first — before ownedTiered_,
     * which the updater's rebuild worker touches; the destructor also
     * stops the autopilot explicitly right after the dispatcher is
     * joined, since the dispatcher feeds it).
     */
    std::unique_ptr<OnlineUpdater> ownedUpdater_;
    std::unique_ptr<SloAutopilot> ownedAutopilot_;
};

} // namespace vlr::core

#endif // VLR_CORE_ENGINE_RUNTIME_H

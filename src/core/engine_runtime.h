/**
 * @file
 * Executable concurrent retrieval engine — the online counterpart of
 * the event-driven serving simulator.
 *
 * Queries enter an admission queue via submit(); a dispatcher thread
 * forms dynamic batches under the shared BatchPolicy (dispatch when the
 * batch cap fills or the oldest admitted query times out, paper Section
 * IV-B2) and executes each batch as a *real* IVF-PQ fast-scan search
 * fanned out across a ThreadPool with per-query top-k results. Per-query
 * queue/search/total latencies are recorded as LatencySummary digests —
 * the same type the simulator reports — so measured percentiles can be
 * compared directly against the analytic perf-model predictions.
 */

#ifndef VLR_CORE_ENGINE_RUNTIME_H
#define VLR_CORE_ENGINE_RUNTIME_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/threadpool.h"
#include "core/batch_policy.h"
#include "vecsearch/ivf_pq_fastscan.h"

namespace vlr::core
{

struct EngineOptions
{
    /** Dispatcher policy shared with ServingConfig. */
    BatchPolicy batching{.maxBatch = 64, .timeoutSeconds = 2e-3};
    /** Results returned per query. */
    std::size_t k = 10;
    /** Probed IVF lists per query. */
    std::size_t nprobe = 16;
    /** Search worker threads (0/1 = batch executes inline). */
    std::size_t numSearchThreads = 4;
};

/** Outcome of one engine query. */
struct EngineQueryResult
{
    std::vector<vs::SearchHit> hits;
    /** Admission to batch start. */
    double queueSeconds = 0.0;
    /** Batch start to batch completion. */
    double searchSeconds = 0.0;
    /** Admission to completion. */
    double totalSeconds = 0.0;
    /** Size of the batch this query rode in. */
    std::size_t batchSize = 0;
};

/**
 * Aggregate engine statistics since construction. Latency digests are
 * computed over a bounded uniform reservoir (capacity 65536 per
 * distribution), so a long-running engine's memory stays constant;
 * percentiles become approximate once more queries than that have been
 * served. Counters are exact.
 */
struct EngineStatsSnapshot
{
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t batches = 0;
    double meanBatchSize = 0.0;
    LatencySummary queueLatency;
    LatencySummary searchLatency;
    LatencySummary totalLatency;
};

/**
 * Online serving front-end over an IvfPqFastScanIndex. submit() is
 * thread-safe and may be called from any number of client threads; the
 * index must outlive the engine. Destruction drains pending queries.
 */
class RetrievalEngine
{
  public:
    RetrievalEngine(const vs::IvfPqFastScanIndex &index,
                    EngineOptions options);
    ~RetrievalEngine();

    RetrievalEngine(const RetrievalEngine &) = delete;
    RetrievalEngine &operator=(const RetrievalEngine &) = delete;

    /**
     * Admit one query (copied; dim() floats). The future resolves when
     * the query's batch completes. @throws std::runtime_error after
     * shutdown().
     */
    std::future<EngineQueryResult> submit(std::span<const float> query);

    /** Block until every admitted query has completed. */
    void drain();

    /**
     * Drain, then stop the dispatcher. Idempotent; subsequent submits
     * throw.
     */
    void shutdown();

    bool accepting() const;
    std::size_t pendingQueries() const;
    EngineStatsSnapshot stats() const;
    const EngineOptions &options() const { return options_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending
    {
        std::vector<float> query;
        std::promise<EngineQueryResult> promise;
        Clock::time_point admitted;
    };

    /** Fixed-size uniform reservoir of latency samples. */
    struct Reservoir
    {
        static constexpr std::size_t kCapacity = 65536;
        std::vector<double> samples;
        std::size_t seen = 0;

        void
        add(double x, Rng &rng)
        {
            ++seen;
            if (samples.size() < kCapacity) {
                samples.push_back(x);
                return;
            }
            const std::uint64_t j = rng.uniformU64(seen);
            if (j < kCapacity)
                samples[j] = x;
        }
    };

    void dispatcherLoop();
    void executeBatch(std::vector<Pending> batch);

    const vs::IvfPqFastScanIndex &index_;
    EngineOptions options_;
    ThreadPool pool_;

    mutable std::mutex mutex_;
    std::condition_variable cvDispatch_;
    std::condition_variable cvIdle_;
    std::deque<Pending> queue_;
    bool accepting_ = true;
    bool stop_ = false;
    bool flushing_ = false;
    bool batchInFlight_ = false;

    mutable std::mutex statsMutex_;
    Rng statsRng_{0x5eed11fe};
    Reservoir queueSamples_;
    Reservoir searchSamples_;
    Reservoir totalSamples_;
    RunningStats batchSizes_;
    std::size_t submitted_ = 0;
    std::size_t completed_ = 0;
    std::size_t batches_ = 0;

    std::thread dispatcher_;
};

} // namespace vlr::core

#endif // VLR_CORE_ENGINE_RUNTIME_H

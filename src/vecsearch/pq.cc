#include "vecsearch/pq.h"

#include <algorithm>

#include <cassert>
#include <limits>

#include "common/log.h"
#include "vecsearch/metric.h"

namespace vlr::vs
{

ProductQuantizer::ProductQuantizer(std::size_t dim, std::size_t m,
                                   std::size_t nbits)
    : dim_(dim), m_(m), nbits_(nbits), ksub_(std::size_t{1} << nbits),
      dsub_(dim / m)
{
    if (m == 0 || dim % m != 0)
        fatal("ProductQuantizer: dim must be divisible by m");
    if (nbits != 4 && nbits != 8)
        fatal("ProductQuantizer: nbits must be 4 or 8");
    codebooks_.resize(m_ * ksub_ * dsub_, 0.f);
}

ProductQuantizer
ProductQuantizer::fromCodebooks(std::size_t dim, std::size_t m,
                                std::size_t nbits,
                                std::vector<float> codebooks)
{
    ProductQuantizer pq(dim, m, nbits);
    if (codebooks.size() != pq.m_ * pq.ksub_ * pq.dsub_)
        fatal("ProductQuantizer::fromCodebooks: size mismatch");
    pq.codebooks_ = std::move(codebooks);
    pq.trained_ = true;
    return pq;
}

void
ProductQuantizer::train(std::span<const float> data, std::size_t n,
                        const KMeansParams &base_params)
{
    assert(data.size() >= n * dim_);
    if (n < ksub_)
        fatal("ProductQuantizer::train: need at least ksub vectors");

    std::vector<float> sub(n * dsub_);
    for (std::size_t s = 0; s < m_; ++s) {
        for (std::size_t i = 0; i < n; ++i) {
            const float *src = data.data() + i * dim_ + s * dsub_;
            std::copy_n(src, dsub_, sub.begin() + i * dsub_);
        }
        KMeansParams params = base_params;
        params.k = ksub_;
        params.seed = base_params.seed + s * 7919;
        auto res = kmeansTrain(sub, n, dsub_, params);
        std::copy(res.centroids.begin(), res.centroids.end(),
                  codebooks_.begin() + s * ksub_ * dsub_);
    }
    trained_ = true;
}

void
ProductQuantizer::encode(const float *vec, std::uint8_t *code) const
{
    assert(trained_);
    for (std::size_t s = 0; s < m_; ++s) {
        const float *x = vec + s * dsub_;
        const float *cb = codebooks_.data() + s * ksub_ * dsub_;
        float best = std::numeric_limits<float>::max();
        std::size_t best_j = 0;
        for (std::size_t j = 0; j < ksub_; ++j) {
            const float dist = l2Sqr(x, cb + j * dsub_, dsub_);
            if (dist < best) {
                best = dist;
                best_j = j;
            }
        }
        code[s] = static_cast<std::uint8_t>(best_j);
    }
}

std::vector<std::uint8_t>
ProductQuantizer::encodeBatch(std::span<const float> data,
                              std::size_t n) const
{
    assert(data.size() >= n * dim_);
    std::vector<std::uint8_t> codes(n * m_);
    for (std::size_t i = 0; i < n; ++i)
        encode(data.data() + i * dim_, codes.data() + i * m_);
    return codes;
}

void
ProductQuantizer::decode(const std::uint8_t *code, float *vec) const
{
    assert(trained_);
    for (std::size_t s = 0; s < m_; ++s) {
        const float *cw =
            codebooks_.data() + (s * ksub_ + code[s]) * dsub_;
        std::copy_n(cw, dsub_, vec + s * dsub_);
    }
}

void
ProductQuantizer::computeLut(const float *query, float *lut) const
{
    assert(trained_);
    for (std::size_t s = 0; s < m_; ++s) {
        const float *x = query + s * dsub_;
        const float *cb = codebooks_.data() + s * ksub_ * dsub_;
        float *row = lut + s * ksub_;
        for (std::size_t j = 0; j < ksub_; ++j)
            row[j] = l2Sqr(x, cb + j * dsub_, dsub_);
    }
}

float
ProductQuantizer::adcDistance(const float *lut,
                              const std::uint8_t *code) const
{
    float acc = 0.f;
    for (std::size_t s = 0; s < m_; ++s)
        acc += lut[s * ksub_ + code[s]];
    return acc;
}

double
ProductQuantizer::reconstructionError(std::span<const float> data,
                                      std::size_t n) const
{
    assert(data.size() >= n * dim_);
    std::vector<std::uint8_t> code(m_);
    std::vector<float> rec(dim_);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const float *x = data.data() + i * dim_;
        encode(x, code.data());
        decode(code.data(), rec.data());
        acc += l2Sqr(x, rec.data(), dim_);
    }
    return n ? acc / static_cast<double>(n) : 0.0;
}

std::span<const float>
ProductQuantizer::codebook(std::size_t sub) const
{
    assert(sub < m_);
    return {codebooks_.data() + sub * ksub_ * dsub_, ksub_ * dsub_};
}

} // namespace vlr::vs

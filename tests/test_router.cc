/**
 * @file
 * Tests for the query router: probe pruning vs IndexIVFShards-style
 * full-nprobe launches (Section IV-B1).
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/router.h"
#include "core/splitter.h"

namespace vlr::core
{
namespace
{

struct RouterFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        // 6 clusters, equal accesses except ordering; work 100*(c+1).
        profile_ = std::make_unique<AccessProfile>(
            std::vector<double>{60, 50, 40, 30, 20, 10},
            std::vector<double>{100, 200, 300, 400, 500, 600},
            std::vector<double>{1, 1, 1, 1, 1, 1});
        // rho = 0.5: hot clusters {0, 1, 2} across 2 shards.
        assignment_ = IndexSplitter::split(*profile_, 0.5, 2);

        // Two query plans touching hot and cold clusters.
        planA_.probes = {0, 3};
        planA_.probeWork = {100, 400};
        planA_.totalWork = 500;
        planB_.probes = {1, 2};
        planB_.probeWork = {200, 300};
        planB_.totalWork = 500;
        batch_ = {&planA_, &planB_};
    }

    std::unique_ptr<AccessProfile> profile_;
    ShardAssignment assignment_;
    wl::QueryPlan planA_, planB_;
    std::vector<const wl::QueryPlan *> batch_;
};

TEST_F(RouterFixture, HitRatesAreWorkWeighted)
{
    Router router(assignment_, true);
    const auto routed = router.route(batch_);
    ASSERT_EQ(routed.size(), 2u);
    // Plan A: hot work 100 of 500.
    EXPECT_NEAR(routed.queries[0].hitRate, 0.2, 1e-9);
    EXPECT_NEAR(routed.queries[0].cpuWorkFraction, 0.8, 1e-9);
    // Plan B: both probes hot.
    EXPECT_NEAR(routed.queries[1].hitRate, 1.0, 1e-9);
    EXPECT_NEAR(routed.queries[1].cpuWorkFraction, 0.0, 1e-9);
}

TEST_F(RouterFixture, MinAndMeanHitRates)
{
    Router router(assignment_, true);
    const auto routed = router.route(batch_);
    EXPECT_NEAR(routed.minHitRate, 0.2, 1e-9);
    EXPECT_NEAR(routed.meanHitRate, 0.6, 1e-9);
}

TEST_F(RouterFixture, PrunedRoutingLaunchesOnlyResidentPairs)
{
    Router router(assignment_, true);
    const auto routed = router.route(batch_);
    std::size_t pairs = 0;
    for (const auto &s : routed.shards)
        pairs += s.pairs;
    // Resident probes: A->{0}, B->{1,2} = 3 pairs total.
    EXPECT_EQ(pairs, 3u);
}

TEST_F(RouterFixture, UnprunedRoutingLaunchesFullNprobeEverywhere)
{
    Router router(assignment_, false);
    const auto routed = router.route(batch_);
    std::size_t pairs = 0;
    for (const auto &s : routed.shards)
        pairs += s.pairs;
    // IndexIVFShards: every shard gets nprobe pairs per query:
    // 2 shards x 2 queries x 2 probes = 8.
    EXPECT_EQ(pairs, 8u);
}

TEST_F(RouterFixture, UnprunedScansSameWorkAsPruned)
{
    Router pruned(assignment_, true);
    Router unpruned(assignment_, false);
    const auto a = pruned.route(batch_);
    const auto b = unpruned.route(batch_);
    double wa = 0.0, wb = 0.0;
    for (const auto &s : a.shards)
        wa += s.workVectors;
    for (const auto &s : b.shards)
        wb += s.workVectors;
    // The waste is in launches, not in bytes actually scanned.
    EXPECT_NEAR(wa, wb, 1e-9);
}

TEST_F(RouterFixture, ShardsUsedListsResidentShardsOnly)
{
    Router router(assignment_, true);
    const auto routed = router.route(batch_);
    for (const auto &q : routed.queries)
        for (const auto s : q.shardsUsed) {
            ASSERT_GE(s, 0);
            ASSERT_LT(static_cast<std::size_t>(s),
                      assignment_.numShards());
        }
    // Plan A has exactly one resident probe -> one shard used.
    EXPECT_EQ(routed.queries[0].shardsUsed.size(), 1u);
}

TEST_F(RouterFixture, ProbeCountsSplitCpuGpu)
{
    Router router(assignment_, true);
    const auto routed = router.route(batch_);
    EXPECT_EQ(routed.queries[0].cpuProbes, 1u);
    EXPECT_EQ(routed.queries[0].gpuProbes, 1u);
    EXPECT_EQ(routed.queries[1].cpuProbes, 0u);
    EXPECT_EQ(routed.queries[1].gpuProbes, 2u);
}

TEST_F(RouterFixture, EmptyAssignmentRoutesEverythingToCpu)
{
    const auto cpu_only = IndexSplitter::split(*profile_, 0.0, 1);
    Router router(cpu_only, true);
    const auto routed = router.route(batch_);
    EXPECT_NEAR(routed.minHitRate, 0.0, 1e-12);
    for (const auto &q : routed.queries) {
        EXPECT_NEAR(q.hitRate, 0.0, 1e-12);
        EXPECT_TRUE(q.shardsUsed.empty());
    }
}

TEST_F(RouterFixture, ShardQueryCountsTrackResidency)
{
    Router router(assignment_, true);
    const auto routed = router.route(batch_);
    std::size_t queries_total = 0;
    for (const auto &s : routed.shards)
        queries_total += s.queries;
    // A uses one shard; B touches clusters 1 and 2 which may share a
    // shard or not; in either case the count is 2 or 3.
    EXPECT_GE(queries_total, 2u);
    EXPECT_LE(queries_total, 3u);
}

TEST_F(RouterFixture, EmptyBatchYieldsEmptyRouting)
{
    Router router(assignment_, true);
    const auto routed =
        router.route(std::vector<const wl::QueryPlan *>{});
    EXPECT_EQ(routed.size(), 0u);
}

} // namespace
} // namespace vlr::core

/**
 * @file
 * Integration tests for the end-to-end RAG serving simulation: SLO
 * attainment shapes, TTFT composition and baseline orderings that the
 * paper's Figs. 11-12 rely on.
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/serving.h"

namespace vlr::core
{
namespace
{

struct ServingFixture : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        ctx_ = new DatasetContext(wl::tinySpec());
    }

    static void
    TearDownTestSuite()
    {
        delete ctx_;
        ctx_ = nullptr;
    }

    ServingConfig
    config(RetrieverKind kind, double rate) const
    {
        ServingConfig cfg;
        cfg.llmConfig = llm::llama3_8b();
        cfg.gpuSpec = gpu::l40sSpec();
        cfg.cpuSpec = gpu::xeon6426Spec();
        cfg.numGpus = 4;
        cfg.retriever = kind;
        cfg.arrivalRate = rate;
        cfg.durationSeconds = 30.0;
        cfg.warmupSeconds = 5.0;
        cfg.drainSeconds = 20.0;
        cfg.outputTokens = 64; // keep the test fast
        if (peak_ < 0.0)
            peak_ = measurePeak(cfg);
        cfg.peakThroughputHint = peak_;
        return cfg;
    }

    static DatasetContext *ctx_;
    static double peak_;
};

DatasetContext *ServingFixture::ctx_ = nullptr;
double ServingFixture::peak_ = -1.0;

TEST_F(ServingFixture, LightLoadMeetsSlo)
{
    const auto res =
        runServing(config(RetrieverKind::VectorLite, 4.0), *ctx_);
    EXPECT_GT(res.attainment, 0.95);
    EXPECT_GT(res.submitted, 50u);
    EXPECT_GT(res.completedFirstToken, 0u);
}

TEST_F(ServingFixture, OverloadDegradesAttainment)
{
    const auto light =
        runServing(config(RetrieverKind::VectorLite, 4.0), *ctx_);
    const auto heavy =
        runServing(config(RetrieverKind::VectorLite, peak_ * 2.0),
                   *ctx_);
    EXPECT_LT(heavy.attainment, light.attainment);
    EXPECT_GT(heavy.p90Ttft, light.p90Ttft);
}

TEST_F(ServingFixture, TtftDecomposition)
{
    const auto res =
        runServing(config(RetrieverKind::CpuOnly, 6.0), *ctx_);
    // Mean TTFT >= queueing + search + prefill means (approximately
    // equal when every request completes).
    const double parts =
        res.meanQueueDelay + res.meanSearch + res.meanPrefill;
    EXPECT_NEAR(res.meanTtft, parts, 0.25 * res.meanTtft);
    EXPECT_GT(res.meanSearch, 0.0);
    EXPECT_GT(res.meanPrefill, 0.0);
}

TEST_F(ServingFixture, VectorLiteBeatsCpuOnlySearchLatency)
{
    const double rate = 8.0;
    const auto cpu =
        runServing(config(RetrieverKind::CpuOnly, rate), *ctx_);
    const auto vlite =
        runServing(config(RetrieverKind::VectorLite, rate), *ctx_);
    EXPECT_LT(vlite.meanSearch, cpu.meanSearch);
    EXPECT_GE(vlite.attainment, cpu.attainment - 0.02);
}

TEST_F(ServingFixture, DedGpuLosesAnLlmInstance)
{
    const auto ded =
        runServing(config(RetrieverKind::DedicatedGpu, 4.0), *ctx_);
    const auto cpu =
        runServing(config(RetrieverKind::CpuOnly, 4.0), *ctx_);
    EXPECT_LT(ded.llmInstances, cpu.llmInstances);
}

TEST_F(ServingFixture, AllGpuDisplacesKvEverywhere)
{
    const auto all =
        runServing(config(RetrieverKind::AllGpu, 4.0), *ctx_);
    EXPECT_NEAR(all.rho, 1.0, 1e-9);
    EXPECT_GT(all.gpuIndexBytes, 0.0);
    const auto vlite =
        runServing(config(RetrieverKind::VectorLite, 4.0), *ctx_);
    EXPECT_LT(vlite.gpuIndexBytes, all.gpuIndexBytes);
}

TEST_F(ServingFixture, ResultsAreSeedDeterministic)
{
    const auto a =
        runServing(config(RetrieverKind::VectorLite, 6.0), *ctx_);
    const auto b =
        runServing(config(RetrieverKind::VectorLite, 6.0), *ctx_);
    EXPECT_DOUBLE_EQ(a.meanTtft, b.meanTtft);
    EXPECT_DOUBLE_EQ(a.p90Ttft, b.p90Ttft);
    EXPECT_EQ(a.submitted, b.submitted);
}

TEST_F(ServingFixture, PercentilesAreOrdered)
{
    const auto res =
        runServing(config(RetrieverKind::CpuOnly, 8.0), *ctx_);
    EXPECT_LE(res.p50Ttft, res.p90Ttft + 1e-12);
    EXPECT_LE(res.p90Ttft, res.p95Ttft + 1e-12);
    EXPECT_LE(res.p95Ttft, res.p99Ttft + 1e-12);
    EXPECT_LE(res.meanTtft, res.meanE2e);
    EXPECT_LE(res.p90Ttft, res.p90E2e);
}

TEST_F(ServingFixture, DispatcherAblationReducesTailSearch)
{
    auto on = config(RetrieverKind::VectorLite, 10.0);
    auto off = on;
    off.dispatcherOverride = 0;
    const auto with = runServing(on, *ctx_);
    const auto without = runServing(off, *ctx_);
    // Fig. 14: dispatcher improves (or at least never hurts) search
    // latency.
    EXPECT_LE(with.meanSearch, without.meanSearch * 1.05);
}

TEST_F(ServingFixture, FixedRhoOverrideHonored)
{
    auto cfg = config(RetrieverKind::VectorLite, 4.0);
    cfg.fixedRho = 0.25;
    const auto res = runServing(cfg, *ctx_);
    EXPECT_NEAR(res.rho, 0.25, 1e-9);
}

TEST_F(ServingFixture, SloOverridesChangeTarget)
{
    auto cfg = config(RetrieverKind::CpuOnly, 4.0);
    cfg.sloSearchOverride = 0.5;
    cfg.sloLlmOverride = 1.0;
    const auto res = runServing(cfg, *ctx_);
    EXPECT_NEAR(res.sloTotalSeconds, 1.5, 1e-9);
}

TEST_F(ServingFixture, RetrievalBatchGrowsWithLoad)
{
    const auto lo =
        runServing(config(RetrieverKind::CpuOnly, 3.0), *ctx_);
    const auto hi =
        runServing(config(RetrieverKind::CpuOnly, 12.0), *ctx_);
    EXPECT_GT(hi.meanRetrievalBatch, lo.meanRetrievalBatch);
}

TEST(ServingSlo, TableIGenerationTargets)
{
    EXPECT_NEAR(sloLlmSecondsFor(llm::llama3_8b()), 0.217, 1e-9);
    EXPECT_NEAR(sloLlmSecondsFor(llm::qwen3_32b()), 0.191, 1e-9);
    EXPECT_NEAR(sloLlmSecondsFor(llm::llama3_70b()), 0.311, 1e-9);
}

} // namespace
} // namespace vlr::core

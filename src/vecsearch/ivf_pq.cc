#include "vecsearch/ivf_pq.h"

#include <cassert>

#include "common/timer.h"

namespace vlr::vs
{

IvfPqIndex::IvfPqIndex(std::shared_ptr<const CoarseQuantizer> cq,
                       std::size_t m, std::size_t nbits, bool by_residual)
    : cq_(std::move(cq)), pq_(cq_->dim(), m, nbits), byResidual_(by_residual)
{
    ids_.resize(cq_->nlist());
    codes_.resize(cq_->nlist());
}

void
IvfPqIndex::train(std::span<const float> data, std::size_t n,
                  const KMeansParams &params)
{
    if (!byResidual_) {
        pq_.train(data, n, params);
        return;
    }
    // Train on residuals relative to each vector's nearest centroid.
    const std::size_t d = dim();
    std::vector<float> residuals(n * d);
    for (std::size_t i = 0; i < n; ++i) {
        const float *x = data.data() + i * d;
        const auto pl = cq_->probe(x, 1);
        const float *c = cq_->centroid(pl.clusters[0]);
        for (std::size_t j = 0; j < d; ++j)
            residuals[i * d + j] = x[j] - c[j];
    }
    pq_.train(residuals, n, params);
}

void
IvfPqIndex::add(std::span<const float> vecs, std::size_t n)
{
    const std::size_t d = dim();
    assert(vecs.size() >= n * d);
    std::vector<std::int32_t> assign(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto pl = cq_->probe(vecs.data() + i * d, 1);
        assign[i] = pl.clusters[0];
    }
    addPreassigned(vecs, n, assign);
}

void
IvfPqIndex::addPreassigned(std::span<const float> vecs, std::size_t n,
                           std::span<const std::int32_t> assign)
{
    const std::size_t d = dim();
    const std::size_t cs = pq_.codeSize();
    assert(vecs.size() >= n * d);
    assert(assign.size() >= n);
    std::vector<float> residual(d);
    std::vector<std::uint8_t> code(cs);
    for (std::size_t i = 0; i < n; ++i) {
        const auto c = static_cast<std::size_t>(assign[i]);
        assert(c < ids_.size());
        const float *x = vecs.data() + i * d;
        if (byResidual_) {
            const float *cent = cq_->centroid(assign[i]);
            for (std::size_t j = 0; j < d; ++j)
                residual[j] = x[j] - cent[j];
            pq_.encode(residual.data(), code.data());
        } else {
            pq_.encode(x, code.data());
        }
        ids_[c].push_back(static_cast<idx_t>(total_ + i));
        codes_[c].insert(codes_[c].end(), code.begin(), code.end());
    }
    total_ += n;
}

void
IvfPqIndex::scanList(cluster_id_t c, const float *lut, TopK &topk) const
{
    const auto ci = static_cast<std::size_t>(c);
    const auto &list_ids = ids_[ci];
    const std::uint8_t *base = codes_[ci].data();
    const std::size_t cs = pq_.codeSize();
    for (std::size_t i = 0; i < list_ids.size(); ++i) {
        const float dist = pq_.adcDistance(lut, base + i * cs);
        topk.push(list_ids[i], dist);
    }
}

std::vector<SearchHit>
IvfPqIndex::search(const float *query, std::size_t k, std::size_t nprobe,
                   SearchBreakdown *bd) const
{
    WallTimer t;
    const auto pl = cq_->probe(query, nprobe);
    if (bd)
        bd->cqSeconds += t.elapsed();
    return searchClusters(query, k, pl.clusters, bd);
}

std::vector<SearchHit>
IvfPqIndex::searchClusters(const float *query, std::size_t k,
                           std::span<const cluster_id_t> clusters,
                           SearchBreakdown *bd) const
{
    const std::size_t d = dim();
    TopK topk(k);
    std::vector<float> lut(pq_.lutSize());
    std::vector<float> residual(d);

    if (!byResidual_) {
        WallTimer t;
        pq_.computeLut(query, lut.data());
        if (bd)
            bd->lutBuildSeconds += t.elapsed();
        t.reset();
        for (const cluster_id_t c : clusters)
            scanList(c, lut.data(), topk);
        if (bd)
            bd->scanSeconds += t.elapsed();
        return topk.sortedHits();
    }

    for (const cluster_id_t c : clusters) {
        WallTimer t;
        const float *cent = cq_->centroid(c);
        for (std::size_t j = 0; j < d; ++j)
            residual[j] = query[j] - cent[j];
        pq_.computeLut(residual.data(), lut.data());
        if (bd)
            bd->lutBuildSeconds += t.elapsed();
        t.reset();
        scanList(c, lut.data(), topk);
        if (bd)
            bd->scanSeconds += t.elapsed();
    }
    return topk.sortedHits();
}

std::vector<std::vector<SearchHit>>
IvfPqIndex::searchBatch(std::span<const float> queries, std::size_t nq,
                        std::size_t k, std::size_t nprobe,
                        SearchBreakdown *bd) const
{
    const std::size_t d = dim();
    assert(queries.size() >= nq * d);
    std::vector<std::vector<SearchHit>> out(nq);
    for (std::size_t i = 0; i < nq; ++i)
        out[i] = search(queries.data() + i * d, k, nprobe, bd);
    return out;
}

std::size_t
IvfPqIndex::listSize(cluster_id_t c) const
{
    assert(c >= 0 && static_cast<std::size_t>(c) < ids_.size());
    return ids_[static_cast<std::size_t>(c)].size();
}

std::vector<std::size_t>
IvfPqIndex::listSizes() const
{
    std::vector<std::size_t> out(ids_.size());
    for (std::size_t c = 0; c < ids_.size(); ++c)
        out[c] = ids_[c].size();
    return out;
}

const std::vector<idx_t> &
IvfPqIndex::listIds(cluster_id_t c) const
{
    assert(c >= 0 && static_cast<std::size_t>(c) < ids_.size());
    return ids_[static_cast<std::size_t>(c)];
}

const std::vector<std::uint8_t> &
IvfPqIndex::listCodes(cluster_id_t c) const
{
    assert(c >= 0 && static_cast<std::size_t>(c) < codes_.size());
    return codes_[static_cast<std::size_t>(c)];
}

std::size_t
IvfPqIndex::memoryBytes() const
{
    std::size_t bytes = 0;
    for (std::size_t c = 0; c < ids_.size(); ++c) {
        bytes += ids_[c].size() * sizeof(idx_t);
        bytes += codes_[c].size();
    }
    return bytes;
}

} // namespace vlr::vs

/**
 * @file
 * Profiled search-latency model (paper Section IV-A1).
 *
 * VectorLiteRAG profiles CPU search over a sweep of batch sizes and fits
 * independent piecewise-linear models for the coarse-quantization and
 * LUT stages. The hybrid-index latency is Eq. 1:
 *
 *   tau_s(b) = T_CQ(b) + (1 - eta_min) * T_LUT(b)
 *
 * In this reproduction "measurement" means sampling the calibrated
 * CpuSearchModel with small multiplicative noise (the real system reads
 * wall clocks, which are similarly noisy), so the fitted model and the
 * ground truth diverge slightly — visible in Fig. 10's validation.
 */

#ifndef VLR_CORE_PERF_MODEL_H
#define VLR_CORE_PERF_MODEL_H

#include <span>
#include <vector>

#include "common/piecewise_linear.h"
#include "simgpu/search_cost.h"

namespace vlr::core
{

class SearchPerfModel
{
  public:
    /**
     * Profile the CPU tier over the given batch sizes.
     * @param noise_std relative measurement noise (0 disables).
     */
    static SearchPerfModel profile(const gpu::CpuSearchModel &truth,
                                   std::span<const std::size_t> batch_sizes,
                                   double noise_std = 0.02,
                                   std::uint64_t seed = 99,
                                   std::size_t repeats = 3);

    /**
     * Build directly from measured (batch size, seconds) samples of the
     * CQ and LUT stages — the path used when profiling the *real*
     * retrieval engine (bench/bench_engine) instead of the calibrated
     * cost model.
     */
    static SearchPerfModel fromKnots(std::span<const PlKnot> cq_samples,
                                     std::span<const PlKnot> lut_samples);

    /** Modeled coarse-quantization latency at batch size b. */
    double tCq(double b) const;
    /** Modeled full-miss LUT latency at batch size b. */
    double tLut(double b) const;
    /** Modeled full CPU search latency. */
    double tSearch(double b) const { return tCq(b) + tLut(b); }

    /** Hybrid latency under a minimum batch hit rate (Eq. 1). */
    double hybridLatency(double b, double eta_min) const;

    /**
     * Minimum batch hit rate required to satisfy a latency target at
     * batch size b (Algorithm 1, line 18). May fall outside [0, 1]:
     * > 1 means infeasible even fully cached; < 0 means free.
     */
    double requiredEtaMin(double b, double tau) const;

    const PiecewiseLinearModel &cqModel() const { return cq_; }
    const PiecewiseLinearModel &lutModel() const { return lut_; }

  private:
    PiecewiseLinearModel cq_;
    PiecewiseLinearModel lut_;
};

} // namespace vlr::core

#endif // VLR_CORE_PERF_MODEL_H

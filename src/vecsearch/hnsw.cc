#include "vecsearch/hnsw.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "common/log.h"

namespace vlr::vs
{

Hnsw::Hnsw(std::size_t dim, HnswParams params, Metric metric)
    : dim_(dim), params_(params), metric_(metric),
      levelMult_(1.0 / std::log(static_cast<double>(params.M))),
      rng_(params.seed)
{
    assert(dim > 0 && params.M >= 2);
}

float
Hnsw::dist(const float *a, const float *b) const
{
    return comparableDistance(metric_, a, b, dim_);
}

const float *
Hnsw::vec(std::uint32_t id) const
{
    return data_.data() + static_cast<std::size_t>(id) * dim_;
}

int
Hnsw::sampleLevel()
{
    const double u = std::max(rng_.uniform(), 1e-12);
    return static_cast<int>(-std::log(u) * levelMult_);
}

std::vector<SearchHit>
Hnsw::searchLayer(const float *query, std::uint32_t entry, std::size_t ef,
                  int level) const
{
    // Lazily grow / reset the visited-stamp array.
    if (visited_.size() < n_) {
        visited_.assign(n_, 0);
        visitStamp_ = 0;
    }
    ++visitStamp_;
    if (visitStamp_ == 0) {
        std::fill(visited_.begin(), visited_.end(), 0);
        visitStamp_ = 1;
    }

    auto worse = [](const SearchHit &a, const SearchHit &b) {
        return a.dist < b.dist; // max-heap on dist
    };
    auto better = [](const SearchHit &a, const SearchHit &b) {
        return a.dist > b.dist; // min-heap on dist
    };

    std::priority_queue<SearchHit, std::vector<SearchHit>,
                        decltype(better)> candidates(better);
    std::priority_queue<SearchHit, std::vector<SearchHit>,
                        decltype(worse)> results(worse);

    const float d0 = dist(query, vec(entry));
    candidates.push({static_cast<idx_t>(entry), d0});
    results.push({static_cast<idx_t>(entry), d0});
    visited_[entry] = visitStamp_;

    while (!candidates.empty()) {
        const SearchHit cur = candidates.top();
        if (results.size() >= ef && cur.dist > results.top().dist)
            break;
        candidates.pop();

        const auto &node = nodes_[static_cast<std::size_t>(cur.id)];
        if (level >= static_cast<int>(node.neighbors.size()))
            continue;
        for (const std::uint32_t nb : node.neighbors[level]) {
            if (visited_[nb] == visitStamp_)
                continue;
            visited_[nb] = visitStamp_;
            const float d = dist(query, vec(nb));
            if (results.size() < ef || d < results.top().dist) {
                candidates.push({static_cast<idx_t>(nb), d});
                results.push({static_cast<idx_t>(nb), d});
                if (results.size() > ef)
                    results.pop();
            }
        }
    }

    std::vector<SearchHit> out;
    out.reserve(results.size());
    while (!results.empty()) {
        out.push_back(results.top());
        results.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
}

void
Hnsw::connect(std::uint32_t id, int level,
              const std::vector<SearchHit> &candidates)
{
    const std::size_t max_links = level == 0 ? params_.M * 2 : params_.M;
    auto &links = nodes_[id].neighbors[level];
    for (const auto &c : candidates) {
        if (links.size() >= params_.M)
            break;
        if (static_cast<std::uint32_t>(c.id) == id)
            continue;
        links.push_back(static_cast<std::uint32_t>(c.id));
    }
    // Back-links with pruning when the neighbor overflows.
    for (const std::uint32_t nb : links) {
        auto &back = nodes_[nb].neighbors[level];
        back.push_back(id);
        if (back.size() > max_links) {
            // Keep the max_links closest neighbors.
            const float *nb_vec = vec(nb);
            std::sort(back.begin(), back.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                          return dist(nb_vec, vec(a)) <
                                 dist(nb_vec, vec(b));
                      });
            back.resize(max_links);
        }
    }
}

void
Hnsw::add(const float *v)
{
    const auto id = static_cast<std::uint32_t>(n_);
    data_.insert(data_.end(), v, v + dim_);
    ++n_;

    const int level = sampleLevel();
    Node node;
    node.level = level;
    node.neighbors.resize(static_cast<std::size_t>(level) + 1);
    nodes_.push_back(std::move(node));

    if (id == 0) {
        entryPoint_ = 0;
        maxLevel_ = level;
        return;
    }

    std::uint32_t entry = entryPoint_;
    // Greedy descent through layers above the node's level.
    for (int l = maxLevel_; l > level; --l) {
        bool improved = true;
        while (improved) {
            improved = false;
            const auto &nbrs = nodes_[entry].neighbors;
            if (l >= static_cast<int>(nbrs.size()))
                break;
            const float cur_d = dist(v, vec(entry));
            for (const std::uint32_t nb : nbrs[l]) {
                if (dist(v, vec(nb)) < cur_d) {
                    entry = nb;
                    improved = true;
                    break;
                }
            }
        }
    }

    // Beam search + connect at each layer from min(level, maxLevel) down.
    for (int l = std::min(level, maxLevel_); l >= 0; --l) {
        auto cands = searchLayer(v, entry, params_.efConstruction, l);
        connect(id, l, cands);
        if (!cands.empty())
            entry = static_cast<std::uint32_t>(cands.front().id);
    }

    if (level > maxLevel_) {
        maxLevel_ = level;
        entryPoint_ = id;
    }
}

void
Hnsw::addBatch(std::span<const float> vecs, std::size_t n)
{
    assert(vecs.size() >= n * dim_);
    for (std::size_t i = 0; i < n; ++i)
        add(vecs.data() + i * dim_);
}

std::vector<SearchHit>
Hnsw::search(const float *query, std::size_t k) const
{
    if (n_ == 0)
        return {};
    std::uint32_t entry = entryPoint_;
    for (int l = maxLevel_; l > 0; --l) {
        bool improved = true;
        while (improved) {
            improved = false;
            const auto &nbrs = nodes_[entry].neighbors;
            if (l >= static_cast<int>(nbrs.size()))
                break;
            const float cur_d = dist(query, vec(entry));
            for (const std::uint32_t nb : nbrs[l]) {
                if (dist(query, vec(nb)) < cur_d) {
                    entry = nb;
                    improved = true;
                    break;
                }
            }
        }
    }
    const std::size_t ef = std::max(params_.efSearch, k);
    auto hits = searchLayer(query, entry, ef, 0);
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

std::size_t
Hnsw::graphMemoryBytes() const
{
    std::size_t bytes = 0;
    for (const auto &node : nodes_) {
        bytes += sizeof(Node);
        for (const auto &lvl : node.neighbors)
            bytes += lvl.size() * sizeof(std::uint32_t);
    }
    return bytes;
}

std::size_t
Hnsw::vectorMemoryBytes() const
{
    return data_.size() * sizeof(float);
}

HnswCoarseQuantizer::HnswCoarseQuantizer(std::vector<float> centroids,
                                         std::size_t nlist, std::size_t dim,
                                         HnswParams params, Metric metric)
    : centroids_(std::move(centroids)), nlist_(nlist), dim_(dim),
      graph_(dim, params, metric)
{
    if (centroids_.size() != nlist_ * dim_)
        fatal("HnswCoarseQuantizer: centroid matrix shape mismatch");
    graph_.addBatch(centroids_, nlist_);
}

ProbeList
HnswCoarseQuantizer::probe(const float *query, std::size_t nprobe) const
{
    const auto hits = graph_.search(query, std::min(nprobe, nlist_));
    ProbeList out;
    out.clusters.reserve(hits.size());
    out.dists.reserve(hits.size());
    for (const auto &h : hits) {
        out.clusters.push_back(static_cast<cluster_id_t>(h.id));
        out.dists.push_back(h.dist);
    }
    return out;
}

const float *
HnswCoarseQuantizer::centroid(cluster_id_t c) const
{
    assert(c >= 0 && static_cast<std::size_t>(c) < nlist_);
    return centroids_.data() + static_cast<std::size_t>(c) * dim_;
}

} // namespace vlr::vs

/**
 * @file
 * Tests for the simulated GPU device, hardware specs and the CPU/GPU
 * search cost models (the PERFMODEL inputs of Algorithm 1).
 */

#include <gtest/gtest.h>

#include "simgpu/gpu_device.h"
#include "simgpu/gpu_spec.h"
#include "simgpu/search_cost.h"

namespace vlr::gpu
{
namespace
{

TEST(GpuSpec, PresetsCarryDatasheetNumbers)
{
    const auto h100 = h100Spec();
    EXPECT_EQ(h100.memBytes, 80_GiB);
    EXPECT_GT(h100.memBwBytesPerSec, 2e12); // HBM3 ~3.35 TB/s
    const auto l40s = l40sSpec();
    EXPECT_EQ(l40s.memBytes, 48_GiB);
    EXPECT_LT(l40s.memBwBytesPerSec, h100.memBwBytesPerSec);
    EXPECT_LT(l40s.computeTflops, h100.computeTflops);
}

TEST(CpuSpec, PresetsAndScaling)
{
    EXPECT_EQ(xeon8462Spec().cores, 64);
    EXPECT_EQ(xeon6426Spec().cores, 32);
    EXPECT_EQ(xeonScaled(48).cores, 48);
    // Bandwidth scales with cores.
    EXPECT_LT(xeonScaled(32).memBwBytesPerSec,
              xeonScaled(64).memBwBytesPerSec + 1.0);
}

TEST(GpuDevice, MemoryLedger)
{
    GpuDevice dev(0, h100Spec());
    EXPECT_EQ(dev.id(), 0);
    const bytes_t before = dev.kvCacheBytes();
    dev.reserveWeights(16_GiB);
    EXPECT_EQ(dev.weightsBytes(), 16_GiB);
    EXPECT_EQ(dev.kvCacheBytes(), before - 16_GiB);
}

TEST(GpuDevice, IndexBytesReduceKvSpace)
{
    GpuDevice dev(1, h100Spec());
    dev.reserveWeights(16_GiB);
    const bytes_t kv0 = dev.kvCacheBytes();
    dev.setIndexBytes(4_GiB);
    EXPECT_EQ(dev.indexBytes(), 4_GiB);
    EXPECT_EQ(dev.kvCacheBytes(), kv0 - 4_GiB);
    // Replacing the shard does not accumulate.
    dev.setIndexBytes(2_GiB);
    EXPECT_EQ(dev.kvCacheBytes(), kv0 - 2_GiB);
}

TEST(GpuDevice, ReserveRespectsRuntimeFraction)
{
    GpuSpec spec = h100Spec();
    spec.memReserveFraction = 0.10;
    GpuDevice dev(0, spec);
    const double total = static_cast<double>(spec.memBytes);
    EXPECT_NEAR(static_cast<double>(dev.kvCacheBytes()), total * 0.90,
                total * 0.01);
}

TEST(GpuDevice, OverflowIsFatal)
{
    GpuDevice dev(0, l40sSpec());
    EXPECT_THROW(dev.reserveWeights(100_GiB), std::runtime_error);
}

TEST(GpuDevice, OccupancyOverWindow)
{
    GpuDevice dev(0, h100Spec());
    // Kernel burst of occupancy 0.5 covering half the window.
    dev.addRetrievalInterval(0.0, 1.0, 0.5);
    EXPECT_NEAR(dev.retrievalOccupancyOver(0.0, 2.0), 0.25, 1e-9);
    // Fully covered window sees the full occupancy.
    EXPECT_NEAR(dev.retrievalOccupancyOver(0.25, 0.75), 0.5, 1e-9);
    // Disjoint window sees nothing.
    EXPECT_NEAR(dev.retrievalOccupancyOver(2.0, 3.0), 0.0, 1e-9);
}

TEST(GpuDevice, OverlappingIntervalsAccumulate)
{
    GpuDevice dev(0, h100Spec());
    dev.addRetrievalInterval(0.0, 1.0, 0.3);
    dev.addRetrievalInterval(0.5, 1.5, 0.3);
    // Over [0, 1.5): total mass = 0.3*1 + 0.3*1 = 0.6 over 1.5.
    EXPECT_NEAR(dev.retrievalOccupancyOver(0.0, 1.5), 0.4, 1e-9);
}

TEST(GpuDevice, BusySecondsAndPrune)
{
    GpuDevice dev(0, h100Spec());
    dev.addRetrievalInterval(0.0, 1.0, 1.0);
    dev.addRetrievalInterval(5.0, 6.0, 1.0);
    EXPECT_NEAR(dev.retrievalBusySeconds(), 2.0, 1e-9);
    dev.pruneIntervals(2.0);
    EXPECT_NEAR(dev.retrievalBusySeconds(), 1.0, 1e-9);
    // Remaining interval still counted.
    EXPECT_NEAR(dev.retrievalOccupancyOver(5.0, 6.0), 1.0, 1e-9);
}

// --- CpuSearchModel ----------------------------------------------------

TEST(CpuSearchModel, LatencyIsAffineInBatch)
{
    CpuSearchParams p;
    p.cqFixedSeconds = 0.01;
    p.cqPerQuerySeconds = 0.001;
    p.lutFixedSeconds = 0.05;
    p.lutPerQuerySeconds = 0.002;
    CpuSearchModel m(xeon8462Spec(), p);
    EXPECT_NEAR(m.cqSeconds(1), 0.011, 1e-9);
    EXPECT_NEAR(m.cqSeconds(10), 0.02, 1e-9);
    EXPECT_NEAR(m.lutSeconds(1), 0.052, 1e-9);
    EXPECT_NEAR(m.lutSeconds(10), 0.07, 1e-9);
}

TEST(CpuSearchModel, SearchAppliesHitRate)
{
    CpuSearchParams p;
    CpuSearchModel m(xeon8462Spec(), p);
    const double full = m.searchSeconds(4, 0.0);
    const double half = m.searchSeconds(4, 0.5);
    const double none = m.searchSeconds(4, 1.0);
    EXPECT_NEAR(full, m.cqSeconds(4) + m.lutSeconds(4), 1e-12);
    EXPECT_NEAR(none, m.cqSeconds(4), 1e-12);
    EXPECT_GT(full, half);
    EXPECT_GT(half, none);
}

TEST(CpuSearchModel, PartialLutReducesToFullWithUnitWork)
{
    CpuSearchModel m(xeon8462Spec(), CpuSearchParams{});
    const std::size_t b = 6;
    EXPECT_NEAR(m.lutSecondsPartial(1.0, static_cast<double>(b)),
                m.lutSeconds(b), 1e-12);
}

TEST(CpuSearchModel, FewerCoresAreSlower)
{
    CpuSearchParams p;
    CpuSearchModel big(xeon8462Spec(), p);   // 64 cores
    CpuSearchModel small(xeon6426Spec(), p); // 32 cores
    EXPECT_GT(small.searchSeconds(8, 0.0), big.searchSeconds(8, 0.0));
}

TEST(CpuSearchModel, ComponentsDecompose)
{
    CpuSearchModel m(xeon8462Spec(), CpuSearchParams{});
    const double w = 0.4;
    EXPECT_NEAR(m.lutFixedComponent(w) + m.lutMarginalComponent(w),
                m.lutSecondsPartial(w, w), 1e-12);
}

// --- GpuSearchModel ----------------------------------------------------

TEST(GpuSearchModel, CostDecomposition)
{
    GpuSpec spec = h100Spec();
    GpuSearchModel m(spec);
    // A shard with nothing to do launches nothing and costs nothing.
    EXPECT_NEAR(m.shardSeconds(0, 0.0), 0.0, 1e-12);
    const double with_pairs = m.shardSeconds(100, 0.0);
    EXPECT_NEAR(with_pairs,
                spec.kernelLaunchSeconds +
                    100 * spec.blockScheduleSeconds,
                1e-12);
    const double bytes = 1e9;
    const double with_bytes = m.shardSeconds(1, bytes);
    EXPECT_NEAR(with_bytes,
                spec.kernelLaunchSeconds + spec.blockScheduleSeconds +
                    bytes / (spec.memBwBytesPerSec *
                             spec.searchBwEfficiency),
                1e-12);
}

TEST(GpuSearchModel, MonotoneInPairsAndBytes)
{
    GpuSearchModel m(h100Spec());
    EXPECT_LT(m.shardSeconds(10, 1e6), m.shardSeconds(20, 1e6));
    EXPECT_LT(m.shardSeconds(10, 1e6), m.shardSeconds(10, 2e6));
}

TEST(GpuSearchModel, OccupancySaturatesAtOne)
{
    GpuSearchModel m(h100Spec());
    EXPECT_GE(m.occupancy(1), 0.0);
    EXPECT_LE(m.occupancy(1), 1.0);
    EXPECT_LE(m.occupancy(1000000), 1.0);
    EXPECT_GE(m.occupancy(10000), m.occupancy(10));
}

TEST(GpuSearchModel, GpuBeatsCpuAtPaperScale)
{
    // The headline observation of Fig. 4 (left): GPU IVF search is
    // roughly an order of magnitude faster than CPU fast scan.
    CpuSearchModel cpu(xeon8462Spec(), CpuSearchParams{});
    GpuSearchModel gpu(h100Spec());
    const double cpu_t = cpu.searchSeconds(8, 0.0);
    // 8 queries x 2048 probes, ~1.4 KB per cluster-pair scanned.
    const double gpu_t = gpu.shardSeconds(8 * 2048, 8 * 0.25 * 18e9 / 64);
    EXPECT_LT(gpu_t, cpu_t);
}

} // namespace
} // namespace vlr::gpu

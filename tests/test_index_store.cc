/**
 * @file
 * Tests for the persistence subsystem: IndexStore artifact round-trips
 * (deterministic bytes, bit-identical restored searches, version and
 * corruption rejection), the memory-mapped cold tier (parity with the
 * in-memory cold scan across coverages and shard counts, residency
 * accounting, streaming delta ingestion and artifact merge), and the
 * engine integration (EngineBuilder::fromArtifact cold start, coldTier
 * validation, OnlineUpdater repartition hook folding deltas).
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "core/online_update.h"
#include "core/tiered_index.h"
#include "storage/index_store.h"
#include "storage/mmap_cold_tier.h"
#include "vecsearch/kmeans.h"

namespace vlr::storage
{
namespace
{

namespace fs = std::filesystem;

std::string
tmpPath(const std::string &name)
{
    return (fs::temp_directory_path() / ("vlr_store_" + name)).string();
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
}

void
patchU32(const std::string &path, std::size_t offset, std::uint32_t v)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(reinterpret_cast<const char *>(&v), sizeof v);
    ASSERT_TRUE(f.good());
}

void
expectHitsEq(const std::vector<vs::SearchHit> &got,
             const std::vector<vs::SearchHit> &expected,
             const char *what)
{
    ASSERT_EQ(got.size(), expected.size()) << what;
    for (std::size_t j = 0; j < expected.size(); ++j) {
        EXPECT_EQ(got[j].id, expected[j].id) << what << " rank " << j;
        EXPECT_EQ(got[j].dist, expected[j].dist)
            << what << " rank " << j;
    }
}

/** Fixed-seed clustered corpus, a trained index, and a saved artifact. */
struct StoreFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(7);
        centers_.resize(ncenters_ * d_);
        for (auto &x : centers_)
            x = static_cast<float>(rng.uniform(-1.0, 1.0));
        data_ = sample(rng, n_, 0.15);
        vs::KMeansParams p;
        p.k = nlist_;
        const auto km = vs::kmeansTrain(data_, n_, d_, p);
        cq_ = std::make_shared<vs::FlatCoarseQuantizer>(km.centroids,
                                                        nlist_, d_);
        index_ = std::make_unique<vs::IvfPqFastScanIndex>(cq_, m_);
        index_->train(data_, n_);
        index_->add(data_, n_);
        queries_ = sample(rng, nq_, 0.2);
        extra_ = sample(rng, nextra_, 0.15);

        path_ = tmpPath(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name());
        IndexStore::save(path_, *index_);
    }

    void
    TearDown() override
    {
        fs::remove(path_);
    }

    /** Vectors drawn around the fixture's cluster centers. */
    std::vector<float>
    sample(Rng &rng, std::size_t n, double sigma) const
    {
        std::vector<float> v(n * d_);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = rng.uniformU64(ncenters_);
            for (std::size_t j = 0; j < d_; ++j)
                v[i * d_ + j] = centers_[c * d_ + j] +
                                static_cast<float>(
                                    rng.gaussian(0.0, sigma));
        }
        return v;
    }

    /** Top-`count` clusters by descending list size (deterministic). */
    std::vector<cluster_id_t>
    topBySize(std::size_t count) const
    {
        std::vector<cluster_id_t> order(nlist_);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](cluster_id_t a, cluster_id_t b) {
                      const auto sa = index_->listSize(a);
                      const auto sb = index_->listSize(b);
                      if (sa != sb)
                          return sa > sb;
                      return a < b;
                  });
        order.resize(std::min(count, order.size()));
        return order;
    }

    const std::size_t n_ = 3000;
    const std::size_t d_ = 16;
    const std::size_t m_ = 8;
    const std::size_t ncenters_ = 24;
    const std::size_t nlist_ = 32;
    const std::size_t nq_ = 32;
    const std::size_t nextra_ = 200;
    const std::size_t k_ = 10;
    const std::size_t nprobe_ = 8;
    std::vector<float> centers_;
    std::vector<float> data_;
    std::vector<float> queries_;
    std::vector<float> extra_;
    std::shared_ptr<vs::FlatCoarseQuantizer> cq_;
    std::unique_ptr<vs::IvfPqFastScanIndex> index_;
    std::string path_;
};

TEST_F(StoreFixture, SaveIsDeterministicByteForByte)
{
    const std::string again = path_ + ".again";
    IndexStore::save(again, *index_);
    const auto a = slurp(path_);
    const auto b = slurp(again);
    fs::remove(again);
    ASSERT_FALSE(a.empty());
    EXPECT_TRUE(a == b);
}

TEST_F(StoreFixture, RoundTripSearchesAreBitIdentical)
{
    const auto loaded = IndexStore::load(path_);
    EXPECT_EQ(loaded.size(), index_->size());
    EXPECT_EQ(loaded.dim(), index_->dim());
    EXPECT_EQ(loaded.nlist(), index_->nlist());
    for (std::size_t c = 0; c < nlist_; ++c)
        ASSERT_EQ(loaded.listSize(static_cast<cluster_id_t>(c)),
                  index_->listSize(static_cast<cluster_id_t>(c)));
    for (std::size_t i = 0; i < nq_; ++i) {
        const float *q = queries_.data() + i * d_;
        expectHitsEq(loaded.search(q, k_, nprobe_),
                     index_->search(q, k_, nprobe_), "round trip");
    }
}

TEST_F(StoreFixture, InspectReportsTheHeader)
{
    const ArtifactInfo info = IndexStore::inspect(path_);
    EXPECT_EQ(info.formatVersion, IndexStore::kFormatVersion);
    EXPECT_EQ(info.dim, d_);
    EXPECT_EQ(info.m, m_);
    EXPECT_EQ(info.nbits, 4u);
    EXPECT_EQ(info.nlist, nlist_);
    EXPECT_EQ(info.total, n_);
    EXPECT_EQ(info.fileBytes, fs::file_size(path_));
    EXPECT_EQ(info.listsOffset % info.pageSize, 0u);
}

TEST_F(StoreFixture, RejectsBadMagic)
{
    patchU32(path_, 0, 0xDEADBEEF);
    EXPECT_THROW(IndexStore::load(path_), vs::IoError);
    EXPECT_THROW(IndexStore::inspect(path_), vs::IoError);
}

TEST_F(StoreFixture, RejectsFutureFormatVersion)
{
    patchU32(path_, 4, IndexStore::kFormatVersion + 1);
    try {
        IndexStore::load(path_);
        FAIL() << "future version not rejected";
    } catch (const vs::IoError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST_F(StoreFixture, RejectsTruncatedFile)
{
    fs::resize_file(path_, fs::file_size(path_) - 100);
    EXPECT_THROW(IndexStore::load(path_), vs::IoError);
    // A cut inside the header is rejected too.
    fs::resize_file(path_, 48);
    EXPECT_THROW(IndexStore::inspect(path_), vs::IoError);
}

TEST_F(StoreFixture, RejectsMissingFile)
{
    EXPECT_THROW(IndexStore::load(path_ + ".nope"), vs::IoError);
}

TEST_F(StoreFixture, MmapParityAcrossCoverageAndShards)
{
    MmapColdTier tier(path_);
    EXPECT_EQ(tier.numClusters(), nlist_);
    EXPECT_EQ(tier.numVectors(), n_);
    for (const double rho : {0.0, 0.25, 1.0}) {
        for (const std::size_t shards : {1u, 2u}) {
            const auto count = static_cast<std::size_t>(
                rho * static_cast<double>(nlist_) + 0.5);
            core::TieredOptions opts;
            opts.numShards = shards;
            opts.coldBackend = &tier;
            core::TieredIndex tiered(*index_, topBySize(count), opts);
            for (std::size_t i = 0; i < nq_; ++i) {
                const float *q = queries_.data() + i * d_;
                expectHitsEq(tiered.search(q, k_, nprobe_),
                             index_->search(q, k_, nprobe_),
                             "mmap tiered parity");
            }
        }
    }
}

TEST_F(StoreFixture, MmapParityWithPrefaultAndAdvice)
{
    MmapColdTierOptions mopts;
    mopts.advice = MmapColdTierOptions::Advice::kWillNeed;
    mopts.prefault = true;
    MmapColdTier tier(path_, mopts);
    vs::SearchScratch scratch;
    const auto all = topBySize(nlist_);
    for (std::size_t i = 0; i < 8; ++i) {
        const float *q = queries_.data() + i * d_;
        expectHitsEq(tier.searchClusters(q, k_, all, &scratch),
                     index_->searchClusters(q, k_, all, nullptr,
                                            &scratch),
                     "prefault parity");
    }
}

TEST_F(StoreFixture, StatsReportTheColdBackend)
{
    MmapColdTier tier(path_);
    core::TieredOptions opts;
    opts.coldBackend = &tier;
    core::TieredIndex tiered(*index_, topBySize(8), opts);
    const auto s = tiered.stats();
    EXPECT_EQ(s.coldBackend, "mmap-cold");
    EXPECT_EQ(s.coldBytes, tier.bytes());
    EXPECT_LE(s.coldResidentBytes, s.coldBytes);
    EXPECT_LE(s.coldResidentClusters, nlist_);
}

TEST_F(StoreFixture, ResidencyAccountingIsSane)
{
    MmapColdTier tier(path_);
    EXPECT_GT(tier.bytes(), 0u);
    EXPECT_LE(tier.residentBytes(), tier.bytes());
    EXPECT_LE(tier.residentClusters(), tier.numClusters());
    // Scanning everything faults the segments in; residency may only
    // grow (and on Linux reaches full coverage).
    vs::SearchScratch scratch;
    const auto all = topBySize(nlist_);
    for (std::size_t i = 0; i < nq_; ++i)
        tier.searchClusters(queries_.data() + i * d_, k_, all, &scratch);
    EXPECT_LE(tier.residentBytes(), tier.bytes());
}

TEST_F(StoreFixture, AppendMatchesInMemoryAdd)
{
    MmapColdTier tier(path_);
    tier.append(extra_, nextra_);
    EXPECT_EQ(tier.deltaVectors(), nextra_);
    EXPECT_EQ(tier.numVectors(), n_ + nextra_);

    // The in-memory twin of the same ingestion.
    index_->add(extra_, nextra_);

    vs::SearchScratch scratch;
    const auto all = topBySize(nlist_);
    for (std::size_t i = 0; i < nq_; ++i) {
        const float *q = queries_.data() + i * d_;
        expectHitsEq(tier.searchClusters(q, k_, all, &scratch),
                     index_->searchClusters(q, k_, all, nullptr,
                                            &scratch),
                     "delta parity");
    }
}

TEST_F(StoreFixture, MergeDeltasFoldsIntoTheArtifact)
{
    MmapColdTier tier(path_);
    tier.append(extra_, nextra_);
    tier.mergeDeltas();
    EXPECT_EQ(tier.deltaVectors(), 0u);
    EXPECT_EQ(tier.numVectors(), n_ + nextra_);
    EXPECT_EQ(tier.artifact().total, n_ + nextra_);

    index_->add(extra_, nextra_);

    // Post-merge scans still match, and so does a fresh load of the
    // rewritten artifact (the merge is durable, not just in-memory).
    vs::SearchScratch scratch;
    const auto all = topBySize(nlist_);
    for (std::size_t i = 0; i < nq_; ++i) {
        const float *q = queries_.data() + i * d_;
        const auto expected = index_->searchClusters(q, k_, all,
                                                     nullptr, &scratch);
        expectHitsEq(tier.searchClusters(q, k_, all, &scratch),
                     expected, "post-merge scan");
    }
    const auto reloaded = IndexStore::load(path_);
    EXPECT_EQ(reloaded.size(), n_ + nextra_);
    for (std::size_t i = 0; i < nq_; ++i) {
        const float *q = queries_.data() + i * d_;
        expectHitsEq(reloaded.search(q, k_, nprobe_),
                     index_->search(q, k_, nprobe_), "reloaded merge");
    }
    // Idempotent when no deltas are pending.
    tier.mergeDeltas();
    EXPECT_EQ(tier.numVectors(), n_ + nextra_);
}

TEST_F(StoreFixture, ConcurrentAppendScanAndMergeSmoke)
{
    MmapColdTier tier(path_);
    const auto all = topBySize(nlist_);
    std::thread writer([&] {
        const std::size_t batch = 20;
        for (std::size_t off = 0; off + batch <= nextra_; off += batch) {
            tier.append(
                std::span<const float>(extra_.data() + off * d_,
                                       batch * d_),
                batch);
            if (off % (4 * batch) == 0)
                tier.mergeDeltas();
        }
    });
    vs::SearchScratch scratch;
    for (int pass = 0; pass < 20; ++pass)
        for (std::size_t i = 0; i < 8; ++i) {
            const auto hits = tier.searchClusters(
                queries_.data() + i * d_, k_, all, &scratch);
            EXPECT_LE(hits.size(), k_);
        }
    writer.join();
    tier.mergeDeltas();
    EXPECT_EQ(tier.deltaVectors(), 0u);
    EXPECT_EQ(tier.numVectors(), n_ + (nextra_ / 20) * 20);
}

TEST_F(StoreFixture, FromArtifactEngineServesIdenticalHits)
{
    auto engine = core::EngineBuilder::fromArtifact(path_)
                      .defaultK(k_)
                      .defaultNprobe(nprobe_)
                      .searchThreads(2)
                      .build();
    std::vector<std::future<core::SearchResponse>> futures;
    for (std::size_t i = 0; i < nq_; ++i)
        futures.push_back(engine->submit(
            {.query = std::span<const float>(queries_.data() + i * d_,
                                             d_)}));
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto resp = futures[i].get();
        ASSERT_EQ(resp.disposition, core::Disposition::kServed);
        expectHitsEq(resp.hits,
                     index_->search(queries_.data() + i * d_, k_,
                                    nprobe_),
                     "fromArtifact engine");
    }
}

TEST_F(StoreFixture, BuilderValidatesTheColdTier)
{
    MmapColdTier tier(path_);
    // coldTier() without tieredFromProfile is a composition error.
    EXPECT_THROW(core::EngineBuilder(*index_).coldTier(&tier).build(),
                 std::invalid_argument);

    // A backend serving a different cluster count is rejected.
    Rng rng(11);
    const std::size_t small_nlist = 8;
    const auto small_data = sample(rng, 400, 0.15);
    vs::KMeansParams p;
    p.k = small_nlist;
    const auto km = vs::kmeansTrain(small_data, 400, d_, p);
    auto small_cq = std::make_shared<vs::FlatCoarseQuantizer>(
        km.centroids, small_nlist, d_);
    vs::IvfPqFastScanIndex small(small_cq, m_);
    small.train(small_data, 400);
    small.add(small_data, 400);
    const std::string small_path = path_ + ".small";
    IndexStore::save(small_path, small);
    {
        MmapColdTier mismatched(small_path);
        std::vector<double> counts(nlist_, 1.0), work(nlist_, 1.0),
            bytes(nlist_, 1.0);
        const core::AccessProfile profile(counts, work, bytes);
        EXPECT_THROW(core::EngineBuilder(*index_)
                         .tieredFromProfile(profile, 0.25)
                         .coldTier(&mismatched)
                         .build(),
                     std::invalid_argument);
    }
    fs::remove(small_path);
}

TEST_F(StoreFixture, FromArtifactWithMmapColdTierEndToEnd)
{
    MmapColdTier tier(path_);
    std::vector<double> counts(nlist_), work(nlist_), bytes(nlist_);
    for (std::size_t c = 0; c < nlist_; ++c) {
        counts[c] = static_cast<double>(
            index_->listSize(static_cast<cluster_id_t>(c)));
        work[c] = counts[c];
        bytes[c] = counts[c] * static_cast<double>(m_);
    }
    const core::AccessProfile profile(counts, work, bytes);
    auto engine = core::EngineBuilder::fromArtifact(path_)
                      .tieredFromProfile(profile, 0.25)
                      .coldTier(&tier)
                      .defaultK(k_)
                      .defaultNprobe(nprobe_)
                      .searchThreads(2)
                      .build();
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto resp =
            engine
                ->submit({.query = std::span<const float>(
                              queries_.data() + i * d_, d_)})
                .get();
        ASSERT_EQ(resp.disposition, core::Disposition::kServed);
        expectHitsEq(resp.hits,
                     index_->search(queries_.data() + i * d_, k_,
                                    nprobe_),
                     "cold-start tiered engine");
    }
}

TEST_F(StoreFixture, RepartitionHookMergesDeltas)
{
    MmapColdTier tier(path_);
    tier.append(extra_, nextra_);
    ASSERT_EQ(tier.deltaVectors(), nextra_);

    core::TieredIndex tiered(*index_, topBySize(8));
    core::OnlineUpdater updater(tiered, {}, 0.5);
    updater.setRepartitionHook([&tier] { tier.mergeDeltas(); });
    ASSERT_TRUE(updater.requestRepartition(topBySize(12)));
    updater.waitForRebuild();
    EXPECT_EQ(updater.rebuildsCompleted(), 1u);
    EXPECT_EQ(tier.deltaVectors(), 0u);
    EXPECT_EQ(tier.artifact().total, n_ + nextra_);

    // A throwing hook is contained: the rebuild still completes.
    updater.setRepartitionHook(
        [] { throw std::runtime_error("hook boom"); });
    ASSERT_TRUE(updater.requestRepartition(topBySize(8)));
    updater.waitForRebuild();
    EXPECT_EQ(updater.rebuildsCompleted(), 2u);
}

} // namespace
} // namespace vlr::storage

/**
 * @file
 * Shared helpers for the figure-reproduction benches: node presets per
 * LLM (Table I pairings), serving-config construction and rate sweeps.
 */

#ifndef VLR_BENCH_BENCH_UTIL_H
#define VLR_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/vectorliterag.h"

namespace vlr::bench
{

/**
 * Minimal streaming JSON writer for the BENCH_*.json perf snapshots
 * the bench suite emits (and CI archives): comma management via a
 * container stack, non-finite numbers as null, no external
 * dependencies. Strings are written verbatim — keys and labels here
 * are ASCII identifiers, so no escaping is needed.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os)
    {
        os_.precision(12);
    }

    void
    beginObject()
    {
        pre();
        os_ << '{';
        stack_.push_back(false);
    }

    void
    endObject()
    {
        os_ << '}';
        stack_.pop_back();
        mark();
    }

    void
    beginArray()
    {
        pre();
        os_ << '[';
        stack_.push_back(false);
    }

    void
    endArray()
    {
        os_ << ']';
        stack_.pop_back();
        mark();
    }

    void
    key(std::string_view k)
    {
        comma();
        os_ << '"' << k << "\":";
        keyed_ = true;
    }

    void
    value(double v)
    {
        pre();
        if (std::isfinite(v))
            os_ << v;
        else
            os_ << "null";
        mark();
    }

    void
    value(std::size_t v)
    {
        pre();
        os_ << v;
        mark();
    }

    void
    value(bool v)
    {
        pre();
        os_ << (v ? "true" : "false");
        mark();
    }

    void
    value(std::string_view v)
    {
        pre();
        os_ << '"' << v << '"';
        mark();
    }

    void
    kv(std::string_view k, double v)
    {
        key(k);
        value(v);
    }

    void
    kv(std::string_view k, std::size_t v)
    {
        key(k);
        value(v);
    }

    void
    kv(std::string_view k, bool v)
    {
        key(k);
        value(v);
    }

    void
    kv(std::string_view k, std::string_view v)
    {
        key(k);
        value(v);
    }

    /** A bare string literal must not fall into the bool overload. */
    void
    value(const char *v)
    {
        value(std::string_view(v));
    }

    void
    kv(std::string_view k, const char *v)
    {
        key(k);
        value(std::string_view(v));
    }

  private:
    void
    comma()
    {
        if (!stack_.empty() && stack_.back())
            os_ << ',';
    }

    void
    pre()
    {
        if (keyed_) {
            keyed_ = false;
            return;
        }
        comma();
    }

    void
    mark()
    {
        if (!stack_.empty())
            stack_.back() = true;
    }

    std::ostream &os_;
    std::vector<bool> stack_;
    bool keyed_ = false;
};

/**
 * Minimal CLI shared by the engine/tiered/repartition/workload
 * benches: an optional positional query count plus `--smoke`, which
 * shrinks the dataset and iteration counts so CI can run every bench
 * on every commit (bench code that never runs rots). Benches that
 * ship multiple scenarios (bench_workload) opt into a `--scenario
 * <name>` flag via @p allow_scenario. Parsing is strict: an unknown
 * flag, a malformed or out-of-range count, or an extra positional
 * sets `ok = false` with a description in `error` instead of being
 * silently ignored.
 */
struct BenchArgs
{
    std::size_t numQueries = 0;
    bool smoke = false;
    /** Selected --scenario, or empty for the bench's default. */
    std::string scenario;
    bool ok = true;
    /** Set when ok is false: what was wrong with the command line. */
    std::string error;
};

inline BenchArgs
parseBenchArgs(int argc, char **argv, std::size_t default_queries,
               std::size_t smoke_queries, long min_queries = 1,
               bool allow_scenario = false)
{
    BenchArgs a;
    a.numQueries = default_queries;
    bool explicit_n = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            a.smoke = true;
            continue;
        }
        if (allow_scenario && arg == "--scenario") {
            if (i + 1 >= argc) {
                a.ok = false;
                a.error = "--scenario needs a name";
                return a;
            }
            a.scenario = argv[++i];
            continue;
        }
        if (allow_scenario && arg.rfind("--scenario=", 0) == 0) {
            a.scenario = arg.substr(std::string("--scenario=").size());
            continue;
        }
        if (arg.empty() || arg[0] == '-') {
            a.ok = false;
            a.error = "unknown flag '" + arg + "'";
            return a;
        }
        if (explicit_n) {
            a.ok = false;
            a.error = "unexpected extra argument '" + arg + "'";
            return a;
        }
        char *end = nullptr;
        const long v = std::strtol(arg.c_str(), &end, 10);
        if (end == arg.c_str() || *end != '\0' || v < min_queries) {
            a.ok = false;
            a.error = "invalid query count '" + arg +
                      "' (integer >= " + std::to_string(min_queries) +
                      " required)";
            return a;
        }
        a.numQueries = static_cast<std::size_t>(v);
        explicit_n = true;
    }
    if (a.smoke && !explicit_n)
        a.numQueries = smoke_queries;
    return a;
}

/** The paper's model->node pairing: Llama3-8B on L40S, others on H100. */
inline gpu::GpuSpec
nodeGpuFor(const llm::LlmConfig &cfg)
{
    return cfg.tensorParallel > 1 ? gpu::h100Spec() : gpu::l40sSpec();
}

inline gpu::CpuSpec
nodeCpuFor(const llm::LlmConfig &cfg)
{
    return cfg.tensorParallel > 1 ? gpu::xeon8462Spec()
                                  : gpu::xeon6426Spec();
}

/** Serving config for one (dataset, model, system, rate) cell. */
inline core::ServingConfig
makeServingConfig(const wl::DatasetSpec &spec, const llm::LlmConfig &llm,
                  core::RetrieverKind kind, double rate)
{
    core::ServingConfig cfg;
    cfg.llmConfig = llm;
    cfg.gpuSpec = nodeGpuFor(llm);
    cfg.cpuSpec = nodeCpuFor(llm);
    cfg.numGpus = 8;
    cfg.retriever = kind;
    cfg.arrivalRate = rate;
    // Long enough for slightly-over-capacity rates to reach their
    // saturated steady state (prefill-priority engines keep TTFT low
    // during the transient while the decode backlog builds).
    cfg.durationSeconds = 100.0;
    cfg.warmupSeconds = 10.0;
    cfg.drainSeconds = 40.0;
    cfg.sloSearchOverride = spec.sloSearchSeconds;
    return cfg;
}

/** Caches bare-LLM peak throughput per (model, gpu count) pair. */
class PeakCache
{
  public:
    double
    peak(const core::ServingConfig &cfg)
    {
        const std::string key =
            cfg.llmConfig.name + "/" + std::to_string(cfg.numGpus) +
            "/" + cfg.gpuSpec.name + "/" +
            std::to_string(cfg.promptTokens) + "/" +
            std::to_string(cfg.outputTokens);
        auto it = cache_.find(key);
        if (it != cache_.end())
            return it->second;
        const double v = core::measurePeak(cfg);
        cache_[key] = v;
        return v;
    }

  private:
    std::map<std::string, double> cache_;
};

/** Evenly spread sweep rates up to a multiple of the peak throughput. */
inline std::vector<double>
sweepRates(double peak, std::size_t points = 6, double max_frac = 1.15)
{
    std::vector<double> rates;
    for (std::size_t i = 1; i <= points; ++i)
        rates.push_back(peak * max_frac * static_cast<double>(i) /
                        static_cast<double>(points));
    return rates;
}

inline const std::vector<core::RetrieverKind> kMainBaselines = {
    core::RetrieverKind::CpuOnly,
    core::RetrieverKind::DedicatedGpu,
    core::RetrieverKind::AllGpu,
    core::RetrieverKind::VectorLite,
};

} // namespace vlr::bench

#endif // VLR_BENCH_BENCH_UTIL_H

/**
 * @file
 * Figure 6 reproduction: distribution of per-query cache hit rates at
 * 5% / 10% / 20% cache coverage for the Wiki-All-like and ORCAS-like
 * workloads.
 *
 * The paper shows violins: coverage raises the median hit rate but a
 * long tail of low-hit queries persists, especially on ORCAS. This
 * bench prints the violin summary statistics (min, P10, quartiles,
 * median, mean) per coverage.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout,
                "Figure 6: hit rate distribution vs cache coverage");

    for (const auto &spec : {wl::wikiAllSpec(), wl::orcas1kSpec()}) {
        core::DatasetContext ctx(spec);
        std::cout << "\ndataset: " << spec.name << '\n';
        TextTable t({"coverage", "min", "P10", "P25", "median", "P75",
                     "mean"});
        for (const double cov : {0.05, 0.10, 0.20}) {
            const auto hot = ctx.profile().hotBitmap(cov);
            const auto rates = ctx.testPlans().allHitRates(hot);
            SampleSet s;
            s.addAll(rates);
            t.addRow({TextTable::pct(cov), TextTable::num(s.min(), 3),
                      TextTable::num(s.percentile(10), 3),
                      TextTable::num(s.percentile(25), 3),
                      TextTable::num(s.percentile(50), 3),
                      TextTable::num(s.percentile(75), 3),
                      TextTable::num(s.mean(), 3)});
        }
        t.print(std::cout);
    }

    std::cout << "\npaper: increasing cache coverage improves overall "
                 "hit rates but does not eliminate tail queries with "
                 "poor hit rates.\n";
    return 0;
}

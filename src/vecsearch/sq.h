/**
 * @file
 * Scalar quantization: each float dimension is linearly mapped to int8
 * using per-dimension [min, max] ranges learned at train time. Offers
 * 4x compression with simple decode — the paper's Section II-A mentions
 * it as the lighter alternative to PQ.
 */

#ifndef VLR_VECSEARCH_SQ_H
#define VLR_VECSEARCH_SQ_H

#include <cstdint>
#include <span>
#include <vector>

namespace vlr::vs
{

class ScalarQuantizer
{
  public:
    explicit ScalarQuantizer(std::size_t dim);

    /** Learn per-dimension ranges from n training vectors. */
    void train(std::span<const float> data, std::size_t n);

    bool isTrained() const { return trained_; }

    void encode(const float *vec, std::uint8_t *code) const;
    void decode(const std::uint8_t *code, float *vec) const;

    /**
     * Squared L2 distance between a float query and an encoded vector,
     * computed by decoding on the fly.
     */
    float distanceToCode(const float *query, const std::uint8_t *code) const;

    std::size_t dim() const { return dim_; }
    std::size_t codeSize() const { return dim_; }

    double reconstructionError(std::span<const float> data,
                               std::size_t n) const;

  private:
    std::size_t dim_;
    bool trained_ = false;
    std::vector<float> vmin_;
    std::vector<float> vscale_; // (max - min) / 255
};

} // namespace vlr::vs

#endif // VLR_VECSEARCH_SQ_H

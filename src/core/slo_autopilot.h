/**
 * @file
 * Closed-loop SLO autopilot: the paper's offline planning pipeline
 * (Figs. 11/16) run continuously against the live engine.
 *
 * Offline, VectorLiteRAG profiles search latency, estimates hit rates
 * and runs the latency-bounded partitioner once per deployment. The
 * autopilot closes that loop at serving time: every control cycle it
 *
 *   1. fits SearchPerfModel::fromKnots from observed per-batch route
 *      (T_CQ) and scan (T_LUT) wall times,
 *   2. rebuilds the AccessProfile from the tiered index's live
 *      per-cluster probe counts (exponentially decayed across cycles),
 *   3. re-estimates hit rates from a reservoir of recent queries,
 *   4. re-runs LatencyBoundedPartitioner against the *measured*
 *      arrival rate, and
 *   5. actuates: dispatcher batch cap via
 *      RetrievalEngine::setBatchCap, coverage rho and hot-shard count
 *      via OnlineUpdater::requestRepartition — the same background
 *      rebuild + snapshot swap a drift-triggered update uses, so no
 *      in-flight batch ever stalls.
 *
 * The per-disposition stats are the SLO-attainment feedback (the
 * paper's attainment signal): when the windowed expired+rejected
 * fraction exceeds AutopilotPolicy::missRateTarget the autopilot
 * escalates coverage one rhoStep beyond the model's pick. A hot-set
 * overlap check triggers rebuilds on hotspot flips that move cluster
 * membership without moving rho.
 *
 * With the TenantPolicy enabled the attainment signal is
 * tenant-aware: each cycle takes per-tenant windowed miss/latency
 * observations from the per-tenant stat slices, the escalation
 * objective becomes the weight-averaged per-tenant miss rate
 * (AutopilotDecision::weightedMissRate) — and any single tenant
 * breaching its own TenantSloTarget (window miss rate or running p99)
 * escalates too, so a premium tenant's SLO cannot be averaged away by
 * a healthy majority. With TenantPolicy::adaptiveShares the cycle
 * also refits each tenant's live admission share toward its measured
 * demand fraction (EWMA-smoothed by AutopilotPolicy::shareSmoothing,
 * clamped to the class's [minShare, maxShare]) through
 * RetrievalEngine::setTenantShare; every per-tenant measurement and
 * share move is recorded in AutopilotDecision::tenants.
 *
 * Scan-time normalization: observed scan wall time is divided by the
 * batch's miss fraction (clamped away from 0) to recover the
 * full-miss T_LUT the perf model expects — this assumes hot-shard
 * scans are off the critical path, which holds for the in-memory
 * replica backends standing in for the paper's GPU shards.
 *
 * Every decision is surfaced through EngineStatsSnapshot (bounded
 * autopilotTrace) so benches can plot chosen rho / shards / batch cap
 * over time.
 */

#ifndef VLR_CORE_SLO_AUTOPILOT_H
#define VLR_CORE_SLO_AUTOPILOT_H

#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine_runtime.h"
#include "core/online_update.h"
#include "core/serving_api.h"
#include "core/tiered_index.h"

namespace vlr::core
{

/** One batch's signal sample, fed by the engine after every tiered
 *  batch (cheap: bounded buffer append + reservoir update). */
struct BatchObservation
{
    std::size_t batchSize = 0;
    /** Coarse-quantize + route phase wall seconds (T_CQ sample). */
    double routeSeconds = 0.0;
    /** Scan + merge phase wall seconds (miss-normalized into T_LUT). */
    double scanSeconds = 0.0;
    /** Work-weighted mean hit rate of the batch. */
    double meanHitRate = 0.0;
};

/**
 * The control loop. Construct with the engine it steers and the
 * updater whose snapshot-swap path it actuates through (both must
 * outlive the autopilot); construction attaches it to the engine.
 * With policy.controlIntervalSeconds > 0 a background thread runs
 * cycles periodically; at 0 the loop is manual — tests and benches
 * call runControlCycle() themselves for determinism. Destroy (or
 * stop()) before the engine unless the engine owns the autopilot
 * (EngineBuilder::autopilot path, which sequences teardown).
 */
class SloAutopilot
{
  public:
    SloAutopilot(RetrievalEngine &engine, OnlineUpdater &updater,
                 AutopilotPolicy policy);
    ~SloAutopilot();

    SloAutopilot(const SloAutopilot &) = delete;
    SloAutopilot &operator=(const SloAutopilot &) = delete;

    /**
     * Record one executed batch (called by the engine on the
     * dispatcher thread; thread-safe and cheap). @p queries holds the
     * batch's row-major query vectors, reservoir-sampled into the
     * hit-rate calibration set.
     */
    void observeBatch(const BatchObservation &obs,
                      std::span<const float> queries, std::size_t nq);

    /**
     * Run one synchronous control cycle: fit, re-partition, actuate.
     * Serialized against the background thread; safe to call
     * concurrently. Returns true when the cycle launched a
     * repartition (cap-only actuation returns false).
     */
    bool runControlCycle();

    /** Stop the background control thread (idempotent). */
    void stop();

    std::size_t cyclesRun() const;
    const AutopilotPolicy &policy() const { return policy_; }

  private:
    using Clock = std::chrono::steady_clock;

    void controlLoop();

    RetrievalEngine &engine_;
    OnlineUpdater &updater_;
    TieredIndex &index_;
    AutopilotPolicy policy_;

    /** Signal intake (dispatcher-thread side). */
    mutable std::mutex obsMutex_;
    std::vector<BatchObservation> observations_;
    /** Row-major reservoir of recent queries (policy_.queryReservoir
     *  rows of index dim). */
    std::vector<float> reservoir_;
    std::size_t reservoirRows_ = 0;
    std::size_t reservoirSeen_ = 0;
    Rng rng_{0xa0707110};

    /** Per-tenant counter positions at the last cycle, so each cycle
     *  sees windowed (not lifetime) per-tenant observations. */
    struct TenantWindow
    {
        std::size_t lastSubmitted = 0;
        std::size_t lastServed = 0;
        std::size_t lastExpired = 0;
        std::size_t lastRejected = 0;
    };

    /** Control-cycle state (cycle side; cycleMutex_ serializes). */
    mutable std::mutex cycleMutex_;
    std::vector<double> counts_;
    std::size_t lastSubmitted_ = 0;
    std::size_t lastExpired_ = 0;
    std::size_t lastRejected_ = 0;
    std::size_t lastCompleted_ = 0;
    std::map<TenantId, TenantWindow> tenantWindows_;
    Clock::time_point lastCycle_;
    std::size_t cycles_ = 0;

    std::mutex stopMutex_;
    std::condition_variable stopCv_;
    bool stopped_ = false;
    std::thread thread_;
};

} // namespace vlr::core

#endif // VLR_CORE_SLO_AUTOPILOT_H

#include "vecsearch/metric.h"

#ifdef VLR_USE_AVX2
#include <immintrin.h>
#endif

namespace vlr::vs
{

float
l2SqrScalar(const float *a, const float *b, std::size_t d)
{
    float acc = 0.f;
    for (std::size_t i = 0; i < d; ++i) {
        const float diff = a[i] - b[i];
        acc += diff * diff;
    }
    return acc;
}

float
innerProductScalar(const float *a, const float *b, std::size_t d)
{
    float acc = 0.f;
    for (std::size_t i = 0; i < d; ++i)
        acc += a[i] * b[i];
    return acc;
}

#ifdef VLR_USE_AVX2

namespace
{

float
hsum256(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_add_ps(lo, hi);
    __m128 sh = _mm_movehdup_ps(lo);
    __m128 sums = _mm_add_ps(lo, sh);
    sh = _mm_movehl_ps(sh, sums);
    sums = _mm_add_ss(sums, sh);
    return _mm_cvtss_f32(sums);
}

} // namespace

float
l2Sqr(const float *a, const float *b, std::size_t d)
{
    __m256 acc = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= d; i += 8) {
        const __m256 va = _mm256_loadu_ps(a + i);
        const __m256 vb = _mm256_loadu_ps(b + i);
        const __m256 diff = _mm256_sub_ps(va, vb);
        acc = _mm256_fmadd_ps(diff, diff, acc);
    }
    float total = hsum256(acc);
    for (; i < d; ++i) {
        const float diff = a[i] - b[i];
        total += diff * diff;
    }
    return total;
}

float
innerProduct(const float *a, const float *b, std::size_t d)
{
    __m256 acc = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= d; i += 8) {
        const __m256 va = _mm256_loadu_ps(a + i);
        const __m256 vb = _mm256_loadu_ps(b + i);
        acc = _mm256_fmadd_ps(va, vb, acc);
    }
    float total = hsum256(acc);
    for (; i < d; ++i)
        total += a[i] * b[i];
    return total;
}

#else

float
l2Sqr(const float *a, const float *b, std::size_t d)
{
    return l2SqrScalar(a, b, d);
}

float
innerProduct(const float *a, const float *b, std::size_t d)
{
    return innerProductScalar(a, b, d);
}

#endif // VLR_USE_AVX2

float
comparableDistance(Metric m, const float *a, const float *b, std::size_t d)
{
    if (m == Metric::L2)
        return l2Sqr(a, b, d);
    return -innerProduct(a, b, d);
}

void
distancesToMany(Metric m, const float *q, const float *base, std::size_t n,
                std::size_t d, float *out)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = comparableDistance(m, q, base + i * d, d);
}

} // namespace vlr::vs

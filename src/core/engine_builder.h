/**
 * @file
 * Fluent, validating construction of RetrievalEngine — the single
 * entry point replacing the former three-constructor zoo.
 *
 * One chain composes the index source (flat, caller-owned TieredIndex,
 * or an engine-owned TieredIndex built from an AccessProfile at a
 * coverage rho), the hot-tier shape (shard count + backend factory),
 * dispatcher policy, per-engine defaults and updater attachment:
 *
 * @code
 * auto engine = core::EngineBuilder(index)
 *                   .tieredFromProfile(profile, 0.25)
 *                   .hotShards(2)
 *                   .batching({.maxBatch = 32, .timeoutSeconds = 1e-3})
 *                   .defaultK(10)
 *                   .defaultNprobe(16)
 *                   .searchThreads(4)
 *                   .build();
 * @endcode
 *
 * build() validates the assembled EngineConfig and the source
 * composition and throws std::invalid_argument before any thread
 * spins up, so a misconfigured engine never serves a single request.
 */

#ifndef VLR_CORE_ENGINE_BUILDER_H
#define VLR_CORE_ENGINE_BUILDER_H

#include <memory>
#include <string>

#include "core/access_profile.h"
#include "core/engine_runtime.h"
#include "core/serving_api.h"
#include "core/tiered_index.h"

namespace vlr::core
{

class OnlineUpdater;

/**
 * Builder for RetrievalEngine. Referenced objects (index, tiered
 * index, profile, updater) must outlive the built engine; the builder
 * itself may be discarded after build().
 */
class EngineBuilder
{
  public:
    /** Serve @p index flat, or tiered via tieredFromProfile(). */
    explicit EngineBuilder(const vs::IvfPqFastScanIndex &index);

    /**
     * Serve a caller-owned tiered index (its source() provides the
     * flat-path index and dim()).
     */
    explicit EngineBuilder(const TieredIndex &tiered);

    /**
     * Cold-start path: restore a complete index from a
     * storage::IndexStore artifact and serve it — no training, no
     * re-encoding, and searches bit-identical to the index the
     * artifact was saved from. The engine owns the restored index (it
     * is kept alive for the engine's lifetime), so the builder chains
     * exactly like the in-memory constructors:
     *
     * @code
     * auto engine = core::EngineBuilder::fromArtifact("index.vlra")
     *                   .tieredFromProfile(profile, 0.25)
     *                   .build();
     * @endcode
     *
     * @throws vs::IoError when the artifact is missing, malformed,
     *         from an unsupported format version, or truncated.
     */
    static EngineBuilder fromArtifact(const std::string &path);

    /** Replace the whole configuration in one call. */
    EngineBuilder &config(EngineConfig cfg);

    /** Dispatcher policy: batch cap, timeout, bounded queue. */
    EngineBuilder &batching(BatchPolicy policy);

    /** Results per query for requests that leave k unset. */
    EngineBuilder &defaultK(std::size_t k);

    /** Probed lists for requests that leave nprobe unset. */
    EngineBuilder &defaultNprobe(std::size_t nprobe);

    /** Search worker threads (1 = inline, 0 = hardware-sized). */
    EngineBuilder &searchThreads(std::size_t n);

    /** Pin search workers round-robin to cores (Linux; best effort). */
    EngineBuilder &pinSearchThreads(bool pin);

    /** Retrieval-stage SLO fed to the drift monitor. */
    EngineBuilder &sloSearchSeconds(double seconds);

    /** Overload nprobe degradation policy (off by default). */
    EngineBuilder &degradation(DegradationPolicy policy);

    /**
     * Multi-tenant service policy keyed by the typed
     * SearchRequest::tenant (off by default): per-tenant admission
     * shares, weighted fair batching (TenantPolicy::fairService) and
     * per-tenant accounting. Requires a bounded admission queue — the
     * shares are fractions of BatchPolicy::maxQueue.
     */
    EngineBuilder &tenantIsolation(TenantPolicy policy);

    /**
     * Register (or replace, by id) one tenant's complete service
     * contract — share, WFQ weight, SLO targets and degradation
     * eligibility in a single validated TenantClass — and enable the
     * tenant policy. Sugar over tenantIsolation() for the common
     * "declare my tenants one by one" flow:
     *
     * @code
     * builder.tenantClass({.id = {1}, .name = "premium",
     *                      .share = 0.4, .weight = 4.0,
     *                      .slo = {.missRateTarget = 0.01,
     *                              .p99TargetSeconds = 0.05},
     *                      .degradable = false});
     * @endcode
     *
     * Inconsistent contracts are rejected by build() with a message
     * naming the offending field.
     */
    EngineBuilder &tenantClass(TenantClass cls);

    /**
     * Closed-loop SLO autopilot policy. Requires tiered serving: on
     * the tieredFromProfile path the builder creates an engine-owned
     * OnlineUpdater and SloAutopilot and sequences their teardown; on
     * the caller-owned tiered path an updater() must be attached — it
     * is the autopilot's actuation path — and the engine owns only
     * the autopilot.
     */
    EngineBuilder &autopilot(AutopilotPolicy policy);

    /**
     * Bounded admission: submissions beyond @p max_queued queued
     * requests resolve Disposition::kRejected. 0 = unbounded.
     */
    EngineBuilder &admissionQueueBound(std::size_t max_queued);

    /**
     * Build and own a TieredIndex over the flat index: hot set =
     * profile's top-rho clusters, dealt across hotShards() shards
     * behind shardBackend()'s factory. Only valid on a builder
     * constructed from a flat index. @p profile must outlive build().
     */
    EngineBuilder &tieredFromProfile(const AccessProfile &profile,
                                     double rho);

    /** Hot shards for tieredFromProfile (default 1). */
    EngineBuilder &hotShards(std::size_t n);

    /** Shard backend factory for tieredFromProfile. */
    EngineBuilder &shardBackend(ShardBackendFactory factory);

    /**
     * Route the engine-owned tier's cold probes to @p backend instead
     * of scanning the source index in place (TieredOptions::
     * coldBackend) — e.g. a storage::MmapColdTier serving the long
     * tail from a memory-mapped artifact. Caller-owned; must outlive
     * the engine, serve the same cluster contents as the index, and
     * honour the bit-identical parity contract. Only valid with
     * tieredFromProfile.
     */
    EngineBuilder &coldTier(const HotShardBackend *backend);

    /**
     * Attach a drift-monitoring updater. Only valid when the builder
     * was constructed from a caller-owned TieredIndex; the updater
     * must monitor that same index. For tieredFromProfile engines,
     * construct the updater against engine->tiered() after build()
     * and call RetrievalEngine::attachUpdater.
     */
    EngineBuilder &updater(OnlineUpdater *updater);

    /**
     * Validate and construct. @throws std::invalid_argument on an
     * invalid EngineConfig or an inconsistent composition (e.g.
     * tieredFromProfile on a tiered-constructed builder, rho outside
     * [0, 1], shard options without a profile-built tier, an updater
     * monitoring a different index).
     */
    std::unique_ptr<RetrievalEngine> build();

  private:
    /** fromArtifact delegation target: adopts a restored index. */
    explicit EngineBuilder(
        std::shared_ptr<const vs::IvfPqFastScanIndex> owned);

    /**
     * Restored index backing index_ on the fromArtifact path (heap-
     * stable, so the reference stays valid across builder copies);
     * transferred into the engine by build().
     */
    std::shared_ptr<const vs::IvfPqFastScanIndex> ownedIndex_;
    const vs::IvfPqFastScanIndex &index_;
    const TieredIndex *tiered_ = nullptr;
    const AccessProfile *profile_ = nullptr;
    double rho_ = 0.0;
    bool fromProfile_ = false;
    bool shardOptionsSet_ = false;
    const HotShardBackend *coldBackend_ = nullptr;
    OnlineUpdater *updater_ = nullptr;
    EngineConfig config_;
};

} // namespace vlr::core

#endif // VLR_CORE_ENGINE_BUILDER_H

/**
 * @file
 * Binary serialization for trained vector-search artifacts.
 *
 * Training PQ codebooks and coarse-quantizer centroids is the
 * expensive, offline part of index construction (the paper's artifact
 * reports 40-50 hours of preprocessing); these helpers persist them so
 * deployments rebuild inverted lists from raw vectors without
 * re-training. Beyond the trained parameters, the packed-lists section
 * persists a complete set of fast-scan inverted lists behind a
 * per-cluster offset table with page-aligned segments, so a cold tier
 * can serve the very same bytes out of a memory-mapped file
 * (storage::MmapColdTier) and a full index can cold-start without
 * re-encoding (storage::IndexStore).
 *
 * Format: little-endian, versioned magic headers per section. All
 * loaders throw IoError — a recoverable exception, never a process
 * abort — on magic/version mismatch, implausible header values, or a
 * truncated stream, so a corrupt artifact cannot take down a serving
 * process that tries to open it.
 */

#ifndef VLR_VECSEARCH_IO_H
#define VLR_VECSEARCH_IO_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>

#include "vecsearch/flat_index.h"
#include "vecsearch/ivf.h"
#include "vecsearch/ivf_pq_fastscan.h"
#include "vecsearch/pq.h"

namespace vlr::vs
{

/**
 * Recoverable (de)serialization failure: bad magic, unsupported
 * version, implausible header values, or a truncated stream. Callers
 * opening untrusted or possibly-corrupt artifact files catch this and
 * keep serving; it is never raised for programmer errors.
 */
class IoError : public std::runtime_error
{
  public:
    explicit IoError(const std::string &what)
        : std::runtime_error("vecsearch io: " + what)
    {
    }
};

/** Serialize a trained product quantizer. @throws IoError untrained. */
void savePq(std::ostream &os, const ProductQuantizer &pq);

/** Load a product quantizer. @throws IoError on format mismatch. */
ProductQuantizer loadPq(std::istream &is);

/** Serialize a flat index (dim, metric and raw vectors). */
void saveFlatIndex(std::ostream &os, const FlatIndex &index);

/** Load a flat index. @throws IoError on format mismatch. */
FlatIndex loadFlatIndex(std::istream &is);

/** Serialize a flat coarse quantizer (centroid table). */
void saveCoarseQuantizer(std::ostream &os, const FlatCoarseQuantizer &cq);

/** Load a flat coarse quantizer. @throws IoError on format mismatch. */
std::shared_ptr<FlatCoarseQuantizer> loadCoarseQuantizer(std::istream &is);

/**
 * Packed-lists section layout
 * ---------------------------
 *
 * One section persists every inverted list of an IvfPqFastScanIndex in
 * its native fast-scan blocked layout:
 *
 *     u32 magic "VLL1"
 *     u64 nlist, total, m, pageSize
 *     nlist x { u64 offset, u64 count }     per-cluster offset table
 *     ...zero padding...
 *     per cluster (count > 0), at `offset` from the section start:
 *         idx_t ids[count]                  vector ids, scan order
 *         u8 packed[ceil(count/32) * 16*m]  fast-scan blocks
 *
 * Offsets are relative to the section start and page-aligned; when the
 * section itself starts at a page-aligned file offset every cluster
 * segment is page-aligned in the file, so a memory-mapped reader can
 * madvise() and mincore() individual cluster segments. Empty clusters
 * store offset 0 / count 0. The writer is deterministic: saving equal
 * lists yields byte-identical sections.
 */

/** One cluster's segment in a packed-lists section. */
struct ListSegment
{
    /** Byte offset of the segment from the section start (0 = empty). */
    std::uint64_t offset = 0;
    /** Vectors stored in the segment. */
    std::uint64_t count = 0;
};

/** Parsed header + offset table of a packed-lists section. */
struct PackedListsLayout
{
    std::size_t nlist = 0;
    std::size_t total = 0;
    std::size_t m = 0;
    std::size_t pageSize = 0;
    std::vector<ListSegment> segments;
    /** Total section bytes (header + table + padding + segments). */
    std::size_t sectionBytes = 0;
};

/**
 * Write every inverted list of @p index as one packed-lists section.
 * @param page_size alignment of cluster segments (power of two).
 * @return the layout that was written (offsets relative to section
 *         start).
 */
PackedListsLayout savePackedLists(std::ostream &os,
                                  const IvfPqFastScanIndex &index,
                                  std::size_t page_size = 4096);

/** Lists restored from a packed-lists section. */
struct PackedLists
{
    std::vector<std::vector<idx_t>> ids;
    std::vector<std::vector<std::uint8_t>> packed;
    std::size_t total = 0;
};

/**
 * Read a packed-lists section written by savePackedLists. The stream
 * must be positioned at the section start and seekable. @p expect_m is
 * the sub-quantizer count of the owning index (consistency check).
 * @throws IoError on format mismatch or truncation.
 */
PackedLists loadPackedLists(std::istream &is, std::size_t expect_m);

/**
 * Parse the header + offset table of a packed-lists section sitting in
 * a contiguous buffer (the memory-mapped read path). Validates that
 * every segment lies inside the buffer. @throws IoError on format
 * mismatch, truncation, or an out-of-bounds segment.
 */
PackedListsLayout parsePackedLists(const std::uint8_t *section,
                                   std::size_t section_bytes,
                                   std::size_t expect_m);

} // namespace vlr::vs

#endif // VLR_VECSEARCH_IO_H

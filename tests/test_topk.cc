/**
 * @file
 * Tests for bounded top-k selection and hit-list merging.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vecsearch/topk.h"

namespace vlr::vs
{
namespace
{

TEST(TopK, KeepsKSmallest)
{
    TopK t(3);
    for (float d : {5.f, 1.f, 4.f, 2.f, 3.f})
        t.push(static_cast<idx_t>(d * 10), d);
    const auto hits = t.sortedHits();
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_FLOAT_EQ(hits[0].dist, 1.f);
    EXPECT_FLOAT_EQ(hits[1].dist, 2.f);
    EXPECT_FLOAT_EQ(hits[2].dist, 3.f);
}

TEST(TopK, FewerThanKItems)
{
    TopK t(10);
    t.push(1, 0.5f);
    t.push(2, 0.1f);
    const auto hits = t.sortedHits();
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].id, 2);
    EXPECT_EQ(hits[1].id, 1);
}

TEST(TopK, WorstIsInfUntilFull)
{
    TopK t(2);
    EXPECT_GT(t.worst(), 1e30f);
    t.push(1, 1.f);
    EXPECT_GT(t.worst(), 1e30f);
    t.push(2, 2.f);
    EXPECT_FLOAT_EQ(t.worst(), 2.f);
}

TEST(TopK, WorstTracksKthBest)
{
    TopK t(2);
    t.push(1, 5.f);
    t.push(2, 3.f);
    EXPECT_FLOAT_EQ(t.worst(), 5.f);
    t.push(3, 1.f); // evicts 5
    EXPECT_FLOAT_EQ(t.worst(), 3.f);
}

TEST(TopK, RejectsWorseThanWorst)
{
    TopK t(2);
    t.push(1, 1.f);
    t.push(2, 2.f);
    t.push(3, 9.f); // rejected
    const auto hits = t.sortedHits();
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].id, 1);
    EXPECT_EQ(hits[1].id, 2);
}

TEST(TopK, SortedHitsBreakTiesById)
{
    TopK t(3);
    t.push(7, 1.f);
    t.push(3, 1.f);
    t.push(5, 1.f);
    const auto hits = t.sortedHits();
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0].id, 3);
    EXPECT_EQ(hits[1].id, 5);
    EXPECT_EQ(hits[2].id, 7);
}

TEST(TopK, CapacityAndSizeAccessors)
{
    TopK t(4);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.size(), 0u);
    EXPECT_FALSE(t.full());
    for (int i = 0; i < 4; ++i)
        t.push(i, static_cast<float>(i));
    EXPECT_TRUE(t.full());
    EXPECT_EQ(t.size(), 4u);
}

TEST(TopK, AgreesWithFullSort)
{
    Rng rng(42);
    const std::size_t n = 1000, k = 25;
    std::vector<SearchHit> all(n);
    TopK t(k);
    for (std::size_t i = 0; i < n; ++i) {
        const float d = static_cast<float>(rng.uniform());
        all[i] = {static_cast<idx_t>(i), d};
        t.push(static_cast<idx_t>(i), d);
    }
    std::sort(all.begin(), all.end(), [](const auto &a, const auto &b) {
        return a.dist != b.dist ? a.dist < b.dist : a.id < b.id;
    });
    const auto hits = t.sortedHits();
    ASSERT_EQ(hits.size(), k);
    for (std::size_t i = 0; i < k; ++i)
        EXPECT_EQ(hits[i], all[i]) << "rank " << i;
}

// --- mergeHitLists ----------------------------------------------------

TEST(MergeHits, MergesDisjointLists)
{
    std::vector<std::vector<SearchHit>> lists = {
        {{1, 1.f}, {3, 3.f}},
        {{2, 2.f}, {4, 4.f}},
    };
    const auto merged = mergeHitLists(lists, 3);
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].id, 1);
    EXPECT_EQ(merged[1].id, 2);
    EXPECT_EQ(merged[2].id, 3);
}

TEST(MergeHits, HandlesEmptyLists)
{
    std::vector<std::vector<SearchHit>> lists = {
        {},
        {{5, 0.5f}},
        {},
    };
    const auto merged = mergeHitLists(lists, 4);
    ASSERT_EQ(merged.size(), 1u);
    EXPECT_EQ(merged[0].id, 5);
}

TEST(MergeHits, TruncatesToK)
{
    std::vector<std::vector<SearchHit>> lists = {
        {{1, 1.f}, {2, 2.f}, {3, 3.f}},
        {{4, 1.5f}, {5, 2.5f}},
    };
    const auto merged = mergeHitLists(lists, 2);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].id, 1);
    EXPECT_EQ(merged[1].id, 4);
}

TEST(MergeHits, EquivalentToTopKOverUnion)
{
    Rng rng(7);
    std::vector<std::vector<SearchHit>> lists(4);
    TopK ref(10);
    idx_t id = 0;
    for (auto &list : lists) {
        TopK local(50);
        for (int i = 0; i < 50; ++i) {
            const float d = static_cast<float>(rng.uniform());
            local.push(id, d);
            ref.push(id, d);
            ++id;
        }
        list = local.sortedHits();
    }
    const auto merged = mergeHitLists(lists, 10);
    const auto expect = ref.sortedHits();
    ASSERT_EQ(merged.size(), expect.size());
    for (std::size_t i = 0; i < merged.size(); ++i)
        EXPECT_EQ(merged[i], expect[i]);
}

} // namespace
} // namespace vlr::vs

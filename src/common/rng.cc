#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vlr
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
    : cachedGaussian_(0.0), hasCachedGaussian_(false)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformU64(std::uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    std::uint64_t v;
    do {
        v = nextU64();
    } while (v >= limit);
    return v % n;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformU64(span));
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::exponential(double rate)
{
    assert(rate > 0.0);
    double u;
    do {
        u = uniform();
    } while (u <= 1e-300);
    return -std::log(u) / rate;
}

Rng
Rng::split()
{
    return Rng(nextU64());
}

ZipfSampler::ZipfSampler(std::size_t n, double theta)
    : theta_(theta)
{
    assert(n > 0);
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), theta);
        cdf_[k] = acc;
    }
    for (auto &c : cdf_)
        c /= acc;
    cdf_.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::pmf(std::size_t rank) const
{
    assert(rank < cdf_.size());
    if (rank == 0)
        return cdf_[0];
    return cdf_[rank] - cdf_[rank - 1];
}

} // namespace vlr

#include "vecsearch/fastscan.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#ifdef VLR_USE_AVX2
#include <immintrin.h>
#endif

namespace vlr::vs
{

std::size_t
packedBlockBytes(std::size_t m)
{
    return m * (kFastScanBlock / 2);
}

std::vector<std::uint8_t>
packPq4Codes(std::size_t m, std::span<const std::uint8_t> codes,
             std::size_t n)
{
    assert(codes.size() >= n * m);
    const std::size_t nblocks =
        (n + kFastScanBlock - 1) / kFastScanBlock;
    std::vector<std::uint8_t> packed(nblocks * packedBlockBytes(m), 0);

    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t block = i / kFastScanBlock;
        const std::size_t lane = i % kFastScanBlock;
        std::uint8_t *bp = packed.data() + block * packedBlockBytes(m);
        for (std::size_t s = 0; s < m; ++s) {
            const std::uint8_t code = codes[i * m + s];
            assert(code < 16);
            std::uint8_t &slot = bp[s * 16 + (lane % 16)];
            if (lane < 16)
                slot = static_cast<std::uint8_t>((slot & 0xF0) | code);
            else
                slot = static_cast<std::uint8_t>((slot & 0x0F) | (code << 4));
        }
    }
    return packed;
}

void
appendPq4Codes(std::size_t m, std::vector<std::uint8_t> &packed,
               std::size_t n_old, std::span<const std::uint8_t> codes,
               std::size_t n_new)
{
    assert(codes.size() >= n_new * m);
    const std::size_t bb = packedBlockBytes(m);
    assert(packed.size() ==
           (n_old + kFastScanBlock - 1) / kFastScanBlock * bb);
    const std::size_t nblocks =
        (n_old + n_new + kFastScanBlock - 1) / kFastScanBlock;
    packed.resize(nblocks * bb, 0);

    for (std::size_t i = 0; i < n_new; ++i) {
        const std::size_t pos = n_old + i;
        const std::size_t block = pos / kFastScanBlock;
        const std::size_t lane = pos % kFastScanBlock;
        std::uint8_t *bp = packed.data() + block * bb;
        for (std::size_t s = 0; s < m; ++s) {
            const std::uint8_t code = codes[i * m + s];
            assert(code < 16);
            std::uint8_t &slot = bp[s * 16 + (lane % 16)];
            if (lane < 16)
                slot = static_cast<std::uint8_t>((slot & 0xF0) | code);
            else
                slot = static_cast<std::uint8_t>((slot & 0x0F) |
                                                 (code << 4));
        }
    }
}

QuantizedLut
quantizeLut(std::size_t m, std::span<const float> lut)
{
    assert(lut.size() >= m * 16);
    QuantizedLut q;
    q.table.resize(m * 16);

    float bias = 0.f;
    float max_delta = 0.f;
    for (std::size_t s = 0; s < m; ++s) {
        const float *row = lut.data() + s * 16;
        float row_min = row[0], row_max = row[0];
        for (std::size_t j = 1; j < 16; ++j) {
            row_min = std::min(row_min, row[j]);
            row_max = std::max(row_max, row[j]);
        }
        bias += row_min;
        max_delta = std::max(max_delta, row_max - row_min);
    }
    q.bias = bias;
    q.step = max_delta > 0.f ? max_delta / 255.f : 1.f;
    const float inv_step = 1.f / q.step;

    for (std::size_t s = 0; s < m; ++s) {
        const float *row = lut.data() + s * 16;
        float row_min = row[0];
        for (std::size_t j = 1; j < 16; ++j)
            row_min = std::min(row_min, row[j]);
        for (std::size_t j = 0; j < 16; ++j) {
            const float t = (row[j] - row_min) * inv_step;
            q.table[s * 16 + j] = static_cast<std::uint8_t>(
                std::clamp(std::lround(t), 0L, 255L));
        }
    }
    return q;
}

void
scanPq4BlocksScalar(std::size_t m, const std::uint8_t *packed,
                    std::size_t nblocks, const QuantizedLut &lut,
                    std::uint16_t *out)
{
    const std::size_t bb = packedBlockBytes(m);
    for (std::size_t b = 0; b < nblocks; ++b) {
        const std::uint8_t *bp = packed + b * bb;
        std::uint16_t *res = out + b * kFastScanBlock;
        std::fill_n(res, kFastScanBlock, 0);
        for (std::size_t s = 0; s < m; ++s) {
            const std::uint8_t *row = lut.table.data() + s * 16;
            const std::uint8_t *cp = bp + s * 16;
            for (std::size_t j = 0; j < 16; ++j) {
                const std::uint8_t byte = cp[j];
                res[j] = static_cast<std::uint16_t>(
                    res[j] + row[byte & 0x0F]);
                res[j + 16] = static_cast<std::uint16_t>(
                    res[j + 16] + row[byte >> 4]);
            }
        }
    }
}

#ifdef VLR_USE_AVX2

void
scanPq4Blocks(std::size_t m, const std::uint8_t *packed,
              std::size_t nblocks, const QuantizedLut &lut,
              std::uint16_t *out)
{
    const std::size_t bb = packedBlockBytes(m);
    const __m256i low_mask = _mm256_set1_epi8(0x0F);
    const __m256i zero = _mm256_setzero_si256();

    for (std::size_t b = 0; b < nblocks; ++b) {
        const std::uint8_t *bp = packed + b * bb;
        // acc0 holds vectors 0..7 and 16..23; acc1 holds 8..15 and 24..31
        // (a consequence of 256-bit unpack operating per 128-bit lane).
        __m256i acc0 = zero;
        __m256i acc1 = zero;

        for (std::size_t s = 0; s < m; ++s) {
            const __m128i raw = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(bp + s * 16));
            const __m128i lut128 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(lut.table.data() + s * 16));
            const __m256i lut256 = _mm256_broadcastsi128_si256(lut128);

            const __m128i lo16 = raw;                       // low nibbles
            const __m128i hi16 = _mm_srli_epi16(raw, 4);    // high nibbles
            __m256i idx = _mm256_set_m128i(hi16, lo16);
            idx = _mm256_and_si256(idx, low_mask);

            const __m256i vals = _mm256_shuffle_epi8(lut256, idx);
            acc0 = _mm256_add_epi16(acc0, _mm256_unpacklo_epi8(vals, zero));
            acc1 = _mm256_add_epi16(acc1, _mm256_unpackhi_epi8(vals, zero));
        }

        alignas(32) std::uint16_t tmp0[16];
        alignas(32) std::uint16_t tmp1[16];
        _mm256_store_si256(reinterpret_cast<__m256i *>(tmp0), acc0);
        _mm256_store_si256(reinterpret_cast<__m256i *>(tmp1), acc1);

        std::uint16_t *res = out + b * kFastScanBlock;
        // Undo the unpack interleave: tmp0 = v0..7 | v16..23,
        // tmp1 = v8..15 | v24..31.
        for (std::size_t i = 0; i < 8; ++i) {
            res[i] = tmp0[i];
            res[16 + i] = tmp0[8 + i];
            res[8 + i] = tmp1[i];
            res[24 + i] = tmp1[8 + i];
        }
    }
}

bool
fastScanHasSimd()
{
    return true;
}

#else

void
scanPq4Blocks(std::size_t m, const std::uint8_t *packed,
              std::size_t nblocks, const QuantizedLut &lut,
              std::uint16_t *out)
{
    scanPq4BlocksScalar(m, packed, nblocks, lut, out);
}

bool
fastScanHasSimd()
{
    return false;
}

#endif // VLR_USE_AVX2

} // namespace vlr::vs

#include "llmsim/perf_model.h"

#include <algorithm>

#include "common/log.h"

namespace vlr::llm
{

LlmPerfModel::LlmPerfModel(LlmConfig config, gpu::GpuSpec gpu,
                           int tensor_parallel)
    : config_(std::move(config)), gpu_(std::move(gpu)), tp_(tensor_parallel)
{
    if (tp_ < 1)
        fatal("LlmPerfModel: tensor parallel degree must be >= 1");
}

double
LlmPerfModel::stepOverheadSeconds() const
{
    // Python/scheduler overhead plus one allreduce per layer group when
    // tensor parallel; values in the sub-millisecond range reported for
    // vLLM-class engines.
    return 0.8e-3 + (tp_ > 1 ? 0.4e-3 : 0.0);
}

double
LlmPerfModel::prefillSeconds(std::size_t tokens) const
{
    if (tokens == 0)
        return 0.0;
    const double flops =
        2.0 * config_.activeParamCount * static_cast<double>(tokens);
    const double rate =
        gpu_.computeTflops * 1e12 * gpu_.mfu * static_cast<double>(tp_);
    return flops / rate + stepOverheadSeconds();
}

double
LlmPerfModel::decodeSeconds(std::size_t batch,
                            double total_context_tokens) const
{
    if (batch == 0)
        return 0.0;
    // Memory: weights (active parameters) once per step plus the KV of
    // every attended token, split across TP ranks reading in parallel.
    const double weight_bytes = config_.activeParamCount * 2.0;
    const double kv_bytes =
        total_context_tokens *
        static_cast<double>(config_.kvBytesPerToken());
    const double bw = gpu_.memBwBytesPerSec * 0.85 *
                      static_cast<double>(tp_);
    const double t_mem = (weight_bytes + kv_bytes) / bw;

    // Compute: one token per sequence.
    const double flops =
        2.0 * config_.activeParamCount * static_cast<double>(batch);
    const double rate =
        gpu_.computeTflops * 1e12 * gpu_.mfu * static_cast<double>(tp_);
    const double t_comp = flops / rate;

    return std::max(t_mem, t_comp) + stepOverheadSeconds();
}

} // namespace vlr::llm

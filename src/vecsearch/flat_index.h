/**
 * @file
 * Exact (brute-force) flat index. Used for ground truth in recall/NDCG
 * evaluation and as the coarse quantizer over IVF centroids.
 */

#ifndef VLR_VECSEARCH_FLAT_INDEX_H
#define VLR_VECSEARCH_FLAT_INDEX_H

#include <span>
#include <vector>

#include "vecsearch/metric.h"
#include "vecsearch/topk.h"

namespace vlr
{
class ThreadPool;
}

namespace vlr::vs
{

/** Brute-force index storing raw float vectors. */
class FlatIndex
{
  public:
    FlatIndex(std::size_t dim, Metric metric = Metric::L2);

    /** Append n vectors; ids are assigned sequentially. */
    void add(std::span<const float> vecs, std::size_t n);

    /** Exact k-NN for one query. */
    std::vector<SearchHit> search(const float *query, std::size_t k) const;

    /** Exact k-NN for a batch of queries (optionally parallel). */
    std::vector<std::vector<SearchHit>> searchBatch(
        std::span<const float> queries, std::size_t nq, std::size_t k,
        ThreadPool *pool = nullptr) const;

    std::size_t size() const { return n_; }
    std::size_t dim() const { return dim_; }
    Metric metric() const { return metric_; }
    const float *vectorData(idx_t id) const;

  private:
    std::size_t dim_;
    Metric metric_;
    std::size_t n_ = 0;
    std::vector<float> data_;
};

} // namespace vlr::vs

#endif // VLR_VECSEARCH_FLAT_INDEX_H

#include "common/piecewise_linear.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

namespace vlr
{

PiecewiseLinearModel
PiecewiseLinearModel::fit(std::span<const PlKnot> samples)
{
    assert(!samples.empty());
    // Average duplicate x values, then sort by x.
    std::map<double, std::pair<double, std::size_t>> acc;
    for (const auto &s : samples) {
        auto &[sum, cnt] = acc[s.x];
        sum += s.y;
        ++cnt;
    }
    PiecewiseLinearModel m;
    m.knots_.reserve(acc.size());
    for (const auto &[x, sc] : acc)
        m.knots_.push_back({x, sc.first / static_cast<double>(sc.second)});
    return m;
}

double
PiecewiseLinearModel::eval(double x) const
{
    assert(!knots_.empty());
    if (knots_.size() == 1)
        return knots_[0].y;
    if (x <= knots_.front().x) {
        const auto &a = knots_[0];
        const auto &b = knots_[1];
        const double slope = (b.y - a.y) / (b.x - a.x);
        return a.y + slope * (x - a.x);
    }
    if (x >= knots_.back().x) {
        const auto &a = knots_[knots_.size() - 2];
        const auto &b = knots_.back();
        const double slope = (b.y - a.y) / (b.x - a.x);
        return b.y + slope * (x - b.x);
    }
    auto it = std::lower_bound(knots_.begin(), knots_.end(), x,
                               [](const PlKnot &k, double v) {
                                   return k.x < v;
                               });
    const auto &b = *it;
    const auto &a = *(it - 1);
    const double frac = (x - a.x) / (b.x - a.x);
    return a.y + frac * (b.y - a.y);
}

double
PiecewiseLinearModel::invert(double y) const
{
    assert(!knots_.empty());
    if (knots_.size() == 1)
        return knots_[0].x;
    if (y <= knots_.front().y)
        return knots_.front().x;
    if (y >= knots_.back().y) {
        const auto &a = knots_[knots_.size() - 2];
        const auto &b = knots_.back();
        const double slope = (b.y - a.y) / (b.x - a.x);
        if (slope <= 0.0)
            return b.x;
        return b.x + (y - b.y) / slope;
    }
    for (std::size_t i = 1; i < knots_.size(); ++i) {
        if (knots_[i].y >= y) {
            const auto &a = knots_[i - 1];
            const auto &b = knots_[i];
            if (b.y <= a.y)
                return b.x;
            const double frac = (y - a.y) / (b.y - a.y);
            return a.x + frac * (b.x - a.x);
        }
    }
    return knots_.back().x;
}

bool
PiecewiseLinearModel::isNonDecreasing() const
{
    for (std::size_t i = 1; i < knots_.size(); ++i) {
        if (knots_[i].y < knots_[i - 1].y - 1e-12)
            return false;
    }
    return true;
}

} // namespace vlr

/**
 * @file
 * Multi-instance LLM serving cluster: groups GPUs into tensor-parallel
 * replicas, dispatches requests to the least-loaded instance, and
 * measures standalone peak throughput (the mu_LLM0 input of the paper's
 * Algorithm 1).
 */

#ifndef VLR_LLMSIM_CLUSTER_H
#define VLR_LLMSIM_CLUSTER_H

#include <memory>
#include <vector>

#include "llmsim/engine.h"

namespace vlr::llm
{

class LlmCluster
{
  public:
    /**
     * Builds floor(gpus.size() / tp) engines over consecutive GPU
     * groups; leftover GPUs stay idle (the paper's rigid-allocation
     * penalty for DED-GPU with model parallelism).
     */
    LlmCluster(sim::Simulator &sim, std::vector<gpu::GpuDevice *> gpus,
               LlmConfig config, LlmEngineParams params = {});

    /** Dispatch to the instance with the least outstanding work. */
    void dispatch(LlmRequestPtr req);

    std::size_t numInstances() const { return engines_.size(); }
    LlmEngine &engine(std::size_t i) { return *engines_.at(i); }
    const LlmEngine &engine(std::size_t i) const { return *engines_.at(i); }

    std::uint64_t completedCount() const;

    /** Propagate per-request callbacks to every engine. */
    void setOnFirstToken(std::function<void(const LlmRequestPtr &)> fn);
    void setOnFinish(std::function<void(const LlmRequestPtr &)> fn);

    /** Re-derive KV capacity after index bytes changed on the devices. */
    void refreshKvCapacity();

  private:
    std::vector<std::unique_ptr<LlmEngine>> engines_;
    std::size_t rr_ = 0;
};

/**
 * Measure a model's standalone peak throughput (requests/second) on
 * `num_gpus` devices of the given spec with no vector index resident.
 * Runs a private closed-loop simulation and reports the steady-state
 * completion rate — the paper's "bare LLM throughput" profiling step.
 */
double measurePeakThroughput(const LlmConfig &config,
                             const gpu::GpuSpec &gpu_spec, int num_gpus,
                             std::size_t prompt_tokens,
                             std::size_t output_tokens,
                             std::size_t num_requests = 512);

} // namespace vlr::llm

#endif // VLR_LLMSIM_CLUSTER_H

/**
 * @file
 * Executable concurrent retrieval engine — the online counterpart of
 * the event-driven serving simulator.
 *
 * Typed SearchRequests enter a bounded admission queue via submit(),
 * submitMany() or the callback-based submitAsync(); a dispatcher
 * thread forms dynamic batches under the shared BatchPolicy (dispatch
 * when the batch cap fills or the oldest admitted query times out,
 * paper Section IV-B2) and executes each batch as a *real* IVF-PQ
 * fast-scan search fanned out across a ThreadPool with per-query
 * top-k results.
 *
 * The dispatcher is deadline- and priority-aware: a request whose
 * deadline elapses while queued resolves Disposition::kExpiredInQueue
 * without ever entering a search batch, submissions that overflow the
 * bounded queue resolve Disposition::kRejected at admission, and each
 * batch groups compatible requests — identical k, with per-request
 * nprobe passed straight through to the batch search — led by the
 * highest-priority, oldest queued request. Per-request queue/search/
 * total latencies are recorded as per-disposition LatencySummary
 * digests — the same type the simulator reports — so measured
 * percentiles can be compared directly against the analytic
 * perf-model predictions.
 *
 * The engine serves either a flat single-tier index or a TieredIndex
 * (hot/cold partition-aware path). In tiered mode each batch's routed
 * hit rates are recorded and, when an OnlineUpdater is attached, fed
 * to the drift monitor together with whether the batch met the search
 * SLO — closing the paper's online-update loop on the live path.
 *
 * Engines are constructed through EngineBuilder (engine_builder.h),
 * which validates the EngineConfig and composes flat, caller-owned
 * tiered and engine-owned profile-built tiered serving in one fluent
 * chain.
 */

#ifndef VLR_CORE_ENGINE_RUNTIME_H
#define VLR_CORE_ENGINE_RUNTIME_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/threadpool.h"
#include "core/batch_policy.h"
#include "core/serving_api.h"
#include "core/tiered_index.h"
#include "vecsearch/ivf_pq_fastscan.h"

namespace vlr::core
{

/**
 * Aggregate engine statistics since construction. Every submitted
 * request is accounted under exactly one disposition once resolved:
 * submitted == served + expired + rejected + still-pending. Latency
 * digests are computed over a bounded uniform reservoir (capacity
 * 65536 per distribution), so a long-running engine's memory stays
 * constant; percentiles become approximate once more requests than
 * that have been resolved. Counters are exact.
 */
struct EngineStatsSnapshot
{
    /** Requests admitted (including ones later expired/rejected). */
    std::size_t submitted = 0;
    /** Requests that rode a search batch (Disposition::kServed). */
    std::size_t served = 0;
    /** Requests whose deadline elapsed while queued. */
    std::size_t expired = 0;
    /** Requests bounced by the bounded admission queue. */
    std::size_t rejected = 0;
    /** Resolved requests: served + expired + rejected. */
    std::size_t completed = 0;
    std::size_t batches = 0;
    double meanBatchSize = 0.0;
    /** Served requests: admission to batch start. */
    LatencySummary queueLatency;
    /** Served requests: batch start to batch completion. */
    LatencySummary searchLatency;
    /** Served requests: admission to completion. */
    LatencySummary totalLatency;
    /** Expired requests: admission to expiry resolution. */
    LatencySummary expiredLatency;
};

class OnlineUpdater;
class EngineBuilder;

/**
 * Online serving front-end over an IvfPqFastScanIndex or a
 * TieredIndex. Construct through EngineBuilder; the index must
 * outlive the engine. submit()/submitMany()/submitAsync() are
 * thread-safe and may be called from any number of client threads.
 * Destruction drains pending requests.
 */
class RetrievalEngine
{
  public:
    ~RetrievalEngine();

    RetrievalEngine(const RetrievalEngine &) = delete;
    RetrievalEngine &operator=(const RetrievalEngine &) = delete;

    /**
     * Attach a drift-monitoring updater fed after every tiered batch.
     * Call before submitting queries; the updater must outlive the
     * engine. No-op wiring for flat-index engines.
     */
    void attachUpdater(OnlineUpdater *updater) { updater_ = updater; }

    /** Tiered index served by this engine, or nullptr in flat mode. */
    const TieredIndex *tiered() const { return tiered_; }

    /**
     * Admit one typed request (the query span is copied). The future
     * resolves when the request is served, expires in the queue, or —
     * immediately — when the bounded queue rejects it; check
     * SearchResponse::disposition. @throws std::runtime_error after
     * shutdown(), std::invalid_argument on a query span shorter than
     * dim().
     */
    std::future<SearchResponse> submit(SearchRequest request);

    /**
     * Admit a span of requests in order. The returned futures match
     * the request order index-for-index regardless of how the
     * dispatcher groups or prioritizes them.
     */
    std::vector<std::future<SearchResponse>>
    submitMany(std::span<const SearchRequest> requests);

    /**
     * Callback-based admission: @p done runs exactly once with the
     * response. Served and expired requests invoke it on the
     * dispatcher thread (keep it cheap; re-submitting from inside the
     * callback is allowed while the engine is accepting), rejected
     * requests invoke it inline on the submitting thread before
     * submitAsync returns. A callback that throws — including a
     * re-submit racing shutdown() — is caught and logged; it never
     * takes the engine down.
     */
    void submitAsync(SearchRequest request,
                     std::function<void(SearchResponse)> done);

    /**
     * Legacy convenience entry point: equivalent to submitting a
     * SearchRequest carrying only the query — engine-default k and
     * nprobe, no deadline, priority 0. Kept for one-line call sites;
     * prefer submit(SearchRequest) anywhere a deadline, per-request
     * ranking parameters or a disposition check matters.
     */
    std::future<SearchResponse> submit(std::span<const float> query);

    /** Block until every admitted request has resolved. */
    void drain();

    /**
     * Drain, then stop the dispatcher. Idempotent; subsequent submits
     * throw.
     */
    void shutdown();

    bool accepting() const;
    std::size_t pendingQueries() const;
    EngineStatsSnapshot stats() const;
    const EngineConfig &config() const { return config_; }

  private:
    friend class EngineBuilder;

    using Clock = std::chrono::steady_clock;

    /**
     * @param index flat-mode index (tiered->source() when tiered).
     * @param owned engine-owned TieredIndex (profile-built), or null.
     * @param tiered tiered-mode index (owned.get() or caller-owned),
     *        or null for the flat path.
     * @param config validated configuration.
     */
    RetrievalEngine(const vs::IvfPqFastScanIndex &index,
                    std::unique_ptr<TieredIndex> owned,
                    const TieredIndex *tiered, EngineConfig config);

    struct Pending
    {
        std::vector<float> query;
        std::size_t k = 0;
        std::size_t nprobe = 0;
        int priority = 0;
        std::uint64_t tag = 0;
        /** Admission order; tie-break within equal priority. */
        std::uint64_t seq = 0;
        Clock::time_point admitted;
        bool hasDeadline = false;
        Clock::time_point deadline;
        std::promise<SearchResponse> promise;
        /** Callback mode (submitAsync): set instead of the promise. */
        std::function<void(SearchResponse)> callback;
    };

    /** Fixed-size uniform reservoir of latency samples. */
    struct Reservoir
    {
        static constexpr std::size_t kCapacity = 65536;
        std::vector<double> samples;
        std::size_t seen = 0;

        void
        add(double x, Rng &rng)
        {
            ++seen;
            if (samples.size() < kCapacity) {
                samples.push_back(x);
                return;
            }
            const std::uint64_t j = rng.uniformU64(seen);
            if (j < kCapacity)
                samples[j] = x;
        }
    };

    /** Build a Pending from a request (validates the span length). */
    Pending makePending(const SearchRequest &request) const;
    /** Queue one Pending or resolve it kRejected; returns future. */
    void admit(Pending p);
    /** Fulfil promise or invoke callback. */
    static void resolve(Pending &p, SearchResponse &&r);

    /**
     * Remove every queued request whose deadline has elapsed at
     * @p now. Caller holds mutex_; resolution happens outside it.
     */
    std::vector<Pending> takeExpiredLocked(Clock::time_point now);
    /** Resolve a swept batch of expired requests (no lock held). */
    void resolveExpired(std::vector<Pending> expired);

    /**
     * Indices (into queue_) of the next batch: requests sharing the
     * lead's k, in (priority desc, admission asc) order, capped at
     * maxBatch. The lead is the highest-priority, oldest request.
     * Caller holds mutex_.
     */
    std::vector<std::size_t> formGroupLocked() const;

    void dispatcherLoop();
    void executeBatch(std::vector<Pending> batch);

    /** Flat-mode index (tiered_->source() when tiered). */
    const vs::IvfPqFastScanIndex &index_;
    /** Tiered index built by EngineBuilder::tieredFromProfile. */
    std::unique_ptr<TieredIndex> ownedTiered_;
    /** Tiered-mode index; nullptr when serving the flat path. */
    const TieredIndex *tiered_ = nullptr;
    OnlineUpdater *updater_ = nullptr;
    EngineConfig config_;
    ThreadPool pool_;

    mutable std::mutex mutex_;
    std::condition_variable cvDispatch_;
    std::condition_variable cvIdle_;
    std::deque<Pending> queue_;
    std::uint64_t nextSeq_ = 0;
    bool accepting_ = true;
    bool stop_ = false;
    bool flushing_ = false;
    bool batchInFlight_ = false;

    mutable std::mutex statsMutex_;
    Rng statsRng_{0x5eed11fe};
    Reservoir queueSamples_;
    Reservoir searchSamples_;
    Reservoir totalSamples_;
    Reservoir expiredSamples_;
    RunningStats batchSizes_;
    std::size_t submitted_ = 0;
    std::size_t served_ = 0;
    std::size_t expired_ = 0;
    std::size_t rejected_ = 0;
    std::size_t batches_ = 0;

    std::thread dispatcher_;
};

} // namespace vlr::core

#endif // VLR_CORE_ENGINE_RUNTIME_H

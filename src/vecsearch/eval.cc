#include "vecsearch/eval.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace vlr::vs
{

double
recallAtK(std::span<const std::vector<SearchHit>> results,
          std::span<const std::vector<SearchHit>> ground_truth,
          std::size_t k)
{
    assert(results.size() == ground_truth.size());
    if (results.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t q = 0; q < results.size(); ++q) {
        std::unordered_set<idx_t> truth;
        const std::size_t kt = std::min(k, ground_truth[q].size());
        for (std::size_t i = 0; i < kt; ++i)
            truth.insert(ground_truth[q][i].id);
        if (truth.empty())
            continue;
        std::size_t found = 0;
        const std::size_t kr = std::min(k, results[q].size());
        for (std::size_t i = 0; i < kr; ++i) {
            if (truth.count(results[q][i].id))
                ++found;
        }
        acc += static_cast<double>(found) /
               static_cast<double>(truth.size());
    }
    return acc / static_cast<double>(results.size());
}

double
ndcgAtK(std::span<const std::vector<SearchHit>> results,
        std::span<const std::vector<SearchHit>> ground_truth, std::size_t k)
{
    assert(results.size() == ground_truth.size());
    if (results.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t q = 0; q < results.size(); ++q) {
        std::unordered_set<idx_t> truth;
        const std::size_t kt = std::min(k, ground_truth[q].size());
        for (std::size_t i = 0; i < kt; ++i)
            truth.insert(ground_truth[q][i].id);
        if (truth.empty())
            continue;

        double dcg = 0.0;
        const std::size_t kr = std::min(k, results[q].size());
        for (std::size_t i = 0; i < kr; ++i) {
            if (truth.count(results[q][i].id))
                dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
        }
        double idcg = 0.0;
        for (std::size_t i = 0; i < truth.size(); ++i)
            idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
        acc += dcg / idcg;
    }
    return acc / static_cast<double>(results.size());
}

} // namespace vlr::vs

/**
 * @file
 * Tests for the hybrid batch-search timing simulation and the dynamic
 * dispatcher (Section IV-B2, Fig. 14).
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/batch_search.h"
#include "core/router.h"
#include "core/splitter.h"

namespace vlr::core
{
namespace
{

struct BatchSearchFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        profile_ = std::make_unique<AccessProfile>(
            std::vector<double>{60, 50, 40, 30, 20, 10},
            std::vector<double>{1e5, 1e5, 1e5, 1e5, 1e5, 1e5},
            std::vector<double>{1e8, 1e8, 1e8, 1e8, 1e8, 1e8});
        assignment_ = IndexSplitter::split(*profile_, 0.5, 2);

        // Query with a large hot share and one with none.
        fast_.probes = {0, 1, 2};
        fast_.probeWork = {1e5, 1e5, 1e5};
        fast_.totalWork = 3e5;
        slow_.probes = {3, 4, 5};
        slow_.probeWork = {1e5, 1e5, 1e5};
        slow_.totalWork = 3e5;
        batch_ = {&fast_, &slow_};
    }

    BatchSearchSimulator
    makeSim(bool dispatcher, double occupancy_cap = 1.0) const
    {
        BatchSearchSimulator::Options opts;
        opts.dispatcher = dispatcher;
        opts.occupancyCap = occupancy_cap;
        return BatchSearchSimulator(
            gpu::CpuSearchModel(gpu::xeon8462Spec(),
                                gpu::CpuSearchParams{}),
            gpu::GpuSearchModel(gpu::h100Spec()), opts);
    }

    RoutedBatch
    route() const
    {
        Router router(assignment_, true);
        return router.route(batch_);
    }

    std::unique_ptr<AccessProfile> profile_;
    ShardAssignment assignment_;
    wl::QueryPlan fast_, slow_;
    std::vector<const wl::QueryPlan *> batch_;
};

TEST_F(BatchSearchFixture, BatchTimeIncludesCq)
{
    const auto sim = makeSim(true);
    const auto out = sim.simulate(route());
    EXPECT_GT(out.cqSeconds, 0.0);
    EXPECT_GE(out.batchSeconds, out.cqSeconds);
}

TEST_F(BatchSearchFixture, PerQueryReadyTimesWithinBatch)
{
    const auto sim = makeSim(true);
    const auto out = sim.simulate(route());
    ASSERT_EQ(out.queryReady.size(), 2u);
    for (const double t : out.queryReady) {
        EXPECT_GT(t, 0.0);
        EXPECT_LE(t, out.batchSeconds + 1e-12);
    }
}

TEST_F(BatchSearchFixture, DispatcherAdvancesHighHitQueries)
{
    const auto with = makeSim(true).simulate(route());
    const auto without = makeSim(false).simulate(route());
    // Query 0 is fully hot: with the dispatcher it completes before the
    // batch ends; without it, it waits for the batch.
    EXPECT_LT(with.queryReady[0], without.queryReady[0]);
    EXPECT_NEAR(without.queryReady[0], without.batchSeconds, 1e-9);
    EXPECT_NEAR(without.queryReady[1], without.batchSeconds, 1e-9);
}

TEST_F(BatchSearchFixture, HitRatesMirrorRouting)
{
    const auto routed = route();
    const auto out = makeSim(true).simulate(routed);
    EXPECT_NEAR(out.minHitRate, routed.minHitRate, 1e-12);
    EXPECT_NEAR(out.meanHitRate, routed.meanHitRate, 1e-12);
}

TEST_F(BatchSearchFixture, GpuBusyRecordsMatchShardsWithWork)
{
    const auto routed = route();
    const auto out = makeSim(true).simulate(routed);
    std::size_t shards_with_work = 0;
    for (const auto &s : routed.shards)
        shards_with_work += s.pairs > 0;
    EXPECT_EQ(out.gpuBusy.size(), shards_with_work);
    for (const auto &g : out.gpuBusy) {
        EXPECT_GE(g.endOffset, g.startOffset);
        EXPECT_GT(g.occupancy, 0.0);
    }
}

TEST_F(BatchSearchFixture, OccupancyCapIsRespected)
{
    const auto routed = route();
    const auto capped = makeSim(true, 0.2).simulate(routed);
    for (const auto &g : capped.gpuBusy)
        EXPECT_LE(g.occupancy, 0.2 + 1e-12);
}

TEST_F(BatchSearchFixture, CappedOccupancyStretchesGpuTime)
{
    const auto routed = route();
    const auto uncapped = makeSim(true, 1.0).simulate(routed);
    const auto capped = makeSim(true, 0.1).simulate(routed);
    double u = 0.0, c = 0.0;
    for (const auto &g : uncapped.gpuBusy)
        u = std::max(u, g.endOffset);
    for (const auto &g : capped.gpuBusy)
        c = std::max(c, g.endOffset);
    EXPECT_GE(c, u);
}

TEST_F(BatchSearchFixture, AllMissBatchMatchesCpuModel)
{
    // Route against an empty assignment: everything on CPU.
    const auto cpu_only = IndexSplitter::split(*profile_, 0.0, 1);
    Router router(cpu_only, true);
    const auto routed = router.route(batch_);
    const auto sim = makeSim(false);
    const auto out = sim.simulate(routed);
    const double expect =
        sim.cpuModel().searchSeconds(2, 0.0);
    EXPECT_NEAR(out.batchSeconds, expect, 0.05 * expect);
}

TEST_F(BatchSearchFixture, FullyCachedBatchApproachesCqTime)
{
    const auto all_gpu = IndexSplitter::split(*profile_, 1.0, 2);
    Router router(all_gpu, true);
    const auto routed = router.route(batch_);
    const auto out = makeSim(true).simulate(routed);
    // All LUT work on GPUs: CPU contributes only CQ; GPU time is small.
    EXPECT_LT(out.batchSeconds,
              makeSim(true).cpuModel().searchSeconds(2, 0.0));
}

TEST_F(BatchSearchFixture, DispatcherNeverExtendsBatch)
{
    const auto routed = route();
    const auto with = makeSim(true).simulate(routed);
    const auto without = makeSim(false).simulate(routed);
    // Merging early costs per-query merge time but the batch end may
    // only shrink or stay (no head-of-line penalty added).
    EXPECT_LE(with.batchSeconds,
              without.batchSeconds + with.queryReady.size() * 1e-3);
}

} // namespace
} // namespace vlr::core

#include "core/serving_api.h"

#include <stdexcept>

namespace vlr::core
{

const char *
dispositionName(Disposition d)
{
    switch (d) {
    case Disposition::kServed:
        return "served";
    case Disposition::kExpiredInQueue:
        return "expired";
    case Disposition::kRejected:
        return "rejected";
    }
    return "unknown";
}

void
EngineConfig::validate() const
{
    if (batching.maxBatch == 0)
        throw std::invalid_argument(
            "EngineConfig: batching.maxBatch must be >= 1");
    if (batching.timeoutSeconds < 0.0)
        throw std::invalid_argument(
            "EngineConfig: batching.timeoutSeconds must be >= 0");
    if (defaultK == 0)
        throw std::invalid_argument(
            "EngineConfig: defaultK must be >= 1");
    if (defaultNprobe == 0)
        throw std::invalid_argument(
            "EngineConfig: defaultNprobe must be >= 1");
    if (sloSearchSeconds <= 0.0)
        throw std::invalid_argument(
            "EngineConfig: sloSearchSeconds must be > 0");
    if (numHotShards == 0)
        throw std::invalid_argument(
            "EngineConfig: numHotShards must be >= 1");
    if (degrade.enable) {
        if (degrade.nprobeFloor == 0)
            throw std::invalid_argument(
                "EngineConfig: degrade.nprobeFloor must be >= 1");
        if (degrade.queuePressure < 1.0)
            throw std::invalid_argument(
                "EngineConfig: degrade.queuePressure must be >= 1");
    }
    if (tenants.enable) {
        if (batching.maxQueue == 0)
            throw std::invalid_argument(
                "EngineConfig: tenant admission needs a bounded queue "
                "(batching.maxQueue > 0 defines the shares)");
        if (tenants.defaultShare <= 0.0 || tenants.defaultShare > 1.0)
            throw std::invalid_argument(
                "EngineConfig: tenants.defaultShare must be in (0, 1]");
        for (std::size_t i = 0; i < tenants.shares.size(); ++i) {
            const TenantShare &s = tenants.shares[i];
            if (s.share <= 0.0 || s.share > 1.0)
                throw std::invalid_argument(
                    "EngineConfig: tenant share must be in (0, 1]");
            for (std::size_t j = i + 1; j < tenants.shares.size(); ++j)
                if (tenants.shares[j].tenant == s.tenant)
                    throw std::invalid_argument(
                        "EngineConfig: duplicate tenant share "
                        "override");
        }
    }
    if (autopilot.enable) {
        if (autopilot.controlIntervalSeconds < 0.0)
            throw std::invalid_argument(
                "EngineConfig: autopilot.controlIntervalSeconds must "
                "be >= 0");
        if (autopilot.queryReservoir < 16)
            throw std::invalid_argument(
                "EngineConfig: autopilot.queryReservoir must be >= 16");
        if (autopilot.countDecay < 0.0 || autopilot.countDecay > 1.0)
            throw std::invalid_argument(
                "EngineConfig: autopilot.countDecay must be in [0, 1]");
        if (autopilot.minRho < 0.0 || autopilot.maxRho > 1.0 ||
            autopilot.minRho > autopilot.maxRho)
            throw std::invalid_argument(
                "EngineConfig: autopilot rho clamp must satisfy 0 <= "
                "minRho <= maxRho <= 1");
        if (autopilot.maxBatchCap == 0)
            throw std::invalid_argument(
                "EngineConfig: autopilot.maxBatchCap must be >= 1");
        if (autopilot.maxShards == 0)
            throw std::invalid_argument(
                "EngineConfig: autopilot.maxShards must be >= 1");
    }
}

} // namespace vlr::core

#include "vecsearch/flat_index.h"

#include <cassert>

#include "common/threadpool.h"

namespace vlr::vs
{

FlatIndex::FlatIndex(std::size_t dim, Metric metric)
    : dim_(dim), metric_(metric)
{
    assert(dim > 0);
}

void
FlatIndex::add(std::span<const float> vecs, std::size_t n)
{
    assert(vecs.size() >= n * dim_);
    data_.insert(data_.end(), vecs.begin(), vecs.begin() + n * dim_);
    n_ += n;
}

std::vector<SearchHit>
FlatIndex::search(const float *query, std::size_t k) const
{
    TopK topk(k);
    for (std::size_t i = 0; i < n_; ++i) {
        const float dist =
            comparableDistance(metric_, query, data_.data() + i * dim_, dim_);
        topk.push(static_cast<idx_t>(i), dist);
    }
    return topk.sortedHits();
}

std::vector<std::vector<SearchHit>>
FlatIndex::searchBatch(std::span<const float> queries, std::size_t nq,
                       std::size_t k, ThreadPool *pool) const
{
    assert(queries.size() >= nq * dim_);
    std::vector<std::vector<SearchHit>> out(nq);
    auto worker = [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            out[i] = search(queries.data() + i * dim_, k);
    };
    if (pool)
        pool->parallelChunks(nq, worker);
    else
        worker(0, nq);
    return out;
}

const float *
FlatIndex::vectorData(idx_t id) const
{
    assert(id >= 0 && static_cast<std::size_t>(id) < n_);
    return data_.data() + static_cast<std::size_t>(id) * dim_;
}

} // namespace vlr::vs

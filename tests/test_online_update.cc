/**
 * @file
 * Tests for the adaptive runtime index update: drift detection and the
 * re-profile / re-partition / re-split cycle (Section IV-B3, Fig. 9).
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/online_update.h"
#include "vecsearch/ivf_pq_fastscan.h"
#include "vecsearch/kmeans.h"

namespace vlr::core
{
namespace
{

TEST(DriftMonitor, NoDriftWhenObservationsMatch)
{
    DriftMonitorParams params;
    params.windowRequests = 100;
    DriftMonitor mon(params, 0.6);
    for (int i = 0; i < 100; ++i)
        mon.record(0.6, true);
    EXPECT_TRUE(mon.windowFull());
    EXPECT_FALSE(mon.driftDetected());
}

TEST(DriftMonitor, DetectsHitRateDivergenceWithSloMisses)
{
    DriftMonitorParams params;
    params.windowRequests = 100;
    params.hitRateDivergence = 0.10;
    params.attainmentThreshold = 0.85;
    DriftMonitor mon(params, 0.6);
    for (int i = 0; i < 100; ++i)
        mon.record(0.3, i % 2 == 0); // attainment 0.5, hit rate 0.3
    EXPECT_TRUE(mon.driftDetected());
    EXPECT_NEAR(mon.observedHitRate(), 0.3, 1e-9);
    EXPECT_NEAR(mon.observedAttainment(), 0.5, 1e-9);
}

TEST(DriftMonitor, DivergenceAloneIsNotDrift)
{
    // Hit rate diverges but SLOs are still met: no update needed.
    DriftMonitorParams params;
    params.windowRequests = 50;
    DriftMonitor mon(params, 0.6);
    for (int i = 0; i < 50; ++i)
        mon.record(0.3, true);
    EXPECT_FALSE(mon.driftDetected());
}

TEST(DriftMonitor, MissesAloneAreNotDrift)
{
    // Attainment drops but hit rates match: the model is fine, load is
    // just too high - repartitioning would not help.
    DriftMonitorParams params;
    params.windowRequests = 50;
    DriftMonitor mon(params, 0.6);
    for (int i = 0; i < 50; ++i)
        mon.record(0.6, false);
    EXPECT_FALSE(mon.driftDetected());
}

TEST(DriftMonitor, ResetStartsNewWindow)
{
    DriftMonitorParams params;
    params.windowRequests = 10;
    DriftMonitor mon(params, 0.6);
    for (int i = 0; i < 10; ++i)
        mon.record(0.2, false);
    EXPECT_TRUE(mon.driftDetected());
    mon.reset(0.2);
    EXPECT_EQ(mon.windowCount(), 0u);
    EXPECT_FALSE(mon.driftDetected());
}

TEST(DriftMonitor, NotTriggeredBeforeWindowFills)
{
    DriftMonitorParams params;
    params.windowRequests = 1000;
    DriftMonitor mon(params, 0.6);
    for (int i = 0; i < 10; ++i)
        mon.record(0.0, false);
    EXPECT_FALSE(mon.driftDetected());
}

// --- Update timings (Fig. 9) -------------------------------------------

TEST(UpdateTimings, StagesArePositiveAndOrdered)
{
    DatasetContext ctx(wl::tinySpec());
    const auto t = estimateUpdateTimings(ctx, 0.3, 4, 5000, 2.0);
    EXPECT_GT(t.profilingSeconds, 0.0);
    EXPECT_GT(t.algorithmSeconds, 0.0);
    EXPECT_GT(t.splittingSeconds, 0.0);
    EXPECT_GT(t.loadingSeconds, 0.0);
    EXPECT_NEAR(t.total(),
                t.profilingSeconds + t.algorithmSeconds +
                    t.splittingSeconds + t.loadingSeconds,
                1e-12);
    // Paper Fig. 9: the full rebuild completes within a minute.
    EXPECT_LT(t.total(), 60.0);
}

TEST(UpdateTimings, MoreCoverageMoreSplitAndLoadTime)
{
    DatasetContext ctx(wl::tinySpec());
    const auto small = estimateUpdateTimings(ctx, 0.1, 4, 5000, 2.0);
    const auto large = estimateUpdateTimings(ctx, 0.8, 4, 5000, 2.0);
    EXPECT_GT(large.splittingSeconds, small.splittingSeconds);
    EXPECT_GT(large.loadingSeconds, small.loadingSeconds);
}

TEST(UpdateTimings, MoreProfileQueriesMoreProfilingTime)
{
    DatasetContext ctx(wl::tinySpec());
    const auto few = estimateUpdateTimings(ctx, 0.3, 4, 1000, 2.0);
    const auto many = estimateUpdateTimings(ctx, 0.3, 4, 50000, 2.0);
    EXPECT_GT(many.profilingSeconds, few.profilingSeconds);
}

// --- Full update cycle ---------------------------------------------------

TEST(UpdateCycle, RestoresHitRateAfterDrift)
{
    DatasetContext ctx(wl::tinySpec());
    wl::QueryGenerator gen(ctx.dataset(), 31);

    PartitionInputs inputs;
    inputs.sloSearchSeconds = 0.1;
    inputs.peakLlmThroughput = 20.0;
    inputs.kvBaselineBytes = 100e9;

    // Partition against the original distribution.
    LatencyBoundedPartitioner part(ctx.perfModel(), ctx.estimator(),
                                   ctx.profile());
    const auto before = part.partition(inputs);
    const auto hot_before = ctx.profile().hotBitmap(before.rho);

    // Heavy drift: the old hot set no longer matches the traffic.
    gen.drift(0.8);
    const auto drifted_plans = ctx.plansFor(gen, 400);
    double stale_mean = 0.0;
    for (const double r : drifted_plans.allHitRates(hot_before))
        stale_mean += r;
    stale_mean /= static_cast<double>(drifted_plans.size());

    // Run the update cycle: re-profile + re-partition + re-split.
    const auto outcome = runUpdateCycle(ctx, gen, inputs, 4);
    std::vector<bool> hot_after(ctx.profile().nlist(), false);
    for (const auto c : ctx.profile().hotClusters(outcome.partition.rho))
        hot_after[static_cast<std::size_t>(c)] = true;

    const auto fresh_plans = ctx.plansFor(gen, 400);
    double fresh_mean = 0.0;
    for (const double r : fresh_plans.allHitRates(hot_after))
        fresh_mean += r;
    fresh_mean /= static_cast<double>(fresh_plans.size());

    // The refreshed hot set must serve the drifted stream at least as
    // well as the stale one (almost always strictly better).
    EXPECT_GE(fresh_mean, stale_mean - 0.02);
    EXPECT_GT(outcome.timings.total(), 0.0);
    EXPECT_EQ(outcome.assignment.numShards(), 4u);
}

// --- Live updater expectation semantics --------------------------------

TEST(OnlineUpdaterExpectation, NoRebuildChurnAfterSwap)
{
    // Regression (ROADMAP "updater expectation semantics"): the
    // updater used to reset its expectation from
    // AccessProfile::meanWorkHitRate — a work-mass aggregate — while
    // record() observes per-query means, so a placement that matched
    // traffic perfectly could re-trigger rebuilds forever. The fixed
    // updater re-baselines on the first post-swap observations; steady
    // observations after a swap must cause no further rebuild.
    Rng rng(9);
    const std::size_t n = 2000, d = 8, nlist = 16, m = 4;
    std::vector<float> data(n * d);
    for (auto &x : data)
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
    vs::KMeansParams p;
    p.k = nlist;
    const auto km = vs::kmeansTrain(data, n, d, p);
    const auto cq = std::make_shared<vs::FlatCoarseQuantizer>(
        km.centroids, nlist, d);
    vs::IvfPqFastScanIndex index(cq, m);
    index.train(data, n);
    index.add(data, n);

    TieredIndex tiered(index, {});
    // Populate live access counters so the rebuild has a profile to
    // rank (drainAccessCounts feeds promote/demote).
    for (std::size_t i = 0; i < 64; ++i)
        tiered.search(data.data() + i * d, 5, 4);

    OnlineUpdater::Options uopts;
    uopts.drift.windowRequests = 8; // re-baseline window = 2
    uopts.drift.hitRateDivergence = 0.1;
    uopts.drift.attainmentThreshold = 0.85;
    uopts.rho = 0.25;
    OnlineUpdater updater(tiered, uopts, /*expected_hit_rate=*/0.9);

    // Observed per-query mean 0.5 with SLO misses: drift vs 0.9.
    for (int i = 0; i < 8 && updater.rebuildsCompleted() == 0; ++i)
        updater.record(0.5, false);
    updater.waitForRebuild();
    ASSERT_EQ(updater.rebuildsCompleted(), 1u);
    EXPECT_TRUE(updater.calibrating());

    // Post-swap observations hold steady at the same per-query mean:
    // the new placement serves exactly what it was built for, so no
    // second rebuild may launch (the meanWorkHitRate reset churned
    // here whenever the aggregate sat > divergence above the mean).
    for (int i = 0; i < 64; ++i)
        updater.record(0.5, false);
    updater.waitForRebuild();
    EXPECT_EQ(updater.rebuildsCompleted(), 1u);
    EXPECT_FALSE(updater.calibrating());
    EXPECT_NEAR(updater.expectedHitRate(), 0.5, 1e-9);
    EXPECT_EQ(tiered.stats().repartitions, 1u);

    // Genuine drift relative to the re-baselined expectation still
    // fires.
    for (int i = 0; i < 64 && updater.rebuildsCompleted() < 2; ++i)
        updater.record(0.1, false);
    updater.waitForRebuild();
    EXPECT_EQ(updater.rebuildsCompleted(), 2u);
}

TEST(UpdateCycle, AssignmentMatchesPartition)
{
    DatasetContext ctx(wl::tinySpec());
    wl::QueryGenerator gen(ctx.dataset(), 5);
    PartitionInputs inputs;
    inputs.sloSearchSeconds = 0.08;
    inputs.peakLlmThroughput = 25.0;
    inputs.kvBaselineBytes = 100e9;
    const auto outcome = runUpdateCycle(ctx, gen, inputs, 2);
    EXPECT_NEAR(outcome.assignment.rho, outcome.partition.rho, 1e-12);
    EXPECT_NEAR(outcome.assignment.totalGpuBytes(),
                ctx.profile().indexBytes(outcome.partition.rho),
                1e-6 * (1.0 + outcome.assignment.totalGpuBytes()));
}

} // namespace
} // namespace vlr::core

/**
 * @file
 * Tests for the tail-query hit-rate estimator (Section IV-A2, Eq. 2).
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/access_profile.h"
#include "core/hitrate_estimator.h"

namespace vlr::core
{
namespace
{

struct HitRateFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        ds_ = std::make_unique<wl::SyntheticDataset>(wl::tinySpec());
        ds_->buildStats();
        cq_ = ds_->makeCoarseQuantizer();
        wl::QueryGenerator gen(*ds_, 21);
        const std::size_t nq = 600;
        const auto queries = gen.generate(nq);
        std::vector<double> work(ds_->spec().numClusters);
        for (std::size_t c = 0; c < work.size(); ++c)
            work[c] = static_cast<double>(ds_->clusterSizes()[c]);
        plans_ = std::make_unique<wl::PlanSet>(wl::PlanSet::build(
            *cq_, queries, nq, ds_->spec().nprobe, work));
        profile_ = std::make_unique<AccessProfile>(
            AccessProfile::fromPlans(*plans_, *ds_));
        est_ = std::make_unique<HitRateEstimator>(*profile_, *plans_);
    }

    std::unique_ptr<wl::SyntheticDataset> ds_;
    std::shared_ptr<vs::FlatCoarseQuantizer> cq_;
    std::unique_ptr<wl::PlanSet> plans_;
    std::unique_ptr<AccessProfile> profile_;
    std::unique_ptr<HitRateEstimator> est_;
};

TEST_F(HitRateFixture, MeanHitRateMonotoneInCoverage)
{
    double prev = -1.0;
    for (double rho = 0.0; rho <= 1.0; rho += 0.05) {
        const double m = est_->meanHitRate(rho);
        EXPECT_GE(m, prev - 1e-9);
        EXPECT_GE(m, 0.0);
        EXPECT_LE(m, 1.0);
        prev = m;
    }
}

TEST_F(HitRateFixture, MeanHitRateEndpoints)
{
    EXPECT_NEAR(est_->meanHitRate(0.0), 0.0, 1e-6);
    EXPECT_NEAR(est_->meanHitRate(1.0), 1.0, 1e-6);
}

TEST_F(HitRateFixture, MeanMatchesEmpiricalPlanHitRates)
{
    for (double rho : {0.1, 0.3, 0.5}) {
        const auto rates = plans_->allHitRates(profile_->hotBitmap(rho));
        double mean = 0.0;
        for (double r : rates)
            mean += r;
        mean /= rates.size();
        EXPECT_NEAR(est_->meanHitRate(rho), mean, 0.02) << "rho " << rho;
    }
}

TEST_F(HitRateFixture, SigmaMaxPositive)
{
    EXPECT_GT(est_->sigmaMaxSq(), 0.0);
    EXPECT_LT(est_->sigmaMaxSq(), 0.25); // variance on [0,1] bounded
}

TEST_F(HitRateFixture, VarianceApproxIsParabola)
{
    const double s2 = est_->sigmaMaxSq();
    EXPECT_NEAR(est_->varianceApprox(0.5), s2, 1e-12);
    EXPECT_NEAR(est_->varianceApprox(0.0), 0.0, 1e-12);
    EXPECT_NEAR(est_->varianceApprox(1.0), 0.0, 1e-12);
    // Symmetric around 0.5.
    EXPECT_NEAR(est_->varianceApprox(0.3), est_->varianceApprox(0.7),
                1e-12);
}

TEST_F(HitRateFixture, VarianceApproxTracksEmpirical)
{
    // The parabola approximation should be within a factor ~2.5 of the
    // empirical variance in the mid-coverage range (paper Fig. 8 right).
    for (double rho : {0.15, 0.25, 0.4}) {
        const double mean = est_->meanHitRate(rho);
        if (mean < 0.15 || mean > 0.85)
            continue;
        const double approx = est_->varianceApprox(mean);
        const double emp = est_->empiricalVariance(rho);
        if (emp < 1e-6)
            continue;
        EXPECT_LT(approx / emp, 3.0) << "rho " << rho;
        EXPECT_GT(approx / emp, 0.3) << "rho " << rho;
    }
}

TEST_F(HitRateFixture, EtaMinBatchOneEqualsMean)
{
    for (double rho : {0.2, 0.5}) {
        EXPECT_NEAR(est_->etaMin(rho, 1), est_->meanHitRate(rho), 0.02)
            << "rho " << rho;
    }
}

TEST_F(HitRateFixture, EtaMinDecreasesWithBatch)
{
    const double rho = 0.3;
    double prev = est_->etaMin(rho, 1);
    for (std::size_t b : {2u, 4u, 8u, 16u}) {
        const double cur = est_->etaMin(rho, b);
        EXPECT_LE(cur, prev + 1e-9) << "batch " << b;
        prev = cur;
    }
}

TEST_F(HitRateFixture, EtaMinIncreasesWithCoverage)
{
    const std::size_t b = 8;
    double prev = -1.0;
    for (double rho = 0.05; rho <= 1.0; rho += 0.1) {
        const double cur = est_->etaMin(rho, b);
        EXPECT_GE(cur, prev - 0.01) << "rho " << rho;
        prev = cur;
    }
}

TEST_F(HitRateFixture, HitRate2CoverageInverts)
{
    const std::size_t b = 4;
    for (double rho : {0.25, 0.45, 0.65}) {
        const double eta = est_->etaMin(rho, b);
        const double back = est_->hitRate2Coverage(eta, b);
        // Inversion returns the smallest coverage achieving eta; it can
        // only be at or below the original rho (within grid tolerance).
        EXPECT_LE(back, rho + 0.02) << "rho " << rho;
        EXPECT_GE(est_->etaMin(back, b), eta - 0.02) << "rho " << rho;
    }
}

TEST_F(HitRateFixture, HitRate2CoverageUnreachableReturnsOne)
{
    EXPECT_DOUBLE_EQ(est_->hitRate2Coverage(1.1, 4), 1.0);
}

TEST_F(HitRateFixture, HitRate2CoverageTrivialTargetIsZero)
{
    EXPECT_NEAR(est_->hitRate2Coverage(-0.5, 4), 0.0, 1e-9);
}

TEST_F(HitRateFixture, GridsAreConsistent)
{
    const auto &rho = est_->gridCoverage();
    const auto &mean = est_->gridMean();
    const auto &var = est_->gridVariance();
    ASSERT_EQ(rho.size(), mean.size());
    ASSERT_EQ(rho.size(), var.size());
    for (std::size_t i = 1; i < rho.size(); ++i)
        EXPECT_GT(rho[i], rho[i - 1]);
}

} // namespace
} // namespace vlr::core

/**
 * @file
 * Ablation: adaptive vs capped retrieval batching (paper Section
 * VI-E1: "fixed or capped batch sizes lead to request backlogs and
 * performance degradation").
 *
 * Runs the same workload with the on-demand adaptive batch (cap 64,
 * effectively unconstrained) and with small hard caps; with a cap
 * below the arrival-rate-implied batch, the retrieval stage cannot
 * absorb bursts and queueing delay blows up.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout,
                "Ablation: adaptive vs capped retrieval batching");

    const auto spec = wl::orcas1kSpec();
    core::DatasetContext ctx(spec);
    const auto model = llm::qwen3_32b();

    bench::PeakCache peaks;
    auto base = bench::makeServingConfig(
        spec, model, core::RetrieverKind::VectorLite, 1.0);
    const double peak = peaks.peak(base);
    const double rate = 0.85 * peak;

    std::cout << "dataset: " << spec.name << ", model " << model.name
              << ", rate " << TextTable::num(rate, 1) << " req/s ("
              << TextTable::pct(0.85) << " of capacity)\n\n";

    TextTable t({"batch cap", "mean batch", "queueing (ms)",
                 "mean search (ms)", "SLO attain"});
    for (const std::size_t cap : {64ul, 8ul, 4ul, 2ul, 1ul}) {
        auto cfg = bench::makeServingConfig(
            spec, model, core::RetrieverKind::VectorLite, rate);
        cfg.peakThroughputHint = peak;
        cfg.batching.maxBatch = cap;
        const auto res = core::runServing(cfg, ctx);
        t.addRow({cap == 64 ? "adaptive (64)" : std::to_string(cap),
                  TextTable::num(res.meanRetrievalBatch, 1),
                  TextTable::num(res.meanQueueDelay * 1e3, 0),
                  TextTable::num(res.meanSearch * 1e3, 0),
                  TextTable::pct(res.attainment)});
    }
    t.print(std::cout);

    std::cout << "\npaper: adaptive batching absorbs higher arrival "
                 "rates by growing the batch while keeping service "
                 "time stable; capped batches back requests up in the "
                 "retrieval queue.\n";
    return 0;
}

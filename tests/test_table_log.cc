/**
 * @file
 * Tests for the text-table writer and the logging/error helpers.
 */

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/log.h"
#include "common/table.h"

namespace vlr
{
namespace
{

TEST(TextTable, PrintsHeadersAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, CsvIsCommaSeparated)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"1", "2", "3"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("a,b,c"), std::string::npos);
    EXPECT_NE(os.str().find("1,2,3"), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(10.0, 0), "10");
}

TEST(TextTable, PctFormatsPercent)
{
    const std::string p = TextTable::pct(0.5);
    EXPECT_NE(p.find("50"), std::string::npos);
    EXPECT_NE(p.find('%'), std::string::npos);
}

TEST(TextTable, ColumnAlignment)
{
    TextTable t({"x", "longheader"});
    t.addRow({"verylongcell", "1"});
    std::ostringstream os;
    t.print(os);
    // Both rows render and include the widest cell.
    EXPECT_NE(os.str().find("verylongcell"), std::string::npos);
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream os;
    printBanner(os, "Figure 5");
    EXPECT_NE(os.str().find("Figure 5"), std::string::npos);
}

// --- Logging ----------------------------------------------------------

TEST(Log, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("bad config"), std::runtime_error);
}

TEST(Log, FatalMessagePropagates)
{
    try {
        fatal("a specific message");
        FAIL() << "fatal() must throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("a specific message"),
                  std::string::npos);
    }
}

TEST(Log, LevelThresholdIsStored)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(before);
}

TEST(Log, ConcatBuildsMessage)
{
    EXPECT_EQ(detail::concat("x=", 3, ", y=", 1.5), "x=3, y=1.5");
}

} // namespace
} // namespace vlr

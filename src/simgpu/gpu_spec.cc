#include "simgpu/gpu_spec.h"

namespace vlr::gpu
{

GpuSpec
h100Spec()
{
    GpuSpec s;
    s.name = "H100-80GB";
    s.memBytes = 80_GiB;
    s.memBwBytesPerSec = 3.35e12;
    s.computeTflops = 989.0;
    s.mfu = 0.50;
    s.kernelLaunchSeconds = 150e-6;
    s.blockScheduleSeconds = 1.0e-6;
    s.searchBwEfficiency = 0.55;
    return s;
}

GpuSpec
l40sSpec()
{
    GpuSpec s;
    s.name = "L40S-48GB";
    s.memBytes = 48_GiB;
    s.memBwBytesPerSec = 864e9;
    s.computeTflops = 181.0;
    s.mfu = 0.65;
    s.kernelLaunchSeconds = 200e-6;
    s.blockScheduleSeconds = 1.4e-6;
    s.searchBwEfficiency = 0.5;
    return s;
}

CpuSpec
xeon8462Spec()
{
    CpuSpec s;
    s.name = "Xeon-8462Y+";
    s.cores = 64;
    s.memBwBytesPerSec = 300e9;
    return s;
}

CpuSpec
xeon6426Spec()
{
    CpuSpec s;
    s.name = "Xeon-6426Y";
    s.cores = 32;
    s.memBwBytesPerSec = 250e9;
    return s;
}

CpuSpec
xeonScaled(int cores)
{
    CpuSpec s = xeon8462Spec();
    s.cores = cores;
    // Cloud provisioning pairs memory bandwidth with core count.
    s.memBwBytesPerSec = 300e9 * static_cast<double>(cores) / 64.0;
    s.name = "Xeon-scaled-" + std::to_string(cores) + "c";
    return s;
}

} // namespace vlr::gpu

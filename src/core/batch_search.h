/**
 * @file
 * Timing simulation of one hybrid CPU-GPU batch search, including the
 * dynamic dispatcher (paper Section IV-B2).
 *
 * Timeline: coarse quantization on the CPU, then GPU shards scan their
 * resident probes concurrently with the CPU scanning the misses. The
 * CPU processes queries' clusters grouped by query in ascending miss-
 * work order, so low-miss queries complete early; with the dispatcher
 * enabled each query is merged and forwarded as soon as both its CPU
 * and GPU parts finish, otherwise everything waits for the batch end.
 */

#ifndef VLR_CORE_BATCH_SEARCH_H
#define VLR_CORE_BATCH_SEARCH_H

#include <vector>

#include "core/router.h"
#include "simgpu/search_cost.h"

namespace vlr::core
{

/** A GPU shard's busy window (offsets relative to batch start). */
struct GpuBusyRecord
{
    shard_id_t shard = 0;
    double startOffset = 0.0;
    double endOffset = 0.0;
    /** Compute occupancy this burst imposes (contention input). */
    double occupancy = 0.0;
};

/** Outcome of a simulated batch search. */
struct BatchSearchOutcome
{
    double cqSeconds = 0.0;
    /** Offset at which the whole batch is complete. */
    double batchSeconds = 0.0;
    /** Per-query ready offsets (== batchSeconds when no dispatcher). */
    std::vector<double> queryReady;
    std::vector<GpuBusyRecord> gpuBusy;
    double minHitRate = 0.0;
    double meanHitRate = 0.0;
};

class BatchSearchSimulator
{
  public:
    struct Options
    {
        /** Dynamic dispatcher on/off (Fig. 14 ablation). */
        bool dispatcher = true;
        /** Per-query merge + re-rank cost when dispatched. */
        double mergeSeconds = 0.3e-3;
        /** Dispatcher poll interval (half charged as mean delay). */
        double pollSeconds = 0.4e-3;
        /**
         * Cap on the compute occupancy retrieval kernels may impose on
         * a shared GPU (VectorLiteRAG deliberately limits its GPU
         * thread usage; the naive baselines do not).
         */
        double occupancyCap = 1.0;
        /** Paper-scale index bytes per scanned vector. */
        double bytesPerVector = 200.0;
        /** Paper-scale kernel blocks per simulated probe pair. */
        double pairScale = 128.0;
    };

    BatchSearchSimulator(gpu::CpuSearchModel cpu_model,
                         gpu::GpuSearchModel gpu_model, Options options);

    /** Simulate the routed batch; offsets are relative to batch start. */
    BatchSearchOutcome simulate(const RoutedBatch &batch) const;

    const Options &options() const { return options_; }
    const gpu::CpuSearchModel &cpuModel() const { return cpuModel_; }
    const gpu::GpuSearchModel &gpuModel() const { return gpuModel_; }

  private:
    gpu::CpuSearchModel cpuModel_;
    gpu::GpuSearchModel gpuModel_;
    Options options_;
};

} // namespace vlr::core

#endif // VLR_CORE_BATCH_SEARCH_H

#include "core/engine_runtime.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/online_update.h"

namespace vlr::core
{

namespace
{

double
secondsBetween(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

RetrievalEngine::RetrievalEngine(const vs::IvfPqFastScanIndex &index,
                                 EngineOptions options)
    : index_(index), options_(options), pool_(options.numSearchThreads)
{
    if (options_.batching.maxBatch == 0)
        options_.batching.maxBatch = 1;
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

RetrievalEngine::RetrievalEngine(const TieredIndex &index,
                                 EngineOptions options)
    : index_(index.source()), tiered_(&index), options_(options),
      pool_(options.numSearchThreads)
{
    if (options_.batching.maxBatch == 0)
        options_.batching.maxBatch = 1;
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

RetrievalEngine::RetrievalEngine(const vs::IvfPqFastScanIndex &index,
                                 const AccessProfile &profile, double rho,
                                 EngineOptions options)
    : index_(index),
      ownedTiered_(std::make_unique<TieredIndex>(
          index, profile, rho,
          TieredOptions{options.numHotShards,
                        options.shardBackendFactory})),
      tiered_(ownedTiered_.get()), options_(options),
      pool_(options.numSearchThreads)
{
    if (options_.batching.maxBatch == 0)
        options_.batching.maxBatch = 1;
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

RetrievalEngine::~RetrievalEngine()
{
    shutdown();
}

std::future<EngineQueryResult>
RetrievalEngine::submit(std::span<const float> query)
{
    const std::size_t d = index_.dim();
    assert(query.size() >= d);

    Pending p;
    p.query.assign(query.begin(), query.begin() + d);
    p.admitted = Clock::now();
    auto fut = p.promise.get_future();
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!accepting_)
            throw std::runtime_error(
                "RetrievalEngine: submit after shutdown");
        // Count before the dispatcher can see the query, so stats()
        // never observes completed > submitted. statsMutex_ nests
        // inside mutex_ only here; no path takes them reversed.
        {
            std::lock_guard<std::mutex> slk(statsMutex_);
            ++submitted_;
        }
        queue_.push_back(std::move(p));
    }
    cvDispatch_.notify_all();
    return fut;
}

void
RetrievalEngine::drain()
{
    std::unique_lock<std::mutex> lk(mutex_);
    flushing_ = true;
    cvDispatch_.notify_all();
    cvIdle_.wait(lk, [this] { return queue_.empty() && !batchInFlight_; });
    flushing_ = false;
    cvDispatch_.notify_all();
}

void
RetrievalEngine::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        accepting_ = false;
    }
    if (dispatcher_.joinable()) {
        drain();
        {
            std::lock_guard<std::mutex> lk(mutex_);
            stop_ = true;
        }
        cvDispatch_.notify_all();
        dispatcher_.join();
    }
}

bool
RetrievalEngine::accepting() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return accepting_;
}

std::size_t
RetrievalEngine::pendingQueries() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return queue_.size();
}

EngineStatsSnapshot
RetrievalEngine::stats() const
{
    std::lock_guard<std::mutex> lk(statsMutex_);
    EngineStatsSnapshot s;
    s.submitted = submitted_;
    s.completed = completed_;
    s.batches = batches_;
    s.meanBatchSize = batchSizes_.mean();
    const auto digest = [](const Reservoir &r) {
        SampleSet ss;
        ss.addAll(r.samples);
        return summarizeLatency(ss);
    };
    s.queueLatency = digest(queueSamples_);
    s.searchLatency = digest(searchSamples_);
    s.totalLatency = digest(totalSamples_);
    return s;
}

void
RetrievalEngine::dispatcherLoop()
{
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        cvDispatch_.wait(lk, [this] {
            return stop_ || flushing_ || !queue_.empty();
        });
        if (queue_.empty()) {
            if (stop_)
                return;
            // Drain requested with nothing queued: report idle, then
            // sleep until the flush flag clears or new work arrives
            // (avoids spinning on the outer predicate).
            cvIdle_.notify_all();
            cvDispatch_.wait(lk, [this] {
                return stop_ || !flushing_ || !queue_.empty();
            });
            continue;
        }

        // Batch formation (paper IV-B2): dispatch once the cap fills,
        // the oldest admitted query has waited out the timeout, or a
        // drain/stop forces the partial batch out.
        const auto deadline =
            queue_.front().admitted +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(
                    options_.batching.timeoutSeconds));
        while (!stop_ && !flushing_ &&
               queue_.size() < options_.batching.maxBatch) {
            if (cvDispatch_.wait_until(lk, deadline) ==
                std::cv_status::timeout)
                break;
        }

        const std::size_t take =
            std::min(queue_.size(), options_.batching.maxBatch);
        std::vector<Pending> batch;
        batch.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        batchInFlight_ = true;
        lk.unlock();
        executeBatch(std::move(batch));
        lk.lock();
        batchInFlight_ = false;
        cvIdle_.notify_all();
    }
}

void
RetrievalEngine::executeBatch(std::vector<Pending> batch)
{
    const std::size_t nq = batch.size();
    const std::size_t d = index_.dim();

    std::vector<float> queries(nq * d);
    for (std::size_t i = 0; i < nq; ++i)
        std::copy(batch[i].query.begin(), batch[i].query.end(),
                  queries.begin() + i * d);

    const auto t0 = Clock::now();
    TieredBatchStats tstats;
    std::vector<std::vector<vs::SearchHit>> results;
    if (tiered_)
        results = tiered_->searchBatchParallel(
            queries, nq, options_.k, options_.nprobe, pool_,
            updater_ ? &tstats : nullptr);
    else
        results = index_.searchBatchParallel(queries, nq, options_.k,
                                             options_.nprobe, pool_);
    const auto t1 = Clock::now();
    const double search_s = secondsBetween(t0, t1);

    if (tiered_ && updater_)
        updater_->record(tstats.meanHitRate,
                         search_s <= options_.sloSearchSeconds);

    {
        std::lock_guard<std::mutex> slk(statsMutex_);
        ++batches_;
        batchSizes_.add(static_cast<double>(nq));
        for (std::size_t i = 0; i < nq; ++i) {
            queueSamples_.add(secondsBetween(batch[i].admitted, t0),
                              statsRng_);
            searchSamples_.add(search_s, statsRng_);
            totalSamples_.add(secondsBetween(batch[i].admitted, t1),
                              statsRng_);
            ++completed_;
        }
    }

    for (std::size_t i = 0; i < nq; ++i) {
        EngineQueryResult r;
        r.hits = std::move(results[i]);
        r.queueSeconds = secondsBetween(batch[i].admitted, t0);
        r.searchSeconds = search_s;
        r.totalSeconds = secondsBetween(batch[i].admitted, t1);
        r.batchSize = nq;
        batch[i].promise.set_value(std::move(r));
    }
}

} // namespace vlr::core

/**
 * @file
 * Parametric hardware specifications for the simulated GPUs and host
 * CPUs. The paper's testbeds are 8x NVIDIA L40S + dual Xeon 6426Y and
 * 8x NVIDIA H100 + Xeon Platinum 8462Y; the presets below carry their
 * public datasheet numbers plus calibration factors (MFU, scan
 * efficiency) chosen so the simulated latencies land in the ranges the
 * paper reports (see EXPERIMENTS.md for the calibration notes).
 */

#ifndef VLR_SIMGPU_GPU_SPEC_H
#define VLR_SIMGPU_GPU_SPEC_H

#include <string>

#include "common/types.h"

namespace vlr::gpu
{

/** Static description of one GPU model. */
struct GpuSpec
{
    std::string name;
    /** Total device memory. */
    bytes_t memBytes = 0;
    /** HBM/GDDR bandwidth in bytes per second. */
    double memBwBytesPerSec = 0.0;
    /** Dense BF16 throughput in TFLOP/s. */
    double computeTflops = 0.0;
    /** Fraction of peak FLOPs LLM GEMMs achieve (model-flop utilization). */
    double mfu = 0.5;
    /** Fixed launch overhead charged per retrieval kernel batch. */
    double kernelLaunchSeconds = 200e-6;
    /**
     * Scheduling + shared-memory staging cost per (query, cluster) pair
     * in the IVF scan kernel. The paper's router prunes non-resident
     * probes precisely because this cost is paid per launched block
     * whether or not the cluster is resident (Section IV-B1).
     */
    double blockScheduleSeconds = 6e-6;
    /** Fraction of peak bandwidth the scan kernels achieve. */
    double searchBwEfficiency = 0.5;
    /** Fraction of memory reserved for runtime/activations. */
    double memReserveFraction = 0.08;
};

/** NVIDIA H100 SXM (80 GB HBM3). */
GpuSpec h100Spec();

/** NVIDIA L40S (48 GB GDDR6). */
GpuSpec l40sSpec();

/** Static description of the host CPU used for the CPU search tier. */
struct CpuSpec
{
    std::string name;
    int cores = 64;
    /** Effective GB/s of memory bandwidth for fast-scan streaming. */
    double memBwBytesPerSec = 200e9;
};

/** Dual Xeon 8462Y+ class host (64 cores), the paper's H100-node CPU. */
CpuSpec xeon8462Spec();

/** Xeon 6426Y class host (32 cores), the paper's L40S-node CPU. */
CpuSpec xeon6426Spec();

/** Same class of host scaled to an arbitrary core count (Fig. 17). */
CpuSpec xeonScaled(int cores);

} // namespace vlr::gpu

#endif // VLR_SIMGPU_GPU_SPEC_H

/**
 * @file
 * Tests for the int8 scalar quantizer.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vecsearch/metric.h"
#include "vecsearch/sq.h"

namespace vlr::vs
{
namespace
{

std::vector<float>
uniformData(Rng &rng, std::size_t n, std::size_t d, double lo, double hi)
{
    std::vector<float> data(n * d);
    for (auto &x : data)
        x = static_cast<float>(rng.uniform(lo, hi));
    return data;
}

TEST(Sq, TrainSetsFlag)
{
    Rng rng(1);
    const auto data = uniformData(rng, 100, 8, -1.0, 1.0);
    ScalarQuantizer sq(8);
    EXPECT_FALSE(sq.isTrained());
    sq.train(data, 100);
    EXPECT_TRUE(sq.isTrained());
    EXPECT_EQ(sq.codeSize(), 8u);
}

TEST(Sq, RoundTripErrorBoundedByStep)
{
    Rng rng(2);
    const auto data = uniformData(rng, 500, 16, -2.0, 3.0);
    ScalarQuantizer sq(16);
    sq.train(data, 500);

    std::vector<std::uint8_t> code(16);
    std::vector<float> rec(16);
    // Quantization step per dim is range/255; error <= step/2 + eps.
    const float step = 5.0f / 255.0f;
    for (std::size_t i = 0; i < 100; ++i) {
        sq.encode(data.data() + i * 16, code.data());
        sq.decode(code.data(), rec.data());
        for (std::size_t j = 0; j < 16; ++j)
            EXPECT_NEAR(rec[j], data[i * 16 + j], step);
    }
}

TEST(Sq, ExtremesMapToEndpoints)
{
    std::vector<float> data = {0.f, 10.f, 5.f, 5.f};
    ScalarQuantizer sq(2);
    sq.train(data, 2);
    std::vector<std::uint8_t> code(2);
    sq.encode(data.data(), code.data()); // (0, 10)
    EXPECT_EQ(code[0], 0);
    EXPECT_EQ(code[1], 255);
}

TEST(Sq, OutOfRangeValuesClamp)
{
    std::vector<float> data = {0.f, 0.f, 1.f, 1.f};
    ScalarQuantizer sq(2);
    sq.train(data, 2);
    const float wild[] = {-100.f, 100.f};
    std::vector<std::uint8_t> code(2);
    sq.encode(wild, code.data());
    EXPECT_EQ(code[0], 0);
    EXPECT_EQ(code[1], 255);
}

TEST(Sq, DistanceToCodeMatchesDecodedDistance)
{
    Rng rng(3);
    const auto data = uniformData(rng, 200, 8, -1.0, 1.0);
    ScalarQuantizer sq(8);
    sq.train(data, 200);

    const auto query = uniformData(rng, 1, 8, -1.0, 1.0);
    std::vector<std::uint8_t> code(8);
    std::vector<float> rec(8);
    for (std::size_t i = 0; i < 50; ++i) {
        sq.encode(data.data() + i * 8, code.data());
        sq.decode(code.data(), rec.data());
        const float expect = l2Sqr(query.data(), rec.data(), 8);
        EXPECT_NEAR(sq.distanceToCode(query.data(), code.data()), expect,
                    1e-4f * (1.f + expect));
    }
}

TEST(Sq, ReconstructionErrorSmallForUniformData)
{
    Rng rng(4);
    const auto data = uniformData(rng, 1000, 32, 0.0, 1.0);
    ScalarQuantizer sq(32);
    sq.train(data, 1000);
    // Uniform quantization error variance is step^2/12 per dim.
    const double step = 1.0 / 255.0;
    const double bound = 32.0 * step * step / 12.0 * 4.0; // 4x margin
    EXPECT_LT(sq.reconstructionError(data, 1000), bound);
}

TEST(Sq, ConstantDimensionHandled)
{
    // A dimension with zero range must not divide by zero.
    std::vector<float> data = {5.f, 1.f, 5.f, 2.f, 5.f, 3.f};
    ScalarQuantizer sq(2);
    sq.train(data, 3);
    std::vector<std::uint8_t> code(2);
    std::vector<float> rec(2);
    sq.encode(data.data(), code.data());
    sq.decode(code.data(), rec.data());
    EXPECT_NEAR(rec[0], 5.f, 1e-5f);
}

} // namespace
} // namespace vlr::vs

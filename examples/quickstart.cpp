/**
 * @file
 * Quickstart, in two halves mirroring the repo's split:
 *
 * 1-3 (analytic): build a Wiki-All-like workload, let VectorLiteRAG
 * pick a CPU/GPU partition for an 8x L40S + Llama3-8B node, and
 * compare the serving behaviour of CPU-only retrieval against
 * VectorLiteRAG at one arrival rate in the event-driven simulator.
 *
 * 4 (executable): take the simulator-chosen coverage rho to a *real*
 * reduced-scale IVF-PQ fast-scan index, split it into a hot/cold
 * TieredIndex whose hot tier is dealt across two shard backends, and
 * serve a skewed query stream through the concurrent RetrievalEngine —
 * printing measured latency percentiles, how much traffic the hot tier
 * absorbed, and how evenly the shards were loaded.
 *
 * 5 (persistence): save the trained index as an IndexStore artifact,
 * cold-start a second engine from disk with EngineBuilder::fromArtifact
 * — no retraining, answers bit-identical to part 4 — and serve the
 * cold tier from the memory-mapped artifact via storage::MmapColdTier.
 *
 * Run: ./examples/quickstart [--smoke]
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <iostream>
#include <vector>

#include "core/vectorliterag.h"
#include "storage/index_store.h"
#include "storage/mmap_cold_tier.h"

int
main(int argc, char **argv)
{
    using namespace vlr;

    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

    std::cout << "VectorLiteRAG quickstart"
              << (smoke ? " (smoke mode)" : "") << "\n"
              << "========================\n\n";

    // 1. Dataset + calibration. The context profiles query->cluster
    //    access patterns and fits the search latency model.
    core::DatasetContext ctx(wl::wikiAllSpec());
    std::cout << "dataset: " << ctx.spec().name << " ("
              << ctx.spec().paperVectors / 1e6 << "M vectors at paper "
              << "scale, index "
              << static_cast<double>(ctx.spec().paperIndexBytes) / 1e9
              << " GB)\n";

    const auto curve = ctx.profile().accessConcentration();
    std::cout << "access skew: top 20% of clusters receive "
              << TextTable::pct(evalConcentration(curve, 0.2))
              << " of probes\n\n";

    // 2. Serving configuration: Llama3-8B on 8 L40S GPUs (Table I SLO).
    core::ServingConfig cfg;
    cfg.llmConfig = llm::llama3_8b();
    cfg.gpuSpec = gpu::l40sSpec();
    cfg.cpuSpec = gpu::xeon6426Spec();
    cfg.numGpus = 8;
    cfg.arrivalRate = 28.0;
    cfg.durationSeconds = smoke ? 10.0 : 40.0;

    cfg.peakThroughputHint = core::measurePeak(cfg);
    std::cout << "standalone LLM peak throughput: "
              << TextTable::num(cfg.peakThroughputHint, 1) << " req/s\n\n";

    // 3. Run CPU-only vs VectorLiteRAG at the same arrival rate.
    double chosen_rho = 0.25;
    TextTable table({"system", "rho", "SLO attainment", "P90 TTFT (ms)",
                     "mean E2E (s)"});
    for (const auto kind :
         {core::RetrieverKind::CpuOnly, core::RetrieverKind::VectorLite}) {
        cfg.retriever = kind;
        const auto res = core::runServing(cfg, ctx);
        if (kind == core::RetrieverKind::VectorLite)
            chosen_rho = res.rho;
        table.addRow({res.system, TextTable::pct(res.rho),
                      TextTable::pct(res.attainment),
                      TextTable::num(res.p90Ttft * 1e3, 0),
                      TextTable::num(res.meanE2e, 2)});
    }
    table.print(std::cout);

    std::cout << "\nVectorLiteRAG places just enough hot clusters on the "
                 "GPUs to meet the\nretrieval SLO while leaving KV-cache "
                 "capacity for the LLM.\n\n";

    // 4. Executable path: apply the chosen coverage to a real (reduced
    //    scale) index and serve it through the concurrent engine.
    std::cout << "Live tiered engine (real searches, reduced scale)\n"
              << "-------------------------------------------------\n";
    wl::SyntheticDataset corpus(wl::tinySpec());
    corpus.buildVectors();
    const auto spec = corpus.spec();
    const auto cq = corpus.makeCoarseQuantizer();
    vs::IvfPqFastScanIndex index(cq, spec.dim / 4);
    index.train(corpus.vectors(), spec.numVectors);
    index.addPreassigned(corpus.vectors(), spec.numVectors,
                         corpus.assignments());

    // Calibrate access skew on a training stream, split at the
    // simulator-chosen rho, then serve a fresh test stream.
    wl::QueryGenerator gen(corpus, 99);
    const std::size_t n_cal = smoke ? 300 : 500;
    const std::size_t n_serve = smoke ? 300 : 1000;
    const std::size_t k = 10;
    const auto cal = gen.generate(n_cal);
    std::vector<double> work(spec.numClusters);
    for (std::size_t c = 0; c < spec.numClusters; ++c)
        work[c] = static_cast<double>(corpus.clusterSizes()[c]);
    const auto plans =
        wl::PlanSet::build(*cq, cal, n_cal, spec.nprobe, work);
    const auto profile = core::AccessProfile::fromPlans(plans, corpus);

    // The EngineBuilder composes everything in one chain: the engine
    // builds and owns a tiered index whose hot set is dealt across two
    // shard backends (in-memory fast-scan replicas standing in for two
    // GPU-resident shards) by IndexSplitter::split.
    const auto engine = core::EngineBuilder(index)
                            .tieredFromProfile(profile, chosen_rho)
                            .hotShards(2)
                            .defaultK(k)
                            .defaultNprobe(spec.nprobe)
                            .searchThreads(4)
                            .build();
    const core::TieredIndex &tiered = *engine->tiered();

    // Each query is a typed SearchRequest; defaults (k, nprobe) come
    // from the builder chain above, and the response's Disposition
    // says how the request left the engine.
    const auto queries = gen.generate(n_serve);
    std::vector<std::future<core::SearchResponse>> futures;
    futures.reserve(n_serve);
    for (std::size_t i = 0; i < n_serve; ++i) {
        core::SearchRequest request;
        request.query = std::span<const float>(
            queries.data() + i * spec.dim, spec.dim);
        request.tag = i;
        futures.push_back(engine->submit(request));
    }
    engine->drain();
    std::size_t served = 0;
    for (auto &f : futures)
        served += f.get().disposition == core::Disposition::kServed;

    const auto es = engine->stats();
    const auto ts = tiered.stats();
    std::cout << "served " << served << "/" << es.submitted
              << " queries (k=" << k
              << ", nprobe=" << spec.nprobe << ") at rho="
              << TextTable::pct(ts.rho) << ": " << ts.numHot << "/"
              << index.nlist() << " clusters hot across "
              << ts.numShards << " " << ts.backend << " shards\n"
              << "search p50/p99: "
              << TextTable::num(es.searchLatency.p50 * 1e3, 2) << " / "
              << TextTable::num(es.searchLatency.p99 * 1e3, 2)
              << " ms, mean batch "
              << TextTable::num(es.meanBatchSize, 1) << "\n"
              << "hot tier absorbed "
              << TextTable::pct(ts.meanHitRate)
              << " of scan work; "
              << TextTable::pct(
                     ts.queries == 0
                         ? 0.0
                         : static_cast<double>(ts.hotOnlyQueries) /
                               static_cast<double>(ts.queries))
              << " of queries never touched the cold tier\n"
              << "per-shard probes:";
    for (std::size_t s = 0; s < ts.shardProbeCounts.size(); ++s)
        std::cout << " shard" << s << "="
                  << ts.shardProbeCounts[s];
    std::cout << "\n";

    // 5. Cold start from disk: persist the trained index once, then
    //    bring up a fresh engine from the artifact — no retraining, no
    //    re-encoding — with the cold tier scanning the memory-mapped
    //    artifact instead of a heap-resident index.
    std::cout << "\nCold start from disk (IndexStore + mmap cold "
                 "tier)\n"
              << "--------------------------------------------------\n";
    const std::string artifact =
        (std::filesystem::temp_directory_path() / "quickstart.vlra")
            .string();
    const auto info = storage::IndexStore::save(artifact, index);
    std::cout << "saved " << artifact << ": "
              << static_cast<double>(info.fileBytes) / 1e6
              << " MB, format v" << info.formatVersion << "\n";

    storage::MmapColdTier cold(artifact);
    const auto restored = core::EngineBuilder::fromArtifact(artifact)
                              .tieredFromProfile(profile, chosen_rho)
                              .hotShards(2)
                              .coldTier(&cold)
                              .defaultK(k)
                              .defaultNprobe(spec.nprobe)
                              .searchThreads(4)
                              .build();

    // Same stream again; every answer must match part 4 exactly.
    std::vector<std::future<core::SearchResponse>> refutures;
    refutures.reserve(n_serve);
    for (std::size_t i = 0; i < n_serve; ++i) {
        core::SearchRequest request;
        request.query = std::span<const float>(
            queries.data() + i * spec.dim, spec.dim);
        refutures.push_back(restored->submit(request));
    }
    restored->drain();
    std::size_t identical = 0;
    for (std::size_t i = 0; i < n_serve; ++i)
        identical += refutures[i].get().hits ==
                     index.search(queries.data() + i * spec.dim, k,
                                  spec.nprobe);
    const auto rs = restored->tiered()->stats();
    std::cout << "restored engine answered " << identical << "/"
              << n_serve
              << " queries bit-identically to the in-memory index\n"
              << "cold tier '" << rs.coldBackend << "' served "
              << static_cast<double>(rs.coldBytes) / 1e6
              << " MB from the mapping ("
              << rs.coldResidentClusters
              << " clusters currently RAM-resident)\n";
    std::remove(artifact.c_str());
    return 0;
}

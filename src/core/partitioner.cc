#include "core/partitioner.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace vlr::core
{

LatencyBoundedPartitioner::LatencyBoundedPartitioner(
    const SearchPerfModel &perf, const HitRateEstimator &estimator,
    const AccessProfile &profile)
    : perf_(perf), estimator_(estimator), profile_(profile)
{
}

double
LatencyBoundedPartitioner::inferPartition(double tau_s, double mu) const
{
    mu = std::max(mu, 1e-3);

    // Round-up branch: larger batch, latency bound stays tau_s.
    const double b_up = std::max(1.0, std::ceil(tau_s * mu));
    const double eta1 = perf_.requiredEtaMin(b_up, tau_s);
    const double rho1 =
        eta1 <= 0.0 ? 0.0
                    : estimator_.hitRate2Coverage(
                          std::min(eta1, 1.0),
                          static_cast<std::size_t>(b_up));

    // Round-down branch: smaller batch, latency bound tightened to B/mu
    // so the throughput target is still met.
    const double b_dn = std::max(1.0, std::floor(tau_s * mu));
    const double tau_dn = std::min(tau_s, b_dn / mu);
    const double eta2 = perf_.requiredEtaMin(b_dn, tau_dn);
    const double rho2 =
        eta2 <= 0.0 ? 0.0
                    : estimator_.hitRate2Coverage(
                          std::min(eta2, 1.0),
                          static_cast<std::size_t>(b_dn));

    return std::min(rho1, rho2);
}

PartitionResult
LatencyBoundedPartitioner::partition(const PartitionInputs &in) const
{
    PartitionResult res;
    res.tauS = in.sloSearchSeconds / (1.0 + in.epsilon);

    double rho_low = 0.0;
    double rho_high = 1.0;
    double rho = 0.0;

    while (rho_high - rho_low > in.delta &&
           res.iterations < in.maxIterations) {
        const double rho_m = 0.5 * (rho_low + rho_high);

        // Throughput bound: linear KV interpolation (Algorithm 1 line
        // 5); conservative because the throughput-KV curve is convex.
        const double kv_left =
            std::max(0.0, in.kvBaselineBytes - profile_.indexBytes(rho_m));
        const double mu = in.kvBaselineBytes > 0.0
                              ? in.peakLlmThroughput * kv_left /
                                    in.kvBaselineBytes
                              : in.peakLlmThroughput;

        rho = inferPartition(res.tauS, mu);
        res.trace.push_back(rho);
        ++res.iterations;

        if (rho > rho_m)
            rho_low = rho;
        else
            rho_high = rho_m;
    }
    res.converged = rho_high - rho_low <= in.delta;

    res.rho = std::clamp(rho, 0.0, 1.0);
    res.indexBytes = profile_.indexBytes(res.rho);
    const double kv_left =
        std::max(0.0, in.kvBaselineBytes - res.indexBytes);
    res.throughputBound =
        in.kvBaselineBytes > 0.0
            ? in.peakLlmThroughput * kv_left / in.kvBaselineBytes
            : in.peakLlmThroughput;
    res.expectedBatch =
        std::max(1.0, std::ceil(res.tauS * res.throughputBound));
    res.expectedEtaMin = estimator_.etaMin(
        res.rho, static_cast<std::size_t>(res.expectedBatch));
    return res;
}

} // namespace vlr::core

/**
 * @file
 * Dynamic batching policy shared by the serving simulator and the real
 * retrieval engine (paper Section IV-B2): queries admitted to a queue
 * are dispatched as one batch when the batch cap fills or the oldest
 * admitted query has waited out the timeout.
 */

#ifndef VLR_CORE_BATCH_POLICY_H
#define VLR_CORE_BATCH_POLICY_H

#include <cstddef>

namespace vlr::core
{

struct BatchPolicy
{
    /** Maximum queries dispatched in one retrieval batch. */
    std::size_t maxBatch = 64;

    /**
     * Longest the oldest admitted query may wait before the partial
     * batch is dispatched anyway. The event-driven simulator batches
     * strictly on demand (whatever is pending when the previous batch
     * finishes), which corresponds to a timeout of zero.
     */
    double timeoutSeconds = 0.0;

    /**
     * Bounded-admission capacity: submissions arriving while this many
     * queries are already queued resolve Disposition::kRejected
     * instead of growing the queue without bound. 0 disables the bound
     * (legacy behaviour; the simulator always queues).
     */
    std::size_t maxQueue = 0;
};

} // namespace vlr::core

#endif // VLR_CORE_BATCH_POLICY_H

#include "workload/dataset.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/log.h"

namespace vlr::wl
{

DatasetSpec
wikiAllSpec()
{
    DatasetSpec s;
    s.name = "Wiki-All";
    s.numVectors = 60000;
    s.dim = 48;
    s.numClusters = 512;
    s.clusterSizeZipf = 0.45;
    s.queryZipf = 0.70;
    s.nprobe = 16;
    s.seed = 101;
    s.paperVectors = 88e6;
    s.paperIndexBytes = 18_GiB;
    s.sloSearchSeconds = 0.150;
    s.cpuParams.cqFixedSeconds = 0.012;
    s.cpuParams.cqPerQuerySeconds = 0.0010;
    s.cpuParams.lutFixedSeconds = 0.085;
    s.cpuParams.lutPerQuerySeconds = 0.0060;
    return s;
}

DatasetSpec
orcas1kSpec()
{
    DatasetSpec s;
    s.name = "ORCAS-1K";
    s.numVectors = 70000;
    s.dim = 56;
    s.numClusters = 512;
    s.clusterSizeZipf = 0.75;
    s.queryZipf = 2.1;
    s.nprobe = 16;
    s.seed = 202;
    s.paperVectors = 120e6;
    s.paperIndexBytes = 40_GiB;
    s.sloSearchSeconds = 0.200;
    s.cpuParams.cqFixedSeconds = 0.016;
    s.cpuParams.cqPerQuerySeconds = 0.0012;
    s.cpuParams.lutFixedSeconds = 0.125;
    s.cpuParams.lutPerQuerySeconds = 0.0090;
    return s;
}

DatasetSpec
orcas2kSpec()
{
    DatasetSpec s;
    s.name = "ORCAS-2K";
    s.numVectors = 70000;
    s.dim = 64;
    s.numClusters = 512;
    s.clusterSizeZipf = 0.75;
    s.queryZipf = 2.1;
    s.nprobe = 16;
    s.seed = 303;
    s.paperVectors = 120e6;
    s.paperIndexBytes = 80_GiB;
    s.sloSearchSeconds = 0.300;
    s.cpuParams.cqFixedSeconds = 0.020;
    s.cpuParams.cqPerQuerySeconds = 0.0015;
    s.cpuParams.lutFixedSeconds = 0.185;
    s.cpuParams.lutPerQuerySeconds = 0.0140;
    return s;
}

DatasetSpec
tinySpec()
{
    DatasetSpec s;
    s.name = "tiny";
    s.numVectors = 4000;
    s.dim = 16;
    s.numClusters = 64;
    s.clusterSizeZipf = 0.6;
    s.queryZipf = 0.9;
    s.nprobe = 8;
    s.seed = 11;
    s.paperVectors = 4e6;
    s.paperIndexBytes = 1_GiB;
    s.sloSearchSeconds = 0.100;
    return s;
}

DatasetSpec
specByName(const std::string &name)
{
    if (name == "wiki-all")
        return wikiAllSpec();
    if (name == "orcas-1k")
        return orcas1kSpec();
    if (name == "orcas-2k")
        return orcas2kSpec();
    if (name == "tiny")
        return tinySpec();
    fatal("unknown dataset spec: " + name);
}

SyntheticDataset::SyntheticDataset(DatasetSpec spec)
    : spec_(std::move(spec))
{
}

void
SyntheticDataset::buildStats()
{
    if (statsBuilt_)
        return;
    Rng rng(spec_.seed);

    // Cluster centers: isotropic Gaussian placement.
    centers_.resize(spec_.numClusters * spec_.dim);
    for (auto &v : centers_)
        v = static_cast<float>(rng.gaussian(0.0, spec_.centerScale));

    // Cluster sizes: Zipf shares over a random permutation so size rank
    // is uncorrelated with cluster id.
    ZipfSampler size_law(spec_.numClusters, spec_.clusterSizeZipf);
    std::vector<std::size_t> perm(spec_.numClusters);
    std::iota(perm.begin(), perm.end(), 0);
    rng.shuffle(perm);

    clusterSizes_.assign(spec_.numClusters, 0);
    std::size_t assigned = 0;
    for (std::size_t rank = 0; rank < spec_.numClusters; ++rank) {
        const auto share = size_law.pmf(rank);
        const auto sz = static_cast<std::size_t>(
            share * static_cast<double>(spec_.numVectors));
        clusterSizes_[perm[rank]] = sz;
        assigned += sz;
    }
    // Distribute rounding remainder one vector at a time.
    std::size_t c = 0;
    while (assigned < spec_.numVectors) {
        ++clusterSizes_[c % spec_.numClusters];
        ++assigned;
        ++c;
    }
    statsBuilt_ = true;
}

void
SyntheticDataset::buildVectors()
{
    if (vectorsBuilt_)
        return;
    buildStats();
    Rng rng(spec_.seed ^ 0xDA7A5E7ULL);

    vectors_.resize(spec_.numVectors * spec_.dim);
    assignments_.resize(spec_.numVectors);
    std::size_t out = 0;
    for (std::size_t c = 0; c < spec_.numClusters; ++c) {
        const float *center = centers_.data() + c * spec_.dim;
        for (std::size_t i = 0; i < clusterSizes_[c]; ++i) {
            float *v = vectors_.data() + out * spec_.dim;
            for (std::size_t j = 0; j < spec_.dim; ++j) {
                v[j] = center[j] + static_cast<float>(rng.gaussian(
                                       0.0, spec_.withinClusterStd));
            }
            assignments_[out] = static_cast<std::int32_t>(c);
            ++out;
        }
    }
    assert(out == spec_.numVectors);
    vectorsBuilt_ = true;
}

std::span<const float>
SyntheticDataset::centers() const
{
    assert(statsBuilt_);
    return centers_;
}

const std::vector<std::size_t> &
SyntheticDataset::clusterSizes() const
{
    assert(statsBuilt_);
    return clusterSizes_;
}

double
SyntheticDataset::clusterBytes(cluster_id_t c) const
{
    assert(statsBuilt_);
    assert(c >= 0 && static_cast<std::size_t>(c) < clusterSizes_.size());
    return static_cast<double>(clusterSizes_[static_cast<std::size_t>(c)]) *
           spec_.bytesPerSimVector();
}

std::span<const float>
SyntheticDataset::vectors() const
{
    assert(vectorsBuilt_);
    return vectors_;
}

const std::vector<std::int32_t> &
SyntheticDataset::assignments() const
{
    assert(vectorsBuilt_);
    return assignments_;
}

std::shared_ptr<vs::FlatCoarseQuantizer>
SyntheticDataset::makeCoarseQuantizer() const
{
    assert(statsBuilt_);
    return std::make_shared<vs::FlatCoarseQuantizer>(
        centers_, spec_.numClusters, spec_.dim);
}

QueryGenerator::QueryGenerator(const SyntheticDataset &dataset,
                               std::uint64_t seed)
    : dataset_(dataset), rng_(seed),
      zipf_(dataset.spec().numClusters, dataset.spec().queryZipf),
      order_(dataset.spec().numClusters)
{
    assert(dataset.hasStats());
    std::iota(order_.begin(), order_.end(), 0);
    // Bias popularity toward larger clusters: sort by size descending
    // with random tie-breaks, matching the paper's observation that
    // k-means imbalance itself concentrates traffic (Section III-B).
    const auto &sizes = dataset_.clusterSizes();
    std::vector<std::uint64_t> salt(order_.size());
    for (auto &s : salt)
        s = rng_.nextU64();
    std::sort(order_.begin(), order_.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (sizes[a] != sizes[b])
                      return sizes[a] > sizes[b];
                  return salt[a] < salt[b];
              });
}

std::vector<float>
QueryGenerator::generate(std::size_t n)
{
    const auto &spec = dataset_.spec();
    std::vector<float> out(n * spec.dim);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t rank = zipf_.sample(rng_);
        const std::uint32_t c = order_[rank];
        const float *center = dataset_.centers().data() + c * spec.dim;
        float *q = out.data() + i * spec.dim;
        for (std::size_t j = 0; j < spec.dim; ++j) {
            q[j] = center[j] +
                   static_cast<float>(rng_.gaussian(0.0, spec.queryStd));
        }
    }
    return out;
}

void
QueryGenerator::drift(double fraction)
{
    fraction = std::clamp(fraction, 0.0, 1.0);
    const auto n = static_cast<std::size_t>(
        fraction * static_cast<double>(order_.size()));
    if (n < 2)
        return;
    // Rotate the top-n popularity ranks: previously-cold clusters
    // become hot, which is the drift the online updater must absorb.
    std::vector<std::uint32_t> head(order_.begin(), order_.begin() + n);
    std::rotate(head.begin(), head.begin() + n / 2, head.end());
    std::copy(head.begin(), head.end(), order_.begin());
}

const std::vector<std::uint32_t> &
QueryGenerator::popularityOrder() const
{
    return order_;
}

} // namespace vlr::wl

/**
 * @file
 * Epoch-based memory reclamation for the lock-free read path.
 *
 * The serving hot path must pin an immutable snapshot (the tiered
 * index's current hot/cold placement) without taking a mutex or
 * bouncing a shared reference count between reader cores. EpochManager
 * implements the classic three-actor epoch scheme:
 *
 *  - readers wrap each access in an EpochGuard: the guard announces
 *    the current global epoch in a per-thread slot (a single
 *    uncontended store + fence), loads the shared pointer with one
 *    acquire load, and clears the slot on exit;
 *  - writers publish a replacement object with an atomic pointer swap
 *    and retire() the old one, which advances the global epoch and
 *    parks the object in a limbo list tagged with the pre-advance
 *    epoch;
 *  - reclamation frees a retired object only once every announced
 *    reader epoch is strictly newer than the object's retirement
 *    epoch, i.e. no thread that could still hold the old pointer is
 *    inside a guard.
 *
 * The announce protocol re-checks the global epoch after a seq_cst
 * fence and re-announces until it observes a stable value (the
 * crossbeam/folly recipe): this closes the race where a reader
 * announces epoch e, stalls, and a concurrent retire-plus-scan misses
 * the announcement — after the fence the reader is guaranteed to see
 * any epoch advance that a successful scan could have ordered before
 * it, and re-announcing the newer epoch forces its subsequent pointer
 * load to observe the new object.
 *
 * Guards nest (inner guards are free), retire() and tryReclaim() are
 * mutex-protected — they run on the repartition control path, never on
 * the per-query read path — and the destructor frees everything still
 * in limbo. Threads register a slot per manager on first use; slots of
 * exited threads stay quiescent and cost one load per scan.
 *
 * PerThread<T> is the underlying per-instance, per-thread slot
 * registry, exposed because the statistics sharding in TieredIndex
 * uses the same pattern: local() returns this thread's slot (creating
 * and registering it on first use), forEach() visits every slot ever
 * created for the instance. Slots are owned by the PerThread instance;
 * the thread-local index maps manager ids (never reused) to slots, so
 * a stale cache entry for a destroyed instance can never be looked up
 * again.
 */

#ifndef VLR_CORE_EPOCH_H
#define VLR_CORE_EPOCH_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace vlr::core
{

/**
 * Per-instance, per-thread slot registry: each thread gets one lazily
 * created T per PerThread instance, and the owner can iterate every
 * slot. The slot lookup after registration is a scan of a small
 * thread-local vector (one entry per PerThread instance this thread
 * has touched) — no lock, no shared-cache-line traffic. Registration
 * and iteration serialize on an internal mutex.
 *
 * T must be constructible by the factory passed at construction (or
 * default-constructible with the default factory). Slots live until
 * the PerThread instance is destroyed; they are never reclaimed when a
 * thread exits, so forEach() also covers threads that have finished.
 */
template <typename T> class PerThread
{
  public:
    PerThread() : PerThread([] { return std::make_unique<T>(); }) {}

    explicit PerThread(std::function<std::unique_ptr<T>()> factory)
        : id_(nextId().fetch_add(1, std::memory_order_relaxed)),
          factory_(std::move(factory))
    {
    }

    PerThread(const PerThread &) = delete;
    PerThread &operator=(const PerThread &) = delete;

    /** This thread's slot, created and registered on first use. */
    T &
    local()
    {
        struct Entry
        {
            std::uint64_t id;
            T *slot;
        };
        static thread_local std::vector<Entry> cache;
        for (const Entry &e : cache)
            if (e.id == id_)
                return *e.slot;
        auto owned = factory_();
        T *slot = owned.get();
        {
            std::lock_guard<std::mutex> lk(mutex_);
            slots_.push_back(std::move(owned));
        }
        cache.push_back({id_, slot});
        return *slot;
    }

    /** Visit every slot ever created for this instance (serialized
     *  with registration; concurrent local() calls on other threads
     *  may add slots that this pass does not see). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        for (const auto &slot : slots_)
            fn(*slot);
    }

    /** Slots created so far (registered threads). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mutex_);
        return slots_.size();
    }

  private:
    static std::atomic<std::uint64_t> &
    nextId()
    {
        static std::atomic<std::uint64_t> counter{1};
        return counter;
    }

    std::uint64_t id_;
    std::function<std::unique_ptr<T>()> factory_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<T>> slots_;
};

/**
 * Epoch-based reclamation domain. One manager guards one family of
 * snapshot objects (e.g. a TieredIndex's placement generations).
 *
 * Reader protocol (hot path, no locks):
 * @code
 *   EpochGuard g(epochs_);
 *   const Tiers *t = tiers_.load(std::memory_order_acquire);
 *   ... use *t for the whole guarded section ...
 * @endcode
 *
 * Writer protocol (control path):
 * @code
 *   const Tiers *old = tiers_.exchange(next, std::memory_order_acq_rel);
 *   epochs_.retire(old);   // freed once every reader moves past it
 * @endcode
 *
 * A guard held by one thread also covers helper threads whose access
 * is bracketed by the guard's lifetime (fork/join fan-out: the owner
 * enters the guard, distributes the pointer, and exits only after
 * every helper finished) — the snapshot cannot be retired-and-freed
 * while the owning guard is active.
 */
class EpochManager
{
  public:
    EpochManager() : slots_([] { return std::make_unique<Slot>(); }) {}

    /** Frees everything still in limbo. No guard may be active. */
    ~EpochManager()
    {
        for (const Retired &r : limbo_)
            r.del(r.p);
    }

    EpochManager(const EpochManager &) = delete;
    EpochManager &operator=(const EpochManager &) = delete;

    /** Enter a guarded section (use EpochGuard, not this directly).
     *  Nested enters on the same thread are counted and free. */
    void
    enter()
    {
        Slot &s = slots_.local();
        if (s.nesting++ > 0)
            return;
        std::uint64_t e = global_.load(std::memory_order_acquire);
        for (;;) {
            // Release (not relaxed) so a reclaimer that acquire-reads
            // this announcement sees everything the thread did in its
            // *previous* guarded section — the edge race detectors
            // need, since they do not model the fence below.
            s.epoch.store(e, std::memory_order_release);
            std::atomic_thread_fence(std::memory_order_seq_cst);
            const std::uint64_t g =
                global_.load(std::memory_order_acquire);
            if (g == e)
                break;
            e = g; // the epoch moved past our announcement; re-announce
        }
    }

    /** Leave a guarded section; the outermost exit goes quiescent. */
    void
    exit()
    {
        Slot &s = slots_.local();
        if (--s.nesting > 0)
            return;
        s.epoch.store(kQuiescent, std::memory_order_release);
    }

    /**
     * Hand @p p to the reclamation domain after unlinking it from the
     * shared structure: advances the global epoch, parks the object
     * tagged with the pre-advance epoch and opportunistically reclaims
     * whatever has become unreachable. Not for the read hot path.
     */
    template <typename T>
    void
    retire(const T *p)
    {
        retire(const_cast<T *>(p),
               [](void *q) { delete static_cast<T *>(q); });
    }

    /** Type-erased retire; @p del frees @p p when safe. */
    void
    retire(void *p, void (*del)(void *))
    {
        const std::uint64_t epoch =
            global_.fetch_add(1, std::memory_order_acq_rel);
        {
            std::lock_guard<std::mutex> lk(limboMutex_);
            limbo_.push_back({p, del, epoch});
        }
        tryReclaim();
    }

    /**
     * Free every retired object whose epoch every active reader has
     * moved past. Called by retire(); callable directly to drain limbo
     * (e.g. in tests or teardown paths). @return objects freed.
     */
    std::size_t
    tryReclaim()
    {
        std::vector<Retired> free_now;
        {
            std::lock_guard<std::mutex> lk(limboMutex_);
            if (limbo_.empty())
                return 0;
            std::atomic_thread_fence(std::memory_order_seq_cst);
            std::uint64_t min_active =
                std::numeric_limits<std::uint64_t>::max();
            slots_.forEach([&min_active](const Slot &s) {
                const std::uint64_t e =
                    s.epoch.load(std::memory_order_acquire);
                if (e != kQuiescent)
                    min_active = std::min(min_active, e);
            });
            // An object retired at epoch R is unreachable once every
            // active announcement is > R: such readers entered after
            // the epoch advance, hence after the unlink.
            std::size_t kept = 0;
            for (Retired &r : limbo_) {
                if (r.epoch < min_active)
                    free_now.push_back(r);
                else
                    limbo_[kept++] = r;
            }
            limbo_.resize(kept);
        }
        for (const Retired &r : free_now)
            r.del(r.p);
        return free_now.size();
    }

    /** Retired objects still awaiting reclamation. */
    std::size_t
    limboSize() const
    {
        std::lock_guard<std::mutex> lk(limboMutex_);
        return limbo_.size();
    }

    /** Current global epoch (monotonic; diagnostic). */
    std::uint64_t
    currentEpoch() const
    {
        return global_.load(std::memory_order_acquire);
    }

  private:
    static constexpr std::uint64_t kQuiescent = 0;

    /** One reader thread's announcement. Only `epoch` is shared (the
     *  reclaimer scans it); `nesting` is owner-thread state. Aligned
     *  out of false sharing with other threads' slots. */
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> epoch{kQuiescent};
        std::uint32_t nesting = 0;
    };

    struct Retired
    {
        void *p;
        void (*del)(void *);
        std::uint64_t epoch;
    };

    std::atomic<std::uint64_t> global_{1};
    PerThread<Slot> slots_;
    mutable std::mutex limboMutex_;
    std::vector<Retired> limbo_;
};

/** RAII reader pin: enter on construction, exit on destruction. */
class EpochGuard
{
  public:
    explicit EpochGuard(EpochManager &mgr) : mgr_(mgr) { mgr_.enter(); }
    ~EpochGuard() { mgr_.exit(); }

    EpochGuard(const EpochGuard &) = delete;
    EpochGuard &operator=(const EpochGuard &) = delete;

  private:
    EpochManager &mgr_;
};

} // namespace vlr::core

#endif // VLR_CORE_EPOCH_H

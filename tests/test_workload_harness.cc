/**
 * @file
 * Tests for the multi-tenant replayable workload harness: deterministic
 * trace generation (same script + seed is the identical trace, per
 * tenant streams independent of each other), binary save/load
 * round-trips, script and TenantPolicy validation, deterministic
 * per-tenant served counts across engine runs, weighted-admission
 * isolation under a sustained one-tenant flood (demonstrably failing
 * with isolation off), and the per-tenant-counts-sum-to-globals
 * invariant under concurrent submit/drain (exercised under the CI
 * sanitizer configs).
 */

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "core/shard_backend.h"
#include "workload/tenant.h"

namespace vlr::wl
{
namespace
{

/** Small stats-only dataset: enough for trace generation. */
struct WorkloadHarnessFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        spec_ = tinySpec();
        spec_.numVectors = 3000;
        spec_.dim = 16;
        spec_.numClusters = 24;
        spec_.nprobe = 8;
        dataset_ = std::make_unique<SyntheticDataset>(spec_);
        dataset_->buildStats();
    }

    /** Two-tenant script exercising diurnal, burst and flip paths. */
    WorkloadScript
    makeScript() const
    {
        WorkloadScript script;
        script.horizonSeconds = 0.5;
        TenantSpec a;
        a.name = "a";
        a.tenant = 1;
        a.arrivalRate = 400.0;
        a.zipfTheta = 1.2;
        a.k = 5;
        a.nprobe = 4;
        a.deadlineSeconds = 0.02;
        a.priority = 2;
        script.tenants.push_back(a);
        TenantSpec b;
        b.name = "b";
        b.tenant = 2;
        b.arrivalRate = 300.0;
        b.diurnalAmplitude = 0.5;
        b.diurnalPeriodSeconds = 0.5;
        b.burstFactor = 4.0;
        b.burstStartSeconds = 0.2;
        b.burstEndSeconds = 0.3;
        b.zipfTheta = 0.8;
        b.hotspotFlipSeconds = {0.25};
        b.k = 10;
        script.tenants.push_back(b);
        return script;
    }

    DatasetSpec spec_;
    std::unique_ptr<SyntheticDataset> dataset_;
};

TEST_F(WorkloadHarnessFixture, GenerateIsDeterministic)
{
    const auto script = makeScript();
    const auto t1 = WorkloadTrace::generate(script, *dataset_, 7);
    const auto t2 = WorkloadTrace::generate(script, *dataset_, 7);
    EXPECT_TRUE(t1 == t2);
    EXPECT_GT(t1.size(), 0u);
    EXPECT_EQ(t1.dim(), spec_.dim);
    EXPECT_GT(t1.countForTenant(1), 0u);
    EXPECT_GT(t1.countForTenant(2), 0u);
    EXPECT_EQ(t1.countForTenant(1) + t1.countForTenant(2), t1.size());

    // A different seed must not reproduce the trace.
    const auto t3 = WorkloadTrace::generate(script, *dataset_, 8);
    EXPECT_FALSE(t1 == t3);

    // Time-ordered within the horizon, SLO class stamped per tenant.
    double prev = 0.0;
    for (std::size_t i = 0; i < t1.size(); ++i) {
        const ScriptedRequest &r = t1.requests()[i];
        EXPECT_GE(r.atSeconds, prev);
        EXPECT_LT(r.atSeconds, script.horizonSeconds);
        prev = r.atSeconds;
        const TenantSpec &spec =
            script.tenants[r.tenant == 1 ? 0 : 1];
        EXPECT_EQ(r.k, spec.k);
        EXPECT_EQ(r.nprobe, spec.nprobe);
        EXPECT_EQ(r.deadlineSeconds, spec.deadlineSeconds);
        EXPECT_EQ(r.priority, spec.priority);
        EXPECT_EQ(r.query.size(), spec_.dim);
    }
}

TEST_F(WorkloadHarnessFixture, TenantStreamsAreIndependent)
{
    // Adding a tenant to the script must not perturb an existing
    // tenant's requests (each tenant draws from its own id-keyed
    // stream).
    auto script = makeScript();
    WorkloadScript solo;
    solo.horizonSeconds = script.horizonSeconds;
    solo.tenants = {script.tenants[0]};
    const auto both = WorkloadTrace::generate(script, *dataset_, 7);
    const auto alone = WorkloadTrace::generate(solo, *dataset_, 7);

    std::vector<ScriptedRequest> of_a;
    for (const ScriptedRequest &r : both.requests())
        if (r.tenant == 1)
            of_a.push_back(r);
    ASSERT_EQ(of_a.size(), alone.size());
    for (std::size_t i = 0; i < of_a.size(); ++i)
        EXPECT_TRUE(of_a[i] == alone.requests()[i]);
}

TEST_F(WorkloadHarnessFixture, SaveLoadRoundTripsExactly)
{
    const auto trace =
        WorkloadTrace::generate(makeScript(), *dataset_, 42);
    std::stringstream ss(std::ios::in | std::ios::out |
                         std::ios::binary);
    trace.save(ss);
    const auto reloaded = WorkloadTrace::load(ss);
    EXPECT_TRUE(trace == reloaded);

    // request(i) exposes the reloaded entries unchanged.
    const core::SearchRequest req = reloaded.request(0);
    EXPECT_EQ(req.tag, reloaded.requests()[0].tenant);
    EXPECT_EQ(req.k, reloaded.requests()[0].k);
    EXPECT_EQ(req.query.size(), reloaded.dim());

    // Malformed streams are rejected, not misread.
    std::stringstream garbage("definitely not a trace");
    EXPECT_THROW(WorkloadTrace::load(garbage), std::runtime_error);
    std::string bytes = ss.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes, std::ios::in | std::ios::binary);
    EXPECT_THROW(WorkloadTrace::load(truncated), std::runtime_error);
}

TEST_F(WorkloadHarnessFixture, ScriptValidationRejectsBadSpecs)
{
    auto script = makeScript();
    script.tenants[1].tenant = script.tenants[0].tenant;
    EXPECT_THROW(WorkloadTrace::generate(script, *dataset_, 1),
                 std::invalid_argument);

    script = makeScript();
    script.horizonSeconds = 0.0;
    EXPECT_THROW(script.validate(), std::invalid_argument);

    script = makeScript();
    script.tenants[0].arrivalRate = 0.0;
    EXPECT_THROW(script.validate(), std::invalid_argument);

    script = makeScript();
    script.tenants[1].hotspotFlipSeconds = {0.3, 0.1};
    EXPECT_THROW(script.validate(), std::invalid_argument);

    script = makeScript();
    script.tenants[1].burstFactor = 0.5;
    EXPECT_THROW(script.validate(), std::invalid_argument);

    script = makeScript();
    script.tenants[0].diurnalAmplitude = 1.5;
    EXPECT_THROW(script.validate(), std::invalid_argument);
}

// --- Engine-side tests -----------------------------------------------

/** Adds a trained fast-scan index over the generated corpus. */
struct TenantEngineFixture : public WorkloadHarnessFixture
{
    void
    SetUp() override
    {
        WorkloadHarnessFixture::SetUp();
        dataset_->buildVectors();
        cq_ = dataset_->makeCoarseQuantizer();
        index_ = std::make_unique<vs::IvfPqFastScanIndex>(cq_,
                                                          spec_.dim / 4);
        index_->train(dataset_->vectors(), spec_.numVectors);
        index_->addPreassigned(dataset_->vectors(), spec_.numVectors,
                               dataset_->assignments());
        QueryGenerator gen(*dataset_, 5);
        queries_ = gen.generate(nq_);
    }

    std::span<const float>
    query(std::size_t i) const
    {
        return {queries_.data() + (i % nq_) * spec_.dim, spec_.dim};
    }

    /** Skewed access profile over the index's clusters. */
    core::AccessProfile
    makeProfile() const
    {
        const std::size_t nlist = spec_.numClusters;
        std::vector<double> counts(nlist), work(nlist), bytes(nlist);
        for (std::size_t c = 0; c < nlist; ++c) {
            const auto id = static_cast<cluster_id_t>(c);
            counts[c] = static_cast<double>(nlist - c);
            work[c] = static_cast<double>(index_->listSize(id));
            bytes[c] = static_cast<double>(index_->listBytes(id));
        }
        return core::AccessProfile(std::move(counts), std::move(work),
                                   std::move(bytes));
    }

    const std::size_t nq_ = 64;
    std::vector<float> queries_;
    std::shared_ptr<vs::FlatCoarseQuantizer> cq_;
    std::unique_ptr<vs::IvfPqFastScanIndex> index_;
};

TEST_F(TenantEngineFixture, ReplayServedCountsAreDeterministic)
{
    // Replaying the identical trace on two fresh engines (deadlines
    // off, queue ample) serves every request and yields identical
    // per-tenant served counts both times.
    auto script = makeScript();
    for (TenantSpec &t : script.tenants)
        t.deadlineSeconds = 0.0;
    const auto trace = WorkloadTrace::generate(script, *dataset_, 11);
    ASSERT_GT(trace.size(), 0u);

    core::TenantPolicy tenants;
    tenants.enable = true;
    const auto run = [&] {
        const auto engine = core::EngineBuilder(*index_)
                                .defaultK(10)
                                .defaultNprobe(spec_.nprobe)
                                .searchThreads(2)
                                .batching({.maxBatch = 16,
                                           .timeoutSeconds = 5e-4})
                                .admissionQueueBound(4096)
                                .tenantIsolation(tenants)
                                .build();
        std::vector<std::future<core::SearchResponse>> futures;
        for (std::size_t i = 0; i < trace.size(); ++i)
            futures.push_back(engine->submit(trace.request(i)));
        engine->drain();
        for (auto &f : futures)
            EXPECT_EQ(f.get().disposition, core::Disposition::kServed);
        return engine->stats();
    };

    const auto s1 = run();
    const auto s2 = run();
    ASSERT_EQ(s1.tenants.size(), 2u);
    ASSERT_EQ(s2.tenants.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        const auto &t1 = s1.tenants[i];
        const auto &t2 = s2.tenants[i];
        EXPECT_EQ(t1.tenant, t2.tenant);
        EXPECT_EQ(t1.served, t2.served);
        EXPECT_EQ(t1.served, trace.countForTenant(t1.tenant));
        EXPECT_EQ(t1.expired, 0u);
        EXPECT_EQ(t1.rejected, 0u);
    }
}

TEST_F(TenantEngineFixture, WeightedAdmissionPreventsStarvation)
{
    // Tenant 1 floods a slow (throttled-backend) engine far beyond
    // its drain rate; tenant 2 submits a modest paced stream. With
    // weighted admission the flood saturates only its own queue share
    // and tenant 2 is admitted; without it the flood holds the whole
    // bounded queue and tenant 2 is starved at admission — priority
    // cannot help a request that is never admitted.
    const auto profile = makeProfile();
    constexpr std::size_t kQueue = 16;
    constexpr std::size_t kVictim = 30;

    const auto victim_miss_rate = [&](bool isolated) {
        core::TenantPolicy tenants;
        tenants.enable = true;
        tenants.defaultShare = isolated ? 0.5 : 1.0;
        const auto engine =
            core::EngineBuilder(*index_)
                .tieredFromProfile(profile, 1.0)
                .hotShards(1)
                .shardBackend(core::throttledShardFactory(2e-3))
                .defaultK(5)
                .defaultNprobe(4)
                .searchThreads(1)
                .batching({.maxBatch = 4, .timeoutSeconds = 5e-4})
                .admissionQueueBound(kQueue)
                .tenantIsolation(tenants)
                .build();

        std::atomic<bool> stop{false};
        std::vector<std::future<core::SearchResponse>> flood;
        std::thread flooder([&] {
            std::size_t i = 0;
            while (!stop.load()) {
                core::SearchRequest r;
                r.query = query(i++);
                r.tag = 1;
                flood.push_back(engine->submit(r));
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            }
        });

        // Let the flood reach its admission bound before the victim
        // starts (8 queued when isolated, the full queue when not).
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(5);
        while (engine->pendingForTenant(1) < kQueue / 2 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));

        std::vector<std::future<core::SearchResponse>> victim;
        for (std::size_t i = 0; i < kVictim; ++i) {
            core::SearchRequest r;
            r.query = query(i);
            r.tag = 2;
            r.priority = 2;
            victim.push_back(engine->submit(r));
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        stop.store(true);
        flooder.join();
        engine->drain();

        std::size_t rejected = 0;
        for (auto &f : victim)
            if (f.get().disposition == core::Disposition::kRejected)
                ++rejected;
        for (auto &f : flood)
            f.get();
        return static_cast<double>(rejected) /
               static_cast<double>(kVictim);
    };

    EXPECT_LE(victim_miss_rate(true), 0.1);
    EXPECT_GE(victim_miss_rate(false), 0.4);
}

TEST_F(TenantEngineFixture, TenantCountsSumToGlobalsUnderConcurrency)
{
    // Four tenants hammer a small-queue engine from their own threads
    // (mixed deadlines force all three dispositions) while the main
    // thread snapshots stats mid-flight: in EVERY snapshot the
    // per-tenant disposition counts must sum exactly to the global
    // totals, and at the end each tenant's resolutions must sum to
    // its submissions.
    constexpr std::size_t kTenants = 4;
    constexpr std::size_t kPerTenant = 300;

    core::TenantPolicy tenants;
    tenants.enable = true;
    tenants.defaultShare = 0.6;
    const auto engine = core::EngineBuilder(*index_)
                            .defaultK(5)
                            .defaultNprobe(4)
                            .searchThreads(2)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 2e-4})
                            .admissionQueueBound(8)
                            .tenantIsolation(tenants)
                            .build();

    const auto check_sums = [](const core::EngineStatsSnapshot &s) {
        std::size_t submitted = 0, served = 0, expired = 0,
                    rejected = 0, degraded = 0;
        for (const auto &t : s.tenants) {
            submitted += t.submitted;
            served += t.served;
            expired += t.expired;
            rejected += t.rejected;
            degraded += t.degradedServed;
        }
        EXPECT_EQ(submitted, s.submitted);
        EXPECT_EQ(served, s.served);
        EXPECT_EQ(expired, s.expired);
        EXPECT_EQ(rejected, s.rejected);
        EXPECT_EQ(degraded, s.degradedServed);
    };

    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kTenants; ++t)
        workers.emplace_back([&, t] {
            std::vector<std::future<core::SearchResponse>> futures;
            for (std::size_t i = 0; i < kPerTenant; ++i) {
                core::SearchRequest r;
                r.query = query(i);
                r.tag = t + 1;
                // Every third request gets a deadline tight enough to
                // expire in a backed-up queue.
                if (i % 3 == 0)
                    r.deadlineSeconds = 1e-4;
                futures.push_back(engine->submit(r));
            }
            for (auto &f : futures)
                f.get();
        });

    for (std::size_t i = 0; i < 50; ++i) {
        check_sums(engine->stats());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (std::thread &w : workers)
        w.join();
    engine->drain();

    const auto s = engine->stats();
    check_sums(s);
    EXPECT_EQ(s.submitted, kTenants * kPerTenant);
    ASSERT_EQ(s.tenants.size(), kTenants);
    for (const auto &t : s.tenants) {
        EXPECT_EQ(t.submitted, kPerTenant);
        EXPECT_EQ(t.served + t.expired + t.rejected, t.submitted);
    }
}

TEST_F(TenantEngineFixture, TenantPolicyValidation)
{
    core::TenantPolicy tenants;
    tenants.enable = true;

    // Weighted admission requires a bounded queue.
    EXPECT_THROW(core::EngineBuilder(*index_)
                     .tenantIsolation(tenants)
                     .build(),
                 std::invalid_argument);

    tenants.defaultShare = 0.0;
    EXPECT_THROW(core::EngineBuilder(*index_)
                     .admissionQueueBound(16)
                     .tenantIsolation(tenants)
                     .build(),
                 std::invalid_argument);

    tenants.defaultShare = 0.5;
    tenants.shares = {{1, 1.5}};
    EXPECT_THROW(core::EngineBuilder(*index_)
                     .admissionQueueBound(16)
                     .tenantIsolation(tenants)
                     .build(),
                 std::invalid_argument);

    tenants.shares = {{1, 0.5}, {1, 0.25}};
    EXPECT_THROW(core::EngineBuilder(*index_)
                     .admissionQueueBound(16)
                     .tenantIsolation(tenants)
                     .build(),
                 std::invalid_argument);

    // A valid policy builds; disabled policies need no bounded queue.
    tenants.shares = {{1, 0.5}};
    EXPECT_NO_THROW(core::EngineBuilder(*index_)
                        .admissionQueueBound(16)
                        .tenantIsolation(tenants)
                        .build());
    tenants.enable = false;
    EXPECT_NO_THROW(
        core::EngineBuilder(*index_).tenantIsolation(tenants).build());
}

} // namespace
} // namespace vlr::wl

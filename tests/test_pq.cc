/**
 * @file
 * Tests for the product quantizer: training, encode/decode round trips,
 * ADC lookup-table distances and reconstruction error.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vecsearch/metric.h"
#include "vecsearch/pq.h"

namespace vlr::vs
{
namespace
{

std::vector<float>
gaussianData(Rng &rng, std::size_t n, std::size_t d)
{
    std::vector<float> data(n * d);
    for (auto &x : data)
        x = static_cast<float>(rng.gaussian(0.0, 1.0));
    return data;
}

TEST(Pq, ConstructionValidatesDimensions)
{
    ProductQuantizer pq(32, 4, 8);
    EXPECT_EQ(pq.dim(), 32u);
    EXPECT_EQ(pq.numSub(), 4u);
    EXPECT_EQ(pq.dsub(), 8u);
    EXPECT_EQ(pq.ksub(), 256u);
    EXPECT_EQ(pq.codeSize(), 4u);
    EXPECT_EQ(pq.lutSize(), 4u * 256u);
    EXPECT_FALSE(pq.isTrained());
}

TEST(Pq, FourBitKsub)
{
    ProductQuantizer pq(16, 4, 4);
    EXPECT_EQ(pq.ksub(), 16u);
}

TEST(Pq, TrainSetsTrainedFlag)
{
    Rng rng(1);
    const auto data = gaussianData(rng, 500, 16);
    ProductQuantizer pq(16, 4, 4);
    pq.train(data, 500);
    EXPECT_TRUE(pq.isTrained());
}

TEST(Pq, CodesAreWithinRange)
{
    Rng rng(2);
    const auto data = gaussianData(rng, 400, 16);
    ProductQuantizer pq(16, 4, 4);
    pq.train(data, 400);
    const auto codes = pq.encodeBatch(data, 400);
    ASSERT_EQ(codes.size(), 400u * 4u);
    for (auto c : codes)
        EXPECT_LT(c, 16);
}

TEST(Pq, DecodeReconstructsApproximately)
{
    Rng rng(3);
    const auto data = gaussianData(rng, 2000, 16);
    ProductQuantizer pq(16, 8, 8);
    pq.train(data, 2000);

    std::vector<std::uint8_t> code(pq.codeSize());
    std::vector<float> rec(16);
    double mse = 0.0;
    for (std::size_t i = 0; i < 100; ++i) {
        pq.encode(data.data() + i * 16, code.data());
        pq.decode(code.data(), rec.data());
        mse += l2Sqr(data.data() + i * 16, rec.data(), 16);
    }
    mse /= 100;
    // Unit Gaussian has E||x||^2 = 16; 8x256 codebooks should cut the
    // error well below half of that.
    EXPECT_LT(mse, 8.0);
}

TEST(Pq, ReconstructionErrorMatchesManualMse)
{
    Rng rng(4);
    const auto data = gaussianData(rng, 300, 8);
    ProductQuantizer pq(8, 4, 4);
    pq.train(data, 300);

    std::vector<std::uint8_t> code(pq.codeSize());
    std::vector<float> rec(8);
    double mse = 0.0;
    for (std::size_t i = 0; i < 300; ++i) {
        pq.encode(data.data() + i * 8, code.data());
        pq.decode(code.data(), rec.data());
        mse += l2Sqr(data.data() + i * 8, rec.data(), 8);
    }
    mse /= 300;
    EXPECT_NEAR(pq.reconstructionError(data, 300), mse, 1e-6);
}

TEST(Pq, MoreSubquantizersReduceError)
{
    Rng rng(5);
    const auto data = gaussianData(rng, 1500, 32);
    ProductQuantizer coarse(32, 2, 8);
    ProductQuantizer fine(32, 8, 8);
    coarse.train(data, 1500);
    fine.train(data, 1500);
    EXPECT_LT(fine.reconstructionError(data, 1500),
              coarse.reconstructionError(data, 1500));
}

TEST(Pq, AdcDistanceEqualsLutSum)
{
    Rng rng(6);
    const auto data = gaussianData(rng, 500, 16);
    ProductQuantizer pq(16, 4, 4);
    pq.train(data, 500);

    const auto query = gaussianData(rng, 1, 16);
    std::vector<float> lut(pq.lutSize());
    pq.computeLut(query.data(), lut.data());

    std::vector<std::uint8_t> code(pq.codeSize());
    pq.encode(data.data(), code.data());

    float manual = 0.f;
    for (std::size_t m = 0; m < pq.numSub(); ++m)
        manual += lut[m * pq.ksub() + code[m]];
    EXPECT_NEAR(pq.adcDistance(lut.data(), code.data()), manual, 1e-5f);
}

TEST(Pq, LutEntriesAreSubspaceDistances)
{
    Rng rng(7);
    const auto data = gaussianData(rng, 400, 8);
    ProductQuantizer pq(8, 2, 4);
    pq.train(data, 400);

    const auto query = gaussianData(rng, 1, 8);
    std::vector<float> lut(pq.lutSize());
    pq.computeLut(query.data(), lut.data());

    for (std::size_t m = 0; m < 2; ++m) {
        const auto cb = pq.codebook(m);
        for (std::size_t j = 0; j < pq.ksub(); ++j) {
            const float expect =
                l2Sqr(query.data() + m * pq.dsub(),
                      cb.data() + j * pq.dsub(), pq.dsub());
            EXPECT_NEAR(lut[m * pq.ksub() + j], expect, 1e-5f);
        }
    }
}

TEST(Pq, AdcApproximatesTrueDistance)
{
    Rng rng(8);
    const auto data = gaussianData(rng, 3000, 16);
    ProductQuantizer pq(16, 8, 8);
    pq.train(data, 3000);

    const auto query = gaussianData(rng, 1, 16);
    std::vector<float> lut(pq.lutSize());
    pq.computeLut(query.data(), lut.data());

    std::vector<std::uint8_t> code(pq.codeSize());
    std::vector<float> rec(16);
    double err = 0.0, scale = 0.0;
    for (std::size_t i = 0; i < 200; ++i) {
        pq.encode(data.data() + i * 16, code.data());
        pq.decode(code.data(), rec.data());
        const float adc = pq.adcDistance(lut.data(), code.data());
        const float reconstructed = l2Sqr(query.data(), rec.data(), 16);
        // ADC distance equals the query-to-reconstruction distance.
        err += std::abs(adc - reconstructed);
        scale += reconstructed;
    }
    EXPECT_LT(err / scale, 0.01);
}

TEST(Pq, EncodePicksNearestCodeword)
{
    Rng rng(9);
    const auto data = gaussianData(rng, 600, 8);
    ProductQuantizer pq(8, 2, 4);
    pq.train(data, 600);

    std::vector<std::uint8_t> code(2);
    for (std::size_t i = 0; i < 50; ++i) {
        const float *x = data.data() + i * 8;
        pq.encode(x, code.data());
        for (std::size_t m = 0; m < 2; ++m) {
            const auto cb = pq.codebook(m);
            float best = 1e30f;
            std::uint8_t bestj = 0;
            for (std::size_t j = 0; j < pq.ksub(); ++j) {
                const float dd = l2Sqr(x + m * 4, cb.data() + j * 4, 4);
                if (dd < best) {
                    best = dd;
                    bestj = static_cast<std::uint8_t>(j);
                }
            }
            EXPECT_EQ(code[m], bestj);
        }
    }
}

TEST(Pq, EncodeBatchMatchesSingle)
{
    Rng rng(10);
    const auto data = gaussianData(rng, 100, 16);
    ProductQuantizer pq(16, 4, 4);
    pq.train(data, 100);
    const auto batch = pq.encodeBatch(data, 100);
    std::vector<std::uint8_t> single(4);
    for (std::size_t i = 0; i < 100; ++i) {
        pq.encode(data.data() + i * 16, single.data());
        for (std::size_t m = 0; m < 4; ++m)
            EXPECT_EQ(batch[i * 4 + m], single[m]);
    }
}

/** Reconstruction error shrinks as bits per sub-quantizer grow. */
class PqBitsTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PqBitsTest, TrainedErrorIsBoundedByVariance)
{
    const std::size_t nbits = GetParam();
    Rng rng(20 + nbits);
    const auto data = gaussianData(rng, 1000, 16);
    ProductQuantizer pq(16, 4, nbits);
    pq.train(data, 1000);
    // Quantizing cannot be worse than the raw variance (16 for unit
    // Gaussians), and must recover a meaningful fraction of it.
    EXPECT_LT(pq.reconstructionError(data, 1000), 16.0);
}

INSTANTIATE_TEST_SUITE_P(BitSweep, PqBitsTest, ::testing::Values(4, 8));

} // namespace
} // namespace vlr::vs

/**
 * @file
 * Figure 17 reproduction: robustness to hardware capacity. Following
 * the cloud provisioning policy of scaling CPU cores with GPU count,
 * evaluate 4 GPUs + 32 cores, 6 GPUs + 48 cores and 8 GPUs + 64 cores
 * with Qwen3-32B on the ORCAS 2K index; the CPU search latency is
 * re-profiled and the partitioning re-run per configuration.
 *
 * Expected shape: vLiteRAG sustains the SLO in every configuration,
 * with the compliant throughput scaling roughly with GPU count, while
 * ALL-GPU's decoding latency balloons at reduced memory capacity.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout, "Figure 17: robustness to hardware capacity");

    const auto spec = wl::orcas2kSpec();
    const auto model = llm::qwen3_32b();
    bench::PeakCache peaks;

    for (const int gpus : {4, 6, 8}) {
        const int cores = gpus * 8;
        // Re-profile CPU search for this host size (the context's cost
        // model scales with the core count).
        core::DatasetContext::Options opts;
        opts.cpuSpec = gpu::xeonScaled(cores);
        core::DatasetContext ctx(spec, opts);

        auto base = bench::makeServingConfig(
            spec, model, core::RetrieverKind::CpuOnly, 1.0);
        base.numGpus = gpus;
        base.cpuSpec = gpu::xeonScaled(cores);
        const double peak = peaks.peak(base);
        const auto rates = bench::sweepRates(peak, 5, 1.15);

        std::cout << "\n=== " << gpus << " GPUs + " << cores
                  << " cores (capacity " << TextTable::num(peak, 1)
                  << " req/s) ===\n";
        TextTable t({"system", "rate (r/s)", "SLO attain",
                     "mean E2E (s)"});
        for (const auto kind :
             {core::RetrieverKind::CpuOnly, core::RetrieverKind::AllGpu,
              core::RetrieverKind::VectorLite}) {
            for (const double rate : rates) {
                auto cfg =
                    bench::makeServingConfig(spec, model, kind, rate);
                cfg.numGpus = gpus;
                cfg.cpuSpec = gpu::xeonScaled(cores);
                cfg.peakThroughputHint = peak;
                const auto res = core::runServing(cfg, ctx);
                t.addRow({res.system, TextTable::num(rate, 1),
                          TextTable::pct(res.attainment),
                          TextTable::num(res.meanE2e, 2)});
            }
        }
        t.print(std::cout);
    }

    std::cout << "\npaper: vLiteRAG sustains the target SLO across all "
                 "configurations, extending compliant throughput "
                 "roughly in proportion to GPU count and containing "
                 "the decode-latency growth the GPU baseline suffers "
                 "at reduced memory capacity.\n";
    return 0;
}

/**
 * @file
 * Ablation: the router's probe pruning (paper Section IV-B1).
 *
 * At identical placements, compare VectorLiteRAG's pruned routing
 * against Faiss IndexIVFShards semantics (every shard receives the
 * full nprobe per query and pays block-scheduling cost for clusters it
 * does not hold): launched (query, cluster) pairs, GPU shard busy
 * time, and the resulting batch search latency.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout,
                "Ablation: router probe pruning vs IndexIVFShards");

    const auto spec = wl::orcas1kSpec();
    core::DatasetContext ctx(spec);
    const int num_shards = 8;

    TextTable t({"coverage", "routing", "pairs/query", "GPU busy (ms)",
                 "batch latency (ms)"});
    for (const double rho : {0.1, 0.3, 1.0}) {
        const auto assignment =
            core::IndexSplitter::split(ctx.profile(), rho, num_shards);

        for (const bool prune : {true, false}) {
            core::Router router(assignment, prune);
            core::BatchSearchSimulator::Options opts;
            opts.bytesPerVector = ctx.bytesPerVector();
            opts.pairScale =
                static_cast<double>(spec.paperNprobe) /
                static_cast<double>(spec.nprobe);
            core::BatchSearchSimulator sim(
                ctx.cpuModel(), gpu::GpuSearchModel(gpu::h100Spec()),
                opts);

            double pairs = 0.0, busy = 0.0, latency = 0.0;
            const std::size_t batch = 8, num_batches = 50;
            std::size_t next = 0, queries = 0;
            for (std::size_t b = 0; b < num_batches; ++b) {
                std::vector<const wl::QueryPlan *> plans;
                for (std::size_t i = 0; i < batch; ++i)
                    plans.push_back(&ctx.testPlans().plan(
                        next++ % ctx.testPlans().size()));
                const auto routed = router.route(plans);
                for (const auto &s : routed.shards)
                    pairs += static_cast<double>(s.pairs);
                const auto out = sim.simulate(routed);
                for (const auto &g : out.gpuBusy)
                    busy += g.endOffset - g.startOffset;
                latency += out.batchSeconds;
                queries += batch;
            }
            t.addRow({TextTable::pct(rho),
                      prune ? "pruned (vLiteRAG)" : "IndexIVFShards",
                      TextTable::num(pairs / queries, 1),
                      TextTable::num(busy / num_batches * 1e3, 2),
                      TextTable::num(latency / num_batches * 1e3, 1)});
        }
    }
    t.print(std::cout);

    std::cout << "\npaper: unpruned sharding launches nprobe blocks per "
                 "query on every shard regardless of residency, paying "
                 "scheduling bandwidth and shared memory for skipped "
                 "work; pruning launches only resident pairs.\n";
    return 0;
}

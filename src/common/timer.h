/**
 * @file
 * Wall-clock timer for the real (non-simulated) microbenchmarks.
 */

#ifndef VLR_COMMON_TIMER_H
#define VLR_COMMON_TIMER_H

#include <chrono>

namespace vlr
{

/** Monotonic stopwatch measuring elapsed seconds. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    void reset() { start_ = clock::now(); }

    /** Seconds elapsed since construction or last reset(). */
    double
    elapsed() const
    {
        const auto d = clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

    /** Milliseconds elapsed. */
    double elapsedMs() const { return elapsed() * 1e3; }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace vlr

#endif // VLR_COMMON_TIMER_H

#include "llmsim/model_config.h"

#include "common/log.h"

namespace vlr::llm
{

LlmConfig
llama3_8b()
{
    LlmConfig c;
    c.name = "Llama3-8B";
    c.paramCount = 8.0e9;
    c.activeParamCount = 8.0e9;
    c.numLayers = 32;
    c.numKvHeads = 8;
    c.headDim = 128;
    c.tensorParallel = 1;
    return c;
}

LlmConfig
qwen3_32b()
{
    LlmConfig c;
    c.name = "Qwen3-32B";
    c.paramCount = 32.8e9;
    c.activeParamCount = 32.8e9;
    c.numLayers = 64;
    c.numKvHeads = 8;
    c.headDim = 128;
    c.tensorParallel = 2;
    return c;
}

LlmConfig
llama3_70b()
{
    LlmConfig c;
    c.name = "Llama3-70B";
    c.paramCount = 70.6e9;
    c.activeParamCount = 70.6e9;
    c.numLayers = 80;
    c.numKvHeads = 8;
    c.headDim = 128;
    c.tensorParallel = 4;
    return c;
}

LlmConfig
qwen3_30b_moe()
{
    LlmConfig c;
    c.name = "Qwen3-30B-A3B";
    c.paramCount = 30.5e9;
    c.activeParamCount = 3.3e9;
    c.numLayers = 48;
    c.numKvHeads = 4;
    c.headDim = 128;
    c.tensorParallel = 2;
    return c;
}

LlmConfig
llmConfigByName(const std::string &name)
{
    if (name == "llama3-8b")
        return llama3_8b();
    if (name == "qwen3-32b")
        return qwen3_32b();
    if (name == "llama3-70b")
        return llama3_70b();
    if (name == "qwen3-30b-moe")
        return qwen3_30b_moe();
    fatal("unknown LLM config: " + name);
}

} // namespace vlr::llm

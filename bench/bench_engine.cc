/**
 * @file
 * Throughput bench for the concurrent retrieval engine: real IVF-PQ
 * fast-scan searches through the admission queue + dynamic batcher,
 * swept over search-thread counts. Also fits a SearchPerfModel to
 * *measured* stage latencies and compares its prediction against the
 * engine's observed batch latency (the real-hardware analogue of the
 * Fig. 10 model validation).
 *
 * Run: ./bench_engine [num_queries] [--smoke]
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "core/perf_model.h"
#include "workload/dataset.h"

int
main(int argc, char **argv)
{
    using namespace vlr;

    // The perf-model profiling phase below reads up to 64 queries.
    const auto args = bench::parseBenchArgs(argc, argv,
                                            /*default_queries=*/2000,
                                            /*smoke_queries=*/256,
                                            /*min_queries=*/64);
    if (!args.ok) {
        std::cerr << "bench_engine: " << args.error << "\n"
                  << "usage: bench_engine [num_queries >= 64] "
                     "[--smoke]\n";
        return 1;
    }
    const std::size_t n_queries = args.numQueries;

    std::cout << "Concurrent retrieval engine bench"
              << (args.smoke ? " (smoke mode)" : "") << "\n"
              << "=================================\n\n";

    // --- corpus + index (real vectors, not the timing model) ---
    wl::DatasetSpec spec = wl::tinySpec();
    spec.numVectors = args.smoke ? 8000 : 40000;
    spec.dim = 64;
    spec.numClusters = args.smoke ? 64 : 256;
    spec.nprobe = 16;
    wl::SyntheticDataset dataset(spec);
    dataset.buildVectors();
    const auto cq = dataset.makeCoarseQuantizer();
    vs::IvfPqFastScanIndex index(cq, spec.dim / 4);
    index.train(dataset.vectors(), spec.numVectors);
    index.addPreassigned(dataset.vectors(), spec.numVectors,
                         dataset.assignments());
    std::cout << "index: " << index.size() << " vectors, dim "
              << index.dim() << ", nlist " << index.nlist() << ", simd "
              << (vs::fastScanHasSimd() ? "avx2" : "scalar") << "\n";

    wl::QueryGenerator gen(dataset, 123);
    const auto queries = gen.generate(n_queries);
    const std::size_t k = 10;

    // --- fit a perf model to measured serial stage latencies ---
    std::vector<PlKnot> cq_knots, lut_knots;
    for (const std::size_t b : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul, 64ul}) {
        vs::SearchBreakdown bd;
        index.searchBatch(std::span<const float>(queries.data(),
                                                 b * spec.dim),
                          b, k, spec.nprobe, &bd);
        cq_knots.push_back({static_cast<double>(b), bd.cqSeconds});
        lut_knots.push_back({static_cast<double>(b),
                             bd.lutBuildSeconds + bd.scanSeconds});
    }
    const auto model = core::SearchPerfModel::fromKnots(cq_knots,
                                                        lut_knots);

    // --- closed-loop engine sweep over search-thread counts ---
    TextTable t({"threads", "wall (s)", "QPS", "speedup", "mean batch",
                 "p50 search (ms)", "p99 search (ms)", "model (ms)"});
    struct SweepRow
    {
        std::size_t threads = 0;
        double wallSeconds = 0.0;
        double qps = 0.0;
        double meanBatch = 0.0;
        double p50Search = 0.0;
        double p99Search = 0.0;
        double modelSeconds = 0.0;
    };
    std::vector<SweepRow> rows;
    double qps1 = 0.0;
    const std::vector<std::size_t> thread_counts =
        args.smoke ? std::vector<std::size_t>{1, 4}
                   : std::vector<std::size_t>{1, 2, 4, 8};
    for (const std::size_t threads : thread_counts) {
        const auto engine =
            core::EngineBuilder(index)
                .defaultK(k)
                .defaultNprobe(spec.nprobe)
                .searchThreads(threads)
                .batching({.maxBatch = 32, .timeoutSeconds = 1e-3})
                .build();

        WallTimer wall;
        std::vector<std::future<core::SearchResponse>> futures;
        futures.reserve(n_queries);
        for (std::size_t i = 0; i < n_queries; ++i)
            futures.push_back(engine->submit(
                {.query = std::span<const float>(
                     queries.data() + i * spec.dim, spec.dim)}));
        engine->drain();
        const double secs = wall.elapsed();
        for (auto &f : futures)
            f.get();

        const auto s = engine->stats();
        const double qps = static_cast<double>(s.completed) / secs;
        if (threads == 1)
            qps1 = qps;
        // The fitted model predicts the *serial* batch latency at the
        // observed mean batch size; the measured columns show how the
        // parallel executor beats it.
        const double predicted = model.tSearch(s.meanBatchSize);
        rows.push_back({threads, secs, qps, s.meanBatchSize,
                        s.searchLatency.p50, s.searchLatency.p99,
                        predicted});
        t.addRow({std::to_string(threads), TextTable::num(secs, 2),
                  TextTable::num(qps, 0),
                  TextTable::num(qps / qps1, 2) + "x",
                  TextTable::num(s.meanBatchSize, 1),
                  TextTable::num(s.searchLatency.p50 * 1e3, 2),
                  TextTable::num(s.searchLatency.p99 * 1e3, 2),
                  TextTable::num(predicted * 1e3, 2)});
    }
    t.print(std::cout);

    std::cout << "\nSpeedup is relative to 1 search thread; 'model' is "
                 "the measured-knot\nSearchPerfModel prediction of "
                 "serial latency at the mean batch size.\n";

    // --- perf snapshot for CI trend archiving ---
    {
        std::ofstream os("BENCH_engine.json");
        bench::JsonWriter w(os);
        w.beginObject();
        w.kv("bench", "engine");
        w.kv("smoke", args.smoke);
        w.kv("numQueries", n_queries);
        w.kv("numVectors", spec.numVectors);
        w.kv("dim", spec.dim);
        w.kv("simd", vs::fastScanHasSimd());
        w.key("threadSweep");
        w.beginArray();
        for (const SweepRow &r : rows) {
            w.beginObject();
            w.kv("threads", r.threads);
            w.kv("wallSeconds", r.wallSeconds);
            w.kv("qps", r.qps);
            w.kv("speedup", qps1 > 0.0 ? r.qps / qps1 : 0.0);
            w.kv("meanBatch", r.meanBatch);
            w.kv("p50SearchSeconds", r.p50Search);
            w.kv("p99SearchSeconds", r.p99Search);
            w.kv("modelSeconds", r.modelSeconds);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
    }
    std::cout << "\nwrote BENCH_engine.json\n";
    return 0;
}

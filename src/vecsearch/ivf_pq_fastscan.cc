#include "vecsearch/ivf_pq_fastscan.h"

#include <cassert>

#include "common/log.h"
#include "common/timer.h"

namespace vlr::vs
{

IvfPqFastScanIndex::IvfPqFastScanIndex(
    std::shared_ptr<const CoarseQuantizer> cq, std::size_t m)
    : cq_(std::move(cq)), pq_(cq_->dim(), m, 4)
{
    ids_.resize(cq_->nlist());
    packed_.resize(cq_->nlist());
}

void
IvfPqFastScanIndex::train(std::span<const float> data, std::size_t n,
                          const KMeansParams &params)
{
    pq_.train(data, n, params);
}

void
IvfPqFastScanIndex::add(std::span<const float> vecs, std::size_t n)
{
    const std::size_t d = dim();
    std::vector<std::int32_t> assign(n);
    for (std::size_t i = 0; i < n; ++i)
        assign[i] = cq_->probe(vecs.data() + i * d, 1).clusters[0];
    addPreassigned(vecs, n, assign);
}

void
IvfPqFastScanIndex::addPreassigned(std::span<const float> vecs,
                                   std::size_t n,
                                   std::span<const std::int32_t> assign)
{
    const std::size_t d = dim();
    const std::size_t m = pq_.numSub();
    assert(vecs.size() >= n * d);
    assert(assign.size() >= n);

    // Group incoming codes per cluster, then grow each touched list in
    // place: appendPq4Codes fills the tail block's free lanes and adds
    // whole new blocks without unpacking what is already there, so one
    // call costs O(n) codes rather than O(list size).
    std::vector<std::vector<std::uint8_t>> pending(ids_.size());
    std::vector<std::uint8_t> code(m);
    for (std::size_t i = 0; i < n; ++i) {
        const auto c = static_cast<std::size_t>(assign[i]);
        assert(c < ids_.size());
        pq_.encode(vecs.data() + i * d, code.data());
        pending[c].insert(pending[c].end(), code.begin(), code.end());
        ids_[c].push_back(static_cast<idx_t>(total_ + i));
    }
    total_ += n;

    for (std::size_t c = 0; c < pending.size(); ++c) {
        if (pending[c].empty())
            continue;
        const std::size_t n_new = pending[c].size() / m;
        const std::size_t n_old = ids_[c].size() - n_new;
        appendPq4Codes(m, packed_[c], n_old, pending[c], n_new);
    }
}

void
IvfPqFastScanIndex::appendEncoded(cluster_id_t c,
                                  std::span<const idx_t> list_ids,
                                  std::span<const std::uint8_t> codes)
{
    const std::size_t m = pq_.numSub();
    const auto ci = static_cast<std::size_t>(c);
    assert(ci < ids_.size());
    assert(codes.size() >= list_ids.size() * m);
    const std::size_t n_old = ids_[ci].size();
    ids_[ci].insert(ids_[ci].end(), list_ids.begin(), list_ids.end());
    appendPq4Codes(m, packed_[ci], n_old, codes, list_ids.size());
    total_ += list_ids.size();
}

std::vector<SearchHit>
IvfPqFastScanIndex::search(const float *query, std::size_t k,
                           std::size_t nprobe, SearchBreakdown *bd,
                           SearchScratch *scratch) const
{
    WallTimer t;
    const auto pl = cq_->probe(query, nprobe);
    if (bd)
        bd->cqSeconds += t.elapsed();
    return searchClusters(query, k, pl.clusters, bd, scratch);
}

std::vector<SearchHit>
IvfPqFastScanIndex::searchClusters(const float *query, std::size_t k,
                                   std::span<const cluster_id_t> clusters,
                                   SearchBreakdown *bd,
                                   SearchScratch *scratch) const
{
    const std::size_t m = pq_.numSub();

    SearchScratch local;
    SearchScratch &sc = scratch ? *scratch : local;

    WallTimer t;
    sc.lut.resize(pq_.lutSize());
    pq_.computeLut(query, sc.lut.data());
    const QuantizedLut qlut = quantizeLut(m, sc.lut);
    if (bd)
        bd->lutBuildSeconds += t.elapsed();

    t.reset();
    TopK topk(k);
    for (const cluster_id_t c : clusters) {
        const auto ci = static_cast<std::size_t>(c);
        assert(ci < ids_.size());
        const auto &list_ids = ids_[ci];
        if (list_ids.empty())
            continue;
        const std::size_t nblocks =
            (list_ids.size() + kFastScanBlock - 1) / kFastScanBlock;
        if (sc.scores.size() < nblocks * kFastScanBlock)
            sc.scores.resize(nblocks * kFastScanBlock);
        scanPq4Blocks(m, packed_[ci].data(), nblocks, qlut,
                      sc.scores.data());
        for (std::size_t i = 0; i < list_ids.size(); ++i) {
            const float dist =
                qlut.bias + qlut.step * static_cast<float>(sc.scores[i]);
            topk.push(list_ids[i], dist);
        }
    }
    if (bd)
        bd->scanSeconds += t.elapsed();
    return topk.sortedHits();
}

std::vector<std::vector<SearchHit>>
IvfPqFastScanIndex::searchBatch(std::span<const float> queries,
                                std::size_t nq, std::size_t k,
                                std::size_t nprobe,
                                SearchBreakdown *bd) const
{
    const std::size_t d = dim();
    assert(queries.size() >= nq * d);
    SearchScratch scratch;
    std::vector<std::vector<SearchHit>> out(nq);
    for (std::size_t i = 0; i < nq; ++i)
        out[i] = search(queries.data() + i * d, k, nprobe, bd, &scratch);
    return out;
}

std::vector<std::vector<SearchHit>>
IvfPqFastScanIndex::searchBatchParallel(std::span<const float> queries,
                                        std::size_t nq, std::size_t k,
                                        std::size_t nprobe,
                                        ThreadPool &pool,
                                        SearchBreakdown *bd) const
{
    const std::vector<std::size_t> nprobes(nq, nprobe);
    return searchBatchParallel(queries, nq, k, nprobes, pool, bd);
}

std::vector<std::vector<SearchHit>>
IvfPqFastScanIndex::searchBatchParallel(
    std::span<const float> queries, std::size_t nq, std::size_t k,
    std::span<const std::size_t> nprobes, ThreadPool &pool,
    SearchBreakdown *bd) const
{
    const std::size_t d = dim();
    assert(queries.size() >= nq * d);
    assert(nprobes.size() >= nq);
    std::vector<std::vector<SearchHit>> out(nq);
    std::vector<SearchBreakdown> bds(bd ? nq : 0);
    pool.parallelForDynamic(nq, 1, [&](std::size_t i) {
        // One scratch per OS thread, reused across queries and batches.
        static thread_local SearchScratch scratch;
        out[i] = search(queries.data() + i * d, k, nprobes[i],
                        bd ? &bds[i] : nullptr, &scratch);
    });
    if (bd)
        for (const auto &b : bds)
            bd->accumulate(b);
    return out;
}

IvfPqFastScanIndex
IvfPqFastScanIndex::subsetClusters(
    std::span<const cluster_id_t> clusters) const
{
    IvfPqFastScanIndex out(cq_, pq_.numSub());
    out.pq_ = pq_;
    std::size_t resident = 0;
    for (const cluster_id_t c : clusters) {
        const auto ci = static_cast<std::size_t>(c);
        assert(ci < ids_.size());
        out.ids_[ci] = ids_[ci];
        out.packed_[ci] = packed_[ci];
        resident += ids_[ci].size();
    }
    out.total_ = resident;
    return out;
}

IvfPqFastScanIndex
IvfPqFastScanIndex::fromParts(std::shared_ptr<const CoarseQuantizer> cq,
                              ProductQuantizer pq,
                              std::vector<std::vector<idx_t>> ids,
                              std::vector<std::vector<std::uint8_t>> packed)
{
    if (!pq.isTrained())
        fatal("IvfPqFastScanIndex::fromParts: quantizer is not trained");
    if (pq.dim() != cq->dim())
        fatal("IvfPqFastScanIndex::fromParts: PQ/CQ dimension mismatch");
    if (ids.size() != cq->nlist() || packed.size() != cq->nlist())
        fatal("IvfPqFastScanIndex::fromParts: list count != nlist");
    const std::size_t m = pq.numSub();
    const std::size_t bb = packedBlockBytes(m);
    IvfPqFastScanIndex out(std::move(cq), m);
    out.pq_ = std::move(pq);
    std::size_t total = 0;
    for (std::size_t c = 0; c < ids.size(); ++c) {
        const std::size_t n = ids[c].size();
        const std::size_t nblocks =
            (n + kFastScanBlock - 1) / kFastScanBlock;
        if (packed[c].size() != nblocks * bb)
            fatal("IvfPqFastScanIndex::fromParts: packed bytes of "
                  "cluster " +
                  std::to_string(c) + " do not match its id count");
        total += n;
    }
    out.ids_ = std::move(ids);
    out.packed_ = std::move(packed);
    out.total_ = total;
    return out;
}

std::span<const idx_t>
IvfPqFastScanIndex::listIds(cluster_id_t c) const
{
    assert(c >= 0 && static_cast<std::size_t>(c) < ids_.size());
    return ids_[static_cast<std::size_t>(c)];
}

std::span<const std::uint8_t>
IvfPqFastScanIndex::listPacked(cluster_id_t c) const
{
    assert(c >= 0 && static_cast<std::size_t>(c) < packed_.size());
    return packed_[static_cast<std::size_t>(c)];
}

std::size_t
IvfPqFastScanIndex::listSize(cluster_id_t c) const
{
    assert(c >= 0 && static_cast<std::size_t>(c) < ids_.size());
    return ids_[static_cast<std::size_t>(c)].size();
}

std::vector<std::size_t>
IvfPqFastScanIndex::listSizes() const
{
    std::vector<std::size_t> out(ids_.size());
    for (std::size_t c = 0; c < ids_.size(); ++c)
        out[c] = ids_[c].size();
    return out;
}

std::size_t
IvfPqFastScanIndex::listBytes(cluster_id_t c) const
{
    assert(c >= 0 && static_cast<std::size_t>(c) < ids_.size());
    const auto ci = static_cast<std::size_t>(c);
    return ids_[ci].size() * sizeof(idx_t) + packed_[ci].size();
}

std::size_t
IvfPqFastScanIndex::memoryBytes() const
{
    std::size_t bytes = 0;
    for (std::size_t c = 0; c < ids_.size(); ++c) {
        bytes += ids_[c].size() * sizeof(idx_t);
        bytes += packed_[c].size();
    }
    return bytes;
}

} // namespace vlr::vs

#include "storage/index_store.h"

#include <cstdint>
#include <fstream>

#include "vecsearch/io.h"

namespace vlr::storage
{

namespace
{

constexpr std::uint32_t kArtifactMagic = 0x564C5241; // "VLRA"
constexpr std::size_t kHeaderBytes = 96;

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU64(std::ostream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        throw vs::IoError("truncated artifact header");
    return v;
}

std::uint64_t
readU64(std::istream &is)
{
    std::uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        throw vs::IoError("truncated artifact header");
    return v;
}

std::uint64_t
alignUp(std::uint64_t v, std::uint64_t a)
{
    return (v + a - 1) / a * a;
}

struct Header
{
    std::uint32_t version = IndexStore::kFormatVersion;
    std::uint64_t dim = 0, m = 0, nbits = 0, nlist = 0, total = 0;
    std::uint64_t pageSize = 0;
    std::uint64_t pqOffset = 0, cqOffset = 0;
    std::uint64_t listsOffset = 0, listsBytes = 0, fileBytes = 0;
};

void
writeHeader(std::ostream &os, const Header &h)
{
    writeU32(os, kArtifactMagic);
    writeU32(os, h.version);
    writeU64(os, h.dim);
    writeU64(os, h.m);
    writeU64(os, h.nbits);
    writeU64(os, h.nlist);
    writeU64(os, h.total);
    writeU64(os, h.pageSize);
    writeU64(os, h.pqOffset);
    writeU64(os, h.cqOffset);
    writeU64(os, h.listsOffset);
    writeU64(os, h.listsBytes);
    writeU64(os, h.fileBytes);
}

Header
readHeader(std::istream &is)
{
    if (readU32(is) != kArtifactMagic)
        throw vs::IoError("bad magic for index artifact");
    Header h;
    h.version = readU32(is);
    if (h.version != IndexStore::kFormatVersion)
        throw vs::IoError("unsupported artifact format version " +
                          std::to_string(h.version) + " (this build "
                          "reads version " +
                          std::to_string(IndexStore::kFormatVersion) +
                          ")");
    h.dim = readU64(is);
    h.m = readU64(is);
    h.nbits = readU64(is);
    h.nlist = readU64(is);
    h.total = readU64(is);
    h.pageSize = readU64(is);
    h.pqOffset = readU64(is);
    h.cqOffset = readU64(is);
    h.listsOffset = readU64(is);
    h.listsBytes = readU64(is);
    h.fileBytes = readU64(is);
    if (h.dim == 0 || h.m == 0 || h.nbits == 0 || h.nlist == 0 ||
        h.pageSize == 0 || (h.pageSize & (h.pageSize - 1)) != 0)
        throw vs::IoError("implausible artifact header fields");
    if (h.pqOffset < kHeaderBytes || h.cqOffset <= h.pqOffset ||
        h.listsOffset <= h.cqOffset ||
        h.listsOffset % h.pageSize != 0 ||
        h.fileBytes != h.listsOffset + h.listsBytes)
        throw vs::IoError("inconsistent artifact section offsets");
    return h;
}

std::uint64_t
streamSize(std::istream &is)
{
    const auto pos = is.tellg();
    is.seekg(0, std::ios::end);
    const auto end = is.tellg();
    is.seekg(pos);
    return static_cast<std::uint64_t>(end);
}

ArtifactInfo
toInfo(const Header &h)
{
    ArtifactInfo info;
    info.formatVersion = h.version;
    info.dim = static_cast<std::size_t>(h.dim);
    info.m = static_cast<std::size_t>(h.m);
    info.nbits = static_cast<std::size_t>(h.nbits);
    info.nlist = static_cast<std::size_t>(h.nlist);
    info.total = static_cast<std::size_t>(h.total);
    info.pageSize = static_cast<std::size_t>(h.pageSize);
    info.pqOffset = h.pqOffset;
    info.cqOffset = h.cqOffset;
    info.listsOffset = h.listsOffset;
    info.listsBytes = h.listsBytes;
    info.fileBytes = h.fileBytes;
    return info;
}

Header
openValidated(std::ifstream &is, const std::string &path)
{
    is.open(path, std::ios::binary);
    if (!is)
        throw vs::IoError("cannot open artifact file: " + path);
    const Header h = readHeader(is);
    if (streamSize(is) != h.fileBytes)
        throw vs::IoError("truncated artifact: file size does not "
                          "match the header");
    return h;
}

} // namespace

ArtifactInfo
IndexStore::save(const std::string &path,
                 const vs::IvfPqFastScanIndex &index,
                 std::size_t page_size)
{
    if (page_size == 0 || (page_size & (page_size - 1)) != 0)
        throw vs::IoError("IndexStore::save: page size is not a power "
                          "of two");
    const auto *flat_cq = dynamic_cast<const vs::FlatCoarseQuantizer *>(
        &index.quantizer());
    if (flat_cq == nullptr)
        throw vs::IoError("IndexStore::save: only FlatCoarseQuantizer "
                          "artifacts are supported");

    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw vs::IoError("IndexStore::save: cannot create " + path);

    Header h;
    h.dim = index.dim();
    h.m = index.pq().numSub();
    h.nbits = index.pq().nbits();
    h.nlist = index.nlist();
    h.total = index.size();
    h.pageSize = page_size;

    // Placeholder header; rewritten once section offsets are known.
    for (std::size_t i = 0; i < kHeaderBytes; ++i)
        os.put('\0');

    h.pqOffset = kHeaderBytes;
    vs::savePq(os, index.pq());
    h.cqOffset = static_cast<std::uint64_t>(os.tellp());
    vs::saveCoarseQuantizer(os, *flat_cq);

    h.listsOffset =
        alignUp(static_cast<std::uint64_t>(os.tellp()), page_size);
    while (static_cast<std::uint64_t>(os.tellp()) < h.listsOffset)
        os.put('\0');
    const vs::PackedListsLayout layout =
        vs::savePackedLists(os, index, page_size);
    h.listsBytes = layout.sectionBytes;
    h.fileBytes = h.listsOffset + h.listsBytes;

    os.seekp(0);
    writeHeader(os, h);
    os.flush();
    if (!os)
        throw vs::IoError("IndexStore::save: write failed for " + path);
    return toInfo(h);
}

vs::IvfPqFastScanIndex
IndexStore::load(const std::string &path)
{
    std::ifstream is;
    const Header h = openValidated(is, path);

    is.seekg(static_cast<std::istream::off_type>(h.pqOffset));
    vs::ProductQuantizer pq = vs::loadPq(is);
    if (pq.dim() != h.dim || pq.numSub() != h.m || pq.nbits() != h.nbits)
        throw vs::IoError("artifact PQ section disagrees with the "
                          "header");

    is.seekg(static_cast<std::istream::off_type>(h.cqOffset));
    std::shared_ptr<vs::FlatCoarseQuantizer> cq =
        vs::loadCoarseQuantizer(is);
    if (cq->dim() != h.dim || cq->nlist() != h.nlist)
        throw vs::IoError("artifact CQ section disagrees with the "
                          "header");

    is.seekg(static_cast<std::istream::off_type>(h.listsOffset));
    vs::PackedLists lists =
        vs::loadPackedLists(is, static_cast<std::size_t>(h.m));
    if (lists.total != h.total || lists.ids.size() != h.nlist)
        throw vs::IoError("artifact lists section disagrees with the "
                          "header");

    return vs::IvfPqFastScanIndex::fromParts(
        std::move(cq), std::move(pq), std::move(lists.ids),
        std::move(lists.packed));
}

ArtifactInfo
IndexStore::inspect(const std::string &path)
{
    std::ifstream is;
    return toInfo(openValidated(is, path));
}

} // namespace vlr::storage

/**
 * @file
 * Adaptive runtime index update walkthrough (paper Section IV-B3).
 *
 * Serve an ORCAS-like workload with a partitioned index, let the query
 * distribution drift, watch the drift monitor trip as hit rates fall,
 * then run the re-profile -> re-partition -> re-split cycle and verify
 * the refreshed hot tier restores the expected hit rate. Stage timings
 * mirror the paper's Fig. 9 breakdown.
 *
 * Run: ./examples/drift_adaptation
 */

#include <cmath>
#include <iostream>

#include "core/vectorliterag.h"

int
main()
{
    using namespace vlr;

    std::cout << "VectorLiteRAG adaptive index update\n"
              << "===================================\n\n";

    const auto spec = wl::orcas1kSpec();
    core::DatasetContext ctx(spec);
    wl::QueryGenerator gen(ctx.dataset(), 97);

    // Partition for the current distribution.
    core::PartitionInputs in;
    in.sloSearchSeconds = spec.sloSearchSeconds;
    in.peakLlmThroughput = 30.0;
    in.kvBaselineBytes = 8.0 * 40e9;
    core::LatencyBoundedPartitioner part(ctx.perfModel(),
                                         ctx.estimator(), ctx.profile());
    const auto before = part.partition(in);
    const auto hot_before = ctx.profile().hotBitmap(before.rho);
    const double expected = ctx.estimator().meanHitRate(before.rho);

    std::cout << "initial partition: rho = " << TextTable::pct(before.rho)
              << ", expected mean hit rate "
              << TextTable::num(expected, 3) << "\n\n";

    // Drift monitor as the router would run it.
    core::DriftMonitorParams mon_params;
    mon_params.windowRequests = 500;
    core::DriftMonitor monitor(mon_params, expected);

    // The runtime check the router applies: a request meets its search
    // SLO when the batch it rides in finishes inside the queueing-
    // adjusted budget tau_s (Eq. 3) at the planned batch size.
    const double batch = std::max(1.0, std::round(before.expectedBatch));
    auto serve_window = [&](const char *label) {
        const auto plans = ctx.plansFor(gen, mon_params.windowRequests);
        monitor.reset(expected);
        for (std::size_t i = 0; i < plans.size(); ++i) {
            const double hr = plans.hitRate(i, hot_before);
            const double lat = ctx.perfModel().hybridLatency(batch, hr);
            monitor.record(hr, lat <= before.tauS);
        }
        std::cout << label << ": observed hit rate "
                  << TextTable::num(monitor.observedHitRate(), 3)
                  << ", SLO attainment "
                  << TextTable::pct(monitor.observedAttainment())
                  << ", drift detected: "
                  << (monitor.driftDetected() ? "YES" : "no") << '\n';
    };

    serve_window("window 1 (steady traffic)  ");

    // The world changes: half the popularity ranking reshuffles.
    gen.drift(0.5);
    serve_window("window 2 (after drift)     ");

    if (!monitor.driftDetected()) {
        std::cout << "\nno update required.\n";
        return 0;
    }

    // Update cycle: re-profile, re-run Algorithm 1, re-split shards.
    std::cout << "\nrunning update cycle (re-profile + re-partition + "
                 "re-split)...\n";
    const auto outcome = core::runUpdateCycle(ctx, gen, in, 8);
    TextTable t({"stage", "seconds"});
    t.addRow({"profiling",
              TextTable::num(outcome.timings.profilingSeconds, 2)});
    t.addRow({"algorithm",
              TextTable::num(outcome.timings.algorithmSeconds, 2)});
    t.addRow({"splitting",
              TextTable::num(outcome.timings.splittingSeconds, 2)});
    t.addRow({"loading",
              TextTable::num(outcome.timings.loadingSeconds, 2)});
    t.addRow({"total", TextTable::num(outcome.timings.total(), 2)});
    t.print(std::cout);

    // Verify recovery on fresh drifted traffic.
    std::vector<bool> hot_after(ctx.profile().nlist(), false);
    for (const auto c :
         ctx.profile().hotClusters(outcome.partition.rho))
        hot_after[static_cast<std::size_t>(c)] = true;
    const auto fresh = ctx.plansFor(gen, 500);
    double stale_hr = 0.0, fresh_hr = 0.0;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        stale_hr += fresh.hitRate(i, hot_before);
        fresh_hr += fresh.hitRate(i, hot_after);
    }
    stale_hr /= static_cast<double>(fresh.size());
    fresh_hr /= static_cast<double>(fresh.size());

    std::cout << "\nmean hit rate on drifted traffic: stale hot tier "
              << TextTable::num(stale_hr, 3) << " -> refreshed "
              << TextTable::num(fresh_hr, 3) << " (new rho = "
              << TextTable::pct(outcome.partition.rho) << ")\n"
              << "\nwhile a shard refreshes, the router sends its "
                 "clusters to the CPU path, so service never stops.\n";
    return 0;
}

/**
 * @file
 * Google-benchmark microbenchmarks of the real vector-search kernels:
 * distance computation, ADC LUT construction, plain ADC scanning and
 * PQ4 fast scanning. These back the Fig. 3 claim that fast scan
 * out-throughputs plain ADC by a wide margin on the same codes.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "vecsearch/fastscan.h"
#include "vecsearch/metric.h"
#include "vecsearch/pq.h"
#include "vecsearch/topk.h"

namespace
{

using namespace vlr;
using namespace vlr::vs;

std::vector<float>
gaussianData(std::size_t n, std::size_t d, std::uint64_t seed = 1)
{
    Rng rng(seed);
    std::vector<float> v(n * d);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    return v;
}

void
BM_L2Distance(benchmark::State &state)
{
    const std::size_t d = static_cast<std::size_t>(state.range(0));
    const auto a = gaussianData(1, d, 1);
    const auto b = gaussianData(1, d, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(l2Sqr(a.data(), b.data(), d));
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * d * 2 * sizeof(float)));
}
BENCHMARK(BM_L2Distance)->Arg(64)->Arg(128)->Arg(768)->Arg(1024);

void
BM_DistancesToMany(benchmark::State &state)
{
    const std::size_t n = 4096, d = 128;
    const auto q = gaussianData(1, d, 1);
    const auto base = gaussianData(n, d, 2);
    std::vector<float> out(n);
    for (auto _ : state)
        distancesToMany(Metric::L2, q.data(), base.data(), n, d,
                        out.data());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_DistancesToMany);

struct PqSetup
{
    ProductQuantizer pq;
    std::vector<std::uint8_t> codes;
    std::vector<float> query;
    std::vector<float> lut;

    PqSetup(std::size_t m, std::size_t nbits, std::size_t n)
        : pq(64, m, nbits)
    {
        const auto data = gaussianData(n, 64, 3);
        pq.train(data, n);
        codes = pq.encodeBatch(data, n);
        query = gaussianData(1, 64, 4);
        lut.resize(pq.lutSize());
        pq.computeLut(query.data(), lut.data());
    }
};

void
BM_PqLutBuild(benchmark::State &state)
{
    PqSetup s(8, 8, 2000);
    for (auto _ : state)
        s.pq.computeLut(s.query.data(), s.lut.data());
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * s.pq.lutSize()));
}
BENCHMARK(BM_PqLutBuild);

void
BM_AdcScan(benchmark::State &state)
{
    const std::size_t n = 8192;
    PqSetup s(8, 8, n);
    TopK topk(10);
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i)
            benchmark::DoNotOptimize(s.pq.adcDistance(
                s.lut.data(), s.codes.data() + i * 8));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_AdcScan);

void
BM_FastScan(benchmark::State &state)
{
    const std::size_t n = 8192, m = 8;
    PqSetup s(m, 4, n);
    const auto packed = packPq4Codes(m, s.codes, n);
    const auto qlut = quantizeLut(m, s.lut);
    const std::size_t nblocks = packed.size() / packedBlockBytes(m);
    std::vector<std::uint16_t> scores(nblocks * kFastScanBlock);
    for (auto _ : state)
        scanPq4Blocks(m, packed.data(), nblocks, qlut, scores.data());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
    state.SetLabel(fastScanHasSimd() ? "avx2" : "scalar");
}
BENCHMARK(BM_FastScan);

void
BM_FastScanScalarReference(benchmark::State &state)
{
    const std::size_t n = 8192, m = 8;
    PqSetup s(m, 4, n);
    const auto packed = packPq4Codes(m, s.codes, n);
    const auto qlut = quantizeLut(m, s.lut);
    const std::size_t nblocks = packed.size() / packedBlockBytes(m);
    std::vector<std::uint16_t> scores(nblocks * kFastScanBlock);
    for (auto _ : state)
        scanPq4BlocksScalar(m, packed.data(), nblocks, qlut,
                            scores.data());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_FastScanScalarReference);

void
BM_TopKPush(benchmark::State &state)
{
    Rng rng(5);
    std::vector<float> dists(100000);
    for (auto &d : dists)
        d = static_cast<float>(rng.uniform());
    for (auto _ : state) {
        TopK topk(25);
        for (std::size_t i = 0; i < dists.size(); ++i)
            topk.push(static_cast<idx_t>(i), dists[i]);
        benchmark::DoNotOptimize(topk.worst());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * dists.size()));
}
BENCHMARK(BM_TopKPush);

} // namespace

BENCHMARK_MAIN();

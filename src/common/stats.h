/**
 * @file
 * Descriptive statistics used throughout profiling, metrics and benches:
 * running moments, percentiles, histograms and empirical CDFs.
 */

#ifndef VLR_COMMON_STATS_H
#define VLR_COMMON_STATS_H

#include <cstddef>
#include <span>
#include <vector>

namespace vlr
{

/** Streaming mean/variance accumulator (Welford's algorithm). */
class RunningStats
{
  public:
    RunningStats() = default;

    void add(double x);
    void merge(const RunningStats &other);
    void reset();

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Collects raw samples and answers percentile queries. Used for latency
 * distributions (P90/P95 TTFT etc.). Percentile uses linear interpolation
 * between order statistics, matching numpy's default.
 */
class SampleSet
{
  public:
    void add(double x);
    void addAll(std::span<const double> xs);
    void clear();

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    double mean() const;
    double min() const;
    double max() const;

    /** @param p percentile in [0, 100]. */
    double percentile(double p) const;

    /** Fraction of samples <= threshold (e.g. SLO attainment). */
    double fractionBelow(double threshold) const;

    /** Population variance of the samples. */
    double variance() const;

    const std::vector<double> &raw() const { return samples_; }

  private:
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
};

/**
 * Fixed latency-percentile digest shared by the serving simulator and
 * the real retrieval engine, so modeled and measured distributions are
 * reported (and compared) through one type.
 */
struct LatencySummary
{
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/** Digest a sample set (all zeros when empty). */
LatencySummary summarizeLatency(const SampleSet &samples);

/** One (x, cumulative fraction) point of an empirical CDF. */
struct CdfPoint
{
    double x;
    double cum;
};

/**
 * Builds the cumulative access-share curve the paper plots in Fig. 5:
 * clusters sorted by descending weight, x = fraction of clusters,
 * y = fraction of total weight covered.
 */
std::vector<CdfPoint> weightConcentrationCurve(std::span<const double> weights,
                                               std::size_t max_points = 256);

/**
 * Evaluate a concentration curve at a coverage fraction in [0, 1] with
 * linear interpolation.
 */
double evalConcentration(const std::vector<CdfPoint> &curve, double coverage);

/** Fixed-width histogram over [lo, hi); values outside are clamped. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    std::size_t totalCount() const { return total_; }
    std::size_t binCount(std::size_t b) const { return counts_.at(b); }
    std::size_t numBins() const { return counts_.size(); }
    double binLo(std::size_t b) const;
    double binHi(std::size_t b) const;

    /** Normalized bin densities (sum to 1 when non-empty). */
    std::vector<double> densities() const;

  private:
    double lo_, hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace vlr

#endif // VLR_COMMON_STATS_H

/**
 * @file
 * SLO planner: the operator-facing workflow of VectorLiteRAG.
 *
 * Given a dataset, an LLM, a node size and a retrieval SLO, run the
 * latency-bounded partitioning algorithm (paper Algorithm 1) and print
 * the plan an operator would deploy: cache coverage, per-GPU memory
 * layout (weights / index shard / KV cache), the convergence trace and
 * the expected batching behaviour at the chosen point.
 *
 * Run: ./examples/slo_planner [dataset] [model] [slo_ms]
 *   dataset: wiki-all | orcas-1k | orcas-2k   (default orcas-1k)
 *   model:   llama3-8b | qwen3-32b | llama3-70b (default qwen3-32b)
 *   slo_ms:  retrieval SLO in milliseconds    (default Table I value)
 */

#include <iostream>
#include <string>

#include "core/vectorliterag.h"

int
main(int argc, char **argv)
{
    using namespace vlr;

    const std::string dataset_name = argc > 1 ? argv[1] : "orcas-1k";
    const std::string model_name = argc > 2 ? argv[2] : "qwen3-32b";
    auto spec = wl::specByName(dataset_name);
    const auto model = llm::llmConfigByName(model_name);
    if (argc > 3)
        spec.sloSearchSeconds = std::stod(argv[3]) / 1e3;

    const auto gpu_spec =
        model.tensorParallel > 1 ? gpu::h100Spec() : gpu::l40sSpec();
    const int num_gpus = 8;

    std::cout << "VectorLiteRAG SLO planner\n"
              << "=========================\n\n"
              << "dataset:  " << spec.name << " ("
              << static_cast<double>(spec.paperIndexBytes) / 1e9
              << " GB index)\n"
              << "model:    " << model.name << " (TP"
              << model.tensorParallel << ")\n"
              << "node:     " << num_gpus << "x " << gpu_spec.name
              << "\n"
              << "SLO:      " << spec.sloSearchSeconds * 1e3
              << " ms search + "
              << core::sloLlmSecondsFor(model) * 1e3 << " ms LLM\n\n";

    // 1. Profile the workload (access skew + CPU latency model).
    core::DatasetContext ctx(spec);

    // 2. Measure the bare LLM capacity on this node.
    core::ServingConfig probe;
    probe.llmConfig = model;
    probe.gpuSpec = gpu_spec;
    probe.numGpus = num_gpus;
    const double peak = core::measurePeak(probe);
    std::cout << "bare LLM capacity: " << TextTable::num(peak, 1)
              << " req/s (" << num_gpus / model.tensorParallel
              << " instances)\n\n";

    // 3. Run Algorithm 1.
    gpu::GpuDevice probe_dev(0, gpu_spec);
    probe_dev.reserveWeights(model.weightBytes() /
                             static_cast<bytes_t>(model.tensorParallel));
    core::PartitionInputs in;
    in.sloSearchSeconds = spec.sloSearchSeconds;
    in.peakLlmThroughput = peak;
    in.kvBaselineBytes =
        static_cast<double>(num_gpus) *
        static_cast<double>(probe_dev.kvCacheBytes());

    core::LatencyBoundedPartitioner part(ctx.perfModel(),
                                         ctx.estimator(), ctx.profile());
    const auto res = part.partition(in);

    std::cout << "partitioning result (Algorithm 1):\n";
    TextTable summary({"quantity", "value"});
    summary.addRow({"cache coverage rho", TextTable::pct(res.rho)});
    summary.addRow({"hot clusters",
                    std::to_string(ctx.profile().numHot(res.rho))});
    summary.addRow({"GPU index footprint (GB)",
                    TextTable::num(res.indexBytes / 1e9, 2)});
    summary.addRow({"latency bound tau_s (ms)",
                    TextTable::num(res.tauS * 1e3, 0)});
    summary.addRow({"throughput bound (req/s)",
                    TextTable::num(res.throughputBound, 1)});
    summary.addRow({"expected batch size",
                    TextTable::num(res.expectedBatch, 1)});
    summary.addRow({"expected min batch hit rate",
                    TextTable::num(res.expectedEtaMin, 3)});
    summary.addRow({"iterations", std::to_string(res.iterations)});
    summary.print(std::cout);

    std::cout << "\nconvergence trace (rho per iteration): ";
    for (const double r : res.trace)
        std::cout << TextTable::pct(r) << ' ';
    std::cout << "\n\n";

    // 4. Split into shards and show the per-GPU memory plan.
    const auto assignment =
        core::IndexSplitter::split(ctx.profile(), res.rho, num_gpus);
    const double weights_gb =
        static_cast<double>(model.weightBytes()) /
        static_cast<double>(model.tensorParallel) / 1e9;
    std::cout << "per-GPU memory plan:\n";
    TextTable plan({"GPU", "clusters", "weights (GB)", "index (GB)",
                    "KV cache (GB)"});
    for (std::size_t s = 0; s < assignment.numShards(); ++s) {
        const double shard_gb = assignment.shardBytes[s] / 1e9;
        plan.addRow(
            {std::to_string(s),
             std::to_string(assignment.shardClusters[s].size()),
             TextTable::num(weights_gb, 1),
             TextTable::num(shard_gb, 2),
             TextTable::num(static_cast<double>(probe_dev.kvCacheBytes()) /
                                    1e9 -
                                shard_gb,
                            1)});
    }
    plan.print(std::cout);

    std::cout << "\nhot tier covers "
              << TextTable::pct(
                     ctx.estimator().meanHitRate(res.rho))
              << " of scan work; the CPU keeps the coarse quantizer "
                 "and the cold clusters.\n";
    return 0;
}

/**
 * @file
 * IVF index over PQ4 fast-scan packed lists — the paper's CPU-tier index
 * ("IVF-FS"). Lists store codes in the blocked SIMD layout; search
 * quantizes the per-query LUT once and scans blocks with the AVX2 kernel.
 */

#ifndef VLR_VECSEARCH_IVF_PQ_FASTSCAN_H
#define VLR_VECSEARCH_IVF_PQ_FASTSCAN_H

#include <memory>
#include <span>
#include <vector>

#include "vecsearch/fastscan.h"
#include "vecsearch/ivf.h"
#include "vecsearch/ivf_pq.h"
#include "vecsearch/pq.h"

namespace vlr::vs
{

/**
 * IVF + PQ4 fast-scan index. PQ must use nbits = 4. Distances returned
 * are the uint8-LUT approximations mapped back to floats; they track the
 * plain ADC distances to within one quantization step per sub-quantizer.
 */
class IvfPqFastScanIndex
{
  public:
    IvfPqFastScanIndex(std::shared_ptr<const CoarseQuantizer> cq,
                       std::size_t m);

    void train(std::span<const float> data, std::size_t n,
               const KMeansParams &params = {});

    void add(std::span<const float> vecs, std::size_t n);
    void addPreassigned(std::span<const float> vecs, std::size_t n,
                        std::span<const std::int32_t> assign);

    std::vector<SearchHit> search(const float *query, std::size_t k,
                                  std::size_t nprobe,
                                  SearchBreakdown *bd = nullptr) const;

    std::vector<SearchHit> searchClusters(
        const float *query, std::size_t k,
        std::span<const cluster_id_t> clusters,
        SearchBreakdown *bd = nullptr) const;

    std::vector<std::vector<SearchHit>> searchBatch(
        std::span<const float> queries, std::size_t nq, std::size_t k,
        std::size_t nprobe, SearchBreakdown *bd = nullptr) const;

    const CoarseQuantizer &quantizer() const { return *cq_; }
    const ProductQuantizer &pq() const { return pq_; }
    std::size_t dim() const { return cq_->dim(); }
    std::size_t nlist() const { return cq_->nlist(); }
    std::size_t size() const { return total_; }
    std::size_t listSize(cluster_id_t c) const;
    std::vector<std::size_t> listSizes() const;
    std::size_t memoryBytes() const;

  private:
    std::shared_ptr<const CoarseQuantizer> cq_;
    ProductQuantizer pq_;
    std::size_t total_ = 0;
    std::vector<std::vector<idx_t>> ids_;
    std::vector<std::vector<std::uint8_t>> packed_;
    /** Scratch reused across scans (per call, not thread-safe). */
    mutable std::vector<std::uint16_t> scores_;
};

} // namespace vlr::vs

#endif // VLR_VECSEARCH_IVF_PQ_FASTSCAN_H

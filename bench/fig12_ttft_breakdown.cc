/**
 * @file
 * Figure 12 reproduction: TTFT breakdown (queuing delay, vector search,
 * LLM prefill) for the Wiki-All and ORCAS 1K indexes with Qwen3-32B at
 * increasing arrival rates, across the four systems.
 *
 * Expected shape: CPU-Only's search time dominates and queuing
 * compounds with rate; the GPU baselines are fine at low rates but
 * spike at high rates; vLiteRAG stays stable.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout, "Figure 12: TTFT breakdown (Qwen3-32B)");

    const auto model = llm::qwen3_32b();
    bench::PeakCache peaks;

    for (const auto &spec : {wl::wikiAllSpec(), wl::orcas1kSpec()}) {
        core::DatasetContext ctx(spec);
        auto base = bench::makeServingConfig(
            spec, model, core::RetrieverKind::CpuOnly, 1.0);
        const double peak = peaks.peak(base);
        // The paper annotates 19 / 32 / 38 req/s on a ~40 req/s-capacity
        // node; sweep the same fractions of our measured capacity.
        const std::vector<double> rates = {0.475 * peak, 0.8 * peak,
                                           0.95 * peak};

        std::cout << "\ndataset: " << spec.name << " (capacity "
                  << TextTable::num(peak, 1) << " req/s)\n";
        TextTable t({"rate (r/s)", "system", "queuing (ms)",
                     "search (ms)", "prefill (ms)", "TTFT mean (ms)"});
        for (const double rate : rates) {
            for (const auto kind : bench::kMainBaselines) {
                auto cfg =
                    bench::makeServingConfig(spec, model, kind, rate);
                cfg.peakThroughputHint = peak;
                const auto res = core::runServing(cfg, ctx);
                t.addRow({TextTable::num(rate, 1), res.system,
                          TextTable::num(res.meanQueueDelay * 1e3, 0),
                          TextTable::num(res.meanSearch * 1e3, 0),
                          TextTable::num(res.meanPrefill * 1e3, 0),
                          TextTable::num(res.meanTtft * 1e3, 0)});
            }
        }
        t.print(std::cout);
    }

    std::cout << "\npaper: as search latency grows (CPU retrieval), "
                 "queuing delays compound and inflate TTFT; vLiteRAG "
                 "sustains stable latency by balancing throughput and "
                 "latency.\n";
    return 0;
}

#include "core/splitter.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace vlr::core
{

double
ShardAssignment::totalGpuBytes() const
{
    double acc = 0.0;
    for (const double b : shardBytes)
        acc += b;
    return acc;
}

double
ShardAssignment::maxShardBytes() const
{
    double mx = 0.0;
    for (const double b : shardBytes)
        mx = std::max(mx, b);
    return mx;
}

namespace
{

ShardAssignment
makeEmpty(const AccessProfile &profile, double rho, int num_shards)
{
    ShardAssignment a;
    a.rho = rho;
    a.shardClusters.resize(static_cast<std::size_t>(num_shards));
    a.shardBytes.assign(static_cast<std::size_t>(num_shards), 0.0);
    a.clusterShard.assign(profile.nlist(), kCpuShard);
    a.localId.assign(profile.nlist(), -1);
    return a;
}

void
place(ShardAssignment &a, const AccessProfile &profile, cluster_id_t c,
      std::size_t shard)
{
    a.shardClusters[shard].push_back(c);
    a.clusterShard[static_cast<std::size_t>(c)] =
        static_cast<shard_id_t>(shard);
    a.localId[static_cast<std::size_t>(c)] =
        static_cast<std::int32_t>(a.shardClusters[shard].size() - 1);
    a.shardBytes[shard] += profile.clusterBytes(c);
}

} // namespace

ShardAssignment
IndexSplitter::split(const AccessProfile &profile, double rho,
                     int num_shards)
{
    if (rho > 0.0 && num_shards < 1)
        fatal("IndexSplitter::split: need at least one shard");
    num_shards = std::max(num_shards, 1);
    ShardAssignment a = makeEmpty(profile, rho, num_shards);

    auto hot = profile.hotClusters(rho);
    // Sort hot clusters by size (bytes) descending; round-robin dealing
    // of a descending sequence keeps shard footprints balanced.
    std::sort(hot.begin(), hot.end(),
              [&profile](cluster_id_t x, cluster_id_t y) {
                  const double bx = profile.clusterBytes(x);
                  const double by = profile.clusterBytes(y);
                  if (bx != by)
                      return bx > by;
                  return x < y;
              });
    for (std::size_t i = 0; i < hot.size(); ++i)
        place(a, profile, hot[i],
              i % static_cast<std::size_t>(num_shards));
    return a;
}

ShardAssignment
IndexSplitter::splitUniform(const AccessProfile &profile, double rho,
                            int num_shards)
{
    if (rho > 0.0 && num_shards < 1)
        fatal("IndexSplitter::splitUniform: need at least one shard");
    num_shards = std::max(num_shards, 1);
    ShardAssignment a = makeEmpty(profile, rho, num_shards);

    const auto hot = profile.hotClusters(rho);
    // Id-ordered dealing, ignoring sizes and access counts.
    std::vector<cluster_id_t> by_id(hot.begin(), hot.end());
    std::sort(by_id.begin(), by_id.end());
    for (std::size_t i = 0; i < by_id.size(); ++i)
        place(a, profile, by_id[i],
              i % static_cast<std::size_t>(num_shards));
    return a;
}

} // namespace vlr::core

/**
 * @file
 * Tests for the profiled search performance model (Eq. 1 machinery).
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/perf_model.h"

namespace vlr::core
{
namespace
{

const std::vector<std::size_t> kBatches = {1, 2, 4, 6, 8, 12, 16, 24, 32};

gpu::CpuSearchModel
truthModel()
{
    gpu::CpuSearchParams p;
    p.cqFixedSeconds = 0.012;
    p.cqPerQuerySeconds = 0.0009;
    p.lutFixedSeconds = 0.065;
    p.lutPerQuerySeconds = 0.0045;
    return gpu::CpuSearchModel(gpu::xeon8462Spec(), p);
}

TEST(PerfModel, NoiselessProfileReproducesTruth)
{
    const auto truth = truthModel();
    const auto m = SearchPerfModel::profile(truth, kBatches, 0.0);
    for (const std::size_t b : kBatches) {
        EXPECT_NEAR(m.tCq(static_cast<double>(b)), truth.cqSeconds(b),
                    1e-9)
            << "batch " << b;
        EXPECT_NEAR(m.tLut(static_cast<double>(b)), truth.lutSeconds(b),
                    1e-9)
            << "batch " << b;
    }
}

TEST(PerfModel, NoisyProfileStaysClose)
{
    const auto truth = truthModel();
    const auto m = SearchPerfModel::profile(truth, kBatches, 0.02, 7, 5);
    for (const std::size_t b : kBatches) {
        const double t = truth.searchSeconds(b, 0.0);
        EXPECT_NEAR(m.tSearch(static_cast<double>(b)), t, 0.05 * t)
            << "batch " << b;
    }
}

TEST(PerfModel, InterpolatesBetweenProfiledBatches)
{
    const auto truth = truthModel();
    const auto m = SearchPerfModel::profile(truth, kBatches, 0.0);
    // Batch 10 was not profiled; affine truth interpolates exactly.
    EXPECT_NEAR(m.tCq(10.0), truth.cqSeconds(10), 1e-9);
    EXPECT_NEAR(m.tLut(10.0), truth.lutSeconds(10), 1e-9);
}

TEST(PerfModel, ExtrapolatesBeyondProfiledRange)
{
    const auto truth = truthModel();
    const auto m = SearchPerfModel::profile(truth, kBatches, 0.0);
    EXPECT_NEAR(m.tLut(64.0), truth.lutSeconds(64), 1e-6);
}

TEST(PerfModel, HybridLatencyImplementsEq1)
{
    const auto truth = truthModel();
    const auto m = SearchPerfModel::profile(truth, kBatches, 0.0);
    const double b = 8.0;
    for (double eta : {0.0, 0.25, 0.5, 0.75, 1.0})
        EXPECT_NEAR(m.hybridLatency(b, eta),
                    m.tCq(b) + (1.0 - eta) * m.tLut(b), 1e-12);
}

TEST(PerfModel, HybridLatencyMonotoneInHitRate)
{
    const auto m = SearchPerfModel::profile(truthModel(), kBatches, 0.0);
    double prev = 1e9;
    for (double eta = 0.0; eta <= 1.0; eta += 0.1) {
        const double t = m.hybridLatency(8.0, eta);
        EXPECT_LE(t, prev + 1e-12);
        prev = t;
    }
}

TEST(PerfModel, RequiredEtaMinInvertsHybridLatency)
{
    const auto m = SearchPerfModel::profile(truthModel(), kBatches, 0.0);
    const double b = 12.0;
    for (double eta : {0.1, 0.4, 0.8}) {
        const double tau = m.hybridLatency(b, eta);
        EXPECT_NEAR(m.requiredEtaMin(b, tau), eta, 1e-9);
    }
}

TEST(PerfModel, RequiredEtaMinSignalsInfeasible)
{
    const auto m = SearchPerfModel::profile(truthModel(), kBatches, 0.0);
    // Tighter than even a fully cached search (tau < T_CQ) -> eta > 1.
    const double tau = 0.5 * m.tCq(8.0);
    EXPECT_GT(m.requiredEtaMin(8.0, tau), 1.0);
    // Looser than a full miss -> eta < 0 ("free").
    EXPECT_LT(m.requiredEtaMin(8.0, 10.0), 0.0);
}

TEST(PerfModel, ModelsAreNonDecreasing)
{
    const auto m = SearchPerfModel::profile(truthModel(), kBatches, 0.0);
    EXPECT_TRUE(m.cqModel().isNonDecreasing());
    EXPECT_TRUE(m.lutModel().isNonDecreasing());
}

TEST(PerfModel, RepeatsReduceNoise)
{
    const auto truth = truthModel();
    // Aggregate absolute error of 1-repeat vs 31-repeat profiles over a
    // few seeds: more repeats must not be worse on average.
    double err1 = 0.0, err31 = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto noisy1 =
            SearchPerfModel::profile(truth, kBatches, 0.1, seed, 1);
        const auto noisy31 =
            SearchPerfModel::profile(truth, kBatches, 0.1, seed, 31);
        for (const std::size_t b : kBatches) {
            const double t = truth.searchSeconds(b, 0.0);
            err1 += std::abs(noisy1.tSearch(b) - t);
            err31 += std::abs(noisy31.tSearch(b) - t);
        }
    }
    EXPECT_LT(err31, err1);
}

} // namespace
} // namespace vlr::core

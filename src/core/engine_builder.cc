#include "core/engine_builder.h"

#include <stdexcept>
#include <utility>

#include "core/online_update.h"

namespace vlr::core
{

EngineBuilder::EngineBuilder(const vs::IvfPqFastScanIndex &index)
    : index_(index)
{
}

EngineBuilder::EngineBuilder(const TieredIndex &tiered)
    : index_(tiered.source()), tiered_(&tiered)
{
}

EngineBuilder &
EngineBuilder::config(EngineConfig cfg)
{
    config_ = std::move(cfg);
    return *this;
}

EngineBuilder &
EngineBuilder::batching(BatchPolicy policy)
{
    config_.batching = policy;
    return *this;
}

EngineBuilder &
EngineBuilder::defaultK(std::size_t k)
{
    config_.defaultK = k;
    return *this;
}

EngineBuilder &
EngineBuilder::defaultNprobe(std::size_t nprobe)
{
    config_.defaultNprobe = nprobe;
    return *this;
}

EngineBuilder &
EngineBuilder::searchThreads(std::size_t n)
{
    config_.numSearchThreads = n;
    return *this;
}

EngineBuilder &
EngineBuilder::sloSearchSeconds(double seconds)
{
    config_.sloSearchSeconds = seconds;
    return *this;
}

EngineBuilder &
EngineBuilder::admissionQueueBound(std::size_t max_queued)
{
    config_.batching.maxQueue = max_queued;
    return *this;
}

EngineBuilder &
EngineBuilder::tieredFromProfile(const AccessProfile &profile,
                                 double rho)
{
    profile_ = &profile;
    rho_ = rho;
    fromProfile_ = true;
    return *this;
}

EngineBuilder &
EngineBuilder::hotShards(std::size_t n)
{
    config_.numHotShards = n;
    shardOptionsSet_ = true;
    return *this;
}

EngineBuilder &
EngineBuilder::shardBackend(ShardBackendFactory factory)
{
    config_.shardBackendFactory = std::move(factory);
    shardOptionsSet_ = true;
    return *this;
}

EngineBuilder &
EngineBuilder::updater(OnlineUpdater *updater)
{
    updater_ = updater;
    return *this;
}

std::unique_ptr<RetrievalEngine>
EngineBuilder::build()
{
    config_.validate();
    if (fromProfile_ && tiered_ != nullptr)
        throw std::invalid_argument(
            "EngineBuilder: tieredFromProfile on a builder already "
            "serving a caller-owned TieredIndex");
    if (fromProfile_ && (rho_ < 0.0 || rho_ > 1.0))
        throw std::invalid_argument(
            "EngineBuilder: rho must be in [0, 1]");
    if (shardOptionsSet_ && !fromProfile_)
        throw std::invalid_argument(
            "EngineBuilder: hotShards/shardBackend only shape the "
            "engine-owned tier built by tieredFromProfile");
    if (updater_ != nullptr && tiered_ == nullptr)
        throw std::invalid_argument(
            "EngineBuilder: updater() requires a caller-owned "
            "TieredIndex (attach to engine->tiered() after build() "
            "for profile-built tiers)");
    if (updater_ != nullptr && &updater_->index() != tiered_)
        throw std::invalid_argument(
            "EngineBuilder: updater monitors a different TieredIndex "
            "than the one being served");

    std::unique_ptr<TieredIndex> owned;
    const TieredIndex *tiered = tiered_;
    if (fromProfile_) {
        owned = std::make_unique<TieredIndex>(
            index_, *profile_, rho_,
            TieredOptions{config_.numHotShards,
                          config_.shardBackendFactory});
        tiered = owned.get();
    }
    std::unique_ptr<RetrievalEngine> engine(new RetrievalEngine(
        index_, std::move(owned), tiered, config_));
    if (updater_ != nullptr)
        engine->attachUpdater(updater_);
    return engine;
}

} // namespace vlr::core

#include "core/batch_search.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace vlr::core
{

BatchSearchSimulator::BatchSearchSimulator(gpu::CpuSearchModel cpu_model,
                                           gpu::GpuSearchModel gpu_model,
                                           Options options)
    : cpuModel_(std::move(cpu_model)), gpuModel_(std::move(gpu_model)),
      options_(options)
{
}

BatchSearchOutcome
BatchSearchSimulator::simulate(const RoutedBatch &batch) const
{
    BatchSearchOutcome out;
    const std::size_t b = batch.size();
    out.queryReady.assign(b, 0.0);
    out.minHitRate = batch.minHitRate;
    out.meanHitRate = batch.meanHitRate;
    if (b == 0)
        return out;

    // Stage 1: coarse quantization on the CPU (always CPU-resident).
    const double tcq = cpuModel_.cqSeconds(b);
    out.cqSeconds = tcq;

    // Stage 2a: GPU shards scan resident probes, starting after CQ.
    std::vector<double> shard_end(batch.shards.size(), tcq);
    for (std::size_t s = 0; s < batch.shards.size(); ++s) {
        const ShardLoad &load = batch.shards[s];
        if (load.pairs == 0 && load.workVectors <= 0.0)
            continue;
        const double bytes = load.workVectors * options_.bytesPerVector;
        const auto pairs = static_cast<std::size_t>(
            static_cast<double>(load.pairs) * options_.pairScale);
        const double dur = gpuModel_.shardSeconds(pairs, bytes);
        shard_end[s] = tcq + dur;
        GpuBusyRecord rec;
        rec.shard = static_cast<shard_id_t>(s);
        rec.startOffset = tcq;
        rec.endOffset = tcq + dur;
        rec.occupancy = std::min(options_.occupancyCap,
                                 gpuModel_.occupancy(pairs));
        out.gpuBusy.push_back(rec);
    }

    // Stage 2b: CPU scans the misses, queries grouped in ascending
    // miss-work order (the callback order of the paper's scan loop).
    std::vector<std::size_t> order(b);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&batch](std::size_t x, std::size_t y) {
                  const double wx = batch.queries[x].cpuWorkFraction;
                  const double wy = batch.queries[y].cpuWorkFraction;
                  if (wx != wy)
                      return wx < wy;
                  return x < y;
              });

    std::vector<double> cpu_done(b, tcq);
    double cum_work = 0.0;
    for (const std::size_t qi : order) {
        const double w = batch.queries[qi].cpuWorkFraction;
        if (w <= 1e-12) {
            cpu_done[qi] = tcq;
            continue;
        }
        cum_work += w;
        cpu_done[qi] = tcq + cpuModel_.lutFixedComponent(w) +
                       cpuModel_.lutMarginalComponent(cum_work);
    }

    // Stage 3: per-query readiness = both tiers done (+ merge).
    double batch_raw = tcq;
    std::vector<double> raw_ready(b, tcq);
    for (std::size_t qi = 0; qi < b; ++qi) {
        double gpu_done = tcq;
        for (const shard_id_t s : batch.queries[qi].shardsUsed) {
            gpu_done =
                std::max(gpu_done, shard_end[static_cast<std::size_t>(s)]);
        }
        raw_ready[qi] = std::max(cpu_done[qi], gpu_done);
        batch_raw = std::max(batch_raw, raw_ready[qi]);
    }

    if (options_.dispatcher) {
        // Each query forwarded when complete: mean poll delay + merge.
        double latest = 0.0;
        for (std::size_t qi = 0; qi < b; ++qi) {
            out.queryReady[qi] = raw_ready[qi] +
                                 options_.pollSeconds * 0.5 +
                                 options_.mergeSeconds;
            latest = std::max(latest, out.queryReady[qi]);
        }
        out.batchSeconds = latest;
    } else {
        // Bulk merge at the end of the whole batch.
        const double done =
            batch_raw +
            options_.mergeSeconds * std::max<std::size_t>(1, b / 8);
        std::fill(out.queryReady.begin(), out.queryReady.end(), done);
        out.batchSeconds = done;
    }
    return out;
}

} // namespace vlr::core

/**
 * @file
 * Figure 8 reproduction.
 *
 * Left: CPU search latency (CQ, LUT and total) across batch sizes on
 * the ORCAS-like workload — the piecewise-linear growth the profiled
 * performance model fits.
 * Right: empirical per-query hit-rate variance as a function of the
 * mean hit rate on the Wiki-All-like workload, against the paper's
 * parabola approximation sigma^2 = 4 sigma_max^2 eta (1 - eta).
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout,
                "Figure 8 (left): CPU search latency vs batch size");
    {
        const auto spec = wl::orcas1kSpec();
        gpu::CpuSearchModel cpu(gpu::xeon8462Spec(), spec.cpuParams);
        TextTable t({"batch", "CQ (ms)", "LUT (ms)", "search (ms)"});
        for (const std::size_t b : {1ul, 2ul, 4ul, 8ul, 12ul, 16ul,
                                    20ul, 24ul, 28ul, 32ul}) {
            t.addRow({std::to_string(b),
                      TextTable::num(cpu.cqSeconds(b) * 1e3, 1),
                      TextTable::num(cpu.lutSeconds(b) * 1e3, 1),
                      TextTable::num(cpu.searchSeconds(b, 0.0) * 1e3,
                                     1)});
        }
        t.print(std::cout);
        std::cout << "paper: latency grows piecewise-linearly with "
                     "batch size; LUT dominates CQ.\n\n";
    }

    printBanner(std::cout,
                "Figure 8 (right): hit-rate variance vs mean");
    {
        core::DatasetContext ctx(wl::wikiAllSpec());
        const auto &est = ctx.estimator();
        std::cout << "profiled sigma_max^2 = "
                  << TextTable::num(est.sigmaMaxSq(), 4) << "\n\n";
        TextTable t({"coverage", "mean hit rate",
                     "empirical variance", "parabola approx"});
        for (const double rho :
             {0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.55, 0.70,
              0.85}) {
            const double mean = est.meanHitRate(rho);
            t.addRow({TextTable::pct(rho), TextTable::num(mean, 3),
                      TextTable::num(est.empiricalVariance(rho), 4),
                      TextTable::num(est.varianceApprox(mean), 4)});
        }
        t.print(std::cout);
        std::cout << "\npaper: the observed parabolic shape (peak near "
                     "mean 0.5, vanishing toward 0 and 1) supports the "
                     "variance approximation.\n";
    }
    return 0;
}

/**
 * @file
 * Deterministic discrete-event simulator.
 *
 * All serving experiments (Figs. 11-17) run in simulated time: retrieval
 * batches, GPU kernels and LLM iterations are events with analytically
 * modeled durations. Events at equal timestamps fire in scheduling order
 * (a monotone sequence number breaks ties), so runs are exactly
 * reproducible regardless of host speed or core count.
 */

#ifndef VLR_SIMCORE_SIMULATOR_H
#define VLR_SIMCORE_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace vlr::sim
{

/** Handle used to cancel a scheduled event. */
using event_id_t = std::uint64_t;

class Simulator
{
  public:
    Simulator() = default;

    /** Current simulated time in seconds. */
    sim_time_t now() const { return now_; }

    /**
     * Schedule fn to run at now() + delay.
     * @pre delay >= 0.
     * @return id usable with cancel().
     */
    event_id_t schedule(sim_time_t delay, std::function<void()> fn);

    /** Schedule at an absolute time (must not be in the past). */
    event_id_t scheduleAt(sim_time_t when, std::function<void()> fn);

    /** Cancel a pending event; returns false if already fired/cancelled. */
    bool cancel(event_id_t id);

    /** Run until the queue empties or the horizon is reached. */
    void run(sim_time_t until = -1.0);

    /** Step a single event; returns false when the queue is empty. */
    bool step();

    std::size_t pendingEvents() const;
    std::uint64_t firedEvents() const { return fired_; }

  private:
    struct Event
    {
        sim_time_t when;
        event_id_t id;
        std::function<void()> fn;

        bool
        operator>(const Event &o) const
        {
            if (when != o.when)
                return when > o.when;
            return id > o.id;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        queue_;
    std::vector<event_id_t> cancelled_;
    /** Ids scheduled but not yet fired or cancelled. */
    std::unordered_set<event_id_t> pending_;
    sim_time_t now_ = 0.0;
    event_id_t nextId_ = 1;
    std::uint64_t fired_ = 0;
    std::size_t cancelledPending_ = 0;

    bool isCancelled(event_id_t id);
};

/**
 * A resource that processes work serially (one batch at a time), e.g.
 * the CPU search stage. Work items queue FCFS; the busy interval of each
 * is computed by a caller-supplied duration function at start time.
 */
class SerialResource
{
  public:
    explicit SerialResource(Simulator &sim);

    /**
     * Enqueue a job. When the resource is free the job starts: duration()
     * is invoked (allowing batch-dependent costs) and done() fires at
     * completion.
     */
    void submit(std::function<sim_time_t()> duration,
                std::function<void()> done);

    bool busy() const { return busy_; }
    std::size_t queueLength() const { return queue_.size(); }
    /** Total busy seconds so far (utilization accounting). */
    sim_time_t busyTime() const { return busyTime_; }

  private:
    void startNext();

    struct Job
    {
        std::function<sim_time_t()> duration;
        std::function<void()> done;
    };

    Simulator &sim_;
    std::queue<Job> queue_;
    bool busy_ = false;
    sim_time_t busyTime_ = 0.0;
};

} // namespace vlr::sim

#endif // VLR_SIMCORE_SIMULATOR_H

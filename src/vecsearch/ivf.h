/**
 * @file
 * Inverted-file (IVF) index structures.
 *
 * An IVF index clusters the database with k-means; each vector is stored
 * in the inverted list of its nearest centroid. A query first runs coarse
 * quantization (CQ) against the centroids, then scans the `nprobe`
 * closest lists. The probe lists produced here are also the raw material
 * for VectorLiteRAG's access-skew profiling.
 */

#ifndef VLR_VECSEARCH_IVF_H
#define VLR_VECSEARCH_IVF_H

#include <memory>
#include <span>
#include <vector>

#include "vecsearch/flat_index.h"
#include "vecsearch/metric.h"
#include "vecsearch/topk.h"

namespace vlr::vs
{

/** Result of coarse quantization for one query. */
struct ProbeList
{
    /** Cluster ids sorted by increasing centroid distance. */
    std::vector<cluster_id_t> clusters;
    /** Matching centroid distances. */
    std::vector<float> dists;
};

/**
 * Interface for the coarse quantizer: nearest-centroid search. The paper
 * keeps CQ on the CPU (Section IV-A1); implementations here are a flat
 * scan and an HNSW graph.
 */
class CoarseQuantizer
{
  public:
    virtual ~CoarseQuantizer() = default;

    virtual std::size_t nlist() const = 0;
    virtual std::size_t dim() const = 0;

    /** Return the nprobe closest clusters for a query. */
    virtual ProbeList probe(const float *query, std::size_t nprobe) const = 0;

    /** Centroid vector for a cluster (for residual computation). */
    virtual const float *centroid(cluster_id_t c) const = 0;
};

/** Exhaustive coarse quantizer over the centroid matrix. */
class FlatCoarseQuantizer : public CoarseQuantizer
{
  public:
    FlatCoarseQuantizer(std::vector<float> centroids, std::size_t nlist,
                        std::size_t dim, Metric metric = Metric::L2);

    std::size_t nlist() const override { return nlist_; }
    std::size_t dim() const override { return dim_; }
    ProbeList probe(const float *query, std::size_t nprobe) const override;
    const float *centroid(cluster_id_t c) const override;
    Metric metric() const { return metric_; }

  private:
    std::vector<float> centroids_;
    std::size_t nlist_;
    std::size_t dim_;
    Metric metric_;
};

/**
 * IVF index storing raw float vectors in its inverted lists (IVF-Flat).
 */
class IvfFlatIndex
{
  public:
    /**
     * @param cq trained coarse quantizer (shared so VectorLiteRAG's
     *           shards can reuse a single centroid table).
     */
    IvfFlatIndex(std::shared_ptr<const CoarseQuantizer> cq,
                 Metric metric = Metric::L2);

    /** Assign and append n vectors; ids are sequential across add calls. */
    void add(std::span<const float> vecs, std::size_t n);

    /** Append vectors with precomputed cluster assignments. */
    void addPreassigned(std::span<const float> vecs, std::size_t n,
                        std::span<const std::int32_t> assign);

    /** k-NN search probing the nprobe closest lists. */
    std::vector<SearchHit> search(const float *query, std::size_t k,
                                  std::size_t nprobe) const;

    /** Scan an explicit set of clusters (used by the hybrid pipeline). */
    std::vector<SearchHit> searchClusters(
        const float *query, std::size_t k,
        std::span<const cluster_id_t> clusters) const;

    const CoarseQuantizer &quantizer() const { return *cq_; }
    std::size_t dim() const { return cq_->dim(); }
    std::size_t nlist() const { return cq_->nlist(); }
    std::size_t size() const { return total_; }

    std::size_t listSize(cluster_id_t c) const;
    /** Sizes of every inverted list (drives skew statistics). */
    std::vector<std::size_t> listSizes() const;
    const std::vector<idx_t> &listIds(cluster_id_t c) const;

  private:
    std::shared_ptr<const CoarseQuantizer> cq_;
    Metric metric_;
    std::size_t total_ = 0;
    std::vector<std::vector<idx_t>> ids_;
    std::vector<std::vector<float>> vecs_;
};

} // namespace vlr::vs

#endif // VLR_VECSEARCH_IVF_H

/**
 * @file
 * Request arrival processes. The paper's load generator uses Poisson
 * arrivals (Section V-A); a deterministic uniform process is provided
 * for tests that need exact timings.
 */

#ifndef VLR_WORKLOAD_ARRIVAL_H
#define VLR_WORKLOAD_ARRIVAL_H

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace vlr::wl
{

/** Poisson arrival times over [0, horizon) at the given rate (req/s). */
std::vector<sim_time_t> poissonArrivals(double rate, sim_time_t horizon,
                                        std::uint64_t seed);

/** Evenly spaced arrivals (rate req/s) over [0, horizon). */
std::vector<sim_time_t> uniformArrivals(double rate, sim_time_t horizon);

} // namespace vlr::wl

#endif // VLR_WORKLOAD_ARRIVAL_H

/**
 * @file
 * End-to-end RAG serving simulation (paper Fig. 7 right): Poisson
 * arrivals -> on-demand dynamically batched retrieval (CPU + GPU shards)
 * -> dispatcher -> continuous-batching LLM cluster, with GPU memory and
 * compute contention between the stages. Produces the SLO-attainment,
 * TTFT-breakdown and end-to-end-latency numbers of Figs. 11-17.
 */

#ifndef VLR_CORE_SERVING_H
#define VLR_CORE_SERVING_H

#include <string>

#include "core/batch_policy.h"
#include "core/batch_search.h"
#include "core/context.h"
#include "core/retriever.h"
#include "llmsim/cluster.h"
#include "llmsim/model_config.h"

namespace vlr::core
{

/** Table I generation-stage SLOs. */
double sloLlmSecondsFor(const llm::LlmConfig &config);

struct ServingConfig
{
    llm::LlmConfig llmConfig;
    gpu::GpuSpec gpuSpec;
    gpu::CpuSpec cpuSpec;
    int numGpus = 8;
    RetrieverKind retriever = RetrieverKind::VectorLite;

    double arrivalRate = 20.0;
    double durationSeconds = 60.0;
    double warmupSeconds = 8.0;
    double drainSeconds = 30.0;

    std::size_t promptTokens = 1024;
    std::size_t outputTokens = 256;

    /** < 0 means use Table I values. */
    double sloSearchOverride = -1.0;
    double sloLlmOverride = -1.0;
    /** >= 0 pins the cache coverage, skipping the partitioner. */
    double fixedRho = -1.0;
    /** Force the dispatcher off (Fig. 14 ablation); -1 = strategy's. */
    int dispatcherOverride = -1;

    /** Retrieval batching (the simulator only honors maxBatch). */
    BatchPolicy batching;
    double contentionAlpha = 1.0;
    std::uint64_t seed = 77;

    /**
     * Standalone LLM peak throughput; < 0 triggers measurement (cache
     * it across sweeps via measurePeak()).
     */
    double peakThroughputHint = -1.0;
};

struct ServingResult
{
    std::string system;
    double arrivalRate = 0.0;

    double sloTotalSeconds = 0.0;
    /** Fraction of measured requests with TTFT <= total SLO. */
    double attainment = 0.0;

    double meanTtft = 0.0;
    double p50Ttft = 0.0;
    double p90Ttft = 0.0;
    double p95Ttft = 0.0;
    double p99Ttft = 0.0;

    double meanE2e = 0.0;
    double p90E2e = 0.0;

    /** TTFT breakdown means (Fig. 12). */
    double meanQueueDelay = 0.0;
    double meanSearch = 0.0;
    double p90Search = 0.0;
    double meanPrefill = 0.0;

    double meanRetrievalBatch = 0.0;
    double meanMinHitRate = 0.0;

    std::size_t submitted = 0;
    std::size_t completedFirstToken = 0;
    std::size_t completedFull = 0;

    double rho = 0.0;
    double gpuIndexBytes = 0.0;
    std::size_t llmInstances = 0;
    double peakThroughput = 0.0;
};

/** Measure (and cache upstream) the bare LLM peak throughput. */
double measurePeak(const ServingConfig &config);

/** Run one serving experiment against a shared dataset context. */
ServingResult runServing(const ServingConfig &config, DatasetContext &ctx);

} // namespace vlr::core

#endif // VLR_CORE_SERVING_H

/**
 * @file
 * Retrieval strategies: VectorLiteRAG and the paper's baselines.
 *
 *  - CPU-Only: vanilla Faiss fast-scan on the host (Section V-A).
 *  - DED-GPU: the whole (fitting) index on one dedicated GPU, which is
 *    removed from the LLM pool — the rigid-allocation baseline.
 *  - ALL-GPU: IndexIVFShards-style uniform sharding across all GPUs,
 *    full-nprobe launches, full KV displacement.
 *  - VectorLiteRAG: latency-bounded partition + pruned routing +
 *    dynamic dispatcher, with a capped retrieval occupancy.
 *  - HedraRAG: throughput-balancing cache sizing with uniform unpruned
 *    shards (Section VI-D).
 */

#ifndef VLR_CORE_RETRIEVER_H
#define VLR_CORE_RETRIEVER_H

#include <string>
#include <vector>

#include "core/context.h"
#include "core/partitioner.h"
#include "core/splitter.h"

namespace vlr::core
{

enum class RetrieverKind
{
    CpuOnly,
    DedicatedGpu,
    AllGpu,
    VectorLite,
    HedraRag,
};

std::string retrieverName(RetrieverKind kind);

/** Node-level inputs the strategies size themselves against. */
struct RetrieverConfig
{
    RetrieverKind kind = RetrieverKind::VectorLite;
    int numGpus = 8;
    gpu::GpuSpec gpuSpec;
    /** Retrieval SLO used by the partitioner (Table I or override). */
    double sloSearchSeconds = 0.150;
    /** Standalone LLM peak throughput on the full node (mu_LLM0). */
    double peakLlmThroughput = 20.0;
    /** KV bytes across all LLM GPUs with no index resident. */
    double kvBaselineBytes = 0.0;
    /** Coverage override (>= 0 skips the partitioner). */
    double fixedRho = -1.0;
    /** Occupancy cap for VectorLiteRAG's retrieval kernels. */
    double vliteOccupancyCap = 0.25;
    /** Reference batch size for HedraRAG's throughput balancing. */
    std::size_t hedraRefBatch = 32;
};

/** Fully resolved strategy: placement, routing flags, GPU mapping. */
struct RetrieverSetup
{
    RetrieverKind kind = RetrieverKind::CpuOnly;
    ShardAssignment assignment;
    bool pruneProbes = true;
    bool dispatcher = false;
    double occupancyCap = 1.0;
    /** shard id -> node GPU id. */
    std::vector<int> shardToGpu;
    /** Paper-scale index bytes resident on each node GPU. */
    std::vector<double> indexBytesPerGpu;
    /** GPU excluded from the LLM pool (-1 = none). */
    int dedicatedGpu = -1;
    double rho = 0.0;
    /** Partitioner diagnostics (VectorLite only). */
    PartitionResult partition;
};

/** Resolve a strategy against a dataset context. */
RetrieverSetup buildRetrieverSetup(const RetrieverConfig &config,
                                   const DatasetContext &ctx);

} // namespace vlr::core

#endif // VLR_CORE_RETRIEVER_H

/**
 * @file
 * Cluster access-pattern profiling (paper Section IV-A1).
 *
 * From calibration-query probe traces the profile derives: the hot
 * ordering of clusters by access frequency, the access-concentration CDF
 * (Fig. 5), the GPU memory footprint of any cache coverage rho, and the
 * mean work-weighted hit rate at rho. "Work-weighted" means a probe
 * counts proportionally to the vectors scanned in that cluster, which is
 * exactly the CPU-side LUT work the latency model (Eq. 1) cares about.
 */

#ifndef VLR_CORE_ACCESS_PROFILE_H
#define VLR_CORE_ACCESS_PROFILE_H

#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "workload/dataset.h"
#include "workload/plans.h"

namespace vlr::core
{

class AccessProfile
{
  public:
    /**
     * @param access_counts per-cluster probe counts from calibration.
     * @param cluster_work paper-scale vectors per cluster.
     * @param cluster_bytes paper-scale index bytes per cluster.
     */
    AccessProfile(std::vector<double> access_counts,
                  std::vector<double> cluster_work,
                  std::vector<double> cluster_bytes);

    /** Build from a plan set + dataset (the common path). */
    static AccessProfile fromPlans(const wl::PlanSet &plans,
                                   const wl::SyntheticDataset &dataset);

    std::size_t nlist() const { return accessCounts_.size(); }

    /** Clusters ordered by descending access count. */
    const std::vector<cluster_id_t> &hotOrder() const { return hotOrder_; }

    /** Top-(rho * nlist) clusters of the hot order. */
    std::vector<cluster_id_t> hotClusters(double rho) const;

    /** Bitmap form of hotClusters for fast membership tests. */
    std::vector<bool> hotBitmap(double rho) const;

    /** Number of hot clusters at coverage rho. */
    std::size_t numHot(double rho) const;

    /** Paper-scale index bytes of the hot set at coverage rho. */
    double indexBytes(double rho) const;

    /** Total paper-scale index bytes. */
    double totalBytes() const { return totalBytes_; }

    /**
     * Access-concentration curve: fraction of probe traffic covered by
     * the top-x fraction of clusters (paper Fig. 5).
     */
    std::vector<CdfPoint> accessConcentration() const;

    /**
     * Mean work-weighted hit rate at coverage rho, i.e. the fraction of
     * total (access x work) mass in the hot set. This is the cheap
     * aggregate the partitioning loop uses; the exact per-query
     * distribution comes from HitRateEstimator.
     */
    double meanWorkHitRate(double rho) const;

    double accessCount(cluster_id_t c) const;
    double clusterWork(cluster_id_t c) const;
    double clusterBytes(cluster_id_t c) const;

  private:
    std::vector<double> accessCounts_;
    std::vector<double> clusterWork_;
    std::vector<double> clusterBytes_;
    std::vector<cluster_id_t> hotOrder_;
    /** Cumulative bytes along hotOrder_. */
    std::vector<double> cumBytes_;
    /** Cumulative access*work along hotOrder_. */
    std::vector<double> cumMass_;
    double totalBytes_ = 0.0;
    double totalMass_ = 0.0;
};

} // namespace vlr::core

#endif // VLR_CORE_ACCESS_PROFILE_H

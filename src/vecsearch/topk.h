/**
 * @file
 * Bounded top-k selection (smaller distance = better) and result merging.
 */

#ifndef VLR_VECSEARCH_TOPK_H
#define VLR_VECSEARCH_TOPK_H

#include <limits>
#include <span>
#include <vector>

#include "common/types.h"

namespace vlr::vs
{

/** One search result: vector id and comparable distance. */
struct SearchHit
{
    idx_t id = kInvalidIdx;
    float dist = std::numeric_limits<float>::max();

    bool
    operator==(const SearchHit &o) const
    {
        return id == o.id && dist == o.dist;
    }
};

/**
 * Fixed-capacity max-heap keeping the k smallest distances seen.
 * push() is O(log k) once full; O(1) rejection for distances worse than
 * the current kth best.
 */
class TopK
{
  public:
    explicit TopK(std::size_t k);

    void push(idx_t id, float dist);

    /** Largest (worst) distance currently kept, or +inf if not full. */
    float worst() const;

    bool full() const { return heap_.size() >= k_; }
    std::size_t size() const { return heap_.size(); }
    std::size_t capacity() const { return k_; }

    /** Extract hits sorted ascending by distance (ties by id). */
    std::vector<SearchHit> sortedHits() const;

  private:
    std::size_t k_;
    std::vector<SearchHit> heap_; // max-heap on dist
};

/** Merge several sorted hit lists into the k best overall. */
std::vector<SearchHit> mergeHitLists(
    std::span<const std::vector<SearchHit>> lists, std::size_t k);

} // namespace vlr::vs

#endif // VLR_VECSEARCH_TOPK_H

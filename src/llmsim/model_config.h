/**
 * @file
 * LLM architecture descriptions used by the serving simulator. The
 * presets mirror the paper's evaluation models (Llama3-8B, Qwen3-32B,
 * Llama3-70B, and the Qwen3-30B MoE used in Fig. 4 right) with their
 * public architecture parameters.
 */

#ifndef VLR_LLMSIM_MODEL_CONFIG_H
#define VLR_LLMSIM_MODEL_CONFIG_H

#include <string>

#include "common/types.h"

namespace vlr::llm
{

/** Static model description; bf16 weights and KV assumed. */
struct LlmConfig
{
    std::string name;
    /** Total parameter count. */
    double paramCount = 8e9;
    /**
     * Parameters touched per token (== paramCount for dense models,
     * the active-expert subset for MoE).
     */
    double activeParamCount = 8e9;
    int numLayers = 32;
    int numKvHeads = 8;
    int headDim = 128;
    /** Tensor-parallel degree required for efficient serving. */
    int tensorParallel = 1;

    /** bf16 weight footprint. */
    bytes_t
    weightBytes() const
    {
        return static_cast<bytes_t>(paramCount * 2.0);
    }

    /** KV bytes per token (K and V, all layers, bf16). */
    bytes_t
    kvBytesPerToken() const
    {
        return static_cast<bytes_t>(2ULL * numLayers * numKvHeads *
                                    headDim * 2ULL);
    }
};

/** Llama3-8B (TP1, served on L40S nodes in the paper). */
LlmConfig llama3_8b();

/** Qwen3-32B (TP2 on H100). */
LlmConfig qwen3_32b();

/** Llama3-70B (TP4 on H100). */
LlmConfig llama3_70b();

/** Qwen3-30B-A3B MoE (TP2 on H100), used for the Fig. 4 KV study. */
LlmConfig qwen3_30b_moe();

/** Look up a preset by name ("llama3-8b", "qwen3-32b", "llama3-70b"). */
LlmConfig llmConfigByName(const std::string &name);

} // namespace vlr::llm

#endif // VLR_LLMSIM_MODEL_CONFIG_H

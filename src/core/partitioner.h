/**
 * @file
 * Latency-bounded partitioning (paper Algorithm 1, Section IV-A3).
 *
 * Finds the largest cache coverage rho whose hybrid search latency
 * stays within tau_s = SLO_search / (1 + eps) while accounting for the
 * LLM throughput lost to the GPU memory the index occupies. The binary
 * search couples two feedback paths: more coverage -> less KV cache ->
 * lower throughput -> smaller batches -> less coverage needed.
 */

#ifndef VLR_CORE_PARTITIONER_H
#define VLR_CORE_PARTITIONER_H

#include <vector>

#include "core/access_profile.h"
#include "core/hitrate_estimator.h"
#include "core/perf_model.h"

namespace vlr::core
{

struct PartitionInputs
{
    /** Retrieval-stage SLO (Table I). */
    double sloSearchSeconds = 0.150;
    /** Queuing factor eps of Eq. 3 (worst case 1.0). */
    double epsilon = 1.0;
    /** KV-cache bytes across the LLM's GPUs with no index resident. */
    double kvBaselineBytes = 0.0;
    /** Standalone peak LLM throughput mu_LLM0 (req/s). */
    double peakLlmThroughput = 10.0;
    /** Convergence threshold on rho. */
    double delta = 0.005;
    int maxIterations = 40;
};

struct PartitionResult
{
    /** Selected cache coverage (fraction of clusters). */
    double rho = 0.0;
    int iterations = 0;
    bool converged = false;
    /** Derived latency bound tau_s. */
    double tauS = 0.0;
    /** Throughput bound at the final rho. */
    double throughputBound = 0.0;
    /** Expected batch size at the final rho. */
    double expectedBatch = 0.0;
    /** Expected minimum batch hit rate at the final rho. */
    double expectedEtaMin = 0.0;
    /** GPU index footprint at the final rho (paper-scale bytes). */
    double indexBytes = 0.0;
    /** rho trace per iteration (for convergence plots). */
    std::vector<double> trace;
};

class LatencyBoundedPartitioner
{
  public:
    LatencyBoundedPartitioner(const SearchPerfModel &perf,
                              const HitRateEstimator &estimator,
                              const AccessProfile &profile);

    PartitionResult partition(const PartitionInputs &in) const;

    /**
     * INFERPARTITION (Algorithm 1 lines 15-25): coverage needed to meet
     * tau_s at throughput bound mu, taking the safer of the round-up /
     * round-down batch estimates.
     */
    double inferPartition(double tau_s, double mu) const;

  private:
    const SearchPerfModel &perf_;
    const HitRateEstimator &estimator_;
    const AccessProfile &profile_;
};

} // namespace vlr::core

#endif // VLR_CORE_PARTITIONER_H

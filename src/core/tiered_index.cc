#include "core/tiered_index.h"

#include <algorithm>
#include <cassert>

#include "vecsearch/topk.h"
#include "workload/plans.h"

namespace vlr::core
{

namespace
{

/** fetch_add for atomic<double> without relying on C++20 FP atomics. */
void
atomicAddDouble(std::atomic<double> &a, double x)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + x,
                                    std::memory_order_relaxed))
        ;
}

/** Single-shard placement: every hot cluster on shard 0, rest on CPU. */
ShardAssignment
makeHotAssignment(const vs::IvfPqFastScanIndex &source,
                  std::vector<cluster_id_t> hot_clusters)
{
    const std::size_t nlist = source.nlist();
    ShardAssignment a;
    a.clusterShard.assign(nlist, kCpuShard);
    a.localId.assign(nlist, -1);
    double bytes = 0.0;
    for (std::size_t i = 0; i < hot_clusters.size(); ++i) {
        const cluster_id_t c = hot_clusters[i];
        assert(c >= 0 && static_cast<std::size_t>(c) < nlist);
        a.clusterShard[static_cast<std::size_t>(c)] = 0;
        a.localId[static_cast<std::size_t>(c)] =
            static_cast<std::int32_t>(i);
        bytes += static_cast<double>(source.listBytes(c));
    }
    a.rho = nlist == 0 ? 0.0
                       : static_cast<double>(hot_clusters.size()) /
                             static_cast<double>(nlist);
    a.shardClusters.push_back(std::move(hot_clusters));
    a.shardBytes.push_back(bytes);
    return a;
}

} // namespace

TieredIndex::Tiers::Tiers(const vs::IvfPqFastScanIndex &source,
                          std::vector<cluster_id_t> hot_clusters)
    : assignment(makeHotAssignment(source, std::move(hot_clusters))),
      router(assignment, /*prune_probes=*/true),
      hot(source.subsetClusters(assignment.shardClusters[0])),
      numHot(assignment.shardClusters[0].size()),
      rho(assignment.rho),
      hotBytes(static_cast<std::size_t>(assignment.shardBytes[0]))
{
}

TieredIndex::TieredIndex(const vs::IvfPqFastScanIndex &source,
                         std::vector<cluster_id_t> hot_clusters)
    : source_(source),
      tiers_(std::make_shared<const Tiers>(source,
                                           std::move(hot_clusters))),
      accessCounts_(
          std::make_unique<std::atomic<std::uint64_t>[]>(source.nlist()))
{
}

TieredIndex::TieredIndex(const vs::IvfPqFastScanIndex &source,
                         const AccessProfile &profile, double rho)
    : TieredIndex(source, profile.hotClusters(rho))
{
}

std::shared_ptr<const TieredIndex::Tiers>
TieredIndex::snapshot() const
{
    std::lock_guard<std::mutex> lk(snapshotMutex_);
    return tiers_;
}

std::vector<vs::SearchHit>
TieredIndex::searchRouted(const Tiers &tiers, const float *query,
                          std::size_t k,
                          std::span<const cluster_id_t> clusters,
                          vs::SearchScratch *scratch,
                          TieredQueryStats *qs) const
{
    // Route the probe list through the pruned router: the same
    // work-weighted accounting the simulator uses, over real list
    // sizes. The plan and the hot/cold split are built in one pass;
    // the router then provides the hit-rate/shard-load accounting.
    wl::QueryPlan plan;
    plan.probes.assign(clusters.begin(), clusters.end());
    plan.probeWork.reserve(clusters.size());
    std::vector<cluster_id_t> hotList, coldList;
    hotList.reserve(clusters.size());
    for (const cluster_id_t c : clusters) {
        const auto w = static_cast<double>(source_.listSize(c));
        plan.probeWork.push_back(w);
        plan.totalWork += w;
        accessCounts_[static_cast<std::size_t>(c)].fetch_add(
            1, std::memory_order_relaxed);
        (tiers.assignment.isGpuResident(c) ? hotList : coldList)
            .push_back(c);
    }
    const wl::QueryPlan *pp = &plan;
    const RoutedBatch routed =
        tiers.router.route(std::span<const wl::QueryPlan *const>(&pp, 1));
    const RoutedQuery &rq = routed.queries[0];

    std::vector<vs::SearchHit> hits;
    if (coldList.empty()) {
        // Fully hot-covered: the cold tier is skipped entirely (the
        // pruned-routing fast path).
        hits = tiers.hot.searchClusters(query, k, hotList, nullptr,
                                        scratch);
    } else if (hotList.empty()) {
        hits = source_.searchClusters(query, k, coldList, nullptr,
                                      scratch);
    } else {
        std::vector<std::vector<vs::SearchHit>> parts(2);
        parts[0] = tiers.hot.searchClusters(query, k, hotList, nullptr,
                                            scratch);
        parts[1] = source_.searchClusters(query, k, coldList, nullptr,
                                          scratch);
        hits = vs::mergeHitLists(parts, k);
    }

    const bool hot_only = coldList.empty() && !hotList.empty();
    queries_.fetch_add(1, std::memory_order_relaxed);
    if (hot_only)
        hotOnly_.fetch_add(1, std::memory_order_relaxed);
    else if (hotList.empty())
        coldOnly_.fetch_add(1, std::memory_order_relaxed);
    else
        split_.fetch_add(1, std::memory_order_relaxed);
    hotProbes_.fetch_add(hotList.size(), std::memory_order_relaxed);
    totalProbes_.fetch_add(clusters.size(), std::memory_order_relaxed);
    atomicAddDouble(hitRateSum_, rq.hitRate);

    if (qs) {
        qs->hotProbes = hotList.size();
        qs->coldProbes = coldList.size();
        qs->hitRate = rq.hitRate;
        qs->hotOnly = hot_only;
    }
    return hits;
}

std::vector<vs::SearchHit>
TieredIndex::search(const float *query, std::size_t k, std::size_t nprobe,
                    vs::SearchScratch *scratch, TieredQueryStats *qs) const
{
    const auto tiers = snapshot();
    const auto pl = source_.quantizer().probe(query, nprobe);
    return searchRouted(*tiers, query, k, pl.clusters, scratch, qs);
}

std::vector<std::vector<vs::SearchHit>>
TieredIndex::searchBatchParallel(std::span<const float> queries,
                                 std::size_t nq, std::size_t k,
                                 std::size_t nprobe, ThreadPool &pool,
                                 TieredBatchStats *bs) const
{
    const std::size_t d = dim();
    assert(queries.size() >= nq * d);
    // One snapshot serves the whole batch, so a concurrent repartition
    // cannot split a batch across placement generations.
    const auto tiers = snapshot();
    std::vector<std::vector<vs::SearchHit>> out(nq);
    std::vector<TieredQueryStats> qstats(bs ? nq : 0);
    pool.parallelForDynamic(nq, 1, [&](std::size_t i) {
        static thread_local vs::SearchScratch scratch;
        const float *q = queries.data() + i * d;
        const auto pl = source_.quantizer().probe(q, nprobe);
        out[i] = searchRouted(*tiers, q, k, pl.clusters, &scratch,
                              bs ? &qstats[i] : nullptr);
    });
    if (bs) {
        *bs = {};
        bs->queries = nq;
        double sum = 0.0;
        for (const auto &s : qstats) {
            if (s.hotOnly)
                ++bs->hotOnlyQueries;
            else if (s.hotProbes == 0)
                ++bs->coldOnlyQueries;
            else
                ++bs->splitQueries;
            sum += s.hitRate;
            bs->minHitRate = std::min(bs->minHitRate, s.hitRate);
        }
        bs->meanHitRate =
            nq == 0 ? 0.0 : sum / static_cast<double>(nq);
        if (nq == 0)
            bs->minHitRate = 0.0;
    }
    return out;
}

void
TieredIndex::repartition(std::vector<cluster_id_t> hot_clusters)
{
    // Build the replacement generation outside the lock: in-flight and
    // newly admitted searches keep using the old snapshot meanwhile.
    auto next =
        std::make_shared<const Tiers>(source_, std::move(hot_clusters));
    {
        std::lock_guard<std::mutex> lk(snapshotMutex_);
        tiers_ = std::move(next);
    }
    repartitions_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<double>
TieredIndex::drainAccessCounts()
{
    const std::size_t n = nlist();
    std::vector<double> out(n);
    for (std::size_t c = 0; c < n; ++c)
        out[c] = static_cast<double>(
            accessCounts_[c].exchange(0, std::memory_order_relaxed));
    return out;
}

AccessProfile
TieredIndex::profileFromCounts(std::vector<double> counts) const
{
    const std::size_t n = nlist();
    assert(counts.size() == n);
    std::vector<double> work(n), bytes(n);
    for (std::size_t c = 0; c < n; ++c) {
        const auto id = static_cast<cluster_id_t>(c);
        work[c] = static_cast<double>(source_.listSize(id));
        bytes[c] = static_cast<double>(source_.listBytes(id));
    }
    return AccessProfile(std::move(counts), std::move(work),
                         std::move(bytes));
}

TieredStatsSnapshot
TieredIndex::stats() const
{
    TieredStatsSnapshot s;
    s.queries = queries_.load(std::memory_order_relaxed);
    s.hotOnlyQueries = hotOnly_.load(std::memory_order_relaxed);
    s.coldOnlyQueries = coldOnly_.load(std::memory_order_relaxed);
    s.splitQueries = split_.load(std::memory_order_relaxed);
    const auto hot_probes = hotProbes_.load(std::memory_order_relaxed);
    const auto total_probes = totalProbes_.load(std::memory_order_relaxed);
    s.meanHitRate =
        s.queries == 0
            ? 0.0
            : hitRateSum_.load(std::memory_order_relaxed) /
                  static_cast<double>(s.queries);
    s.hotProbeFraction =
        total_probes == 0 ? 0.0
                          : static_cast<double>(hot_probes) /
                                static_cast<double>(total_probes);
    s.repartitions = repartitions_.load(std::memory_order_relaxed);
    const auto tiers = snapshot();
    s.rho = tiers->rho;
    s.numHot = tiers->numHot;
    s.hotBytes = tiers->hotBytes;
    return s;
}

std::vector<bool>
TieredIndex::hotBitmap() const
{
    const auto tiers = snapshot();
    std::vector<bool> bm(nlist(), false);
    for (const cluster_id_t c : tiers->assignment.shardClusters[0])
        bm[static_cast<std::size_t>(c)] = true;
    return bm;
}

double
TieredIndex::rho() const
{
    return snapshot()->rho;
}

std::size_t
TieredIndex::numHotClusters() const
{
    return snapshot()->numHot;
}

} // namespace vlr::core

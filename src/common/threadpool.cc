#include "common/threadpool.h"

#include <algorithm>

namespace vlr
{

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads <= 1)
        return;
    threads_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    cvTask_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            cvTask_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lk(mutex_);
            --inflight_;
        }
        cvDone_.notify_all();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        ++inflight_;
        tasks_.push(std::move(task));
    }
    cvTask_.notify_one();
}

void
ThreadPool::waitAll()
{
    std::unique_lock<std::mutex> lk(mutex_);
    cvDone_.wait(lk, [this] { return inflight_ == 0; });
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    parallelChunks(n, [&fn](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            fn(i);
    });
}

void
ThreadPool::parallelChunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (n == 0)
        return;
    const std::size_t workers = threads_.empty() ? 1 : threads_.size();
    if (workers == 1) {
        fn(0, n);
        return;
    }
    const std::size_t chunk = (n + workers - 1) / workers;
    for (std::size_t b = 0; b < n; b += chunk) {
        const std::size_t e = std::min(n, b + chunk);
        submit([&fn, b, e] { fn(b, e); });
    }
    waitAll();
}

} // namespace vlr

#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace vlr
{

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return n_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return n_ ? max_ : 0.0;
}

void
SampleSet::add(double x)
{
    samples_.push_back(x);
    sortedValid_ = false;
}

void
SampleSet::addAll(std::span<const double> xs)
{
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sortedValid_ = false;
}

void
SampleSet::clear()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = false;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double
SampleSet::min() const
{
    ensureSorted();
    return sorted_.empty() ? 0.0 : sorted_.front();
}

double
SampleSet::max() const
{
    ensureSorted();
    return sorted_.empty() ? 0.0 : sorted_.back();
}

double
SampleSet::percentile(double p) const
{
    ensureSorted();
    if (sorted_.empty())
        return 0.0;
    assert(p >= 0.0 && p <= 100.0);
    if (sorted_.size() == 1)
        return sorted_[0];
    const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double
SampleSet::fractionBelow(double threshold) const
{
    ensureSorted();
    if (sorted_.empty())
        return 0.0;
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), threshold);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double
SampleSet::variance() const
{
    if (samples_.empty())
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double x : samples_)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(samples_.size());
}

void
SampleSet::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

LatencySummary
summarizeLatency(const SampleSet &samples)
{
    LatencySummary s;
    if (samples.empty())
        return s;
    s.count = samples.count();
    s.mean = samples.mean();
    s.p50 = samples.percentile(50);
    s.p90 = samples.percentile(90);
    s.p95 = samples.percentile(95);
    s.p99 = samples.percentile(99);
    s.max = samples.max();
    return s;
}

std::vector<CdfPoint>
weightConcentrationCurve(std::span<const double> weights,
                         std::size_t max_points)
{
    std::vector<double> w(weights.begin(), weights.end());
    std::sort(w.begin(), w.end(), std::greater<double>());
    const double total = std::accumulate(w.begin(), w.end(), 0.0);

    std::vector<CdfPoint> curve;
    if (w.empty() || total <= 0.0)
        return curve;

    const std::size_t n = w.size();
    const std::size_t stride = std::max<std::size_t>(1, n / max_points);
    double acc = 0.0;
    curve.push_back({0.0, 0.0});
    for (std::size_t i = 0; i < n; ++i) {
        acc += w[i];
        if ((i + 1) % stride == 0 || i + 1 == n) {
            curve.push_back({static_cast<double>(i + 1) /
                                 static_cast<double>(n),
                             acc / total});
        }
    }
    return curve;
}

double
evalConcentration(const std::vector<CdfPoint> &curve, double coverage)
{
    if (curve.empty())
        return 0.0;
    coverage = std::clamp(coverage, 0.0, 1.0);
    auto it = std::lower_bound(curve.begin(), curve.end(), coverage,
                               [](const CdfPoint &p, double c) {
                                   return p.x < c;
                               });
    if (it == curve.begin())
        return it->cum;
    if (it == curve.end())
        return curve.back().cum;
    const auto &hi = *it;
    const auto &lo = *(it - 1);
    if (hi.x <= lo.x)
        return hi.cum;
    const double frac = (coverage - lo.x) / (hi.x - lo.x);
    return lo.cum + frac * (hi.cum - lo.cum);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    assert(hi > lo && bins > 0);
}

void
Histogram::add(double x)
{
    const double t = std::clamp((x - lo_) / (hi_ - lo_), 0.0, 1.0);
    auto b = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
    if (b >= counts_.size())
        b = counts_.size() - 1;
    ++counts_[b];
    ++total_;
}

double
Histogram::binLo(std::size_t b) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                     static_cast<double>(counts_.size());
}

double
Histogram::binHi(std::size_t b) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(b + 1) /
                     static_cast<double>(counts_.size());
}

std::vector<double>
Histogram::densities() const
{
    std::vector<double> d(counts_.size(), 0.0);
    if (total_ == 0)
        return d;
    for (std::size_t i = 0; i < counts_.size(); ++i)
        d[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
    return d;
}

} // namespace vlr

#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace vlr
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        throw std::invalid_argument("TextTable row arity mismatch");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            for (std::size_t p = row[c].size(); p < widths[c] + 2; ++p)
                os << ' ';
        }
        os << '\n';
    };
    emitRow(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n'
       << "==== " << title << " "
       << std::string(title.size() < 70 ? 70 - title.size() : 4, '=') << '\n';
}

} // namespace vlr

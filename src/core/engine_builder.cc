#include "core/engine_builder.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/online_update.h"
#include "core/slo_autopilot.h"
#include "storage/index_store.h"

namespace vlr::core
{

EngineBuilder::EngineBuilder(const vs::IvfPqFastScanIndex &index)
    : index_(index)
{
}

EngineBuilder::EngineBuilder(const TieredIndex &tiered)
    : index_(tiered.source()), tiered_(&tiered)
{
}

EngineBuilder::EngineBuilder(
    std::shared_ptr<const vs::IvfPqFastScanIndex> owned)
    : ownedIndex_(std::move(owned)), index_(*ownedIndex_)
{
}

EngineBuilder
EngineBuilder::fromArtifact(const std::string &path)
{
    return EngineBuilder(std::make_shared<const vs::IvfPqFastScanIndex>(
        storage::IndexStore::load(path)));
}

EngineBuilder &
EngineBuilder::config(EngineConfig cfg)
{
    config_ = std::move(cfg);
    return *this;
}

EngineBuilder &
EngineBuilder::batching(BatchPolicy policy)
{
    config_.batching = policy;
    return *this;
}

EngineBuilder &
EngineBuilder::defaultK(std::size_t k)
{
    config_.defaultK = k;
    return *this;
}

EngineBuilder &
EngineBuilder::defaultNprobe(std::size_t nprobe)
{
    config_.defaultNprobe = nprobe;
    return *this;
}

EngineBuilder &
EngineBuilder::searchThreads(std::size_t n)
{
    config_.numSearchThreads = n;
    return *this;
}

EngineBuilder &
EngineBuilder::pinSearchThreads(bool pin)
{
    config_.pinSearchThreads = pin;
    return *this;
}

EngineBuilder &
EngineBuilder::sloSearchSeconds(double seconds)
{
    config_.sloSearchSeconds = seconds;
    return *this;
}

EngineBuilder &
EngineBuilder::admissionQueueBound(std::size_t max_queued)
{
    config_.batching.maxQueue = max_queued;
    return *this;
}

EngineBuilder &
EngineBuilder::degradation(DegradationPolicy policy)
{
    config_.degrade = policy;
    return *this;
}

EngineBuilder &
EngineBuilder::tenantIsolation(TenantPolicy policy)
{
    config_.tenants = std::move(policy);
    return *this;
}

EngineBuilder &
EngineBuilder::tenantClass(TenantClass cls)
{
    config_.tenants.enable = true;
    for (TenantClass &existing : config_.tenants.classes)
        if (existing.id == cls.id) {
            existing = std::move(cls);
            return *this;
        }
    config_.tenants.classes.push_back(std::move(cls));
    return *this;
}

EngineBuilder &
EngineBuilder::autopilot(AutopilotPolicy policy)
{
    config_.autopilot = policy;
    return *this;
}

EngineBuilder &
EngineBuilder::tieredFromProfile(const AccessProfile &profile,
                                 double rho)
{
    profile_ = &profile;
    rho_ = rho;
    fromProfile_ = true;
    return *this;
}

EngineBuilder &
EngineBuilder::hotShards(std::size_t n)
{
    config_.numHotShards = n;
    shardOptionsSet_ = true;
    return *this;
}

EngineBuilder &
EngineBuilder::shardBackend(ShardBackendFactory factory)
{
    config_.shardBackendFactory = std::move(factory);
    shardOptionsSet_ = true;
    return *this;
}

EngineBuilder &
EngineBuilder::coldTier(const HotShardBackend *backend)
{
    coldBackend_ = backend;
    return *this;
}

EngineBuilder &
EngineBuilder::updater(OnlineUpdater *updater)
{
    updater_ = updater;
    return *this;
}

std::unique_ptr<RetrievalEngine>
EngineBuilder::build()
{
    config_.validate();
    if (fromProfile_ && tiered_ != nullptr)
        throw std::invalid_argument(
            "EngineBuilder: tieredFromProfile on a builder already "
            "serving a caller-owned TieredIndex");
    if (fromProfile_ && (rho_ < 0.0 || rho_ > 1.0))
        throw std::invalid_argument(
            "EngineBuilder: rho must be in [0, 1]");
    if (shardOptionsSet_ && !fromProfile_)
        throw std::invalid_argument(
            "EngineBuilder: hotShards/shardBackend only shape the "
            "engine-owned tier built by tieredFromProfile");
    if (coldBackend_ != nullptr && !fromProfile_)
        throw std::invalid_argument(
            "EngineBuilder: coldTier() only shapes the engine-owned "
            "tier built by tieredFromProfile");
    if (coldBackend_ != nullptr &&
        coldBackend_->numClusters() != index_.nlist())
        throw std::invalid_argument(
            "EngineBuilder: cold backend cluster count does not match "
            "the served index");
    if (updater_ != nullptr && tiered_ == nullptr)
        throw std::invalid_argument(
            "EngineBuilder: updater() requires a caller-owned "
            "TieredIndex (attach to engine->tiered() after build() "
            "for profile-built tiers)");
    if (updater_ != nullptr && &updater_->index() != tiered_)
        throw std::invalid_argument(
            "EngineBuilder: updater monitors a different TieredIndex "
            "than the one being served");
    if (config_.autopilot.enable && tiered_ == nullptr && !fromProfile_)
        throw std::invalid_argument(
            "EngineBuilder: autopilot requires tiered serving "
            "(tieredFromProfile or a caller-owned TieredIndex)");
    if (config_.autopilot.enable && tiered_ != nullptr &&
        updater_ == nullptr)
        throw std::invalid_argument(
            "EngineBuilder: autopilot over a caller-owned TieredIndex "
            "needs updater() — it is the actuation path");

    std::unique_ptr<TieredIndex> owned;
    const TieredIndex *tiered = tiered_;
    if (fromProfile_) {
        TieredOptions topts{config_.numHotShards,
                            config_.shardBackendFactory};
        topts.coldBackend = coldBackend_;
        // Give the autopilot's shard-count actuation headroom to grow
        // the hot tier past the construction-time count.
        if (config_.autopilot.enable)
            topts.maxShards = std::max(config_.autopilot.maxShards,
                                       config_.numHotShards);
        owned = std::make_unique<TieredIndex>(index_, *profile_, rho_,
                                              std::move(topts));
        tiered = owned.get();
    }
    std::unique_ptr<RetrievalEngine> engine(new RetrievalEngine(
        index_, std::move(owned), tiered, config_));
    // fromArtifact path: the engine adopts the restored index so it
    // outlives every component referencing it.
    engine->ownedIndex_ = std::move(ownedIndex_);
    OnlineUpdater *updater = updater_;
    if (config_.autopilot.enable && fromProfile_) {
        // Engine-owned control plane: the updater exists purely as the
        // autopilot's snapshot-swap actuation path. Its drift monitor
        // is never fed (the engine skips record() while an autopilot
        // is attached), so the work-mass expectation is only a
        // placeholder baseline.
        OnlineUpdater::Options uopts;
        uopts.rho = rho_;
        engine->ownedUpdater_ = std::make_unique<OnlineUpdater>(
            *engine->ownedTiered_, uopts,
            profile_->meanWorkHitRate(rho_));
        updater = engine->ownedUpdater_.get();
    }
    if (updater != nullptr)
        engine->attachUpdater(updater);
    if (config_.autopilot.enable)
        engine->ownedAutopilot_ = std::make_unique<SloAutopilot>(
            *engine, *updater, config_.autopilot);
    return engine;
}

} // namespace vlr::core

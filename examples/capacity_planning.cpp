/**
 * @file
 * Capacity planning across node sizes (paper Fig. 17 workflow).
 *
 * For 4-, 6- and 8-GPU nodes (with CPU cores provisioned in
 * proportion, as cloud providers do), find the highest arrival rate at
 * which each retrieval strategy still meets the combined TTFT SLO at
 * the 90th percentile, and report it next to the node's bare LLM
 * capacity. This is the "how many GPUs do I need for X req/s"
 * question a RAG operator actually asks.
 *
 * Run: ./examples/capacity_planning [--smoke]
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "core/vectorliterag.h"

namespace
{

using namespace vlr;

/**
 * Largest SLO-compliant rate found by sweeping up to 1.2x capacity
 * (coarse grid; a deployment would bisect).
 */
double
maxCompliantRate(core::DatasetContext &ctx,
                 const core::ServingConfig &base, double peak,
                 double step)
{
    double best = 0.0;
    for (double frac = 0.3; frac <= 1.2; frac += step) {
        auto cfg = base;
        cfg.arrivalRate = frac * peak;
        const auto res = core::runServing(cfg, ctx);
        if (res.attainment >= 0.9)
            best = cfg.arrivalRate;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vlr;

    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

    std::cout << "VectorLiteRAG capacity planning\n"
              << "===============================\n\n"
              << "workload: ORCAS-2K + Qwen3-32B, SLO "
              << wl::orcas2kSpec().sloSearchSeconds * 1e3 << " ms + "
              << core::sloLlmSecondsFor(llm::qwen3_32b()) * 1e3
              << " ms, P90 target\n\n";

    const auto spec = wl::orcas2kSpec();
    const auto model = llm::qwen3_32b();

    TextTable t({"node", "bare LLM (req/s)", "CPU-Only (req/s)",
                 "ALL-GPU (req/s)", "vLiteRAG (req/s)",
                 "gain vs ALL-GPU"});
    const std::vector<int> node_sizes =
        smoke ? std::vector<int>{6} : std::vector<int>{4, 6, 8};
    const double rate_step = smoke ? 0.45 : 0.15;
    for (const int gpus : node_sizes) {
        const int cores = gpus * 8;
        core::DatasetContext::Options opts;
        opts.cpuSpec = gpu::xeonScaled(cores);
        core::DatasetContext ctx(spec, opts);

        core::ServingConfig base;
        base.llmConfig = model;
        base.gpuSpec = gpu::h100Spec();
        base.cpuSpec = gpu::xeonScaled(cores);
        base.numGpus = gpus;
        base.durationSeconds = smoke ? 8.0 : 40.0;
        const double peak = core::measurePeak(base);
        base.peakThroughputHint = peak;

        base.retriever = core::RetrieverKind::CpuOnly;
        const double cpu_rate =
            maxCompliantRate(ctx, base, peak, rate_step);
        base.retriever = core::RetrieverKind::AllGpu;
        const double allgpu_rate =
            maxCompliantRate(ctx, base, peak, rate_step);
        base.retriever = core::RetrieverKind::VectorLite;
        const double vlite_rate =
            maxCompliantRate(ctx, base, peak, rate_step);

        t.addRow({std::to_string(gpus) + " GPU / " +
                      std::to_string(cores) + " cores",
                  TextTable::num(peak, 1), TextTable::num(cpu_rate, 1),
                  TextTable::num(allgpu_rate, 1),
                  TextTable::num(vlite_rate, 1),
                  allgpu_rate > 0.0
                      ? TextTable::num(vlite_rate / allgpu_rate, 2) + "x"
                      : "-"});
    }
    t.print(std::cout);

    std::cout << "\nvLiteRAG's compliant throughput scales roughly "
                 "with GPU count and approaches the bare-LLM capacity "
                 "on every node size (paper Fig. 17).\n";
    return 0;
}

/**
 * @file
 * Multi-tenant replayable workload bench — the sustained
 * production-shaped proof behind the serving engine. Two scenarios,
 * selected with `--scenario` (default `burst`), both exit-code gated
 * so CI enforces the isolation story:
 *
 * **burst** — a WorkloadScript declares three tenants sharing one
 * engine (premium: high priority, tight deadline, heavy skew;
 * standard: mid priority, diurnal drift; bursty: 10x arrival burst
 * mid-run plus a hotspot flip). The script expands to a
 * deterministic, replayable WorkloadTrace (saved, reloaded and
 * verified byte-for-byte during the run) replayed in real time
 * against three engine configurations:
 *
 *  - no-isolation        per-tenant accounting only; the bounded
 *                        queue is first-come-first-admitted, so the
 *                        burst can squeeze everyone else out;
 *  - isolated            typed TenantClass contracts: weighted
 *                        per-tenant admission plus weighted fair
 *                        batching (TenantPolicy::fairService);
 *  - isolated+autopilot  isolation plus graceful nprobe degradation
 *                        (premium opted out via degradable=false),
 *                        adaptive admission shares and the
 *                        closed-loop SLO autopilot.
 *
 * The gate checks compliant tenants' miss rates and absolute p99
 * bounds on the isolated config, that the burst was clipped, and —
 * across configs — that the autopilot config does not drift a
 * compliant tenant's p99 beyond tolerance of the plain-isolated
 * baseline. The per-config WFQ share-attainment table (scanned-work
 * fraction vs weight fraction) lands in BENCH_workload.json.
 *
 * **tenant-slo** — the adversarial fairness proof. Engine capacity C
 * is first measured by a closed-loop saturation probe (same throttled
 * backend, unbounded queue), then three tenants are scripted relative
 * to C: premium (0.25C, 50 ms deadline, non-degradable), standard
 * (0.60C) and an adversarial flood tenant that joins mid-trace at
 * 1.5C with the highest priority — claiming urgency to grab service.
 * With WFQ + per-tenant autopilot targets + adaptive shares enabled,
 * the gate requires every continuously-backlogged tenant's share of
 * scanned work over the flood window to land within 10% of its WFQ
 * weight entitlement, premium's miss rate and p99 to stay under its
 * SLO bound, and the flood to be clipped; the identical trace against
 * the no-isolation config must demonstrably violate both the share
 * bound and premium's SLO. Results land in BENCH_workload_slo.json.
 *
 * Hot shards run behind the throttled backend, so engine capacity is
 * sleep-bounded and the overloads reproduce on any host.
 *
 * Run: ./bench_workload [num_queries] [--smoke]
 *                       [--scenario burst|tenant-slo]
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "workload/tenant.h"

namespace
{

using namespace vlr;

constexpr core::TenantId kPremium{1};
constexpr core::TenantId kStandard{2};
constexpr core::TenantId kBursty{3};
constexpr core::TenantId kFlood{3};

/** Compliant-tenant bounds enforced by the burst isolation gate. */
constexpr double kMissRateBound = 0.08;
constexpr double kP99TotalBound = 0.080; // seconds
/** Allowed compliant-tenant p99 drift of the autopilot config over
 *  the plain-isolated baseline (relative). */
constexpr double kP99DriftTolerance = 0.25;

/** tenant-slo scenario bounds. */
constexpr double kSloMissBound = 0.05;
constexpr double kSloP99Bound = 0.05; // seconds
/** WFQ share attainment: relative error vs weight entitlement. */
constexpr double kShareTolerance = 0.10;
/** The flood must lose at least this fraction of its submissions. */
constexpr double kClipFraction = 0.30;

/**
 * Replay the trace in real time: sleep until each scripted arrival
 * (submitting immediately when behind schedule) and submit with the
 * tenant's SLO class. Returns the replay wall time.
 */
double
replayTrace(core::RetrievalEngine &engine, const wl::WorkloadTrace &trace)
{
    std::vector<std::future<core::SearchResponse>> futures;
    futures.reserve(trace.size());
    WallTimer wall;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            trace.requests()[i].atSeconds));
        std::this_thread::sleep_until(due);
        futures.push_back(engine.submit(trace.request(i)));
    }
    engine.drain();
    const double secs = wall.elapsed();
    for (auto &f : futures)
        f.get();
    return secs;
}

/**
 * Replay like replayTrace, additionally capturing a stats snapshot at
 * the first arrival at/after @p t_join and @p t_leave — the window
 * deltas isolate the interval where all tenants are live, so the WFQ
 * share gate measures steady contention, not ramp-up or drain.
 */
double
replayTraceWindowed(core::RetrievalEngine &engine,
                    const wl::WorkloadTrace &trace, double t_join,
                    double t_leave, core::EngineStatsSnapshot &at_join,
                    core::EngineStatsSnapshot &at_leave)
{
    std::vector<std::future<core::SearchResponse>> futures;
    futures.reserve(trace.size());
    bool took_join = false, took_leave = false;
    WallTimer wall;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const double at = trace.requests()[i].atSeconds;
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(at));
        std::this_thread::sleep_until(due);
        if (!took_join && at >= t_join) {
            at_join = engine.stats();
            took_join = true;
        }
        if (!took_leave && at >= t_leave) {
            at_leave = engine.stats();
            took_leave = true;
        }
        futures.push_back(engine.submit(trace.request(i)));
    }
    if (!took_join)
        at_join = engine.stats();
    if (!took_leave)
        at_leave = engine.stats();
    engine.drain();
    const double secs = wall.elapsed();
    for (auto &f : futures)
        f.get();
    return secs;
}

const core::TenantStatsSnapshot *
findTenant(const core::EngineStatsSnapshot &s, core::TenantId id)
{
    for (const auto &ts : s.tenants)
        if (ts.tenant == id)
            return &ts;
    return nullptr;
}

double
servedWorkOf(const core::EngineStatsSnapshot &s, core::TenantId id)
{
    const auto *ts = findTenant(s, id);
    return ts != nullptr ? static_cast<double>(ts->servedWork) : 0.0;
}

void
writeTenantJson(bench::JsonWriter &w, const char *name,
                const core::TenantStatsSnapshot &ts)
{
    w.beginObject();
    w.kv("name", name);
    w.kv("tenant", ts.tenant.value);
    w.kv("submitted", ts.submitted);
    w.kv("served", ts.served);
    w.kv("expired", ts.expired);
    w.kv("rejected", ts.rejected);
    w.kv("degradedServed", ts.degradedServed);
    w.kv("servedWork", ts.servedWork);
    w.kv("share", ts.share);
    w.kv("weight", ts.weight);
    w.kv("missRate", ts.missRate());
    w.kv("p50TotalSeconds", ts.totalLatency.p50);
    w.kv("p99TotalSeconds", ts.totalLatency.p99);
    w.kv("p99QueueSeconds", ts.queueLatency.p99);
    w.endObject();
}

const char *
burstTenantName(core::TenantId tenant)
{
    if (tenant == kPremium)
        return "premium";
    if (tenant == kStandard)
        return "standard";
    if (tenant == kBursty)
        return "bursty";
    return "?";
}

const char *
sloTenantName(core::TenantId tenant)
{
    if (tenant == kPremium)
        return "premium";
    if (tenant == kStandard)
        return "standard";
    if (tenant == kFlood)
        return "flood";
    return "?";
}

/** AccessProfile calibrated from @p n_cal query vectors. */
core::AccessProfile
profileFrom(const wl::SyntheticDataset &dataset,
            const wl::DatasetSpec &spec, const auto &cq,
            const std::vector<float> &cal, std::size_t n_cal)
{
    std::vector<double> work(spec.numClusters);
    for (std::size_t c = 0; c < spec.numClusters; ++c)
        work[c] = static_cast<double>(dataset.clusterSizes()[c]) *
                  spec.scaleFactor();
    const auto plans =
        wl::PlanSet::build(*cq, cal, n_cal, spec.nprobe, work);
    return core::AccessProfile::fromPlans(plans, dataset);
}

// ====================================================================
// Scenario: burst (default)
// ====================================================================

int
runBurstScenario(const bench::BenchArgs &args, const wl::DatasetSpec &spec,
                 const wl::SyntheticDataset &dataset,
                 const vs::IvfPqFastScanIndex &index, const auto &cq)
{
    // --- workload script -----------------------------------------------
    // Rates are sized so the run submits roughly num_queries requests,
    // the baseline (burst-free) demand fits inside the throttled
    // engine's sleep-bounded capacity, and the burst window alone
    // exceeds it — so compliant tenants only contend while the burst
    // is live, which is the contention isolation must absorb.
    const double horizon = args.smoke ? 1.5 : 3.0;
    const double base_rate =
        static_cast<double>(args.numQueries) / (3.0 * horizon);

    wl::WorkloadScript script;
    script.horizonSeconds = horizon;
    {
        wl::TenantSpec premium;
        premium.name = "premium";
        premium.tenant = kPremium;
        premium.arrivalRate = 0.60 * base_rate;
        premium.zipfTheta = 1.1;
        premium.k = 10;
        premium.deadlineSeconds = 0.040;
        premium.priority = 2;
        script.tenants.push_back(premium);

        wl::TenantSpec standard;
        standard.name = "standard";
        standard.tenant = kStandard;
        standard.arrivalRate = 0.90 * base_rate;
        standard.zipfTheta = 0.8;
        standard.diurnalAmplitude = 0.4;
        standard.diurnalPeriodSeconds = horizon;
        standard.k = 10;
        standard.deadlineSeconds = 0.060;
        standard.priority = 1;
        script.tenants.push_back(standard);

        wl::TenantSpec bursty;
        bursty.name = "bursty";
        bursty.tenant = kBursty;
        bursty.arrivalRate = 0.50 * base_rate;
        bursty.zipfTheta = 1.4;
        bursty.burstFactor = 10.0;
        bursty.burstStartSeconds = 0.40 * horizon;
        bursty.burstEndSeconds = 0.70 * horizon;
        bursty.hotspotFlipSeconds = {0.55 * horizon};
        bursty.hotspotFlipFraction = 0.5;
        bursty.k = 10;
        bursty.deadlineSeconds = 0.030;
        bursty.priority = 1;
        script.tenants.push_back(bursty);
    }

    const std::uint64_t trace_seed = 4242;
    const auto trace =
        wl::WorkloadTrace::generate(script, dataset, trace_seed);

    // Replayability check: the serialized trace must reload equal.
    const char *trace_path = "WORKLOAD_trace.bin";
    trace.saveFile(trace_path);
    const bool trace_roundtrip =
        wl::WorkloadTrace::loadFile(trace_path) == trace;
    std::remove(trace_path);

    std::cout << "index: " << index.size() << " vectors, nlist "
              << index.nlist() << "; script: " << trace.size()
              << " requests over " << horizon << " s ("
              << trace.countForTenant(kPremium) << " premium, "
              << trace.countForTenant(kStandard) << " standard, "
              << trace.countForTenant(kBursty)
              << " bursty; 10x burst in ["
              << script.tenants[2].burstStartSeconds << ", "
              << script.tenants[2].burstEndSeconds
              << ") s); trace round-trip "
              << (trace_roundtrip ? "OK" : "FAILED") << "\n\n";

    // --- calibration: access profile from the trace's own queries -----
    const std::size_t n_cal =
        std::min<std::size_t>(trace.size(), args.smoke ? 400 : 1200);
    std::vector<float> cal(n_cal * spec.dim);
    for (std::size_t i = 0; i < n_cal; ++i)
        std::copy(trace.requests()[i].query.begin(),
                  trace.requests()[i].query.end(),
                  cal.begin() + i * spec.dim);
    const auto profile = profileFrom(dataset, spec, cq, cal, n_cal);

    // --- three configurations against the identical trace -------------
    // The throttled backend charges 1 ms per hot-shard scan, so
    // capacity is bounded by sleeps (portable across hosts) and the
    // burst window genuinely overloads the queue.
    const double scan_delay_s = 1e-3;
    const std::size_t max_queue = 48;

    struct ConfigResult
    {
        std::string name;
        double replaySeconds = 0.0;
        bool fair = false;
        core::EngineStatsSnapshot stats;
        std::map<core::TenantId, double> weights;
    };
    const std::vector<std::string> modes = {"no-isolation", "isolated",
                                            "isolated+autopilot"};
    std::vector<ConfigResult> results;

    for (const std::string &mode : modes) {
        const bool isolated = mode != "no-isolation";
        const bool autopilot = mode == "isolated+autopilot";

        core::TenantPolicy tenants;
        tenants.enable = true;
        tenants.defaults.share = isolated ? 0.4 : 1.0;
        // Weighted fair batching on the isolated configs: batch slots
        // follow the class weights, not just queue occupancy.
        tenants.fairService = isolated;
        tenants.adaptiveShares = autopilot;

        core::EngineBuilder builder(index);
        builder.tieredFromProfile(profile, 0.35)
            .hotShards(2)
            .shardBackend(core::throttledShardFactory(scan_delay_s))
            .defaultK(10)
            .defaultNprobe(spec.nprobe)
            .searchThreads(4)
            .batching({.maxBatch = 16, .timeoutSeconds = 1e-3})
            .admissionQueueBound(max_queue)
            .tenantIsolation(tenants);
        if (isolated)
            // One validated contract per tenant: admission share +
            // clamp, WFQ weight, SLO targets, degradation opt-out.
            builder
                .tenantClass({.id = kPremium,
                              .name = "premium",
                              .share = 0.5,
                              .minShare = 0.3,
                              .maxShare = 0.8,
                              .weight = 3.0,
                              .slo = {.missRateTarget = kMissRateBound,
                                      .p99TargetSeconds =
                                          kP99TotalBound},
                              .degradable = false})
                .tenantClass({.id = kStandard,
                              .name = "standard",
                              .share = 0.4,
                              .minShare = 0.2,
                              .maxShare = 0.8,
                              .weight = 2.0})
                .tenantClass({.id = kBursty,
                              .name = "bursty",
                              .share = 0.4,
                              .minShare = 0.05,
                              .maxShare = 0.4,
                              .weight = 1.0});
        if (autopilot) {
            core::DegradationPolicy degrade;
            degrade.enable = true;
            degrade.nprobeFloor = 4;
            degrade.queuePressure = 1.5;
            core::AutopilotPolicy pilot;
            pilot.enable = true;
            pilot.controlIntervalSeconds = 0.25;
            pilot.minBatchObservations = 4;
            pilot.minRho = 0.2;
            pilot.maxBatchCap = 32;
            builder.degradation(degrade).autopilot(pilot);
        }
        const auto engine = builder.build();

        ConfigResult r;
        r.name = mode;
        r.fair = engine->tenantTable().fairService();
        r.replaySeconds = replayTrace(*engine, trace);
        r.stats = engine->stats();
        for (core::TenantId id : {kPremium, kStandard, kBursty})
            r.weights[id] = engine->tenantTable().weight(id);
        results.push_back(std::move(r));
    }

    // --- report --------------------------------------------------------
    TextTable t({"config", "tenant", "submitted", "served", "expired",
                 "rejected", "work", "miss", "p50 tot (ms)",
                 "p99 tot (ms)"});
    for (const ConfigResult &r : results)
        for (const auto &ts : r.stats.tenants)
            t.addRow({r.name, burstTenantName(ts.tenant),
                      std::to_string(ts.submitted),
                      std::to_string(ts.served),
                      std::to_string(ts.expired),
                      std::to_string(ts.rejected),
                      std::to_string(ts.servedWork),
                      TextTable::pct(ts.missRate()),
                      TextTable::num(ts.totalLatency.p50 * 1e3, 2),
                      TextTable::num(ts.totalLatency.p99 * 1e3, 2)});
    t.print(std::cout);

    // --- WFQ share attainment (fair configs) ---------------------------
    // Scanned-work fraction vs weight fraction. Informational in this
    // scenario (tenants are not all continuously backlogged, so
    // under-loaded tenants legitimately under-attain); the tenant-slo
    // scenario gates attainment on backlogged tenants.
    std::cout << "\nWFQ share attainment (scanned work vs weight):\n";
    TextTable ft({"config", "tenant", "weight frac", "work frac",
                  "attainment"});
    for (const ConfigResult &r : results) {
        if (!r.fair)
            continue;
        double weight_sum = 0.0;
        for (const auto &[id, wt] : r.weights)
            weight_sum += wt;
        double work_sum = 0.0;
        for (const auto &ts : r.stats.tenants)
            work_sum += static_cast<double>(ts.servedWork);
        for (const auto &ts : r.stats.tenants) {
            const double wf = r.weights.count(ts.tenant) != 0u
                                  ? r.weights.at(ts.tenant) / weight_sum
                                  : 0.0;
            const double kf =
                work_sum > 0.0
                    ? static_cast<double>(ts.servedWork) / work_sum
                    : 0.0;
            ft.addRow({r.name, burstTenantName(ts.tenant),
                       TextTable::num(wf, 3), TextTable::num(kf, 3),
                       TextTable::num(wf > 0.0 ? kf / wf : 0.0, 3)});
        }
    }
    ft.print(std::cout);

    // --- isolation gate ------------------------------------------------
    // On the isolated config: every compliant tenant (premium,
    // standard) must stay under the miss-rate and p99 bounds, and the
    // burst must actually have been clipped by weighted admission.
    const core::EngineStatsSnapshot &iso = results[1].stats;
    bool gate = trace_roundtrip;
    std::size_t bursty_rejected = 0;
    std::cout << "\nisolation gate (config 'isolated'):\n";
    for (const auto &ts : iso.tenants) {
        if (ts.tenant == kBursty) {
            bursty_rejected = ts.rejected;
            continue;
        }
        const bool miss_ok = ts.missRate() <= kMissRateBound;
        const bool p99_ok = ts.totalLatency.p99 <= kP99TotalBound;
        gate = gate && miss_ok && p99_ok;
        std::cout << "  " << burstTenantName(ts.tenant) << ": miss "
                  << TextTable::pct(ts.missRate())
                  << (miss_ok ? " <= " : " > ")
                  << TextTable::pct(kMissRateBound) << ", p99 total "
                  << TextTable::num(ts.totalLatency.p99 * 1e3, 2)
                  << (p99_ok ? " <= " : " > ")
                  << TextTable::num(kP99TotalBound * 1e3, 2) << " ms"
                  << ((miss_ok && p99_ok) ? " [ok]" : " [FAIL]")
                  << "\n";
    }
    const bool burst_clipped = bursty_rejected > 0;
    gate = gate && burst_clipped;

    // --- cross-config p99 drift gate -----------------------------------
    // The autopilot config must not drift a compliant tenant's p99
    // beyond tolerance of the plain-isolated baseline (degradation and
    // adaptive shares are supposed to relieve pressure, not add it);
    // the absolute bound is the fallback for tiny baselines.
    std::cout << "p99 drift gate (isolated+autopilot vs isolated):\n";
    for (core::TenantId id : {kPremium, kStandard}) {
        const auto *base = findTenant(results[1].stats, id);
        const auto *ap = findTenant(results[2].stats, id);
        const double p_base =
            base != nullptr ? base->totalLatency.p99 : 0.0;
        const double p_ap = ap != nullptr ? ap->totalLatency.p99 : 0.0;
        const double bound = std::max(
            kP99TotalBound, p_base * (1.0 + kP99DriftTolerance));
        const bool ok = p_ap <= bound;
        gate = gate && ok;
        std::cout << "  " << burstTenantName(id) << ": p99 "
                  << TextTable::num(p_ap * 1e3, 2)
                  << (ok ? " <= " : " > ")
                  << TextTable::num(bound * 1e3, 2) << " ms"
                  << (ok ? " [ok]" : " [FAIL]") << "\n";
    }

    std::cout << "  bursty: " << bursty_rejected
              << " rejected (weighted admission clipped the burst: "
              << (burst_clipped ? "yes" : "NO") << ")\n"
              << "  trace round-trip: "
              << (trace_roundtrip ? "ok" : "FAILED") << "\n"
              << "gate: " << (gate ? "PASS" : "FAIL") << "\n";

    // --- JSON snapshot -------------------------------------------------
    {
        std::ofstream os("BENCH_workload.json");
        bench::JsonWriter w(os);
        w.beginObject();
        w.kv("bench", "workload");
        w.kv("scenario", "burst");
        w.kv("smoke", args.smoke);
        w.kv("horizonSeconds", horizon);
        w.kv("traceRequests", trace.size());
        w.kv("traceSeed", trace_seed);
        w.kv("traceRoundTrip", trace_roundtrip);
        w.kv("maxQueue", max_queue);
        w.kv("scanDelaySeconds", scan_delay_s);
        w.kv("missRateBound", kMissRateBound);
        w.kv("p99TotalBound", kP99TotalBound);
        w.kv("p99DriftTolerance", kP99DriftTolerance);
        w.key("tenantsScripted");
        w.beginArray();
        for (const auto &ts : script.tenants) {
            w.beginObject();
            w.kv("name", ts.name);
            w.kv("tenant", ts.tenant.value);
            w.kv("arrivalRate", ts.arrivalRate);
            w.kv("zipfTheta", ts.zipfTheta);
            w.kv("deadlineSeconds", ts.deadlineSeconds);
            w.kv("priority", static_cast<std::size_t>(
                                 ts.priority < 0 ? 0 : ts.priority));
            w.kv("burstFactor", ts.burstFactor);
            w.kv("diurnalAmplitude", ts.diurnalAmplitude);
            w.endObject();
        }
        w.endArray();
        w.key("configs");
        w.beginArray();
        for (const ConfigResult &r : results) {
            w.beginObject();
            w.kv("name", r.name);
            w.kv("fairService", r.fair);
            w.kv("replaySeconds", r.replaySeconds);
            w.kv("served", r.stats.served);
            w.kv("expired", r.stats.expired);
            w.kv("rejected", r.stats.rejected);
            w.kv("degradedServed", r.stats.degradedServed);
            w.kv("servedWork", r.stats.servedWork);
            w.key("tenants");
            w.beginArray();
            for (const auto &ts : r.stats.tenants)
                writeTenantJson(w, burstTenantName(ts.tenant), ts);
            w.endArray();
            if (r.fair) {
                double weight_sum = 0.0;
                for (const auto &[id, wt] : r.weights)
                    weight_sum += wt;
                double work_sum = 0.0;
                for (const auto &ts : r.stats.tenants)
                    work_sum += static_cast<double>(ts.servedWork);
                w.key("wfqAttainment");
                w.beginArray();
                for (const auto &ts : r.stats.tenants) {
                    const double wf =
                        r.weights.count(ts.tenant) != 0u
                            ? r.weights.at(ts.tenant) / weight_sum
                            : 0.0;
                    const double kf =
                        work_sum > 0.0
                            ? static_cast<double>(ts.servedWork) /
                                  work_sum
                            : 0.0;
                    w.beginObject();
                    w.kv("name", burstTenantName(ts.tenant));
                    w.kv("weightFraction", wf);
                    w.kv("workFraction", kf);
                    w.kv("attainment", wf > 0.0 ? kf / wf : 0.0);
                    w.endObject();
                }
                w.endArray();
            }
            w.endObject();
        }
        w.endArray();
        w.kv("isolationGatePassed", gate);
        w.endObject();
        os << "\n";
    }
    std::cout << "\nwrote BENCH_workload.json\n";

    std::cout
        << "\nAll three configs replay the identical scripted trace "
           "(same seed, same\narrival times). Without isolation the "
           "10x burst occupies the whole bounded\nadmission queue and "
           "the compliant tenants miss on rejections; with\nweighted "
           "admission and weighted fair batching the burst saturates "
           "its own\nshare, is clipped at submit, and the compliant "
           "tenants keep their SLOs.\nThe autopilot config "
           "additionally degrades nprobe under pressure (premium\nis "
           "opted out), refits admission shares from measured demand "
           "and re-plans\nthe hot tier from live stats.\n";
    return gate ? 0 : 1;
}

// ====================================================================
// Scenario: tenant-slo (adversarial WFQ fairness proof)
// ====================================================================

int
runTenantSloScenario(const bench::BenchArgs &args,
                     const wl::DatasetSpec &spec,
                     const wl::SyntheticDataset &dataset,
                     const vs::IvfPqFastScanIndex &index, const auto &cq)
{
    const double scan_delay_s = 2e-3;
    const std::size_t max_queue = 64;

    // --- calibration ---------------------------------------------------
    const std::size_t n_cal = args.smoke ? 400 : 1000;
    const auto cal = wl::QueryGenerator(dataset, 777).generate(n_cal);
    const auto profile = profileFrom(dataset, spec, cq, cal, n_cal);

    // Closed-loop capacity probe: saturate the identical engine shape
    // (throttled backend, same batching) through an unbounded queue
    // and measure the served rate. Scripting arrival rates relative
    // to this measured C makes the over/under-subscription ratios —
    // and therefore the backlog structure the WFQ gate depends on —
    // portable across hosts.
    double capacity = 0.0;
    {
        const std::size_t n_probe = args.smoke ? 400 : 900;
        const auto engine =
            core::EngineBuilder(index)
                .tieredFromProfile(profile, 0.35)
                .hotShards(2)
                .shardBackend(core::throttledShardFactory(scan_delay_s))
                .defaultK(10)
                .defaultNprobe(spec.nprobe)
                .searchThreads(4)
                .batching({.maxBatch = 8, .timeoutSeconds = 1e-3})
                .build();
        const auto probe_q =
            wl::QueryGenerator(dataset, 778).generate(n_probe);
        std::vector<std::future<core::SearchResponse>> futs;
        futs.reserve(n_probe);
        WallTimer wall;
        for (std::size_t i = 0; i < n_probe; ++i) {
            core::SearchRequest r;
            r.query = std::span<const float>(
                probe_q.data() + i * spec.dim, spec.dim);
            futs.push_back(engine->submit(r));
        }
        engine->drain();
        capacity = static_cast<double>(n_probe) / wall.elapsed();
        for (auto &f : futs)
            f.get();
    }

    // --- workload script: rates relative to measured capacity ----------
    // premium 0.25C (always under-loaded; the p99 gate), standard
    // 0.60C and the flood 1.5C — standard and the flood together
    // over-subscribe the engine 2.1x while the flood is live, so both
    // stay continuously backlogged and the WFQ share gate is
    // well-defined. The flood claims the highest priority: without
    // fair service, priority-first dispatch hands it the engine.
    const double h_min = args.smoke ? 0.8 : 1.5;
    const double h_max = args.smoke ? 1.5 : 4.0;
    const double horizon = std::clamp(
        static_cast<double>(args.numQueries) / (1.6 * capacity), h_min,
        h_max);
    const double t_join = 0.25 * horizon;
    const double t_leave = 0.75 * horizon;

    wl::WorkloadScript script;
    script.horizonSeconds = horizon;
    {
        wl::TenantSpec premium;
        premium.name = "premium";
        premium.tenant = kPremium;
        premium.arrivalRate = 0.25 * capacity;
        premium.zipfTheta = 1.1;
        premium.k = 10;
        premium.deadlineSeconds = kSloP99Bound;
        premium.priority = 0;
        script.tenants.push_back(premium);

        wl::TenantSpec standard;
        standard.name = "standard";
        standard.tenant = kStandard;
        standard.arrivalRate = 0.60 * capacity;
        standard.zipfTheta = 0.9;
        standard.k = 10;
        standard.deadlineSeconds = 0.30;
        standard.priority = 0;
        script.tenants.push_back(standard);

        wl::TenantSpec flood;
        flood.name = "flood";
        flood.tenant = kFlood;
        flood.arrivalRate = 1.50 * capacity;
        flood.zipfTheta = 1.2;
        flood.k = 10;
        flood.deadlineSeconds = 0.30;
        flood.priority = 3;
        flood.activeStartSeconds = t_join;
        flood.activeEndSeconds = t_leave;
        script.tenants.push_back(flood);
    }

    const std::uint64_t trace_seed = 9191;
    const auto trace =
        wl::WorkloadTrace::generate(script, dataset, trace_seed);

    const char *trace_path = "WORKLOAD_trace_slo.bin";
    trace.saveFile(trace_path);
    const bool trace_roundtrip =
        wl::WorkloadTrace::loadFile(trace_path) == trace;
    std::remove(trace_path);

    std::cout << "measured capacity: " << TextTable::num(capacity, 0)
              << " q/s; script: " << trace.size() << " requests over "
              << TextTable::num(horizon, 2) << " s ("
              << trace.countForTenant(kPremium) << " premium, "
              << trace.countForTenant(kStandard) << " standard, "
              << trace.countForTenant(kFlood)
              << " flood; flood joins at "
              << TextTable::num(t_join, 2) << " s, leaves at "
              << TextTable::num(t_leave, 2)
              << " s); trace round-trip "
              << (trace_roundtrip ? "OK" : "FAILED") << "\n\n";

    // --- two configurations against the identical trace ----------------
    struct SloResult
    {
        std::string name;
        double replaySeconds = 0.0;
        core::EngineStatsSnapshot stats;
        core::EngineStatsSnapshot atJoin;
        core::EngineStatsSnapshot atLeave;
    };
    std::vector<SloResult> results;

    for (const std::string &mode :
         {std::string("no-isolation"), std::string("wfq+autopilot")}) {
        const bool isolated = mode == "wfq+autopilot";

        core::TenantPolicy tenants;
        tenants.enable = true;
        tenants.fairService = isolated;
        tenants.adaptiveShares = isolated;
        if (!isolated)
            tenants.defaults.share = 1.0;

        core::EngineBuilder builder(index);
        builder.tieredFromProfile(profile, 0.35)
            .hotShards(2)
            .shardBackend(core::throttledShardFactory(scan_delay_s))
            .defaultK(10)
            .defaultNprobe(spec.nprobe)
            .searchThreads(4)
            .batching({.maxBatch = 8, .timeoutSeconds = 1e-3})
            .admissionQueueBound(max_queue)
            .tenantIsolation(tenants);
        if (isolated) {
            builder
                .tenantClass(
                    {.id = kPremium,
                     .name = "premium",
                     .share = 0.3,
                     .minShare = 0.15,
                     .maxShare = 0.5,
                     .weight = 2.0,
                     .slo = {.missRateTarget = kSloMissBound,
                             .p99TargetSeconds = kSloP99Bound},
                     .degradable = false})
                .tenantClass({.id = kStandard,
                              .name = "standard",
                              .share = 0.3,
                              .minShare = 0.15,
                              .maxShare = 0.6,
                              .weight = 2.0,
                              .slo = {.missRateTarget = 0.5}})
                .tenantClass({.id = kFlood,
                              .name = "flood",
                              .share = 0.4,
                              .minShare = 0.05,
                              .maxShare = 0.4,
                              .weight = 1.0,
                              .slo = {.missRateTarget = 1.0}});
            // The autopilot runs its tenant-aware objective and the
            // adaptive share controller, but its capacity actuation
            // (rho, batch cap) is pinned so the share gate measures
            // scheduling fairness, not capacity escalation. nprobe
            // degradation stays off for the same reason: it would
            // perturb the scanned-work ratios the gate asserts on.
            core::AutopilotPolicy pilot;
            pilot.enable = true;
            pilot.controlIntervalSeconds = 0.25;
            pilot.minBatchObservations = 4;
            pilot.minRho = 0.35;
            pilot.maxRho = 0.35;
            pilot.maxBatchCap = 8;
            builder.autopilot(pilot);
        }
        const auto engine = builder.build();

        SloResult r;
        r.name = mode;
        r.replaySeconds = replayTraceWindowed(
            *engine, trace, t_join, t_leave, r.atJoin, r.atLeave);
        r.stats = engine->stats();
        results.push_back(std::move(r));
    }

    // --- report --------------------------------------------------------
    TextTable t({"config", "tenant", "submitted", "served", "expired",
                 "rejected", "work", "miss", "p99 tot (ms)"});
    for (const SloResult &r : results)
        for (const auto &ts : r.stats.tenants)
            t.addRow({r.name, sloTenantName(ts.tenant),
                      std::to_string(ts.submitted),
                      std::to_string(ts.served),
                      std::to_string(ts.expired),
                      std::to_string(ts.rejected),
                      std::to_string(ts.servedWork),
                      TextTable::pct(ts.missRate()),
                      TextTable::num(ts.totalLatency.p99 * 1e3, 2)});
    t.print(std::cout);

    // --- WFQ share attainment over the flood window --------------------
    // Standard (weight 2) and the flood (weight 1) are the
    // continuously-backlogged tenants while the flood is live, so
    // their scanned-work split over the window must track 2:1.
    struct WindowShare
    {
        double standardWork = 0.0;
        double floodWork = 0.0;
        double standardShare = 0.0;
        double floodShare = 0.0;
        bool within = false;
    };
    const double w_standard = 2.0, w_flood = 1.0;
    const double e_standard = w_standard / (w_standard + w_flood);
    const double e_flood = w_flood / (w_standard + w_flood);
    const auto window_share = [&](const SloResult &r) {
        WindowShare ws;
        ws.standardWork = servedWorkOf(r.atLeave, kStandard) -
                          servedWorkOf(r.atJoin, kStandard);
        ws.floodWork = servedWorkOf(r.atLeave, kFlood) -
                       servedWorkOf(r.atJoin, kFlood);
        const double total = ws.standardWork + ws.floodWork;
        if (total > 0.0) {
            ws.standardShare = ws.standardWork / total;
            ws.floodShare = ws.floodWork / total;
            ws.within =
                std::abs(ws.standardShare - e_standard) / e_standard <=
                    kShareTolerance &&
                std::abs(ws.floodShare - e_flood) / e_flood <=
                    kShareTolerance;
        }
        return ws;
    };

    std::cout << "\nscanned-work split over the flood window "
              << "(entitlement " << TextTable::num(e_standard, 3)
              << " standard / " << TextTable::num(e_flood, 3)
              << " flood, tolerance "
              << TextTable::pct(kShareTolerance) << "):\n";
    std::vector<WindowShare> shares;
    for (const SloResult &r : results) {
        const WindowShare ws = window_share(r);
        std::cout << "  " << r.name << ": standard "
                  << TextTable::num(ws.standardShare, 3) << ", flood "
                  << TextTable::num(ws.floodShare, 3)
                  << (ws.within ? " [within tolerance]"
                                : " [outside tolerance]")
                  << "\n";
        shares.push_back(ws);
    }

    // --- gates ----------------------------------------------------------
    const SloResult &noiso = results[0];
    const SloResult &wfq = results[1];

    const auto *prem_wfq = findTenant(wfq.stats, kPremium);
    const auto *flood_wfq = findTenant(wfq.stats, kFlood);
    const auto *prem_noiso = findTenant(noiso.stats, kPremium);

    const bool wfq_share_ok = shares[1].within;
    const bool premium_ok =
        prem_wfq != nullptr &&
        prem_wfq->missRate() <= kSloMissBound &&
        prem_wfq->totalLatency.p99 <= kSloP99Bound;
    const double flood_clipped_n =
        flood_wfq != nullptr ? static_cast<double>(flood_wfq->rejected +
                                                   flood_wfq->expired)
                             : 0.0;
    const bool flood_clipped =
        flood_wfq != nullptr && flood_wfq->submitted > 0 &&
        flood_clipped_n > kClipFraction *
                              static_cast<double>(flood_wfq->submitted);
    // The identical trace without isolation must violate both the
    // share bound and premium's SLO — otherwise the scenario is not
    // actually adversarial and the WFQ gate proves nothing.
    const bool noiso_share_violated = !shares[0].within;
    const bool noiso_premium_violated =
        prem_noiso != nullptr &&
        (prem_noiso->missRate() > kSloMissBound ||
         prem_noiso->totalLatency.p99 > kSloP99Bound);

    const bool gate = trace_roundtrip && wfq_share_ok && premium_ok &&
                      flood_clipped && noiso_share_violated &&
                      noiso_premium_violated;

    std::cout << "\ntenant-slo gate (config 'wfq+autopilot'):\n"
              << "  work split within "
              << TextTable::pct(kShareTolerance)
              << " of weights: " << (wfq_share_ok ? "ok" : "FAIL")
              << "\n  premium: miss "
              << TextTable::pct(prem_wfq != nullptr
                                    ? prem_wfq->missRate()
                                    : 1.0)
              << " (bound " << TextTable::pct(kSloMissBound)
              << "), p99 "
              << TextTable::num((prem_wfq != nullptr
                                     ? prem_wfq->totalLatency.p99
                                     : 0.0) *
                                    1e3,
                                2)
              << " ms (bound "
              << TextTable::num(kSloP99Bound * 1e3, 2) << " ms): "
              << (premium_ok ? "ok" : "FAIL") << "\n  flood clipped ("
              << TextTable::num(flood_clipped_n, 0) << " of "
              << (flood_wfq != nullptr ? flood_wfq->submitted : 0)
              << " submitted): " << (flood_clipped ? "ok" : "FAIL")
              << "\n  no-isolation violates share bound: "
              << (noiso_share_violated ? "ok" : "FAIL")
              << "\n  no-isolation violates premium SLO: "
              << (noiso_premium_violated ? "ok" : "FAIL")
              << "\n  trace round-trip: "
              << (trace_roundtrip ? "ok" : "FAILED") << "\n"
              << "gate: " << (gate ? "PASS" : "FAIL") << "\n";

    // --- JSON snapshot -------------------------------------------------
    {
        std::ofstream os("BENCH_workload_slo.json");
        bench::JsonWriter w(os);
        w.beginObject();
        w.kv("bench", "workload");
        w.kv("scenario", "tenant-slo");
        w.kv("smoke", args.smoke);
        w.kv("capacityQps", capacity);
        w.kv("horizonSeconds", horizon);
        w.kv("floodJoinSeconds", t_join);
        w.kv("floodLeaveSeconds", t_leave);
        w.kv("traceRequests", trace.size());
        w.kv("traceSeed", trace_seed);
        w.kv("traceRoundTrip", trace_roundtrip);
        w.kv("maxQueue", max_queue);
        w.kv("scanDelaySeconds", scan_delay_s);
        w.kv("sloMissBound", kSloMissBound);
        w.kv("sloP99Bound", kSloP99Bound);
        w.kv("shareTolerance", kShareTolerance);
        w.kv("clipFraction", kClipFraction);
        w.key("tenantsScripted");
        w.beginArray();
        for (const auto &ts : script.tenants) {
            w.beginObject();
            w.kv("name", ts.name);
            w.kv("tenant", ts.tenant.value);
            w.kv("arrivalRate", ts.arrivalRate);
            w.kv("deadlineSeconds", ts.deadlineSeconds);
            w.kv("priority", static_cast<std::size_t>(
                                 ts.priority < 0 ? 0 : ts.priority));
            w.kv("activeStartSeconds", ts.activeStartSeconds);
            w.kv("activeEndSeconds", ts.activeEndSeconds);
            w.endObject();
        }
        w.endArray();
        w.key("configs");
        w.beginArray();
        for (std::size_t i = 0; i < results.size(); ++i) {
            const SloResult &r = results[i];
            w.beginObject();
            w.kv("name", r.name);
            w.kv("replaySeconds", r.replaySeconds);
            w.kv("served", r.stats.served);
            w.kv("expired", r.stats.expired);
            w.kv("rejected", r.stats.rejected);
            w.kv("servedWork", r.stats.servedWork);
            w.key("tenants");
            w.beginArray();
            for (const auto &ts : r.stats.tenants)
                writeTenantJson(w, sloTenantName(ts.tenant), ts);
            w.endArray();
            w.key("floodWindow");
            w.beginObject();
            w.kv("standardWork", shares[i].standardWork);
            w.kv("floodWork", shares[i].floodWork);
            w.kv("standardShare", shares[i].standardShare);
            w.kv("floodShare", shares[i].floodShare);
            w.kv("standardEntitlement", e_standard);
            w.kv("floodEntitlement", e_flood);
            w.kv("withinTolerance", shares[i].within);
            w.endObject();
            w.endObject();
        }
        w.endArray();
        w.key("gates");
        w.beginObject();
        w.kv("wfqShareAttained", wfq_share_ok);
        w.kv("premiumSloMet", premium_ok);
        w.kv("floodClipped", flood_clipped);
        w.kv("noIsolationViolatesShare", noiso_share_violated);
        w.kv("noIsolationViolatesPremiumSlo", noiso_premium_violated);
        w.endObject();
        w.kv("sloGatePassed", gate);
        w.endObject();
        os << "\n";
    }
    std::cout << "\nwrote BENCH_workload_slo.json\n";

    std::cout
        << "\nBoth configs replay the identical capacity-calibrated "
           "trace. The flood\ntenant joins mid-run at 1.5x engine "
           "capacity with the highest priority;\nwithout isolation, "
           "priority-first dispatch hands it the engine and "
           "both\nfairness and premium's SLO collapse. With weighted "
           "fair batching, tenant\nSLO targets and adaptive admission "
           "shares, the backlogged tenants' scanned\nwork tracks "
           "their 2:1 weights, premium rides its own lane, and the "
           "flood\nis clipped at admission.\n";
    return gate ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vlr;

    const auto args = bench::parseBenchArgs(argc, argv,
                                            /*default_queries=*/6000,
                                            /*smoke_queries=*/1500,
                                            /*min_queries=*/200,
                                            /*allow_scenario=*/true);
    const std::string scenario =
        args.scenario.empty() ? "burst" : args.scenario;
    if (!args.ok ||
        (scenario != "burst" && scenario != "tenant-slo")) {
        std::cerr << "bench_workload: "
                  << (args.ok ? "unknown scenario '" + scenario + "'"
                              : args.error)
                  << "\nusage: bench_workload [num_queries >= 200] "
                     "[--smoke] [--scenario burst|tenant-slo]\n";
        return 1;
    }

    std::cout << "Multi-tenant workload bench (scenario: " << scenario
              << (args.smoke ? ", smoke mode" : "") << ")\n"
              << "===========================\n\n";

    // --- corpus + index (shared by both scenarios) ---------------------
    wl::DatasetSpec spec = wl::tinySpec();
    spec.numVectors = args.smoke ? 8000 : 24000;
    spec.dim = 64;
    spec.numClusters = args.smoke ? 64 : 128;
    spec.nprobe = 16;
    wl::SyntheticDataset dataset(spec);
    dataset.buildVectors();
    const auto cq = dataset.makeCoarseQuantizer();
    vs::IvfPqFastScanIndex index(cq, spec.dim / 4);
    index.train(dataset.vectors(), spec.numVectors);
    index.addPreassigned(dataset.vectors(), spec.numVectors,
                         dataset.assignments());

    if (scenario == "tenant-slo")
        return runTenantSloScenario(args, spec, dataset, index, cq);
    return runBurstScenario(args, spec, dataset, index, cq);
}

/**
 * @file
 * Continuous-batching LLM engine (vLLM-style) running in simulated time.
 *
 * One engine instance serves one model replica on `tp` GPU devices.
 * Requests are admitted while KV blocks are available (worst-case
 * reservation at admission), prefill steps are prioritized over decode
 * steps, and every running sequence generates one token per decode step.
 * Step durations come from LlmPerfModel and are inflated by the
 * retrieval occupancy recorded on the instance's GPUs — the co-location
 * contention at the heart of the paper.
 */

#ifndef VLR_LLMSIM_ENGINE_H
#define VLR_LLMSIM_ENGINE_H

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "llmsim/kv_cache.h"
#include "llmsim/perf_model.h"
#include "simcore/simulator.h"
#include "simgpu/gpu_device.h"

namespace vlr::llm
{

/** A generation request and its measured timeline. */
struct LlmRequest
{
    std::uint64_t id = 0;
    /** Arrival at the RAG frontend (for end-to-end accounting). */
    sim_time_t arrivalTime = 0.0;
    /** When the request reached this engine (post-retrieval). */
    sim_time_t enqueueTime = 0.0;
    std::size_t promptTokens = 1024;
    std::size_t outputTokens = 256;

    // Filled in by the engine:
    sim_time_t prefillStartTime = -1.0;
    sim_time_t firstTokenTime = -1.0;
    sim_time_t finishTime = -1.0;
    /** Duration of the prefill step that produced the first token. */
    sim_time_t prefillSeconds = 0.0;

    std::size_t generated = 0;

    bool done() const { return finishTime >= 0.0; }
};

using LlmRequestPtr = std::shared_ptr<LlmRequest>;

struct LlmEngineParams
{
    /** Cap on concurrently running sequences. */
    std::size_t maxNumSeqs = 256;
    /** Token budget of one prefill step. */
    std::size_t maxPrefillTokens = 8192;
    /** Multiplier applied to retrieval occupancy when inflating steps. */
    double contentionAlpha = 1.0;
};

class LlmEngine
{
  public:
    /**
     * @param gpus the devices this replica occupies (size == TP degree);
     *        weights are reserved on each at construction.
     */
    LlmEngine(sim::Simulator &sim, std::vector<gpu::GpuDevice *> gpus,
              LlmConfig config, LlmEngineParams params = {});

    /** Submit a request; the engine starts working immediately if idle. */
    void enqueue(LlmRequestPtr req);

    /** Fired when a request's first token is produced. */
    std::function<void(const LlmRequestPtr &)> onFirstToken;
    /** Fired when a request completes. */
    std::function<void(const LlmRequestPtr &)> onFinish;

    std::size_t waitingCount() const { return waiting_.size(); }
    std::size_t runningCount() const { return running_.size(); }
    std::size_t load() const { return waiting_.size() + running_.size(); }
    /** Requests still ahead of their prefill (dispatch balance signal). */
    std::size_t
    pendingPrefillCount() const
    {
        return waiting_.size() + prefillPending_.size();
    }
    std::uint64_t completedCount() const { return completed_; }
    const PagedKvCache &kvCache() const { return kv_; }
    const LlmPerfModel &perfModel() const { return perf_; }
    const std::vector<gpu::GpuDevice *> &gpus() const { return gpus_; }

    /** Recompute KV capacity after index placement changed. */
    void refreshKvCapacity();

  private:
    void maybeStartStep();
    void runStep();
    double contentionFactor(double start, double duration) const;

    sim::Simulator &sim_;
    std::vector<gpu::GpuDevice *> gpus_;
    LlmConfig config_;
    LlmEngineParams params_;
    LlmPerfModel perf_;
    PagedKvCache kv_;

    std::deque<LlmRequestPtr> waiting_;
    /** Admitted but not yet prefilled. */
    std::deque<LlmRequestPtr> prefillPending_;
    std::vector<LlmRequestPtr> running_;
    bool stepping_ = false;
    std::uint64_t completed_ = 0;

    bytes_t instanceKvBytes() const;
};

} // namespace vlr::llm

#endif // VLR_LLMSIM_ENGINE_H

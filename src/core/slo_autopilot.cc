#include "core/slo_autopilot.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "core/partitioner.h"
#include "workload/plans.h"

namespace vlr::core
{

namespace
{

double
secondsBetween(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

SloAutopilot::SloAutopilot(RetrievalEngine &engine,
                           OnlineUpdater &updater,
                           AutopilotPolicy policy)
    : engine_(engine), updater_(updater), index_(updater.index()),
      policy_(policy), lastCycle_(Clock::now())
{
    const std::size_t rows =
        std::max<std::size_t>(policy_.queryReservoir, 16);
    reservoir_.resize(rows * index_.dim());
    counts_.assign(index_.nlist(), 0.0);
    engine_.attachAutopilot(this);
    if (policy_.controlIntervalSeconds > 0.0)
        thread_ = std::thread([this] { controlLoop(); });
}

SloAutopilot::~SloAutopilot()
{
    stop();
}

void
SloAutopilot::stop()
{
    {
        std::lock_guard<std::mutex> lk(stopMutex_);
        stopped_ = true;
    }
    stopCv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
SloAutopilot::observeBatch(const BatchObservation &obs,
                           std::span<const float> queries,
                           std::size_t nq)
{
    const std::size_t d = index_.dim();
    std::lock_guard<std::mutex> lk(obsMutex_);
    // Bounded intake: a stalled control thread must not let the
    // observation buffer grow without limit.
    if (observations_.size() < 4096)
        observations_.push_back(obs);
    const std::size_t rows = reservoir_.size() / d;
    for (std::size_t i = 0; i < nq; ++i) {
        const float *q = queries.data() + i * d;
        ++reservoirSeen_;
        std::size_t slot;
        if (reservoirRows_ < rows) {
            slot = reservoirRows_++;
        } else {
            const std::uint64_t j = rng_.uniformU64(reservoirSeen_);
            if (j >= rows)
                continue;
            slot = static_cast<std::size_t>(j);
        }
        std::copy(q, q + d, reservoir_.begin() + slot * d);
    }
}

bool
SloAutopilot::runControlCycle()
{
    std::lock_guard<std::mutex> cyc(cycleMutex_);
    engine_.noteAutopilotCycle();
    ++cycles_;

    const auto now = Clock::now();
    const double dt = secondsBetween(lastCycle_, now);
    lastCycle_ = now;

    // SLO-attainment window: per-disposition deltas since the last
    // cycle. The expired+rejected fraction is the live counterpart of
    // the paper's attainment signal.
    const EngineStatsSnapshot s = engine_.stats();
    const std::size_t d_sub = s.submitted - lastSubmitted_;
    const std::size_t d_exp = s.expired - lastExpired_;
    const std::size_t d_rej = s.rejected - lastRejected_;
    const std::size_t d_res = s.completed - lastCompleted_;
    lastSubmitted_ = s.submitted;
    lastExpired_ = s.expired;
    lastRejected_ = s.rejected;
    lastCompleted_ = s.completed;

    // Live access profile: drain the index's counters and fold them
    // into the exponentially decayed history.
    const std::vector<double> drained = index_.drainAccessCounts();
    double total = 0.0;
    for (std::size_t c = 0; c < counts_.size(); ++c) {
        counts_[c] = policy_.countDecay * counts_[c] + drained[c];
        total += counts_[c];
    }

    std::vector<BatchObservation> obs;
    std::vector<float> queries;
    std::size_t n_rows = 0;
    {
        std::lock_guard<std::mutex> lk(obsMutex_);
        obs.swap(observations_);
        n_rows = reservoirRows_;
        queries.assign(reservoir_.begin(),
                       reservoir_.begin() + n_rows * index_.dim());
    }
    if (obs.size() < policy_.minBatchObservations || n_rows < 2 ||
        total <= 0.0)
        return false;

    const double arrival =
        dt > 0.0 ? static_cast<double>(d_sub) / dt : 0.0;
    const double miss_rate =
        d_res > 0 ? static_cast<double>(d_exp + d_rej) /
                        static_cast<double>(d_res)
                  : 0.0;

    // 1. Fit Eq. 1 from the window's batches. Scan wall time is
    // normalized by the miss fraction (clamped away from zero) to
    // recover the full-miss T_LUT; the hot-tier replicas are assumed
    // off the critical path.
    std::vector<PlKnot> cq_knots, lut_knots;
    cq_knots.reserve(obs.size());
    lut_knots.reserve(obs.size());
    for (const BatchObservation &o : obs) {
        const auto b =
            static_cast<double>(std::max<std::size_t>(o.batchSize, 1));
        cq_knots.push_back({b, o.routeSeconds});
        const double miss =
            std::clamp(1.0 - o.meanHitRate, 0.05, 1.0);
        lut_knots.push_back({b, o.scanSeconds / miss});
    }
    const SearchPerfModel fit =
        SearchPerfModel::fromKnots(cq_knots, lut_knots);

    // 2./3. Profile + estimator from live counts and the query
    // reservoir.
    const AccessProfile profile = index_.profileFromCounts(counts_);
    const vs::IvfPqFastScanIndex &src = index_.source();
    std::vector<double> work(index_.nlist());
    for (std::size_t c = 0; c < work.size(); ++c)
        work[c] = static_cast<double>(
            src.listSize(static_cast<cluster_id_t>(c)));
    const wl::PlanSet plans =
        wl::PlanSet::build(src.quantizer(), queries, n_rows,
                           engine_.config().defaultNprobe, work);
    const HitRateEstimator estimator(profile, plans);

    // 4. Algorithm 1 against the measured arrival rate: the
    // throughput bound mu is what the LLM actually demands of us, so
    // expectedBatch = ceil(tau_s * mu) doubles as the batch-cap pick.
    const LatencyBoundedPartitioner partitioner(fit, estimator,
                                                profile);
    PartitionInputs in;
    in.sloSearchSeconds = engine_.config().sloSearchSeconds;
    in.epsilon = policy_.epsilon;
    in.kvBaselineBytes = 0.0;
    in.peakLlmThroughput = std::max(arrival, 1.0);
    const PartitionResult pr = partitioner.partition(in);

    const double cur_rho = index_.rho();
    double rho =
        std::clamp(pr.rho, policy_.minRho, policy_.maxRho);
    // SLO-attainment feedback: misses above target escalate coverage
    // one step beyond the model's pick.
    if (miss_rate > policy_.missRateTarget)
        rho = std::clamp(std::max(rho, cur_rho + policy_.rhoStep),
                         policy_.minRho, policy_.maxRho);

    // 5a. Batch-cap actuation (never stalls: dispatcher reads it
    // atomically at the next formation).
    const std::size_t cap = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::ceil(pr.expectedBatch)), 1,
        policy_.maxBatchCap);
    engine_.setBatchCap(cap);

    // 5b. Shard-count re-pick from the byte budget (0 keeps count).
    const std::size_t cur_shards = index_.numShards();
    std::size_t shards = cur_shards;
    if (policy_.shardByteBudget > 0.0) {
        const double hot_bytes = profile.indexBytes(rho);
        shards = std::clamp<std::size_t>(
            static_cast<std::size_t>(
                std::ceil(hot_bytes / policy_.shardByteBudget)),
            1, std::min(policy_.maxShards, index_.maxShards()));
    }

    // 5c. Repartition when coverage moved past the deadband, the
    // shard count changed, or the hot set itself flipped (hotspot
    // drift can move membership while rho stays put).
    std::vector<cluster_id_t> hot = profile.hotClusters(rho);
    const std::vector<bool> bitmap = index_.hotBitmap();
    std::size_t in_current = 0;
    for (const cluster_id_t c : hot)
        if (bitmap[static_cast<std::size_t>(c)])
            ++in_current;
    const double overlap =
        hot.empty() ? 1.0
                    : static_cast<double>(in_current) /
                          static_cast<double>(hot.size());
    const bool rho_moved =
        std::fabs(rho - cur_rho) > policy_.rhoDeadband;
    const bool shards_moved = shards != cur_shards;
    const bool set_flipped =
        overlap < 1.0 - policy_.hotSetDivergence;

    bool repartitioned = false;
    if (rho_moved || shards_moved || set_flipped)
        repartitioned =
            updater_.requestRepartition(std::move(hot), shards);

    AutopilotDecision decision;
    decision.arrivalRate = arrival;
    decision.missRate = miss_rate;
    decision.modelRho = pr.rho;
    decision.rho = rho;
    decision.hotShards = shards;
    decision.batchCap = cap;
    decision.repartitioned = repartitioned;
    engine_.recordAutopilotDecision(decision);
    return repartitioned;
}

std::size_t
SloAutopilot::cyclesRun() const
{
    std::lock_guard<std::mutex> lk(cycleMutex_);
    return cycles_;
}

void
SloAutopilot::controlLoop()
{
    std::unique_lock<std::mutex> lk(stopMutex_);
    while (!stopped_) {
        if (stopCv_.wait_for(
                lk,
                std::chrono::duration<double>(
                    policy_.controlIntervalSeconds),
                [this] { return stopped_; }))
            return;
        lk.unlock();
        try {
            runControlCycle();
        } catch (const std::exception &e) {
            logWarn("SloAutopilot: control cycle failed: ", e.what());
        }
        lk.lock();
    }
}

} // namespace vlr::core

/**
 * @file
 * Tests for the shared bench CLI parser: strict rejection of unknown
 * flags, malformed counts and extra positionals (each with a
 * diagnostic in BenchArgs::error), plus the --smoke / explicit-count
 * precedence rules. Also covers the JsonWriter comma management the
 * BENCH_*.json emitters rely on.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace vlr::bench
{
namespace
{

BenchArgs
parse(std::vector<std::string> argv_strings, long min_queries = 1)
{
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>("bench"));
    for (std::string &s : argv_strings)
        argv.push_back(s.data());
    return parseBenchArgs(static_cast<int>(argv.size()), argv.data(),
                          /*default_queries=*/2000,
                          /*smoke_queries=*/300, min_queries);
}

TEST(BenchArgs, DefaultsWithNoArguments)
{
    const auto a = parse({});
    EXPECT_TRUE(a.ok);
    EXPECT_FALSE(a.smoke);
    EXPECT_EQ(a.numQueries, 2000u);
    EXPECT_TRUE(a.error.empty());
}

TEST(BenchArgs, SmokeShrinksDefaultCount)
{
    const auto a = parse({"--smoke"});
    EXPECT_TRUE(a.ok);
    EXPECT_TRUE(a.smoke);
    EXPECT_EQ(a.numQueries, 300u);
}

TEST(BenchArgs, ExplicitCountWinsOverSmokeDefault)
{
    for (const auto &argv :
         {std::vector<std::string>{"123", "--smoke"},
          std::vector<std::string>{"--smoke", "123"}}) {
        const auto a = parse(argv);
        EXPECT_TRUE(a.ok);
        EXPECT_TRUE(a.smoke);
        EXPECT_EQ(a.numQueries, 123u);
    }
}

TEST(BenchArgs, UnknownFlagIsAnError)
{
    const auto a = parse({"--smok"});
    EXPECT_FALSE(a.ok);
    EXPECT_NE(a.error.find("unknown flag"), std::string::npos);
    EXPECT_NE(a.error.find("--smok"), std::string::npos);
}

TEST(BenchArgs, MalformedCountIsAnError)
{
    for (const char *bad : {"12x", "x12", "", "1.5"}) {
        const auto a = parse({bad});
        EXPECT_FALSE(a.ok) << "'" << bad << "' accepted";
        EXPECT_FALSE(a.error.empty());
    }
}

TEST(BenchArgs, CountBelowMinimumIsAnError)
{
    const auto a = parse({"63"}, /*min_queries=*/64);
    EXPECT_FALSE(a.ok);
    EXPECT_NE(a.error.find(">= 64"), std::string::npos);
    EXPECT_TRUE(parse({"64"}, /*min_queries=*/64).ok);
}

TEST(BenchArgs, ExtraPositionalIsAnError)
{
    const auto a = parse({"100", "200"});
    EXPECT_FALSE(a.ok);
    EXPECT_NE(a.error.find("unexpected extra argument"),
              std::string::npos);
}

TEST(JsonWriter, NestedStructuresGetCommasRight)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("a", std::size_t{1});
    w.key("list");
    w.beginArray();
    w.value(std::size_t{2});
    w.beginObject();
    w.kv("b", true);
    w.kv("c", "x");
    w.endObject();
    w.endArray();
    w.kv("d", 1.5);
    w.endObject();
    EXPECT_EQ(os.str(),
              "{\"a\":1,\"list\":[2,{\"b\":true,\"c\":\"x\"}],"
              "\"d\":1.5}");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("nan", std::nan(""));
    w.endObject();
    EXPECT_EQ(os.str(), "{\"nan\":null}");
}

} // namespace
} // namespace vlr::bench

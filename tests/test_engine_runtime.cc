/**
 * @file
 * Tests for the concurrent retrieval engine: batched-parallel execution
 * must exactly match single-threaded serial search on a deterministic
 * synthetic dataset, and the admission queue must honor its batching,
 * drain and shutdown semantics. Engines are built through the
 * EngineBuilder (the only construction path); request-level behaviour
 * (deadlines, priorities, mixed batches, rejection) is covered in
 * test_serving_api.cc.
 */

#include <future>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "core/online_update.h"
#include "core/tiered_index.h"
#include "vecsearch/ivf_pq_fastscan.h"
#include "vecsearch/kmeans.h"

namespace vlr::core
{
namespace
{

/** Fixed-seed clustered corpus + a trained fast-scan index. */
struct EngineFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(42);
        std::vector<float> centers(ncenters_ * d_);
        for (auto &x : centers)
            x = static_cast<float>(rng.uniform(-1.0, 1.0));
        data_.resize(n_ * d_);
        for (std::size_t i = 0; i < n_; ++i) {
            const std::size_t c = rng.uniformU64(ncenters_);
            for (std::size_t j = 0; j < d_; ++j)
                data_[i * d_ + j] =
                    centers[c * d_ + j] +
                    static_cast<float>(rng.gaussian(0.0, 0.15));
        }
        vs::KMeansParams p;
        p.k = nlist_;
        const auto km = vs::kmeansTrain(data_, n_, d_, p);
        cq_ = std::make_shared<vs::FlatCoarseQuantizer>(km.centroids,
                                                        nlist_, d_);
        index_ = std::make_unique<vs::IvfPqFastScanIndex>(cq_, m_);
        index_->train(data_, n_);
        index_->add(data_, n_);

        queries_.resize(nq_ * d_);
        for (std::size_t i = 0; i < nq_; ++i) {
            const std::size_t c = rng.uniformU64(ncenters_);
            for (std::size_t j = 0; j < d_; ++j)
                queries_[i * d_ + j] =
                    centers[c * d_ + j] +
                    static_cast<float>(rng.gaussian(0.0, 0.2));
        }
    }

    std::vector<std::vector<vs::SearchHit>>
    serialResults(std::size_t k, std::size_t nprobe) const
    {
        std::vector<std::vector<vs::SearchHit>> out(nq_);
        for (std::size_t i = 0; i < nq_; ++i)
            out[i] = index_->search(queries_.data() + i * d_, k, nprobe);
        return out;
    }

    std::span<const float>
    query(std::size_t i) const
    {
        return {queries_.data() + i * d_, d_};
    }

    const std::size_t n_ = 3000;
    const std::size_t d_ = 16;
    const std::size_t m_ = 8;
    const std::size_t ncenters_ = 24;
    const std::size_t nlist_ = 32;
    const std::size_t nq_ = 64;
    std::vector<float> data_;
    std::vector<float> queries_;
    std::shared_ptr<vs::FlatCoarseQuantizer> cq_;
    std::unique_ptr<vs::IvfPqFastScanIndex> index_;
};

TEST_F(EngineFixture, ParallelBatchSearchMatchesSerial)
{
    const auto serial = serialResults(10, 8);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ThreadPool pool(threads);
        const auto parallel = index_->searchBatchParallel(
            queries_, nq_, 10, 8, pool);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < nq_; ++i) {
            ASSERT_EQ(parallel[i].size(), serial[i].size()) << "query " << i;
            for (std::size_t j = 0; j < serial[i].size(); ++j) {
                EXPECT_EQ(parallel[i][j].id, serial[i][j].id)
                    << "query " << i << " rank " << j;
                EXPECT_EQ(parallel[i][j].dist, serial[i][j].dist)
                    << "query " << i << " rank " << j;
            }
        }
    }
}

TEST_F(EngineFixture, ParallelBatchSearchAggregatesBreakdown)
{
    ThreadPool pool(4);
    vs::SearchBreakdown bd;
    index_->searchBatchParallel(queries_, nq_, 10, 8, pool, &bd);
    EXPECT_GT(bd.cqSeconds, 0.0);
    EXPECT_GT(bd.lutBuildSeconds, 0.0);
    EXPECT_GT(bd.scanSeconds, 0.0);
}

TEST_F(EngineFixture, PerQueryNprobeBatchMatchesSerial)
{
    // Heterogeneous probe depths in one parallel batch must equal the
    // per-query serial searches at the same depths.
    std::vector<std::size_t> nprobes(nq_);
    for (std::size_t i = 0; i < nq_; ++i)
        nprobes[i] = 1 + i % 16;
    ThreadPool pool(4);
    const auto parallel =
        index_->searchBatchParallel(queries_, nq_, 10, nprobes, pool);
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto serial =
            index_->search(queries_.data() + i * d_, 10, nprobes[i]);
        ASSERT_EQ(parallel[i].size(), serial.size()) << "query " << i;
        for (std::size_t j = 0; j < serial.size(); ++j) {
            EXPECT_EQ(parallel[i][j].id, serial[j].id)
                << "query " << i << " rank " << j;
            EXPECT_EQ(parallel[i][j].dist, serial[j].dist)
                << "query " << i << " rank " << j;
        }
    }
}

TEST_F(EngineFixture, EngineResultsMatchSerialSearch)
{
    const std::size_t k = 10, nprobe = 8;
    const auto serial = serialResults(k, nprobe);

    const auto engine = EngineBuilder(*index_)
                            .defaultK(k)
                            .defaultNprobe(nprobe)
                            .searchThreads(4)
                            .batching({.maxBatch = 16,
                                       .timeoutSeconds = 1e-3})
                            .build();

    std::vector<std::future<SearchResponse>> futures;
    futures.reserve(nq_);
    for (std::size_t i = 0; i < nq_; ++i)
        futures.push_back(engine->submit({.query = query(i)}));

    for (std::size_t i = 0; i < nq_; ++i) {
        const auto r = futures[i].get();
        EXPECT_EQ(r.disposition, Disposition::kServed);
        ASSERT_EQ(r.hits.size(), serial[i].size()) << "query " << i;
        for (std::size_t j = 0; j < serial[i].size(); ++j) {
            EXPECT_EQ(r.hits[j].id, serial[i][j].id)
                << "query " << i << " rank " << j;
            EXPECT_EQ(r.hits[j].dist, serial[i][j].dist)
                << "query " << i << " rank " << j;
        }
        EXPECT_EQ(r.k, k);
        EXPECT_EQ(r.nprobe, nprobe);
        EXPECT_GE(r.totalSeconds, 0.0);
        EXPECT_GE(r.totalSeconds, r.searchSeconds);
        EXPECT_LE(r.batchSize, 16u);
        EXPECT_GE(r.batchSize, 1u);
    }
}

TEST_F(EngineFixture, BatchCapIsRespected)
{
    const auto engine = EngineBuilder(*index_)
                            .searchThreads(2)
                            .batching({.maxBatch = 4,
                                       .timeoutSeconds = 50e-3})
                            .build();

    std::vector<std::future<SearchResponse>> futures;
    for (std::size_t i = 0; i < nq_; ++i)
        futures.push_back(engine->submit({.query = query(i)}));
    for (auto &f : futures)
        EXPECT_LE(f.get().batchSize, 4u);
}

TEST_F(EngineFixture, TimeoutDispatchesPartialBatch)
{
    // Cap never fills with 3 queries; the timeout must force dispatch.
    const auto engine = EngineBuilder(*index_)
                            .searchThreads(2)
                            .batching({.maxBatch = 64,
                                       .timeoutSeconds = 2e-3})
                            .build();

    std::vector<std::future<SearchResponse>> futures;
    for (std::size_t i = 0; i < 3; ++i)
        futures.push_back(engine->submit({.query = query(i)}));
    for (auto &f : futures) {
        const auto r = f.get(); // resolves without the cap ever filling
        EXPECT_LE(r.batchSize, 3u);
    }
}

TEST_F(EngineFixture, DrainCompletesEverythingAdmitted)
{
    const auto engine = EngineBuilder(*index_)
                            .searchThreads(4)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 100e-3})
                            .build();

    std::vector<std::future<SearchResponse>> futures;
    for (std::size_t i = 0; i < nq_; ++i)
        futures.push_back(engine->submit({.query = query(i)}));
    engine->drain();

    EXPECT_EQ(engine->pendingQueries(), 0u);
    const auto s = engine->stats();
    EXPECT_EQ(s.submitted, nq_);
    EXPECT_EQ(s.served, nq_);
    EXPECT_EQ(s.completed, nq_);
    for (auto &f : futures)
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
    EXPECT_TRUE(engine->accepting());
}

TEST_F(EngineFixture, ShutdownDrainsAndRejectsNewQueries)
{
    const auto engine = EngineBuilder(*index_)
                            .searchThreads(2)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 100e-3})
                            .build();

    std::vector<std::future<SearchResponse>> futures;
    for (std::size_t i = 0; i < 10; ++i)
        futures.push_back(engine->submit({.query = query(i)}));
    engine->shutdown();

    EXPECT_FALSE(engine->accepting());
    for (auto &f : futures) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_EQ(f.get().hits.size(), 10u);
    }
    EXPECT_THROW(engine->submit({.query = query(0)}), std::runtime_error);
    engine->shutdown(); // idempotent
}

TEST_F(EngineFixture, TieredEngineMatchesSerialSearch)
{
    const std::size_t k = 10, nprobe = 8;
    const auto serial = serialResults(k, nprobe);

    // Hot tier = half the clusters by descending size.
    std::vector<cluster_id_t> order(nlist_);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](cluster_id_t a, cluster_id_t b) {
                  const auto sa = index_->listSize(a);
                  const auto sb = index_->listSize(b);
                  if (sa != sb)
                      return sa > sb;
                  return a < b;
              });
    order.resize(nlist_ / 2);
    TieredIndex tiered(*index_, order);

    const auto engine = EngineBuilder(tiered)
                            .defaultK(k)
                            .defaultNprobe(nprobe)
                            .searchThreads(4)
                            .batching({.maxBatch = 16,
                                       .timeoutSeconds = 1e-3})
                            .build();
    ASSERT_EQ(engine->tiered(), &tiered);

    std::vector<std::future<SearchResponse>> futures;
    futures.reserve(nq_);
    for (std::size_t i = 0; i < nq_; ++i)
        futures.push_back(engine->submit({.query = query(i)}));
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto r = futures[i].get();
        ASSERT_EQ(r.hits.size(), serial[i].size()) << "query " << i;
        for (std::size_t j = 0; j < serial[i].size(); ++j) {
            EXPECT_EQ(r.hits[j].id, serial[i][j].id)
                << "query " << i << " rank " << j;
            EXPECT_EQ(r.hits[j].dist, serial[i][j].dist)
                << "query " << i << " rank " << j;
        }
    }

    const auto ts = tiered.stats();
    EXPECT_EQ(ts.queries, nq_);
    EXPECT_EQ(ts.hotOnlyQueries + ts.coldOnlyQueries + ts.splitQueries,
              nq_);
}

TEST_F(EngineFixture, TieredEngineDrivesOnlineUpdater)
{
    // Empty hot tier + sloSearchSeconds ~ 0 forces every batch to
    // report (hit rate 0, SLO miss); the updater must launch a
    // background rebuild, after which queries still resolve correctly.
    TieredIndex tiered(*index_, {});
    OnlineUpdater::Options uopts;
    uopts.drift.hitRateDivergence = 0.2;
    uopts.drift.attainmentThreshold = 0.85;
    uopts.drift.windowRequests = 4;
    uopts.rho = 0.25;
    OnlineUpdater updater(tiered, uopts, /*expected_hit_rate=*/0.9);

    const auto engine = EngineBuilder(tiered)
                            .defaultK(10)
                            .defaultNprobe(8)
                            .searchThreads(2)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 1e-3})
                            .sloSearchSeconds(1e-12)
                            .updater(&updater)
                            .build();

    const auto serial = serialResults(10, 8);
    std::vector<std::future<SearchResponse>> futures;
    for (std::size_t i = 0; i < nq_; ++i)
        futures.push_back(engine->submit({.query = query(i)}));
    engine->drain();
    updater.waitForRebuild();

    EXPECT_GE(updater.rebuildsCompleted(), 1u);
    EXPECT_GE(tiered.stats().repartitions, 1u);
    EXPECT_GT(tiered.numHotClusters(), 0u);
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto r = futures[i].get();
        ASSERT_EQ(r.hits.size(), serial[i].size()) << "query " << i;
        for (std::size_t j = 0; j < serial[i].size(); ++j)
            EXPECT_EQ(r.hits[j].id, serial[i][j].id)
                << "query " << i << " rank " << j;
    }
}

TEST_F(EngineFixture, StatsSnapshotIsConsistent)
{
    const auto engine = EngineBuilder(*index_)
                            .searchThreads(2)
                            .batching({.maxBatch = 16,
                                       .timeoutSeconds = 1e-3})
                            .build();

    for (std::size_t i = 0; i < nq_; ++i)
        engine->submit({.query = query(i)});
    engine->drain();

    const auto s = engine->stats();
    EXPECT_EQ(s.submitted, nq_);
    EXPECT_EQ(s.served, nq_);
    EXPECT_EQ(s.expired, 0u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.completed, nq_);
    EXPECT_GE(s.batches, (nq_ + 15) / 16);
    EXPECT_GT(s.meanBatchSize, 0.0);
    EXPECT_LE(s.meanBatchSize, 16.0);
    EXPECT_EQ(s.totalLatency.count, nq_);
    EXPECT_LE(s.totalLatency.p50, s.totalLatency.p90);
    EXPECT_LE(s.totalLatency.p90, s.totalLatency.p99);
    EXPECT_LE(s.totalLatency.p99, s.totalLatency.max);
    // Queue + search bound total from below for every sample mean.
    EXPECT_LE(s.queueLatency.mean, s.totalLatency.mean + 1e-12);
    EXPECT_LE(s.searchLatency.mean, s.totalLatency.mean + 1e-12);
}

} // namespace
} // namespace vlr::core

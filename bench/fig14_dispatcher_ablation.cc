/**
 * @file
 * Figure 14 reproduction: dynamic dispatcher ablation on the ORCAS 2K
 * index — average search latency, P90 tail search latency and the
 * adaptive retrieval batch size at increasing arrival rates, with the
 * dispatcher enabled and disabled.
 *
 * Expected shape: the dispatcher cuts both average and tail search
 * latency (paper: up to 16%); batch size grows with arrival rate under
 * adaptive batching in both configurations.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout, "Figure 14: dynamic dispatcher ablation");

    const auto spec = wl::orcas2kSpec();
    core::DatasetContext ctx(spec);
    const auto model = llm::qwen3_32b();

    bench::PeakCache peaks;
    auto base = bench::makeServingConfig(
        spec, model, core::RetrieverKind::VectorLite, 1.0);
    const double peak = peaks.peak(base);
    // The paper sweeps 24 / 32 / 41 req/s on its node; use the same
    // fractions of measured capacity.
    const std::vector<double> rates = {0.6 * peak, 0.8 * peak,
                                       1.02 * peak};

    std::cout << "dataset: " << spec.name << ", model " << model.name
              << ", capacity " << TextTable::num(peak, 1)
              << " req/s\n\n";

    TextTable t({"rate (r/s)", "dispatcher", "avg search (ms)",
                 "P90 search (ms)", "avg batch", "gain"});
    for (const double rate : rates) {
        double on_avg = 0.0;
        for (const int disp : {1, 0}) {
            auto cfg = bench::makeServingConfig(
                spec, model, core::RetrieverKind::VectorLite, rate);
            cfg.peakThroughputHint = peak;
            cfg.dispatcherOverride = disp;
            const auto res = core::runServing(cfg, ctx);
            std::string gain = "-";
            if (disp)
                on_avg = res.meanSearch;
            else if (res.meanSearch > 0.0)
                gain = TextTable::pct(1.0 -
                                      on_avg / res.meanSearch);
            t.addRow({TextTable::num(rate, 1), disp ? "on" : "off",
                      TextTable::num(res.meanSearch * 1e3, 1),
                      TextTable::num(res.p90Search * 1e3, 1),
                      TextTable::num(res.meanRetrievalBatch, 1),
                      gain});
        }
    }
    t.print(std::cout);

    std::cout << "\npaper: polling the scan loop and dispatching "
                 "queries on completion reduces search latency by up "
                 "to 16%, improving both average and tail latency; "
                 "batch sizes grow with arrival rate.\n";
    return 0;
}

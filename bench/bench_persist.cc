/**
 * @file
 * Persistence bench: artifact cold start vs in-memory retraining.
 *
 * Times the three storage phases — IndexStore::save of a trained
 * index, EngineBuilder::fromArtifact cold start (load + engine build),
 * and the first served query — against the in-memory rebuild (train +
 * encode) the artifact replaces. The bench *enforces* the headline
 * claim by exit code: a non-zero status when the artifact cold start
 * fails to beat retraining, or when either parity check (fromArtifact
 * engine vs the in-memory index, MmapColdTier vs the in-memory cold
 * scan) is not bit-identical.
 *
 * With --artifact-dir DIR the trained artifact and a sidecar meta file
 * (recorded train/save times + shape) persist across runs: a rerun
 * that finds a matching cached artifact skips training and gates the
 * cold start against the *recorded* train time — the CI cache path.
 *
 * Run: ./bench_persist [num_queries] [--smoke] [--artifact-dir DIR]
 * Emits BENCH_persist.json for CI trend archiving.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "storage/index_store.h"
#include "storage/mmap_cold_tier.h"
#include "workload/dataset.h"

namespace
{

struct Args
{
    std::size_t numQueries = 0;
    bool smoke = false;
    std::string artifactDir;
    bool ok = true;
    std::string error;
};

Args
parseArgs(int argc, char **argv)
{
    Args a;
    bool queries_set = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            a.smoke = true;
        } else if (arg == "--artifact-dir") {
            if (i + 1 >= argc) {
                a.ok = false;
                a.error = "--artifact-dir needs a directory argument";
                return a;
            }
            a.artifactDir = argv[++i];
        } else if (!queries_set && !arg.empty() && arg[0] != '-') {
            try {
                a.numQueries = std::stoul(arg);
            } catch (const std::exception &) {
                a.ok = false;
                a.error = "bad query count '" + arg + "'";
                return a;
            }
            if (a.numQueries < 1) {
                a.ok = false;
                a.error = "query count must be >= 1";
                return a;
            }
            queries_set = true;
        } else {
            a.ok = false;
            a.error = "unknown argument '" + arg + "'";
            return a;
        }
    }
    if (!queries_set)
        a.numQueries = a.smoke ? 200 : 1000;
    return a;
}

/** Sidecar key=value metadata recorded next to a cached artifact. */
std::map<std::string, std::string>
readMeta(const std::string &path)
{
    std::map<std::string, std::string> kv;
    std::ifstream is(path);
    std::string line;
    while (std::getline(is, line)) {
        const auto eq = line.find('=');
        if (eq != std::string::npos)
            kv[line.substr(0, eq)] = line.substr(eq + 1);
    }
    return kv;
}

bool
sameHits(const std::vector<vlr::vs::SearchHit> &a,
         const std::vector<vlr::vs::SearchHit> &b)
{
    return a == b;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vlr;

    const Args args = parseArgs(argc, argv);
    if (!args.ok) {
        std::cerr << "bench_persist: " << args.error << "\n"
                  << "usage: bench_persist [num_queries >= 1] [--smoke] "
                     "[--artifact-dir DIR]\n";
        return 1;
    }
    const std::size_t n_queries = args.numQueries;

    std::cout << "Persistent index store bench"
              << (args.smoke ? " (smoke mode)" : "") << "\n"
              << "============================\n\n";

    // --- corpus (deterministic, so a cached artifact stays valid) ---
    wl::DatasetSpec spec = wl::tinySpec();
    spec.numVectors = args.smoke ? 8000 : 40000;
    spec.dim = 64;
    spec.numClusters = args.smoke ? 64 : 256;
    spec.nprobe = 16;
    wl::SyntheticDataset dataset(spec);
    dataset.buildVectors();
    const auto cq = dataset.makeCoarseQuantizer();
    const std::size_t m = spec.dim / 4;
    const std::size_t k = 10;

    std::string artifact_path = "bench_persist.vlra";
    std::string meta_path;
    if (!args.artifactDir.empty()) {
        std::filesystem::create_directories(args.artifactDir);
        artifact_path = args.artifactDir + "/bench_persist.vlra";
        meta_path = artifact_path + ".meta";
    }

    // --- phase 1: train + save, or reuse a cached artifact ---
    double train_seconds = 0.0;
    double save_seconds = 0.0;
    bool cached = false;
    if (!meta_path.empty() && std::filesystem::exists(artifact_path) &&
        std::filesystem::exists(meta_path)) {
        try {
            const auto info = storage::IndexStore::inspect(artifact_path);
            const auto meta = readMeta(meta_path);
            if (info.dim == spec.dim && info.m == m &&
                info.nlist == spec.numClusters &&
                info.total == spec.numVectors &&
                meta.count("trainSeconds") != 0 &&
                meta.count("saveSeconds") != 0) {
                train_seconds = std::stod(meta.at("trainSeconds"));
                save_seconds = std::stod(meta.at("saveSeconds"));
                cached = true;
            }
        } catch (const std::exception &e) {
            std::cout << "cached artifact rejected (" << e.what()
                      << "); retraining\n";
        }
    }

    // The in-memory baseline every parity check compares against: the
    // freshly trained index, or (cached path) the loaded artifact —
    // whose fidelity the test suite pins down bit-for-bit.
    auto baseline = [&]() -> vs::IvfPqFastScanIndex {
        if (cached) {
            std::cout << "reusing cached artifact " << artifact_path
                      << " (recorded train "
                      << TextTable::num(train_seconds, 2)
                      << " s)\n\n";
            return storage::IndexStore::load(artifact_path);
        }
        WallTimer t;
        vs::IvfPqFastScanIndex idx(cq, m);
        idx.train(dataset.vectors(), spec.numVectors);
        idx.addPreassigned(dataset.vectors(), spec.numVectors,
                           dataset.assignments());
        train_seconds = t.elapsed();
        t.reset();
        storage::IndexStore::save(artifact_path, idx);
        save_seconds = t.elapsed();
        if (!meta_path.empty()) {
            std::ofstream os(meta_path, std::ios::trunc);
            os << "formatVersion="
               << storage::IndexStore::kFormatVersion << "\n"
               << "trainSeconds=" << train_seconds << "\n"
               << "saveSeconds=" << save_seconds << "\n";
        }
        return idx;
    }();

    std::cout << "index: " << baseline.size() << " vectors, dim "
              << baseline.dim() << ", nlist " << baseline.nlist()
              << ", simd " << (vs::fastScanHasSimd() ? "avx2" : "scalar")
              << "\nartifact: " << artifact_path << " ("
              << std::filesystem::file_size(artifact_path)
              << " bytes)\n\n";

    // --- phase 2: cold start from the artifact ---
    WallTimer cold_timer;
    auto engine = core::EngineBuilder::fromArtifact(artifact_path)
                      .defaultK(k)
                      .defaultNprobe(spec.nprobe)
                      .searchThreads(2)
                      .batching({.maxBatch = 32, .timeoutSeconds = 1e-3})
                      .build();
    const double cold_start_seconds = cold_timer.elapsed();

    wl::QueryGenerator gen(dataset, 123);
    const auto queries = gen.generate(n_queries);

    cold_timer.reset();
    auto first = engine
                     ->submit({.query = std::span<const float>(
                                   queries.data(), spec.dim)})
                     .get();
    const double first_query_seconds = cold_timer.elapsed();

    // --- phase 3: parity (the gate, not just a report) ---
    bool engine_parity =
        first.disposition == core::Disposition::kServed &&
        sameHits(first.hits,
                 baseline.search(queries.data(), k, spec.nprobe));
    {
        std::vector<std::future<core::SearchResponse>> futures;
        futures.reserve(n_queries);
        for (std::size_t i = 0; i < n_queries; ++i)
            futures.push_back(engine->submit(
                {.query = std::span<const float>(
                     queries.data() + i * spec.dim, spec.dim)}));
        for (std::size_t i = 0; i < n_queries; ++i) {
            const auto resp = futures[i].get();
            if (resp.disposition != core::Disposition::kServed ||
                !sameHits(resp.hits,
                          baseline.search(queries.data() + i * spec.dim,
                                          k, spec.nprobe)))
                engine_parity = false;
        }
    }

    bool mmap_parity = true;
    std::size_t resident_bytes = 0;
    std::size_t resident_clusters = 0;
    {
        storage::MmapColdTier tier(artifact_path, {});
        vs::SearchScratch scratch;
        const std::size_t nlist = baseline.nlist();
        std::vector<cluster_id_t> probe;
        const std::size_t n_parity = std::min<std::size_t>(64, n_queries);
        for (std::size_t i = 0; i < n_parity; ++i) {
            // Deterministic striped cluster subsets stand in for router
            // probe sets; parity must hold for *any* subset.
            probe.clear();
            for (std::size_t c = i % 4; c < nlist; c += 4)
                probe.push_back(static_cast<cluster_id_t>(c));
            const float *q = queries.data() + i * spec.dim;
            if (!sameHits(tier.searchClusters(q, k, probe, &scratch),
                          baseline.searchClusters(q, k, probe, nullptr,
                                                  &scratch)))
                mmap_parity = false;
        }
        resident_bytes = tier.residentBytes();
        resident_clusters = tier.residentClusters();
    }

    const double speedup =
        cold_start_seconds > 0.0 ? train_seconds / cold_start_seconds
                                 : 0.0;
    const bool beats_retrain = cold_start_seconds < train_seconds;

    TextTable t({"phase", "seconds"});
    t.addRow({"train + encode (in-memory rebuild)",
              TextTable::num(train_seconds, 4)});
    t.addRow({"IndexStore::save", TextTable::num(save_seconds, 4)});
    t.addRow({"fromArtifact cold start",
              TextTable::num(cold_start_seconds, 4)});
    t.addRow({"first served query",
              TextTable::num(first_query_seconds, 4)});
    t.print(std::cout);
    std::cout << "\ncold start vs retrain: "
              << TextTable::num(speedup, 1) << "x "
              << (beats_retrain ? "(beats retraining)"
                                : "(FAILS to beat retraining)")
              << "\nengine parity: " << (engine_parity ? "ok" : "FAIL")
              << "   mmap cold-tier parity: "
              << (mmap_parity ? "ok" : "FAIL") << "\nmmap residency: "
              << resident_clusters << " clusters, " << resident_bytes
              << " bytes\n";

    {
        std::ofstream os("BENCH_persist.json");
        bench::JsonWriter w(os);
        w.beginObject();
        w.kv("bench", "persist");
        w.kv("smoke", args.smoke);
        w.kv("numQueries", n_queries);
        w.kv("numVectors", spec.numVectors);
        w.kv("dim", spec.dim);
        w.kv("nlist", spec.numClusters);
        w.kv("simd", vs::fastScanHasSimd());
        w.kv("cachedArtifact", cached);
        w.kv("artifactBytes",
             static_cast<std::size_t>(
                 std::filesystem::file_size(artifact_path)));
        w.kv("trainSeconds", train_seconds);
        w.kv("saveSeconds", save_seconds);
        w.kv("coldStartSeconds", cold_start_seconds);
        w.kv("firstQuerySeconds", first_query_seconds);
        w.kv("coldStartSpeedup", speedup);
        w.kv("beatsRetrain", beats_retrain);
        w.kv("engineParity", engine_parity);
        w.kv("mmapParity", mmap_parity);
        w.kv("mmapResidentBytes", resident_bytes);
        w.kv("mmapResidentClusters", resident_clusters);
        w.endObject();
        os << "\n";
    }
    std::cout << "\nwrote BENCH_persist.json\n";

    if (meta_path.empty())
        std::remove(artifact_path.c_str());

    if (!engine_parity || !mmap_parity) {
        std::cerr << "bench_persist: parity FAILED\n";
        return 1;
    }
    if (!beats_retrain) {
        std::cerr << "bench_persist: artifact cold start did not beat "
                     "retraining\n";
        return 1;
    }
    return 0;
}

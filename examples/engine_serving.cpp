/**
 * @file
 * Serve a Poisson query stream through the *real* concurrent retrieval
 * engine (admission queue -> dynamic batcher -> parallel IVF-PQ
 * fast-scan), then print the measured latency percentiles next to the
 * analytic perf-model prediction — the executable counterpart of the
 * simulator-driven quickstart.
 *
 * Run: ./engine_serving
 */

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "core/vectorliterag.h"

int
main()
{
    using namespace vlr;

    std::cout << "VectorLiteRAG engine serving demo\n"
              << "=================================\n\n";

    // 1. Corpus + index: a real (reduced-scale) clustered dataset.
    wl::DatasetSpec spec = wl::tinySpec();
    spec.numVectors = 20000;
    spec.dim = 32;
    spec.numClusters = 128;
    spec.nprobe = 16;
    wl::SyntheticDataset dataset(spec);
    dataset.buildVectors();
    const auto cq = dataset.makeCoarseQuantizer();
    vs::IvfPqFastScanIndex index(cq, spec.dim / 4);
    index.train(dataset.vectors(), spec.numVectors);
    index.addPreassigned(dataset.vectors(), spec.numVectors,
                         dataset.assignments());
    std::cout << "index: " << index.size() << " vectors, "
              << index.nlist() << " lists, "
              << (vs::fastScanHasSimd() ? "AVX2" : "scalar")
              << " fast-scan\n";

    // 2. Engine with the paper-style dispatcher policy.
    core::EngineOptions opts;
    opts.k = 10;
    opts.nprobe = spec.nprobe;
    opts.numSearchThreads = 4;
    opts.batching.maxBatch = 32;
    opts.batching.timeoutSeconds = 2e-3;
    core::RetrievalEngine engine(index, opts);

    // 3. Open-loop Poisson arrivals, replayed in real time.
    const double rate = 2000.0; // queries per second
    const double horizon = 1.5; // seconds
    const auto arrivals = wl::poissonArrivals(rate, horizon, 17);
    wl::QueryGenerator gen(dataset, 29);
    const auto queries = gen.generate(arrivals.size());

    std::cout << "replaying " << arrivals.size()
              << " Poisson arrivals at " << rate << " q/s...\n\n";
    std::vector<std::future<core::EngineQueryResult>> futures;
    futures.reserve(arrivals.size());
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(arrivals[i]));
        std::this_thread::sleep_until(due);
        futures.push_back(engine.submit(std::span<const float>(
            queries.data() + i * spec.dim, spec.dim)));
    }
    engine.shutdown();

    // 4. Report: measured percentiles vs the fitted analytic model.
    const auto stats = engine.stats();
    TextTable t({"metric", "mean (ms)", "p50 (ms)", "p90 (ms)",
                 "p99 (ms)"});
    const auto row = [&](const char *name, const LatencySummary &s) {
        t.addRow({name, TextTable::num(s.mean * 1e3, 3),
                  TextTable::num(s.p50 * 1e3, 3),
                  TextTable::num(s.p90 * 1e3, 3),
                  TextTable::num(s.p99 * 1e3, 3)});
    };
    row("queue wait", stats.queueLatency);
    row("batch search", stats.searchLatency);
    row("total", stats.totalLatency);
    t.print(std::cout);

    std::cout << "\ncompleted " << stats.completed << "/"
              << stats.submitted << " queries in " << stats.batches
              << " batches (mean batch "
              << TextTable::num(stats.meanBatchSize, 1) << ")\n";
    return 0;
}

/**
 * @file
 * Tests for IVF-PQ and IVF-PQ fast-scan indexes: recall against ground
 * truth, timing breakdowns, batch search and memory accounting.
 */

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vecsearch/flat_index.h"
#include "vecsearch/ivf_pq.h"
#include "vecsearch/ivf_pq_fastscan.h"
#include "vecsearch/kmeans.h"

namespace vlr::vs
{
namespace
{

struct IvfPqFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(7);
        // Clustered data so PQ compression behaves like real corpora.
        std::vector<float> centers(ncenters_ * d_);
        for (auto &x : centers)
            x = static_cast<float>(rng.uniform(-1.0, 1.0));
        data_.resize(n_ * d_);
        for (std::size_t i = 0; i < n_; ++i) {
            const std::size_t c = rng.uniformU64(ncenters_);
            for (std::size_t j = 0; j < d_; ++j)
                data_[i * d_ + j] =
                    centers[c * d_ + j] +
                    static_cast<float>(rng.gaussian(0.0, 0.15));
        }
        KMeansParams p;
        p.k = nlist_;
        const auto km = kmeansTrain(data_, n_, d_, p);
        cq_ = std::make_shared<FlatCoarseQuantizer>(km.centroids, nlist_,
                                                    d_);
        flat_ = std::make_unique<FlatIndex>(d_);
        flat_->add(data_, n_);
        queries_.resize(nq_ * d_);
        for (std::size_t i = 0; i < nq_; ++i) {
            const std::size_t c = rng.uniformU64(ncenters_);
            for (std::size_t j = 0; j < d_; ++j)
                queries_[i * d_ + j] =
                    centers[c * d_ + j] +
                    static_cast<float>(rng.gaussian(0.0, 0.2));
        }
    }

    double
    recallAt10(const std::vector<std::vector<SearchHit>> &results) const
    {
        std::size_t found = 0;
        for (std::size_t i = 0; i < nq_; ++i) {
            const auto exact = flat_->search(queries_.data() + i * d_, 10);
            std::set<idx_t> truth;
            for (const auto &h : exact)
                truth.insert(h.id);
            for (const auto &h : results[i])
                found += truth.count(h.id);
        }
        return static_cast<double>(found) / (nq_ * 10);
    }

    const std::size_t n_ = 3000, d_ = 16, nlist_ = 32, nq_ = 25;
    const std::size_t ncenters_ = 40;
    std::vector<float> data_;
    std::vector<float> queries_;
    std::shared_ptr<FlatCoarseQuantizer> cq_;
    std::unique_ptr<FlatIndex> flat_;
};

TEST_F(IvfPqFixture, ReasonableRecallAtFullProbe)
{
    IvfPqIndex index(cq_, 8, 8);
    index.train(data_, n_);
    index.add(data_, n_);
    const auto results =
        index.searchBatch(queries_, nq_, 10, nlist_);
    EXPECT_GT(recallAt10(results), 0.7);
}

TEST_F(IvfPqFixture, ResidualEncodingImprovesRecall)
{
    IvfPqIndex plain(cq_, 4, 8, false);
    IvfPqIndex residual(cq_, 4, 8, true);
    plain.train(data_, n_);
    residual.train(data_, n_);
    plain.add(data_, n_);
    residual.add(data_, n_);
    const auto rp = recallAt10(plain.searchBatch(queries_, nq_, 10, 16));
    const auto rr =
        recallAt10(residual.searchBatch(queries_, nq_, 10, 16));
    EXPECT_GE(rr, rp - 0.05); // residual never meaningfully worse
}

TEST_F(IvfPqFixture, BreakdownComponentsPositiveAndSum)
{
    IvfPqIndex index(cq_, 8, 8);
    index.train(data_, n_);
    index.add(data_, n_);
    SearchBreakdown bd;
    index.searchBatch(queries_, nq_, 10, 8, &bd);
    EXPECT_GT(bd.cqSeconds, 0.0);
    EXPECT_GT(bd.lutBuildSeconds, 0.0);
    EXPECT_GT(bd.scanSeconds, 0.0);
    EXPECT_NEAR(bd.total(),
                bd.cqSeconds + bd.lutBuildSeconds + bd.scanSeconds,
                1e-12);
}

TEST_F(IvfPqFixture, BatchSearchMatchesSingleSearch)
{
    IvfPqIndex index(cq_, 4, 8);
    index.train(data_, n_);
    index.add(data_, n_);
    const auto batch = index.searchBatch(queries_, nq_, 5, 8);
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto single = index.search(queries_.data() + i * d_, 5, 8);
        ASSERT_EQ(batch[i].size(), single.size());
        for (std::size_t j = 0; j < single.size(); ++j)
            EXPECT_EQ(batch[i][j], single[j]);
    }
}

TEST_F(IvfPqFixture, SearchClustersSubsetOfFullSearch)
{
    IvfPqIndex index(cq_, 4, 8);
    index.train(data_, n_);
    index.add(data_, n_);
    const float *q = queries_.data();
    const auto probes = cq_->probe(q, 8);
    const auto full = index.search(q, 10, 8);
    const auto subset = index.searchClusters(q, 10, probes.clusters);
    ASSERT_EQ(full.size(), subset.size());
    for (std::size_t j = 0; j < full.size(); ++j)
        EXPECT_EQ(full[j], subset[j]);
}

TEST_F(IvfPqFixture, MemoryBytesGrowsWithVectors)
{
    IvfPqIndex index(cq_, 8, 8);
    index.train(data_, n_);
    index.add(data_, n_ / 2);
    const auto half = index.memoryBytes();
    index.add(std::span<const float>(data_).subspan(n_ / 2 * d_),
              n_ - n_ / 2);
    EXPECT_GT(index.memoryBytes(), half);
    // Codes alone are n * m bytes; memory must be at least that.
    EXPECT_GE(index.memoryBytes(), n_ * 8);
}

TEST_F(IvfPqFixture, ListSizesPartitionCorpus)
{
    IvfPqIndex index(cq_, 4, 8);
    index.train(data_, n_);
    index.add(data_, n_);
    std::size_t total = 0;
    for (const auto s : index.listSizes())
        total += s;
    EXPECT_EQ(total, n_);
    EXPECT_EQ(index.size(), n_);
}

// --- Fast-scan index ----------------------------------------------------

TEST_F(IvfPqFixture, FastScanRecallTracksPlainPq4)
{
    IvfPqIndex plain(cq_, 8, 4);
    IvfPqFastScanIndex fast(cq_, 8);
    plain.train(data_, n_);
    fast.train(data_, n_);
    plain.add(data_, n_);
    fast.add(data_, n_);
    const auto rp = recallAt10(plain.searchBatch(queries_, nq_, 10, 16));
    const auto rf = recallAt10(fast.searchBatch(queries_, nq_, 10, 16));
    // The uint8-quantized LUT costs at most a few recall points.
    EXPECT_GE(rf, rp - 0.1);
}

TEST_F(IvfPqFixture, FastScanBreakdownPopulated)
{
    IvfPqFastScanIndex fast(cq_, 8);
    fast.train(data_, n_);
    fast.add(data_, n_);
    SearchBreakdown bd;
    fast.searchBatch(queries_, nq_, 10, 8, &bd);
    EXPECT_GT(bd.cqSeconds, 0.0);
    EXPECT_GT(bd.scanSeconds, 0.0);
}

TEST_F(IvfPqFixture, FastScanSizeAndMemory)
{
    IvfPqFastScanIndex fast(cq_, 8);
    fast.train(data_, n_);
    fast.add(data_, n_);
    EXPECT_EQ(fast.size(), n_);
    // Packed codes: >= n/2 bytes per sub-quantizer (4-bit).
    EXPECT_GE(fast.memoryBytes(), n_ * 8 / 2);
    std::size_t total = 0;
    for (const auto s : fast.listSizes())
        total += s;
    EXPECT_EQ(total, n_);
}

TEST_F(IvfPqFixture, FastScanSearchClustersConsistent)
{
    IvfPqFastScanIndex fast(cq_, 8);
    fast.train(data_, n_);
    fast.add(data_, n_);
    const float *q = queries_.data();
    const auto probes = cq_->probe(q, 8);
    const auto full = fast.search(q, 10, 8);
    const auto subset = fast.searchClusters(q, 10, probes.clusters);
    ASSERT_EQ(full.size(), subset.size());
    for (std::size_t j = 0; j < full.size(); ++j)
        EXPECT_EQ(full[j].id, subset[j].id);
}

TEST_F(IvfPqFixture, FastScanIncrementalAddMatchesOneShot)
{
    // The streaming-ingestion contract: adding a corpus in many
    // addPreassigned() calls yields byte-identical packed lists to one
    // call (the per-cluster append path, not a wholesale re-pack).
    std::vector<std::int32_t> assign(n_);
    for (std::size_t i = 0; i < n_; ++i)
        assign[i] = cq_->probe(data_.data() + i * d_, 1).clusters[0];

    IvfPqFastScanIndex oneshot(cq_, 8), incremental(cq_, 8);
    oneshot.train(data_, n_);
    incremental.train(data_, n_);
    oneshot.addPreassigned(data_, n_, assign);
    const std::size_t chunk = 257; // deliberately not a 32 multiple
    for (std::size_t off = 0; off < n_; off += chunk) {
        const std::size_t len = std::min(chunk, n_ - off);
        incremental.addPreassigned(
            std::span<const float>(data_.data() + off * d_, len * d_),
            len,
            std::span<const std::int32_t>(assign.data() + off, len));
    }

    ASSERT_EQ(incremental.size(), oneshot.size());
    for (cluster_id_t c = 0; c < static_cast<cluster_id_t>(nlist_);
         ++c) {
        const auto ia = oneshot.listIds(c);
        const auto ib = incremental.listIds(c);
        ASSERT_EQ(ia.size(), ib.size()) << "cluster " << c;
        EXPECT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()))
            << "cluster " << c;
        const auto pa = oneshot.listPacked(c);
        const auto pb = incremental.listPacked(c);
        ASSERT_EQ(pa.size(), pb.size()) << "cluster " << c;
        EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin()))
            << "cluster " << c;
    }
}

TEST_F(IvfPqFixture, FastScanFromPartsRebuildsBitIdentical)
{
    IvfPqFastScanIndex fast(cq_, 8);
    fast.train(data_, n_);
    fast.add(data_, n_);

    std::vector<std::vector<idx_t>> ids(nlist_);
    std::vector<std::vector<std::uint8_t>> packed(nlist_);
    for (std::size_t c = 0; c < nlist_; ++c) {
        const auto la = fast.listIds(static_cast<cluster_id_t>(c));
        const auto lp = fast.listPacked(static_cast<cluster_id_t>(c));
        ids[c].assign(la.begin(), la.end());
        packed[c].assign(lp.begin(), lp.end());
    }
    const auto rebuilt = IvfPqFastScanIndex::fromParts(
        cq_, fast.pq(), std::move(ids), std::move(packed));
    ASSERT_EQ(rebuilt.size(), fast.size());
    for (std::size_t i = 0; i < nq_; ++i) {
        const float *q = queries_.data() + i * d_;
        const auto a = fast.search(q, 10, 8);
        const auto b = rebuilt.search(q, 10, 8);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t j = 0; j < a.size(); ++j) {
            EXPECT_EQ(a[j].id, b[j].id);
            EXPECT_EQ(a[j].dist, b[j].dist);
        }
    }
}

} // namespace
} // namespace vlr::vs

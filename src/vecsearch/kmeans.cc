#include "vecsearch/kmeans.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/log.h"
#include "common/threadpool.h"
#include "vecsearch/metric.h"

namespace vlr::vs
{

namespace
{

/** k-means++ seeding over the (possibly subsampled) training set. */
std::vector<float>
seedPlusPlus(const float *data, std::size_t n, std::size_t d, std::size_t k,
             Rng &rng)
{
    std::vector<float> centroids(k * d);
    std::vector<double> min_dist(n, std::numeric_limits<double>::max());

    const std::size_t first = rng.uniformU64(n);
    std::copy_n(data + first * d, d, centroids.begin());

    for (std::size_t c = 1; c < k; ++c) {
        const float *prev = centroids.data() + (c - 1) * d;
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double dist = l2Sqr(data + i * d, prev, d);
            min_dist[i] = std::min(min_dist[i], dist);
            total += min_dist[i];
        }
        // Sample proportional to squared distance; degenerate case
        // (all points identical) falls back to uniform choice.
        std::size_t chosen = 0;
        if (total > 0.0) {
            double target = rng.uniform() * total;
            for (std::size_t i = 0; i < n; ++i) {
                target -= min_dist[i];
                if (target <= 0.0) {
                    chosen = i;
                    break;
                }
            }
        } else {
            chosen = rng.uniformU64(n);
        }
        std::copy_n(data + chosen * d, d, centroids.begin() + c * d);
    }
    return centroids;
}

} // namespace

std::vector<std::int32_t>
kmeansAssign(std::span<const float> data, std::size_t n, std::size_t d,
             std::span<const float> centroids, std::size_t k,
             ThreadPool *pool)
{
    assert(data.size() >= n * d);
    assert(centroids.size() >= k * d);
    std::vector<std::int32_t> assign(n, 0);

    auto worker = [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
            const float *x = data.data() + i * d;
            float best = std::numeric_limits<float>::max();
            std::int32_t best_c = 0;
            for (std::size_t c = 0; c < k; ++c) {
                const float dist = l2Sqr(x, centroids.data() + c * d, d);
                if (dist < best) {
                    best = dist;
                    best_c = static_cast<std::int32_t>(c);
                }
            }
            assign[i] = best_c;
        }
    };
    if (pool)
        pool->parallelChunks(n, worker);
    else
        worker(0, n);
    return assign;
}

KMeansResult
kmeansTrain(std::span<const float> data, std::size_t n, std::size_t d,
            const KMeansParams &params, ThreadPool *pool)
{
    assert(data.size() >= n * d);
    const std::size_t k = params.k;
    if (n < k)
        fatal("kmeansTrain: fewer points than centroids");

    Rng rng(params.seed);

    // Subsample training points, Faiss-style, to bound training cost.
    const float *train_data = data.data();
    std::size_t train_n = n;
    std::vector<float> sampled;
    if (params.maxPointsPerCentroid > 0) {
        const std::size_t cap = params.maxPointsPerCentroid * k;
        if (n > cap) {
            std::vector<std::size_t> perm(n);
            std::iota(perm.begin(), perm.end(), 0);
            rng.shuffle(perm);
            sampled.resize(cap * d);
            for (std::size_t i = 0; i < cap; ++i) {
                std::copy_n(data.data() + perm[i] * d, d,
                            sampled.begin() + i * d);
            }
            train_data = sampled.data();
            train_n = cap;
        }
    }

    KMeansResult res;
    res.centroids = seedPlusPlus(train_data, train_n, d, k, rng);

    std::vector<std::int32_t> assign(train_n);
    std::vector<double> sums(k * d);
    std::vector<std::size_t> counts(k);
    double prev_obj = std::numeric_limits<double>::max();

    for (int iter = 0; iter < params.maxIters; ++iter) {
        // Assignment step.
        assign = kmeansAssign({train_data, train_n * d}, train_n, d,
                              res.centroids, k, pool);

        // Update step with objective tracking.
        std::fill(sums.begin(), sums.end(), 0.0);
        std::fill(counts.begin(), counts.end(), 0);
        double obj = 0.0;
        for (std::size_t i = 0; i < train_n; ++i) {
            const auto c = static_cast<std::size_t>(assign[i]);
            const float *x = train_data + i * d;
            obj += l2Sqr(x, res.centroids.data() + c * d, d);
            ++counts[c];
            for (std::size_t j = 0; j < d; ++j)
                sums[c * d + j] += x[j];
        }
        obj /= static_cast<double>(train_n);
        res.objective = obj;
        res.iterations = iter + 1;

        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            const double inv = 1.0 / static_cast<double>(counts[c]);
            for (std::size_t j = 0; j < d; ++j) {
                res.centroids[c * d + j] =
                    static_cast<float>(sums[c * d + j] * inv);
            }
        }

        // Repair empty clusters: split the most populated one with a
        // small perturbation, as Faiss does.
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] > 0)
                continue;
            const std::size_t big = static_cast<std::size_t>(
                std::max_element(counts.begin(), counts.end()) -
                counts.begin());
            for (std::size_t j = 0; j < d; ++j) {
                const float v = res.centroids[big * d + j];
                const float eps = static_cast<float>(
                    rng.gaussian(0.0, 1e-3 * (std::fabs(v) + 1e-3)));
                res.centroids[c * d + j] = v + eps;
                res.centroids[big * d + j] = v - eps;
            }
            counts[c] = counts[big] / 2;
            counts[big] -= counts[c];
        }

        if (prev_obj < std::numeric_limits<double>::max()) {
            const double rel =
                (prev_obj - obj) / std::max(prev_obj, 1e-30);
            if (rel >= 0.0 && rel < params.tol)
                break;
        }
        prev_obj = obj;
    }
    return res;
}

} // namespace vlr::vs

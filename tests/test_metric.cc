/**
 * @file
 * Tests for the distance kernels: SIMD vs scalar agreement, metric
 * semantics and batched distance computation.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vecsearch/metric.h"

namespace vlr::vs
{
namespace
{

std::vector<float>
randomVector(Rng &rng, std::size_t d)
{
    std::vector<float> v(d);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    return v;
}

TEST(Metric, L2OfIdenticalVectorsIsZero)
{
    Rng rng(1);
    const auto v = randomVector(rng, 33);
    EXPECT_FLOAT_EQ(l2Sqr(v.data(), v.data(), v.size()), 0.f);
}

TEST(Metric, L2KnownValue)
{
    const float a[] = {1.f, 2.f, 3.f};
    const float b[] = {4.f, 6.f, 3.f};
    EXPECT_FLOAT_EQ(l2Sqr(a, b, 3), 9.f + 16.f + 0.f);
}

TEST(Metric, InnerProductKnownValue)
{
    const float a[] = {1.f, 2.f, 3.f};
    const float b[] = {4.f, 5.f, 6.f};
    EXPECT_FLOAT_EQ(innerProduct(a, b, 3), 32.f);
}

TEST(Metric, L2IsSymmetric)
{
    Rng rng(2);
    const auto a = randomVector(rng, 48);
    const auto b = randomVector(rng, 48);
    EXPECT_FLOAT_EQ(l2Sqr(a.data(), b.data(), 48),
                    l2Sqr(b.data(), a.data(), 48));
}

TEST(Metric, ComparableDistanceL2IsPlain)
{
    Rng rng(3);
    const auto a = randomVector(rng, 16);
    const auto b = randomVector(rng, 16);
    EXPECT_FLOAT_EQ(comparableDistance(Metric::L2, a.data(), b.data(), 16),
                    l2Sqr(a.data(), b.data(), 16));
}

TEST(Metric, ComparableDistanceIpIsNegated)
{
    Rng rng(4);
    const auto a = randomVector(rng, 16);
    const auto b = randomVector(rng, 16);
    EXPECT_FLOAT_EQ(
        comparableDistance(Metric::InnerProduct, a.data(), b.data(), 16),
        -innerProduct(a.data(), b.data(), 16));
}

TEST(Metric, DistancesToManyMatchesLoop)
{
    Rng rng(5);
    const std::size_t d = 24, n = 17;
    const auto q = randomVector(rng, d);
    std::vector<float> base;
    for (std::size_t i = 0; i < n; ++i) {
        const auto v = randomVector(rng, d);
        base.insert(base.end(), v.begin(), v.end());
    }
    std::vector<float> out(n);
    distancesToMany(Metric::L2, q.data(), base.data(), n, d, out.data());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(out[i], l2Sqr(q.data(), base.data() + i * d, d),
                    1e-4f * (1.f + std::abs(out[i])));
}

TEST(Metric, DistancesToManyInnerProduct)
{
    Rng rng(6);
    const std::size_t d = 8, n = 5;
    const auto q = randomVector(rng, d);
    std::vector<float> base;
    for (std::size_t i = 0; i < n; ++i) {
        const auto v = randomVector(rng, d);
        base.insert(base.end(), v.begin(), v.end());
    }
    std::vector<float> out(n);
    distancesToMany(Metric::InnerProduct, q.data(), base.data(), n, d,
                    out.data());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(out[i],
                    -innerProduct(q.data(), base.data() + i * d, d), 1e-4f);
}

/**
 * SIMD and scalar kernels must agree to floating-point reassociation
 * tolerance across a sweep of dimensions, including non-multiples of
 * the vector width.
 */
class MetricKernelTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(MetricKernelTest, SimdMatchesScalarL2)
{
    const std::size_t d = GetParam();
    Rng rng(100 + d);
    const auto a = randomVector(rng, d);
    const auto b = randomVector(rng, d);
    const float simd = l2Sqr(a.data(), b.data(), d);
    const float scalar = l2SqrScalar(a.data(), b.data(), d);
    EXPECT_NEAR(simd, scalar, 1e-4f * (1.f + std::abs(scalar)));
}

TEST_P(MetricKernelTest, SimdMatchesScalarIp)
{
    const std::size_t d = GetParam();
    Rng rng(200 + d);
    const auto a = randomVector(rng, d);
    const auto b = randomVector(rng, d);
    const float simd = innerProduct(a.data(), b.data(), d);
    const float scalar = innerProductScalar(a.data(), b.data(), d);
    EXPECT_NEAR(simd, scalar, 1e-4f * (1.f + std::abs(scalar)));
}

INSTANTIATE_TEST_SUITE_P(DimSweep, MetricKernelTest,
                         ::testing::Values(1, 3, 7, 8, 15, 16, 17, 31, 32,
                                           48, 64, 100, 128, 768));

} // namespace
} // namespace vlr::vs

/**
 * @file
 * Tests for the piecewise-linear latency model used by the profiled
 * performance model (paper Fig. 8 left).
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/piecewise_linear.h"

namespace vlr
{
namespace
{

PiecewiseLinearModel
makeModel(std::vector<PlKnot> knots)
{
    return PiecewiseLinearModel::fit(knots);
}

TEST(PiecewiseLinear, SingleKnotIsConstant)
{
    const auto m = makeModel({{2.0, 5.0}});
    EXPECT_DOUBLE_EQ(m.eval(0.0), 5.0);
    EXPECT_DOUBLE_EQ(m.eval(2.0), 5.0);
    EXPECT_DOUBLE_EQ(m.eval(100.0), 5.0);
}

TEST(PiecewiseLinear, ExactAtKnots)
{
    const auto m = makeModel({{1.0, 1.0}, {2.0, 4.0}, {4.0, 5.0}});
    EXPECT_DOUBLE_EQ(m.eval(1.0), 1.0);
    EXPECT_DOUBLE_EQ(m.eval(2.0), 4.0);
    EXPECT_DOUBLE_EQ(m.eval(4.0), 5.0);
}

TEST(PiecewiseLinear, InterpolatesBetweenKnots)
{
    const auto m = makeModel({{0.0, 0.0}, {10.0, 20.0}});
    EXPECT_NEAR(m.eval(5.0), 10.0, 1e-12);
    EXPECT_NEAR(m.eval(2.5), 5.0, 1e-12);
}

TEST(PiecewiseLinear, ExtrapolatesWithLastSlope)
{
    const auto m = makeModel({{0.0, 0.0}, {1.0, 1.0}, {2.0, 3.0}});
    // Last segment slope is 2.
    EXPECT_NEAR(m.eval(4.0), 3.0 + 2.0 * 2.0, 1e-12);
}

TEST(PiecewiseLinear, ExtrapolatesBelowWithFirstSlope)
{
    const auto m = makeModel({{2.0, 4.0}, {4.0, 8.0}});
    EXPECT_NEAR(m.eval(0.0), 0.0, 1e-12);
}

TEST(PiecewiseLinear, UnsortedSamplesAreSorted)
{
    const auto m = makeModel({{4.0, 5.0}, {1.0, 1.0}, {2.0, 4.0}});
    EXPECT_DOUBLE_EQ(m.eval(2.0), 4.0);
    EXPECT_EQ(m.knots().size(), 3u);
    EXPECT_DOUBLE_EQ(m.knots().front().x, 1.0);
    EXPECT_DOUBLE_EQ(m.knots().back().x, 4.0);
}

TEST(PiecewiseLinear, DuplicateXValuesAveraged)
{
    const auto m = makeModel({{1.0, 2.0}, {1.0, 4.0}, {2.0, 6.0}});
    EXPECT_EQ(m.knots().size(), 2u);
    EXPECT_DOUBLE_EQ(m.eval(1.0), 3.0);
}

TEST(PiecewiseLinear, InvertRecoversX)
{
    const auto m = makeModel({{0.0, 1.0}, {5.0, 6.0}, {10.0, 21.0}});
    EXPECT_NEAR(m.invert(1.0), 0.0, 1e-9);
    EXPECT_NEAR(m.invert(6.0), 5.0, 1e-9);
    EXPECT_NEAR(m.invert(3.5), 2.5, 1e-9);
    // Beyond the last knot: extrapolated with slope 3.
    EXPECT_NEAR(m.invert(24.0), 11.0, 1e-9);
}

TEST(PiecewiseLinear, InvertBelowRangeClampsToFirstKnot)
{
    // Targets at or below the profiled range clamp to the first knot's
    // x: sub-range extrapolation is meaningless for latency inversion.
    const auto m = makeModel({{2.0, 4.0}, {4.0, 8.0}});
    EXPECT_NEAR(m.invert(2.0), 2.0, 1e-9);
    EXPECT_NEAR(m.invert(4.0), 2.0, 1e-9);
}

TEST(PiecewiseLinear, IsNonDecreasingDetection)
{
    EXPECT_TRUE(makeModel({{0.0, 0.0}, {1.0, 1.0}}).isNonDecreasing());
    EXPECT_TRUE(makeModel({{0.0, 1.0}, {1.0, 1.0}}).isNonDecreasing());
    EXPECT_FALSE(makeModel({{0.0, 2.0}, {1.0, 1.0}}).isNonDecreasing());
}

TEST(PiecewiseLinear, EmptyDefaultConstructed)
{
    PiecewiseLinearModel m;
    EXPECT_TRUE(m.empty());
}

/**
 * Round-trip property: for any non-decreasing model, invert(eval(x))
 * recovers x on strictly increasing segments.
 */
class PlRoundTripTest : public ::testing::TestWithParam<double>
{
  protected:
    PiecewiseLinearModel model_ = makeModel(
        {{1.0, 0.5}, {2.0, 1.5}, {4.0, 2.0}, {8.0, 5.0}, {16.0, 12.0}});
};

TEST_P(PlRoundTripTest, InvertEvalIdentity)
{
    const double x = GetParam();
    EXPECT_NEAR(model_.invert(model_.eval(x)), x, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PlRoundTripTest,
                         ::testing::Values(1.0, 1.5, 3.0, 6.0, 12.0,
                                           20.0));

} // namespace
} // namespace vlr

/**
 * @file
 * Minimal fixed-size thread pool with blocking parallel loops.
 *
 * Used by the vector-search substrate for index training and batched
 * search, and by the retrieval engine's batch executor. Falls back to
 * inline execution when constructed with zero or one worker, which keeps
 * single-core CI environments deterministic.
 *
 * All parallel loops track completion with per-call state, so the pool
 * is safe to share between concurrent *external* callers (e.g. the
 * engine's dispatcher thread running a batch while a bench thread
 * profiles): a caller only waits for its own work, and the calling
 * thread participates in the loop so external loops make progress even
 * when every worker is busy. Nesting a blocking loop *inside* a pool
 * task is not supported — the inner wait parks a worker without
 * draining the queue and can deadlock.
 */

#ifndef VLR_COMMON_THREADPOOL_H
#define VLR_COMMON_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vlr
{

class ThreadPool
{
  public:
    /** @param num_threads 0 or 1 means run tasks inline. */
    explicit ThreadPool(std::size_t num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t numThreads() const { return threads_.size(); }

    /**
     * Run fn(i) for i in [0, n) split into contiguous chunks across the
     * pool; blocks until every index is processed.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Run fn(chunk_begin, chunk_end) over [0, n) in roughly equal chunks,
     * one per worker; blocks until done.
     */
    void parallelChunks(
        std::size_t n,
        const std::function<void(std::size_t, std::size_t)> &fn);

    /**
     * Run fn(i) for i in [0, n) with dynamic scheduling: workers steal
     * `grain`-sized index ranges from a shared cursor, so skewed
     * per-index costs (e.g. queries probing lists of very different
     * sizes) stay balanced. Blocks until every index is processed.
     */
    void parallelForDynamic(std::size_t n, std::size_t grain,
                            const std::function<void(std::size_t)> &fn);

    /**
     * Enqueue a fire-and-forget task. Runs inline when the pool has no
     * workers. The task must not outlive the pool.
     */
    void submitDetached(std::function<void()> task);

  private:
    /** Per-call completion latch for the blocking loops. */
    struct Sync
    {
        std::mutex m;
        std::condition_variable cv;
        std::size_t remaining = 0;

        void
        finishOne()
        {
            std::lock_guard<std::mutex> lk(m);
            if (--remaining == 0)
                cv.notify_all();
        }

        void
        wait()
        {
            std::unique_lock<std::mutex> lk(m);
            cv.wait(lk, [this] { return remaining == 0; });
        }
    };

    void workerLoop();
    void submit(std::function<void()> task);

    std::vector<std::thread> threads_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cvTask_;
    bool stop_ = false;
};

} // namespace vlr

#endif // VLR_COMMON_THREADPOOL_H

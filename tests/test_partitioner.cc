/**
 * @file
 * Tests for the latency-bounded partitioning algorithm (Algorithm 1).
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/context.h"
#include "core/partitioner.h"

namespace vlr::core
{
namespace
{

struct PartitionerFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        ctx_ = std::make_unique<DatasetContext>(wl::tinySpec());
        partitioner_ = std::make_unique<LatencyBoundedPartitioner>(
            ctx_->perfModel(), ctx_->estimator(), ctx_->profile());
    }

    PartitionInputs
    inputs(double slo = 0.1, double mu = 20.0) const
    {
        PartitionInputs in;
        in.sloSearchSeconds = slo;
        in.peakLlmThroughput = mu;
        in.kvBaselineBytes = 60e9;
        return in;
    }

    std::unique_ptr<DatasetContext> ctx_;
    std::unique_ptr<LatencyBoundedPartitioner> partitioner_;
};

TEST_F(PartitionerFixture, ConvergesWithinIterationBudget)
{
    const auto res = partitioner_->partition(inputs());
    EXPECT_TRUE(res.converged);
    EXPECT_LE(res.iterations, inputs().maxIterations);
    EXPECT_GE(res.rho, 0.0);
    EXPECT_LE(res.rho, 1.0);
    EXPECT_FALSE(res.trace.empty());
}

TEST_F(PartitionerFixture, TauSIsSloOverOnePlusEpsilon)
{
    auto in = inputs(0.2);
    in.epsilon = 1.0;
    const auto res = partitioner_->partition(in);
    EXPECT_NEAR(res.tauS, 0.1, 1e-12);
    in.epsilon = 0.5;
    const auto res2 = partitioner_->partition(in);
    EXPECT_NEAR(res2.tauS, 0.2 / 1.5, 1e-12);
}

TEST_F(PartitionerFixture, SelectedRhoMeetsLatencyUnderModel)
{
    const auto res = partitioner_->partition(inputs());
    const double b = std::max(1.0, std::ceil(res.expectedBatch));
    const double eta =
        ctx_->estimator().etaMin(res.rho,
                                 static_cast<std::size_t>(b));
    const double latency = ctx_->perfModel().hybridLatency(b, eta);
    EXPECT_LE(latency, res.tauS * 1.10); // 10% modeling slack
}

TEST_F(PartitionerFixture, TighterSloNeedsMoreCoverage)
{
    // Paper Table II: stricter SLO -> larger GPU index share.
    const auto strict = partitioner_->partition(inputs(0.06));
    const auto loose = partitioner_->partition(inputs(0.16));
    EXPECT_GE(strict.rho, loose.rho - 0.01);
    EXPECT_GE(strict.indexBytes, loose.indexBytes - 1e6);
}

TEST_F(PartitionerFixture, VeryLooseSloNeedsLittleOrNoGpu)
{
    // An SLO far above the CPU-only latency requires no cache at all.
    const double cpu_latency = ctx_->perfModel().tSearch(32.0);
    const auto res = partitioner_->partition(inputs(4.0 * cpu_latency));
    EXPECT_LT(res.rho, 0.05);
}

TEST_F(PartitionerFixture, ThroughputReducedByIndexFootprint)
{
    const auto res = partitioner_->partition(inputs());
    EXPECT_LE(res.throughputBound, inputs().peakLlmThroughput + 1e-9);
    if (res.indexBytes > 0.0)
        EXPECT_LT(res.throughputBound, inputs().peakLlmThroughput);
}

TEST_F(PartitionerFixture, HigherLoadGrowsBatchEstimate)
{
    const auto lo = partitioner_->partition(inputs(0.1, 10.0));
    const auto hi = partitioner_->partition(inputs(0.1, 40.0));
    EXPECT_GT(hi.expectedBatch, lo.expectedBatch);
}

TEST_F(PartitionerFixture, InferPartitionBoundsCoverage)
{
    const double rho = partitioner_->inferPartition(0.08, 20.0);
    EXPECT_GE(rho, 0.0);
    EXPECT_LE(rho, 1.0);
}

TEST_F(PartitionerFixture, InferPartitionTighterTauNeedsMore)
{
    const double tight = partitioner_->inferPartition(0.05, 20.0);
    const double loose = partitioner_->inferPartition(0.15, 20.0);
    EXPECT_GE(tight, loose - 0.01);
}

TEST_F(PartitionerFixture, EtaMinConsistentWithEstimator)
{
    const auto res = partitioner_->partition(inputs());
    if (res.expectedBatch >= 1.0) {
        const auto b = static_cast<std::size_t>(
            std::ceil(res.expectedBatch));
        EXPECT_NEAR(res.expectedEtaMin,
                    ctx_->estimator().etaMin(res.rho, b), 0.05);
    }
}

TEST_F(PartitionerFixture, IndexBytesMatchProfile)
{
    const auto res = partitioner_->partition(inputs());
    EXPECT_NEAR(res.indexBytes, ctx_->profile().indexBytes(res.rho),
                1e-6 * (1.0 + res.indexBytes));
}

/** SLO sweep reproducing Table II's qualitative shape. */
class PartitionerSloSweep : public ::testing::TestWithParam<double>
{
  protected:
    static void
    SetUpTestSuite()
    {
        ctx_ = new DatasetContext(wl::tinySpec());
        partitioner_ = new LatencyBoundedPartitioner(
            ctx_->perfModel(), ctx_->estimator(), ctx_->profile());
    }

    static void
    TearDownTestSuite()
    {
        delete partitioner_;
        partitioner_ = nullptr;
        delete ctx_;
        ctx_ = nullptr;
    }

    static DatasetContext *ctx_;
    static LatencyBoundedPartitioner *partitioner_;
};

DatasetContext *PartitionerSloSweep::ctx_ = nullptr;
LatencyBoundedPartitioner *PartitionerSloSweep::partitioner_ = nullptr;

TEST_P(PartitionerSloSweep, ConvergesAcrossSloRange)
{
    PartitionInputs in;
    in.sloSearchSeconds = GetParam();
    in.peakLlmThroughput = 25.0;
    in.kvBaselineBytes = 60e9;
    const auto res = partitioner_->partition(in);
    EXPECT_TRUE(res.converged) << "slo " << GetParam();
    EXPECT_GE(res.rho, 0.0);
    EXPECT_LE(res.rho, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionerSloSweep,
                         ::testing::Values(0.05, 0.08, 0.10, 0.15, 0.20,
                                           0.25));

} // namespace
} // namespace vlr::core

/**
 * @file
 * Serve a Poisson query stream through the *real* concurrent retrieval
 * engine using the request-centric API: an EngineBuilder composes the
 * engine, every query is a typed SearchRequest carrying its own
 * deadline and priority, and every outcome is a SearchResponse whose
 * Disposition says how the request left the engine (served, expired in
 * queue, or rejected by the bounded admission queue). The stream is
 * split across two tenants (interactive vs bulk), each registered as
 * a typed TenantClass — admission share, weighted-fair-batching
 * weight, SLO targets and degradation eligibility in one contract —
 * so the demo also prints the engine's per-tenant disposition, served
 * scanned-work and latency accounting — the executable counterpart of
 * the simulator-driven quickstart.
 *
 * Run: ./engine_serving [--smoke]
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "core/vectorliterag.h"

int
main(int argc, char **argv)
{
    using namespace vlr;

    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

    std::cout << "VectorLiteRAG engine serving demo"
              << (smoke ? " (smoke mode)" : "") << "\n"
              << "=================================\n\n";

    // 1. Corpus + index: a real (reduced-scale) clustered dataset.
    wl::DatasetSpec spec = wl::tinySpec();
    spec.numVectors = smoke ? 8000 : 20000;
    spec.dim = 32;
    spec.numClusters = smoke ? 64 : 128;
    spec.nprobe = 16;
    wl::SyntheticDataset dataset(spec);
    dataset.buildVectors();
    const auto cq = dataset.makeCoarseQuantizer();
    vs::IvfPqFastScanIndex index(cq, spec.dim / 4);
    index.train(dataset.vectors(), spec.numVectors);
    index.addPreassigned(dataset.vectors(), spec.numVectors,
                         dataset.assignments());
    std::cout << "index: " << index.size() << " vectors, "
              << index.nlist() << " lists, "
              << (vs::fastScanHasSimd() ? "AVX2" : "scalar")
              << " fast-scan\n";

    // 2. One fluent chain builds the engine: dispatcher policy,
    //    per-engine defaults, a bounded admission queue and one typed
    //    TenantClass per tenant — admission share, WFQ weight and
    //    degradation eligibility in a single contract; requests carry
    //    the typed id in SearchRequest::tenant. Fair service makes
    //    batch slots follow the weights (interactive gets 3x bulk's
    //    scanned-work share while both are backlogged). build()
    //    validates everything before the dispatcher thread starts.
    constexpr core::TenantId kInteractive{1}, kBulk{2};
    core::TenantPolicy tenants;
    tenants.enable = true;
    tenants.fairService = true;
    const auto engine =
        core::EngineBuilder(index)
            .defaultK(10)
            .defaultNprobe(spec.nprobe)
            .searchThreads(4)
            .batching({.maxBatch = 32, .timeoutSeconds = 2e-3})
            .admissionQueueBound(256)
            .tenantIsolation(tenants)
            .tenantClass({.id = kInteractive,
                          .name = "interactive",
                          .share = 0.6,
                          .weight = 3.0,
                          .degradable = false})
            .tenantClass({.id = kBulk,
                          .name = "bulk",
                          .share = 0.6,
                          .weight = 1.0})
            .build();

    // 3. Open-loop Poisson arrivals, replayed in real time. Every
    //    request carries its own deadline; a slice of the stream runs
    //    at a higher priority with a tighter deadline, standing in for
    //    latency-critical interactive traffic over bulk traffic.
    const double rate = smoke ? 1500.0 : 2000.0; // queries per second
    const double horizon = smoke ? 0.3 : 1.5;    // seconds
    const auto arrivals = wl::poissonArrivals(rate, horizon, 17);
    wl::QueryGenerator gen(dataset, 29);
    const auto queries = gen.generate(arrivals.size());

    std::cout << "replaying " << arrivals.size()
              << " Poisson arrivals at " << rate
              << " q/s (every 8th request: interactive tenant, "
                 "priority 1, 5 ms deadline;\nrest: bulk tenant, "
                 "50 ms)...\n\n";
    std::vector<std::future<core::SearchResponse>> futures;
    futures.reserve(arrivals.size());
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(arrivals[i]));
        std::this_thread::sleep_until(due);
        core::SearchRequest request;
        request.query = std::span<const float>(
            queries.data() + i * spec.dim, spec.dim);
        if (i % 8 == 0) {
            request.tenant = kInteractive;
            request.priority = 1;
            request.deadlineSeconds = 5e-3;
        } else {
            request.tenant = kBulk;
            request.deadlineSeconds = 50e-3;
        }
        futures.push_back(engine->submit(request));
    }
    engine->shutdown();

    // 4. Report: every request resolved with exactly one disposition.
    std::size_t served = 0, expired = 0, rejected = 0;
    for (auto &f : futures) {
        switch (f.get().disposition) {
        case core::Disposition::kServed:
            ++served;
            break;
        case core::Disposition::kExpiredInQueue:
            ++expired;
            break;
        case core::Disposition::kRejected:
            ++rejected;
            break;
        }
    }
    const auto stats = engine->stats();
    TextTable t({"metric", "mean (ms)", "p50 (ms)", "p90 (ms)",
                 "p99 (ms)"});
    const auto row = [&](const char *name, const LatencySummary &s) {
        t.addRow({name, TextTable::num(s.mean * 1e3, 3),
                  TextTable::num(s.p50 * 1e3, 3),
                  TextTable::num(s.p90 * 1e3, 3),
                  TextTable::num(s.p99 * 1e3, 3)});
    };
    row("queue wait (served)", stats.queueLatency);
    row("batch search", stats.searchLatency);
    row("total (served)", stats.totalLatency);
    row("queue wait (expired)", stats.expiredLatency);
    t.print(std::cout);

    std::cout << "\ndispositions: " << served << " served, " << expired
              << " expired in queue, " << rejected << " rejected of "
              << stats.submitted << " submitted ("
              << stats.batches << " batches, mean batch "
              << TextTable::num(stats.meanBatchSize, 1) << ")\n\n";

    // 5. Per-tenant accounting: the engine keeps exact disposition
    //    counts, served scanned-work and latency digests per tenant
    //    id; they sum to the global totals above, and the work split
    //    tracks the WFQ weights while both tenants stay backlogged.
    TextTable tt({"tenant", "weight", "submitted", "served", "expired",
                  "rejected", "work", "miss", "p99 total (ms)"});
    for (const auto &ts : stats.tenants)
        tt.addRow({ts.tenant == kInteractive ? "interactive" : "bulk",
                   TextTable::num(ts.weight, 1),
                   std::to_string(ts.submitted),
                   std::to_string(ts.served),
                   std::to_string(ts.expired),
                   std::to_string(ts.rejected),
                   std::to_string(ts.servedWork),
                   TextTable::pct(ts.missRate()),
                   TextTable::num(ts.totalLatency.p99 * 1e3, 3)});
    tt.print(std::cout);
    return served + expired + rejected == stats.submitted ? 0 : 1;
}

/**
 * @file
 * Tests for the Beta distribution and the order-statistic machinery
 * behind the paper's tail hit-rate estimator (Eq. 2).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/beta_dist.h"

namespace vlr
{
namespace
{

TEST(BetaDist, MeanVarianceClosedForm)
{
    const BetaDistribution d(2.0, 5.0);
    EXPECT_NEAR(d.mean(), 2.0 / 7.0, 1e-12);
    const double var = (2.0 * 5.0) / (7.0 * 7.0 * 8.0);
    EXPECT_NEAR(d.variance(), var, 1e-12);
}

TEST(BetaDist, PdfIntegratesToOne)
{
    const BetaDistribution d(3.0, 1.5);
    const int n = 4000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = (i + 0.5) / n;
        sum += d.pdf(x) / n;
    }
    EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(BetaDist, CdfMonotoneAndBounded)
{
    const BetaDistribution d(0.8, 2.2);
    double prev = 0.0;
    for (double x = 0.0; x <= 1.0; x += 0.01) {
        const double c = d.cdf(x);
        EXPECT_GE(c, prev - 1e-12);
        EXPECT_GE(c, 0.0);
        EXPECT_LE(c, 1.0);
        prev = c;
    }
    EXPECT_NEAR(d.cdf(0.0), 0.0, 1e-9);
    EXPECT_NEAR(d.cdf(1.0), 1.0, 1e-9);
}

TEST(BetaDist, SymmetricCaseCdfAtHalf)
{
    const BetaDistribution d(4.0, 4.0);
    EXPECT_NEAR(d.cdf(0.5), 0.5, 1e-9);
}

TEST(BetaDist, UniformSpecialCase)
{
    // Beta(1,1) is Uniform(0,1).
    const BetaDistribution d(1.0, 1.0);
    EXPECT_NEAR(d.pdf(0.3), 1.0, 1e-9);
    EXPECT_NEAR(d.cdf(0.3), 0.3, 1e-9);
    EXPECT_NEAR(d.mean(), 0.5, 1e-12);
}

TEST(BetaDist, QuantileInvertsCdf)
{
    const BetaDistribution d(2.5, 1.7);
    for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
        const double x = d.quantile(p);
        EXPECT_NEAR(d.cdf(x), p, 1e-6);
    }
}

TEST(BetaDist, FromMomentsRecoversParameters)
{
    const double mean = 0.35, var = 0.02;
    const auto d = BetaDistribution::fromMoments(mean, var);
    EXPECT_NEAR(d.mean(), mean, 1e-9);
    EXPECT_NEAR(d.variance(), var, 1e-9);
}

TEST(BetaDist, FromMomentsClampsInfeasibleVariance)
{
    // Feasible variance is < mean*(1-mean) = 0.25.
    const auto d = BetaDistribution::fromMoments(0.5, 10.0);
    EXPECT_GT(d.alpha(), 0.0);
    EXPECT_GT(d.beta(), 0.0);
    EXPECT_LT(d.variance(), 0.25);
}

TEST(BetaDist, FromMomentsHandlesDegenerateMean)
{
    const auto lo = BetaDistribution::fromMoments(0.0, 0.01);
    const auto hi = BetaDistribution::fromMoments(1.0, 0.01);
    EXPECT_GT(lo.mean(), 0.0);
    EXPECT_LT(hi.mean(), 1.0);
}

// --- Expected minimum (first-order statistic, paper Eq. 2) -----------

TEST(BetaDist, ExpectedMinOfOneIsMean)
{
    const BetaDistribution d(2.0, 3.0);
    EXPECT_NEAR(d.expectedMin(1), d.mean(), 1e-9);
}

TEST(BetaDist, ExpectedMinDecreasesWithBatchSize)
{
    const BetaDistribution d(5.0, 2.0);
    double prev = d.expectedMin(1);
    for (std::size_t b : {2u, 4u, 8u, 16u, 32u}) {
        const double cur = d.expectedMin(b);
        EXPECT_LT(cur, prev);
        prev = cur;
    }
}

TEST(BetaDist, ExpectedMinStaysInUnitInterval)
{
    const BetaDistribution d(1.2, 0.9);
    for (std::size_t b : {1u, 3u, 10u, 100u}) {
        const double m = d.expectedMin(b);
        EXPECT_GE(m, 0.0);
        EXPECT_LE(m, 1.0);
    }
}

TEST(BetaDist, ExpectedMinUniformClosedForm)
{
    // For Uniform(0,1), E[min of B] = 1 / (B + 1).
    const BetaDistribution d(1.0, 1.0);
    for (std::size_t b : {1u, 2u, 5u, 9u})
        EXPECT_NEAR(d.expectedMin(b), 1.0 / (b + 1.0), 2e-3);
}

TEST(BetaDist, ExpectedMinTightDistributionStaysNearMean)
{
    // Nearly a point mass at 0.7: the min of a batch barely drops.
    const auto d = BetaDistribution::fromMoments(0.7, 1e-5);
    EXPECT_NEAR(d.expectedMin(16), 0.7, 0.02);
}

// --- Regularized incomplete beta -------------------------------------

TEST(IncompleteBeta, KnownValues)
{
    // I_x(1, 1) = x.
    EXPECT_NEAR(regularizedIncompleteBeta(1.0, 1.0, 0.42), 0.42, 1e-9);
    // I_x(2, 1) = x^2.
    EXPECT_NEAR(regularizedIncompleteBeta(2.0, 1.0, 0.3), 0.09, 1e-9);
    // I_x(1, 2) = 1 - (1-x)^2.
    EXPECT_NEAR(regularizedIncompleteBeta(1.0, 2.0, 0.3), 0.51, 1e-9);
}

TEST(IncompleteBeta, SymmetryIdentity)
{
    // I_x(a, b) = 1 - I_{1-x}(b, a).
    const double v1 = regularizedIncompleteBeta(2.3, 4.1, 0.37);
    const double v2 = regularizedIncompleteBeta(4.1, 2.3, 0.63);
    EXPECT_NEAR(v1, 1.0 - v2, 1e-9);
}

/** Moment fitting round-trips across a grid of means and variances. */
class BetaMomentsTest
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(BetaMomentsTest, RoundTrip)
{
    const auto [mean, varfrac] = GetParam();
    const double var = varfrac * mean * (1.0 - mean);
    const auto d = BetaDistribution::fromMoments(mean, var);
    EXPECT_NEAR(d.mean(), mean, 1e-8);
    EXPECT_NEAR(d.variance(), var, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BetaMomentsTest,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9),
                       ::testing::Values(0.05, 0.2, 0.5)));

} // namespace
} // namespace vlr

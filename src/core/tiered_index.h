/**
 * @file
 * Tiered hot/cold index runtime — the live-engine counterpart of the
 * analytic partitioning pipeline (paper Sections IV-A/IV-B).
 *
 * A TieredIndex splits a trained IvfPqFastScanIndex by cluster: the hot
 * tier is N shards, each behind a pluggable HotShardBackend (the
 * default is an in-memory fast-scan subset replica standing in for a
 * GPU-resident shard), while cold probes scan the source index in place
 * — the CPU keeps the full index, exactly as the paper's host-side
 * master copy does. Alternatively TieredOptions::coldBackend swaps the
 * in-place cold scan for a pluggable backend (storage::MmapColdTier
 * serves cold probes straight from a memory-mapped artifact), keeping
 * the same bit-identical parity contract. Hot clusters are placed
 * across shards by the same
 * size-balanced round-robin dealing IndexSplitter::split uses, and each
 * query's probe list is routed through the pruned Router over the
 * multi-shard ShardAssignment, so hot-covered queries skip the cold
 * tier entirely and the router's work-weighted hit rates come from the
 * same code path the simulator uses.
 *
 * The read path is lock-free and contention-free: searches pin the
 * current tier snapshot with a single acquire load inside an
 * EpochGuard (epoch.h) instead of a mutex-guarded shared_ptr copy, and
 * every per-probe statistic (per-cluster access counts, per-shard
 * probe/scan counters, scan wall-time accumulators, per-query routing
 * tallies) lands in a per-thread stat shard — an uncontended cache
 * line owned by the recording thread. drainAccessCounts()/stats()
 * merge the shards on demand, preserving the exact totals the
 * OnlineUpdater and SloAutopilot drained before the sharding.
 * repartition() rebuilds every shard off the read path, publishes the
 * new generation with one atomic pointer swap, and retires the old one
 * to the epoch domain, which frees it only after every reader has
 * moved past it.
 */

#ifndef VLR_CORE_TIERED_INDEX_H
#define VLR_CORE_TIERED_INDEX_H

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "core/access_profile.h"
#include "core/epoch.h"
#include "core/router.h"
#include "core/shard_backend.h"
#include "core/splitter.h"
#include "vecsearch/ivf_pq_fastscan.h"

namespace vlr::core
{

/** Hot-tier shape: shard count and per-shard backend construction. */
struct TieredOptions
{
    /** Hot shards the hot set is dealt across (>= 1). */
    std::size_t numShards = 1;
    /**
     * Builds each shard's backend; null means the default in-memory
     * fast-scan replica (fastScanShardFactory()).
     */
    ShardBackendFactory backendFactory;
    /**
     * Most shards any repartition may rebuild to (per-shard stat
     * arrays are sized to this at construction). 0 means numShards,
     * i.e. the shard count stays fixed — the pre-autopilot behaviour.
     */
    std::size_t maxShards = 0;
    /**
     * Optional cold-tier backend. Null (the default) keeps the classic
     * behaviour: cold probes scan the source index in place. Non-null
     * routes every cold probe to this backend instead — e.g. a
     * storage::MmapColdTier serving list segments from a mapped
     * artifact, which frees the cold tier from the process heap.
     * Caller-owned; must outlive the TieredIndex. Parity contract:
     * the backend must serve exactly the source index's cluster
     * contents with bit-identical distances (HotShardBackend
     * semantics), or tiered results diverge from the serial scan.
     */
    const HotShardBackend *coldBackend = nullptr;
};

/** Routing outcome of one live query through the tiers. */
struct TieredQueryStats
{
    /** Probes resident on the hot tier (any shard). */
    std::size_t hotProbes = 0;
    /** Probes served by the cold (source) tier. */
    std::size_t coldProbes = 0;
    /** Hot shards holding at least one of this query's probes. */
    std::size_t shardsUsed = 0;
    /** Work-weighted hot hit rate (router semantics). */
    double hitRate = 0.0;
    /** True when the cold tier was skipped entirely. */
    bool hotOnly = false;
};

/** Aggregate routing outcome of one batch. */
struct TieredBatchStats
{
    std::size_t queries = 0;
    std::size_t hotOnlyQueries = 0;
    std::size_t coldOnlyQueries = 0;
    std::size_t splitQueries = 0;
    double meanHitRate = 0.0;
    double minHitRate = 1.0;
    /** Wall seconds of the coarse-quantize + route phase — the live
     *  T_CQ(b) sample the autopilot fits (Eq. 1). */
    double routeSeconds = 0.0;
    /** Wall seconds of the parallel scan + merge phase — normalized
     *  by the batch miss fraction it samples T_LUT(b). */
    double scanSeconds = 0.0;
};

/** Cumulative tier statistics since construction. */
struct TieredStatsSnapshot
{
    std::size_t queries = 0;
    std::size_t hotOnlyQueries = 0;
    std::size_t coldOnlyQueries = 0;
    std::size_t splitQueries = 0;
    /** Mean work-weighted hit rate over all served queries. */
    double meanHitRate = 0.0;
    /** Fraction of all probes that landed on the hot tier. */
    double hotProbeFraction = 0.0;
    /** Total probes routed since construction (hot + cold). */
    std::size_t totalProbes = 0;
    /** Probes routed to any hot shard since construction. */
    std::size_t hotProbes = 0;
    /** Completed repartitions (snapshot swaps). */
    std::size_t repartitions = 0;
    /** Current coverage: hot clusters / nlist. */
    double rho = 0.0;
    std::size_t numHot = 0;
    /** Resident bytes of the current hot tier across all shards. */
    std::size_t hotBytes = 0;
    /** Hot shards in the current snapshot. */
    std::size_t numShards = 0;
    /** Backend name of the current snapshot's shards. */
    std::string backend;
    /** Resident bytes per shard (current snapshot). */
    std::vector<std::size_t> shardBytes;
    /** Cumulative probes routed to each shard since construction. */
    std::vector<std::size_t> shardProbeCounts;
    /**
     * Cumulative wall seconds spent inside each shard backend's
     * searchClusters since construction (one entry per shard). With
     * shardScanCounts this yields per-shard mean scan latency — the
     * signal a per-shard executor would balance on.
     */
    std::vector<double> shardScanSeconds;
    /** Cumulative searchClusters calls per shard since construction. */
    std::vector<std::size_t> shardScanCounts;
    /** Cumulative wall seconds of cold (source-tier) scans. */
    double coldScanSeconds = 0.0;
    /** Cumulative cold scan calls since construction. */
    std::size_t coldScanCounts = 0;
    /** Cold backend name; empty when cold probes scan the source. */
    std::string coldBackend;
    /** Bytes served by the cold backend (0 without one). */
    std::size_t coldBytes = 0;
    /** RAM-resident bytes of the cold backend right now (advisory;
     *  mincore()-based for memory-mapped backends). */
    std::size_t coldResidentBytes = 0;
    /** Cold-backend clusters fully RAM-resident right now. */
    std::size_t coldResidentClusters = 0;
    /** Retired placement generations not yet reclaimed (epoch limbo;
     *  0 once every reader has moved past old snapshots). */
    std::size_t pendingReclaims = 0;
};

/**
 * Partition-aware retrieval path over a trained IvfPqFastScanIndex.
 *
 * Search results are exactly the single-tier results for any hot set
 * and any shard count: all tiers share the source's coarse quantizer
 * and PQ, backend distances are bit-identical by contract
 * (HotShardBackend), and top-k selection is a total order on
 * (dist, id), so merging per-shard partial top-k lists with the cold
 * scan reproduces the serial scan.
 *
 * Thread-safety: search methods are const and may run from any number
 * of threads; repartition() may run concurrently with searches. A
 * search pins the placement generation it started with via an epoch
 * guard (no mutex, no shared_ptr refcount bounce) and a concurrent
 * repartition retires the displaced generation to the epoch domain,
 * which frees it only after every pinned reader has exited. The
 * source index must outlive the TieredIndex and must not be mutated
 * while tiered searches run.
 */
class TieredIndex
{
  public:
    /**
     * @param source trained and populated single-tier index.
     * @param hot_clusters clusters replicated on the hot tier (any
     *        subset of [0, nlist), e.g. AccessProfile::hotClusters);
     *        dealt across opts.numShards by descending size.
     * @param opts hot-tier shape (shard count + backend factory).
     */
    TieredIndex(const vs::IvfPqFastScanIndex &source,
                std::vector<cluster_id_t> hot_clusters,
                TieredOptions opts = {});

    /**
     * Hot set = profile's top-rho clusters, placed across
     * opts.numShards with IndexSplitter::split's size-balanced
     * round-robin dealing.
     */
    TieredIndex(const vs::IvfPqFastScanIndex &source,
                const AccessProfile &profile, double rho,
                TieredOptions opts = {});

    /** No search or repartition may be in flight at destruction. */
    ~TieredIndex();

    TieredIndex(const TieredIndex &) = delete;
    TieredIndex &operator=(const TieredIndex &) = delete;

    /**
     * Serial tiered search: probe the shared coarse quantizer, route
     * probes through the pruned router, scan each hot shard holding a
     * probe and (only if needed) the cold source, merge. Records
     * per-cluster access counts.
     */
    std::vector<vs::SearchHit> search(const float *query, std::size_t k,
                                      std::size_t nprobe,
                                      vs::SearchScratch *scratch = nullptr,
                                      TieredQueryStats *qs = nullptr) const;

    /**
     * Batched tiered search across a thread pool; one snapshot serves
     * the whole batch. Every (query, shard) and (query, cold) scan is
     * an independent pool task, so different queries' shard scans run
     * concurrently — a slow shard backend stalls only its own scans,
     * not the whole batch. Results are bit-identical to per-query
     * search().
     */
    std::vector<std::vector<vs::SearchHit>> searchBatchParallel(
        std::span<const float> queries, std::size_t nq, std::size_t k,
        std::size_t nprobe, ThreadPool &pool,
        TieredBatchStats *bs = nullptr) const;

    /**
     * Per-query-nprobe batched search: query i probes nprobes[i]
     * lists (nq entries). This is the deadline-aware dispatcher's
     * entry point — one batch may mix requests with different nprobe
     * — and each query's results are bit-identical to a serial
     * search(query, k, nprobes[i]).
     */
    std::vector<std::vector<vs::SearchHit>> searchBatchParallel(
        std::span<const float> queries, std::size_t nq, std::size_t k,
        std::span<const std::size_t> nprobes, ThreadPool &pool,
        TieredBatchStats *bs = nullptr) const;

    /**
     * Rebuild the hot tier around a new hot set and atomically swap it
     * in. The (expensive) rebuild of every shard backend runs before
     * the swap, outside any lock; searches started on the old snapshot
     * finish on it (the displaced generation is epoch-retired and
     * freed once the last pinned reader exits). The backend factory is
     * preserved; @p num_shards picks the rebuilt shard count (clamped
     * to [1, maxShards()]), with 0 keeping the current count — the
     * autopilot's shard-count actuation rides this parameter.
     */
    void repartition(std::vector<cluster_id_t> hot_clusters,
                     std::size_t num_shards = 0);

    /**
     * Return and reset the live per-cluster access counts (probes per
     * cluster since the last drain) — the profiling input of an online
     * repartition cycle.
     *
     * Consistency contract: each recording thread bumps its own stat
     * shard once per routed probe, before the probe's scan runs; a
     * drain exchanges every shard's counters to zero. A drain that
     * overlaps in-flight batches may therefore split one batch's
     * probes across two drains, and is not an instantaneous snapshot
     * across clusters — but no probe is ever lost or double-counted:
     * over any quiescent point (all searches completed), the sum of
     * every drained count since construction equals stats()'
     * totalProbes. Concurrent drains are safe (each probe appears in
     * exactly one drain).
     */
    std::vector<double> drainAccessCounts();

    /**
     * Build an AccessProfile from live access counts and the source
     * index's real per-cluster sizes/bytes, ready for hotClusters()
     * selection or the latency-bounded partitioner.
     */
    AccessProfile profileFromCounts(std::vector<double> counts) const;

    /**
     * Cumulative statistics, merged across the per-thread stat shards.
     * Counters share drainAccessCounts()' consistency contract: each
     * is bumped once per query/probe with relaxed ordering in the
     * recording thread's shard, so a snapshot taken mid-batch may
     * observe a partially recorded batch (e.g. queries ahead of
     * hotProbes), but every counter is exact at any quiescent point.
     */
    TieredStatsSnapshot stats() const;

    /** Current hot-tier membership bitmap (copy; nlist entries). */
    std::vector<bool> hotBitmap() const;

    double rho() const;
    std::size_t numHotClusters() const;
    /** Hot shards in the current snapshot (repartition may change it
     *  up to maxShards()). */
    std::size_t numShards() const;
    /** Upper bound on the shard count any repartition may pick. */
    std::size_t maxShards() const { return opts_.maxShards; }
    std::size_t dim() const { return source_.dim(); }
    std::size_t nlist() const { return source_.nlist(); }
    const vs::IvfPqFastScanIndex &source() const { return source_; }

  private:
    /** One immutable hot/cold placement generation. */
    struct Tiers
    {
        ShardAssignment assignment;
        Router router;
        /** Per-shard backends (assignment.numShards() entries). */
        std::vector<std::unique_ptr<HotShardBackend>> shards;
        std::size_t numHot = 0;
        double rho = 0.0;
        /** Total resident bytes across shards. */
        std::size_t hotBytes = 0;

        Tiers(const vs::IvfPqFastScanIndex &source, ShardAssignment a,
              const TieredOptions &opts);
    };

    /**
     * One thread's statistics shard: every counter the read path
     * touches, on cache lines owned by the recording thread. Members
     * are atomics only so drains (exchange) and stats merges (load)
     * from other threads are race-free; the recording thread is the
     * sole writer outside drains, so its relaxed RMWs never contend.
     * The wall-second accumulators are owner-only plain read-modify-
     * write stores — no CAS loop anywhere on the hot path.
     */
    struct alignas(64) StatShard
    {
        StatShard(std::size_t nlist, std::size_t max_shards);

        /** Per-cluster probe counts (nlist entries; drained). */
        std::unique_ptr<std::atomic<std::uint64_t>[]> accessCounts;
        /** Cumulative probes routed to each shard (maxShards). */
        std::unique_ptr<std::atomic<std::uint64_t>[]> shardProbes;
        /** Cumulative wall seconds inside each shard's scans. */
        std::unique_ptr<std::atomic<double>[]> shardScanSeconds;
        /** Cumulative searchClusters calls per shard. */
        std::unique_ptr<std::atomic<std::uint64_t>[]> shardScanCounts;
        std::atomic<double> coldScanSeconds{0.0};
        std::atomic<std::uint64_t> coldScanCounts{0};
        std::atomic<std::uint64_t> queries{0};
        std::atomic<std::uint64_t> hotOnly{0};
        std::atomic<std::uint64_t> coldOnly{0};
        std::atomic<std::uint64_t> split{0};
        std::atomic<std::uint64_t> hotProbes{0};
        std::atomic<std::uint64_t> totalProbes{0};
        /** Owner-only accumulate; merged into meanHitRate. */
        std::atomic<double> hitRateSum{0.0};

        /** Owner-thread add to a double accumulator (single writer,
         *  so load+store replaces the old CAS loop). */
        static void
        ownerAdd(std::atomic<double> &a, double x)
        {
            a.store(a.load(std::memory_order_relaxed) + x,
                    std::memory_order_relaxed);
        }
    };

    /** One query's probe list bucketed by destination. */
    struct ProbeBuckets
    {
        /** Per-shard probe lists (numShards entries, many empty). */
        std::vector<std::vector<cluster_id_t>> shardProbes;
        /** Cold (source-tier) probe list. */
        std::vector<cluster_id_t> coldProbes;
        std::size_t hotCount = 0;
    };

    /** Current generation; caller must hold an EpochGuard. */
    const Tiers *
    currentTiers() const
    {
        return tiers_.load(std::memory_order_acquire);
    }

    /** This thread's stat shard (registered on first use). */
    StatShard &
    localStats() const
    {
        return statShards_.local();
    }

    /**
     * Bucket one probe list by destination shard, record access
     * counters and per-query routing stats in the calling thread's
     * stat shard.
     */
    ProbeBuckets routeProbes(const Tiers &tiers,
                             std::span<const cluster_id_t> clusters,
                             TieredQueryStats *qs) const;

    /** Scan every non-empty bucket serially and merge. */
    std::vector<vs::SearchHit> scanBuckets(const Tiers &tiers,
                                           const float *query,
                                           std::size_t k,
                                           const ProbeBuckets &buckets,
                                           vs::SearchScratch *scratch) const;

    const vs::IvfPqFastScanIndex &source_;
    TieredOptions opts_;

    /**
     * Current placement generation. Readers pin it with a single
     * acquire load inside an EpochGuard; repartition() publishes a
     * replacement with exchange(acq_rel) and retires the old pointer
     * to epochs_.
     */
    std::atomic<const Tiers *> tiers_;
    /** Reclamation domain for displaced placement generations. */
    mutable EpochManager epochs_;

    /** Time one bucket scan and record it under shard/cold stats. */
    std::vector<vs::SearchHit> timedScan(const Tiers &tiers,
                                         const float *query,
                                         std::size_t k, shard_id_t shard,
                                         std::span<const cluster_id_t>
                                             clusters,
                                         vs::SearchScratch *scratch) const;

    /** Per-thread statistics shards (merged by drain/stats). */
    mutable PerThread<StatShard> statShards_;
    std::atomic<std::uint64_t> repartitions_{0};
};

} // namespace vlr::core

#endif // VLR_CORE_TIERED_INDEX_H

/**
 * @file
 * Tests for the thread pool used by index training and batched search.
 */

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/threadpool.h"

namespace vlr
{
namespace
{

TEST(ThreadPool, ZeroThreadsRunsInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numThreads(), 0u);
    std::vector<int> hits(10, 0);
    pool.parallelFor(10, [&](std::size_t i) { hits[i]++; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EachIndexVisitedExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyRangeIsNoOp)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, SumReductionViaAtomics)
{
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    pool.parallelFor(1000, [&](std::size_t i) {
        sum += static_cast<long>(i);
    });
    EXPECT_EQ(sum.load(), 1000L * 999L / 2L);
}

TEST(ThreadPool, ChunksPartitionRange)
{
    ThreadPool pool(4);
    const std::size_t n = 1003;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelChunks(n, [&](std::size_t lo, std::size_t hi) {
        EXPECT_LE(lo, hi);
        for (std::size_t i = lo; i < hi; ++i)
            hits[i]++;
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ChunksWithFewerItemsThanThreads)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelChunks(3, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            hits[i]++;
    });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 20; ++round)
        pool.parallelFor(50, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 20 * 50);
}

TEST(ThreadPool, SingleThreadPoolIsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 0u);
    std::atomic<int> count{0};
    pool.parallelFor(5, [&](std::size_t) { count++; });
    EXPECT_EQ(count.load(), 5);
}

} // namespace
} // namespace vlr

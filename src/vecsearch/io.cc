#include "vecsearch/io.h"

#include <cstdint>
#include <istream>
#include <ostream>

#include "common/log.h"

namespace vlr::vs
{

namespace
{

constexpr std::uint32_t kPqMagic = 0x56505131;   // "VPQ1"
constexpr std::uint32_t kFlatMagic = 0x56464931; // "VFI1"
constexpr std::uint32_t kCqMagic = 0x56435131;   // "VCQ1"

void
writeU64(std::ostream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeFloats(std::ostream &os, const float *data, std::size_t n)
{
    os.write(reinterpret_cast<const char *>(data),
             static_cast<std::streamsize>(n * sizeof(float)));
}

std::uint64_t
readU64(std::istream &is)
{
    std::uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        fatal("vecsearch io: truncated stream");
    return v;
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        fatal("vecsearch io: truncated stream");
    return v;
}

std::vector<float>
readFloats(std::istream &is, std::size_t n)
{
    std::vector<float> v(n);
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!is)
        fatal("vecsearch io: truncated float payload");
    return v;
}

void
expectMagic(std::istream &is, std::uint32_t magic, const char *what)
{
    if (readU32(is) != magic)
        fatal(std::string("vecsearch io: bad magic for ") + what);
}

} // namespace

void
savePq(std::ostream &os, const ProductQuantizer &pq)
{
    if (!pq.isTrained())
        fatal("savePq: quantizer is not trained");
    writeU32(os, kPqMagic);
    writeU64(os, pq.dim());
    writeU64(os, pq.numSub());
    writeU64(os, pq.nbits());
    for (std::size_t s = 0; s < pq.numSub(); ++s) {
        const auto cb = pq.codebook(s);
        writeFloats(os, cb.data(), cb.size());
    }
}

ProductQuantizer
loadPq(std::istream &is)
{
    expectMagic(is, kPqMagic, "ProductQuantizer");
    const std::size_t dim = readU64(is);
    const std::size_t m = readU64(is);
    const std::size_t nbits = readU64(is);
    if (m == 0 || dim == 0 || dim % m != 0)
        fatal("loadPq: invalid dimensions");
    const std::size_t ksub = std::size_t{1} << nbits;
    auto codebooks = readFloats(is, m * ksub * (dim / m));
    return ProductQuantizer::fromCodebooks(dim, m, nbits,
                                           std::move(codebooks));
}

void
saveFlatIndex(std::ostream &os, const FlatIndex &index)
{
    writeU32(os, kFlatMagic);
    writeU64(os, index.dim());
    writeU32(os, index.metric() == Metric::L2 ? 0 : 1);
    writeU64(os, index.size());
    for (std::size_t i = 0; i < index.size(); ++i)
        writeFloats(os, index.vectorData(static_cast<idx_t>(i)),
                    index.dim());
}

FlatIndex
loadFlatIndex(std::istream &is)
{
    expectMagic(is, kFlatMagic, "FlatIndex");
    const std::size_t dim = readU64(is);
    const Metric metric =
        readU32(is) == 0 ? Metric::L2 : Metric::InnerProduct;
    const std::size_t n = readU64(is);
    FlatIndex index(dim, metric);
    if (n > 0) {
        const auto data = readFloats(is, n * dim);
        index.add(data, n);
    }
    return index;
}

void
saveCoarseQuantizer(std::ostream &os, const FlatCoarseQuantizer &cq)
{
    writeU32(os, kCqMagic);
    writeU64(os, cq.nlist());
    writeU64(os, cq.dim());
    writeU32(os, cq.metric() == Metric::L2 ? 0 : 1);
    for (cluster_id_t c = 0; c < static_cast<cluster_id_t>(cq.nlist());
         ++c)
        writeFloats(os, cq.centroid(c), cq.dim());
}

std::shared_ptr<FlatCoarseQuantizer>
loadCoarseQuantizer(std::istream &is)
{
    expectMagic(is, kCqMagic, "FlatCoarseQuantizer");
    const std::size_t nlist = readU64(is);
    const std::size_t dim = readU64(is);
    const Metric metric =
        readU32(is) == 0 ? Metric::L2 : Metric::InnerProduct;
    auto centroids = readFloats(is, nlist * dim);
    return std::make_shared<FlatCoarseQuantizer>(std::move(centroids),
                                                 nlist, dim, metric);
}

} // namespace vlr::vs

#include "common/beta_dist.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace vlr
{

namespace
{

/**
 * Continued-fraction helper for the incomplete beta function
 * (Numerical-Recipes-style modified Lentz algorithm).
 */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int max_iter = 300;
    constexpr double eps = 3.0e-12;
    constexpr double fpmin = 1.0e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < fpmin)
        d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iter; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps)
            break;
    }
    return h;
}

} // namespace

double
regularizedIncompleteBeta(double a, double b, double x)
{
    assert(a > 0.0 && b > 0.0);
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                            std::lgamma(b) + a * std::log(x) +
                            b * std::log1p(-x);
    const double front = std::exp(ln_front);
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

BetaDistribution::BetaDistribution(double alpha, double beta)
    : alpha_(alpha), beta_(beta)
{
    if (alpha <= 0.0 || beta <= 0.0)
        throw std::invalid_argument("BetaDistribution: parameters must be > 0");
    logBetaFn_ = std::lgamma(alpha_) + std::lgamma(beta_) -
                 std::lgamma(alpha_ + beta_);
}

BetaDistribution
BetaDistribution::fromMoments(double mean, double variance)
{
    mean = std::clamp(mean, 1e-4, 1.0 - 1e-4);
    const double max_var = mean * (1.0 - mean);
    variance = std::clamp(variance, 1e-8, max_var * 0.999);
    // alpha + beta = mean*(1-mean)/var - 1
    const double nu = max_var / variance - 1.0;
    return BetaDistribution(mean * nu, (1.0 - mean) * nu);
}

double
BetaDistribution::mean() const
{
    return alpha_ / (alpha_ + beta_);
}

double
BetaDistribution::variance() const
{
    const double s = alpha_ + beta_;
    return alpha_ * beta_ / (s * s * (s + 1.0));
}

double
BetaDistribution::pdf(double x) const
{
    if (x < 0.0 || x > 1.0)
        return 0.0;
    if (x == 0.0)
        return alpha_ < 1.0 ? HUGE_VAL : (alpha_ == 1.0 ? beta_ : 0.0);
    if (x == 1.0)
        return beta_ < 1.0 ? HUGE_VAL : (beta_ == 1.0 ? alpha_ : 0.0);
    return std::exp((alpha_ - 1.0) * std::log(x) +
                    (beta_ - 1.0) * std::log1p(-x) - logBetaFn_);
}

double
BetaDistribution::cdf(double x) const
{
    return regularizedIncompleteBeta(alpha_, beta_, x);
}

double
BetaDistribution::quantile(double p) const
{
    p = std::clamp(p, 0.0, 1.0);
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (cdf(mid) < p)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
BetaDistribution::expectedMin(std::size_t batch_size, std::size_t grid) const
{
    if (batch_size <= 1)
        return mean();
    assert(grid >= 8);

    // Integrating Eq. 2 by parts gives the survival form
    //
    //   E[min of B] = Integral_0^1 (1 - F(x))^B dx.
    //
    // Evaluating it on a quantile-spaced grid x_i = Q(i / grid) makes
    // F(x_i) = i / grid exact at every node, so steep CDFs — including
    // the pdf singularities of alpha < 1 or beta < 1, where a uniform
    // x grid misses the entire transition — are fully resolved.
    const auto bsz = static_cast<double>(batch_size);

    // Bisection for Q(p) restricted to [lo, 1]; nodes are visited in
    // ascending p, so the previous node brackets the next from below.
    auto quantile_above = [&](double p, double lo) {
        double hi = 1.0;
        for (int it = 0; it < 40 && hi - lo > 1e-12; ++it) {
            const double mid = 0.5 * (lo + hi);
            if (cdf(mid) < p)
                lo = mid;
            else
                hi = mid;
        }
        return hi;
    };

    double acc = 0.0;
    double prev_x = 0.0;
    double prev_s = 1.0;
    for (std::size_t i = 1; i <= grid; ++i) {
        const double p =
            static_cast<double>(i) / static_cast<double>(grid);
        const double x = i == grid ? 1.0 : quantile_above(p, prev_x);
        const double s = std::pow(1.0 - p, bsz);
        acc += (x - prev_x) * 0.5 * (prev_s + s);
        prev_x = x;
        prev_s = s;
    }
    return std::clamp(acc, 0.0, 1.0);
}

} // namespace vlr

/**
 * @file
 * Logging and error helpers, gem5-style: fatal() for user/configuration
 * errors that make continuing meaningless, panic() for internal bugs.
 */

#ifndef VLR_COMMON_LOG_H
#define VLR_COMMON_LOG_H

#include <sstream>
#include <string>

namespace vlr
{

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };

/** Global log threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Emit a message at the given level (thread-safe, goes to stderr). */
void logMessage(LogLevel level, const std::string &msg);

/** User/config error: prints and throws std::runtime_error. */
[[noreturn]] void fatal(const std::string &msg);

/** Internal invariant violation: prints and aborts. */
[[noreturn]] void panic(const std::string &msg);

namespace detail
{

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

template <typename... Args>
void
logInfo(Args &&...args)
{
    logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logWarn(Args &&...args)
{
    logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logDebug(Args &&...args)
{
    logMessage(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

} // namespace vlr

#endif // VLR_COMMON_LOG_H

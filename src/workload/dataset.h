/**
 * @file
 * Synthetic clustered datasets standing in for the paper's corpora.
 *
 * The paper evaluates on Wiki-All (88M x 768-dim vectors, 18 GB IVF-PQ
 * index) and two ORCAS-derived indexes (Stella embeddings of 1024 /
 * 2048 dims; 40 GB and 80 GB). Neither corpus nor the hardware to hold
 * them is available here, so each preset generates a Gaussian-mixture
 * corpus at reduced scale whose *cluster-level statistics* — size skew
 * and query access skew — are calibrated to the paper's measurements
 * (Fig. 5: top 20% of clusters cover ~59% of accesses for Wiki-All and
 * ~93% for ORCAS). A per-preset scale factor maps simulated vector
 * counts and bytes back to paper scale for the cost models.
 */

#ifndef VLR_WORKLOAD_DATASET_H
#define VLR_WORKLOAD_DATASET_H

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "simgpu/search_cost.h"
#include "vecsearch/ivf.h"

namespace vlr::wl
{

/** Everything needed to instantiate a dataset and its cost model. */
struct DatasetSpec
{
    std::string name;

    // --- reduced-scale generation parameters ---
    std::size_t numVectors = 60000;
    std::size_t dim = 48;
    /** Mixture components; doubles as the IVF nlist. */
    std::size_t numClusters = 512;
    /** Zipf exponent of generator cluster sizes. */
    double clusterSizeZipf = 0.6;
    /** Zipf exponent of query popularity over clusters. */
    double queryZipf = 0.7;
    /** Stddev of vectors around their cluster center. */
    double withinClusterStd = 0.18;
    /** Stddev of query displacement from the sampled center. */
    double queryStd = 0.24;
    /** Distance scale between cluster centers (unit hypersphere-ish). */
    double centerScale = 1.0;
    std::size_t nprobe = 16;
    std::uint64_t seed = 7;

    // --- paper-scale mapping ---
    /** nprobe at paper scale (the paper uses 2048); scales GPU kernel
     *  pair counts: one simulated probe stands for paperNprobe/nprobe
     *  launched blocks. */
    std::size_t paperNprobe = 2048;
    double paperVectors = 88e6;
    bytes_t paperIndexBytes = 18_GiB;
    /** CPU latency constants calibrated for this index at paper scale. */
    gpu::CpuSearchParams cpuParams;
    /** Table I retrieval SLO. */
    double sloSearchSeconds = 0.150;

    /** Paper-scale vectors represented by one simulated vector. */
    double
    scaleFactor() const
    {
        return paperVectors / static_cast<double>(numVectors);
    }

    /** Paper-scale index bytes per simulated vector. */
    double
    bytesPerSimVector() const
    {
        return static_cast<double>(paperIndexBytes) /
               static_cast<double>(numVectors);
    }
};

/** Wiki-All-like: moderate skew, 18 GB, SLO 150 ms. */
DatasetSpec wikiAllSpec();
/** ORCAS-1K-like: heavy skew, 40 GB, SLO 200 ms. */
DatasetSpec orcas1kSpec();
/** ORCAS-2K-like: heavy skew, 80 GB, SLO 300 ms. */
DatasetSpec orcas2kSpec();
/** Tiny spec for unit tests (fast to build). */
DatasetSpec tinySpec();
DatasetSpec specByName(const std::string &name);

/**
 * A generated dataset. `buildStats()` creates only centers, cluster
 * sizes and queries (all the serving experiments need); `buildVectors()`
 * additionally materializes the corpus for real index construction.
 */
class SyntheticDataset
{
  public:
    explicit SyntheticDataset(DatasetSpec spec);

    /** Generate centers + cluster sizes (cheap). */
    void buildStats();
    /** Generate the full corpus (calls buildStats() if needed). */
    void buildVectors();

    const DatasetSpec &spec() const { return spec_; }

    /** Generator cluster centers, numClusters * dim. */
    std::span<const float> centers() const;
    /** Simulated vectors per cluster (sums to numVectors). */
    const std::vector<std::size_t> &clusterSizes() const;
    /** Paper-scale bytes of one cluster's index data. */
    double clusterBytes(cluster_id_t c) const;
    /** Corpus vectors (only after buildVectors()). */
    std::span<const float> vectors() const;
    /** Cluster assignment per vector (only after buildVectors()). */
    const std::vector<std::int32_t> &assignments() const;

    /**
     * Coarse quantizer over the generator centers. Using the mixture's
     * own centers as IVF centroids is the scaled-down equivalent of
     * training k-means on the corpus (tested against real k-means in
     * tests/test_dataset.cc).
     */
    std::shared_ptr<vs::FlatCoarseQuantizer> makeCoarseQuantizer() const;

    bool hasStats() const { return statsBuilt_; }
    bool hasVectors() const { return vectorsBuilt_; }

  private:
    DatasetSpec spec_;
    bool statsBuilt_ = false;
    bool vectorsBuilt_ = false;
    std::vector<float> centers_;
    std::vector<std::size_t> clusterSizes_;
    std::vector<float> vectors_;
    std::vector<std::int32_t> assignments_;
};

/**
 * Skewed query stream over a dataset: a cluster is sampled from a
 * Zipf popularity law (through a hidden permutation so popularity is
 * uncorrelated with cluster id), then the query is the center plus
 * Gaussian displacement. supports distribution drift for the online
 * update experiments.
 */
class QueryGenerator
{
  public:
    QueryGenerator(const SyntheticDataset &dataset, std::uint64_t seed);

    /** Generate n queries (n * dim floats). */
    std::vector<float> generate(std::size_t n);

    /**
     * Shift the popularity law: re-draws the rank permutation for a
     * fraction of clusters, modelling the temporal drift of Section
     * IV-B3.
     */
    void drift(double fraction);

    const std::vector<std::uint32_t> &popularityOrder() const;

  private:
    const SyntheticDataset &dataset_;
    Rng rng_;
    ZipfSampler zipf_;
    /** popularity rank -> cluster id */
    std::vector<std::uint32_t> order_;
};

} // namespace vlr::wl

#endif // VLR_WORKLOAD_DATASET_H

#include "core/access_profile.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/log.h"

namespace vlr::core
{

AccessProfile::AccessProfile(std::vector<double> access_counts,
                             std::vector<double> cluster_work,
                             std::vector<double> cluster_bytes)
    : accessCounts_(std::move(access_counts)),
      clusterWork_(std::move(cluster_work)),
      clusterBytes_(std::move(cluster_bytes))
{
    const std::size_t n = accessCounts_.size();
    if (clusterWork_.size() != n || clusterBytes_.size() != n)
        fatal("AccessProfile: array size mismatch");

    hotOrder_.resize(n);
    std::iota(hotOrder_.begin(), hotOrder_.end(), 0);
    std::sort(hotOrder_.begin(), hotOrder_.end(),
              [this](cluster_id_t a, cluster_id_t b) {
                  const auto ca = accessCounts_[static_cast<std::size_t>(a)];
                  const auto cb = accessCounts_[static_cast<std::size_t>(b)];
                  if (ca != cb)
                      return ca > cb;
                  return a < b;
              });

    cumBytes_.resize(n);
    cumMass_.resize(n);
    double bytes = 0.0, mass = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto c = static_cast<std::size_t>(hotOrder_[i]);
        bytes += clusterBytes_[c];
        mass += accessCounts_[c] * clusterWork_[c];
        cumBytes_[i] = bytes;
        cumMass_[i] = mass;
    }
    totalBytes_ = bytes;
    totalMass_ = mass;
}

AccessProfile
AccessProfile::fromPlans(const wl::PlanSet &plans,
                         const wl::SyntheticDataset &dataset)
{
    const std::size_t nlist = dataset.spec().numClusters;
    auto counts = plans.clusterAccessCounts(nlist);
    std::vector<double> work(nlist), bytes(nlist);
    const double scale = dataset.spec().scaleFactor();
    for (std::size_t c = 0; c < nlist; ++c) {
        work[c] = static_cast<double>(dataset.clusterSizes()[c]) * scale;
        bytes[c] = dataset.clusterBytes(static_cast<cluster_id_t>(c));
    }
    return AccessProfile(std::move(counts), std::move(work),
                         std::move(bytes));
}

std::size_t
AccessProfile::numHot(double rho) const
{
    rho = std::clamp(rho, 0.0, 1.0);
    return static_cast<std::size_t>(
        rho * static_cast<double>(nlist()) + 0.5);
}

std::vector<cluster_id_t>
AccessProfile::hotClusters(double rho) const
{
    const std::size_t n = numHot(rho);
    return {hotOrder_.begin(), hotOrder_.begin() + n};
}

std::vector<bool>
AccessProfile::hotBitmap(double rho) const
{
    std::vector<bool> hot(nlist(), false);
    const std::size_t n = numHot(rho);
    for (std::size_t i = 0; i < n; ++i)
        hot[static_cast<std::size_t>(hotOrder_[i])] = true;
    return hot;
}

double
AccessProfile::indexBytes(double rho) const
{
    const std::size_t n = numHot(rho);
    if (n == 0)
        return 0.0;
    return cumBytes_[n - 1];
}

std::vector<CdfPoint>
AccessProfile::accessConcentration() const
{
    // Concentration of raw access counts (matching the paper's Fig. 5,
    // which plots coarse-quantization hit frequency).
    return weightConcentrationCurve(accessCounts_);
}

double
AccessProfile::meanWorkHitRate(double rho) const
{
    const std::size_t n = numHot(rho);
    if (n == 0 || totalMass_ <= 0.0)
        return 0.0;
    return cumMass_[n - 1] / totalMass_;
}

double
AccessProfile::accessCount(cluster_id_t c) const
{
    return accessCounts_.at(static_cast<std::size_t>(c));
}

double
AccessProfile::clusterWork(cluster_id_t c) const
{
    return clusterWork_.at(static_cast<std::size_t>(c));
}

double
AccessProfile::clusterBytes(cluster_id_t c) const
{
    return clusterBytes_.at(static_cast<std::size_t>(c));
}

} // namespace vlr::core

/**
 * @file
 * Figure 5 reproduction: CDF of cluster access frequency for the
 * Wiki-All-like and ORCAS-like workloads.
 *
 * The paper's headline numbers: the top 20% of clusters account for
 * ~59% of distance computations on Wiki-All and ~93% on ORCAS. The
 * synthetic query generators are calibrated to those targets; this
 * bench prints the measured concentration curve so the calibration is
 * auditable.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout, "Figure 5: cluster access frequency CDF");

    struct Target
    {
        wl::DatasetSpec spec;
        double paperAt20;
    };
    const std::vector<Target> targets = {
        {wl::wikiAllSpec(), 0.59},
        {wl::orcas1kSpec(), 0.93},
    };

    for (const auto &[spec, paper_at20] : targets) {
        core::DatasetContext ctx(spec);
        const auto curve = ctx.profile().accessConcentration();

        std::cout << "\ndataset: " << spec.name << " (query Zipf "
                  << spec.queryZipf << ")\n";
        TextTable t({"top clusters", "access share (measured)",
                     "paper"});
        for (const double cov : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
            const double share = evalConcentration(curve, cov);
            std::string paper = "-";
            if (cov == 0.2)
                paper = TextTable::pct(paper_at20);
            t.addRow({TextTable::pct(cov), TextTable::pct(share),
                      paper});
        }
        t.print(std::cout);
    }

    std::cout << "\npaper: top 20% of clusters account for over 50% of "
                 "distance computations in both datasets, with ORCAS "
                 "far more skewed than Wiki-All.\n";
    return 0;
}

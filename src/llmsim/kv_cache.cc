#include "llmsim/kv_cache.h"

#include "common/log.h"

namespace vlr::llm
{

PagedKvCache::PagedKvCache(bytes_t capacity_bytes,
                           bytes_t kv_bytes_per_token,
                           std::size_t block_tokens)
    : blockTokens_(block_tokens),
      bytesPerBlock_(kv_bytes_per_token * block_tokens)
{
    if (block_tokens == 0 || kv_bytes_per_token == 0)
        fatal("PagedKvCache: zero block size");
    totalBlocks_ = static_cast<std::size_t>(capacity_bytes / bytesPerBlock_);
}

std::size_t
PagedKvCache::blocksForTokens(std::size_t tokens) const
{
    return (tokens + blockTokens_ - 1) / blockTokens_;
}

std::size_t
PagedKvCache::maxConcurrentSequences(std::size_t tokens_per_seq) const
{
    const std::size_t per_seq = blocksForTokens(tokens_per_seq);
    return per_seq ? totalBlocks_ / per_seq : 0;
}

bool
PagedKvCache::tryReserve(std::size_t blocks)
{
    if (usedBlocks_ + blocks > totalBlocks_)
        return false;
    usedBlocks_ += blocks;
    return true;
}

void
PagedKvCache::release(std::size_t blocks)
{
    if (blocks > usedBlocks_)
        panic("PagedKvCache: releasing more blocks than reserved");
    usedBlocks_ -= blocks;
}

} // namespace vlr::llm

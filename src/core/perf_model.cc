#include "core/perf_model.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace vlr::core
{

SearchPerfModel
SearchPerfModel::profile(const gpu::CpuSearchModel &truth,
                         std::span<const std::size_t> batch_sizes,
                         double noise_std, std::uint64_t seed,
                         std::size_t repeats)
{
    assert(!batch_sizes.empty());
    Rng rng(seed);
    std::vector<PlKnot> cq_samples, lut_samples;
    for (const std::size_t b : batch_sizes) {
        for (std::size_t r = 0; r < repeats; ++r) {
            const double n1 =
                noise_std > 0.0 ? 1.0 + rng.gaussian(0.0, noise_std) : 1.0;
            const double n2 =
                noise_std > 0.0 ? 1.0 + rng.gaussian(0.0, noise_std) : 1.0;
            cq_samples.push_back({static_cast<double>(b),
                                  truth.cqSeconds(b) * std::max(0.5, n1)});
            lut_samples.push_back({static_cast<double>(b),
                                   truth.lutSeconds(b) * std::max(0.5, n2)});
        }
    }
    SearchPerfModel m;
    m.cq_ = PiecewiseLinearModel::fit(cq_samples);
    m.lut_ = PiecewiseLinearModel::fit(lut_samples);
    return m;
}

SearchPerfModel
SearchPerfModel::fromKnots(std::span<const PlKnot> cq_samples,
                           std::span<const PlKnot> lut_samples)
{
    assert(!cq_samples.empty());
    assert(!lut_samples.empty());
    SearchPerfModel m;
    m.cq_ = PiecewiseLinearModel::fit(cq_samples);
    m.lut_ = PiecewiseLinearModel::fit(lut_samples);
    return m;
}

double
SearchPerfModel::tCq(double b) const
{
    return std::max(0.0, cq_.eval(b));
}

double
SearchPerfModel::tLut(double b) const
{
    return std::max(0.0, lut_.eval(b));
}

double
SearchPerfModel::hybridLatency(double b, double eta_min) const
{
    const double w = std::clamp(1.0 - eta_min, 0.0, 1.0);
    return tCq(b) + w * tLut(b);
}

double
SearchPerfModel::requiredEtaMin(double b, double tau) const
{
    const double lut = tLut(b);
    if (lut <= 0.0)
        return 0.0;
    // tau = tCq + (1 - eta) * tLut  =>  eta = (tSearch - tau) / tLut.
    return (tSearch(b) - tau) / lut;
}

} // namespace vlr::core

#include "simgpu/search_cost.h"

#include <algorithm>
#include <cmath>

namespace vlr::gpu
{

CpuSearchModel::CpuSearchModel(CpuSpec cpu, CpuSearchParams params)
    : cpu_(std::move(cpu)), params_(params),
      coreScale_(64.0 / std::max(1, cpu_.cores))
{
}

double
CpuSearchModel::cqSeconds(std::size_t b) const
{
    if (b == 0)
        return 0.0;
    return params_.cqFixedSeconds +
           params_.cqPerQuerySeconds * coreScale_ * static_cast<double>(b);
}

double
CpuSearchModel::lutSeconds(std::size_t b) const
{
    if (b == 0)
        return 0.0;
    return params_.lutFixedSeconds +
           params_.lutPerQuerySeconds * coreScale_ * static_cast<double>(b);
}

double
CpuSearchModel::lutSecondsPartial(double max_work_fraction,
                                  double total_work_fraction) const
{
    max_work_fraction = std::clamp(max_work_fraction, 0.0, 1.0);
    total_work_fraction = std::max(total_work_fraction, 0.0);
    if (max_work_fraction <= 0.0)
        return 0.0;
    return params_.lutFixedSeconds * max_work_fraction +
           params_.lutPerQuerySeconds * coreScale_ * total_work_fraction;
}

double
CpuSearchModel::lutFixedComponent(double w) const
{
    return params_.lutFixedSeconds * std::clamp(w, 0.0, 1.0);
}

double
CpuSearchModel::lutMarginalComponent(double total_w) const
{
    return params_.lutPerQuerySeconds * coreScale_ *
           std::max(total_w, 0.0);
}

double
CpuSearchModel::searchSeconds(std::size_t b, double min_hit_rate) const
{
    const double w = std::clamp(1.0 - min_hit_rate, 0.0, 1.0);
    // Paper Eq. 1: tau_s(b) = T_CQ(b) + (1 - eta) * T_LUT(b).
    return cqSeconds(b) + w * lutSeconds(b);
}

GpuSearchModel::GpuSearchModel(GpuSpec spec)
    : spec_(std::move(spec))
{
}

double
GpuSearchModel::shardSeconds(std::size_t pairs, double bytes_scanned) const
{
    if (pairs == 0 && bytes_scanned <= 0.0)
        return 0.0;
    const double bw =
        spec_.memBwBytesPerSec * spec_.searchBwEfficiency;
    return spec_.kernelLaunchSeconds +
           spec_.blockScheduleSeconds * static_cast<double>(pairs) +
           bytes_scanned / bw;
}

double
GpuSearchModel::occupancy(std::size_t pairs) const
{
    // Each in-flight block consumes scheduler slots and shared memory;
    // ~2k concurrent pairs saturate the device (nprobe-sized launches of
    // the unpruned baseline hit this ceiling, a pruned router does not).
    constexpr double pairs_to_saturate = 2048.0;
    return std::min(1.0, static_cast<double>(pairs) / pairs_to_saturate);
}

} // namespace vlr::gpu

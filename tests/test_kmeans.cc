/**
 * @file
 * Tests for k-means training and assignment.
 */

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/threadpool.h"
#include "vecsearch/kmeans.h"
#include "vecsearch/metric.h"

namespace vlr::vs
{
namespace
{

/** Generate n points around k well-separated centers. */
std::vector<float>
clusteredData(Rng &rng, std::size_t n, std::size_t d, std::size_t k,
              double spread = 0.05)
{
    std::vector<float> centers(k * d);
    for (auto &x : centers)
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
    std::vector<float> data(n * d);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = rng.uniformU64(k);
        for (std::size_t j = 0; j < d; ++j)
            data[i * d + j] =
                centers[c * d + j] +
                static_cast<float>(rng.gaussian(0.0, spread));
    }
    return data;
}

TEST(KMeans, ProducesKCentroids)
{
    Rng rng(1);
    const auto data = clusteredData(rng, 500, 8, 4);
    KMeansParams p;
    p.k = 4;
    const auto res = kmeansTrain(data, 500, 8, p);
    EXPECT_EQ(res.centroids.size(), 4u * 8u);
    EXPECT_GT(res.iterations, 0);
}

TEST(KMeans, ObjectiveIsSmallOnSeparatedClusters)
{
    Rng rng(2);
    const auto data = clusteredData(rng, 1000, 4, 8, 0.02);
    KMeansParams p;
    p.k = 8;
    p.maxIters = 25;
    const auto res = kmeansTrain(data, 1000, 4, p);
    // Within-cluster spread is 0.02 per dim -> MSE ~ 4 * 0.02^2.
    EXPECT_LT(res.objective, 0.01);
}

TEST(KMeans, MoreCentroidsLowerObjective)
{
    Rng rng(3);
    const auto data = clusteredData(rng, 800, 6, 16, 0.2);
    KMeansParams p4, p16;
    p4.k = 4;
    p16.k = 16;
    p4.maxPointsPerCentroid = 0;
    p16.maxPointsPerCentroid = 0;
    const auto r4 = kmeansTrain(data, 800, 6, p4);
    const auto r16 = kmeansTrain(data, 800, 6, p16);
    EXPECT_LT(r16.objective, r4.objective);
}

TEST(KMeans, AssignMapsToNearestCentroid)
{
    Rng rng(4);
    const auto data = clusteredData(rng, 300, 5, 3);
    KMeansParams p;
    p.k = 3;
    const auto res = kmeansTrain(data, 300, 5, p);
    const auto assign = kmeansAssign(data, 300, 5, res.centroids, 3);
    ASSERT_EQ(assign.size(), 300u);
    for (std::size_t i = 0; i < 300; ++i) {
        const float *x = data.data() + i * 5;
        float best = 1e30f;
        std::int32_t bestc = -1;
        for (std::int32_t c = 0; c < 3; ++c) {
            const float dd = l2Sqr(x, res.centroids.data() + c * 5, 5);
            if (dd < best) {
                best = dd;
                bestc = c;
            }
        }
        EXPECT_EQ(assign[i], bestc) << "point " << i;
    }
}

TEST(KMeans, AllClustersNonEmptyOnSeparatedData)
{
    Rng rng(5);
    const auto data = clusteredData(rng, 1000, 4, 10, 0.02);
    KMeansParams p;
    p.k = 10;
    p.maxIters = 30;
    p.maxPointsPerCentroid = 0;
    const auto res = kmeansTrain(data, 1000, 4, p);
    const auto assign = kmeansAssign(data, 1000, 4, res.centroids, 10);
    std::set<std::int32_t> used(assign.begin(), assign.end());
    EXPECT_EQ(used.size(), 10u);
}

TEST(KMeans, DeterministicForFixedSeed)
{
    Rng rng(6);
    const auto data = clusteredData(rng, 400, 8, 4);
    KMeansParams p;
    p.k = 4;
    p.seed = 77;
    const auto a = kmeansTrain(data, 400, 8, p);
    const auto b = kmeansTrain(data, 400, 8, p);
    ASSERT_EQ(a.centroids.size(), b.centroids.size());
    for (std::size_t i = 0; i < a.centroids.size(); ++i)
        EXPECT_FLOAT_EQ(a.centroids[i], b.centroids[i]);
}

TEST(KMeans, ParallelMatchesSerial)
{
    Rng rng(7);
    const auto data = clusteredData(rng, 600, 8, 6);
    KMeansParams p;
    p.k = 6;
    p.seed = 3;
    ThreadPool pool(4);
    const auto serial = kmeansTrain(data, 600, 8, p, nullptr);
    const auto parallel = kmeansTrain(data, 600, 8, p, &pool);
    ASSERT_EQ(serial.centroids.size(), parallel.centroids.size());
    for (std::size_t i = 0; i < serial.centroids.size(); ++i)
        EXPECT_NEAR(serial.centroids[i], parallel.centroids[i], 1e-3f);
}

TEST(KMeans, KEqualsNReproducesPoints)
{
    // With k == n every point becomes its own centroid.
    Rng rng(8);
    std::vector<float> data = {0.f, 0.f, 1.f, 1.f, 2.f, 2.f};
    KMeansParams p;
    p.k = 3;
    p.maxPointsPerCentroid = 0;
    const auto res = kmeansTrain(data, 3, 2, p);
    const auto assign = kmeansAssign(data, 3, 2, res.centroids, 3);
    std::set<std::int32_t> used(assign.begin(), assign.end());
    EXPECT_EQ(used.size(), 3u);
    // Objective should be ~0.
    EXPECT_LT(res.objective, 1e-9);
}

TEST(KMeans, SubsamplingStillConverges)
{
    Rng rng(9);
    const auto data = clusteredData(rng, 4000, 4, 4, 0.02);
    KMeansParams p;
    p.k = 4;
    p.maxPointsPerCentroid = 64; // trains on <= 256 points
    const auto res = kmeansTrain(data, 4000, 4, p);
    // Assignment over the full data still lands near the true spread.
    const auto assign = kmeansAssign(data, 4000, 4, res.centroids, 4);
    double mse = 0.0;
    for (std::size_t i = 0; i < 4000; ++i)
        mse += l2Sqr(data.data() + i * 4,
                     res.centroids.data() + assign[i] * 4, 4);
    mse /= 4000;
    EXPECT_LT(mse, 0.05);
}

/** Objective never increases with more iterations. */
class KMeansItersTest : public ::testing::TestWithParam<int>
{
};

TEST_P(KMeansItersTest, ObjectiveMonotoneInIterations)
{
    Rng rng(10);
    const auto data = clusteredData(rng, 500, 6, 8, 0.3);
    KMeansParams base;
    base.k = 8;
    base.tol = 0.0;
    base.maxPointsPerCentroid = 0;
    KMeansParams more = base;
    more.maxIters = GetParam() + 5;
    base.maxIters = GetParam();
    const auto a = kmeansTrain(data, 500, 6, base);
    const auto b = kmeansTrain(data, 500, 6, more);
    EXPECT_LE(b.objective, a.objective + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, KMeansItersTest,
                         ::testing::Values(1, 2, 5, 10));

} // namespace
} // namespace vlr::vs

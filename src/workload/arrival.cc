#include "workload/arrival.h"

#include <cassert>

namespace vlr::wl
{

std::vector<sim_time_t>
poissonArrivals(double rate, sim_time_t horizon, std::uint64_t seed)
{
    assert(rate > 0.0 && horizon > 0.0);
    Rng rng(seed);
    std::vector<sim_time_t> out;
    out.reserve(static_cast<std::size_t>(rate * horizon * 1.2) + 16);
    sim_time_t t = rng.exponential(rate);
    while (t < horizon) {
        out.push_back(t);
        t += rng.exponential(rate);
    }
    return out;
}

std::vector<sim_time_t>
uniformArrivals(double rate, sim_time_t horizon)
{
    assert(rate > 0.0 && horizon > 0.0);
    std::vector<sim_time_t> out;
    const sim_time_t step = 1.0 / rate;
    for (sim_time_t t = step; t < horizon; t += step)
        out.push_back(t);
    return out;
}

} // namespace vlr::wl

/**
 * @file
 * Request-centric serving API types (paper Table I: the SLO belongs to
 * the request, not the engine).
 *
 * A SearchRequest carries everything one query needs — ranking
 * parameters (k, nprobe), an optional queueing deadline, a scheduling
 * priority and an opaque client tag — so the engine can enforce
 * latency at admission instead of auditing it after the fact. A
 * SearchResponse reports the hits together with per-stage timings and
 * a Disposition saying how the request left the engine: served by a
 * batch, expired while queued, or rejected by the bounded admission
 * queue. EngineConfig is the single validated engine-wide
 * configuration the EngineBuilder assembles — dispatcher batching,
 * overload degradation and the closed-loop SLO autopilot are nested
 * policies inside it, all checked by one validate(); per-request
 * parameters default to its values when a request leaves them unset.
 */

#ifndef VLR_CORE_SERVING_API_H
#define VLR_CORE_SERVING_API_H

#include <compare>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/batch_policy.h"
#include "core/shard_backend.h"
#include "vecsearch/ivf_pq_fastscan.h"

namespace vlr::core
{

/**
 * Typed tenant identity. Requests carry it in SearchRequest::tenant;
 * everything tenant-scoped — TenantPolicy classes, weighted fair
 * batching, EngineStatsSnapshot::tenants, the autopilot's per-tenant
 * targets and the workload harness — keys on it. Id 0 is the
 * anonymous tenant: requests that never set an identity all land in
 * its bucket.
 *
 * TenantId replaces the former dual use of the opaque
 * SearchRequest::tag as a tenant key; tag is a free-form annotation
 * again (echoed verbatim in the response, never interpreted).
 */
struct TenantId
{
    std::uint64_t value = 0;

    /** True for the id-0 bucket requests without an identity use. */
    constexpr bool
    anonymous() const
    {
        return value == 0;
    }

    friend constexpr auto operator<=>(const TenantId &,
                                      const TenantId &) = default;
};

/** How a submitted request left the engine. Every request resolves
 *  with exactly one disposition. */
enum class Disposition
{
    /** Rode a search batch; hits and stage timings are populated. */
    kServed,
    /** Deadline elapsed while queued; resolved by the dispatcher
     *  without ever entering a search batch. */
    kExpiredInQueue,
    /** Bounced at admission by the bounded queue (BatchPolicy::
     *  maxQueue); resolved immediately on the submitting thread. */
    kRejected,
};

/** Short stable name for logs and bench tables. */
const char *dispositionName(Disposition d);

/**
 * One typed query submission. The query span is copied at submit();
 * the request object itself need not outlive the call.
 */
struct SearchRequest
{
    /** Query vector (at least dim() floats; copied at submit). */
    std::span<const float> query;
    /** Results wanted; 0 means the engine's defaultK. */
    std::size_t k = 0;
    /** IVF lists probed; 0 means the engine's defaultNprobe. */
    std::size_t nprobe = 0;
    /**
     * Queueing deadline in seconds from admission; <= 0 means no
     * deadline. A request still queued when its deadline elapses
     * resolves kExpiredInQueue instead of burning a search slot.
     */
    double deadlineSeconds = 0.0;
    /**
     * Dispatch priority: higher-priority requests lead batch
     * formation. Equal priorities dispatch in admission order; a
     * sustained stream of higher-priority work can delay lower
     * priorities past the batch timeout. With weighted fair batching
     * (TenantPolicy::fairService) priority orders requests *within*
     * the tenant; across tenants, service order is the fair-queueing
     * grant.
     */
    int priority = 0;
    /**
     * Tenant identity (TenantPolicy keys admission, fair batching and
     * accounting on it). Leave default for untenanted traffic.
     */
    TenantId tenant;
    /**
     * Opaque client tag echoed verbatim in the response — a free-form
     * annotation (request id, correlation token), never interpreted
     * by the engine. Tenant identity moved to `tenant`.
     */
    std::uint64_t tag = 0;
};

/** Outcome of one request: disposition + hits + per-stage timings. */
struct SearchResponse
{
    Disposition disposition = Disposition::kServed;
    /**
     * True when overload degradation served this request at a
     * shallower nprobe than requested (see DegradationPolicy);
     * `nprobe` below reports the effective probe depth actually
     * searched.
     */
    bool degraded = false;
    /** Top-k hits; empty unless disposition == kServed. */
    std::vector<vs::SearchHit> hits;
    /** Admission to batch start (served), to expiry resolution
     *  (expired), or 0 (rejected). */
    double queueSeconds = 0.0;
    /** Batch start to batch completion; 0 unless served. */
    double searchSeconds = 0.0;
    /** Admission to resolution. */
    double totalSeconds = 0.0;
    /** Size of the batch this request rode in; 0 unless served. */
    std::size_t batchSize = 0;
    /** Effective ranking parameters after defaulting. */
    std::size_t k = 0;
    std::size_t nprobe = 0;
    /** Tenant identity from the request. */
    TenantId tenant;
    /** Client tag from the request. */
    std::uint64_t tag = 0;

    bool
    served() const
    {
        return disposition == Disposition::kServed;
    }
};

/**
 * Graceful search degradation under overload (the alternative to
 * letting queued requests expire): when the dispatch backlog exceeds
 * `queuePressure` batch caps, batches are searched at a proportionally
 * reduced nprobe, never below `nprobeFloor`. Responses flag the
 * reduction (SearchResponse::degraded) and the engine counts every
 * event (EngineStatsSnapshot::degradedServed / degradedBatches). With
 * `enable` false the engine always searches the requested depth and
 * batched results stay bit-identical to serial per-request search.
 */
struct DegradationPolicy
{
    bool enable = false;
    /** Lowest nprobe degradation may serve (>= 1). A request asking
     *  for less than the floor is served as requested. */
    std::size_t nprobeFloor = 4;
    /**
     * Backlog-to-batch-cap ratio where degradation starts (>= 1).
     * At ratio r >= queuePressure the effective nprobe scales by
     * queuePressure / r — the deeper the overload, the shallower the
     * search.
     */
    double queuePressure = 2.0;
};

/** Per-tenant SLO targets consumed by the tenant-aware autopilot. */
struct TenantSloTarget
{
    /** Tolerated (expired + rejected) / resolved fraction per control
     *  window before the autopilot escalates on this tenant's behalf
     *  (in [0, 1]). */
    double missRateTarget = 0.01;
    /** p99 total-latency bound in seconds; 0 disables the latency
     *  target. */
    double p99TargetSeconds = 0.0;
};

/**
 * One tenant's complete service contract — the single validated spec
 * that replaced the former parallel share maps. Everything the engine
 * and autopilot know about a tenant lives here:
 *
 *  - `share` / `minShare` / `maxShare`: admission — the fraction of
 *    BatchPolicy::maxQueue the tenant may occupy (the adaptive share
 *    controller refits the live share inside [minShare, maxShare]);
 *  - `weight`: service — its weighted-fair-queueing weight in batch
 *    formation (long-run scanned-work share is proportional to it
 *    while the tenant stays backlogged);
 *  - `slo`: the autopilot targets;
 *  - `degradable`: whether overload nprobe degradation may shave this
 *    tenant's requests (premium classes opt out, so best-effort
 *    tenants absorb degradation first).
 */
struct TenantClass
{
    TenantId id;
    /** Label for logs and bench tables (optional). */
    std::string name;
    /** Admission share of BatchPolicy::maxQueue, in (0, 1]. */
    double share = 1.0;
    /** Adaptive-share clamp: the share controller never moves the
     *  live share outside [minShare, maxShare] (0 < min <= share <=
     *  max <= 1). */
    double minShare = 0.05;
    double maxShare = 1.0;
    /** WFQ service weight (> 0); see TenantPolicy::weightFloor. */
    double weight = 1.0;
    /** Per-tenant autopilot targets. */
    TenantSloTarget slo;
    /** Eligible for overload nprobe degradation. */
    bool degradable = true;

    /** @throws std::invalid_argument naming the offending field. */
    void validate(const char *what) const;
};

/**
 * Multi-tenant service policy: typed per-tenant admission, weighted
 * fair batching and accounting. When enabled, a request's
 * SearchRequest::tenant selects its TenantClass (`classes` by id,
 * else `defaults`):
 *
 *  - **Admission**: a tenant may occupy at most `share *
 *    BatchPolicy::maxQueue` queued slots (always at least one) —
 *    submissions beyond that resolve kRejected even while the global
 *    queue has room, so one tenant's burst cannot starve the others
 *    out of the admission queue. Requires a bounded queue.
 *  - **Service** (`fairService`): batch slots are granted by weighted
 *    fair queueing over virtual finish times, so a tenant's long-run
 *    share of *scanned work* (sum of effective nprobe) is bounded by
 *    its weight — not just its queue occupancy. EDF still orders
 *    requests within a tenant's grant. Off, batch formation is the
 *    global priority/EDF order.
 *  - **Accounting**: per-tenant disposition counts, scanned work and
 *    latency digests (EngineStatsSnapshot::tenants) that sum exactly
 *    to the global totals in every snapshot.
 *
 * Tenant ids should come from a small, stable set while the policy is
 * enabled: the engine tracks one accounting bucket per distinct id
 * for its lifetime.
 */
struct TenantPolicy
{
    bool enable = false;
    /** Service class applied to tenants without a registered class
     *  (its id and name are ignored). */
    TenantClass defaults;
    /** Registered per-tenant classes (unique ids). */
    std::vector<TenantClass> classes;
    /** Weighted fair batching over EDF (see above). */
    bool fairService = false;
    /**
     * Starvation-freedom floor: every tenant's effective WFQ weight
     * is at least this (in (0, 1]), so even a zero-ish-weight tenant
     * makes progress while backlogged.
     */
    double weightFloor = 0.05;
    /**
     * Let the autopilot's share controller refit each tenant's live
     * admission share from its measured arrival rate every control
     * cycle, clamped to the class's [minShare, maxShare]. Requires
     * the autopilot.
     */
    bool adaptiveShares = false;
};

/**
 * Validated read-only view of a TenantPolicy — the registry the
 * dispatcher, autopilot and benches resolve tenant identities
 * against. resolve() never fails: unknown tenants get the defaults
 * class.
 */
class TenantTable
{
  public:
    TenantTable() = default;
    /** @p policy must have passed EngineConfig::validate(). */
    explicit TenantTable(const TenantPolicy &policy);

    bool enabled() const { return policy_.enable; }
    bool fairService() const
    {
        return policy_.enable && policy_.fairService;
    }
    bool adaptiveShares() const
    {
        return policy_.enable && policy_.adaptiveShares;
    }

    /** Registered class for @p id, or nullptr. */
    const TenantClass *find(TenantId id) const;
    /** Registered class for @p id, else the defaults class. */
    const TenantClass &resolve(TenantId id) const;
    /** Effective WFQ weight: max(resolve(id).weight, weightFloor). */
    double weight(TenantId id) const;
    const std::vector<TenantClass> &classes() const
    {
        return policy_.classes;
    }

  private:
    TenantPolicy policy_;
    std::map<TenantId, std::size_t> byId_;
};

/**
 * Per-tenant slice of EngineStatsSnapshot (populated only while
 * TenantPolicy is enabled). Counters are exact; latency digests are
 * reservoir-sampled like the global ones (capacity 8192 per tenant).
 */
struct TenantStatsSnapshot
{
    TenantId tenant;
    std::size_t submitted = 0;
    std::size_t served = 0;
    std::size_t expired = 0;
    std::size_t rejected = 0;
    /** Served at a degraded (reduced) nprobe. */
    std::size_t degradedServed = 0;
    /**
     * Scanned work served on this tenant's behalf: the sum of
     * effective nprobe over its served requests — the quantity WFQ
     * bounds by the tenant's weight.
     */
    std::size_t servedWork = 0;
    /** Live admission share (the adaptive controller may have moved
     *  it off the configured TenantClass::share). */
    double share = 1.0;
    /** Effective WFQ weight (after the weight floor). */
    double weight = 1.0;
    /** Served requests: admission to batch start. */
    LatencySummary queueLatency;
    /** Served requests: admission to completion. */
    LatencySummary totalLatency;

    /** (expired + rejected) / resolved for this tenant. */
    double
    missRate() const
    {
        const std::size_t resolved = served + expired + rejected;
        return resolved == 0
                   ? 0.0
                   : static_cast<double>(expired + rejected) /
                         static_cast<double>(resolved);
    }
};

/**
 * Closed-loop SLO autopilot knobs (paper Figs. 11/16 run live): the
 * SloAutopilot periodically fits a SearchPerfModel from observed
 * per-batch latencies, rebuilds the access profile from live probe
 * counts, re-runs the LatencyBoundedPartitioner against the measured
 * arrival rate, and actuates rho / hot-shard count / batch cap through
 * the OnlineUpdater snapshot-swap path. The per-disposition stats
 * (expired + rejected rates) are the SLO-attainment feedback: misses
 * above `missRateTarget` escalate coverage beyond the model's pick.
 */
struct AutopilotPolicy
{
    bool enable = false;
    /**
     * Control-cycle period (> 0); 0 disables the background control
     * thread so tests and benches can step cycles deterministically
     * via SloAutopilot::runControlCycle().
     */
    double controlIntervalSeconds = 0.25;
    /** Batch observations required before a cycle fits and acts. */
    std::size_t minBatchObservations = 4;
    /** Recent queries kept (reservoir-sampled) for live hit-rate
     *  estimation (>= 16 when enabled). */
    std::size_t queryReservoir = 256;
    /** Exponential decay applied to accumulated access counts each
     *  cycle (in [0, 1]; lower forgets faster). */
    double countDecay = 0.5;
    /** Queuing factor eps of Eq. 3 fed to the partitioner. */
    double epsilon = 1.0;
    /** Coverage clamp applied to every autopilot pick. */
    double minRho = 0.0;
    double maxRho = 1.0;
    /** Coverage moves smaller than this do not trigger a rebuild. */
    double rhoDeadband = 0.02;
    /** Coverage escalation step while misses exceed the target. */
    double rhoStep = 0.05;
    /**
     * Tolerated (expired + rejected) / resolved fraction per control
     * window; above it the autopilot escalates coverage.
     */
    double missRateTarget = 0.01;
    /** Fraction of the re-picked hot set that may be missing from the
     *  current placement before a rebuild triggers (hotspot flips move
     *  membership without moving rho). */
    double hotSetDivergence = 0.25;
    /** Batch-cap actuation clamp (>= 1). */
    std::size_t maxBatchCap = 256;
    /**
     * Target resident bytes per hot shard; the autopilot re-picks the
     * shard count as ceil(hot bytes / budget) up to `maxShards`. 0
     * keeps the construction-time shard count.
     */
    double shardByteBudget = 0.0;
    /** Shard-count actuation clamp (>= 1; also capped by the tiered
     *  index's own maxShards). */
    std::size_t maxShards = 8;
    /**
     * Adaptive-share smoothing (in [0, 1)): each cycle the share
     * controller moves a tenant's live admission share toward its
     * measured demand fraction by a (1 - shareSmoothing) step, so one
     * noisy window cannot slam the caps around. Only used with
     * TenantPolicy::adaptiveShares.
     */
    double shareSmoothing = 0.5;
};

/**
 * One tenant's slice of an autopilot control decision: what the
 * controller measured for the tenant over the window and the
 * admission share it actuated.
 */
struct TenantDecision
{
    TenantId tenant;
    /** Measured submissions/s over the control window. */
    double arrivalRate = 0.0;
    /** (expired + rejected) / resolved over the control window. */
    double missRate = 0.0;
    /** p99 total latency of served requests (running digest). */
    double p99Seconds = 0.0;
    /** Live admission share after this cycle. */
    double share = 0.0;
    /** True when the share controller moved the share this cycle. */
    bool shareChanged = false;
    /** True when this tenant's own SLO targets were in breach. */
    bool sloBreached = false;
};

/**
 * One autopilot control decision, surfaced through
 * EngineStatsSnapshot::autopilotTrace (bounded history) so operators
 * and benches can plot chosen rho / shards / batch cap over time.
 */
struct AutopilotDecision
{
    /** Seconds since engine construction. */
    double atSeconds = 0.0;
    /** Measured submissions/s over the control window. */
    double arrivalRate = 0.0;
    /** (expired + rejected) / resolved over the control window. */
    double missRate = 0.0;
    /** Coverage the partitioner picked from the fitted models. */
    double modelRho = 0.0;
    /** Actuated coverage after SLO-attainment escalation + clamps. */
    double rho = 0.0;
    /** Actuated hot-shard count. */
    std::size_t hotShards = 0;
    /** Actuated dispatcher batch cap. */
    std::size_t batchCap = 0;
    /** True when this decision launched a background repartition. */
    bool repartitioned = false;
    /**
     * Weighted per-tenant miss objective the cycle optimized
     * (sum_t w_t * miss_t / sum_t w_t); equals missRate when the
     * tenant policy is off.
     */
    double weightedMissRate = 0.0;
    /** Per-tenant measurements + share actuation (tenant policy on). */
    std::vector<TenantDecision> tenants;
};

/**
 * Engine-wide configuration assembled by EngineBuilder — the single
 * config surface: batching, degradation and autopilot are nested
 * policies validated together by one validate(). Per-request k/nprobe
 * override the defaults here.
 */
struct EngineConfig
{
    /** Dispatcher policy shared with ServingConfig (cap, timeout and
     *  the bounded admission queue). */
    BatchPolicy batching{.maxBatch = 64, .timeoutSeconds = 2e-3};
    /** Overload nprobe degradation (off by default). */
    DegradationPolicy degrade;
    /** Weighted per-tenant admission + accounting (off by default). */
    TenantPolicy tenants;
    /** Closed-loop SLO autopilot (off by default; requires a tiered
     *  engine — see EngineBuilder::build). */
    AutopilotPolicy autopilot;
    /** Results per query for requests that leave k unset. */
    std::size_t defaultK = 10;
    /** Probed IVF lists for requests that leave nprobe unset. */
    std::size_t defaultNprobe = 16;
    /** Search worker threads: 1 = batch executes inline, 0 = size the
     *  pool to the hardware (ThreadPool::hardwareConcurrency()). */
    std::size_t numSearchThreads = 4;
    /** Pin search workers round-robin across cores (Linux;
     *  best-effort elsewhere) so per-thread caches, stat shards and
     *  epoch slots stay core-resident. */
    bool pinSearchThreads = false;
    /**
     * Retrieval-stage SLO (Table I); tiered batches whose search stage
     * exceeds it are reported to the drift monitor as SLO misses.
     */
    double sloSearchSeconds = 0.150;
    /**
     * Hot shards for engines that build their own TieredIndex
     * (EngineBuilder::tieredFromProfile); ignored when serving a
     * caller-owned index or the flat path.
     */
    std::size_t numHotShards = 1;
    /**
     * Per-shard backend factory for the same path; null means the
     * default in-memory fast-scan replica.
     */
    ShardBackendFactory shardBackendFactory;

    /** @throws std::invalid_argument on an unusable configuration. */
    void validate() const;
};

} // namespace vlr::core

#endif // VLR_CORE_SERVING_API_H

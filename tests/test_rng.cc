/**
 * @file
 * Tests for the deterministic RNG and the Zipf sampler.
 */

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace vlr
{
namespace
{

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDifferentStreams)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i)
        differing += a.nextU64() != b.nextU64();
    EXPECT_GT(differing, 60);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64StaysBelowBound)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformU64(17), 17u);
}

TEST(Rng, UniformU64CoversSmallRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformU64(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniformInt(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaledMoments)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(3.0, 0.5);
    EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, ExponentialMeanIsInverseRate)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 200000;
    const double rate = 4.0;
    for (int i = 0; i < n; ++i) {
        const double e = rng.exponential(rate);
        EXPECT_GE(e, 0.0);
        sum += e;
    }
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i;
    rng.shuffle(v);
    auto sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sorted[i], i);
    // Overwhelmingly likely that at least one element moved.
    bool moved = false;
    for (int i = 0; i < 100; ++i)
        moved |= v[i] != i;
    EXPECT_TRUE(moved);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(31);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.nextU64() == b.nextU64();
    EXPECT_LT(same, 4);
}

// --- ZipfSampler -----------------------------------------------------

TEST(Zipf, PmfSumsToOne)
{
    ZipfSampler z(100, 1.1);
    double sum = 0.0;
    for (std::size_t k = 0; k < 100; ++k)
        sum += z.pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfIsDecreasingInRank)
{
    ZipfSampler z(50, 0.8);
    for (std::size_t k = 1; k < 50; ++k)
        EXPECT_LE(z.pmf(k), z.pmf(k - 1));
}

TEST(Zipf, ThetaZeroIsUniform)
{
    ZipfSampler z(10, 0.0);
    for (std::size_t k = 0; k < 10; ++k)
        EXPECT_NEAR(z.pmf(k), 0.1, 1e-9);
}

TEST(Zipf, SamplesRespectRange)
{
    ZipfSampler z(37, 1.0);
    Rng rng(1);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(z.sample(rng), 37u);
}

TEST(Zipf, EmpiricalFrequencyTracksPmf)
{
    ZipfSampler z(20, 1.2);
    Rng rng(2);
    std::vector<int> counts(20, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (std::size_t k = 0; k < 5; ++k) {
        const double freq = static_cast<double>(counts[k]) / n;
        EXPECT_NEAR(freq, z.pmf(k), 0.01);
    }
}

/** Higher theta concentrates more mass on the top ranks. */
class ZipfSkewTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfSkewTest, TopRankMassGrowsWithTheta)
{
    const double theta = GetParam();
    ZipfSampler lo(200, theta);
    ZipfSampler hi(200, theta + 0.4);
    double mass_lo = 0.0, mass_hi = 0.0;
    for (std::size_t k = 0; k < 20; ++k) {
        mass_lo += lo.pmf(k);
        mass_hi += hi.pmf(k);
    }
    EXPECT_GT(mass_hi, mass_lo);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ZipfSkewTest,
                         ::testing::Values(0.0, 0.4, 0.7, 1.0, 1.3));

} // namespace
} // namespace vlr

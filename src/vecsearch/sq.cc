#include "vecsearch/sq.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/log.h"
#include "vecsearch/metric.h"

namespace vlr::vs
{

ScalarQuantizer::ScalarQuantizer(std::size_t dim)
    : dim_(dim), vmin_(dim, 0.f), vscale_(dim, 1.f)
{
    assert(dim > 0);
}

void
ScalarQuantizer::train(std::span<const float> data, std::size_t n)
{
    assert(data.size() >= n * dim_);
    if (n == 0)
        fatal("ScalarQuantizer::train: empty training set");
    std::vector<float> vmax(dim_);
    for (std::size_t j = 0; j < dim_; ++j) {
        vmin_[j] = data[j];
        vmax[j] = data[j];
    }
    for (std::size_t i = 1; i < n; ++i) {
        const float *x = data.data() + i * dim_;
        for (std::size_t j = 0; j < dim_; ++j) {
            vmin_[j] = std::min(vmin_[j], x[j]);
            vmax[j] = std::max(vmax[j], x[j]);
        }
    }
    for (std::size_t j = 0; j < dim_; ++j) {
        const float range = vmax[j] - vmin_[j];
        vscale_[j] = range > 0.f ? range / 255.f : 1.f;
    }
    trained_ = true;
}

void
ScalarQuantizer::encode(const float *vec, std::uint8_t *code) const
{
    assert(trained_);
    for (std::size_t j = 0; j < dim_; ++j) {
        const float t = (vec[j] - vmin_[j]) / vscale_[j];
        const float clamped = std::clamp(t, 0.f, 255.f);
        code[j] = static_cast<std::uint8_t>(std::lround(clamped));
    }
}

void
ScalarQuantizer::decode(const std::uint8_t *code, float *vec) const
{
    assert(trained_);
    for (std::size_t j = 0; j < dim_; ++j)
        vec[j] = vmin_[j] + vscale_[j] * static_cast<float>(code[j]);
}

float
ScalarQuantizer::distanceToCode(const float *query,
                                const std::uint8_t *code) const
{
    float acc = 0.f;
    for (std::size_t j = 0; j < dim_; ++j) {
        const float v = vmin_[j] + vscale_[j] * static_cast<float>(code[j]);
        const float diff = query[j] - v;
        acc += diff * diff;
    }
    return acc;
}

double
ScalarQuantizer::reconstructionError(std::span<const float> data,
                                     std::size_t n) const
{
    assert(data.size() >= n * dim_);
    std::vector<std::uint8_t> code(dim_);
    std::vector<float> rec(dim_);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const float *x = data.data() + i * dim_;
        encode(x, code.data());
        decode(code.data(), rec.data());
        acc += l2Sqr(x, rec.data(), dim_);
    }
    return n ? acc / static_cast<double>(n) : 0.0;
}

} // namespace vlr::vs

#include "core/splitter.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace vlr::core
{

double
ShardAssignment::totalGpuBytes() const
{
    double acc = 0.0;
    for (const double b : shardBytes)
        acc += b;
    return acc;
}

double
ShardAssignment::maxShardBytes() const
{
    double mx = 0.0;
    for (const double b : shardBytes)
        mx = std::max(mx, b);
    return mx;
}

namespace
{

ShardAssignment
makeEmpty(const AccessProfile &profile, double rho, int num_shards)
{
    ShardAssignment a;
    a.rho = rho;
    a.shardClusters.resize(static_cast<std::size_t>(num_shards));
    a.shardBytes.assign(static_cast<std::size_t>(num_shards), 0.0);
    a.clusterShard.assign(profile.nlist(), kCpuShard);
    a.localId.assign(profile.nlist(), -1);
    return a;
}

void
place(ShardAssignment &a, const AccessProfile &profile, cluster_id_t c,
      std::size_t shard)
{
    a.shardClusters[shard].push_back(c);
    a.clusterShard[static_cast<std::size_t>(c)] =
        static_cast<shard_id_t>(shard);
    a.localId[static_cast<std::size_t>(c)] =
        static_cast<std::int32_t>(a.shardClusters[shard].size() - 1);
    a.shardBytes[shard] += profile.clusterBytes(c);
}

} // namespace

ShardAssignment
IndexSplitter::split(const AccessProfile &profile, double rho,
                     int num_shards)
{
    if (rho > 0.0 && num_shards < 1)
        fatal("IndexSplitter::split: need at least one shard");
    return dealClusters(
        profile.hotClusters(rho),
        [&profile](cluster_id_t c) { return profile.clusterBytes(c); },
        profile.nlist(), rho, num_shards);
}

ShardAssignment
IndexSplitter::dealClusters(
    std::vector<cluster_id_t> clusters,
    const std::function<double(cluster_id_t)> &bytes_of,
    std::size_t nlist, double rho, int num_shards)
{
    num_shards = std::max(num_shards, 1);
    ShardAssignment a;
    a.rho = rho;
    a.shardClusters.resize(static_cast<std::size_t>(num_shards));
    a.shardBytes.assign(static_cast<std::size_t>(num_shards), 0.0);
    a.clusterShard.assign(nlist, kCpuShard);
    a.localId.assign(nlist, -1);

    // Sort clusters by footprint descending; round-robin dealing of a
    // descending sequence keeps shard footprints balanced.
    std::sort(clusters.begin(), clusters.end(),
              [&bytes_of](cluster_id_t x, cluster_id_t y) {
                  const double bx = bytes_of(x);
                  const double by = bytes_of(y);
                  if (bx != by)
                      return bx > by;
                  return x < y;
              });
    for (std::size_t i = 0; i < clusters.size(); ++i) {
        const cluster_id_t c = clusters[i];
        assert(c >= 0 && static_cast<std::size_t>(c) < nlist);
        const std::size_t shard =
            i % static_cast<std::size_t>(num_shards);
        a.clusterShard[static_cast<std::size_t>(c)] =
            static_cast<shard_id_t>(shard);
        a.localId[static_cast<std::size_t>(c)] =
            static_cast<std::int32_t>(a.shardClusters[shard].size());
        a.shardClusters[shard].push_back(c);
        a.shardBytes[shard] += bytes_of(c);
    }
    return a;
}

ShardAssignment
IndexSplitter::splitUniform(const AccessProfile &profile, double rho,
                            int num_shards)
{
    if (rho > 0.0 && num_shards < 1)
        fatal("IndexSplitter::splitUniform: need at least one shard");
    num_shards = std::max(num_shards, 1);
    ShardAssignment a = makeEmpty(profile, rho, num_shards);

    const auto hot = profile.hotClusters(rho);
    // Id-ordered dealing, ignoring sizes and access counts.
    std::vector<cluster_id_t> by_id(hot.begin(), hot.end());
    std::sort(by_id.begin(), by_id.end());
    for (std::size_t i = 0; i < by_id.size(); ++i)
        place(a, profile, by_id[i],
              i % static_cast<std::size_t>(num_shards));
    return a;
}

} // namespace vlr::core

#include "core/serving.h"

#include <algorithm>
#include <memory>

#include "common/log.h"
#include "common/stats.h"
#include "simcore/simulator.h"
#include "workload/arrival.h"

namespace vlr::core
{

double
sloLlmSecondsFor(const llm::LlmConfig &config)
{
    if (config.name == "Llama3-8B")
        return 0.217;
    if (config.name == "Qwen3-32B")
        return 0.191;
    if (config.name == "Llama3-70B")
        return 0.311;
    return 0.250;
}

double
measurePeak(const ServingConfig &config)
{
    return llm::measurePeakThroughput(config.llmConfig, config.gpuSpec,
                                      config.numGpus, config.promptTokens,
                                      config.outputTokens);
}

namespace
{

/** Per-request measurement record. */
struct RequestTrace
{
    sim_time_t arrival = 0.0;
    sim_time_t batchStart = -1.0;
    sim_time_t searchReady = -1.0;
    sim_time_t firstToken = -1.0;
    sim_time_t finish = -1.0;
    double prefillSeconds = 0.0;
    bool measured = false;
};

} // namespace

ServingResult
runServing(const ServingConfig &config, DatasetContext &ctx)
{
    const double slo_search = config.sloSearchOverride >= 0.0
                                  ? config.sloSearchOverride
                                  : ctx.spec().sloSearchSeconds;
    const double slo_llm = config.sloLlmOverride >= 0.0
                               ? config.sloLlmOverride
                               : sloLlmSecondsFor(config.llmConfig);

    const double peak = config.peakThroughputHint > 0.0
                            ? config.peakThroughputHint
                            : measurePeak(config);

    // --- resolve the retrieval strategy ---
    const int tp = config.llmConfig.tensorParallel;
    const int llm_gpus_if_shared = (config.numGpus / tp) * tp;
    const double kv_per_gpu =
        static_cast<double>(config.gpuSpec.memBytes) *
            (1.0 - config.gpuSpec.memReserveFraction) -
        static_cast<double>(config.llmConfig.weightBytes()) / tp;
    if (kv_per_gpu <= 0.0)
        fatal("runServing: model weights do not fit the GPU");

    RetrieverConfig rc;
    rc.kind = config.retriever;
    rc.numGpus = config.numGpus;
    rc.gpuSpec = config.gpuSpec;
    rc.sloSearchSeconds = slo_search;
    rc.peakLlmThroughput = peak;
    rc.kvBaselineBytes = kv_per_gpu * llm_gpus_if_shared;
    rc.fixedRho = config.fixedRho;
    RetrieverSetup setup = buildRetrieverSetup(rc, ctx);
    if (config.dispatcherOverride >= 0)
        setup.dispatcher = config.dispatcherOverride != 0;

    // --- build devices, LLM cluster, retrieval simulator ---
    sim::Simulator simulator;
    std::vector<std::unique_ptr<gpu::GpuDevice>> devices;
    std::vector<gpu::GpuDevice *> llm_gpus;
    for (int g = 0; g < config.numGpus; ++g) {
        devices.push_back(
            std::make_unique<gpu::GpuDevice>(g, config.gpuSpec));
        const auto bytes = static_cast<bytes_t>(
            setup.indexBytesPerGpu[static_cast<std::size_t>(g)]);
        devices.back()->setIndexBytes(bytes);
        if (g != setup.dedicatedGpu)
            llm_gpus.push_back(devices.back().get());
    }

    llm::LlmEngineParams engine_params;
    engine_params.contentionAlpha = config.contentionAlpha;
    // One prompt per prefill step: first-token latency then matches a
    // chunked-prefill engine instead of growing with the prefill batch.
    engine_params.maxPrefillTokens = config.promptTokens;
    llm::LlmCluster cluster(simulator, llm_gpus, config.llmConfig,
                            engine_params);
    if (cluster.numInstances() == 0)
        fatal("runServing: no LLM instance fits the remaining GPUs");

    Router router(setup.assignment, setup.pruneProbes);
    BatchSearchSimulator::Options bopts;
    bopts.dispatcher = setup.dispatcher;
    bopts.occupancyCap = setup.occupancyCap;
    bopts.bytesPerVector = ctx.bytesPerVector();
    bopts.pairScale = static_cast<double>(ctx.spec().paperNprobe) /
                      static_cast<double>(ctx.spec().nprobe);
    BatchSearchSimulator batch_sim(ctx.cpuModel(),
                                   gpu::GpuSearchModel(config.gpuSpec),
                                   bopts);

    // --- workload ---
    const auto arrivals = wl::poissonArrivals(
        config.arrivalRate, config.durationSeconds, config.seed);
    const std::size_t n_req = arrivals.size();
    std::vector<RequestTrace> traces(n_req);

    Rng pick(config.seed ^ 0xABCDEFULL);
    std::vector<std::size_t> plan_of(n_req);
    for (auto &p : plan_of)
        p = pick.uniformU64(ctx.testPlans().size());

    // --- retrieval serving loop ---
    std::vector<std::size_t> pending;
    bool retrieval_busy = false;
    RunningStats batch_sizes;
    RunningStats min_hits;
    std::size_t batches_done = 0;

    // Declared as std::function for the recursive re-arm on completion.
    std::function<void()> try_start_batch = [&]() {
        if (retrieval_busy || pending.empty())
            return;
        retrieval_busy = true;
        std::vector<std::size_t> batch;
        const std::size_t take =
            std::min(pending.size(), config.batching.maxBatch);
        batch.assign(pending.begin(), pending.begin() + take);
        pending.erase(pending.begin(), pending.begin() + take);

        std::vector<const wl::QueryPlan *> plans;
        plans.reserve(batch.size());
        for (const std::size_t r : batch)
            plans.push_back(&ctx.testPlans().plan(plan_of[r]));

        const RoutedBatch routed = router.route(plans);
        const BatchSearchOutcome outcome = batch_sim.simulate(routed);

        const sim_time_t t0 = simulator.now();
        batch_sizes.add(static_cast<double>(batch.size()));
        min_hits.add(outcome.minHitRate);

        for (const auto &busy : outcome.gpuBusy) {
            const int g = setup.shardToGpu.at(
                static_cast<std::size_t>(busy.shard));
            devices[static_cast<std::size_t>(g)]->addRetrievalInterval(
                t0 + busy.startOffset, t0 + busy.endOffset,
                busy.occupancy);
        }

        for (std::size_t qi = 0; qi < batch.size(); ++qi) {
            const std::size_t r = batch[qi];
            traces[r].batchStart = t0;
            simulator.schedule(outcome.queryReady[qi], [&, r, t0, qi,
                               off = outcome.queryReady[qi]]() {
                traces[r].searchReady = t0 + off;
                auto req = std::make_shared<llm::LlmRequest>();
                req->id = r;
                req->arrivalTime = traces[r].arrival;
                req->promptTokens = config.promptTokens;
                req->outputTokens = config.outputTokens;
                cluster.dispatch(std::move(req));
            });
        }

        simulator.schedule(outcome.batchSeconds, [&]() {
            retrieval_busy = false;
            if (++batches_done % 128 == 0) {
                for (auto &d : devices)
                    d->pruneIntervals(simulator.now() - 10.0);
            }
            try_start_batch();
        });
    };

    for (std::size_t r = 0; r < n_req; ++r) {
        traces[r].arrival = arrivals[r];
        traces[r].measured = arrivals[r] >= config.warmupSeconds;
        simulator.scheduleAt(arrivals[r], [&, r]() {
            pending.push_back(r);
            try_start_batch();
        });
    }

    cluster.setOnFirstToken([&](const llm::LlmRequestPtr &req) {
        RequestTrace &tr = traces[static_cast<std::size_t>(req->id)];
        tr.firstToken = req->firstTokenTime;
        tr.prefillSeconds = req->prefillSeconds;
    });
    cluster.setOnFinish([&](const llm::LlmRequestPtr &req) {
        traces[static_cast<std::size_t>(req->id)].finish = req->finishTime;
    });

    const double horizon =
        config.durationSeconds + config.drainSeconds;
    simulator.run(horizon);

    // --- metrics ---
    ServingResult res;
    res.system = retrieverName(config.retriever);
    res.arrivalRate = config.arrivalRate;
    res.sloTotalSeconds = slo_search + slo_llm;
    res.rho = setup.rho;
    res.gpuIndexBytes = setup.assignment.totalGpuBytes();
    res.llmInstances = cluster.numInstances();
    res.peakThroughput = peak;
    res.meanRetrievalBatch = batch_sizes.mean();
    res.meanMinHitRate = min_hits.mean();

    SampleSet ttft, e2e, queue_delay, search, prefill;
    for (const auto &tr : traces) {
        if (!tr.measured)
            continue;
        ++res.submitted;
        // Unserved requests count with a censored TTFT (horizon end):
        // they are SLO misses either way.
        const double t_first = tr.firstToken >= 0.0
                                   ? tr.firstToken - tr.arrival
                                   : horizon - tr.arrival;
        ttft.add(t_first);
        if (tr.firstToken >= 0.0)
            ++res.completedFirstToken;
        if (tr.finish >= 0.0) {
            ++res.completedFull;
            e2e.add(tr.finish - tr.arrival);
        }
        if (tr.searchReady >= 0.0 && tr.batchStart >= 0.0) {
            queue_delay.add(tr.batchStart - tr.arrival);
            search.add(tr.searchReady - tr.batchStart);
        }
        if (tr.firstToken >= 0.0)
            prefill.add(tr.prefillSeconds);
    }

    if (res.submitted > 0) {
        res.attainment = ttft.fractionBelow(res.sloTotalSeconds);
        const LatencySummary ts = summarizeLatency(ttft);
        res.meanTtft = ts.mean;
        res.p50Ttft = ts.p50;
        res.p90Ttft = ts.p90;
        res.p95Ttft = ts.p95;
        res.p99Ttft = ts.p99;
        res.meanE2e = e2e.mean();
        res.p90E2e = e2e.percentile(90);
        res.meanQueueDelay = queue_delay.mean();
        res.meanSearch = search.mean();
        res.p90Search = search.percentile(90);
        res.meanPrefill = prefill.mean();
    }
    return res;
}

} // namespace vlr::core

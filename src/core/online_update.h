/**
 * @file
 * Adaptive runtime index update (paper Section IV-B3, Fig. 9).
 *
 * The router monitors average hit rates and SLO attainment over request
 * windows; when observed hit rates diverge from the expectation, an
 * update cycle runs: re-profile access patterns, re-run the latency-
 * bounded partitioner, split shards and load them onto the GPUs. Stage
 * timings are modeled after the paper's measured breakdown: profiling
 * dominates, splitting is a memory-bandwidth copy, loading is a PCIe
 * transfer, and shards refresh one at a time with queries for a
 * refreshing shard temporarily routed to the CPU.
 */

#ifndef VLR_CORE_ONLINE_UPDATE_H
#define VLR_CORE_ONLINE_UPDATE_H

#include <functional>
#include <mutex>
#include <thread>

#include "core/context.h"
#include "core/partitioner.h"
#include "core/splitter.h"
#include "core/tiered_index.h"

namespace vlr::core
{

/** Wall-clock (simulated) cost of one rebuild, per stage. */
struct UpdateStageTimings
{
    double profilingSeconds = 0.0;
    double algorithmSeconds = 0.0;
    double splittingSeconds = 0.0;
    double loadingSeconds = 0.0;

    double
    total() const
    {
        return profilingSeconds + algorithmSeconds + splittingSeconds +
               loadingSeconds;
    }
};

/** Drift-detection thresholds (Section IV-B3). */
struct DriftMonitorParams
{
    /** Trigger when |observed - expected| mean hit rate exceeds this. */
    double hitRateDivergence = 0.10;
    /** ... and attainment over the window falls below this. */
    double attainmentThreshold = 0.85;
    /** Requests per monitoring window before counters reset. */
    std::size_t windowRequests = 2000;
};

/** Sliding-window statistics the router keeps at runtime. */
class DriftMonitor
{
  public:
    DriftMonitor(DriftMonitorParams params, double expected_hit_rate);

    /** Record one served request. */
    void record(double hit_rate, bool slo_met);

    /** True when the current window indicates distribution drift. */
    bool driftDetected() const;

    /** Reset counters (after an update or a window rollover). */
    void reset(double new_expected_hit_rate);

    double observedHitRate() const;
    double observedAttainment() const;
    std::size_t windowCount() const { return count_; }
    bool windowFull() const { return count_ >= params_.windowRequests; }

  private:
    DriftMonitorParams params_;
    double expectedHitRate_;
    double hitSum_ = 0.0;
    std::size_t sloMet_ = 0;
    std::size_t count_ = 0;
};

/**
 * Model of the rebuild pipeline timing.
 *
 * @param num_profile_queries calibration queries replayed through the
 *        coarse quantizer (the paper uses 0.5% of the stream).
 * @param partition_wall_seconds measured wall time of Algorithm 1.
 * @param host_copy_bw bytes/s for shard assembly in host memory.
 * @param pcie_bw bytes/s host-to-device for shard loading.
 */
UpdateStageTimings estimateUpdateTimings(
    const DatasetContext &ctx, double rho, int num_shards,
    std::size_t num_profile_queries, double partition_wall_seconds,
    double host_copy_bw = 12e9, double pcie_bw = 25e9);

/**
 * Run one full update cycle against a context whose query stream has
 * drifted: re-profile, re-partition, re-split. Returns the new
 * assignment and the simulated stage timings.
 */
struct UpdateOutcome
{
    PartitionResult partition;
    ShardAssignment assignment;
    UpdateStageTimings timings;
};

UpdateOutcome runUpdateCycle(DatasetContext &ctx, wl::QueryGenerator &gen,
                             const PartitionInputs &inputs, int num_shards);

/**
 * Live-path online updater: the executable-engine counterpart of
 * runUpdateCycle (paper Section IV-B3 against a real TieredIndex).
 *
 * The serving loop feeds record() with each request's (or batch's)
 * observed work-weighted hit rate and whether its search met the SLO.
 * When the drift monitor fires, the updater drains the tiered index's
 * live per-cluster access counts, re-ranks clusters by observed
 * popularity (promote/demote) and rebuilds every hot shard on a
 * background thread, swapping one snapshot when all backends are ready
 * — record() never blocks on the rebuild, and in-flight batches keep
 * searching the old snapshot until the atomic swap.
 *
 * Expectation semantics: the monitor's expected hit rate is a
 * *per-query mean* — the same quantity record() observes. After a
 * swap the updater does not reset it from
 * AccessProfile::meanWorkHitRate (a work-mass aggregate that sits
 * systematically above the per-query mean under skew, which
 * re-triggered rebuilds against placements that matched traffic
 * perfectly — churn visible in bench_repartition). Instead it
 * re-baselines: the first windowRequests/4 observations after the
 * swap are averaged into the new expectation while drift detection is
 * suspended, so only movement *relative to the rebuilt placement*
 * counts as drift.
 */
class OnlineUpdater
{
  public:
    struct Options
    {
        DriftMonitorParams drift;
        /** Coverage target for rebuilt hot sets. */
        double rho = 0.25;
    };

    /**
     * @param index tiered index to monitor and rebuild (must outlive
     *        the updater).
     * @param opts drift thresholds + rebuild coverage.
     * @param expected_hit_rate the planning-time *per-query mean* hit
     *        rate the monitor compares live observations against
     *        (e.g. HitRateEstimator::meanHitRate, not the work-mass
     *        aggregate AccessProfile::meanWorkHitRate).
     */
    OnlineUpdater(TieredIndex &index, Options opts,
                  double expected_hit_rate);
    ~OnlineUpdater();

    OnlineUpdater(const OnlineUpdater &) = delete;
    OnlineUpdater &operator=(const OnlineUpdater &) = delete;

    /**
     * Record one served request or batch. Thread-safe. Returns true
     * when this call launched a background repartition.
     */
    bool record(double hit_rate, bool slo_met);

    /**
     * Launch a background rebuild around an explicit hot set — the
     * SloAutopilot's actuation path. Same machinery as a drift-
     * triggered rebuild (replica build off-thread, one snapshot swap,
     * post-swap re-baselining) but the caller, not the drift monitor,
     * decides when and what. @p num_shards of 0 keeps the index's
     * current shard count. Returns false without acting when a
     * rebuild is already in flight.
     */
    bool requestRepartition(std::vector<cluster_id_t> hot_clusters,
                            std::size_t num_shards = 0);

    bool rebuildInFlight() const;
    std::size_t rebuildsCompleted() const;

    /**
     * Install a callback run on the background rebuild thread at the
     * start of every rebuild — drift-triggered and requested alike —
     * before the hot tier is re-replicated. The storage layer hangs
     * its delta merge here (storage::MmapColdTier::mergeDeltas), so
     * streamed vectors fold into the mapped artifact as part of the
     * same maintenance cycle that re-partitions the hot set. A hook
     * that throws is caught and logged; the rebuild proceeds (the
     * merge retries on the next cycle). Pass nullptr to clear.
     * Thread-safe; takes effect from the next rebuild launch.
     */
    void setRepartitionHook(std::function<void()> hook);

    /** Block until any in-flight rebuild has swapped in. */
    void waitForRebuild();

    /**
     * Current per-query-mean expectation: the constructor value until
     * the first rebuild, then the post-swap re-baselined observation
     * mean (updated once calibration completes).
     */
    double expectedHitRate() const;

    /**
     * True between a snapshot swap and the completion of the
     * post-swap re-baselining window (drift detection suspended).
     */
    bool calibrating() const;

    /** Tiered index this updater monitors (builder validation). */
    const TieredIndex &index() const { return index_; }
    /** Mutable view for control-plane callers (SloAutopilot). */
    TieredIndex &index() { return index_; }

  private:
    /** Observations averaged into a post-swap baseline. */
    std::size_t calibrationTargetLocked() const;

    TieredIndex &index_;
    Options opts_;

    mutable std::mutex mutex_;
    DriftMonitor monitor_;
    double expectedHitRate_;
    /** Post-swap re-baselining state (see class comment). */
    bool calibrating_ = false;
    double calibSum_ = 0.0;
    std::size_t calibCount_ = 0;
    std::thread worker_;
    bool inFlight_ = false;
    std::size_t completed_ = 0;
    /** Copied into each worker at launch (see setRepartitionHook). */
    std::function<void()> repartitionHook_;
};

} // namespace vlr::core

#endif // VLR_CORE_ONLINE_UPDATE_H

/**
 * @file
 * Tests for retrieval-quality metrics (recall@k, NDCG@k).
 */

#include <vector>

#include <gtest/gtest.h>

#include "vecsearch/eval.h"

namespace vlr::vs
{
namespace
{

std::vector<SearchHit>
hits(std::initializer_list<idx_t> ids)
{
    std::vector<SearchHit> v;
    float d = 0.f;
    for (idx_t id : ids)
        v.push_back({id, d += 1.f});
    return v;
}

TEST(Recall, PerfectResultIsOne)
{
    std::vector<std::vector<SearchHit>> res = {hits({1, 2, 3})};
    std::vector<std::vector<SearchHit>> gt = {hits({1, 2, 3})};
    EXPECT_DOUBLE_EQ(recallAtK(res, gt, 3), 1.0);
}

TEST(Recall, OrderDoesNotMatter)
{
    std::vector<std::vector<SearchHit>> res = {hits({3, 1, 2})};
    std::vector<std::vector<SearchHit>> gt = {hits({1, 2, 3})};
    EXPECT_DOUBLE_EQ(recallAtK(res, gt, 3), 1.0);
}

TEST(Recall, DisjointResultIsZero)
{
    std::vector<std::vector<SearchHit>> res = {hits({7, 8, 9})};
    std::vector<std::vector<SearchHit>> gt = {hits({1, 2, 3})};
    EXPECT_DOUBLE_EQ(recallAtK(res, gt, 3), 0.0);
}

TEST(Recall, PartialOverlap)
{
    std::vector<std::vector<SearchHit>> res = {hits({1, 2, 9, 10})};
    std::vector<std::vector<SearchHit>> gt = {hits({1, 2, 3, 4})};
    EXPECT_DOUBLE_EQ(recallAtK(res, gt, 4), 0.5);
}

TEST(Recall, AveragesOverQueries)
{
    std::vector<std::vector<SearchHit>> res = {hits({1, 2}), hits({9, 8})};
    std::vector<std::vector<SearchHit>> gt = {hits({1, 2}), hits({1, 2})};
    EXPECT_DOUBLE_EQ(recallAtK(res, gt, 2), 0.5);
}

TEST(Recall, KSmallerThanListTruncates)
{
    // Only the top-1 of the result list counts for recall@1.
    std::vector<std::vector<SearchHit>> res = {hits({9, 1})};
    std::vector<std::vector<SearchHit>> gt = {hits({1, 2})};
    EXPECT_DOUBLE_EQ(recallAtK(res, gt, 1), 0.0);
}

TEST(Ndcg, PerfectOrderIsOne)
{
    std::vector<std::vector<SearchHit>> res = {hits({1, 2, 3, 4})};
    std::vector<std::vector<SearchHit>> gt = {hits({1, 2, 3, 4})};
    EXPECT_NEAR(ndcgAtK(res, gt, 4), 1.0, 1e-12);
}

TEST(Ndcg, EmptyOverlapIsZero)
{
    std::vector<std::vector<SearchHit>> res = {hits({5, 6})};
    std::vector<std::vector<SearchHit>> gt = {hits({1, 2})};
    EXPECT_DOUBLE_EQ(ndcgAtK(res, gt, 2), 0.0);
}

TEST(Ndcg, RelevantEarlierScoresHigher)
{
    // One relevant doc at rank 1 vs at rank 3.
    std::vector<std::vector<SearchHit>> early = {hits({1, 8, 9})};
    std::vector<std::vector<SearchHit>> late = {hits({8, 9, 1})};
    std::vector<std::vector<SearchHit>> gt = {hits({1, 2, 3})};
    EXPECT_GT(ndcgAtK(early, gt, 3), ndcgAtK(late, gt, 3));
}

TEST(Ndcg, BinaryRelevanceUsesGroundTruthMembership)
{
    // Two of three relevant, in the best possible order for them.
    std::vector<std::vector<SearchHit>> res = {hits({1, 2, 9})};
    std::vector<std::vector<SearchHit>> gt = {hits({1, 2, 3})};
    const double v = ndcgAtK(res, gt, 3);
    EXPECT_GT(v, 0.5);
    EXPECT_LT(v, 1.0);
}

TEST(Ndcg, AveragesOverQueries)
{
    std::vector<std::vector<SearchHit>> res = {hits({1}), hits({9})};
    std::vector<std::vector<SearchHit>> gt = {hits({1}), hits({1})};
    EXPECT_NEAR(ndcgAtK(res, gt, 1), 0.5, 1e-12);
}

} // namespace
} // namespace vlr::vs

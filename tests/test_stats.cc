/**
 * @file
 * Tests for descriptive statistics: running moments, percentile sets,
 * concentration curves and histograms.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace vlr
{
namespace
{

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation)
{
    const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
    RunningStats s;
    for (double x : xs)
        s.add(x);

    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= xs.size();
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= xs.size();

    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 16.0);
    EXPECT_DOUBLE_EQ(s.sum(), 31.0);
}

TEST(RunningStats, MergeEqualsSequential)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity)
{
    RunningStats a, empty;
    a.add(3.0);
    a.add(5.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_NEAR(a.mean(), 4.0, 1e-12);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

// --- SampleSet -------------------------------------------------------

TEST(SampleSet, PercentileEndpoints)
{
    SampleSet s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
}

TEST(SampleSet, PercentileInterpolatesLikeNumpy)
{
    SampleSet s;
    s.addAll(std::vector<double>{1.0, 2.0, 3.0, 4.0});
    // numpy.percentile([1,2,3,4], 50) == 2.5
    EXPECT_NEAR(s.percentile(50.0), 2.5, 1e-12);
    // numpy.percentile([1,2,3,4], 25) == 1.75
    EXPECT_NEAR(s.percentile(25.0), 1.75, 1e-12);
}

TEST(SampleSet, PercentileSingleSample)
{
    SampleSet s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 7.0);
    EXPECT_DOUBLE_EQ(s.percentile(99.0), 7.0);
}

TEST(SampleSet, FractionBelow)
{
    SampleSet s;
    for (int i = 1; i <= 10; ++i)
        s.add(static_cast<double>(i));
    EXPECT_NEAR(s.fractionBelow(5.0), 0.5, 1e-12);
    EXPECT_NEAR(s.fractionBelow(0.5), 0.0, 1e-12);
    EXPECT_NEAR(s.fractionBelow(10.0), 1.0, 1e-12);
}

TEST(SampleSet, AddAfterQueryResorts)
{
    SampleSet s;
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 5.0);
    s.add(9.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 9.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(SampleSet, MeanVarianceMinMax)
{
    SampleSet s;
    s.addAll(std::vector<double>{2.0, 4.0, 6.0});
    EXPECT_NEAR(s.mean(), 4.0, 1e-12);
    EXPECT_NEAR(s.variance(), 8.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 6.0);
}

TEST(SampleSet, ClearEmpties)
{
    SampleSet s;
    s.add(1.0);
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
}

// --- Concentration curve (Fig. 5 machinery) --------------------------

TEST(Concentration, UniformWeightsGiveDiagonal)
{
    const std::vector<double> w(100, 1.0);
    const auto curve = weightConcentrationCurve(w);
    for (const auto &pt : curve)
        EXPECT_NEAR(pt.cum, pt.x, 0.02);
}

TEST(Concentration, SkewedWeightsCurveAboveDiagonal)
{
    std::vector<double> w(100);
    for (int i = 0; i < 100; ++i)
        w[i] = 1.0 / (1.0 + i); // Zipf-ish
    const auto curve = weightConcentrationCurve(w);
    // At 20% coverage, far more than 20% of the mass is covered.
    EXPECT_GT(evalConcentration(curve, 0.2), 0.5);
}

TEST(Concentration, EndpointsAreZeroAndOne)
{
    std::vector<double> w = {5.0, 1.0, 3.0};
    const auto curve = weightConcentrationCurve(w);
    EXPECT_NEAR(evalConcentration(curve, 0.0), 0.0, 1e-9);
    EXPECT_NEAR(evalConcentration(curve, 1.0), 1.0, 1e-9);
}

TEST(Concentration, EvalIsMonotone)
{
    std::vector<double> w(64);
    for (int i = 0; i < 64; ++i)
        w[i] = std::pow(0.9, i);
    const auto curve = weightConcentrationCurve(w);
    double prev = -1.0;
    for (double c = 0.0; c <= 1.0; c += 0.05) {
        const double v = evalConcentration(curve, c);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Concentration, OrderIndependent)
{
    std::vector<double> a = {10.0, 1.0, 5.0, 2.0};
    std::vector<double> b = {1.0, 2.0, 5.0, 10.0};
    const auto ca = weightConcentrationCurve(a);
    const auto cb = weightConcentrationCurve(b);
    for (double c = 0.0; c <= 1.0; c += 0.1)
        EXPECT_NEAR(evalConcentration(ca, c), evalConcentration(cb, c),
                    1e-9);
}

// --- Histogram -------------------------------------------------------

TEST(Histogram, BinsCoverRange)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.numBins(), 5u);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(4), 10.0);
}

TEST(Histogram, CountsLandInCorrectBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(1.0);  // bin 0
    h.add(3.0);  // bin 1
    h.add(9.99); // bin 4
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.totalCount(), 3u);
}

TEST(Histogram, OutOfRangeClamps)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(42.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(Histogram, DensitiesSumToOne)
{
    Histogram h(0.0, 1.0, 10);
    for (int i = 0; i < 57; ++i)
        h.add(i * 0.017);
    const auto d = h.densities();
    double sum = 0.0;
    for (double v : d)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

} // namespace
} // namespace vlr

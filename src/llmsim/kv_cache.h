/**
 * @file
 * Paged KV-cache block manager in the style of vLLM's PagedAttention.
 * Capacity comes from the GPU devices' free memory after weights and
 * vector-index shards — the contention surface the paper partitions.
 */

#ifndef VLR_LLMSIM_KV_CACHE_H
#define VLR_LLMSIM_KV_CACHE_H

#include <cstddef>

#include "common/types.h"

namespace vlr::llm
{

/**
 * Block-granular KV cache accounting. Sequences reserve whole blocks;
 * the engine reserves a sequence's worst-case footprint (prompt +
 * max output) at admission, which with the paper's fixed 1024/256
 * request shapes is exact and avoids preemption.
 */
class PagedKvCache
{
  public:
    /**
     * @param capacity_bytes total KV memory across the instance's GPUs.
     * @param kv_bytes_per_token from the model config.
     * @param block_tokens tokens per block (vLLM default 16).
     */
    PagedKvCache(bytes_t capacity_bytes, bytes_t kv_bytes_per_token,
                 std::size_t block_tokens = 16);

    std::size_t totalBlocks() const { return totalBlocks_; }
    std::size_t freeBlocks() const { return totalBlocks_ - usedBlocks_; }
    std::size_t usedBlocks() const { return usedBlocks_; }
    std::size_t blockTokens() const { return blockTokens_; }

    /** Blocks needed to hold `tokens` tokens. */
    std::size_t blocksForTokens(std::size_t tokens) const;

    /** Max sequences of the given token length admissible when empty. */
    std::size_t maxConcurrentSequences(std::size_t tokens_per_seq) const;

    /** Try to reserve n blocks; returns false without side effects. */
    bool tryReserve(std::size_t blocks);

    /** Release previously reserved blocks. */
    void release(std::size_t blocks);

    double
    utilization() const
    {
        return totalBlocks_ ? static_cast<double>(usedBlocks_) /
                                  static_cast<double>(totalBlocks_)
                            : 0.0;
    }

  private:
    std::size_t blockTokens_;
    bytes_t bytesPerBlock_;
    std::size_t totalBlocks_;
    std::size_t usedBlocks_ = 0;
};

} // namespace vlr::llm

#endif // VLR_LLMSIM_KV_CACHE_H

#include "core/retriever.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace vlr::core
{

std::string
retrieverName(RetrieverKind kind)
{
    switch (kind) {
      case RetrieverKind::CpuOnly: return "CPU-Only";
      case RetrieverKind::DedicatedGpu: return "DED-GPU";
      case RetrieverKind::AllGpu: return "ALL-GPU";
      case RetrieverKind::VectorLite: return "vLiteRAG";
      case RetrieverKind::HedraRag: return "HedraRAG";
    }
    return "?";
}

namespace
{

/** Hot clusters (by access) that fit in `capacity` bytes, as coverage. */
double
coverageFittingBytes(const AccessProfile &profile, double capacity)
{
    double lo = 0.0, hi = 1.0;
    if (profile.indexBytes(1.0) <= capacity)
        return 1.0;
    for (int i = 0; i < 30; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (profile.indexBytes(mid) <= capacity)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

void
fillGpuBytes(RetrieverSetup &setup, int num_gpus)
{
    setup.indexBytesPerGpu.assign(static_cast<std::size_t>(num_gpus), 0.0);
    for (std::size_t s = 0; s < setup.assignment.numShards(); ++s) {
        const int g = setup.shardToGpu.at(s);
        setup.indexBytesPerGpu.at(static_cast<std::size_t>(g)) +=
            setup.assignment.shardBytes[s];
    }
}

} // namespace

RetrieverSetup
buildRetrieverSetup(const RetrieverConfig &config, const DatasetContext &ctx)
{
    RetrieverSetup setup;
    setup.kind = config.kind;
    const AccessProfile &profile = ctx.profile();
    const int n_gpus = config.numGpus;

    switch (config.kind) {
      case RetrieverKind::CpuOnly: {
        setup.assignment = IndexSplitter::split(profile, 0.0, 1);
        setup.shardToGpu = {0};
        setup.pruneProbes = true;
        setup.dispatcher = false;
        setup.occupancyCap = 0.0;
        setup.rho = 0.0;
        break;
      }
      case RetrieverKind::DedicatedGpu: {
        // Whole index (or the hottest part that fits) on one GPU that
        // the LLM pool loses.
        const double capacity =
            static_cast<double>(config.gpuSpec.memBytes) *
            (1.0 - config.gpuSpec.memReserveFraction);
        const double rho = config.fixedRho >= 0.0
                               ? config.fixedRho
                               : coverageFittingBytes(profile, capacity);
        setup.assignment = IndexSplitter::split(profile, rho, 1);
        setup.dedicatedGpu = n_gpus - 1;
        setup.shardToGpu = {setup.dedicatedGpu};
        setup.pruneProbes = true;
        setup.dispatcher = false;
        setup.occupancyCap = 1.0;
        setup.rho = rho;
        break;
      }
      case RetrieverKind::AllGpu: {
        setup.assignment = IndexSplitter::splitUniform(profile, 1.0,
                                                       n_gpus);
        setup.shardToGpu.resize(static_cast<std::size_t>(n_gpus));
        for (int g = 0; g < n_gpus; ++g)
            setup.shardToGpu[static_cast<std::size_t>(g)] = g;
        setup.pruneProbes = false;
        setup.dispatcher = false;
        setup.occupancyCap = 1.0;
        setup.rho = 1.0;
        break;
      }
      case RetrieverKind::VectorLite: {
        double rho = config.fixedRho;
        if (rho < 0.0) {
            PartitionInputs in;
            in.sloSearchSeconds = config.sloSearchSeconds;
            in.kvBaselineBytes = config.kvBaselineBytes;
            in.peakLlmThroughput = config.peakLlmThroughput;
            LatencyBoundedPartitioner part(ctx.perfModel(),
                                           ctx.estimator(), profile);
            setup.partition = part.partition(in);
            rho = setup.partition.rho;
        }
        setup.assignment = IndexSplitter::split(profile, rho, n_gpus);
        setup.shardToGpu.resize(static_cast<std::size_t>(n_gpus));
        for (int g = 0; g < n_gpus; ++g)
            setup.shardToGpu[static_cast<std::size_t>(g)] = g;
        setup.pruneProbes = true;
        setup.dispatcher = true;
        setup.occupancyCap = config.vliteOccupancyCap;
        setup.rho = rho;
        break;
      }
      case RetrieverKind::HedraRag: {
        // Throughput balancing: smallest coverage whose estimated
        // retrieval throughput keeps up with the (KV-reduced) LLM; 0
        // when CPU-only retrieval already outpaces the LLM. HedraRAG
        // measures batched retrieval throughput empirically, and a
        // batch completes with its slowest query, so the balance uses
        // the tail (minimum) batch hit rate — which is what drives it
        // to cache far more than a latency-aware partition needs
        // (paper Fig. 13: 73% vs 31.5%).
        double rho = config.fixedRho;
        if (rho < 0.0) {
            const double b =
                static_cast<double>(config.hedraRefBatch);
            rho = 0.0;
            for (double cand = 0.0; cand <= 1.0001; cand += 0.01) {
                const double eta = ctx.estimator().etaMin(
                    cand, config.hedraRefBatch);
                const double lat = ctx.perfModel().hybridLatency(b, eta);
                const double ret_thr = b / std::max(lat, 1e-6);
                const double kv_left = std::max(
                    0.0, config.kvBaselineBytes -
                             profile.indexBytes(cand));
                const double mu =
                    config.kvBaselineBytes > 0.0
                        ? config.peakLlmThroughput * kv_left /
                              config.kvBaselineBytes
                        : config.peakLlmThroughput;
                rho = cand;
                if (ret_thr >= mu)
                    break;
            }
        }
        setup.assignment = IndexSplitter::splitUniform(profile, rho,
                                                       n_gpus);
        setup.shardToGpu.resize(static_cast<std::size_t>(n_gpus));
        for (int g = 0; g < n_gpus; ++g)
            setup.shardToGpu[static_cast<std::size_t>(g)] = g;
        setup.pruneProbes = false;
        setup.dispatcher = false;
        setup.occupancyCap = 1.0;
        setup.rho = rho;
        break;
      }
    }

    fillGpuBytes(setup, n_gpus);
    return setup;
}

} // namespace vlr::core

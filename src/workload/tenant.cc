#include "workload/tenant.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <numbers>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vlr::wl
{

namespace
{

/** splitmix64 finalizer: decorrelates per-tenant seed streams. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** Instantaneous arrival rate of @p spec at time @p t. */
double
rateAt(const TenantSpec &spec, double t)
{
    // Tenant churn: outside the active window the tenant is absent
    // entirely (end 0 = active to the horizon).
    if (t < spec.activeStartSeconds)
        return 0.0;
    if (spec.activeEndSeconds > 0.0 && t >= spec.activeEndSeconds)
        return 0.0;
    double r = spec.arrivalRate;
    if (spec.diurnalAmplitude > 0.0 && spec.diurnalPeriodSeconds > 0.0)
        r *= 1.0 + spec.diurnalAmplitude *
                       std::sin(2.0 * std::numbers::pi * t /
                                spec.diurnalPeriodSeconds);
    if (spec.burstFactor != 1.0 && t >= spec.burstStartSeconds &&
        t < spec.burstEndSeconds)
        r *= spec.burstFactor;
    return std::max(r, 0.0);
}

/**
 * Rotate the top-fraction popularity ranks (same move as
 * QueryGenerator::drift): previously cold clusters become hot.
 */
void
applyFlip(std::vector<std::uint32_t> &order, double fraction)
{
    const auto n = static_cast<std::size_t>(
        std::clamp(fraction, 0.0, 1.0) *
        static_cast<double>(order.size()));
    if (n < 2)
        return;
    std::vector<std::uint32_t> head(order.begin(), order.begin() + n);
    std::rotate(head.begin(), head.begin() + n / 2, head.end());
    std::copy(head.begin(), head.end(), order.begin());
}

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        throw std::runtime_error(
            "WorkloadTrace: truncated or unreadable trace stream");
    return v;
}

constexpr char kTraceMagic[8] = {'V', 'L', 'R', 'W', 'T', 'R', '0', '1'};

} // namespace

void
TenantSpec::validate() const
{
    if (arrivalRate <= 0.0)
        throw std::invalid_argument(
            "TenantSpec: arrivalRate must be > 0");
    if (diurnalAmplitude < 0.0 || diurnalAmplitude >= 1.0)
        throw std::invalid_argument(
            "TenantSpec: diurnalAmplitude must be in [0, 1)");
    if (diurnalAmplitude > 0.0 && diurnalPeriodSeconds <= 0.0)
        throw std::invalid_argument(
            "TenantSpec: diurnal modulation needs a period > 0");
    if (burstFactor < 1.0)
        throw std::invalid_argument(
            "TenantSpec: burstFactor must be >= 1");
    if (burstEndSeconds < burstStartSeconds)
        throw std::invalid_argument(
            "TenantSpec: burst window must not end before it starts");
    if (activeStartSeconds < 0.0)
        throw std::invalid_argument(
            "TenantSpec: activeStartSeconds must be >= 0");
    if (activeEndSeconds != 0.0 &&
        activeEndSeconds <= activeStartSeconds)
        throw std::invalid_argument(
            "TenantSpec: active window must end after it starts "
            "(activeEndSeconds 0 means the horizon)");
    if (zipfTheta < 0.0)
        throw std::invalid_argument(
            "TenantSpec: zipfTheta must be >= 0");
    if (hotspotFlipFraction < 0.0 || hotspotFlipFraction > 1.0)
        throw std::invalid_argument(
            "TenantSpec: hotspotFlipFraction must be in [0, 1]");
    for (std::size_t i = 0; i < hotspotFlipSeconds.size(); ++i) {
        if (hotspotFlipSeconds[i] < 0.0 ||
            (i > 0 &&
             hotspotFlipSeconds[i] < hotspotFlipSeconds[i - 1]))
            throw std::invalid_argument(
                "TenantSpec: hotspotFlipSeconds must be ascending and "
                ">= 0");
    }
    if (deadlineSeconds < 0.0)
        throw std::invalid_argument(
            "TenantSpec: deadlineSeconds must be >= 0");
}

void
WorkloadScript::validate() const
{
    if (horizonSeconds <= 0.0)
        throw std::invalid_argument(
            "WorkloadScript: horizonSeconds must be > 0");
    if (tenants.empty())
        throw std::invalid_argument(
            "WorkloadScript: at least one tenant required");
    for (const TenantSpec &t : tenants)
        t.validate();
    for (std::size_t i = 0; i < tenants.size(); ++i)
        for (std::size_t j = i + 1; j < tenants.size(); ++j)
            if (tenants[i].tenant == tenants[j].tenant)
                throw std::invalid_argument(
                    "WorkloadScript: duplicate tenant id");
}

WorkloadTrace
WorkloadTrace::generate(const WorkloadScript &script,
                        const SyntheticDataset &dataset,
                        std::uint64_t seed)
{
    script.validate();
    assert(dataset.hasStats());
    const DatasetSpec &dspec = dataset.spec();

    WorkloadTrace trace;
    trace.dim_ = dspec.dim;

    for (const TenantSpec &spec : script.tenants) {
        // Independent stream per tenant, keyed by the tenant id so
        // adding or reordering tenants never perturbs the others.
        Rng rng(mix64(seed) ^ mix64(spec.tenant.value));
        const ZipfSampler zipf(dspec.numClusters, spec.zipfTheta);

        // Popularity rank -> cluster id, biased toward larger
        // clusters (Section III-B) with a per-tenant random
        // tie-break, so tenants overlap on the big clusters but
        // diverge in the tail.
        std::vector<std::uint32_t> order(dspec.numClusters);
        std::iota(order.begin(), order.end(), 0);
        const auto &sizes = dataset.clusterSizes();
        std::vector<std::uint64_t> salt(order.size());
        for (auto &s : salt)
            s = rng.nextU64();
        std::sort(order.begin(), order.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      if (sizes[a] != sizes[b])
                          return sizes[a] > sizes[b];
                      return salt[a] < salt[b];
                  });

        // Non-homogeneous Poisson by thinning: candidates at the
        // tenant's peak rate, accepted with probability
        // rate(t) / peak. Hotspot flips apply as candidate time
        // crosses each scheduled flip.
        const double peak = spec.arrivalRate *
                            (1.0 + spec.diurnalAmplitude) *
                            spec.burstFactor;
        std::size_t next_flip = 0;
        double t = 0.0;
        for (;;) {
            t += rng.exponential(peak);
            if (t >= script.horizonSeconds)
                break;
            while (next_flip < spec.hotspotFlipSeconds.size() &&
                   spec.hotspotFlipSeconds[next_flip] <= t) {
                applyFlip(order, spec.hotspotFlipFraction);
                ++next_flip;
            }
            if (rng.uniform() >= rateAt(spec, t) / peak)
                continue;

            ScriptedRequest r;
            r.atSeconds = t;
            r.tenant = spec.tenant;
            r.k = spec.k;
            r.nprobe = spec.nprobe;
            r.deadlineSeconds = spec.deadlineSeconds;
            r.priority = spec.priority;
            const std::size_t rank = zipf.sample(rng);
            const float *center = dataset.centers().data() +
                                  order[rank] * dspec.dim;
            r.query.resize(dspec.dim);
            for (std::size_t j = 0; j < dspec.dim; ++j)
                r.query[j] =
                    center[j] + static_cast<float>(rng.gaussian(
                                    0.0, dspec.queryStd));
            trace.requests_.push_back(std::move(r));
        }
    }

    // Time-ordered merge; stable sort keeps script order for the
    // (measure-zero) case of equal arrival times.
    std::stable_sort(trace.requests_.begin(), trace.requests_.end(),
                     [](const ScriptedRequest &a,
                        const ScriptedRequest &b) {
                         return a.atSeconds < b.atSeconds;
                     });
    return trace;
}

std::size_t
WorkloadTrace::countForTenant(core::TenantId tenant) const
{
    std::size_t n = 0;
    for (const ScriptedRequest &r : requests_)
        if (r.tenant == tenant)
            ++n;
    return n;
}

core::SearchRequest
WorkloadTrace::request(std::size_t i) const
{
    const ScriptedRequest &r = requests_.at(i);
    core::SearchRequest req;
    req.query = std::span<const float>(r.query.data(), r.query.size());
    req.k = r.k;
    req.nprobe = r.nprobe;
    req.deadlineSeconds = r.deadlineSeconds;
    req.priority = r.priority;
    req.tenant = r.tenant;
    return req;
}

void
WorkloadTrace::save(std::ostream &os) const
{
    os.write(kTraceMagic, sizeof(kTraceMagic));
    writePod(os, static_cast<std::uint64_t>(dim_));
    writePod(os, static_cast<std::uint64_t>(requests_.size()));
    for (const ScriptedRequest &r : requests_) {
        writePod(os, r.atSeconds);
        // The typed id serializes as its raw u64, so traces written
        // before TenantId load unchanged.
        writePod(os, r.tenant.value);
        writePod(os, static_cast<std::uint64_t>(r.k));
        writePod(os, static_cast<std::uint64_t>(r.nprobe));
        writePod(os, r.deadlineSeconds);
        writePod(os, static_cast<std::int32_t>(r.priority));
        assert(r.query.size() == dim_);
        os.write(reinterpret_cast<const char *>(r.query.data()),
                 static_cast<std::streamsize>(dim_ * sizeof(float)));
    }
    if (!os)
        throw std::runtime_error("WorkloadTrace: write failed");
}

void
WorkloadTrace::saveFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("WorkloadTrace: cannot open " + path);
    save(os);
}

WorkloadTrace
WorkloadTrace::load(std::istream &is)
{
    char magic[sizeof(kTraceMagic)];
    is.read(magic, sizeof(magic));
    if (!is || !std::equal(std::begin(magic), std::end(magic),
                           std::begin(kTraceMagic)))
        throw std::runtime_error(
            "WorkloadTrace: bad magic (not a trace file?)");
    WorkloadTrace trace;
    trace.dim_ =
        static_cast<std::size_t>(readPod<std::uint64_t>(is));
    const auto count =
        static_cast<std::size_t>(readPod<std::uint64_t>(is));
    if (trace.dim_ == 0)
        throw std::runtime_error("WorkloadTrace: zero dim in header");
    trace.requests_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        ScriptedRequest r;
        r.atSeconds = readPod<double>(is);
        r.tenant.value = readPod<std::uint64_t>(is);
        r.k = static_cast<std::size_t>(readPod<std::uint64_t>(is));
        r.nprobe =
            static_cast<std::size_t>(readPod<std::uint64_t>(is));
        r.deadlineSeconds = readPod<double>(is);
        r.priority = static_cast<int>(readPod<std::int32_t>(is));
        r.query.resize(trace.dim_);
        is.read(reinterpret_cast<char *>(r.query.data()),
                static_cast<std::streamsize>(trace.dim_ *
                                             sizeof(float)));
        if (!is)
            throw std::runtime_error(
                "WorkloadTrace: truncated trace stream");
        trace.requests_.push_back(std::move(r));
    }
    return trace;
}

WorkloadTrace
WorkloadTrace::loadFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("WorkloadTrace: cannot open " + path);
    return load(is);
}

} // namespace vlr::wl

/**
 * @file
 * Shared per-dataset experiment state: the synthetic dataset, its probe
 * plans for calibration (train) and serving (test) query pools, the
 * access profile, hit-rate estimator and fitted performance model.
 * Benches build one context per dataset and reuse it across systems and
 * arrival rates.
 */

#ifndef VLR_CORE_CONTEXT_H
#define VLR_CORE_CONTEXT_H

#include <memory>

#include "core/access_profile.h"
#include "core/hitrate_estimator.h"
#include "core/perf_model.h"
#include "simgpu/search_cost.h"
#include "workload/dataset.h"
#include "workload/plans.h"

namespace vlr::core
{

class DatasetContext
{
  public:
    struct Options
    {
        std::size_t trainQueries = 1500;
        std::size_t testQueries = 3000;
        gpu::CpuSpec cpuSpec = gpu::xeon8462Spec();
        std::uint64_t seed = 5;
        /** Relative noise injected into latency profiling. */
        double profileNoiseStd = 0.02;
    };

    explicit DatasetContext(wl::DatasetSpec spec);
    DatasetContext(wl::DatasetSpec spec, Options opts);

    const wl::DatasetSpec &spec() const { return spec_; }
    const wl::SyntheticDataset &dataset() const { return dataset_; }
    const wl::PlanSet &trainPlans() const { return trainPlans_; }
    const wl::PlanSet &testPlans() const { return testPlans_; }
    const AccessProfile &profile() const { return *profile_; }
    const HitRateEstimator &estimator() const { return *estimator_; }
    const gpu::CpuSearchModel &cpuModel() const { return cpuModel_; }
    const SearchPerfModel &perfModel() const { return perfModel_; }

    /** Paper-scale index bytes per paper-scale vector. */
    double bytesPerVector() const;

    /**
     * Re-profile against a drifted query stream: regenerates train and
     * test plans from the generator's current popularity law and
     * rebuilds the profile + estimator (the online-update path).
     */
    void reprofile(wl::QueryGenerator &gen);

    /** Generate test plans from a generator without touching profile. */
    wl::PlanSet plansFor(wl::QueryGenerator &gen, std::size_t n) const;

  private:
    wl::DatasetSpec spec_;
    Options opts_;
    wl::SyntheticDataset dataset_;
    std::shared_ptr<vs::FlatCoarseQuantizer> cq_;
    std::vector<double> clusterWork_;
    wl::PlanSet trainPlans_;
    wl::PlanSet testPlans_;
    std::unique_ptr<AccessProfile> profile_;
    std::unique_ptr<HitRateEstimator> estimator_;
    gpu::CpuSearchModel cpuModel_;
    SearchPerfModel perfModel_;
};

} // namespace vlr::core

#endif // VLR_CORE_CONTEXT_H

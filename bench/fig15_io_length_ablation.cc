/**
 * @file
 * Figure 15 reproduction: P90 TTFT sensitivity to LLM input and output
 * lengths on the ORCAS-2K index for Llama3-8B and Llama3-70B, across
 * CPU-Only, ALL-GPU and vLiteRAG.
 *
 * Left sweep: input 512 / 1024 / 2048 tokens at 256 output tokens.
 * Right sweep: output 128 / 256 / 512 tokens at 1024 input tokens.
 *
 * Expected shape: longer inputs raise prefill cost and shift SLO
 * violations to lower rates; longer outputs shrink the compliant range
 * via generation time and KV pressure. vLiteRAG stays serviceable over
 * a wider range than the baselines in every configuration.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

namespace
{

void
sweep(core::DatasetContext &ctx, const wl::DatasetSpec &spec,
      const llm::LlmConfig &model, std::size_t prompt,
      std::size_t output, bench::PeakCache &peaks)
{
    auto base = bench::makeServingConfig(
        spec, model, core::RetrieverKind::CpuOnly, 1.0);
    base.promptTokens = prompt;
    base.outputTokens = output;
    const double peak = peaks.peak(base);
    const auto rates = bench::sweepRates(peak, 4, 1.1);

    TextTable t({"system", "rate (r/s)", "P90 TTFT (ms)",
                 "SLO attain"});
    for (const auto kind :
         {core::RetrieverKind::CpuOnly, core::RetrieverKind::AllGpu,
          core::RetrieverKind::VectorLite}) {
        for (const double rate : rates) {
            auto cfg = bench::makeServingConfig(spec, model, kind, rate);
            cfg.promptTokens = prompt;
            cfg.outputTokens = output;
            cfg.peakThroughputHint = peak;
            // SLO_LLM is held fixed across configurations (paper).
            const auto res = core::runServing(cfg, ctx);
            t.addRow({res.system, TextTable::num(rate, 1),
                      TextTable::num(res.p90Ttft * 1e3, 0),
                      TextTable::pct(res.attainment)});
        }
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 15: input / output length ablation (ORCAS-2K)");

    const auto spec = wl::orcas2kSpec();
    core::DatasetContext ctx(spec);
    bench::PeakCache peaks;

    for (const auto &model : {llm::llama3_8b(), llm::llama3_70b()}) {
        std::cout << "\n--- " << model.name
                  << ": input length sweep (output 256) ---\n";
        for (const std::size_t prompt : {512ul, 1024ul, 2048ul}) {
            std::cout << "\ninput " << prompt << " / output 256:\n";
            sweep(ctx, spec, model, prompt, 256, peaks);
        }
        std::cout << "\n--- " << model.name
                  << ": output length sweep (input 1024) ---\n";
        for (const std::size_t output : {128ul, 512ul}) {
            std::cout << "\ninput 1024 / output " << output << ":\n";
            sweep(ctx, spec, model, 1024, output, peaks);
        }
    }

    std::cout << "\npaper: longer inputs/outputs shift SLO violations "
                 "to lower arrival rates; vLiteRAG maintains "
                 "serviceability over a wider range than the baselines "
                 "across both dimensions.\n";
    return 0;
}

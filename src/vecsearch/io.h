/**
 * @file
 * Binary serialization for trained vector-search artifacts.
 *
 * Training PQ codebooks and coarse-quantizer centroids is the
 * expensive, offline part of index construction (the paper's artifact
 * reports 40-50 hours of preprocessing); these helpers persist them so
 * deployments rebuild inverted lists from raw vectors without
 * re-training. Format: little-endian, versioned magic header.
 */

#ifndef VLR_VECSEARCH_IO_H
#define VLR_VECSEARCH_IO_H

#include <iosfwd>
#include <memory>

#include "vecsearch/flat_index.h"
#include "vecsearch/ivf.h"
#include "vecsearch/pq.h"

namespace vlr::vs
{

/** Serialize a trained product quantizer. @pre pq.isTrained(). */
void savePq(std::ostream &os, const ProductQuantizer &pq);

/** Load a product quantizer; fatal() on format mismatch. */
ProductQuantizer loadPq(std::istream &is);

/** Serialize a flat index (dim, metric and raw vectors). */
void saveFlatIndex(std::ostream &os, const FlatIndex &index);

/** Load a flat index; fatal() on format mismatch. */
FlatIndex loadFlatIndex(std::istream &is);

/** Serialize a flat coarse quantizer (centroid table). */
void saveCoarseQuantizer(std::ostream &os, const FlatCoarseQuantizer &cq);

/** Load a flat coarse quantizer; fatal() on format mismatch. */
std::shared_ptr<FlatCoarseQuantizer> loadCoarseQuantizer(std::istream &is);

} // namespace vlr::vs

#endif // VLR_VECSEARCH_IO_H

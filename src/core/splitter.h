/**
 * @file
 * Index splitter (paper Section IV-A4): selects the hot clusters for a
 * target coverage, distributes them to GPU shards round-robin in
 * descending size order (balancing shard memory), and emits the mapping
 * tables the router uses — original cluster id -> (shard, local id).
 */

#ifndef VLR_CORE_SPLITTER_H
#define VLR_CORE_SPLITTER_H

#include <functional>
#include <vector>

#include "core/access_profile.h"

namespace vlr::core
{

/** Placement of hot clusters across GPU shards plus mapping tables. */
struct ShardAssignment
{
    double rho = 0.0;
    /** Clusters resident on each shard. */
    std::vector<std::vector<cluster_id_t>> shardClusters;
    /** cluster id -> shard id, kCpuShard for CPU-resident clusters. */
    std::vector<shard_id_t> clusterShard;
    /** cluster id -> local (remapped) id within its shard; -1 if CPU. */
    std::vector<std::int32_t> localId;
    /** Paper-scale bytes per shard. */
    std::vector<double> shardBytes;

    std::size_t numShards() const { return shardClusters.size(); }

    bool
    isGpuResident(cluster_id_t c) const
    {
        return clusterShard[static_cast<std::size_t>(c)] != kCpuShard;
    }

    double totalGpuBytes() const;
    /** Largest shard footprint (the memory the placement must fit). */
    double maxShardBytes() const;
};

class IndexSplitter
{
  public:
    /**
     * Split the top-rho clusters of the profile across num_shards GPU
     * shards: sorted by size descending, dealt round-robin.
     * @pre num_shards >= 1 unless rho == 0.
     */
    static ShardAssignment split(const AccessProfile &profile, double rho,
                                 int num_shards);

    /**
     * Deal an explicit cluster set across num_shards with the size-
     * balanced policy (descending bytes_of, ties by id, round-robin)
     * and build the mapping tables. This is the single placement
     * policy: split() applies it to profile bytes, the tiered runtime
     * to real list bytes.
     * @param clusters hot set to place (each in [0, nlist)).
     * @param bytes_of per-cluster footprint used for balancing.
     * @param nlist total clusters (sizes the mapping tables).
     * @param rho coverage recorded on the assignment.
     * @param num_shards shards to deal across (clamped to >= 1).
     */
    static ShardAssignment dealClusters(
        std::vector<cluster_id_t> clusters,
        const std::function<double(cluster_id_t)> &bytes_of,
        std::size_t nlist, double rho, int num_shards);

    /**
     * Uniform sharding by cluster id (Faiss IndexIVFShards semantics):
     * every cluster is GPU-resident, dealt round-robin by id, ignoring
     * access frequency. Used by the ALL-GPU and HedraRAG baselines.
     * With rho < 1 only the hot fraction is sharded but still by id
     * order (HedraRAG's cache without size balancing).
     */
    static ShardAssignment splitUniform(const AccessProfile &profile,
                                        double rho, int num_shards);
};

} // namespace vlr::core

#endif // VLR_CORE_SPLITTER_H

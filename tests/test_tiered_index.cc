/**
 * @file
 * Tests for the tiered hot/cold index runtime: exact result parity with
 * single-tier serial search for any coverage and shard count,
 * pruned-routing edge cases (fully hot / fully cold / split probe
 * lists, rho = 0 and rho = 1), pluggable shard backends (throttled
 * double under concurrent repartition), live access counting and its
 * drain consistency contract, concurrent repartition, and the
 * OnlineUpdater's drift-triggered background rebuild.
 */

#include <algorithm>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/online_update.h"
#include "core/tiered_index.h"
#include "vecsearch/kmeans.h"

namespace vlr::core
{
namespace
{

/** Fixed-seed clustered corpus + a trained fast-scan index. */
struct TieredFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(42);
        std::vector<float> centers(ncenters_ * d_);
        for (auto &x : centers)
            x = static_cast<float>(rng.uniform(-1.0, 1.0));
        data_.resize(n_ * d_);
        for (std::size_t i = 0; i < n_; ++i) {
            const std::size_t c = rng.uniformU64(ncenters_);
            for (std::size_t j = 0; j < d_; ++j)
                data_[i * d_ + j] =
                    centers[c * d_ + j] +
                    static_cast<float>(rng.gaussian(0.0, 0.15));
        }
        vs::KMeansParams p;
        p.k = nlist_;
        const auto km = vs::kmeansTrain(data_, n_, d_, p);
        cq_ = std::make_shared<vs::FlatCoarseQuantizer>(km.centroids,
                                                        nlist_, d_);
        index_ = std::make_unique<vs::IvfPqFastScanIndex>(cq_, m_);
        index_->train(data_, n_);
        index_->add(data_, n_);

        queries_.resize(nq_ * d_);
        for (std::size_t i = 0; i < nq_; ++i) {
            const std::size_t c = rng.uniformU64(ncenters_);
            for (std::size_t j = 0; j < d_; ++j)
                queries_[i * d_ + j] =
                    centers[c * d_ + j] +
                    static_cast<float>(rng.gaussian(0.0, 0.2));
        }
    }

    /** Top-`count` clusters by descending list size (deterministic). */
    std::vector<cluster_id_t>
    topBySize(std::size_t count) const
    {
        std::vector<cluster_id_t> order(nlist_);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](cluster_id_t a, cluster_id_t b) {
                      const auto sa = index_->listSize(a);
                      const auto sb = index_->listSize(b);
                      if (sa != sb)
                          return sa > sb;
                      return a < b;
                  });
        order.resize(std::min(count, order.size()));
        return order;
    }

    void
    expectParity(const TieredIndex &tiered, std::size_t k,
                 std::size_t nprobe) const
    {
        for (std::size_t i = 0; i < nq_; ++i) {
            const float *q = queries_.data() + i * d_;
            const auto expected = index_->search(q, k, nprobe);
            const auto got = tiered.search(q, k, nprobe);
            ASSERT_EQ(got.size(), expected.size()) << "query " << i;
            for (std::size_t j = 0; j < expected.size(); ++j) {
                EXPECT_EQ(got[j].id, expected[j].id)
                    << "query " << i << " rank " << j;
                EXPECT_EQ(got[j].dist, expected[j].dist)
                    << "query " << i << " rank " << j;
            }
        }
    }

    const std::size_t n_ = 3000;
    const std::size_t d_ = 16;
    const std::size_t m_ = 8;
    const std::size_t ncenters_ = 24;
    const std::size_t nlist_ = 32;
    const std::size_t nq_ = 48;
    const std::size_t k_ = 10;
    const std::size_t nprobe_ = 8;
    std::vector<float> data_;
    std::vector<float> queries_;
    std::shared_ptr<vs::FlatCoarseQuantizer> cq_;
    std::unique_ptr<vs::IvfPqFastScanIndex> index_;
};

TEST_F(TieredFixture, SubsetClustersPreservesListsExactly)
{
    const auto hot = topBySize(nlist_ / 2);
    const auto subset = index_->subsetClusters(hot);

    std::size_t expected_total = 0;
    for (const cluster_id_t c : hot)
        expected_total += index_->listSize(c);
    EXPECT_EQ(subset.size(), expected_total);
    EXPECT_EQ(subset.nlist(), index_->nlist());
    EXPECT_EQ(subset.dim(), index_->dim());

    // Scanning the subset's clusters returns bit-identical hits.
    for (std::size_t i = 0; i < 8; ++i) {
        const float *q = queries_.data() + i * d_;
        const auto a = index_->searchClusters(q, k_, hot);
        const auto b = subset.searchClusters(q, k_, hot);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t j = 0; j < a.size(); ++j) {
            EXPECT_EQ(a[j].id, b[j].id);
            EXPECT_EQ(a[j].dist, b[j].dist);
        }
    }
}

TEST_F(TieredFixture, ParityAcrossCoverages)
{
    // Acceptance: exact top-k parity with single-tier serial search at
    // rho in {0, 0.25, 1.0} (and an arbitrary split for good measure).
    for (const double rho : {0.0, 0.25, 1.0}) {
        const auto count = static_cast<std::size_t>(
            rho * static_cast<double>(nlist_) + 0.5);
        TieredIndex tiered(*index_, topBySize(count));
        EXPECT_EQ(tiered.numHotClusters(), count);
        expectParity(tiered, k_, nprobe_);
    }
}

TEST_F(TieredFixture, ParallelBatchMatchesSerialTiered)
{
    TieredIndex tiered(*index_, topBySize(nlist_ / 4));
    const std::size_t threads = 4;
    ThreadPool pool(threads);
    TieredBatchStats bs;
    const auto batched = tiered.searchBatchParallel(
        queries_, nq_, k_, nprobe_, pool, &bs);
    ASSERT_EQ(batched.size(), nq_);
    EXPECT_EQ(bs.queries, nq_);
    EXPECT_EQ(bs.hotOnlyQueries + bs.coldOnlyQueries + bs.splitQueries,
              nq_);
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto expected =
            index_->search(queries_.data() + i * d_, k_, nprobe_);
        ASSERT_EQ(batched[i].size(), expected.size()) << "query " << i;
        for (std::size_t j = 0; j < expected.size(); ++j) {
            EXPECT_EQ(batched[i][j].id, expected[j].id);
            EXPECT_EQ(batched[i][j].dist, expected[j].dist);
        }
    }
}

TEST_F(TieredFixture, PerQueryNprobeBatchMatchesSerialTiered)
{
    // Heterogeneous probe depths in one batch (the deadline-aware
    // dispatcher's batch shape) must reproduce per-request serial
    // tiered searches bit for bit, at multiple shard counts.
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
        TieredIndex tiered(*index_, topBySize(nlist_ / 4),
                           TieredOptions{shards, {}});
        std::vector<std::size_t> nprobes(nq_);
        for (std::size_t i = 0; i < nq_; ++i)
            nprobes[i] = 1 + (i * 5) % 16;
        ThreadPool pool(4);
        const auto batched = tiered.searchBatchParallel(
            queries_, nq_, k_, nprobes, pool);
        for (std::size_t i = 0; i < nq_; ++i) {
            const auto expected = tiered.search(
                queries_.data() + i * d_, k_, nprobes[i]);
            ASSERT_EQ(batched[i].size(), expected.size())
                << "shards " << shards << " query " << i;
            for (std::size_t j = 0; j < expected.size(); ++j) {
                EXPECT_EQ(batched[i][j].id, expected[j].id)
                    << "shards " << shards << " query " << i;
                EXPECT_EQ(batched[i][j].dist, expected[j].dist)
                    << "shards " << shards << " query " << i;
            }
        }
    }
}

TEST_F(TieredFixture, StatsTrackPerShardScanLatency)
{
    TieredIndex tiered(*index_, topBySize(nlist_ / 2),
                       TieredOptions{2, {}});
    ThreadPool pool(4);
    tiered.searchBatchParallel(queries_, nq_, k_, nprobe_, pool);

    const auto s = tiered.stats();
    ASSERT_EQ(s.shardScanSeconds.size(), 2u);
    ASSERT_EQ(s.shardScanCounts.size(), 2u);
    for (std::size_t sh = 0; sh < 2; ++sh) {
        // Every shard holding probes was scanned, and scans took
        // measurable time.
        if (s.shardProbeCounts[sh] > 0) {
            EXPECT_GT(s.shardScanCounts[sh], 0u) << "shard " << sh;
            EXPECT_GT(s.shardScanSeconds[sh], 0.0) << "shard " << sh;
        }
        // A scan covers >= 1 probe, so scans never outnumber probes.
        EXPECT_LE(s.shardScanCounts[sh], s.shardProbeCounts[sh])
            << "shard " << sh;
    }
    // Cold scans accounted the same way.
    if (s.totalProbes > s.hotProbes) {
        EXPECT_GT(s.coldScanCounts, 0u);
        EXPECT_GT(s.coldScanSeconds, 0.0);
    }
}

TEST_F(TieredFixture, FullyHotQuerySkipsColdTier)
{
    // Hot set = exactly query 0's probe list: the routed query must be
    // served by the hot tier alone.
    const auto pl = cq_->probe(queries_.data(), nprobe_);
    TieredIndex tiered(*index_, pl.clusters);

    TieredQueryStats qs;
    const auto hits = tiered.search(queries_.data(), k_, nprobe_,
                                    nullptr, &qs);
    EXPECT_TRUE(qs.hotOnly);
    EXPECT_EQ(qs.coldProbes, 0u);
    EXPECT_EQ(qs.hotProbes, pl.clusters.size());
    EXPECT_DOUBLE_EQ(qs.hitRate, 1.0);

    const auto expected = index_->search(queries_.data(), k_, nprobe_);
    ASSERT_EQ(hits.size(), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j)
        EXPECT_EQ(hits[j].id, expected[j].id);

    const auto s = tiered.stats();
    EXPECT_EQ(s.hotOnlyQueries, 1u);
}

TEST_F(TieredFixture, SplitQueryMergesTiers)
{
    // Hot set = the first half of query 1's probes: the query must
    // split across both tiers and still match the serial result.
    const float *q = queries_.data() + d_;
    const auto pl = cq_->probe(q, nprobe_);
    ASSERT_GE(pl.clusters.size(), 2u);
    const std::vector<cluster_id_t> hot(
        pl.clusters.begin(),
        pl.clusters.begin() + pl.clusters.size() / 2);
    TieredIndex tiered(*index_, hot);

    TieredQueryStats qs;
    const auto hits = tiered.search(q, k_, nprobe_, nullptr, &qs);
    EXPECT_FALSE(qs.hotOnly);
    EXPECT_EQ(qs.hotProbes, hot.size());
    EXPECT_EQ(qs.coldProbes, pl.clusters.size() - hot.size());
    EXPECT_GT(qs.hitRate, 0.0);
    EXPECT_LT(qs.hitRate, 1.0);

    const auto expected = index_->search(q, k_, nprobe_);
    ASSERT_EQ(hits.size(), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j) {
        EXPECT_EQ(hits[j].id, expected[j].id);
        EXPECT_EQ(hits[j].dist, expected[j].dist);
    }

    const auto s = tiered.stats();
    EXPECT_EQ(s.splitQueries, 1u);
}

TEST_F(TieredFixture, EmptyHotTierServesEverythingCold)
{
    // rho = 0 degenerate: every probe routes to the cold (source) tier.
    TieredIndex tiered(*index_, {});
    EXPECT_EQ(tiered.numHotClusters(), 0u);
    EXPECT_DOUBLE_EQ(tiered.rho(), 0.0);

    expectParity(tiered, k_, nprobe_);
    const auto s = tiered.stats();
    EXPECT_EQ(s.coldOnlyQueries, s.queries);
    EXPECT_EQ(s.hotOnlyQueries, 0u);
    EXPECT_EQ(s.splitQueries, 0u);
    EXPECT_DOUBLE_EQ(s.hotProbeFraction, 0.0);
    EXPECT_DOUBLE_EQ(s.meanHitRate, 0.0);
    EXPECT_EQ(s.hotBytes, 0u);
}

TEST_F(TieredFixture, FullCoverageNeverTouchesColdTier)
{
    // rho = 1 degenerate: the hot replica holds every cluster.
    std::vector<cluster_id_t> all(nlist_);
    std::iota(all.begin(), all.end(), 0);
    TieredIndex tiered(*index_, all);
    EXPECT_DOUBLE_EQ(tiered.rho(), 1.0);

    expectParity(tiered, k_, nprobe_);
    const auto s = tiered.stats();
    EXPECT_EQ(s.hotOnlyQueries, s.queries);
    EXPECT_EQ(s.coldOnlyQueries, 0u);
    EXPECT_EQ(s.splitQueries, 0u);
    EXPECT_DOUBLE_EQ(s.hotProbeFraction, 1.0);
    EXPECT_DOUBLE_EQ(s.meanHitRate, 1.0);
}

TEST_F(TieredFixture, AccessCountsMatchProbeTraffic)
{
    TieredIndex tiered(*index_, topBySize(nlist_ / 4));
    for (std::size_t i = 0; i < nq_; ++i)
        tiered.search(queries_.data() + i * d_, k_, nprobe_);

    // Recompute expected per-cluster probe counts independently.
    std::vector<double> expected(nlist_, 0.0);
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto pl = cq_->probe(queries_.data() + i * d_, nprobe_);
        for (const cluster_id_t c : pl.clusters)
            expected[static_cast<std::size_t>(c)] += 1.0;
    }

    const auto counts = tiered.drainAccessCounts();
    ASSERT_EQ(counts.size(), nlist_);
    for (std::size_t c = 0; c < nlist_; ++c)
        EXPECT_DOUBLE_EQ(counts[c], expected[c]) << "cluster " << c;

    // Draining resets.
    for (const double v : tiered.drainAccessCounts())
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_F(TieredFixture, RepartitionPromotesObservedHotClusters)
{
    TieredIndex tiered(*index_, {});
    // Hammer the first 8 queries so their clusters dominate the counts.
    for (std::size_t rep = 0; rep < 4; ++rep)
        for (std::size_t i = 0; i < 8; ++i)
            tiered.search(queries_.data() + i * d_, k_, nprobe_);

    auto counts = tiered.drainAccessCounts();
    cluster_id_t most = 0;
    for (std::size_t c = 1; c < nlist_; ++c)
        if (counts[c] > counts[static_cast<std::size_t>(most)])
            most = static_cast<cluster_id_t>(c);

    const auto profile = tiered.profileFromCounts(std::move(counts));
    tiered.repartition(profile.hotClusters(0.25));

    const auto bm = tiered.hotBitmap();
    EXPECT_TRUE(bm[static_cast<std::size_t>(most)]);
    EXPECT_EQ(tiered.numHotClusters(), profile.numHot(0.25));
    EXPECT_EQ(tiered.stats().repartitions, 1u);
    expectParity(tiered, k_, nprobe_);
}

TEST_F(TieredFixture, RepartitionIsSafeUnderConcurrentSearches)
{
    TieredIndex tiered(*index_, topBySize(nlist_ / 4));

    // Precompute serial expectations once; any snapshot must match.
    std::vector<std::vector<vs::SearchHit>> expected(nq_);
    for (std::size_t i = 0; i < nq_; ++i)
        expected[i] = index_->search(queries_.data() + i * d_, k_,
                                     nprobe_);

    std::atomic<bool> failed{false};
    std::vector<std::thread> searchers;
    for (std::size_t t = 0; t < 4; ++t) {
        searchers.emplace_back([&, t] {
            vs::SearchScratch scratch;
            for (std::size_t rep = 0; rep < 20; ++rep) {
                for (std::size_t i = t; i < nq_; i += 4) {
                    const auto got =
                        tiered.search(queries_.data() + i * d_, k_,
                                      nprobe_, &scratch);
                    if (got.size() != expected[i].size()) {
                        failed = true;
                        continue;
                    }
                    for (std::size_t j = 0; j < got.size(); ++j)
                        if (got[j].id != expected[i][j].id ||
                            got[j].dist != expected[i][j].dist)
                            failed = true;
                }
            }
        });
    }

    // Flip between placements while the searchers run.
    for (std::size_t rep = 0; rep < 10; ++rep) {
        tiered.repartition(topBySize(nlist_ / 2));
        tiered.repartition({});
        tiered.repartition(topBySize(nlist_ / 8));
    }
    for (auto &th : searchers)
        th.join();

    EXPECT_FALSE(failed.load());
    EXPECT_EQ(tiered.stats().repartitions, 30u);
}

TEST_F(TieredFixture, MultiShardParityAcrossShardCountsAndCoverages)
{
    // Acceptance: bit-identical top-k vs the single-tier serial search
    // for shard counts {1, 2, 4} x rho {0, 0.25, 1}.
    for (const std::size_t shards : {1ul, 2ul, 4ul}) {
        for (const double rho : {0.0, 0.25, 1.0}) {
            const auto count = static_cast<std::size_t>(
                rho * static_cast<double>(nlist_) + 0.5);
            TieredOptions opts;
            opts.numShards = shards;
            TieredIndex tiered(*index_, topBySize(count), opts);
            EXPECT_EQ(tiered.numShards(), shards);
            EXPECT_EQ(tiered.numHotClusters(), count);
            expectParity(tiered, k_, nprobe_);

            const auto s = tiered.stats();
            EXPECT_EQ(s.numShards, shards);
            ASSERT_EQ(s.shardBytes.size(), shards);
            std::size_t bytes = 0;
            for (const std::size_t b : s.shardBytes)
                bytes += b;
            EXPECT_EQ(bytes, s.hotBytes);
            // Every hot probe was attributed to exactly one shard.
            ASSERT_EQ(s.shardProbeCounts.size(), shards);
            std::size_t shard_probes = 0;
            for (const std::size_t p : s.shardProbeCounts)
                shard_probes += p;
            EXPECT_EQ(shard_probes, s.hotProbes);
        }
    }
}

TEST_F(TieredFixture, SplitterPlacedShardsPreserveParity)
{
    // Profile-driven constructor: placement comes from
    // IndexSplitter::split(profile, rho, num_shards), the same code
    // path the simulator and the partitioner use.
    std::vector<double> counts(nlist_), work(nlist_), bytes(nlist_);
    for (std::size_t c = 0; c < nlist_; ++c) {
        const auto id = static_cast<cluster_id_t>(c);
        counts[c] = static_cast<double>(index_->listSize(id));
        work[c] = static_cast<double>(index_->listSize(id));
        bytes[c] = static_cast<double>(index_->listBytes(id));
    }
    const AccessProfile profile(counts, work, bytes);
    for (const std::size_t shards : {2ul, 4ul}) {
        TieredOptions opts;
        opts.numShards = shards;
        TieredIndex tiered(*index_, profile, 0.5, opts);
        EXPECT_EQ(tiered.numHotClusters(), profile.numHot(0.5));
        expectParity(tiered, k_, nprobe_);
        // The size-balanced dealing fills every shard when there are
        // at least num_shards hot clusters.
        const auto s = tiered.stats();
        for (const std::size_t b : s.shardBytes)
            EXPECT_GT(b, 0u);
    }
}

TEST_F(TieredFixture, MultiShardParallelBatchMatchesSerial)
{
    TieredOptions opts;
    opts.numShards = 4;
    TieredIndex tiered(*index_, topBySize(nlist_ / 2), opts);
    ThreadPool pool(4);
    TieredBatchStats bs;
    const auto batched = tiered.searchBatchParallel(
        queries_, nq_, k_, nprobe_, pool, &bs);
    ASSERT_EQ(batched.size(), nq_);
    EXPECT_EQ(bs.hotOnlyQueries + bs.coldOnlyQueries + bs.splitQueries,
              nq_);
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto expected =
            index_->search(queries_.data() + i * d_, k_, nprobe_);
        ASSERT_EQ(batched[i].size(), expected.size()) << "query " << i;
        for (std::size_t j = 0; j < expected.size(); ++j) {
            EXPECT_EQ(batched[i][j].id, expected[j].id);
            EXPECT_EQ(batched[i][j].dist, expected[j].dist);
        }
    }
}

TEST_F(TieredFixture, ThrottledShardsStayCorrectUnderRepartition)
{
    // Generalized snapshot-pinning test: batches run on two throttled
    // (slow-device) shards while the main thread flips placements.
    // Every batch must stay bit-identical to the serial single-tier
    // search, and repartition must never block in-flight batches.
    TieredOptions opts;
    opts.numShards = 2;
    opts.backendFactory = throttledShardFactory(/*delay=*/20e-6);
    TieredIndex tiered(*index_, topBySize(nlist_ / 4), opts);
    EXPECT_EQ(tiered.stats().backend, "throttled(fastscan)");

    std::vector<std::vector<vs::SearchHit>> expected(nq_);
    for (std::size_t i = 0; i < nq_; ++i)
        expected[i] = index_->search(queries_.data() + i * d_, k_,
                                     nprobe_);

    std::atomic<bool> failed{false};
    std::vector<std::thread> searchers;
    for (std::size_t t = 0; t < 2; ++t) {
        searchers.emplace_back([&] {
            ThreadPool pool(2);
            for (std::size_t rep = 0; rep < 6; ++rep) {
                const auto got = tiered.searchBatchParallel(
                    queries_, nq_, k_, nprobe_, pool);
                for (std::size_t i = 0; i < nq_; ++i) {
                    if (got[i].size() != expected[i].size()) {
                        failed = true;
                        continue;
                    }
                    for (std::size_t j = 0; j < got[i].size(); ++j)
                        if (got[i][j].id != expected[i][j].id ||
                            got[i][j].dist != expected[i][j].dist)
                            failed = true;
                }
            }
        });
    }
    for (std::size_t rep = 0; rep < 4; ++rep) {
        tiered.repartition(topBySize(nlist_ / 2));
        tiered.repartition({});
    }
    for (auto &th : searchers)
        th.join();

    EXPECT_FALSE(failed.load());
    EXPECT_EQ(tiered.stats().repartitions, 8u);
    EXPECT_EQ(tiered.numShards(), 2u);
}

TEST_F(TieredFixture, DrainedCountsSumToTotalProbesAcrossConcurrentBatches)
{
    // Consistency contract of drainAccessCounts()/stats(): concurrent
    // drains may split an in-flight batch, but once all searches have
    // completed, the drained counts sum to exactly stats().totalProbes
    // — no probe lost or double-counted.
    TieredOptions opts;
    opts.numShards = 2;
    TieredIndex tiered(*index_, topBySize(nlist_ / 4), opts);

    const std::size_t reps = 8;
    std::atomic<bool> done{false};
    double concurrent_drained = 0.0;
    std::thread drainer([&] {
        while (!done.load(std::memory_order_relaxed)) {
            for (const double v : tiered.drainAccessCounts())
                concurrent_drained += v;
            std::this_thread::yield();
        }
    });

    std::vector<std::thread> searchers;
    for (std::size_t t = 0; t < 3; ++t) {
        searchers.emplace_back([&] {
            ThreadPool pool(2);
            for (std::size_t rep = 0; rep < reps; ++rep)
                tiered.searchBatchParallel(queries_, nq_, k_, nprobe_,
                                           pool);
        });
    }
    for (auto &th : searchers)
        th.join();
    done = true;
    drainer.join();

    double total_drained = concurrent_drained;
    for (const double v : tiered.drainAccessCounts())
        total_drained += v;

    // Independent expectation: every query contributes its probe-list
    // length, 3 threads x reps batches.
    double expected_probes = 0.0;
    for (std::size_t i = 0; i < nq_; ++i)
        expected_probes += static_cast<double>(
            cq_->probe(queries_.data() + i * d_, nprobe_)
                .clusters.size());
    expected_probes *= static_cast<double>(3 * reps);

    const auto s = tiered.stats();
    EXPECT_DOUBLE_EQ(total_drained,
                     static_cast<double>(s.totalProbes));
    EXPECT_DOUBLE_EQ(total_drained, expected_probes);
    EXPECT_EQ(s.hotProbes,
              s.shardProbeCounts[0] + s.shardProbeCounts[1]);
}

TEST_F(TieredFixture, ConcurrentSearchRepartitionDrainStress)
{
    // The full adversarial schedule for the lock-free read path:
    // parallel-batch searchers, serial searchers, a repartition churn
    // thread (snapshot swap + epoch retirement), and a stats drainer
    // all run concurrently. Afterwards the drain consistency contract
    // must hold exactly and the epoch domain must have reclaimed every
    // displaced generation. Run under ASan/UBSan and TSan in CI.
    TieredOptions opts;
    opts.numShards = 2;
    TieredIndex tiered(*index_, topBySize(nlist_ / 4), opts);

    std::atomic<bool> stop{false};
    std::atomic<bool> failed{false};
    double concurrent_drained = 0.0;
    std::thread drainer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            for (const double v : tiered.drainAccessCounts())
                concurrent_drained += v;
            std::this_thread::yield();
        }
    });
    std::thread churner([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            tiered.repartition(topBySize(nlist_ / 2));
            tiered.repartition(topBySize(nlist_ / 8));
        }
    });

    const std::size_t reps = 6;
    std::vector<std::thread> searchers;
    searchers.emplace_back([&] {
        ThreadPool pool(2);
        for (std::size_t rep = 0; rep < reps; ++rep) {
            const auto got = tiered.searchBatchParallel(
                queries_, nq_, k_, nprobe_, pool);
            if (got.size() != nq_)
                failed = true;
        }
    });
    searchers.emplace_back([&] {
        for (std::size_t rep = 0; rep < reps; ++rep)
            for (std::size_t i = 0; i < nq_; ++i) {
                // Any snapshot gives exact parity with the flat index.
                const float *q = queries_.data() + i * d_;
                const auto expected = index_->search(q, k_, nprobe_);
                const auto got = tiered.search(q, k_, nprobe_);
                if (got.size() != expected.size()) {
                    failed = true;
                    continue;
                }
                for (std::size_t j = 0; j < got.size(); ++j)
                    if (got[j].id != expected[j].id ||
                        got[j].dist != expected[j].dist)
                        failed = true;
            }
    });
    for (auto &th : searchers)
        th.join();
    stop = true;
    churner.join();
    drainer.join();
    EXPECT_FALSE(failed.load());

    double total_drained = concurrent_drained;
    for (const double v : tiered.drainAccessCounts())
        total_drained += v;
    double expected_probes = 0.0;
    for (std::size_t i = 0; i < nq_; ++i)
        expected_probes += static_cast<double>(
            cq_->probe(queries_.data() + i * d_, nprobe_)
                .clusters.size());
    expected_probes *= static_cast<double>(2 * reps);

    const auto s = tiered.stats();
    EXPECT_DOUBLE_EQ(total_drained,
                     static_cast<double>(s.totalProbes));
    EXPECT_DOUBLE_EQ(total_drained, expected_probes);

    // Quiescent: one more swap reclaims everything still in limbo —
    // retire() frees eagerly once no reader pins an older epoch.
    tiered.repartition(topBySize(nlist_ / 4));
    EXPECT_EQ(tiered.stats().pendingReclaims, 0u);
}

TEST_F(TieredFixture, OnlineUpdaterTriggersBackgroundRebuild)
{
    // Start with an empty hot tier but claim a high expected hit rate:
    // observed rates of ~0 diverge immediately once the window fills.
    TieredIndex tiered(*index_, {});
    OnlineUpdater::Options opts;
    opts.drift.hitRateDivergence = 0.2;
    opts.drift.attainmentThreshold = 0.85;
    opts.drift.windowRequests = 16;
    opts.rho = 0.5;
    OnlineUpdater updater(tiered, opts, /*expected_hit_rate=*/0.9);

    bool launched = false;
    for (std::size_t i = 0; i < nq_ && !launched; ++i) {
        TieredQueryStats qs;
        tiered.search(queries_.data() + (i % nq_) * d_, k_, nprobe_,
                      nullptr, &qs);
        launched = updater.record(qs.hitRate, /*slo_met=*/false);
    }
    EXPECT_TRUE(launched);
    updater.waitForRebuild();

    EXPECT_EQ(updater.rebuildsCompleted(), 1u);
    EXPECT_FALSE(updater.rebuildInFlight());
    const auto s = tiered.stats();
    EXPECT_EQ(s.repartitions, 1u);
    EXPECT_EQ(s.numHot, (nlist_ + 1) / 2);
    // The rebuilt expectation reflects the drained counts at rho.
    EXPECT_GT(updater.expectedHitRate(), 0.0);
    expectParity(tiered, k_, nprobe_);
}

} // namespace
} // namespace vlr::core

/**
 * @file
 * Figure 16 + Table II reproduction: sensitivity to the search-stage
 * SLO (100 / 150 / 200 / 250 ms) with Qwen3-32B and the ORCAS 1K
 * index.
 *
 * Table II: the GPU index shard size the partitioner selects per SLO,
 * with the resulting per-GPU KV-cache allocation (params fixed).
 * Figure 16: P95 (and P90 for vLiteRAG) TTFT across arrival rates per
 * SLO against CPU-Only and ALL-GPU.
 *
 * Expected shape: stricter SLOs allocate more index to the GPUs
 * (larger shards, less KV), moving vLiteRAG's latency curve from the
 * CPU-only toward the all-GPU behaviour while staying SLO-compliant
 * over a wider rate range than either.
 */

#include <iostream>

#include "bench_util.h"

using namespace vlr;

int
main()
{
    printBanner(std::cout, "Table II: SLO targets vs index shard size");

    const auto spec = wl::orcas1kSpec();
    core::DatasetContext ctx(spec);
    const auto model = llm::qwen3_32b();
    const auto gpu_spec = gpu::h100Spec();

    bench::PeakCache peaks;
    auto base = bench::makeServingConfig(
        spec, model, core::RetrieverKind::VectorLite, 1.0);
    const double peak = peaks.peak(base);

    const std::vector<double> slos = {0.100, 0.150, 0.200, 0.250};

    // Per-GPU accounting, as in the paper's table: weight (param) GB
    // per GPU, index shard GB per GPU, KV cache GB per GPU.
    gpu::GpuDevice probe(0, gpu_spec);
    probe.reserveWeights(model.weightBytes() /
                         static_cast<bytes_t>(model.tensorParallel));
    const double param_gb =
        static_cast<double>(model.weightBytes()) /
        static_cast<double>(model.tensorParallel) / 1e9;
    const double kv0_gb =
        static_cast<double>(probe.kvCacheBytes()) / 1e9;

    TextTable tab2({"SLO (ms)", "rho", "index/GPU (GB)", "param (GB)",
                    "KV cache (GB)"});
    for (const double slo : slos) {
        auto cfg = bench::makeServingConfig(
            spec, model, core::RetrieverKind::VectorLite, 1.0);
        cfg.peakThroughputHint = peak;
        cfg.sloSearchOverride = slo;
        const auto setup = core::buildRetrieverSetup(
            {.kind = core::RetrieverKind::VectorLite,
             .numGpus = 8,
             .gpuSpec = gpu_spec,
             .sloSearchSeconds = slo,
             .peakLlmThroughput = peak,
             .kvBaselineBytes = 8.0 * probe.kvCacheBytes()},
            ctx);
        const double shard_gb =
            setup.assignment.numShards()
                ? setup.assignment.totalGpuBytes() /
                      static_cast<double>(
                          setup.assignment.numShards()) /
                      1e9
                : 0.0;
        tab2.addRow({TextTable::num(slo * 1e3, 0),
                     TextTable::pct(setup.rho),
                     TextTable::num(shard_gb, 2),
                     TextTable::num(param_gb, 2),
                     TextTable::num(kv0_gb - shard_gb, 2)});
    }
    tab2.print(std::cout);
    std::cout << "\npaper Table II: 100 ms -> 3.80 GB shards, 250 ms "
                 "-> 2.21 GB; KV cache grows as the SLO relaxes.\n\n";

    printBanner(std::cout, "Figure 16: P95/P90 TTFT per search SLO");
    const auto rates = bench::sweepRates(peak, 5, 1.1);
    for (const double slo : slos) {
        std::cout << "\nsearch SLO " << TextTable::num(slo * 1e3, 0)
                  << " ms:\n";
        TextTable t({"system", "rate (r/s)", "P95 TTFT (ms)",
                     "P90 TTFT (ms)"});
        for (const auto kind :
             {core::RetrieverKind::CpuOnly, core::RetrieverKind::AllGpu,
              core::RetrieverKind::VectorLite}) {
            for (const double rate : rates) {
                auto cfg =
                    bench::makeServingConfig(spec, model, kind, rate);
                cfg.peakThroughputHint = peak;
                cfg.sloSearchOverride = slo;
                const auto res = core::runServing(cfg, ctx);
                t.addRow({res.system, TextTable::num(rate, 1),
                          TextTable::num(res.p95Ttft * 1e3, 0),
                          TextTable::num(res.p90Ttft * 1e3, 0)});
            }
        }
        t.print(std::cout);
    }

    std::cout << "\npaper: relaxed SLOs move vLiteRAG toward CPU-only "
                 "behaviour, stricter ones toward all-GPU; the "
                 "SLO-compliant range stays wider than the baselines' "
                 "in every setting (P90 vs P95 differs by at most "
                 "~1 req/s).\n";
    return 0;
}

/**
 * @file
 * Replayable multi-tenant workload scripts (the YCSB-style sustained
 * proof the serving engine is evaluated on).
 *
 * A WorkloadScript declares a set of tenants, each a TenantSpec: its
 * own Zipf popularity skew over the dataset's clusters, a baseline
 * Poisson arrival rate shaped by diurnal drift, burst windows, an
 * optional active window (tenant churn: join/leave mid-trace) and
 * scheduled hotspot flips, and the SLO class (k, nprobe, deadline,
 * priority) every one of its requests carries. WorkloadTrace::generate
 * expands a script into a time-ordered request trace that is fully
 * deterministic from a single seed — same script + same seed is the
 * byte-identical trace — and save()/load() serialize the trace so any
 * run can be replayed exactly, on any engine configuration.
 *
 * The tenant identity rides the typed SearchRequest::tenant field
 * (core::TenantId); with EngineConfig::tenants enabled the dispatcher
 * keys admission, weighted fair batching and per-tenant
 * disposition/latency accounting off the same id (see
 * core/serving_api.h). Traces written before the typed id carried the
 * tenant in SearchRequest::tag; the on-disk format is unchanged, only
 * the in-memory field moved.
 */

#ifndef VLR_WORKLOAD_TENANT_H
#define VLR_WORKLOAD_TENANT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/serving_api.h"
#include "workload/dataset.h"

namespace vlr::wl
{

/**
 * One tenant's traffic contract: arrival process, popularity skew and
 * the per-request SLO class stamped on everything it submits.
 */
struct TenantSpec
{
    /** Label for tables and JSON snapshots. */
    std::string name;
    /** Tenant identity carried as SearchRequest::tenant (unique per
     *  script). */
    core::TenantId tenant;

    // --- arrival process ---
    /** Baseline Poisson arrival rate (req/s, > 0). */
    double arrivalRate = 100.0;
    /**
     * Diurnal rate modulation: rate(t) scales by
     * 1 + diurnalAmplitude * sin(2 pi t / diurnalPeriodSeconds).
     * Amplitude in [0, 1); 0 disables.
     */
    double diurnalAmplitude = 0.0;
    double diurnalPeriodSeconds = 0.0;
    /** Burst window: rate multiplied by burstFactor (>= 1) on
     *  [burstStartSeconds, burstEndSeconds). */
    double burstFactor = 1.0;
    double burstStartSeconds = 0.0;
    double burstEndSeconds = 0.0;
    /**
     * Active window (tenant churn): the tenant submits nothing before
     * activeStartSeconds or at/after activeEndSeconds. An end of 0
     * means active to the horizon, so specs that never set the window
     * behave as before.
     */
    double activeStartSeconds = 0.0;
    double activeEndSeconds = 0.0;

    // --- popularity over clusters ---
    /** Zipf exponent of this tenant's cluster popularity (>= 0). */
    double zipfTheta = 0.9;
    /** Times at which the tenant's popularity permutation flips
     *  (previously cold clusters become hot), ascending. */
    std::vector<double> hotspotFlipSeconds;
    /** Fraction of popularity ranks rotated per flip (in [0, 1]). */
    double hotspotFlipFraction = 0.5;

    // --- SLO class (stamped on every request) ---
    /** Results per query; 0 = engine default. */
    std::size_t k = 0;
    /** Probe depth; 0 = engine default. */
    std::size_t nprobe = 0;
    /** Queueing deadline; <= 0 = no deadline. */
    double deadlineSeconds = 0.0;
    /** Dispatch priority. */
    int priority = 0;

    /** @throws std::invalid_argument on an unusable spec. */
    void validate() const;
};

/** A full scenario: tenants sharing one engine over a horizon. */
struct WorkloadScript
{
    /** Trace length in seconds (> 0). */
    double horizonSeconds = 1.0;
    std::vector<TenantSpec> tenants;

    /** @throws std::invalid_argument on an empty horizon, no tenants
     *  or duplicate tenant ids. */
    void validate() const;
};

/** One scripted request: arrival time + tenant + SLO class + query. */
struct ScriptedRequest
{
    /** Arrival offset from trace start (seconds). */
    double atSeconds = 0.0;
    core::TenantId tenant;
    std::size_t k = 0;
    std::size_t nprobe = 0;
    double deadlineSeconds = 0.0;
    int priority = 0;
    /** Query vector (dim floats). */
    std::vector<float> query;

    bool operator==(const ScriptedRequest &) const = default;
};

/**
 * A generated, time-ordered request trace. Deterministic: generate()
 * with the same (script, dataset, seed) produces the identical trace,
 * and save()/load() round-trip it exactly (binary, host-endian).
 */
class WorkloadTrace
{
  public:
    WorkloadTrace() = default;

    /**
     * Expand @p script against @p dataset (stats must be built).
     * Each tenant draws from an independent stream derived from
     * @p seed, so adding a tenant never perturbs the others' traffic.
     */
    static WorkloadTrace generate(const WorkloadScript &script,
                                  const SyntheticDataset &dataset,
                                  std::uint64_t seed);

    /** Requests sorted by (atSeconds, tenant, submission order). */
    const std::vector<ScriptedRequest> &requests() const
    {
        return requests_;
    }
    std::size_t size() const { return requests_.size(); }
    std::size_t dim() const { return dim_; }

    /** Scripted requests carrying @p tenant's id. */
    std::size_t countForTenant(core::TenantId tenant) const;

    /**
     * Typed engine request for entry @p i: the query span aliases the
     * trace, so the trace must outlive the submission.
     */
    core::SearchRequest request(std::size_t i) const;

    /** Serialize (binary). @throws std::runtime_error on I/O error. */
    void save(std::ostream &os) const;
    /** Write to @p path via save(). */
    void saveFile(const std::string &path) const;
    /** Deserialize a save()d trace. @throws std::runtime_error on a
     *  malformed stream. */
    static WorkloadTrace load(std::istream &is);
    /** Read @p path via load(). */
    static WorkloadTrace loadFile(const std::string &path);

    bool operator==(const WorkloadTrace &) const = default;

  private:
    std::size_t dim_ = 0;
    std::vector<ScriptedRequest> requests_;
};

} // namespace vlr::wl

#endif // VLR_WORKLOAD_TENANT_H

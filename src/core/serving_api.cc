#include "core/serving_api.h"

#include <stdexcept>

namespace vlr::core
{

const char *
dispositionName(Disposition d)
{
    switch (d) {
    case Disposition::kServed:
        return "served";
    case Disposition::kExpiredInQueue:
        return "expired";
    case Disposition::kRejected:
        return "rejected";
    }
    return "unknown";
}

void
EngineConfig::validate() const
{
    if (batching.maxBatch == 0)
        throw std::invalid_argument(
            "EngineConfig: batching.maxBatch must be >= 1");
    if (batching.timeoutSeconds < 0.0)
        throw std::invalid_argument(
            "EngineConfig: batching.timeoutSeconds must be >= 0");
    if (defaultK == 0)
        throw std::invalid_argument(
            "EngineConfig: defaultK must be >= 1");
    if (defaultNprobe == 0)
        throw std::invalid_argument(
            "EngineConfig: defaultNprobe must be >= 1");
    if (numSearchThreads == 0)
        throw std::invalid_argument(
            "EngineConfig: numSearchThreads must be >= 1");
    if (sloSearchSeconds <= 0.0)
        throw std::invalid_argument(
            "EngineConfig: sloSearchSeconds must be > 0");
    if (numHotShards == 0)
        throw std::invalid_argument(
            "EngineConfig: numHotShards must be >= 1");
}

} // namespace vlr::core

/**
 * @file
 * Minimal fixed-size thread pool with blocking parallel loops and
 * optional hardware-topology awareness.
 *
 * Used by the vector-search substrate for index training and batched
 * search, and by the retrieval engine's batch executor. Falls back to
 * inline execution when constructed with zero or one worker, which keeps
 * single-core CI environments deterministic.
 *
 * Topology: ThreadPoolOptions sizes the pool to the machine
 * (numThreads 0 = hardwareConcurrency()) and can pin workers
 * round-robin across cores (Linux; elsewhere pinning is a no-op).
 * Pinning keeps each worker's per-thread state — search scratch,
 * stat shards, epoch slots — resident in one core's cache instead of
 * migrating with the scheduler, which matters once the read path is
 * contention-free and cache locality is the next ceiling.
 *
 * All parallel loops track completion with per-call state, so the pool
 * is safe to share between concurrent *external* callers (e.g. the
 * engine's dispatcher thread running a batch while a bench thread
 * profiles): a caller only waits for its own work, and the calling
 * thread participates in the loop so external loops make progress even
 * when every worker is busy. Nesting a blocking loop *inside* a pool
 * task is not supported — the inner wait parks a worker without
 * draining the queue and can deadlock.
 */

#ifndef VLR_COMMON_THREADPOOL_H
#define VLR_COMMON_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace vlr
{

/** Pool shape: worker count and core-pinning policy. */
struct ThreadPoolOptions
{
    /** Workers; 0 = ThreadPool::hardwareConcurrency(). 1 runs tasks
     *  inline on the calling thread. */
    std::size_t numThreads = 0;
    /** Pin worker i to core (i % hardwareConcurrency()). Best-effort:
     *  unsupported platforms and failed syscalls are ignored. */
    bool pinThreads = false;
};

class ThreadPool
{
  public:
    /** @param num_threads 0 or 1 means run tasks inline. */
    explicit ThreadPool(std::size_t num_threads);

    /** Topology-aware construction: options.numThreads 0 sizes the
     *  pool to the hardware. Note the semantics differ from the
     *  count constructor, where 0 means inline execution. */
    explicit ThreadPool(ThreadPoolOptions options);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** std::thread::hardware_concurrency clamped to >= 1 (the
     *  standard allows 0 for "unknown"). */
    static std::size_t hardwareConcurrency();

    std::size_t numThreads() const { return threads_.size(); }

    /** True when workers were pinned at construction (and the
     *  platform supports affinity). */
    bool pinned() const { return pinned_; }

    /**
     * Run fn(i) for i in [0, n) split into contiguous chunks across the
     * pool; blocks until every index is processed.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Run fn(chunk_begin, chunk_end) over [0, n) in roughly equal chunks,
     * one per worker; blocks until done.
     */
    void parallelChunks(
        std::size_t n,
        const std::function<void(std::size_t, std::size_t)> &fn);

    /**
     * Run fn(i) for i in [0, n) with dynamic scheduling: workers steal
     * `grain`-sized index ranges from a shared cursor, so skewed
     * per-index costs (e.g. queries probing lists of very different
     * sizes) stay balanced. Blocks until every index is processed.
     */
    void parallelForDynamic(std::size_t n, std::size_t grain,
                            const std::function<void(std::size_t)> &fn);

    /**
     * Enqueue a fire-and-forget task. Runs inline when the pool has no
     * workers. The task must not outlive the pool.
     */
    void submitDetached(std::function<void()> task);

  private:
    /** Per-call completion latch for the blocking loops. */
    struct Sync
    {
        std::mutex m;
        std::condition_variable cv;
        std::size_t remaining = 0;

        void
        finishOne()
        {
            std::lock_guard<std::mutex> lk(m);
            if (--remaining == 0)
                cv.notify_all();
        }

        void
        wait()
        {
            std::unique_lock<std::mutex> lk(m);
            cv.wait(lk, [this] { return remaining == 0; });
        }
    };

    void workerLoop();
    void submit(std::function<void()> task);

    std::vector<std::thread> threads_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cvTask_;
    bool stop_ = false;
    bool pinned_ = false;
};

} // namespace vlr

#endif // VLR_COMMON_THREADPOOL_H

#include "core/serving_api.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace vlr::core
{

const char *
dispositionName(Disposition d)
{
    switch (d) {
    case Disposition::kServed:
        return "served";
    case Disposition::kExpiredInQueue:
        return "expired";
    case Disposition::kRejected:
        return "rejected";
    }
    return "unknown";
}

void
TenantClass::validate(const char *what) const
{
    const auto fail = [&](const std::string &msg) {
        throw std::invalid_argument("EngineConfig: " +
                                    std::string(what) + " " + msg);
    };
    if (share <= 0.0 || share > 1.0)
        fail("share must be in (0, 1] — it is the fraction of "
             "BatchPolicy::maxQueue the tenant may occupy");
    if (minShare <= 0.0 || maxShare > 1.0 || minShare > maxShare)
        fail("share clamp must satisfy 0 < minShare <= maxShare <= 1 "
             "(the adaptive controller moves shares inside it)");
    if (share < minShare || share > maxShare)
        fail("share must lie inside its own [minShare, maxShare] "
             "clamp, or the first adaptive cycle would snap it");
    if (weight <= 0.0)
        fail("weight must be > 0 — a tenant with no weight could "
             "never be granted a batch slot (use TenantPolicy::"
             "weightFloor for best-effort classes)");
    if (slo.missRateTarget < 0.0 || slo.missRateTarget > 1.0)
        fail("slo.missRateTarget must be in [0, 1]");
    if (slo.p99TargetSeconds < 0.0)
        fail("slo.p99TargetSeconds must be >= 0 (0 disables the "
             "latency target)");
}

TenantTable::TenantTable(const TenantPolicy &policy) : policy_(policy)
{
    for (std::size_t i = 0; i < policy_.classes.size(); ++i)
        byId_.emplace(policy_.classes[i].id, i);
}

const TenantClass *
TenantTable::find(TenantId id) const
{
    const auto it = byId_.find(id);
    return it == byId_.end() ? nullptr : &policy_.classes[it->second];
}

const TenantClass &
TenantTable::resolve(TenantId id) const
{
    const TenantClass *c = find(id);
    return c != nullptr ? *c : policy_.defaults;
}

double
TenantTable::weight(TenantId id) const
{
    return std::max(resolve(id).weight, policy_.weightFloor);
}

void
EngineConfig::validate() const
{
    if (batching.maxBatch == 0)
        throw std::invalid_argument(
            "EngineConfig: batching.maxBatch must be >= 1");
    if (batching.timeoutSeconds < 0.0)
        throw std::invalid_argument(
            "EngineConfig: batching.timeoutSeconds must be >= 0");
    if (defaultK == 0)
        throw std::invalid_argument(
            "EngineConfig: defaultK must be >= 1");
    if (defaultNprobe == 0)
        throw std::invalid_argument(
            "EngineConfig: defaultNprobe must be >= 1");
    if (sloSearchSeconds <= 0.0)
        throw std::invalid_argument(
            "EngineConfig: sloSearchSeconds must be > 0");
    if (numHotShards == 0)
        throw std::invalid_argument(
            "EngineConfig: numHotShards must be >= 1");
    if (degrade.enable) {
        if (degrade.nprobeFloor == 0)
            throw std::invalid_argument(
                "EngineConfig: degrade.nprobeFloor must be >= 1");
        if (degrade.queuePressure < 1.0)
            throw std::invalid_argument(
                "EngineConfig: degrade.queuePressure must be >= 1");
    }
    if (tenants.enable) {
        if (batching.maxQueue == 0)
            throw std::invalid_argument(
                "EngineConfig: tenant admission needs a bounded queue "
                "(batching.maxQueue > 0 defines the shares)");
        if (tenants.weightFloor <= 0.0 || tenants.weightFloor > 1.0)
            throw std::invalid_argument(
                "EngineConfig: tenants.weightFloor must be in (0, 1] — "
                "it is the minimum effective WFQ weight and guarantees "
                "starvation-freedom");
        tenants.defaults.validate("tenants.defaults:");
        for (std::size_t i = 0; i < tenants.classes.size(); ++i) {
            const TenantClass &c = tenants.classes[i];
            c.validate("tenant class:");
            for (std::size_t j = i + 1; j < tenants.classes.size(); ++j)
                if (tenants.classes[j].id == c.id)
                    throw std::invalid_argument(
                        "EngineConfig: duplicate TenantClass for tenant "
                        "id " + std::to_string(c.id.value) +
                        " — each tenant may have exactly one class");
        }
        if (tenants.adaptiveShares && !autopilot.enable)
            throw std::invalid_argument(
                "EngineConfig: tenants.adaptiveShares needs "
                "autopilot.enable — the share controller runs inside "
                "the autopilot control cycle");
    }
    if (autopilot.enable) {
        if (autopilot.controlIntervalSeconds < 0.0)
            throw std::invalid_argument(
                "EngineConfig: autopilot.controlIntervalSeconds must "
                "be >= 0");
        if (autopilot.queryReservoir < 16)
            throw std::invalid_argument(
                "EngineConfig: autopilot.queryReservoir must be >= 16");
        if (autopilot.countDecay < 0.0 || autopilot.countDecay > 1.0)
            throw std::invalid_argument(
                "EngineConfig: autopilot.countDecay must be in [0, 1]");
        if (autopilot.minRho < 0.0 || autopilot.maxRho > 1.0 ||
            autopilot.minRho > autopilot.maxRho)
            throw std::invalid_argument(
                "EngineConfig: autopilot rho clamp must satisfy 0 <= "
                "minRho <= maxRho <= 1");
        if (autopilot.maxBatchCap == 0)
            throw std::invalid_argument(
                "EngineConfig: autopilot.maxBatchCap must be >= 1");
        if (autopilot.maxShards == 0)
            throw std::invalid_argument(
                "EngineConfig: autopilot.maxShards must be >= 1");
        if (autopilot.shareSmoothing < 0.0 ||
            autopilot.shareSmoothing >= 1.0)
            throw std::invalid_argument(
                "EngineConfig: autopilot.shareSmoothing must be in "
                "[0, 1) — 0 tracks arrivals instantly, values near 1 "
                "react slowly");
    }
}

} // namespace vlr::core

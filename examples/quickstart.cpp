/**
 * @file
 * Quickstart: build a Wiki-All-like workload, let VectorLiteRAG pick a
 * CPU/GPU partition for an 8x L40S + Llama3-8B node, and compare the
 * serving behaviour of CPU-only retrieval against VectorLiteRAG at one
 * arrival rate.
 *
 * Run: ./examples/quickstart
 */

#include <iostream>

#include "core/vectorliterag.h"

int
main()
{
    using namespace vlr;

    std::cout << "VectorLiteRAG quickstart\n"
              << "========================\n\n";

    // 1. Dataset + calibration. The context profiles query->cluster
    //    access patterns and fits the search latency model.
    core::DatasetContext ctx(wl::wikiAllSpec());
    std::cout << "dataset: " << ctx.spec().name << " ("
              << ctx.spec().paperVectors / 1e6 << "M vectors at paper "
              << "scale, index "
              << static_cast<double>(ctx.spec().paperIndexBytes) / 1e9
              << " GB)\n";

    const auto curve = ctx.profile().accessConcentration();
    std::cout << "access skew: top 20% of clusters receive "
              << TextTable::pct(evalConcentration(curve, 0.2))
              << " of probes\n\n";

    // 2. Serving configuration: Llama3-8B on 8 L40S GPUs (Table I SLO).
    core::ServingConfig cfg;
    cfg.llmConfig = llm::llama3_8b();
    cfg.gpuSpec = gpu::l40sSpec();
    cfg.cpuSpec = gpu::xeon6426Spec();
    cfg.numGpus = 8;
    cfg.arrivalRate = 28.0;
    cfg.durationSeconds = 40.0;

    cfg.peakThroughputHint = core::measurePeak(cfg);
    std::cout << "standalone LLM peak throughput: "
              << TextTable::num(cfg.peakThroughputHint, 1) << " req/s\n\n";

    // 3. Run CPU-only vs VectorLiteRAG at the same arrival rate.
    TextTable table({"system", "rho", "SLO attainment", "P90 TTFT (ms)",
                     "mean E2E (s)"});
    for (const auto kind :
         {core::RetrieverKind::CpuOnly, core::RetrieverKind::VectorLite}) {
        cfg.retriever = kind;
        const auto res = core::runServing(cfg, ctx);
        table.addRow({res.system, TextTable::pct(res.rho),
                      TextTable::pct(res.attainment),
                      TextTable::num(res.p90Ttft * 1e3, 0),
                      TextTable::num(res.meanE2e, 2)});
    }
    table.print(std::cout);

    std::cout << "\nVectorLiteRAG places just enough hot clusters on the "
                 "GPUs to meet the\nretrieval SLO while leaving KV-cache "
                 "capacity for the LLM.\n";
    return 0;
}

/**
 * @file
 * IVF index over PQ4 fast-scan packed lists — the paper's CPU-tier index
 * ("IVF-FS"). Lists store codes in the blocked SIMD layout; search
 * quantizes the per-query LUT once and scans blocks with the AVX2 kernel.
 */

#ifndef VLR_VECSEARCH_IVF_PQ_FASTSCAN_H
#define VLR_VECSEARCH_IVF_PQ_FASTSCAN_H

#include <memory>
#include <span>
#include <vector>

#include "common/threadpool.h"
#include "vecsearch/fastscan.h"
#include "vecsearch/ivf.h"
#include "vecsearch/ivf_pq.h"
#include "vecsearch/pq.h"

namespace vlr::vs
{

/**
 * Reusable per-thread buffers for fast-scan searches. Passing one in
 * avoids re-allocating the LUT and score buffers on every query; a
 * default-constructed scratch is grown on first use.
 */
struct SearchScratch
{
    std::vector<float> lut;
    std::vector<std::uint16_t> scores;
};

/**
 * IVF + PQ4 fast-scan index. PQ must use nbits = 4. Distances returned
 * are the uint8-LUT approximations mapped back to floats; they track the
 * plain ADC distances to within one quantization step per sub-quantizer.
 *
 * Search is reentrant: const search methods share no mutable state, so
 * any number of threads may query one index concurrently (the engine's
 * batch executor relies on this). The coarse quantizer must itself be
 * thread-safe for concurrent probes — FlatCoarseQuantizer is.
 */
class IvfPqFastScanIndex
{
  public:
    IvfPqFastScanIndex(std::shared_ptr<const CoarseQuantizer> cq,
                       std::size_t m);

    void train(std::span<const float> data, std::size_t n,
               const KMeansParams &params = {});

    void add(std::span<const float> vecs, std::size_t n);
    /**
     * Append n vectors with precomputed cluster assignments. Each
     * touched list grows in place — tail-block lanes are filled and new
     * blocks appended without unpacking existing codes — so a call
     * costs O(n) regardless of how large the target lists already are
     * (the streaming-ingestion fix; earlier revisions re-packed every
     * touched list wholesale).
     */
    void addPreassigned(std::span<const float> vecs, std::size_t n,
                        std::span<const std::int32_t> assign);

    /**
     * Append already-encoded codes to one inverted list — the storage
     * layer's delta-merge path. @p list_ids must continue this index's
     * id numbering (the caller assigned them at encode time); @p codes
     * holds list_ids.size() * numSub() bytes of 4-bit codes.
     */
    void appendEncoded(cluster_id_t c, std::span<const idx_t> list_ids,
                       std::span<const std::uint8_t> codes);

    std::vector<SearchHit> search(const float *query, std::size_t k,
                                  std::size_t nprobe,
                                  SearchBreakdown *bd = nullptr,
                                  SearchScratch *scratch = nullptr) const;

    std::vector<SearchHit> searchClusters(
        const float *query, std::size_t k,
        std::span<const cluster_id_t> clusters,
        SearchBreakdown *bd = nullptr,
        SearchScratch *scratch = nullptr) const;

    std::vector<std::vector<SearchHit>> searchBatch(
        std::span<const float> queries, std::size_t nq, std::size_t k,
        std::size_t nprobe, SearchBreakdown *bd = nullptr) const;

    /**
     * Multi-query search fanned out across a thread pool with dynamic
     * load balancing and per-thread scratch reuse. Results are
     * bit-identical to searchBatch() regardless of thread count; the
     * aggregated breakdown sums per-query stage times (CPU work, not
     * wall clock).
     */
    std::vector<std::vector<SearchHit>> searchBatchParallel(
        std::span<const float> queries, std::size_t nq, std::size_t k,
        std::size_t nprobe, ThreadPool &pool,
        SearchBreakdown *bd = nullptr) const;

    /**
     * Per-query-nprobe variant: query i probes nprobes[i] lists (nq
     * entries). Lets the serving dispatcher batch requests with
     * heterogeneous probe depths; each query's hits are bit-identical
     * to a serial search(query, k, nprobes[i]).
     */
    std::vector<std::vector<SearchHit>> searchBatchParallel(
        std::span<const float> queries, std::size_t nq, std::size_t k,
        std::span<const std::size_t> nprobes, ThreadPool &pool,
        SearchBreakdown *bd = nullptr) const;

    /**
     * Extract a read-only sub-index holding only the given clusters'
     * inverted lists. The subset shares this index's coarse quantizer
     * and trained PQ, keeps global cluster and vector ids (lists of
     * absent clusters are empty), and its packed codes are byte-for-byte
     * copies — so searchClusters() on the subset returns bit-identical
     * distances to the source. This is the index-splitting primitive of
     * the tiered runtime: the hot tier is a subset replica of the hot
     * clusters. Do not add() to a subset; new vectors would be
     * mis-numbered relative to the source.
     */
    IvfPqFastScanIndex subsetClusters(
        std::span<const cluster_id_t> clusters) const;

    /**
     * Rebuild an index from a trained PQ and exported inverted lists —
     * the deserialization path (storage::IndexStore). The lists are
     * adopted verbatim, so searches on the restored index are
     * bit-identical to the index they were exported from. size() is
     * the sum of list sizes; @p ids/@p packed must have nlist entries
     * with packed sized to whole fast-scan blocks.
     */
    static IvfPqFastScanIndex fromParts(
        std::shared_ptr<const CoarseQuantizer> cq, ProductQuantizer pq,
        std::vector<std::vector<idx_t>> ids,
        std::vector<std::vector<std::uint8_t>> packed);

    /** Vector ids of one inverted list, in stored (scan) order. */
    std::span<const idx_t> listIds(cluster_id_t c) const;
    /** Packed fast-scan codes of one inverted list (whole blocks). */
    std::span<const std::uint8_t> listPacked(cluster_id_t c) const;

    const CoarseQuantizer &quantizer() const { return *cq_; }
    const ProductQuantizer &pq() const { return pq_; }
    std::size_t dim() const { return cq_->dim(); }
    std::size_t nlist() const { return cq_->nlist(); }
    std::size_t size() const { return total_; }
    std::size_t listSize(cluster_id_t c) const;
    std::vector<std::size_t> listSizes() const;
    /** Resident bytes (ids + packed codes) of one inverted list. */
    std::size_t listBytes(cluster_id_t c) const;
    std::size_t memoryBytes() const;

  private:
    std::shared_ptr<const CoarseQuantizer> cq_;
    ProductQuantizer pq_;
    std::size_t total_ = 0;
    std::vector<std::vector<idx_t>> ids_;
    std::vector<std::vector<std::uint8_t>> packed_;
};

} // namespace vlr::vs

#endif // VLR_VECSEARCH_IVF_PQ_FASTSCAN_H

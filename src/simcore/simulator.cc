#include "simcore/simulator.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace vlr::sim
{

event_id_t
Simulator::schedule(sim_time_t delay, std::function<void()> fn)
{
    if (delay < 0)
        fatal("Simulator::schedule: negative delay");
    return scheduleAt(now_ + delay, std::move(fn));
}

event_id_t
Simulator::scheduleAt(sim_time_t when, std::function<void()> fn)
{
    if (when < now_)
        fatal("Simulator::scheduleAt: time in the past");
    const event_id_t id = nextId_++;
    queue_.push({when, id, std::move(fn)});
    pending_.insert(id);
    return id;
}

bool
Simulator::cancel(event_id_t id)
{
    // Only events that are still pending can be cancelled; an id that
    // already fired or was already cancelled reports failure.
    if (pending_.erase(id) == 0)
        return false;
    cancelled_.push_back(id);
    ++cancelledPending_;
    return true;
}

bool
Simulator::isCancelled(event_id_t id)
{
    auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it == cancelled_.end())
        return false;
    cancelled_.erase(it);
    --cancelledPending_;
    return true;
}

bool
Simulator::step()
{
    while (!queue_.empty()) {
        Event ev = queue_.top();
        queue_.pop();
        if (isCancelled(ev.id))
            continue;
        pending_.erase(ev.id);
        assert(ev.when >= now_);
        now_ = ev.when;
        ++fired_;
        ev.fn();
        return true;
    }
    return false;
}

void
Simulator::run(sim_time_t until)
{
    while (!queue_.empty()) {
        if (until >= 0.0 && queue_.top().when > until) {
            now_ = until;
            return;
        }
        step();
    }
    if (until >= 0.0)
        now_ = std::max(now_, until);
}

std::size_t
Simulator::pendingEvents() const
{
    return queue_.size() - cancelledPending_;
}

SerialResource::SerialResource(Simulator &sim)
    : sim_(sim)
{
}

void
SerialResource::submit(std::function<sim_time_t()> duration,
                       std::function<void()> done)
{
    queue_.push({std::move(duration), std::move(done)});
    if (!busy_)
        startNext();
}

void
SerialResource::startNext()
{
    if (queue_.empty()) {
        busy_ = false;
        return;
    }
    busy_ = true;
    Job job = std::move(queue_.front());
    queue_.pop();
    const sim_time_t dur = job.duration();
    busyTime_ += dur;
    auto done = std::move(job.done);
    sim_.schedule(dur, [this, done = std::move(done)]() {
        done();
        startNext();
    });
}

} // namespace vlr::sim

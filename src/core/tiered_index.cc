#include "core/tiered_index.h"

#include <algorithm>
#include <cassert>

#include "common/timer.h"
#include "vecsearch/topk.h"
#include "workload/plans.h"

namespace vlr::core
{

namespace
{

/** Clamp the shard counts and fall back to the default backend. */
TieredOptions
normalizeOptions(TieredOptions opts)
{
    opts.numShards = std::max<std::size_t>(opts.numShards, 1);
    if (opts.maxShards == 0)
        opts.maxShards = opts.numShards;
    opts.maxShards = std::max(opts.maxShards, opts.numShards);
    if (!opts.backendFactory)
        opts.backendFactory = fastScanShardFactory();
    return opts;
}

/**
 * Deal an explicit hot set across shards with the shared
 * IndexSplitter::dealClusters policy, balancing by the source's real
 * list bytes instead of profile bytes.
 */
ShardAssignment
makeHotAssignment(const vs::IvfPqFastScanIndex &source,
                  std::vector<cluster_id_t> hot_clusters,
                  std::size_t num_shards)
{
    const std::size_t nlist = source.nlist();
    const double rho = nlist == 0
                           ? 0.0
                           : static_cast<double>(hot_clusters.size()) /
                                 static_cast<double>(nlist);
    return IndexSplitter::dealClusters(
        std::move(hot_clusters),
        [&source](cluster_id_t c) {
            return static_cast<double>(source.listBytes(c));
        },
        nlist, rho, static_cast<int>(num_shards));
}

} // namespace

TieredIndex::Tiers::Tiers(const vs::IvfPqFastScanIndex &source,
                          ShardAssignment a, const TieredOptions &opts)
    : assignment(std::move(a)), router(assignment, /*prune_probes=*/true)
{
    assert(assignment.clusterShard.size() == source.nlist());
    shards.reserve(assignment.numShards());
    for (std::size_t s = 0; s < assignment.numShards(); ++s) {
        shards.push_back(
            opts.backendFactory(source, assignment.shardClusters[s], s));
        numHot += assignment.shardClusters[s].size();
        hotBytes += shards.back()->bytes();
    }
    rho = source.nlist() == 0
              ? 0.0
              : static_cast<double>(numHot) /
                    static_cast<double>(source.nlist());
}

TieredIndex::StatShard::StatShard(std::size_t nlist,
                                  std::size_t max_shards)
    : accessCounts(std::make_unique<std::atomic<std::uint64_t>[]>(nlist)),
      shardProbes(
          std::make_unique<std::atomic<std::uint64_t>[]>(max_shards)),
      shardScanSeconds(
          std::make_unique<std::atomic<double>[]>(max_shards)),
      shardScanCounts(
          std::make_unique<std::atomic<std::uint64_t>[]>(max_shards))
{
    for (std::size_t c = 0; c < nlist; ++c)
        accessCounts[c].store(0, std::memory_order_relaxed);
    for (std::size_t s = 0; s < max_shards; ++s) {
        shardProbes[s].store(0, std::memory_order_relaxed);
        shardScanSeconds[s].store(0.0, std::memory_order_relaxed);
        shardScanCounts[s].store(0, std::memory_order_relaxed);
    }
}

TieredIndex::TieredIndex(const vs::IvfPqFastScanIndex &source,
                         std::vector<cluster_id_t> hot_clusters,
                         TieredOptions opts)
    : source_(source), opts_(normalizeOptions(std::move(opts))),
      tiers_(new Tiers(source,
                       makeHotAssignment(source, std::move(hot_clusters),
                                         opts_.numShards),
                       opts_)),
      statShards_([nlist = source.nlist(), max = opts_.maxShards] {
          return std::make_unique<StatShard>(nlist, max);
      })
{
}

TieredIndex::TieredIndex(const vs::IvfPqFastScanIndex &source,
                         const AccessProfile &profile, double rho,
                         TieredOptions opts)
    : source_(source), opts_(normalizeOptions(std::move(opts))),
      tiers_(new Tiers(source,
                       IndexSplitter::split(
                           profile, rho,
                           static_cast<int>(opts_.numShards)),
                       opts_)),
      statShards_([nlist = source.nlist(), max = opts_.maxShards] {
          return std::make_unique<StatShard>(nlist, max);
      })
{
}

TieredIndex::~TieredIndex()
{
    // No reader may be active (class contract), so the current
    // generation can be freed directly; epochs_'s destructor drains
    // whatever repartitions left in limbo.
    delete tiers_.load(std::memory_order_relaxed);
}

TieredIndex::ProbeBuckets
TieredIndex::routeProbes(const Tiers &tiers,
                         std::span<const cluster_id_t> clusters,
                         TieredQueryStats *qs) const
{
    StatShard &stats = localStats();
    ProbeBuckets b;
    b.shardProbes.resize(tiers.assignment.numShards());

    // Route the probe list through the pruned router: the same
    // work-weighted accounting the simulator uses, over real list
    // sizes. The plan and the per-shard buckets are built in one pass;
    // the router then provides the hit-rate/shard-load accounting.
    wl::QueryPlan plan;
    plan.probes.assign(clusters.begin(), clusters.end());
    plan.probeWork.reserve(clusters.size());
    for (const cluster_id_t c : clusters) {
        const auto w = static_cast<double>(source_.listSize(c));
        plan.probeWork.push_back(w);
        plan.totalWork += w;
        stats.accessCounts[static_cast<std::size_t>(c)].fetch_add(
            1, std::memory_order_relaxed);
        const shard_id_t s =
            tiers.assignment.clusterShard[static_cast<std::size_t>(c)];
        if (s == kCpuShard) {
            b.coldProbes.push_back(c);
        } else {
            b.shardProbes[static_cast<std::size_t>(s)].push_back(c);
            stats.shardProbes[static_cast<std::size_t>(s)].fetch_add(
                1, std::memory_order_relaxed);
            ++b.hotCount;
        }
    }
    const wl::QueryPlan *pp = &plan;
    const RoutedBatch routed =
        tiers.router.route(std::span<const wl::QueryPlan *const>(&pp, 1));
    const RoutedQuery &rq = routed.queries[0];

    const bool hot_only = b.coldProbes.empty() && b.hotCount > 0;
    stats.queries.fetch_add(1, std::memory_order_relaxed);
    if (hot_only)
        stats.hotOnly.fetch_add(1, std::memory_order_relaxed);
    else if (b.hotCount == 0)
        stats.coldOnly.fetch_add(1, std::memory_order_relaxed);
    else
        stats.split.fetch_add(1, std::memory_order_relaxed);
    stats.hotProbes.fetch_add(b.hotCount, std::memory_order_relaxed);
    stats.totalProbes.fetch_add(clusters.size(),
                                std::memory_order_relaxed);
    StatShard::ownerAdd(stats.hitRateSum, rq.hitRate);

    if (qs) {
        qs->hotProbes = b.hotCount;
        qs->coldProbes = b.coldProbes.size();
        qs->shardsUsed = rq.shardsUsed.size();
        qs->hitRate = rq.hitRate;
        qs->hotOnly = hot_only;
    }
    return b;
}

std::vector<vs::SearchHit>
TieredIndex::timedScan(const Tiers &tiers, const float *query,
                       std::size_t k, shard_id_t shard,
                       std::span<const cluster_id_t> clusters,
                       vs::SearchScratch *scratch) const
{
    WallTimer timer;
    // Cold probes go to the pluggable cold backend when one is
    // configured, otherwise scan the source index in place; both sides
    // of the choice are bit-identical by the parity contract.
    std::vector<vs::SearchHit> hits =
        shard == kCpuShard
            ? (opts_.coldBackend != nullptr
                   ? opts_.coldBackend->searchClusters(query, k,
                                                       clusters, scratch)
                   : source_.searchClusters(query, k, clusters, nullptr,
                                            scratch))
            : tiers.shards[static_cast<std::size_t>(shard)]
                  ->searchClusters(query, k, clusters, scratch);
    const double secs = timer.elapsed();
    StatShard &stats = localStats();
    if (shard == kCpuShard) {
        StatShard::ownerAdd(stats.coldScanSeconds, secs);
        stats.coldScanCounts.fetch_add(1, std::memory_order_relaxed);
    } else {
        StatShard::ownerAdd(
            stats.shardScanSeconds[static_cast<std::size_t>(shard)],
            secs);
        stats.shardScanCounts[static_cast<std::size_t>(shard)].fetch_add(
            1, std::memory_order_relaxed);
    }
    return hits;
}

std::vector<vs::SearchHit>
TieredIndex::scanBuckets(const Tiers &tiers, const float *query,
                         std::size_t k, const ProbeBuckets &buckets,
                         vs::SearchScratch *scratch) const
{
    std::vector<std::vector<vs::SearchHit>> parts;
    for (std::size_t s = 0; s < buckets.shardProbes.size(); ++s) {
        if (buckets.shardProbes[s].empty())
            continue;
        parts.push_back(timedScan(tiers, query, k,
                                  static_cast<shard_id_t>(s),
                                  buckets.shardProbes[s], scratch));
    }
    if (!buckets.coldProbes.empty())
        parts.push_back(timedScan(tiers, query, k, kCpuShard,
                                  buckets.coldProbes, scratch));
    if (parts.empty())
        return {};
    if (parts.size() == 1)
        return std::move(parts[0]);
    return vs::mergeHitLists(parts, k);
}

std::vector<vs::SearchHit>
TieredIndex::search(const float *query, std::size_t k, std::size_t nprobe,
                    vs::SearchScratch *scratch, TieredQueryStats *qs) const
{
    // The whole read path runs inside one epoch guard: the snapshot
    // pin is the single acquire load below — no mutex, no refcount.
    EpochGuard guard(epochs_);
    const Tiers *tiers = currentTiers();
    const auto pl = source_.quantizer().probe(query, nprobe);
    const ProbeBuckets buckets = routeProbes(*tiers, pl.clusters, qs);
    return scanBuckets(*tiers, query, k, buckets, scratch);
}

std::vector<std::vector<vs::SearchHit>>
TieredIndex::searchBatchParallel(std::span<const float> queries,
                                 std::size_t nq, std::size_t k,
                                 std::size_t nprobe, ThreadPool &pool,
                                 TieredBatchStats *bs) const
{
    const std::vector<std::size_t> nprobes(nq, nprobe);
    return searchBatchParallel(queries, nq, k, nprobes, pool, bs);
}

std::vector<std::vector<vs::SearchHit>>
TieredIndex::searchBatchParallel(std::span<const float> queries,
                                 std::size_t nq, std::size_t k,
                                 std::span<const std::size_t> nprobes,
                                 ThreadPool &pool,
                                 TieredBatchStats *bs) const
{
    const std::size_t d = dim();
    assert(queries.size() >= nq * d);
    assert(nprobes.size() >= nq);
    // One snapshot serves the whole batch, so a concurrent repartition
    // cannot split a batch across placement generations. The calling
    // thread's guard brackets every pool task below (fork/join), so
    // the snapshot cannot be reclaimed while any worker still scans
    // it — workers need no guards of their own.
    EpochGuard guard(epochs_);
    const Tiers *tiersPtr = currentTiers();
    const Tiers &tiers = *tiersPtr;
    std::vector<std::vector<vs::SearchHit>> out(nq);
    std::vector<TieredQueryStats> qstats(bs ? nq : 0);
    std::vector<ProbeBuckets> buckets(nq);

    // Phase 1: coarse-quantize and route every query at its own
    // nprobe (batches may mix per-request probe depths). The phase
    // wall time is the live T_CQ(b) sample the autopilot fits.
    WallTimer route_timer;
    pool.parallelForDynamic(nq, 1, [&](std::size_t i) {
        const float *q = queries.data() + i * d;
        const auto pl = source_.quantizer().probe(q, nprobes[i]);
        buckets[i] =
            routeProbes(tiers, pl.clusters, bs ? &qstats[i] : nullptr);
    });
    const double route_s = route_timer.elapsed();
    WallTimer scan_timer;

    // Phase 2: flatten every (query, shard) and (query, cold) scan into
    // an independent pool task, so different queries' shard scans run
    // concurrently and one slow shard backend cannot serialize the
    // batch. Slots are assigned in the same shard-ascending-then-cold
    // order scanBuckets uses, keeping merged results bit-identical to
    // the serial path.
    struct ScanTask
    {
        std::uint32_t query;
        shard_id_t shard; // kCpuShard = cold scan on the source
        std::uint32_t slot;
    };
    std::vector<ScanTask> tasks;
    std::vector<std::vector<std::vector<vs::SearchHit>>> parts(nq);
    for (std::size_t i = 0; i < nq; ++i) {
        std::uint32_t slot = 0;
        for (std::size_t s = 0; s < buckets[i].shardProbes.size(); ++s)
            if (!buckets[i].shardProbes[s].empty())
                tasks.push_back({static_cast<std::uint32_t>(i),
                                 static_cast<shard_id_t>(s), slot++});
        if (!buckets[i].coldProbes.empty())
            tasks.push_back(
                {static_cast<std::uint32_t>(i), kCpuShard, slot++});
        parts[i].resize(slot);
    }
    pool.parallelForDynamic(tasks.size(), 1, [&](std::size_t t) {
        static thread_local vs::SearchScratch scratch;
        const ScanTask &task = tasks[t];
        const float *q = queries.data() + task.query * d;
        const ProbeBuckets &qb = buckets[task.query];
        parts[task.query][task.slot] = timedScan(
            tiers, q, k, task.shard,
            task.shard == kCpuShard
                ? qb.coldProbes
                : qb.shardProbes[static_cast<std::size_t>(task.shard)],
            &scratch);
    });

    // Phase 3: per-query merge (cheap: at most shards+1 sorted lists of
    // length <= k each).
    for (std::size_t i = 0; i < nq; ++i) {
        if (parts[i].empty())
            continue;
        out[i] = parts[i].size() == 1 ? std::move(parts[i][0])
                                      : vs::mergeHitLists(parts[i], k);
    }

    if (bs) {
        *bs = {};
        bs->queries = nq;
        double sum = 0.0;
        for (const auto &s : qstats) {
            if (s.hotOnly)
                ++bs->hotOnlyQueries;
            else if (s.hotProbes == 0)
                ++bs->coldOnlyQueries;
            else
                ++bs->splitQueries;
            sum += s.hitRate;
            bs->minHitRate = std::min(bs->minHitRate, s.hitRate);
        }
        bs->meanHitRate =
            nq == 0 ? 0.0 : sum / static_cast<double>(nq);
        if (nq == 0)
            bs->minHitRate = 0.0;
        bs->routeSeconds = route_s;
        bs->scanSeconds = scan_timer.elapsed();
    }
    return out;
}

void
TieredIndex::repartition(std::vector<cluster_id_t> hot_clusters,
                         std::size_t num_shards)
{
    // Build the replacement generation — every shard backend — off the
    // read path: in-flight and newly admitted searches keep using the
    // old snapshot meanwhile. num_shards == 0 keeps the current
    // snapshot's shard count; per-shard stat arrays are sized to
    // maxShards so a count change never reallocates them.
    std::size_t shards = num_shards;
    if (shards == 0) {
        EpochGuard guard(epochs_);
        shards = currentTiers()->assignment.numShards();
    }
    shards = std::clamp<std::size_t>(shards, 1, opts_.maxShards);
    auto next = std::make_unique<Tiers>(
        source_,
        makeHotAssignment(source_, std::move(hot_clusters), shards),
        opts_);
    // Publish with one swap; readers pinned to the displaced
    // generation keep it alive via their epoch guards, and the epoch
    // domain frees it once the last of them exits.
    const Tiers *old =
        tiers_.exchange(next.release(), std::memory_order_acq_rel);
    epochs_.retire(old);
    repartitions_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<double>
TieredIndex::drainAccessCounts()
{
    const std::size_t n = nlist();
    std::vector<double> out(n);
    statShards_.forEach([&out, n](StatShard &shard) {
        for (std::size_t c = 0; c < n; ++c) {
            const std::uint64_t v = shard.accessCounts[c].exchange(
                0, std::memory_order_relaxed);
            if (v != 0)
                out[c] += static_cast<double>(v);
        }
    });
    return out;
}

AccessProfile
TieredIndex::profileFromCounts(std::vector<double> counts) const
{
    const std::size_t n = nlist();
    assert(counts.size() == n);
    std::vector<double> work(n), bytes(n);
    for (std::size_t c = 0; c < n; ++c) {
        const auto id = static_cast<cluster_id_t>(c);
        work[c] = static_cast<double>(source_.listSize(id));
        bytes[c] = static_cast<double>(source_.listBytes(id));
    }
    return AccessProfile(std::move(counts), std::move(work),
                         std::move(bytes));
}

TieredStatsSnapshot
TieredIndex::stats() const
{
    TieredStatsSnapshot s;
    // Two-phase merge: every per-thread shard folds into one snapshot.
    double hit_rate_sum = 0.0;
    s.shardProbeCounts.resize(opts_.maxShards);
    s.shardScanSeconds.resize(opts_.maxShards);
    s.shardScanCounts.resize(opts_.maxShards);
    statShards_.forEach([&](const StatShard &shard) {
        s.queries += shard.queries.load(std::memory_order_relaxed);
        s.hotOnlyQueries +=
            shard.hotOnly.load(std::memory_order_relaxed);
        s.coldOnlyQueries +=
            shard.coldOnly.load(std::memory_order_relaxed);
        s.splitQueries += shard.split.load(std::memory_order_relaxed);
        s.hotProbes += shard.hotProbes.load(std::memory_order_relaxed);
        s.totalProbes +=
            shard.totalProbes.load(std::memory_order_relaxed);
        hit_rate_sum += shard.hitRateSum.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < opts_.maxShards; ++i) {
            s.shardProbeCounts[i] += static_cast<std::size_t>(
                shard.shardProbes[i].load(std::memory_order_relaxed));
            s.shardScanSeconds[i] +=
                shard.shardScanSeconds[i].load(
                    std::memory_order_relaxed);
            s.shardScanCounts[i] += static_cast<std::size_t>(
                shard.shardScanCounts[i].load(
                    std::memory_order_relaxed));
        }
        s.coldScanSeconds +=
            shard.coldScanSeconds.load(std::memory_order_relaxed);
        s.coldScanCounts += static_cast<std::size_t>(
            shard.coldScanCounts.load(std::memory_order_relaxed));
    });
    s.meanHitRate = s.queries == 0
                        ? 0.0
                        : hit_rate_sum / static_cast<double>(s.queries);
    s.hotProbeFraction =
        s.totalProbes == 0
            ? 0.0
            : static_cast<double>(s.hotProbes) /
                  static_cast<double>(s.totalProbes);
    s.repartitions = repartitions_.load(std::memory_order_relaxed);
    s.pendingReclaims = epochs_.limboSize();

    EpochGuard guard(epochs_);
    const Tiers *tiers = currentTiers();
    s.rho = tiers->rho;
    s.numHot = tiers->numHot;
    s.hotBytes = tiers->hotBytes;
    s.numShards = tiers->shards.size();
    s.backend = tiers->shards.empty() ? std::string()
                                      : tiers->shards.front()->name();
    s.shardBytes.reserve(tiers->shards.size());
    for (const auto &shard : tiers->shards)
        s.shardBytes.push_back(shard->bytes());
    if (opts_.coldBackend != nullptr) {
        s.coldBackend = opts_.coldBackend->name();
        s.coldBytes = opts_.coldBackend->bytes();
        s.coldResidentBytes = opts_.coldBackend->residentBytes();
        s.coldResidentClusters = opts_.coldBackend->residentClusters();
    }
    return s;
}

std::vector<bool>
TieredIndex::hotBitmap() const
{
    EpochGuard guard(epochs_);
    const Tiers *tiers = currentTiers();
    std::vector<bool> bm(nlist(), false);
    for (const auto &shard : tiers->assignment.shardClusters)
        for (const cluster_id_t c : shard)
            bm[static_cast<std::size_t>(c)] = true;
    return bm;
}

double
TieredIndex::rho() const
{
    EpochGuard guard(epochs_);
    return currentTiers()->rho;
}

std::size_t
TieredIndex::numHotClusters() const
{
    EpochGuard guard(epochs_);
    return currentTiers()->numHot;
}

std::size_t
TieredIndex::numShards() const
{
    EpochGuard guard(epochs_);
    return currentTiers()->assignment.numShards();
}

} // namespace vlr::core

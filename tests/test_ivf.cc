/**
 * @file
 * Tests for the IVF-Flat index and the flat coarse quantizer.
 */

#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vecsearch/flat_index.h"
#include "vecsearch/ivf.h"
#include "vecsearch/kmeans.h"

namespace vlr::vs
{
namespace
{

struct IvfFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(42);
        data_.resize(n_ * d_);
        for (auto &x : data_)
            x = static_cast<float>(rng.gaussian());

        KMeansParams p;
        p.k = nlist_;
        p.maxPointsPerCentroid = 0;
        const auto km = kmeansTrain(data_, n_, d_, p);
        cq_ = std::make_shared<FlatCoarseQuantizer>(km.centroids, nlist_,
                                                    d_);
        queries_.resize(nq_ * d_);
        for (auto &x : queries_)
            x = static_cast<float>(rng.gaussian());
    }

    const std::size_t n_ = 2000, d_ = 12, nlist_ = 32, nq_ = 20;
    std::vector<float> data_;
    std::vector<float> queries_;
    std::shared_ptr<FlatCoarseQuantizer> cq_;
};

TEST_F(IvfFixture, FullProbeMatchesFlatSearch)
{
    IvfFlatIndex ivf(cq_);
    ivf.add(data_, n_);
    FlatIndex flat(d_);
    flat.add(data_, n_);

    for (std::size_t i = 0; i < nq_; ++i) {
        const auto exact = flat.search(queries_.data() + i * d_, 10);
        const auto approx =
            ivf.search(queries_.data() + i * d_, 10, nlist_);
        ASSERT_EQ(approx.size(), exact.size());
        for (std::size_t j = 0; j < exact.size(); ++j)
            EXPECT_EQ(approx[j].id, exact[j].id)
                << "query " << i << " rank " << j;
    }
}

TEST_F(IvfFixture, ListSizesSumToTotal)
{
    IvfFlatIndex ivf(cq_);
    ivf.add(data_, n_);
    const auto sizes = ivf.listSizes();
    EXPECT_EQ(sizes.size(), nlist_);
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0ul), n_);
    EXPECT_EQ(ivf.size(), n_);
}

TEST_F(IvfFixture, PartialProbeRecallImprovesWithNprobe)
{
    IvfFlatIndex ivf(cq_);
    ivf.add(data_, n_);
    FlatIndex flat(d_);
    flat.add(data_, n_);

    auto recall = [&](std::size_t nprobe) {
        std::size_t found = 0;
        for (std::size_t i = 0; i < nq_; ++i) {
            const auto exact = flat.search(queries_.data() + i * d_, 10);
            const auto approx =
                ivf.search(queries_.data() + i * d_, 10, nprobe);
            std::set<idx_t> truth;
            for (const auto &h : exact)
                truth.insert(h.id);
            for (const auto &h : approx)
                found += truth.count(h.id);
        }
        return static_cast<double>(found) / (nq_ * 10);
    };

    const double r1 = recall(1);
    const double r8 = recall(8);
    const double r32 = recall(32);
    EXPECT_LE(r1, r8 + 1e-9);
    EXPECT_LE(r8, r32 + 1e-9);
    EXPECT_NEAR(r32, 1.0, 1e-9);
    EXPECT_GT(r8, 0.6);
}

TEST_F(IvfFixture, PreassignedAddMatchesAutoAssign)
{
    IvfFlatIndex a(cq_), b(cq_);
    a.add(data_, n_);
    std::vector<std::int32_t> assign(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        const auto probes = cq_->probe(data_.data() + i * d_, 1);
        assign[i] = probes.clusters[0];
    }
    b.addPreassigned(data_, n_, assign);
    for (cluster_id_t c = 0; c < static_cast<cluster_id_t>(nlist_); ++c)
        EXPECT_EQ(a.listSize(c), b.listSize(c)) << "cluster " << c;
}

TEST_F(IvfFixture, SearchClustersOnlyScansGivenLists)
{
    IvfFlatIndex ivf(cq_);
    ivf.add(data_, n_);
    const float *q = queries_.data();
    // Search cluster 0 only: every hit must be a member of list 0.
    const std::vector<cluster_id_t> only = {0};
    const auto hits = ivf.searchClusters(q, 50, only);
    const auto &ids = ivf.listIds(0);
    std::set<idx_t> members(ids.begin(), ids.end());
    for (const auto &h : hits)
        EXPECT_TRUE(members.count(h.id)) << "id " << h.id;
}

TEST_F(IvfFixture, SearchClustersUnionEqualsSearch)
{
    IvfFlatIndex ivf(cq_);
    ivf.add(data_, n_);
    const float *q = queries_.data();
    const auto probes = cq_->probe(q, 8);
    const auto via_clusters =
        ivf.searchClusters(q, 10, probes.clusters);
    const auto via_search = ivf.search(q, 10, 8);
    ASSERT_EQ(via_clusters.size(), via_search.size());
    for (std::size_t j = 0; j < via_search.size(); ++j)
        EXPECT_EQ(via_clusters[j].id, via_search[j].id);
}

TEST_F(IvfFixture, EmptyClusterListReturnsNothing)
{
    IvfFlatIndex ivf(cq_);
    ivf.add(data_, n_);
    const auto hits =
        ivf.searchClusters(queries_.data(), 10, std::vector<cluster_id_t>{});
    EXPECT_TRUE(hits.empty());
}

TEST(FlatCq, ProbeOrderIsByDistance)
{
    Rng rng(9);
    const std::size_t nlist = 64, d = 6;
    std::vector<float> centroids(nlist * d);
    for (auto &x : centroids)
        x = static_cast<float>(rng.gaussian());
    FlatCoarseQuantizer cq(centroids, nlist, d);

    std::vector<float> q(d);
    for (auto &x : q)
        x = static_cast<float>(rng.gaussian());
    const auto probes = cq.probe(q.data(), nlist);
    ASSERT_EQ(probes.clusters.size(), nlist);
    for (std::size_t i = 1; i < nlist; ++i)
        EXPECT_GE(probes.dists[i], probes.dists[i - 1]);
    // All clusters appear exactly once.
    std::set<cluster_id_t> seen(probes.clusters.begin(),
                                probes.clusters.end());
    EXPECT_EQ(seen.size(), nlist);
}

TEST(FlatCq, NprobeClampsToNlist)
{
    Rng rng(10);
    std::vector<float> centroids(8 * 4);
    for (auto &x : centroids)
        x = static_cast<float>(rng.gaussian());
    FlatCoarseQuantizer cq(centroids, 8, 4);
    std::vector<float> q(4, 0.f);
    const auto probes = cq.probe(q.data(), 100);
    EXPECT_EQ(probes.clusters.size(), 8u);
}

} // namespace
} // namespace vlr::vs

#include "core/slo_autopilot.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "core/partitioner.h"
#include "workload/plans.h"

namespace vlr::core
{

namespace
{

double
secondsBetween(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // namespace

SloAutopilot::SloAutopilot(RetrievalEngine &engine,
                           OnlineUpdater &updater,
                           AutopilotPolicy policy)
    : engine_(engine), updater_(updater), index_(updater.index()),
      policy_(policy), lastCycle_(Clock::now())
{
    const std::size_t rows =
        std::max<std::size_t>(policy_.queryReservoir, 16);
    reservoir_.resize(rows * index_.dim());
    counts_.assign(index_.nlist(), 0.0);
    engine_.attachAutopilot(this);
    if (policy_.controlIntervalSeconds > 0.0)
        thread_ = std::thread([this] { controlLoop(); });
}

SloAutopilot::~SloAutopilot()
{
    stop();
}

void
SloAutopilot::stop()
{
    {
        std::lock_guard<std::mutex> lk(stopMutex_);
        stopped_ = true;
    }
    stopCv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
SloAutopilot::observeBatch(const BatchObservation &obs,
                           std::span<const float> queries,
                           std::size_t nq)
{
    const std::size_t d = index_.dim();
    std::lock_guard<std::mutex> lk(obsMutex_);
    // Bounded intake: a stalled control thread must not let the
    // observation buffer grow without limit.
    if (observations_.size() < 4096)
        observations_.push_back(obs);
    const std::size_t rows = reservoir_.size() / d;
    for (std::size_t i = 0; i < nq; ++i) {
        const float *q = queries.data() + i * d;
        ++reservoirSeen_;
        std::size_t slot;
        if (reservoirRows_ < rows) {
            slot = reservoirRows_++;
        } else {
            const std::uint64_t j = rng_.uniformU64(reservoirSeen_);
            if (j >= rows)
                continue;
            slot = static_cast<std::size_t>(j);
        }
        std::copy(q, q + d, reservoir_.begin() + slot * d);
    }
}

bool
SloAutopilot::runControlCycle()
{
    std::lock_guard<std::mutex> cyc(cycleMutex_);
    engine_.noteAutopilotCycle();
    ++cycles_;

    const auto now = Clock::now();
    const double dt = secondsBetween(lastCycle_, now);
    lastCycle_ = now;

    // SLO-attainment window: per-disposition deltas since the last
    // cycle. The expired+rejected fraction is the live counterpart of
    // the paper's attainment signal.
    const EngineStatsSnapshot s = engine_.stats();
    const std::size_t d_sub = s.submitted - lastSubmitted_;
    const std::size_t d_exp = s.expired - lastExpired_;
    const std::size_t d_rej = s.rejected - lastRejected_;
    const std::size_t d_res = s.completed - lastCompleted_;
    lastSubmitted_ = s.submitted;
    lastExpired_ = s.expired;
    lastRejected_ = s.rejected;
    lastCompleted_ = s.completed;

    const double dt_arrival = dt;

    // Per-tenant windowed observations (tenant policy on): the same
    // delta-since-last-cycle treatment as the globals, taken from the
    // per-tenant stat slices. Windows advance even on cycles that
    // bail early below, keeping them aligned with the global window.
    const TenantTable &table = engine_.tenantTable();
    std::vector<TenantDecision> tenant_decisions;
    double weighted_miss = 0.0;
    bool class_breach = false;
    if (table.enabled() && !s.tenants.empty()) {
        double weight_sum = 0.0;
        for (const TenantStatsSnapshot &ts : s.tenants) {
            TenantWindow &w = tenantWindows_[ts.tenant];
            const std::size_t t_sub = ts.submitted - w.lastSubmitted;
            const std::size_t t_res =
                (ts.served + ts.expired + ts.rejected) -
                (w.lastServed + w.lastExpired + w.lastRejected);
            const std::size_t t_miss =
                (ts.expired + ts.rejected) -
                (w.lastExpired + w.lastRejected);
            w.lastSubmitted = ts.submitted;
            w.lastServed = ts.served;
            w.lastExpired = ts.expired;
            w.lastRejected = ts.rejected;

            TenantDecision td;
            td.tenant = ts.tenant;
            td.arrivalRate =
                dt_arrival > 0.0
                    ? static_cast<double>(t_sub) / dt_arrival
                    : 0.0;
            td.missRate = t_res > 0
                              ? static_cast<double>(t_miss) /
                                    static_cast<double>(t_res)
                              : 0.0;
            td.p99Seconds = ts.totalLatency.p99;
            td.share = ts.share;

            const TenantClass &cls = table.resolve(ts.tenant);
            const double tw = table.weight(ts.tenant);
            weight_sum += tw;
            weighted_miss += tw * td.missRate;
            // A tenant with no resolved traffic this window cannot
            // breach: its miss rate is vacuous and its p99 digest is
            // stale.
            if (t_res > 0) {
                td.sloBreached =
                    td.missRate > cls.slo.missRateTarget ||
                    (cls.slo.p99TargetSeconds > 0.0 &&
                     td.p99Seconds > cls.slo.p99TargetSeconds);
                class_breach = class_breach || td.sloBreached;
            }
            tenant_decisions.push_back(td);
        }
        weighted_miss =
            weight_sum > 0.0 ? weighted_miss / weight_sum : 0.0;
    }

    // Live access profile: drain the index's counters and fold them
    // into the exponentially decayed history.
    const std::vector<double> drained = index_.drainAccessCounts();
    double total = 0.0;
    for (std::size_t c = 0; c < counts_.size(); ++c) {
        counts_[c] = policy_.countDecay * counts_[c] + drained[c];
        total += counts_[c];
    }

    std::vector<BatchObservation> obs;
    std::vector<float> queries;
    std::size_t n_rows = 0;
    {
        std::lock_guard<std::mutex> lk(obsMutex_);
        obs.swap(observations_);
        n_rows = reservoirRows_;
        queries.assign(reservoir_.begin(),
                       reservoir_.begin() + n_rows * index_.dim());
    }
    if (obs.size() < policy_.minBatchObservations || n_rows < 2 ||
        total <= 0.0)
        return false;

    const double arrival =
        dt > 0.0 ? static_cast<double>(d_sub) / dt : 0.0;
    const double miss_rate =
        d_res > 0 ? static_cast<double>(d_exp + d_rej) /
                        static_cast<double>(d_res)
                  : 0.0;

    // 1. Fit Eq. 1 from the window's batches. Scan wall time is
    // normalized by the miss fraction (clamped away from zero) to
    // recover the full-miss T_LUT; the hot-tier replicas are assumed
    // off the critical path.
    std::vector<PlKnot> cq_knots, lut_knots;
    cq_knots.reserve(obs.size());
    lut_knots.reserve(obs.size());
    for (const BatchObservation &o : obs) {
        const auto b =
            static_cast<double>(std::max<std::size_t>(o.batchSize, 1));
        cq_knots.push_back({b, o.routeSeconds});
        const double miss =
            std::clamp(1.0 - o.meanHitRate, 0.05, 1.0);
        lut_knots.push_back({b, o.scanSeconds / miss});
    }
    const SearchPerfModel fit =
        SearchPerfModel::fromKnots(cq_knots, lut_knots);

    // 2./3. Profile + estimator from live counts and the query
    // reservoir.
    const AccessProfile profile = index_.profileFromCounts(counts_);
    const vs::IvfPqFastScanIndex &src = index_.source();
    std::vector<double> work(index_.nlist());
    for (std::size_t c = 0; c < work.size(); ++c)
        work[c] = static_cast<double>(
            src.listSize(static_cast<cluster_id_t>(c)));
    const wl::PlanSet plans =
        wl::PlanSet::build(src.quantizer(), queries, n_rows,
                           engine_.config().defaultNprobe, work);
    const HitRateEstimator estimator(profile, plans);

    // 4. Algorithm 1 against the measured arrival rate: the
    // throughput bound mu is what the LLM actually demands of us, so
    // expectedBatch = ceil(tau_s * mu) doubles as the batch-cap pick.
    const LatencyBoundedPartitioner partitioner(fit, estimator,
                                                profile);
    PartitionInputs in;
    in.sloSearchSeconds = engine_.config().sloSearchSeconds;
    in.epsilon = policy_.epsilon;
    in.kvBaselineBytes = 0.0;
    in.peakLlmThroughput = std::max(arrival, 1.0);
    const PartitionResult pr = partitioner.partition(in);

    const double cur_rho = index_.rho();
    double rho =
        std::clamp(pr.rho, policy_.minRho, policy_.maxRho);
    // SLO-attainment feedback: misses above target escalate coverage
    // one step beyond the model's pick. With tenants the objective is
    // the weight-averaged per-tenant miss rate, and any single tenant
    // breaching its own targets escalates too — a premium tenant's
    // SLO cannot be averaged away by a healthy majority.
    const bool tenants_on =
        table.enabled() && !tenant_decisions.empty();
    const bool slo_breach =
        tenants_on ? weighted_miss > policy_.missRateTarget ||
                         class_breach
                   : miss_rate > policy_.missRateTarget;
    if (slo_breach)
        rho = std::clamp(std::max(rho, cur_rho + policy_.rhoStep),
                         policy_.minRho, policy_.maxRho);

    // 5a. Batch-cap actuation (never stalls: dispatcher reads it
    // atomically at the next formation).
    const std::size_t cap = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::ceil(pr.expectedBatch)), 1,
        policy_.maxBatchCap);
    engine_.setBatchCap(cap);

    // 5b. Shard-count re-pick from the byte budget (0 keeps count).
    const std::size_t cur_shards = index_.numShards();
    std::size_t shards = cur_shards;
    if (policy_.shardByteBudget > 0.0) {
        const double hot_bytes = profile.indexBytes(rho);
        shards = std::clamp<std::size_t>(
            static_cast<std::size_t>(
                std::ceil(hot_bytes / policy_.shardByteBudget)),
            1, std::min(policy_.maxShards, index_.maxShards()));
    }

    // 5c. Repartition when coverage moved past the deadband, the
    // shard count changed, or the hot set itself flipped (hotspot
    // drift can move membership while rho stays put).
    std::vector<cluster_id_t> hot = profile.hotClusters(rho);
    const std::vector<bool> bitmap = index_.hotBitmap();
    std::size_t in_current = 0;
    for (const cluster_id_t c : hot)
        if (bitmap[static_cast<std::size_t>(c)])
            ++in_current;
    const double overlap =
        hot.empty() ? 1.0
                    : static_cast<double>(in_current) /
                          static_cast<double>(hot.size());
    const bool rho_moved =
        std::fabs(rho - cur_rho) > policy_.rhoDeadband;
    const bool shards_moved = shards != cur_shards;
    const bool set_flipped =
        overlap < 1.0 - policy_.hotSetDivergence;

    bool repartitioned = false;
    if (rho_moved || shards_moved || set_flipped)
        repartitioned =
            updater_.requestRepartition(std::move(hot), shards);

    // 5d. Adaptive admission shares: move each tenant's live share
    // toward its measured demand fraction (EWMA-smoothed so one noisy
    // window cannot slam the caps), clamped to the class's
    // [minShare, maxShare]. The engine applies the clamp too; doing
    // it here keeps the recorded share honest.
    if (tenants_on && table.adaptiveShares()) {
        double total_arrival = 0.0;
        for (const TenantDecision &td : tenant_decisions)
            total_arrival += td.arrivalRate;
        if (total_arrival > 0.0) {
            for (TenantDecision &td : tenant_decisions) {
                const TenantClass &cls = table.resolve(td.tenant);
                const double demand =
                    td.arrivalRate / total_arrival;
                const double cur = engine_.tenantShare(td.tenant);
                const double next = std::clamp(
                    policy_.shareSmoothing * cur +
                        (1.0 - policy_.shareSmoothing) * demand,
                    cls.minShare, cls.maxShare);
                if (std::fabs(next - cur) > 1e-12) {
                    engine_.setTenantShare(td.tenant, next);
                    td.shareChanged = true;
                }
                td.share = next;
            }
        }
    }

    AutopilotDecision decision;
    decision.arrivalRate = arrival;
    decision.missRate = miss_rate;
    decision.modelRho = pr.rho;
    decision.rho = rho;
    decision.hotShards = shards;
    decision.batchCap = cap;
    decision.repartitioned = repartitioned;
    decision.weightedMissRate = tenants_on ? weighted_miss : miss_rate;
    decision.tenants = std::move(tenant_decisions);
    engine_.recordAutopilotDecision(decision);
    return repartitioned;
}

std::size_t
SloAutopilot::cyclesRun() const
{
    std::lock_guard<std::mutex> lk(cycleMutex_);
    return cycles_;
}

void
SloAutopilot::controlLoop()
{
    std::unique_lock<std::mutex> lk(stopMutex_);
    while (!stopped_) {
        if (stopCv_.wait_for(
                lk,
                std::chrono::duration<double>(
                    policy_.controlIntervalSeconds),
                [this] { return stopped_; }))
            return;
        lk.unlock();
        try {
            runControlCycle();
        } catch (const std::exception &e) {
            logWarn("SloAutopilot: control cycle failed: ", e.what());
        }
        lk.lock();
    }
}

} // namespace vlr::core

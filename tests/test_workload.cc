/**
 * @file
 * Tests for arrival processes, synthetic datasets, query generation and
 * query plans.
 */

#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "workload/arrival.h"
#include "workload/dataset.h"
#include "workload/plans.h"

namespace vlr::wl
{
namespace
{

TEST(Arrivals, PoissonCountNearRateTimesHorizon)
{
    const auto times = poissonArrivals(50.0, 100.0, 1);
    // Expected 5000 arrivals; Poisson sd is ~71.
    EXPECT_NEAR(static_cast<double>(times.size()), 5000.0, 300.0);
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_GE(times[i], times[i - 1]);
    EXPECT_GE(times.front(), 0.0);
    EXPECT_LT(times.back(), 100.0);
}

TEST(Arrivals, PoissonIsSeedDeterministic)
{
    const auto a = poissonArrivals(10.0, 10.0, 42);
    const auto b = poissonArrivals(10.0, 10.0, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Arrivals, UniformIsEvenlySpaced)
{
    // First arrival at 1/rate; the horizon endpoint is excluded.
    const auto times = uniformArrivals(4.0, 2.0);
    ASSERT_EQ(times.size(), 7u);
    EXPECT_NEAR(times.front(), 0.25, 1e-12);
    for (std::size_t i = 1; i < times.size(); ++i)
        EXPECT_NEAR(times[i] - times[i - 1], 0.25, 1e-9);
    EXPECT_LT(times.back(), 2.0);
}

// --- DatasetSpec presets -------------------------------------------------

TEST(DatasetSpec, PresetsMatchTableI)
{
    EXPECT_NEAR(wikiAllSpec().sloSearchSeconds, 0.150, 1e-9);
    EXPECT_NEAR(orcas1kSpec().sloSearchSeconds, 0.200, 1e-9);
    EXPECT_NEAR(orcas2kSpec().sloSearchSeconds, 0.300, 1e-9);
    EXPECT_EQ(wikiAllSpec().paperIndexBytes, 18_GiB);
    EXPECT_EQ(orcas1kSpec().paperIndexBytes, 40_GiB);
    EXPECT_EQ(orcas2kSpec().paperIndexBytes, 80_GiB);
}

TEST(DatasetSpec, OrcasIsMoreSkewedThanWikiAll)
{
    EXPECT_GT(orcas1kSpec().queryZipf, wikiAllSpec().queryZipf);
}

TEST(DatasetSpec, ScaleFactorMapsToPaperScale)
{
    const auto s = wikiAllSpec();
    EXPECT_NEAR(s.scaleFactor(),
                s.paperVectors / static_cast<double>(s.numVectors),
                1e-9);
    EXPECT_GT(s.bytesPerSimVector(), 0.0);
}

TEST(DatasetSpec, LookupByName)
{
    EXPECT_EQ(specByName("wiki-all").name, wikiAllSpec().name);
    EXPECT_EQ(specByName("orcas-1k").name, orcas1kSpec().name);
    EXPECT_EQ(specByName("orcas-2k").name, orcas2kSpec().name);
    EXPECT_EQ(specByName("tiny").name, tinySpec().name);
    EXPECT_THROW(specByName("nonexistent"), std::runtime_error);
}

// --- SyntheticDataset ------------------------------------------------------

TEST(Dataset, StatsClusterSizesSumToTotal)
{
    SyntheticDataset ds(tinySpec());
    ds.buildStats();
    EXPECT_TRUE(ds.hasStats());
    EXPECT_FALSE(ds.hasVectors());
    const auto &sizes = ds.clusterSizes();
    EXPECT_EQ(sizes.size(), ds.spec().numClusters);
    EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0ul),
              ds.spec().numVectors);
}

TEST(Dataset, ClusterSizesAreSkewed)
{
    SyntheticDataset ds(tinySpec());
    ds.buildStats();
    auto sizes = ds.clusterSizes();
    std::sort(sizes.begin(), sizes.end(), std::greater<>());
    // Top 10% of clusters hold clearly more than 10% of vectors.
    const std::size_t top = sizes.size() / 10;
    std::size_t top_sum = 0;
    for (std::size_t i = 0; i < top; ++i)
        top_sum += sizes[i];
    EXPECT_GT(static_cast<double>(top_sum),
              0.15 * static_cast<double>(ds.spec().numVectors));
}

TEST(Dataset, VectorsMatchAssignments)
{
    SyntheticDataset ds(tinySpec());
    ds.buildVectors();
    EXPECT_TRUE(ds.hasVectors());
    EXPECT_EQ(ds.vectors().size(),
              ds.spec().numVectors * ds.spec().dim);
    EXPECT_EQ(ds.assignments().size(), ds.spec().numVectors);
    // Per-cluster counts implied by assignments match clusterSizes().
    std::vector<std::size_t> counts(ds.spec().numClusters, 0);
    for (const auto a : ds.assignments())
        ++counts[a];
    for (std::size_t c = 0; c < counts.size(); ++c)
        EXPECT_EQ(counts[c], ds.clusterSizes()[c]) << "cluster " << c;
}

TEST(Dataset, ClusterBytesProportionalToSize)
{
    SyntheticDataset ds(tinySpec());
    ds.buildStats();
    double total = 0.0;
    for (cluster_id_t c = 0;
         c < static_cast<cluster_id_t>(ds.spec().numClusters); ++c)
        total += ds.clusterBytes(c);
    EXPECT_NEAR(total, static_cast<double>(ds.spec().paperIndexBytes),
                0.01 * total);
}

TEST(Dataset, CoarseQuantizerUsesGeneratorCenters)
{
    SyntheticDataset ds(tinySpec());
    ds.buildStats();
    const auto cq = ds.makeCoarseQuantizer();
    EXPECT_EQ(cq->nlist(), ds.spec().numClusters);
    EXPECT_EQ(cq->dim(), ds.spec().dim);
    // Probing with a center returns that cluster first.
    const float *center = ds.centers().data() + 5 * ds.spec().dim;
    const auto probes = cq->probe(center, 1);
    EXPECT_EQ(probes.clusters[0], 5);
}

TEST(Dataset, DeterministicAcrossInstances)
{
    SyntheticDataset a(tinySpec()), b(tinySpec());
    a.buildStats();
    b.buildStats();
    for (std::size_t i = 0; i < a.centers().size(); ++i)
        EXPECT_FLOAT_EQ(a.centers()[i], b.centers()[i]);
}

// --- QueryGenerator ---------------------------------------------------------

TEST(QueryGen, GeneratesRequestedCount)
{
    SyntheticDataset ds(tinySpec());
    ds.buildStats();
    QueryGenerator gen(ds, 3);
    const auto q = gen.generate(17);
    EXPECT_EQ(q.size(), 17u * ds.spec().dim);
}

TEST(QueryGen, DriftChangesPopularityOrder)
{
    SyntheticDataset ds(tinySpec());
    ds.buildStats();
    QueryGenerator gen(ds, 3);
    const auto before = gen.popularityOrder();
    gen.drift(0.5);
    const auto &after = gen.popularityOrder();
    std::size_t moved = 0;
    for (std::size_t i = 0; i < before.size(); ++i)
        moved += before[i] != after[i];
    EXPECT_GT(moved, 0u);
}

TEST(QueryGen, ZeroDriftKeepsOrder)
{
    SyntheticDataset ds(tinySpec());
    ds.buildStats();
    QueryGenerator gen(ds, 3);
    const auto before = gen.popularityOrder();
    gen.drift(0.0);
    const auto &after = gen.popularityOrder();
    for (std::size_t i = 0; i < before.size(); ++i)
        EXPECT_EQ(before[i], after[i]);
}

// --- PlanSet -----------------------------------------------------------------

struct PlanFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        ds_ = std::make_unique<SyntheticDataset>(tinySpec());
        ds_->buildStats();
        cq_ = ds_->makeCoarseQuantizer();
        QueryGenerator gen(*ds_, 5);
        queries_ = gen.generate(nq_);
        work_.resize(ds_->spec().numClusters);
        for (std::size_t c = 0; c < work_.size(); ++c)
            work_[c] = static_cast<double>(ds_->clusterSizes()[c]) *
                       ds_->spec().scaleFactor();
        plans_ = PlanSet::build(*cq_, queries_, nq_,
                                ds_->spec().nprobe, work_);
    }

    const std::size_t nq_ = 64;
    std::unique_ptr<SyntheticDataset> ds_;
    std::shared_ptr<vs::FlatCoarseQuantizer> cq_;
    std::vector<float> queries_;
    std::vector<double> work_;
    PlanSet plans_;
};

TEST_F(PlanFixture, PlansHaveNprobeProbes)
{
    EXPECT_EQ(plans_.size(), nq_);
    for (std::size_t i = 0; i < nq_; ++i) {
        EXPECT_EQ(plans_.plan(i).probes.size(), ds_->spec().nprobe);
        EXPECT_EQ(plans_.plan(i).probeWork.size(), ds_->spec().nprobe);
    }
}

TEST_F(PlanFixture, TotalWorkIsSumOfProbeWork)
{
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto &p = plans_.plan(i);
        double sum = 0.0;
        for (std::size_t j = 0; j < p.probeWork.size(); ++j) {
            sum += p.probeWork[j];
            EXPECT_NEAR(p.probeWork[j], work_[p.probes[j]], 1e-9);
        }
        EXPECT_NEAR(p.totalWork, sum, 1e-6);
    }
}

TEST_F(PlanFixture, AccessCountsSumToTotalProbes)
{
    const auto counts =
        plans_.clusterAccessCounts(ds_->spec().numClusters);
    const double total =
        std::accumulate(counts.begin(), counts.end(), 0.0);
    EXPECT_NEAR(total, static_cast<double>(nq_ * ds_->spec().nprobe),
                1e-9);
}

TEST_F(PlanFixture, HitRateBoundsAndExtremes)
{
    const std::vector<bool> none(ds_->spec().numClusters, false);
    const std::vector<bool> all(ds_->spec().numClusters, true);
    for (std::size_t i = 0; i < nq_; ++i) {
        EXPECT_DOUBLE_EQ(plans_.hitRate(i, none), 0.0);
        EXPECT_NEAR(plans_.hitRate(i, all), 1.0, 1e-9);
    }
}

TEST_F(PlanFixture, HitRateIsWorkWeighted)
{
    // Mark only the first probe of plan 0 as hot.
    const auto &p = plans_.plan(0);
    std::vector<bool> hot(ds_->spec().numClusters, false);
    hot[p.probes[0]] = true;
    const double expect = p.probeWork[0] / p.totalWork;
    EXPECT_NEAR(plans_.hitRate(0, hot), expect, 1e-9);
}

TEST_F(PlanFixture, AllHitRatesMatchesPerPlan)
{
    std::vector<bool> hot(ds_->spec().numClusters, false);
    for (std::size_t c = 0; c < hot.size(); c += 3)
        hot[c] = true;
    const auto rates = plans_.allHitRates(hot);
    ASSERT_EQ(rates.size(), nq_);
    for (std::size_t i = 0; i < nq_; ++i)
        EXPECT_NEAR(rates[i], plans_.hitRate(i, hot), 1e-12);
}

TEST_F(PlanFixture, SkewedQueriesConcentrateAccesses)
{
    const auto counts =
        plans_.clusterAccessCounts(ds_->spec().numClusters);
    auto sorted = counts;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    const std::size_t top = sorted.size() / 5;
    double top_mass = 0.0, total = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        total += sorted[i];
        if (i < top)
            top_mass += sorted[i];
    }
    // Tiny spec uses Zipf 0.9: top 20% must hold well over 20%.
    EXPECT_GT(top_mass / total, 0.35);
}

} // namespace
} // namespace vlr::wl
